package protoderive

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// matrixModels is the fault-matrix column set: the paper's reliable medium
// plus each single-fault model.
var matrixModels = []FaultModel{{}, {Loss: true}, {Duplication: true}, {Reorder: true}}

// matrixOpts are the corpus matrix bounds — the same budget as the main
// corpus sweep, so the matrix stays fast enough for the -race CI run.
var matrixOpts = VerifyOptions{ObsDepth: 4, MaxStates: 20000}

// cellGolden freezes the expected verdict of one fault-matrix cell.
type cellGolden struct {
	ok      bool
	witness string // witness kind, "" = no witness extracted
}

// corpusMatrixGolden is the recorded fault matrix of the corpus at
// matrixOpts bounds, keyed "spec/capN/model".
//
// Reading the table:
//   - The reliable column is conformant for every spec the Section-5
//     theorem covers. example3 and example6 use the disabling operator "[>",
//     which the theorem excludes; the Section-3.3 broadcast implementation
//     deviates by design (EXPERIMENTS.md, E11), so those rows fail even
//     reliably. multiinstance is conformant (see
//     TestMultiinstanceReliableConformantAtDeeperBounds) but its ~100k-state
//     composition overflows the sweep's MaxStates budget, and the bounded
//     comparison then reports a spurious trace difference — with the
//     explored composed graph truncated, witness extraction is
//     conservatively skipped, hence ok=false with no witness.
//   - Message loss deadlocks every protocol: the derived entities assume a
//     reliable medium (Section 6), so a lost synchronization message stalls
//     its receiver forever.
//   - Duplication at capacity 1 is degenerate: a full channel absorbs the
//     duplicate (the buffer has no room for a second copy), so cap-1 cells
//     equal the reliable column. At capacity 2 the duplicate arrives and
//     the protocols deadlock on the unconsumed extra copy.
//   - Adjacent reordering needs two distinct messages in flight on one
//     channel; at these depths the corpus protocols keep at most one
//     distinct message per channel, so reorder columns match reliable ones
//     (except example3's cap-2 row, where reordering the interrupt
//     broadcast against a data message yields an extra trace).
var corpusMatrixGolden = map[string]cellGolden{
	"anbn/cap1/reliable": {ok: true}, "anbn/cap1/loss": {ok: false, witness: "deadlock"},
	"anbn/cap1/dup": {ok: true}, "anbn/cap1/reorder": {ok: true},
	"anbn/cap2/reliable": {ok: true}, "anbn/cap2/loss": {ok: false, witness: "deadlock"},
	"anbn/cap2/dup": {ok: false, witness: "deadlock"}, "anbn/cap2/reorder": {ok: true},

	"example3/cap1/reliable": {ok: false, witness: "deadlock"}, "example3/cap1/loss": {ok: false, witness: "deadlock"},
	"example3/cap1/dup": {ok: false, witness: "deadlock"}, "example3/cap1/reorder": {ok: false, witness: "deadlock"},
	"example3/cap2/reliable": {ok: false, witness: "deadlock"}, "example3/cap2/loss": {ok: false, witness: "deadlock"},
	"example3/cap2/dup": {ok: false, witness: "deadlock"}, "example3/cap2/reorder": {ok: false, witness: "extra-trace"},

	"example5/cap1/reliable": {ok: true}, "example5/cap1/loss": {ok: false, witness: "deadlock"},
	"example5/cap1/dup": {ok: true}, "example5/cap1/reorder": {ok: true},
	"example5/cap2/reliable": {ok: true}, "example5/cap2/loss": {ok: false, witness: "deadlock"},
	"example5/cap2/dup": {ok: false, witness: "deadlock"}, "example5/cap2/reorder": {ok: true},

	"example6/cap1/reliable": {ok: false, witness: "extra-trace"}, "example6/cap1/loss": {ok: false, witness: "deadlock"},
	"example6/cap1/dup": {ok: false, witness: "extra-trace"}, "example6/cap1/reorder": {ok: false, witness: "extra-trace"},
	"example6/cap2/reliable": {ok: false, witness: "extra-trace"}, "example6/cap2/loss": {ok: false, witness: "deadlock"},
	"example6/cap2/dup": {ok: false, witness: "extra-trace"}, "example6/cap2/reorder": {ok: false, witness: "extra-trace"},

	// farm dispatches over a synchronization gate; its fault behaviour
	// follows the standard pattern (loss deadlocks everywhere, the cap-2
	// duplicate deadlocks on the unconsumed extra copy).
	"farm/cap1/reliable": {ok: true}, "farm/cap1/loss": {ok: false, witness: "deadlock"},
	"farm/cap1/dup": {ok: true}, "farm/cap1/reorder": {ok: true},
	"farm/cap2/reliable": {ok: true}, "farm/cap2/loss": {ok: false, witness: "deadlock"},
	"farm/cap2/dup": {ok: false, witness: "deadlock"}, "farm/cap2/reorder": {ok: true},

	// multiring's three-instance composition overflows the sweep budget in
	// every cell exactly like multiinstance (and is additionally conformant
	// only at channel capacity 3 — see
	// TestMultiringConformantUnderSymmetry), so every row is the same
	// truncation artifact: ok=false with extraction skipped.
	"multiring/cap1/reliable": {ok: false}, "multiring/cap1/loss": {ok: false},
	"multiring/cap1/dup": {ok: false}, "multiring/cap1/reorder": {ok: false},
	"multiring/cap2/reliable": {ok: false}, "multiring/cap2/loss": {ok: false},
	"multiring/cap2/dup": {ok: false}, "multiring/cap2/reorder": {ok: false},

	"multiinstance/cap1/reliable": {ok: false}, "multiinstance/cap1/loss": {ok: false},
	"multiinstance/cap1/dup": {ok: false}, "multiinstance/cap1/reorder": {ok: false},
	"multiinstance/cap2/reliable": {ok: false}, "multiinstance/cap2/loss": {ok: false},
	"multiinstance/cap2/dup": {ok: false}, "multiinstance/cap2/reorder": {ok: false},

	"session/cap1/reliable": {ok: true}, "session/cap1/loss": {ok: false, witness: "deadlock"},
	"session/cap1/dup": {ok: true}, "session/cap1/reorder": {ok: true},
	"session/cap2/reliable": {ok: true}, "session/cap2/loss": {ok: false, witness: "deadlock"},
	"session/cap2/dup": {ok: false, witness: "deadlock"}, "session/cap2/reorder": {ok: true},

	"transport/cap1/reliable": {ok: true}, "transport/cap1/loss": {ok: false, witness: "deadlock"},
	"transport/cap1/dup": {ok: true}, "transport/cap1/reorder": {ok: true},
	"transport/cap2/reliable": {ok: true}, "transport/cap2/loss": {ok: false, witness: "deadlock"},
	"transport/cap2/dup": {ok: false, witness: "deadlock"}, "transport/cap2/reorder": {ok: true},

	// barrier's four entities exchange at most one distinct message per
	// channel even at capacity 2, so duplication stays absorbed and only
	// loss deadlocks it.
	"barrier/cap1/reliable": {ok: true}, "barrier/cap1/loss": {ok: false, witness: "deadlock"},
	"barrier/cap1/dup": {ok: true}, "barrier/cap1/reorder": {ok: true},
	"barrier/cap2/reliable": {ok: true}, "barrier/cap2/loss": {ok: false, witness: "deadlock"},
	"barrier/cap2/dup": {ok: true}, "barrier/cap2/reorder": {ok: true},

	// nesteddisable stacks three disabling layers, so like example3/example6
	// its interrupt broadcast deviates from the service even reliably.
	"nesteddisable/cap1/reliable": {ok: false, witness: "extra-trace"}, "nesteddisable/cap1/loss": {ok: false, witness: "deadlock"},
	"nesteddisable/cap1/dup": {ok: false, witness: "extra-trace"}, "nesteddisable/cap1/reorder": {ok: false, witness: "extra-trace"},
	"nesteddisable/cap2/reliable": {ok: false, witness: "extra-trace"}, "nesteddisable/cap2/loss": {ok: false, witness: "deadlock"},
	"nesteddisable/cap2/dup": {ok: false, witness: "deadlock"}, "nesteddisable/cap2/reorder": {ok: false, witness: "extra-trace"},

	"pipeline/cap1/reliable": {ok: true}, "pipeline/cap1/loss": {ok: false, witness: "deadlock"},
	"pipeline/cap1/dup": {ok: true}, "pipeline/cap1/reorder": {ok: true},
	"pipeline/cap2/reliable": {ok: true}, "pipeline/cap2/loss": {ok: false, witness: "deadlock"},
	"pipeline/cap2/dup": {ok: false, witness: "deadlock"}, "pipeline/cap2/reorder": {ok: true},
}

// usesDisable reports whether the spec source uses the disabling operator,
// which the Section-5 theorem excludes (the derived interrupt broadcast
// deviates by design — EXPERIMENTS.md, E11).
func usesDisable(src string) bool { return strings.Contains(src, "[>") }

// corpusProtocols parses and derives every corpus spec, skipping the ones
// that violate restrictions R1–R3.
func corpusProtocols(t *testing.T) map[string]*Protocol {
	t.Helper()
	out := map[string]*Protocol{}
	for _, file := range corpusFiles(t) {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		svc, err := ParseService(string(src))
		if err != nil {
			var se *SpecError
			if errors.As(err, &se) && se.Rule != "" {
				continue
			}
			t.Fatalf("%s: parse: %v", file, err)
		}
		proto, err := svc.Derive()
		if err != nil {
			t.Fatalf("%s: derive: %v", file, err)
		}
		out[strings.TrimSuffix(filepath.Base(file), ".spec")] = proto
	}
	if len(out) == 0 {
		t.Fatal("no usable corpus specs")
	}
	return out
}

// TestCorpusFaultMatrix verifies every corpus spec under every fault model
// at channel capacities 1 and 2, asserting:
//
//   - the verdict and witness kind of every cell match the recorded golden
//     matrix (in particular, the reliable column is conformant for every
//     theorem-covered spec);
//   - serial and parallel exploration agree on every cell (verdict, state
//     counts, deadlock counts);
//   - every extracted counterexample replays through the runtime
//     interpreter to exactly the reported divergence (deadlock cells
//     re-deadlock, and the replayed observable trace equals the witness
//     trace).
func TestCorpusFaultMatrix(t *testing.T) {
	protos := corpusProtocols(t)
	for name, proto := range protos {
		for _, chanCap := range []int{1, 2} {
			opts := matrixOpts
			opts.ChannelCap = chanCap
			if name == "multiinstance" || name == "multiring" {
				// Every multiinstance/multiring cell overflows any affordable
				// budget (the compositions have ~100k+ states; fault models
				// grow them further), so the verdicts are identical truncation
				// artifacts at 4k and at 20k states — use the cheap budget.
				opts.MaxStates = 4000
			}
			serial, err := proto.VerifyMatrix(matrixModels, &opts)
			if err != nil {
				t.Fatalf("%s cap=%d: %v", name, chanCap, err)
			}
			popts := opts
			popts.Parallel = true
			popts.Workers = 4
			parallel, err := proto.VerifyMatrix(matrixModels, &popts)
			if err != nil {
				t.Fatalf("%s cap=%d parallel: %v", name, chanCap, err)
			}
			for i, cell := range serial {
				key := name + "/cap" + string(rune('0'+chanCap)) + "/" + cell.Faults
				t.Run(key, func(t *testing.T) {
					golden, known := corpusMatrixGolden[key]
					if !known {
						t.Fatalf("cell %s missing from golden matrix: ok=%v", key, cell.Report.Ok)
					}
					gotWitness := ""
					if cell.Report.Witness != nil {
						gotWitness = cell.Report.Witness.Kind
					}
					if cell.Report.Ok != golden.ok || gotWitness != golden.witness {
						t.Errorf("golden mismatch: got ok=%v witness=%q, want ok=%v witness=%q\n%s",
							cell.Report.Ok, gotWitness, golden.ok, golden.witness, cell.Report.Summary)
					}

					// Serial and parallel exploration must agree cell by cell.
					pc := parallel[i]
					if pc.Faults != cell.Faults {
						t.Fatalf("parallel matrix order diverged: %s vs %s", pc.Faults, cell.Faults)
					}
					if pc.Report.Ok != cell.Report.Ok ||
						pc.Report.TracesEqual != cell.Report.TracesEqual ||
						pc.Report.Deadlocks != cell.Report.Deadlocks ||
						pc.Report.ServiceStates != cell.Report.ServiceStates ||
						pc.Report.ComposedStates != cell.Report.ComposedStates {
						t.Errorf("serial and parallel disagree:\nserial:   ok=%v eq=%v dead=%d states=%d\nparallel: ok=%v eq=%v dead=%d states=%d",
							cell.Report.Ok, cell.Report.TracesEqual, cell.Report.Deadlocks, cell.Report.ComposedStates,
							pc.Report.Ok, pc.Report.TracesEqual, pc.Report.Deadlocks, pc.Report.ComposedStates)
					}

					// Every extracted counterexample must replay to its
					// reported divergence — through the AST interpreter and
					// through the compiled FSM engine, with identical
					// results (the compiled tables preserve per-state
					// transition order, so the witness's pinned indices
					// select the same transitions).
					if cell.Report.Witness != nil {
						res, err := proto.Replay(cell.Report.Witness)
						if err != nil {
							t.Fatalf("replay: %v\n%s", err, cell.Report.Witness.Summary())
						}
						if !reflect.DeepEqual(res.Trace, cell.Report.Witness.Trace) &&
							!(len(res.Trace) == 0 && len(cell.Report.Witness.Trace) == 0) {
							t.Errorf("replayed trace %q, witness trace %q", res.Trace, cell.Report.Witness.Trace)
						}
						if cell.Report.Witness.Kind == "deadlock" && !res.Deadlocked {
							t.Errorf("deadlock witness did not deadlock on replay:\n%s", cell.Report.Witness.Summary())
						}
						fres, err := proto.ReplayWith(cell.Report.Witness, "fsm")
						if err != nil {
							t.Fatalf("fsm replay: %v\n%s", err, cell.Report.Witness.Summary())
						}
						if !reflect.DeepEqual(fres, res) {
							t.Errorf("fsm replay diverges from ast replay:\n ast: %+v\n fsm: %+v", res, fres)
						}
					}

					// A failed cell over fully-explored graphs must carry a
					// witness; truncated graphs may conservatively skip
					// extraction (multiinstance).
					if !cell.Report.Ok && cell.Report.Complete && cell.Report.Witness == nil {
						t.Error("non-conformant complete cell carries no witness")
					}
				})
			}
		}
	}
}

// TestCorpusReliableColumnConformant pins the acceptance claim directly:
// under the paper's reliable FIFO medium every theorem-covered corpus spec
// verifies conformant at the sweep bounds. Disabling specs (the "[>"
// operator) are excluded by the Section-5 theorem itself; multiinstance is
// covered by TestMultiinstanceReliableConformantAtDeeperBounds (its verdict
// at sweep bounds is a MaxStates-truncation artifact).
func TestCorpusReliableColumnConformant(t *testing.T) {
	for _, file := range corpusFiles(t) {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(file), ".spec")
		if usesDisable(string(src)) || name == "multiinstance" || name == "multiring" {
			continue
		}
		svc, err := ParseService(string(src))
		if err != nil {
			var se *SpecError
			if errors.As(err, &se) && se.Rule != "" {
				continue
			}
			t.Fatalf("%s: %v", name, err)
		}
		proto, err := svc.Derive()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, chanCap := range []int{1, 2} {
			opts := matrixOpts
			opts.ChannelCap = chanCap
			rep, err := proto.Verify(&opts)
			if err != nil {
				t.Fatalf("%s cap=%d: %v", name, chanCap, err)
			}
			if !rep.Ok {
				t.Errorf("%s cap=%d: reliable medium not conformant:\n%s", name, chanCap, rep.Summary)
			}
			if rep.Faults != "reliable" {
				t.Errorf("%s: report fault model = %q, want reliable", name, rep.Faults)
			}
		}
	}
}

// TestMultiringConformantUnderSymmetry shows the multiring rows of the
// golden matrix are artifacts of the sweep bounds, not a real
// non-conformance: at channel capacity 3 (one in-flight 1->2 token message
// per instance) and a budget that covers its composition, multiring is
// conformant — and the symmetry reduction, which detects its three
// interchangeable instance columns, reaches the same verdict over the
// orbit-quotient state space with the weak-bisimulation check deciding
// directly against the reduced graph.
func TestMultiringConformantUnderSymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("deep multiring exploration is slow")
	}
	src, err := os.ReadFile(filepath.Join("specs", "multiring.spec"))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ParseService(string(src))
	if err != nil {
		t.Fatal(err)
	}
	proto, err := svc.Derive()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := proto.Verify(&VerifyOptions{
		ChannelCap: 3, ObsDepth: 14, MaxStates: 200000, Parallel: true,
		Reductions: "por+symmetry",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok || !rep.Complete || !rep.WeakBisimilar {
		t.Errorf("multiring not conformant under symmetry at cap 3:\n%s", rep.Summary)
	}
	if rep.Reduction == nil || rep.Reduction.SymmetryColumns != 3 {
		t.Errorf("expected 3 symmetric columns, got %+v", rep.Reduction)
	}
	if rep.Reduction != nil && rep.Reduction.OrbitsCollapsed == 0 {
		t.Error("symmetry detected but no orbits collapsed")
	}
}

// TestMultiinstanceReliableConformantAtDeeperBounds shows the multiinstance
// rows of the golden matrix are a truncation artifact, not a real
// non-conformance: with a state budget that covers its ~100k-state
// composition, the reliable verdict is conformant.
func TestMultiinstanceReliableConformantAtDeeperBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("deep multiinstance exploration is slow")
	}
	src, err := os.ReadFile(filepath.Join("specs", "multiinstance.spec"))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ParseService(string(src))
	if err != nil {
		t.Fatal(err)
	}
	proto, err := svc.Derive()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := proto.Verify(&VerifyOptions{ChannelCap: 1, ObsDepth: 4, MaxStates: 300000, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok {
		t.Errorf("multiinstance not conformant at 300k states:\n%s", rep.Summary)
	}
}
