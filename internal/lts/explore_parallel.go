package lts

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/lotos"
)

// visitedShardCount is the number of shards of the parallel explorer's
// visited map. A power of two so the shard of a hash is a mask away.
const visitedShardCount = 64

// shardedVisited is the key -> state-id index of the parallel explorer.
// Workers consult it concurrently (read-locked shards) to pre-resolve
// transitions whose target was discovered in an earlier level; inserts
// happen only during the serial per-level merge, so write contention is
// nil, but the structure stays safe for the concurrent read phase.
type shardedVisited struct {
	shards [visitedShardCount]visitedShard
}

type visitedShard struct {
	mu sync.RWMutex
	m  map[string]int
}

func newShardedVisited() *shardedVisited {
	v := &shardedVisited{}
	for i := range v.shards {
		v.shards[i].m = map[string]int{}
	}
	return v
}

// shardOf hashes a key (FNV-1a) onto a shard index.
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h & (visitedShardCount - 1)
}

func (v *shardedVisited) get(key string) (int, bool) {
	s := &v.shards[shardOf(key)]
	s.mu.RLock()
	id, ok := s.m[key]
	s.mu.RUnlock()
	return id, ok
}

func (v *shardedVisited) put(key string, id int) {
	s := &v.shards[shardOf(key)]
	s.mu.Lock()
	s.m[key] = id
	s.mu.Unlock()
}

// genResult is one derived transition annotated by the worker that derived
// it with the target's state id when the target was already known (-1
// otherwise); the merge phase then skips the index lookup.
type genResult struct {
	t     GenTransition
	known int
}

// ExploreSourceParallel is ExploreSource with a frontier-at-a-time parallel
// BFS: every level's unexpanded states are derived concurrently by a worker
// pool (sized by GOMAXPROCS unless workers > 0), and the results are merged
// serially in frontier order, so state numbering is deterministic — repeated
// runs over the same source produce identical graphs, and Deadlocks/Labels
// output is stable.
//
// The source's Next method must be safe for concurrent use.
//
// The explored graph reaches the same (depth, obs-depth, expansion) fixpoint
// as the serial explorer: the same states, keys and edges, up to state
// numbering when MaxObsDepth re-expansions reorder discovery. The one
// exception is a MaxStates-truncated exploration, where serial and parallel
// order may cut different (equally valid) prefixes of the state space.
func ExploreSourceParallel(src StateSource, rootKey string, root any, lim Limits, workers int) (*Graph, error) {
	maxStates := lim.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := &Graph{Frontier: map[int]bool{}}
	var states []any
	visited := newShardedVisited()
	obsDepth := []int{}
	expanded := []bool{}
	add := func(key string, st any, depth, obs int) int {
		id := len(states)
		visited.put(key, id)
		states = append(states, st)
		g.Keys = append(g.Keys, key)
		g.Edges = append(g.Edges, nil)
		g.Depth = append(g.Depth, depth)
		obsDepth = append(obsDepth, obs)
		expanded = append(expanded, false)
		return id
	}
	add(rootKey, root, 0, 0)

	level := []int{0}
	for len(level) > 0 {
		var next []int
		inNext := map[int]bool{}
		enqueue := func(id int) {
			if !inNext[id] {
				inNext[id] = true
				next = append(next, id)
			}
		}
		// relax pushes head's (possibly improved) depths through one edge.
		relax := func(head int, e Edge) {
			nd := obsDepth[head]
			if e.Label.Observable() {
				nd++
			}
			improved := false
			if nd < obsDepth[e.To] {
				obsDepth[e.To] = nd
				improved = true
			}
			if d := g.Depth[head] + 1; d < g.Depth[e.To] {
				g.Depth[e.To] = d
				improved = true
			}
			if improved {
				enqueue(e.To)
			}
		}

		// Phase 1 (serial): split the level into states to expand and
		// already-expanded states whose improvements propagate through
		// their cached edges. Depth-gated states become frontier.
		var toExpand []int
		for _, id := range level {
			switch {
			case expanded[id]:
				for _, e := range g.Edges[id] {
					relax(id, e)
				}
			case lim.MaxDepth > 0 && g.Depth[id] >= lim.MaxDepth,
				lim.MaxObsDepth > 0 && obsDepth[id] >= lim.MaxObsDepth:
				g.Frontier[id] = true
			default:
				toExpand = append(toExpand, id)
			}
		}

		// Phase 2 (parallel): derive the successors of every state to
		// expand. Workers pull indices from a shared cursor and annotate
		// transitions with already-known target ids.
		results := make([][]genResult, len(toExpand))
		errs := make([]error, len(toExpand))
		if len(toExpand) > 0 {
			w := workers
			if w > len(toExpand) {
				w = len(toExpand)
			}
			if w <= 1 {
				for i, id := range toExpand {
					if errs[i] = deriveOne(src, visited, states[id], &results[i]); errs[i] != nil {
						break
					}
				}
			} else {
				var cursor atomic.Int64
				var failed atomic.Bool
				var wg sync.WaitGroup
				for k := 0; k < w; k++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := int(cursor.Add(1)) - 1
							if i >= len(toExpand) || failed.Load() {
								return
							}
							if errs[i] = deriveOne(src, visited, states[toExpand[i]], &results[i]); errs[i] != nil {
								failed.Store(true)
								return
							}
						}
					}()
				}
				wg.Wait()
			}
			for i, err := range errs {
				if err != nil {
					return nil, fmt.Errorf("exploring state %d: %w", toExpand[i], err)
				}
			}
		}

		// Phase 3 (serial): merge in frontier order — the deterministic
		// state numbering. New states join the next level; improved known
		// states are re-queued for propagation or late expansion.
		for i, head := range toExpand {
			expanded[head] = true
			delete(g.Frontier, head)
			for _, r := range results[i] {
				t := r.t
				nd := obsDepth[head]
				if t.Label.Observable() {
					nd++
				}
				id, ok := r.known, r.known >= 0
				if !ok {
					// Not known when derived; may have been added by an
					// earlier state of this same merge.
					id, ok = visited.get(t.Key)
				}
				if ok {
					g.Edges[head] = append(g.Edges[head], Edge{Label: t.Label, To: id})
					relax(head, Edge{Label: t.Label, To: id})
					continue
				}
				if len(states) >= maxStates {
					g.Frontier[head] = true
					continue
				}
				to := add(t.Key, t.To, g.Depth[head]+1, nd)
				g.Edges[head] = append(g.Edges[head], Edge{Label: t.Label, To: to})
				enqueue(to)
			}
		}
		level = next
	}

	g.States = make([]lotos.Expr, len(states))
	for i, st := range states {
		if e, ok := st.(lotos.Expr); ok {
			g.States[i] = e
		}
	}
	g.ObsDepth = obsDepth
	g.Truncated = len(g.Frontier) > 0
	return g, nil
}

// deriveOne derives the successors of one state and annotates them with
// already-known target ids from the sharded visited map.
func deriveOne(src StateSource, visited *shardedVisited, state any, out *[]genResult) error {
	ts, err := src.Next(state)
	if err != nil {
		return err
	}
	rs := make([]genResult, len(ts))
	for j, t := range ts {
		known := -1
		if id, ok := visited.get(t.Key); ok {
			known = id
		}
		rs[j] = genResult{t: t, known: known}
	}
	*out = rs
	return nil
}
