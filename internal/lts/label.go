// Package lts gives the specification language of internal/lotos its
// operational semantics as a labelled transition system, following the
// standard structured rules of Basic LOTOS (IS 8807) that the paper relies
// on: action prefix, choice, the three parallel operators, enabling ">>",
// disabling "[>", hiding and process instantiation with the paper's
// occurrence numbering (Section 3.5).
//
// The package provides single-step transition derivation, bounded
// state-space exploration, trace enumeration and deadlock detection. It is
// the substrate for the action-prefix-form transformation (internal/apf),
// the equivalence checks (internal/equiv) and the composed-system
// verification (internal/compose).
package lts

import (
	"repro/internal/lotos"
)

// LabelKind discriminates transition labels.
type LabelKind uint8

const (
	// LEvent is an observable interaction: a service primitive or a
	// send/receive message interaction.
	LEvent LabelKind = iota
	// LInternal is the unobservable internal action i (also produced by
	// hiding and by the ">>" enabling step).
	LInternal
	// LDelta is successful termination δ, produced by exit.
	LDelta
)

// Label is a transition label.
type Label struct {
	Kind LabelKind
	Ev   lotos.Event // valid for LEvent only
}

// Internal is the internal-action label.
func Internal() Label { return Label{Kind: LInternal} }

// Delta is the successful-termination label.
func Delta() Label { return Label{Kind: LDelta} }

// EventLabel wraps an event as a label, mapping the internal event to
// LInternal.
func EventLabel(ev lotos.Event) Label {
	if ev.Kind == lotos.EvInternal {
		return Internal()
	}
	return Label{Kind: LEvent, Ev: ev}
}

// Observable reports whether the label is visible to the environment
// (everything except the internal action; δ is observable).
func (l Label) Observable() bool { return l.Kind != LInternal }

// String renders the label: "i", "delta", or the event text.
func (l Label) String() string {
	switch l.Kind {
	case LInternal:
		return "i"
	case LDelta:
		return "delta"
	default:
		return l.Ev.String()
	}
}

// Key returns a canonical comparison key: two labels synchronize (and are
// equal for bisimulation purposes) exactly when their keys are equal.
func (l Label) Key() string {
	switch l.Kind {
	case LInternal:
		return "\x01i"
	case LDelta:
		return "\x01d"
	default:
		return l.Ev.Gate()
	}
}

// Transition is a single derivation step e --Label--> To.
type Transition struct {
	Label Label
	To    lotos.Expr
}
