package lts

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/lotos"
)

// Disk-spilling exploration.
//
// The in-memory explorers hold the complete visited index (key -> state id)
// in one map, so the reachable state count is bounded by RAM. The spilling
// explorer bounds the index instead: entries accumulate in a small map and,
// whenever its estimated footprint crosses a byte budget, are written out as
// a sorted run file. Because a key is only ever inserted after a lookup
// missed, the in-memory map and every run hold pairwise-disjoint key sets,
// and a lookup is a map probe plus one sequential merge against each run.
// Lookups are batched per BFS level, so each level pays one linear pass over
// the spilled runs regardless of how many keys it resolves.
//
// State payloads are dropped once a state has been expanded (an expanded
// state is never re-derived — depth improvements propagate through its
// cached edges), so the explorer's working set is the byte budget plus the
// unexpanded frontier.

// DefaultSpillBudget is the default in-memory index budget of the spilling
// explorer (bytes).
const DefaultSpillBudget = 64 << 20

// SpillConfig tunes the disk-spilling explorer.
type SpillConfig struct {
	// Budget bounds the estimated in-memory index footprint in bytes; past
	// it, the index spills a sorted run. 0 selects DefaultSpillBudget.
	Budget int64
	// Dir is the parent directory for the run files ("" = the OS temp dir).
	// A per-exploration temp directory is created inside it and removed when
	// the exploration returns.
	Dir string
	// StatsOnly discards the graph and counts states and transitions only,
	// so nothing grows with the explored size except the bounded index and
	// the BFS frontier. Incompatible with MaxDepth/MaxObsDepth limits
	// (those need retained edges to propagate depth improvements).
	StatsOnly bool
}

// SpillStats reports what the spilling explorer did.
type SpillStats struct {
	// States and Transitions count the distinct states discovered and the
	// transitions derived from expanded states.
	States      int64 `json:"states"`
	Transitions int64 `json:"transitions"`
	// Runs is the number of sorted runs spilled; SpilledBytes their total
	// size on disk; PeakMemBytes the high-water estimate of the in-memory
	// index.
	Runs         int   `json:"runs"`
	SpilledBytes int64 `json:"spilledBytes"`
	PeakMemBytes int64 `json:"peakMemBytes"`
	// Truncated reports that MaxStates stopped the exploration.
	Truncated bool `json:"truncated,omitempty"`
}

// spillEntryOverhead estimates the per-entry bookkeeping of the in-memory
// index beyond the key bytes (string header, id, map bucket share).
const spillEntryOverhead = 48

// spillRun is one sorted run file; its keys are disjoint from every other
// run's and from the in-memory map.
type spillRun struct {
	path     string
	min, max string
}

// spillIndex is the budget-bounded visited index.
type spillIndex struct {
	dir    string
	budget int64

	mem      map[string]int
	memBytes int64
	peak     int64

	runs         []spillRun
	spilledBytes int64
}

func newSpillIndex(dir string, budget int64) *spillIndex {
	return &spillIndex{dir: dir, budget: budget, mem: map[string]int{}}
}

// put inserts a key known to be absent from the index, spilling a run when
// the in-memory footprint crosses the budget.
func (x *spillIndex) put(key string, id int) error {
	x.mem[key] = id
	x.memBytes += int64(len(key)) + spillEntryOverhead
	if x.memBytes > x.peak {
		x.peak = x.memBytes
	}
	if x.memBytes < x.budget {
		return nil
	}
	return x.flush()
}

// flush writes the in-memory entries as one sorted run and resets the map.
func (x *spillIndex) flush() error {
	if len(x.mem) == 0 {
		return nil
	}
	keys := make([]string, 0, len(x.mem))
	for k := range x.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	path := filepath.Join(x.dir, fmt.Sprintf("run-%06d", len(x.runs)))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("lts: spilling run: %w", err)
	}
	w := bufio.NewWriter(f)
	var buf [2 * binary.MaxVarintLen64]byte
	written := int64(0)
	for _, k := range keys {
		n := binary.PutUvarint(buf[:], uint64(len(k)))
		if _, err := w.Write(buf[:n]); err == nil {
			_, err = w.WriteString(k)
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("lts: spilling run: %w", err)
		}
		m := binary.PutUvarint(buf[:], uint64(x.mem[k]))
		if _, err := w.Write(buf[:m]); err != nil {
			f.Close()
			return fmt.Errorf("lts: spilling run: %w", err)
		}
		written += int64(n + len(k) + m)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("lts: spilling run: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lts: spilling run: %w", err)
	}
	x.runs = append(x.runs, spillRun{path: path, min: keys[0], max: keys[len(keys)-1]})
	x.spilledBytes += written
	x.mem = map[string]int{}
	x.memBytes = 0
	return nil
}

// lookup resolves a batch of keys in one pass: a map probe per key, then one
// sequential merge of the sorted misses against each run whose key range
// intersects them. Returns the ids of every key present in the index.
func (x *spillIndex) lookup(keys []string) (map[string]int, error) {
	out := make(map[string]int, len(keys))
	var misses []string
	for _, k := range keys {
		if id, ok := x.mem[k]; ok {
			out[k] = id
		} else {
			misses = append(misses, k)
		}
	}
	if len(misses) == 0 || len(x.runs) == 0 {
		return out, nil
	}
	sort.Strings(misses)
	uniq := misses[:1]
	for _, k := range misses[1:] {
		if k != uniq[len(uniq)-1] {
			uniq = append(uniq, k)
		}
	}
	for _, run := range x.runs {
		if uniq[len(uniq)-1] < run.min || uniq[0] > run.max {
			continue
		}
		if err := run.scan(uniq, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// scan merges the sorted probe list against the run's sorted records,
// recording every hit.
func (run spillRun) scan(probes []string, out map[string]int) error {
	f, err := os.Open(run.path)
	if err != nil {
		return fmt.Errorf("lts: reading spilled run: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	i := 0
	var keyBuf []byte
	for {
		klen, err := binary.ReadUvarint(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("lts: reading spilled run: %w", err)
		}
		if uint64(cap(keyBuf)) < klen {
			keyBuf = make([]byte, klen)
		}
		keyBuf = keyBuf[:klen]
		if _, err := io.ReadFull(r, keyBuf); err != nil {
			return fmt.Errorf("lts: reading spilled run: %w", err)
		}
		id, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("lts: reading spilled run: %w", err)
		}
		key := string(keyBuf)
		for i < len(probes) && probes[i] < key {
			i++
		}
		if i >= len(probes) {
			return nil
		}
		if probes[i] == key {
			out[probes[i]] = int(id)
			i++
			if i >= len(probes) {
				return nil
			}
		}
	}
}

func (x *spillIndex) stats(into *SpillStats) {
	into.Runs = len(x.runs)
	into.SpilledBytes = x.spilledBytes
	into.PeakMemBytes = x.peak
}

// ExploreSourceSpill is ExploreSource with the budget-bounded visited index.
// It runs the same frontier-at-a-time BFS as ExploreSourceParallel (derive a
// level, resolve the targets, merge in frontier order), so state numbering
// is deterministic and matches the parallel explorer's; derivation itself is
// serial. The second result carries the spill statistics; it is non-nil even
// on error.
func ExploreSourceSpill(src StateSource, rootKey string, root any, lim Limits, cfg SpillConfig) (*Graph, *SpillStats, error) {
	stats := &SpillStats{}
	if cfg.StatsOnly && (lim.MaxDepth > 0 || lim.MaxObsDepth > 0) {
		return nil, stats, fmt.Errorf("lts: stats-only spill exploration supports the MaxStates limit only")
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = DefaultSpillBudget
	}
	dir, err := os.MkdirTemp(cfg.Dir, "lts-spill-")
	if err != nil {
		return nil, stats, fmt.Errorf("lts: creating spill dir: %w", err)
	}
	defer os.RemoveAll(dir)
	idx := newSpillIndex(dir, budget)
	defer idx.stats(stats)
	if cfg.StatsOnly {
		err := exploreSpillStats(src, rootKey, root, lim, idx, stats)
		return nil, stats, err
	}
	g, err := exploreSpillFull(src, rootKey, root, lim, idx, stats)
	return g, stats, err
}

// exploreSpillFull builds the full graph. The Graph's per-state arrays are
// retained (they are the result), but state payloads are dropped at
// expansion and the visited index spills past the budget. Graph.States keeps
// only the payloads of never-expanded states (nil elsewhere).
func exploreSpillFull(src StateSource, rootKey string, root any, lim Limits, idx *spillIndex, stats *SpillStats) (*Graph, error) {
	maxStates := lim.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	g := &Graph{Frontier: map[int]bool{}}
	pending := map[int]any{} // unexpanded state id -> payload
	obsDepth := []int{}
	expanded := []bool{}
	var addErr error
	add := func(key string, st any, depth, obs int) int {
		id := len(g.Keys)
		if err := idx.put(key, id); err != nil && addErr == nil {
			addErr = err
		}
		pending[id] = st
		g.Keys = append(g.Keys, key)
		g.Edges = append(g.Edges, nil)
		g.Depth = append(g.Depth, depth)
		obsDepth = append(obsDepth, obs)
		expanded = append(expanded, false)
		return id
	}
	add(rootKey, root, 0, 0)

	level := []int{0}
	for len(level) > 0 && addErr == nil {
		var next []int
		inNext := map[int]bool{}
		enqueue := func(id int) {
			if !inNext[id] {
				inNext[id] = true
				next = append(next, id)
			}
		}
		relax := func(head int, e Edge) {
			nd := obsDepth[head]
			if e.Label.Observable() {
				nd++
			}
			improved := false
			if nd < obsDepth[e.To] {
				obsDepth[e.To] = nd
				improved = true
			}
			if d := g.Depth[head] + 1; d < g.Depth[e.To] {
				g.Depth[e.To] = d
				improved = true
			}
			if improved {
				enqueue(e.To)
			}
		}

		// Phase 1: split the level into states to expand and already-expanded
		// states whose improvements propagate through their cached edges.
		var toExpand []int
		for _, id := range level {
			switch {
			case expanded[id]:
				for _, e := range g.Edges[id] {
					relax(id, e)
				}
			case lim.MaxDepth > 0 && g.Depth[id] >= lim.MaxDepth,
				lim.MaxObsDepth > 0 && obsDepth[id] >= lim.MaxObsDepth:
				g.Frontier[id] = true
			default:
				toExpand = append(toExpand, id)
			}
		}

		// Phase 2: derive the level's successors and resolve every target
		// key against the index in one batch.
		results := make([][]GenTransition, len(toExpand))
		var batchKeys []string
		for i, id := range toExpand {
			ts, err := src.Next(pending[id])
			if err != nil {
				return nil, fmt.Errorf("exploring state %d: %w", id, err)
			}
			results[i] = ts
			for _, t := range ts {
				batchKeys = append(batchKeys, t.Key)
			}
		}
		known, err := idx.lookup(batchKeys)
		if err != nil {
			return nil, err
		}

		// Phase 3: merge in frontier order — the deterministic numbering.
		// States added during this merge are tracked separately (the batch
		// lookup predates them).
		levelNew := map[string]int{}
		for i, head := range toExpand {
			expanded[head] = true
			delete(g.Frontier, head)
			delete(pending, head)
			stats.Transitions += int64(len(results[i]))
			for _, t := range results[i] {
				nd := obsDepth[head]
				if t.Label.Observable() {
					nd++
				}
				id, ok := levelNew[t.Key]
				if !ok {
					id, ok = known[t.Key]
				}
				if ok {
					g.Edges[head] = append(g.Edges[head], Edge{Label: t.Label, To: id})
					relax(head, Edge{Label: t.Label, To: id})
					continue
				}
				if len(g.Keys) >= maxStates {
					g.Frontier[head] = true
					continue
				}
				to := add(t.Key, t.To, g.Depth[head]+1, nd)
				levelNew[t.Key] = to
				g.Edges[head] = append(g.Edges[head], Edge{Label: t.Label, To: to})
				enqueue(to)
			}
		}
		level = next
	}
	if addErr != nil {
		return nil, addErr
	}

	g.States = make([]lotos.Expr, len(g.Keys))
	for id, st := range pending {
		if e, ok := st.(lotos.Expr); ok {
			g.States[id] = e
		}
	}
	g.ObsDepth = obsDepth
	g.Truncated = len(g.Frontier) > 0
	stats.States = int64(len(g.Keys))
	stats.Truncated = g.Truncated
	return g, nil
}

// exploreSpillStats runs the census: a level-synchronous BFS that retains
// only the bounded index, the current frontier's payloads, and counters.
func exploreSpillStats(src StateSource, rootKey string, root any, lim Limits, idx *spillIndex, stats *SpillStats) error {
	maxStates := lim.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	if err := idx.put(rootKey, 0); err != nil {
		return err
	}
	states := 1
	level := []any{root}
	for len(level) > 0 {
		results := make([][]GenTransition, len(level))
		var batchKeys []string
		for i, st := range level {
			ts, err := src.Next(st)
			if err != nil {
				return err
			}
			results[i] = ts
			stats.Transitions += int64(len(ts))
			for _, t := range ts {
				batchKeys = append(batchKeys, t.Key)
			}
		}
		level = nil
		known, err := idx.lookup(batchKeys)
		if err != nil {
			return err
		}
		levelNew := map[string]bool{}
		var next []any
		for _, ts := range results {
			for _, t := range ts {
				if _, ok := known[t.Key]; ok || levelNew[t.Key] {
					continue
				}
				if states >= maxStates {
					stats.Truncated = true
					continue
				}
				if err := idx.put(t.Key, states); err != nil {
					return err
				}
				levelNew[t.Key] = true
				states++
				next = append(next, t.To)
			}
		}
		level = next
	}
	stats.States = int64(states)
	return nil
}
