package lts

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/lotos"
)

// fakeSource is a StateSource over string states with a fixed edge table,
// for explorer tests that need precise control over discovery order.
type fakeSource struct {
	edges map[string][]GenTransition
	// failOn, when non-empty, makes Next fail for that state.
	failOn string
}

func (f *fakeSource) Next(state any) ([]GenTransition, error) {
	s := state.(string)
	if f.failOn != "" && s == f.failOn {
		return nil, errors.New("injected derivation failure")
	}
	return f.edges[s], nil
}

func obs(to string) GenTransition {
	return GenTransition{Label: Label{Kind: LEvent, Ev: lotos.ServiceEvent("a", 1)}, Key: to, To: to}
}

func tau(to string) GenTransition {
	return GenTransition{Label: Internal(), Key: to, To: to}
}

func stateID(t *testing.T, g *Graph, key string) int {
	t.Helper()
	for i, k := range g.Keys {
		if k == key {
			return i
		}
	}
	t.Fatalf("state %q not in graph (keys %v)", key, g.Keys)
	return -1
}

// TestReExpansionRelaxesDepth pins the fix for the re-expansion branch of
// the explorer refreshing only the observable depth: when a shorter
// transition path to an already-expanded state is found later (through an
// observable-depth improvement that re-queues it), the plain Depth of its
// successors must be relaxed too, or MaxDepth truncation decisions read
// stale distances.
//
// With MaxObsDepth=1 the internal chain root -> X1 -> X2 -> X3 reaches A1
// and A2 at observable depth 0, after they were first discovered at
// observable depth 1 via the "a" edges. The re-expansions triggered by
// those improvements pass through C and D, whose shortest transition
// distances (2 and 3) were discovered second.
func TestReExpansionRelaxesDepth(t *testing.T) {
	src := &fakeSource{edges: map[string][]GenTransition{
		"root": {obs("A2"), tau("X1")},
		"X1":   {obs("A1"), tau("X2")},
		"A1":   {tau("C")},
		"X2":   {tau("A1"), tau("X3")},
		"X3":   {tau("A2")},
		"A2":   {tau("C")},
		"C":    {tau("D")},
		"D":    {},
	}}
	check := func(t *testing.T, g *Graph) {
		t.Helper()
		if g.Truncated {
			t.Errorf("graph truncated, frontier %v", g.Frontier)
		}
		if n := g.NumStates(); n != 8 {
			t.Fatalf("explored %d states, want 8", n)
		}
		want := map[string]int{
			"root": 0, "X1": 1, "A2": 1, "A1": 2, "X2": 2, "C": 2, "X3": 3, "D": 3,
		}
		for key, d := range want {
			if got := g.Depth[stateID(t, g, key)]; got != d {
				t.Errorf("Depth[%s] = %d, want %d", key, got, d)
			}
		}
		for key, od := range map[string]int{"root": 0, "X1": 0, "A1": 0, "A2": 0, "C": 0, "D": 0} {
			if got := g.ObsDepth[stateID(t, g, key)]; got != od {
				t.Errorf("ObsDepth[%s] = %d, want %d", key, got, od)
			}
		}
	}
	lim := Limits{MaxObsDepth: 1}
	g, err := ExploreSource(src, "root", "root", lim)
	if err != nil {
		t.Fatal(err)
	}
	check(t, g)
	gp, err := ExploreSourceParallel(src, "root", "root", lim, 4)
	if err != nil {
		t.Fatal(err)
	}
	check(t, gp)
}

// TestMaxStatesMidExpansionFrontier pins the truncation bookkeeping when
// the state cap lands in the middle of expanding a state: the partially
// derived state keeps its already-derived edges, is marked Frontier (its
// remaining successors are unknown), is NOT reported as a deadlock, and
// the graph is Truncated.
func TestMaxStatesMidExpansionFrontier(t *testing.T) {
	src := &fakeSource{edges: map[string][]GenTransition{
		"root": {obs("B")},
		"B":    {obs("C1"), obs("C2")},
		"C1":   {obs("B")},
		"C2":   {},
	}}
	for _, explore := range []struct {
		name string
		run  func(lim Limits) (*Graph, error)
	}{
		{"serial", func(lim Limits) (*Graph, error) { return ExploreSource(src, "root", "root", lim) }},
		{"parallel", func(lim Limits) (*Graph, error) { return ExploreSourceParallel(src, "root", "root", lim, 3) }},
	} {
		t.Run(explore.name, func(t *testing.T) {
			// Cap 2: B is reached but cannot expand at all.
			g, err := explore.run(Limits{MaxStates: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !g.Truncated {
				t.Error("cap=2: graph not marked truncated")
			}
			b := stateID(t, g, "B")
			if len(g.Edges[b]) != 0 {
				t.Errorf("cap=2: B has %d edges, want 0", len(g.Edges[b]))
			}
			if !g.Frontier[b] {
				t.Error("cap=2: B not in frontier")
			}
			if dl := g.Deadlocks(); len(dl) != 0 {
				t.Errorf("cap=2: frontier state reported as deadlock: %v", dl)
			}

			// Cap 3: B expands its first edge (C1 joins), then hits the cap
			// deriving C2 — a partially derived edge list.
			g, err = explore.run(Limits{MaxStates: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !g.Truncated {
				t.Error("cap=3: graph not marked truncated")
			}
			b = stateID(t, g, "B")
			if len(g.Edges[b]) != 1 {
				t.Errorf("cap=3: B has %d edges, want 1 (partial expansion)", len(g.Edges[b]))
			}
			if !g.Frontier[b] {
				t.Error("cap=3: partially expanded B not in frontier")
			}
			if dl := g.Deadlocks(); len(dl) != 0 {
				t.Errorf("cap=3: unexpected deadlocks: %v", dl)
			}

			// Cap 4: closure; C2 is a genuine deadlock, B is not frontier.
			g, err = explore.run(Limits{MaxStates: 4})
			if err != nil {
				t.Fatal(err)
			}
			if g.Truncated {
				t.Error("cap=4: graph should be complete")
			}
			if dl := g.Deadlocks(); len(dl) != 1 || g.Keys[dl[0]] != "C2" {
				t.Errorf("cap=4: deadlocks = %v, want exactly C2", dl)
			}
		})
	}
}

// graphSig summarizes a graph into a canonical, numbering-independent form:
// sorted keys plus key->sorted-edge-set adjacency.
func graphSig(g *Graph) (keys []string, adj map[string][]string, depth map[string]int, obsDepth map[string]int) {
	keys = append([]string{}, g.Keys...)
	sort.Strings(keys)
	adj = map[string][]string{}
	depth = map[string]int{}
	obsDepth = map[string]int{}
	for s, es := range g.Edges {
		var out []string
		for _, e := range es {
			out = append(out, fmt.Sprintf("%v->%s", e.Label, g.Keys[e.To]))
		}
		sort.Strings(out)
		adj[g.Keys[s]] = out
		depth[g.Keys[s]] = g.Depth[s]
		obsDepth[g.Keys[s]] = g.ObsDepth[s]
	}
	return keys, adj, depth, obsDepth
}

// TestParallelMatchesSerialOnSpecs cross-checks the parallel explorer
// against the serial oracle over SOS-derived graphs: same key set, same
// adjacency, same depth accounting.
func TestParallelMatchesSerialOnSpecs(t *testing.T) {
	specs := []string{
		"SPEC a1; b2; exit ENDSPEC",
		"SPEC a1; exit ||| b2; exit ||| c3; exit ENDSPEC",
		"SPEC A WHERE PROC A = a1; A [] b1; exit END ENDSPEC",
		"SPEC (a1; exit >> b2; exit) [> c3; exit ENDSPEC",
	}
	for _, srcText := range specs {
		sp := lotos.MustParse(srcText)
		env, err := EnvFor(sp)
		if err != nil {
			t.Fatal(err)
		}
		lim := Limits{MaxObsDepth: 6, MaxStates: 5000}
		serial, err := Explore(env, sp.Root.Expr, lim)
		if err != nil {
			t.Fatal(err)
		}
		// Fresh env: the memo map is not safe for concurrent use from
		// multiple explorations, and a fresh one also proves the parallel
		// run does not depend on serial warm-up.
		env2, err := EnvFor(sp)
		if err != nil {
			t.Fatal(err)
		}
		es := exprSource{env: env2}
		par, err := ExploreSourceParallel(&es, lotos.Canon(sp.Root.Expr), sp.Root.Expr, lim, 4)
		if err != nil {
			t.Fatal(err)
		}
		sk, sa, sd, so := graphSig(serial)
		pk, pa, pd, po := graphSig(par)
		if !reflect.DeepEqual(sk, pk) {
			t.Errorf("%s: key sets differ:\nserial %v\nparallel %v", srcText, sk, pk)
			continue
		}
		if !reflect.DeepEqual(sa, pa) {
			t.Errorf("%s: adjacency differs", srcText)
		}
		if !reflect.DeepEqual(sd, pd) {
			t.Errorf("%s: depths differ:\nserial %v\nparallel %v", srcText, sd, pd)
		}
		if !reflect.DeepEqual(so, po) {
			t.Errorf("%s: obs depths differ", srcText)
		}
		if serial.Truncated != par.Truncated {
			t.Errorf("%s: truncated %v vs %v", srcText, serial.Truncated, par.Truncated)
		}
	}
}

// TestParallelDeterministic runs the parallel explorer twice over the same
// source and requires bit-identical graphs — state numbering included —
// despite scheduling nondeterminism in the derive phase.
func TestParallelDeterministic(t *testing.T) {
	sp := lotos.MustParse("SPEC A WHERE PROC A = a1; A ||| b2; exit END ENDSPEC")
	lim := Limits{MaxObsDepth: 5, MaxStates: 5000}
	run := func() *Graph {
		env, err := EnvFor(sp)
		if err != nil {
			t.Fatal(err)
		}
		es := exprSource{env: env}
		g, err := ExploreSourceParallel(&es, lotos.Canon(sp.Root.Expr), sp.Root.Expr, lim, 8)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Keys, b.Keys) {
		t.Fatal("state numbering differs between identical parallel runs")
	}
	if !reflect.DeepEqual(a.Edges, b.Edges) {
		t.Error("edges differ between identical parallel runs")
	}
	if !reflect.DeepEqual(a.Depth, b.Depth) || !reflect.DeepEqual(a.ObsDepth, b.ObsDepth) {
		t.Error("depth accounting differs between identical parallel runs")
	}
}

// TestParallelPropagatesErrors checks a worker's derivation error aborts
// the exploration and surfaces to the caller.
func TestParallelPropagatesErrors(t *testing.T) {
	src := &fakeSource{
		edges: map[string][]GenTransition{
			"root": {obs("s0"), obs("s1"), obs("s2"), obs("s3")},
			"s0":   {}, "s1": {}, "s2": {}, "s3": {},
		},
		failOn: "s2",
	}
	if _, err := ExploreSourceParallel(src, "root", "root", Limits{}, 4); err == nil {
		t.Fatal("expected injected derivation failure, got nil")
	}
}
