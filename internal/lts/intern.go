package lts

// Label interning and compressed-sparse-row (CSR) graph export: the
// substrate of the integer equivalence engine in internal/equiv. Labels
// synchronize (and compare, for bisimulation) by their Key() string; the
// equivalence checker compares them millions of times per run, so it works
// on dense integer ids from a LabelTable instead, and walks edges through
// flat offset/label/target arrays instead of per-state slices of structs.

// LabelID is a dense integer id for a label key, assigned by a LabelTable.
// Two labels carry the same LabelID exactly when their Key() strings are
// equal, i.e. when they are equal for synchronization and bisimulation
// purposes.
type LabelID int32

// LabelTable interns label keys into dense LabelIDs. The zero value is not
// ready; use NewLabelTable. A table may be shared across several graphs so
// their CSR exports speak the same id space (that is how the equivalence
// checker compares two graphs). Not safe for concurrent interning.
type LabelTable struct {
	ids    map[string]LabelID
	labels []Label // representative label per id, for rendering
}

// NewLabelTable returns an empty interning table.
func NewLabelTable() *LabelTable {
	return &LabelTable{ids: make(map[string]LabelID, 16)}
}

// Intern returns the dense id of l's key, assigning the next free id on
// first sight.
func (t *LabelTable) Intern(l Label) LabelID {
	key := l.Key()
	if id, ok := t.ids[key]; ok {
		return id
	}
	id := LabelID(len(t.labels))
	t.ids[key] = id
	t.labels = append(t.labels, l)
	return id
}

// InternKey interns a bare key with no representative label (used for
// pseudo-labels such as the equivalence checker's ε row). The returned id
// renders through Label as an internal action.
func (t *LabelTable) InternKey(key string) LabelID {
	if id, ok := t.ids[key]; ok {
		return id
	}
	id := LabelID(len(t.labels))
	t.ids[key] = id
	t.labels = append(t.labels, Label{Kind: LInternal})
	return id
}

// Label returns the representative label first interned under id.
func (t *LabelTable) Label(id LabelID) Label { return t.labels[id] }

// Key returns the canonical key string interned under id — the
// content-derived total order the FSM compiler sorts minimized transition
// rows by, so compiled tables are reproducible independently of exploration
// and interning order.
func (t *LabelTable) Key(id LabelID) string { return t.labels[id].Key() }

// Observable reports whether id was interned from an observable label.
func (t *LabelTable) Observable(id LabelID) bool { return t.labels[id].Observable() }

// Len returns the number of distinct interned keys.
func (t *LabelTable) Len() int { return len(t.labels) }

// CSR is a compressed-sparse-row view of a Graph's transitions: the edges
// of state s are the parallel Labels/To entries in [Off[s], Off[s+1]), in
// the graph's derivation order. Labels are interned through the exporting
// LabelTable.
type CSR struct {
	// NumStates is the number of states (len(Off)-1).
	NumStates int
	// Off has NumStates+1 entries; Off[0] = 0.
	Off []int32
	// Labels holds the interned label of each edge.
	Labels []LabelID
	// To holds the target state of each edge.
	To []int32
}

// NumEdges returns the number of transitions.
func (c *CSR) NumEdges() int { return len(c.To) }

// ExportCSR flattens the graph's edges into CSR form, interning every label
// through t (shared tables give a shared id space across graphs).
func (g *Graph) ExportCSR(t *LabelTable) *CSR {
	n := g.NumStates()
	m := g.NumTransitions()
	c := &CSR{
		NumStates: n,
		Off:       make([]int32, n+1),
		Labels:    make([]LabelID, 0, m),
		To:        make([]int32, 0, m),
	}
	for s := 0; s < n; s++ {
		for _, e := range g.Edges[s] {
			c.Labels = append(c.Labels, t.Intern(e.Label))
			c.To = append(c.To, int32(e.To))
		}
		c.Off[s+1] = int32(len(c.To))
	}
	return c
}
