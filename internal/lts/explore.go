package lts

import (
	"fmt"
	"sort"

	"repro/internal/lotos"
)

// Limits bounds state-space exploration. Zero fields select defaults.
type Limits struct {
	// MaxStates caps the number of distinct states explored.
	MaxStates int
	// MaxDepth caps the exploration depth (number of transitions from the
	// initial state). 0 means unbounded (up to MaxStates).
	MaxDepth int
	// MaxObsDepth caps the exploration depth counted in OBSERVABLE
	// transitions only (internal actions are free). With MaxObsDepth = L
	// and no other truncation, the explored graph contains every weak
	// trace of length up to L exactly — the sound bounded comparison used
	// for infinite-state recursive specifications. 0 means unbounded.
	MaxObsDepth int
}

// DefaultMaxStates is the default exploration cap.
const DefaultMaxStates = 20000

// Edge is an outgoing transition of an explored state.
type Edge struct {
	Label Label
	To    int // target state index
}

// Graph is an explored (possibly truncated) labelled transition system.
type Graph struct {
	// States holds one representative expression per state; state 0 is the
	// initial state.
	States []lotos.Expr
	// Keys holds the canonical key of each state.
	Keys []string
	// Edges holds the outgoing edges of each state, in derivation order.
	Edges [][]Edge
	// Depth holds the BFS depth at which each state was first reached.
	Depth []int
	// ObsDepth holds the minimal number of observable transitions needed
	// to reach each state.
	ObsDepth []int
	// Truncated reports that a limit stopped exploration before closure:
	// some states may have unexplored successors.
	Truncated bool
	// Frontier marks states whose successors were NOT derived because of
	// truncation (their Edges are empty but they are not terminal).
	Frontier map[int]bool
}

// NumStates returns the number of explored states.
func (g *Graph) NumStates() int { return len(g.States) }

// NumTransitions returns the number of explored transitions.
func (g *Graph) NumTransitions() int {
	n := 0
	for _, es := range g.Edges {
		n += len(es)
	}
	return n
}

// Explore builds the reachable transition graph of root under env, up to the
// limits. Exploration is breadth-first, so Depth is the shortest transition
// distance from the initial state. When MaxObsDepth is set, states are
// (re-)expanded whenever a path with fewer observable steps reaches them, so
// the observable-depth accounting is exact.
func Explore(env *Env, root lotos.Expr, lim Limits) (*Graph, error) {
	src := exprSource{env: env}
	return exploreGeneric(&src, lotos.Canon(root), root, lim)
}

// StateSource abstracts a transition system for the generic explorer: the
// lts SOS semantics here, and the entity×medium product in internal/compose.
type StateSource interface {
	// Next derives the transitions of a state. The returned targets carry
	// their canonical keys.
	Next(state any) ([]GenTransition, error)
}

// GenTransition is a transition of a generic state source.
type GenTransition struct {
	Label Label
	Key   string
	To    any
}

type exprSource struct{ env *Env }

func (s *exprSource) Next(state any) ([]GenTransition, error) {
	e := state.(lotos.Expr)
	ts, err := s.env.Transitions(e)
	if err != nil {
		return nil, fmt.Errorf("state %s: %w", lotos.Format(e), err)
	}
	out := make([]GenTransition, len(ts))
	for i, t := range ts {
		out[i] = GenTransition{Label: t.Label, Key: lotos.Canon(t.To), To: t.To}
	}
	return out, nil
}

// ExploreSource runs the bounded exploration over any StateSource; the
// resulting Graph's States hold the source's opaque state values (they are
// lotos.Expr for Explore, and composite states for internal/compose).
func ExploreSource(src StateSource, rootKey string, root any, lim Limits) (*Graph, error) {
	return exploreGeneric(src, rootKey, root, lim)
}

func exploreGeneric(src StateSource, rootKey string, root any, lim Limits) (*Graph, error) {
	maxStates := lim.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	g := &Graph{Frontier: map[int]bool{}}
	var states []any
	index := map[string]int{}
	obsDepth := []int{}
	expanded := []bool{}
	add := func(key string, st any, depth, obs int) int {
		if id, ok := index[key]; ok {
			return id
		}
		id := len(states)
		index[key] = id
		states = append(states, st)
		g.Keys = append(g.Keys, key)
		g.Edges = append(g.Edges, nil)
		g.Depth = append(g.Depth, depth)
		obsDepth = append(obsDepth, obs)
		expanded = append(expanded, false)
		return id
	}
	add(rootKey, root, 0, 0)
	queue := []int{0}
	for len(queue) > 0 {
		head := queue[0]
		queue = queue[1:]
		if expanded[head] {
			// Re-expansion after a depth or observable-depth improvement:
			// refresh the successors through the already-derived edges. Depth
			// must be propagated alongside obsDepth: a state re-queued with a
			// shorter transition distance would otherwise leave stale Depth
			// values behind, and the MaxDepth truncation check would read
			// them.
			for _, e := range g.Edges[head] {
				nd := obsDepth[head]
				if e.Label.Observable() {
					nd++
				}
				improved := false
				if nd < obsDepth[e.To] {
					obsDepth[e.To] = nd
					improved = true
				}
				if d := g.Depth[head] + 1; d < g.Depth[e.To] {
					g.Depth[e.To] = d
					improved = true
				}
				if improved {
					queue = append(queue, e.To)
				}
			}
			continue
		}
		if lim.MaxDepth > 0 && g.Depth[head] >= lim.MaxDepth {
			g.Truncated = true
			g.Frontier[head] = true
			continue
		}
		if lim.MaxObsDepth > 0 && obsDepth[head] >= lim.MaxObsDepth {
			g.Truncated = true
			g.Frontier[head] = true
			continue
		}
		ts, err := src.Next(states[head])
		if err != nil {
			return nil, fmt.Errorf("exploring state %d: %w", head, err)
		}
		expanded[head] = true
		delete(g.Frontier, head)
		for _, t := range ts {
			nd := obsDepth[head]
			if t.Label.Observable() {
				nd++
			}
			if id, ok := index[t.Key]; ok {
				g.Edges[head] = append(g.Edges[head], Edge{Label: t.Label, To: id})
				improved := false
				if nd < obsDepth[id] {
					obsDepth[id] = nd
					improved = true
				}
				if d := g.Depth[head] + 1; d < g.Depth[id] {
					g.Depth[id] = d
					improved = true
				}
				if improved {
					queue = append(queue, id)
				}
				continue
			}
			if len(states) >= maxStates {
				g.Truncated = true
				g.Frontier[head] = true
				continue
			}
			to := add(t.Key, t.To, g.Depth[head]+1, nd)
			g.Edges[head] = append(g.Edges[head], Edge{Label: t.Label, To: to})
			queue = append(queue, to)
		}
	}
	// Frontier states reached below the observable bound but never expanded
	// (e.g. added after the state cap) stay marked.
	g.States = make([]lotos.Expr, len(states))
	for i, st := range states {
		if e, ok := st.(lotos.Expr); ok {
			g.States[i] = e
		}
	}
	g.ObsDepth = obsDepth
	g.Truncated = len(g.Frontier) > 0
	return g, nil
}

// ExploreSpec resolves and explores a complete specification.
func ExploreSpec(sp *lotos.Spec, lim Limits) (*Graph, error) {
	env, err := EnvFor(sp)
	if err != nil {
		return nil, err
	}
	return Explore(env, sp.Root.Expr, lim)
}

// Deadlocks returns the states that have no outgoing transitions and were
// not reached by a successful-termination step: genuine deadlocks, as
// opposed to the terminal state following δ. Frontier states of a truncated
// graph are not reported (their successors are unknown).
func (g *Graph) Deadlocks() []int {
	terminated := map[int]bool{}
	for _, es := range g.Edges {
		for _, e := range es {
			if e.Label.Kind == LDelta {
				terminated[e.To] = true
			}
		}
	}
	var out []int
	for s := range g.States {
		if len(g.Edges[s]) == 0 && !terminated[s] && !g.Frontier[s] {
			out = append(out, s)
		}
	}
	return out
}

// Labels returns the sorted set of distinct observable labels of the graph
// in readable form (gate keys plus "delta").
func (g *Graph) Labels() []string {
	set := map[string]bool{}
	for _, es := range g.Edges {
		for _, e := range es {
			switch e.Label.Kind {
			case LDelta:
				set["delta"] = true
			case LEvent:
				set[e.Label.Ev.Gate()] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CanReachDelta reports for each state whether some path leads to a δ
// transition (successful termination is still possible).
func (g *Graph) CanReachDelta() []bool {
	// Backward closure from sources of δ edges.
	rev := make([][]int, len(g.States))
	seed := make([]bool, len(g.States))
	for s, es := range g.Edges {
		for _, e := range es {
			rev[e.To] = append(rev[e.To], s)
			if e.Label.Kind == LDelta {
				seed[s] = true
			}
		}
	}
	out := make([]bool, len(g.States))
	var stack []int
	for s, ok := range seed {
		if ok {
			out[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !out[p] {
				out[p] = true
				stack = append(stack, p)
			}
		}
	}
	return out
}
