package lts

import (
	"reflect"
	"strconv"
	"testing"
)

// spillTestSource builds a deterministic synthetic graph large enough to
// force several run spills under a tiny budget: n states in a ring with
// chord edges, a τ self-avoiding chain, and a few terminal (deadlock)
// states hanging off the chords.
func spillTestSource(n int) *fakeSource {
	f := &fakeSource{edges: map[string][]GenTransition{}}
	name := func(i int) string { return "state-" + strconv.Itoa(i) }
	for i := 0; i < n; i++ {
		var out []GenTransition
		out = append(out, obs(name((i+1)%n)))
		if i%3 == 0 {
			out = append(out, tau(name((i*7+13)%n)))
		}
		if i%17 == 0 {
			// Terminal chord: a state with no outgoing transitions.
			out = append(out, obs("dead-"+strconv.Itoa(i)))
		}
		f.edges[name(i)] = out
	}
	return f
}

// assertGraphsIdentical requires byte-identical state numbering, keys and
// edge tables — the spilling explorer's contract is exact agreement with the
// in-memory explorers, not just bisimilarity.
func assertGraphsIdentical(t *testing.T, a, b *Graph, what string) {
	t.Helper()
	if a.NumStates() != b.NumStates() || a.NumTransitions() != b.NumTransitions() {
		t.Fatalf("%s: sizes differ: %d/%d vs %d/%d states/transitions",
			what, a.NumStates(), a.NumTransitions(), b.NumStates(), b.NumTransitions())
	}
	if !reflect.DeepEqual(a.Keys, b.Keys) {
		t.Fatalf("%s: state numbering differs", what)
	}
	if !reflect.DeepEqual(a.Edges, b.Edges) {
		t.Fatalf("%s: edge tables differ", what)
	}
	if a.Truncated != b.Truncated {
		t.Fatalf("%s: truncation flags differ: %v vs %v", what, a.Truncated, b.Truncated)
	}
	if len(a.Deadlocks()) != len(b.Deadlocks()) {
		t.Fatalf("%s: deadlock counts differ: %d vs %d", what, len(a.Deadlocks()), len(b.Deadlocks()))
	}
}

// TestSpillMatchesInMemoryExplorers is the determinism contract: under a
// budget tiny enough to force many spilled runs, the spilling explorer must
// produce exactly the graph the parallel explorer produces (which in turn
// agrees with the serial one on state sets; numbering is level-synchronous
// in both).
func TestSpillMatchesInMemoryExplorers(t *testing.T) {
	src := spillTestSource(900)
	lim := Limits{MaxStates: 5000}
	parallel, err := ExploreSourceParallel(src, "state-0", "state-0", lim, 4)
	if err != nil {
		t.Fatal(err)
	}
	spilled, stats, err := ExploreSourceSpill(src, "state-0", "state-0", lim, SpillConfig{Budget: 2048, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, parallel, spilled, "spill vs parallel")
	if stats.Runs == 0 {
		t.Error("2KiB budget over ~950 states spilled no runs")
	}
	// The index spills when an insert crosses the budget, so the peak may
	// overshoot by at most one entry (key bytes + bookkeeping overhead).
	if slack := int64(2048 + spillEntryOverhead + 64); stats.PeakMemBytes > slack {
		t.Errorf("peak index memory %d exceeds the 2048-byte budget beyond one entry (%d)", stats.PeakMemBytes, slack)
	}
	if stats.States != int64(parallel.NumStates()) || stats.Transitions != int64(parallel.NumTransitions()) {
		t.Errorf("stats (%d states, %d transitions) disagree with the graph (%d, %d)",
			stats.States, stats.Transitions, parallel.NumStates(), parallel.NumTransitions())
	}

	// The serial explorer discovers the same state set (numbering may agree
	// or not; the key SETS must).
	serial, err := ExploreSource(src, "state-0", "state-0", lim)
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumStates() != spilled.NumStates() || serial.NumTransitions() != spilled.NumTransitions() {
		t.Errorf("serial explorer sizes differ: %d/%d vs %d/%d",
			serial.NumStates(), serial.NumTransitions(), spilled.NumStates(), spilled.NumTransitions())
	}
}

// TestSpillLargeBudgetNeverSpills pins the fast path: with the default
// budget nothing is written to disk and the graph is still identical.
func TestSpillLargeBudgetNeverSpills(t *testing.T) {
	src := spillTestSource(300)
	lim := Limits{MaxStates: 5000}
	parallel, err := ExploreSourceParallel(src, "state-0", "state-0", lim, 2)
	if err != nil {
		t.Fatal(err)
	}
	spilled, stats, err := ExploreSourceSpill(src, "state-0", "state-0", lim, SpillConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, parallel, spilled, "spill (no-spill path) vs parallel")
	if stats.Runs != 0 || stats.SpilledBytes != 0 {
		t.Errorf("default budget spilled %d runs (%d bytes)", stats.Runs, stats.SpilledBytes)
	}
}

// TestSpillTruncationMatchesParallel pins that MaxStates truncation cuts the
// spilled exploration at the same level-synchronous boundary as the parallel
// explorer — the differential suites compare truncated graphs too.
func TestSpillTruncationMatchesParallel(t *testing.T) {
	src := spillTestSource(900)
	lim := Limits{MaxStates: 200}
	parallel, err := ExploreSourceParallel(src, "state-0", "state-0", lim, 4)
	if err != nil {
		t.Fatal(err)
	}
	spilled, stats, err := ExploreSourceSpill(src, "state-0", "state-0", lim, SpillConfig{Budget: 1024, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !spilled.Truncated || !stats.Truncated {
		t.Error("200-state cap over a 900-state graph did not truncate")
	}
	assertGraphsIdentical(t, parallel, spilled, "truncated spill vs parallel")
}

// TestSpillStatsOnly checks the counting mode: same state and transition
// totals as a full exploration, no graph retained, and depth limits
// rejected (they need retained edges).
func TestSpillStatsOnly(t *testing.T) {
	src := spillTestSource(400)
	lim := Limits{MaxStates: 5000}
	full, fullStats, err := ExploreSourceSpill(src, "state-0", "state-0", lim, SpillConfig{Budget: 2048, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	g, stats, err := ExploreSourceSpill(src, "state-0", "state-0", lim, SpillConfig{Budget: 2048, Dir: t.TempDir(), StatsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if g != nil {
		t.Error("stats-only exploration returned a graph")
	}
	if stats.States != fullStats.States || stats.Transitions != fullStats.Transitions {
		t.Errorf("stats-only counts (%d, %d) differ from full exploration (%d, %d)",
			stats.States, stats.Transitions, fullStats.States, fullStats.Transitions)
	}
	if full.NumStates() != int(stats.States) {
		t.Errorf("full graph has %d states, stats-only counted %d", full.NumStates(), stats.States)
	}

	if _, _, err := ExploreSourceSpill(src, "state-0", "state-0", Limits{MaxObsDepth: 3}, SpillConfig{StatsOnly: true}); err == nil {
		t.Error("stats-only with a depth limit did not error")
	}
}

// TestSpillDerivationErrorPropagates checks that a failing derivation
// surfaces as an error (with non-nil stats) rather than a partial graph.
func TestSpillDerivationErrorPropagates(t *testing.T) {
	src := spillTestSource(100)
	src.failOn = "state-50"
	g, stats, err := ExploreSourceSpill(src, "state-0", "state-0", Limits{MaxStates: 5000}, SpillConfig{Budget: 1024, Dir: t.TempDir()})
	if err == nil {
		t.Fatal("injected derivation failure did not surface")
	}
	if g != nil {
		t.Error("failed exploration returned a graph")
	}
	if stats == nil {
		t.Error("failed exploration returned nil stats")
	}
}
