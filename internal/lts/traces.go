package lts

import (
	"sort"
	"strconv"
	"strings"
)

// TraceSep separates labels within a rendered trace.
const TraceSep = " "

// WeakTraces enumerates the observable traces of the graph up to maxLen
// labels, skipping internal actions (weak traces). δ appears as the label
// "delta". The result is sorted and duplicate-free. Traces of a truncated
// graph are a subset of the true trace set.
//
// The empty trace is always included (as the empty string).
func WeakTraces(g *Graph, maxLen int) []string {
	set := map[string]bool{"": true}

	// stateSet-based BFS over determinized weak transitions would be
	// exponential in the worst case; trace enumeration is bounded by maxLen
	// so a direct memoized walk over (state, prefix) suffices here. To keep
	// the walk finite we track visited (state, depth) pairs per prefix via
	// iterative deepening on the ε-closure graph.
	closure := epsilonClosures(g)

	type item struct {
		states []int
		prefix string
		depth  int
	}
	seen := map[string]bool{}
	start := closure[0]
	queue := []item{{states: start, prefix: "", depth: 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.depth >= maxLen {
			continue
		}
		// Group successors by observable label.
		byLabel := map[string][]int{}
		names := map[string]string{}
		for _, s := range it.states {
			for _, e := range g.Edges[s] {
				if !e.Label.Observable() {
					continue
				}
				k := e.Label.Key()
				byLabel[k] = append(byLabel[k], closure[e.To]...)
				names[k] = e.Label.String()
			}
		}
		keys := make([]string, 0, len(byLabel))
		for k := range byLabel {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			prefix := it.prefix
			if prefix != "" {
				prefix += TraceSep
			}
			prefix += names[k]
			set[prefix] = true
			targets := dedupInts(byLabel[k])
			sig := prefix + "\x00" + intsKey(targets)
			if seen[sig] {
				continue
			}
			seen[sig] = true
			queue = append(queue, item{states: targets, prefix: prefix, depth: it.depth + 1})
		}
	}
	out := make([]string, 0, len(set))
	for tr := range set {
		out = append(out, tr)
	}
	sort.Strings(out)
	return out
}

// epsilonClosures returns, for every state, the set of states reachable by
// zero or more internal transitions (sorted).
func epsilonClosures(g *Graph) [][]int {
	out := make([][]int, len(g.States))
	for s := range g.States {
		visited := map[int]bool{s: true}
		stack := []int{s}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Edges[cur] {
				if e.Label.Kind == LInternal && !visited[e.To] {
					visited[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		cl := make([]int, 0, len(visited))
		for st := range visited {
			cl = append(cl, st)
		}
		sort.Ints(cl)
		out[s] = cl
	}
	return out
}

func dedupInts(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func intsKey(xs []int) string {
	var b strings.Builder
	for _, x := range xs {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

// AcceptsTrace reports whether the given observable trace (labels rendered
// as by Label.String, joined with TraceSep; "" is the empty trace) is a weak
// trace of the graph. For a truncated graph a false result may be spurious;
// true results are always sound.
func AcceptsTrace(g *Graph, trace string) bool {
	closure := epsilonClosures(g)
	current := closure[0]
	if trace == "" {
		return true
	}
	for _, want := range strings.Split(trace, TraceSep) {
		var next []int
		for _, s := range current {
			for _, e := range g.Edges[s] {
				if e.Label.Observable() && e.Label.String() == want {
					next = append(next, closure[e.To]...)
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		current = dedupInts(next)
	}
	return true
}

// TraceSlice is a parsed observable trace.
type TraceSlice []string

// ParseTrace splits a rendered trace into labels.
func ParseTrace(tr string) TraceSlice {
	if tr == "" {
		return nil
	}
	return strings.Split(tr, TraceSep)
}

// JoinTrace renders a label sequence as a trace string.
func JoinTrace(labels []string) string { return strings.Join(labels, TraceSep) }
