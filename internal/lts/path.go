package lts

// PathStep is one edge on a concrete path through a Graph: the source state
// and the edge taken from it. A path is a sequence of steps whose targets
// chain (step[k].Edge.To == step[k+1].From).
type PathStep struct {
	From int
	Edge Edge
}

// ShortestPathTo returns a shortest transition path (fewest edges) from the
// initial state 0 to the nearest state satisfying target, found by a
// parent-pointer breadth-first search over the explored edges. The second
// result is false when no target state is reachable. An empty (non-nil)
// path with ok=true means the initial state itself is a target.
//
// Minimality is exact on the explored graph: BFS discovers every state at
// its minimal edge distance, so no strictly shorter path to any target
// exists among the explored transitions.
func (g *Graph) ShortestPathTo(target func(state int) bool) ([]PathStep, bool) {
	n := g.NumStates()
	if n == 0 {
		return nil, false
	}
	if target(0) {
		return []PathStep{}, true
	}
	// Parent pointers: the state we came from and the edge index taken.
	parent := make([]int32, n)
	parentEdge := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	queue := make([]int, 0, 64)
	queue = append(queue, 0)
	parent[0] = 0 // root marks itself visited
	for len(queue) > 0 {
		head := queue[0]
		queue = queue[1:]
		for ei, e := range g.Edges[head] {
			if parent[e.To] >= 0 || e.To == 0 {
				continue
			}
			parent[e.To] = int32(head)
			parentEdge[e.To] = int32(ei)
			if target(e.To) {
				return g.unwind(parent, parentEdge, e.To), true
			}
			queue = append(queue, e.To)
		}
	}
	return nil, false
}

// unwind follows the parent pointers back from state to the root and returns
// the forward path.
func (g *Graph) unwind(parent, parentEdge []int32, state int) []PathStep {
	var rev []PathStep
	for state != 0 {
		p := int(parent[state])
		rev = append(rev, PathStep{From: p, Edge: g.Edges[p][parentEdge[state]]})
		state = p
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ObservableTrace projects a path onto its observable labels, rendered as by
// Label.String (internal steps are skipped; δ appears as "delta").
func ObservableTrace(path []PathStep) []string {
	var out []string
	for _, st := range path {
		if st.Edge.Label.Observable() {
			out = append(out, st.Edge.Label.String())
		}
	}
	return out
}
