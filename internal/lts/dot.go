package lts

import (
	"fmt"
	"strings"
)

// DOT renders the transition graph in Graphviz dot format: observable
// transitions as solid edges labelled with the event, internal actions as
// dashed grey edges, successful termination as double-circled targets.
// Frontier (truncated) states are drawn dashed.
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	b.WriteString("digraph lts {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle, fontsize=10];\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q; labelloc=top;\n", title)
	}
	terminated := map[int]bool{}
	for _, es := range g.Edges {
		for _, e := range es {
			if e.Label.Kind == LDelta {
				terminated[e.To] = true
			}
		}
	}
	for s := range g.Edges {
		attrs := []string{fmt.Sprintf("label=\"%d\"", s)}
		if s == 0 {
			attrs = append(attrs, "style=bold")
		}
		if terminated[s] {
			attrs = append(attrs, "shape=doublecircle")
		}
		if g.Frontier[s] {
			attrs = append(attrs, "style=dashed")
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", s, strings.Join(attrs, ", "))
	}
	for s, es := range g.Edges {
		for _, e := range es {
			switch e.Label.Kind {
			case LInternal:
				fmt.Fprintf(&b, "  n%d -> n%d [label=\"i\", style=dashed, color=gray];\n", s, e.To)
			case LDelta:
				fmt.Fprintf(&b, "  n%d -> n%d [label=\"δ\"];\n", s, e.To)
			default:
				fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", s, e.To, e.Label.Ev.String())
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
