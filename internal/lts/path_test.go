package lts

import (
	"testing"

	"repro/internal/lotos"
)

// pathGraph builds a bare graph with n states and the given edges (the
// expression/key/depth columns are irrelevant to path search).
func pathGraph(n int, edges map[int][]Edge) *Graph {
	g := &Graph{
		States: make([]lotos.Expr, n),
		Keys:   make([]string, n),
		Edges:  make([][]Edge, n),
		Depth:  make([]int, n),
	}
	for s, es := range edges {
		g.Edges[s] = es
	}
	return g
}

func ev(name string) Label { return EventLabel(lotos.ServiceEvent(name, 1)) }

func TestShortestPathToChain(t *testing.T) {
	// 0 -a-> 1 -i-> 2 -b-> 3
	g := pathGraph(4, map[int][]Edge{
		0: {{Label: ev("a"), To: 1}},
		1: {{Label: Internal(), To: 2}},
		2: {{Label: ev("b"), To: 3}},
	})
	path, ok := g.ShortestPathTo(func(s int) bool { return s == 3 })
	if !ok || len(path) != 3 {
		t.Fatalf("path = %v ok = %v, want 3 steps", path, ok)
	}
	// The steps chain: each target is the next step's source.
	for i := 0; i+1 < len(path); i++ {
		if path[i].Edge.To != path[i+1].From {
			t.Fatalf("path does not chain at step %d: %v", i, path)
		}
	}
	if path[0].From != 0 || path[len(path)-1].Edge.To != 3 {
		t.Errorf("path endpoints wrong: %v", path)
	}
	// The observable projection skips the internal step.
	trace := ObservableTrace(path)
	want := []string{ev("a").String(), ev("b").String()}
	if len(trace) != 2 || trace[0] != want[0] || trace[1] != want[1] {
		t.Errorf("trace = %v, want %v", trace, want)
	}
}

func TestShortestPathToPrefersShorterRoute(t *testing.T) {
	// Two routes to 3: 0->1->2->3 (three edges) and 0->4->3 (two edges).
	g := pathGraph(5, map[int][]Edge{
		0: {{Label: ev("a"), To: 1}, {Label: ev("x"), To: 4}},
		1: {{Label: ev("b"), To: 2}},
		2: {{Label: ev("c"), To: 3}},
		4: {{Label: ev("y"), To: 3}},
	})
	path, ok := g.ShortestPathTo(func(s int) bool { return s == 3 })
	if !ok || len(path) != 2 {
		t.Fatalf("path = %v ok = %v, want the 2-step route", path, ok)
	}
	if path[0].Edge.To != 4 {
		t.Errorf("took the long route: %v", path)
	}
}

func TestShortestPathToRootAndUnreachable(t *testing.T) {
	g := pathGraph(3, map[int][]Edge{0: {{Label: ev("a"), To: 1}}})
	// The root itself is a target: empty non-nil path.
	path, ok := g.ShortestPathTo(func(s int) bool { return s == 0 })
	if !ok || path == nil || len(path) != 0 {
		t.Errorf("root target: path = %v ok = %v", path, ok)
	}
	// State 2 has no incoming edges.
	if _, ok := g.ShortestPathTo(func(s int) bool { return s == 2 }); ok {
		t.Error("found a path to an unreachable state")
	}
	// No path in an empty graph.
	empty := pathGraph(0, nil)
	if _, ok := empty.ShortestPathTo(func(int) bool { return true }); ok {
		t.Error("found a path in an empty graph")
	}
}

func TestShortestPathToHandlesCycles(t *testing.T) {
	// A cycle 0->1->0 with an exit 1->2: BFS must terminate and find it.
	g := pathGraph(3, map[int][]Edge{
		0: {{Label: ev("a"), To: 1}},
		1: {{Label: ev("b"), To: 0}, {Label: ev("c"), To: 2}},
	})
	path, ok := g.ShortestPathTo(func(s int) bool { return s == 2 })
	if !ok || len(path) != 2 {
		t.Fatalf("path = %v ok = %v, want 2 steps through the cycle", path, ok)
	}
}

func TestObservableTraceRendersDelta(t *testing.T) {
	g := pathGraph(3, map[int][]Edge{
		0: {{Label: Internal(), To: 1}},
		1: {{Label: Delta(), To: 2}},
	})
	path, ok := g.ShortestPathTo(func(s int) bool { return s == 2 })
	if !ok {
		t.Fatal("no path")
	}
	trace := ObservableTrace(path)
	if len(trace) != 1 || trace[0] != "delta" {
		t.Errorf("trace = %v, want [delta]", trace)
	}
}
