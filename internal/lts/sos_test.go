package lts

import (
	"errors"
	"sort"
	"testing"

	"repro/internal/lotos"
)

// envForExpr builds an environment for a bare expression with no processes.
func envForExpr(t *testing.T) *Env {
	t.Helper()
	res, err := lotos.Resolve(&lotos.Spec{Root: &lotos.DefBlock{Expr: lotos.X()}})
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(res)
}

func labelStrings(ts []Transition) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Label.String()
	}
	sort.Strings(out)
	return out
}

func wantLabels(t *testing.T, src string, want ...string) {
	t.Helper()
	env := envForExpr(t)
	ts, err := env.Transitions(lotos.MustParseExpr(src))
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	got := labelStrings(ts)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("%s: labels %v, want %v", src, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: labels %v, want %v", src, got, want)
		}
	}
}

func TestTransitionsBasics(t *testing.T) {
	wantLabels(t, "stop")
	wantLabels(t, "exit", "delta")
	wantLabels(t, "a1; exit", "a1")
	wantLabels(t, "i; a1; exit", "i")
	wantLabels(t, "a1; exit [] b2; exit", "a1", "b2")
	wantLabels(t, "a1; exit ||| b2; exit", "a1", "b2")
	wantLabels(t, "a1; exit >> b2; exit", "a1")
	wantLabels(t, "exit >> b2; exit", "i")
	wantLabels(t, "a1; exit [> b2; exit", "a1", "b2")
	wantLabels(t, "exit [> b2; exit", "delta", "b2")
}

func TestFullSynchronization(t *testing.T) {
	// "||" forces synchronization: only the common initial action fires.
	wantLabels(t, "a1; b2; exit || a1; c3; exit", "a1")
	// After a1, the sides offer b2 and c3, which cannot synchronize: deadlock.
	env := envForExpr(t)
	e := lotos.MustParseExpr("a1; b2; exit || a1; c3; exit")
	ts, err := env.Transitions(e)
	if err != nil {
		t.Fatal(err)
	}
	next, err := env.Transitions(ts[0].To)
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != 0 {
		t.Fatalf("expected deadlock after a1, got %v", labelStrings(next))
	}
}

func TestGateSynchronization(t *testing.T) {
	// Only a1 synchronizes; b2/c3 interleave.
	wantLabels(t, "a1; b2; exit |[a1]| a1; c3; exit", "a1")
	wantLabels(t, "b2; exit |[a1]| c3; exit", "b2", "c3")
}

func TestDeltaSynchronizesInParallel(t *testing.T) {
	wantLabels(t, "exit ||| exit", "delta")
	wantLabels(t, "exit ||| a1; exit", "a1")
	// δ on one side only: composition cannot terminate yet.
	env := envForExpr(t)
	ts, err := env.Transitions(lotos.MustParseExpr("exit ||| a1; exit"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Label.Kind != LEvent {
		t.Fatalf("got %v", labelStrings(ts))
	}
}

func TestEnableRule(t *testing.T) {
	env := envForExpr(t)
	e := lotos.MustParseExpr("a1; exit >> b2; exit")
	ts, _ := env.Transitions(e)
	if len(ts) != 1 || ts[0].Label.String() != "a1" {
		t.Fatalf("got %v", labelStrings(ts))
	}
	// Successor is "exit >> b2; exit" whose only move is i into b2.
	ts2, _ := env.Transitions(ts[0].To)
	if len(ts2) != 1 || ts2[0].Label.Kind != LInternal {
		t.Fatalf("after a1: %v", labelStrings(ts2))
	}
	ts3, _ := env.Transitions(ts2[0].To)
	if len(ts3) != 1 || ts3[0].Label.String() != "b2" {
		t.Fatalf("after i: %v", labelStrings(ts3))
	}
}

func TestDisableRules(t *testing.T) {
	env := envForExpr(t)
	e := lotos.MustParseExpr("a1; b1; exit [> d3; exit")
	ts, _ := env.Transitions(e)
	if got := labelStrings(ts); got[0] != "a1" || got[1] != "d3" {
		t.Fatalf("got %v", got)
	}
	// Taking a1 keeps the disabling alternative armed.
	var afterA lotos.Expr
	for _, tr := range ts {
		if tr.Label.String() == "a1" {
			afterA = tr.To
		}
	}
	ts2, _ := env.Transitions(afterA)
	if got := labelStrings(ts2); len(got) != 2 || got[0] != "b1" || got[1] != "d3" {
		t.Fatalf("after a1: %v", got)
	}
	// Taking d3 kills the normal part.
	var afterD lotos.Expr
	for _, tr := range ts {
		if tr.Label.String() == "d3" {
			afterD = tr.To
		}
	}
	ts3, _ := env.Transitions(afterD)
	if got := labelStrings(ts3); len(got) != 1 || got[0] != "delta" {
		t.Fatalf("after d3: %v", got)
	}
}

func TestHideRule(t *testing.T) {
	env := envForExpr(t)
	e := lotos.HideIn([]string{"a1"}, lotos.MustParseExpr("a1; b2; exit"))
	ts, _ := env.Transitions(e)
	if len(ts) != 1 || ts[0].Label.Kind != LInternal {
		t.Fatalf("hidden action must become i: %v", labelStrings(ts))
	}
	ts2, _ := env.Transitions(ts[0].To)
	if len(ts2) != 1 || ts2[0].Label.String() != "b2" {
		t.Fatalf("unhidden action must stay visible: %v", labelStrings(ts2))
	}
}

func TestProcessUnfolding(t *testing.T) {
	sp := lotos.MustParse(`SPEC A WHERE PROC A = a1; A [] b1; exit END ENDSPEC`)
	lotos.Number(sp)
	env, err := EnvFor(sp)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := env.Transitions(sp.Root.Expr)
	if err != nil {
		t.Fatal(err)
	}
	got := labelStrings(ts)
	if len(got) != 2 || got[0] != "a1" || got[1] != "b1" {
		t.Fatalf("got %v", got)
	}
}

func TestUnguardedRecursionDetected(t *testing.T) {
	sp := lotos.MustParse(`SPEC A WHERE PROC A = A END ENDSPEC`)
	lotos.Number(sp)
	env, err := EnvFor(sp)
	if err != nil {
		t.Fatal(err)
	}
	_, err = env.Transitions(sp.Root.Expr)
	if !errors.Is(err, ErrUnguardedRecursion) {
		t.Fatalf("got %v, want ErrUnguardedRecursion", err)
	}
}

func TestOccurrenceStamping(t *testing.T) {
	sp := lotos.MustParse(`SPEC A WHERE PROC A = a1; A END ENDSPEC`)
	lotos.Number(sp)
	env, err := EnvFor(sp)
	if err != nil {
		t.Fatal(err)
	}
	ref := sp.Root.Expr.(*lotos.ProcRef)
	body, err := env.Instantiate(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Root ref has node id 1: first instance occurrence is 0/1.
	inner := body.(*lotos.Prefix).Cont.(*lotos.ProcRef)
	if inner.Occ != "0/1" {
		t.Fatalf("inner occ = %q, want 0/1", inner.Occ)
	}
	// Instantiating the inner reference nests the occurrence further.
	body2, err := env.Instantiate(inner)
	if err != nil {
		t.Fatal(err)
	}
	inner2 := body2.(*lotos.Prefix).Cont.(*lotos.ProcRef)
	want := "0/1/" + itoaT(inner.ID())
	if inner2.Occ != want {
		t.Fatalf("occ = %q, want %q", inner2.Occ, want)
	}
	// Memoization returns the identical instance.
	again, _ := env.Instantiate(ref)
	if again != body {
		t.Error("Instantiate must memoize per (definition, occurrence)")
	}
}

func itoaT(x int) string {
	if x == 0 {
		return "0"
	}
	digits := ""
	for x > 0 {
		digits = string(rune('0'+x%10)) + digits
		x /= 10
	}
	return digits
}

func TestMessageOccurrenceStamping(t *testing.T) {
	sp := lotos.MustParse(`SPEC A WHERE PROC A = s2(7); exit END ENDSPEC`)
	lotos.Number(sp)
	env, err := EnvFor(sp)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := env.Transitions(sp.Root.Expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("transitions: %v", labelStrings(ts))
	}
	ev := ts[0].Label.Ev
	if ev.Occ == lotos.OccSymbolic || ev.Occ == "" {
		t.Fatalf("message occurrence must be concrete after unfolding, got %q", ev.Occ)
	}
}

func TestChoiceResolvedByInternalAction(t *testing.T) {
	env := envForExpr(t)
	e := lotos.MustParseExpr("a1; exit [] i; b1; exit")
	ts, _ := env.Transitions(e)
	var afterI lotos.Expr
	for _, tr := range ts {
		if tr.Label.Kind == LInternal {
			afterI = tr.To
		}
	}
	if afterI == nil {
		t.Fatal("missing i transition")
	}
	ts2, _ := env.Transitions(afterI)
	if len(ts2) != 1 || ts2[0].Label.String() != "b1" {
		t.Fatalf("i must resolve the choice: %v", labelStrings(ts2))
	}
}
