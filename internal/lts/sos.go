package lts

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/lotos"
)

// ErrUnguardedRecursion is reported when deriving the transitions of an
// expression requires unfolding process instantiations beyond the configured
// bound without reaching an action prefix — the symptom of an unguarded
// definition such as "PROC A = A END".
var ErrUnguardedRecursion = errors.New("lts: unguarded recursion (unfold bound exceeded)")

// DefaultUnfoldBound is the default number of nested process unfoldings
// allowed while deriving the transitions of a single expression.
const DefaultUnfoldBound = 128

// Env supplies process definitions and instantiation to the transition
// rules. The zero value is not usable; construct with NewEnv.
type Env struct {
	res *lotos.Resolution
	// UnfoldBound limits nested unfoldings within one Transitions call.
	UnfoldBound int
	// memo caches instantiated process bodies keyed by definition pointer
	// and occurrence, so repeated exploration of recursive specifications
	// does not re-clone bodies.
	memo map[memoKey]lotos.Expr
}

type memoKey struct {
	def *lotos.ProcDef
	occ string
}

// NewEnv builds an environment from a resolved specification.
func NewEnv(res *lotos.Resolution) *Env {
	return &Env{res: res, UnfoldBound: DefaultUnfoldBound, memo: map[memoKey]lotos.Expr{}}
}

// EnvFor resolves the specification and builds an environment in one step.
func EnvFor(sp *lotos.Spec) (*Env, error) {
	res, err := lotos.Resolve(sp)
	if err != nil {
		return nil, err
	}
	return NewEnv(res), nil
}

// Instantiate returns the body of the process referenced by ref, cloned and
// stamped with the occurrence number of the newly created instance:
// parent occurrence (OccRoot when the reference sits at the root level)
// extended with the node number of the call site, "occ/N" (Section 3.5).
func (env *Env) Instantiate(ref *lotos.ProcRef) (lotos.Expr, error) {
	def := ref.Def
	if def == nil {
		def = env.res.Def(ref)
	}
	if def == nil {
		return nil, fmt.Errorf("lts: unresolved process reference %s", ref.Name)
	}
	parent := ref.Occ
	if parent == "" {
		parent = lotos.OccRoot
	}
	occ := parent + "/" + strconv.Itoa(ref.ID())
	key := memoKey{def: def, occ: occ}
	if e, ok := env.memo[key]; ok {
		return e, nil
	}
	body := lotos.Clone(def.Body.Expr)
	stampOccurrence(body, occ)
	env.memo[key] = body
	return body, nil
}

// stampOccurrence marks every symbolic message event and every untagged
// process reference of the instantiated body with the instance occurrence.
func stampOccurrence(e lotos.Expr, occ string) {
	lotos.Walk(e, func(x lotos.Expr) {
		switch n := x.(type) {
		case *lotos.Prefix:
			if n.Ev.IsMessage() && n.Ev.Tag == "" && n.Ev.Occ == lotos.OccSymbolic {
				n.Ev.Occ = occ
			}
		case *lotos.ProcRef:
			if n.Occ == "" {
				n.Occ = occ
			}
		}
	})
}

// Transitions derives all single-step transitions of e under the
// environment. The result order is deterministic (left operands first).
func (env *Env) Transitions(e lotos.Expr) ([]Transition, error) {
	bound := env.UnfoldBound
	if bound <= 0 {
		bound = DefaultUnfoldBound
	}
	return env.trans(e, bound)
}

func (env *Env) trans(e lotos.Expr, fuel int) ([]Transition, error) {
	switch x := e.(type) {
	case *lotos.Stop:
		return nil, nil

	case *lotos.Exit, *lotos.Empty:
		// Empty is the derivation-time neutral element and behaves as exit.
		return []Transition{{Label: Delta(), To: lotos.Halt()}}, nil

	case *lotos.Prefix:
		return []Transition{{Label: EventLabel(x.Ev), To: x.Cont}}, nil

	case *lotos.Choice:
		lt, err := env.trans(x.L, fuel)
		if err != nil {
			return nil, err
		}
		rt, err := env.trans(x.R, fuel)
		if err != nil {
			return nil, err
		}
		return append(lt, rt...), nil

	case *lotos.Parallel:
		return env.transParallel(x, fuel)

	case *lotos.Enable:
		lt, err := env.trans(x.L, fuel)
		if err != nil {
			return nil, err
		}
		var out []Transition
		for _, t := range lt {
			if t.Label.Kind == LDelta {
				// exit >> B becomes an internal step into B (law E1).
				out = append(out, Transition{Label: Internal(), To: x.R})
			} else {
				out = append(out, Transition{Label: t.Label, To: lotos.Enb(t.To, x.R)})
			}
		}
		return out, nil

	case *lotos.Disable:
		lt, err := env.trans(x.L, fuel)
		if err != nil {
			return nil, err
		}
		var out []Transition
		for _, t := range lt {
			if t.Label.Kind == LDelta {
				// Successful termination of the normal part discards the
				// disabling part.
				out = append(out, Transition{Label: Delta(), To: t.To})
			} else {
				out = append(out, Transition{Label: t.Label, To: lotos.Dis(t.To, x.R)})
			}
		}
		rt, err := env.trans(x.R, fuel)
		if err != nil {
			return nil, err
		}
		// Any initial action of the disabling part interrupts the normal part.
		out = append(out, rt...)
		return out, nil

	case *lotos.Hide:
		bt, err := env.trans(x.Body, fuel)
		if err != nil {
			return nil, err
		}
		var out []Transition
		for _, t := range bt {
			to := lotos.HideIn(x.Gates, t.To)
			label := t.Label
			if label.Kind == LEvent && x.Hidden(label.Ev) {
				label = Internal()
			}
			out = append(out, Transition{Label: label, To: to})
		}
		return out, nil

	case *lotos.ProcRef:
		if fuel <= 0 {
			return nil, ErrUnguardedRecursion
		}
		body, err := env.Instantiate(x)
		if err != nil {
			return nil, err
		}
		return env.trans(body, fuel-1)
	}
	return nil, fmt.Errorf("lts: no transition rule for %T", e)
}

func (env *Env) transParallel(x *lotos.Parallel, fuel int) ([]Transition, error) {
	lt, err := env.trans(x.L, fuel)
	if err != nil {
		return nil, err
	}
	rt, err := env.trans(x.R, fuel)
	if err != nil {
		return nil, err
	}
	rebuild := func(l, r lotos.Expr) lotos.Expr {
		p := &lotos.Parallel{L: l, R: r, Kind: x.Kind, Sync: x.Sync}
		p.SetID(x.ID())
		return p
	}
	var out []Transition
	// Independent moves of the left side.
	for _, t := range lt {
		if t.Label.Kind == LDelta || (t.Label.Kind == LEvent && x.SyncsOn(t.Label.Ev)) {
			continue
		}
		out = append(out, Transition{Label: t.Label, To: rebuild(t.To, x.R)})
	}
	// Independent moves of the right side.
	for _, t := range rt {
		if t.Label.Kind == LDelta || (t.Label.Kind == LEvent && x.SyncsOn(t.Label.Ev)) {
			continue
		}
		out = append(out, Transition{Label: t.Label, To: rebuild(x.L, t.To)})
	}
	// Synchronized moves: matching gates, plus mandatory δ synchronization.
	for _, a := range lt {
		for _, b := range rt {
			switch {
			case a.Label.Kind == LDelta && b.Label.Kind == LDelta:
				out = append(out, Transition{Label: Delta(), To: rebuild(a.To, b.To)})
			case a.Label.Kind == LEvent && b.Label.Kind == LEvent &&
				x.SyncsOn(a.Label.Ev) && a.Label.Key() == b.Label.Key():
				out = append(out, Transition{Label: a.Label, To: rebuild(a.To, b.To)})
			}
		}
	}
	return out, nil
}
