package lts

import (
	"strings"
	"testing"

	"repro/internal/lotos"
)

func mustGraph(t *testing.T, src string, lim Limits) *Graph {
	t.Helper()
	sp := lotos.MustParse(src)
	lotos.Number(sp)
	g, err := ExploreSpec(sp, lim)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExploreSequential(t *testing.T) {
	g := mustGraph(t, "SPEC a1; b2; exit ENDSPEC", Limits{})
	// a1;b2;exit -> b2;exit -> exit -> stop
	if g.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", g.NumStates())
	}
	if g.NumTransitions() != 3 {
		t.Fatalf("transitions = %d, want 3", g.NumTransitions())
	}
	if g.Truncated {
		t.Error("must not truncate")
	}
	if len(g.Deadlocks()) != 0 {
		t.Errorf("deadlocks = %v", g.Deadlocks())
	}
}

func TestExploreRecursive(t *testing.T) {
	// a^n b (tail recursion): finite graph because states repeat... the
	// occurrence stamps make each unfolding distinct, so the graph is
	// infinite and must truncate at the cap.
	g := mustGraph(t, "SPEC A WHERE PROC A = a1; A [] b1; exit END ENDSPEC", Limits{MaxStates: 200})
	if !g.Truncated {
		t.Error("recursive spec with occurrence stamping must truncate")
	}
	if g.NumStates() != 200 {
		t.Fatalf("states = %d, want 200 (cap)", g.NumStates())
	}
}

func TestExploreDepthLimit(t *testing.T) {
	g := mustGraph(t, "SPEC A WHERE PROC A = a1; A [] b1; exit END ENDSPEC", Limits{MaxDepth: 3})
	if !g.Truncated {
		t.Error("depth-limited exploration must be marked truncated")
	}
	for s, d := range g.Depth {
		if d > 3+1 {
			t.Errorf("state %d at depth %d exceeds limit", s, d)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Mismatched full synchronization deadlocks after a1.
	g := mustGraph(t, "SPEC a1; b2; exit || a1; c3; exit ENDSPEC", Limits{})
	dl := g.Deadlocks()
	if len(dl) != 1 {
		t.Fatalf("deadlocks = %v, want exactly one", dl)
	}
	// Successful termination is not a deadlock.
	g2 := mustGraph(t, "SPEC a1; exit ENDSPEC", Limits{})
	if len(g2.Deadlocks()) != 0 {
		t.Errorf("termination misreported as deadlock: %v", g2.Deadlocks())
	}
	// stop is a deadlock.
	g3 := mustGraph(t, "SPEC a1; stop ENDSPEC", Limits{})
	if len(g3.Deadlocks()) != 1 {
		t.Errorf("stop not reported: %v", g3.Deadlocks())
	}
}

func TestCanReachDelta(t *testing.T) {
	g := mustGraph(t, "SPEC a1; exit [] b1; stop ENDSPEC", Limits{})
	reach := g.CanReachDelta()
	if !reach[0] {
		t.Error("initial state can reach delta via a1")
	}
	// The state after b1 (stop) cannot.
	foundStuck := false
	for s := range g.States {
		if len(g.Edges[s]) == 0 && !reach[s] {
			foundStuck = true
		}
	}
	if !foundStuck {
		t.Error("expected an unreachable-delta state")
	}
}

func TestLabelsSet(t *testing.T) {
	g := mustGraph(t, "SPEC a1; exit ||| b2; exit ENDSPEC", Limits{})
	ls := g.Labels()
	joined := strings.Join(ls, " ")
	if !strings.Contains(joined, "a@1") || !strings.Contains(joined, "b@2") {
		t.Errorf("labels = %v", ls)
	}
}

func TestWeakTraces(t *testing.T) {
	g := mustGraph(t, "SPEC a1; b2; exit ENDSPEC", Limits{})
	trs := WeakTraces(g, 10)
	want := []string{"", "a1", "a1 b2", "a1 b2 delta"}
	if len(trs) != len(want) {
		t.Fatalf("traces = %v, want %v", trs, want)
	}
	for i := range want {
		if trs[i] != want[i] {
			t.Fatalf("traces = %v, want %v", trs, want)
		}
	}
}

func TestWeakTracesSkipInternal(t *testing.T) {
	g := mustGraph(t, "SPEC a1; exit >> b2; exit ENDSPEC", Limits{})
	trs := WeakTraces(g, 10)
	for _, tr := range trs {
		if strings.Contains(tr, "i") && !strings.Contains(tr, "delta") {
			// labels named "i" must never appear; "delta" contains no 'i'
			// except the check above is crude: assert directly
			t.Fatalf("internal action leaked into weak trace %q", tr)
		}
	}
	found := false
	for _, tr := range trs {
		if tr == "a1 b2 delta" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing full trace, got %v", trs)
	}
}

func TestWeakTracesInterleaving(t *testing.T) {
	g := mustGraph(t, "SPEC a1; exit ||| b2; exit ENDSPEC", Limits{})
	trs := map[string]bool{}
	for _, tr := range WeakTraces(g, 4) {
		trs[tr] = true
	}
	for _, want := range []string{"a1 b2 delta", "b2 a1 delta"} {
		if !trs[want] {
			t.Errorf("missing interleaving %q in %v", want, trs)
		}
	}
}

func TestWeakTracesChoiceVsInternalChoice(t *testing.T) {
	// External choice and internal choice have the same weak traces but
	// differ in branching structure (checked by bisimulation elsewhere).
	ext := mustGraph(t, "SPEC a1; exit [] b1; exit ENDSPEC", Limits{})
	intl := mustGraph(t, "SPEC i; a1; exit [] i; b1; exit ENDSPEC", Limits{})
	e := WeakTraces(ext, 5)
	n := WeakTraces(intl, 5)
	if JoinTrace(e) != JoinTrace(n) {
		t.Errorf("weak trace sets differ:\n%v\n%v", e, n)
	}
}

func TestAcceptsTrace(t *testing.T) {
	g := mustGraph(t, "SPEC a1; (b2; exit [] c3; exit) ENDSPEC", Limits{})
	for _, ok := range []string{"", "a1", "a1 b2", "a1 c3", "a1 b2 delta"} {
		if !AcceptsTrace(g, ok) {
			t.Errorf("AcceptsTrace(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"b2", "a1 a1", "a1 b2 c3"} {
		if AcceptsTrace(g, bad) {
			t.Errorf("AcceptsTrace(%q) = true, want false", bad)
		}
	}
}

func TestParseJoinTrace(t *testing.T) {
	if len(ParseTrace("")) != 0 {
		t.Error("empty trace must parse to nil")
	}
	tr := ParseTrace("a1 b2 delta")
	if len(tr) != 3 || tr[2] != "delta" {
		t.Errorf("parsed %v", tr)
	}
	if JoinTrace(tr) != "a1 b2 delta" {
		t.Error("join/parse mismatch")
	}
}

func TestExample2AnBnTraces(t *testing.T) {
	// Example 2 of the paper: traces have the shape a^n b^n for n >= 1.
	src := `SPEC A WHERE PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END ENDSPEC`
	g := mustGraph(t, src, Limits{MaxStates: 5000})
	trs := WeakTraces(g, 6)
	seen := map[string]bool{}
	for _, tr := range trs {
		seen[tr] = true
	}
	for _, want := range []string{"a1 b2 delta", "a1 a1 b2 b2", "a1 a1 a1 b2 b2 b2"} {
		if !seen[want] {
			t.Errorf("missing a^n b^n trace %q", want)
		}
	}
	for _, bad := range []string{"b2", "a1 b2 b2", "a1 a1 b2 delta", "a1 b2 a1"} {
		if seen[bad] {
			t.Errorf("invalid trace %q accepted", bad)
		}
	}
}

func TestLabelHelpers(t *testing.T) {
	if Internal().Observable() || !Delta().Observable() {
		t.Error("observability wrong")
	}
	if Internal().String() != "i" || Delta().String() != "delta" {
		t.Error("strings wrong")
	}
	ev := lotos.ServiceEvent("a", 1)
	if EventLabel(ev).Key() != ev.Gate() {
		t.Error("event label key mismatch")
	}
	if EventLabel(lotos.InternalEvent()).Kind != LInternal {
		t.Error("internal event must map to LInternal")
	}
	if Internal().Key() == Delta().Key() {
		t.Error("i and delta keys must differ")
	}
}

func TestDOTOutput(t *testing.T) {
	g := mustGraph(t, "SPEC a1; exit >> b2; exit ENDSPEC", Limits{})
	dot := g.DOT("demo")
	for _, want := range []string{
		"digraph lts", "rankdir=LR", `label="demo"`,
		`label="a1"`, "style=dashed, color=gray", `label="δ"`, "doublecircle",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
