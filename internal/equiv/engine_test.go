package equiv

import (
	"testing"

	"repro/internal/lotos"
	"repro/internal/lts"
)

func TestDedupDoesNotMutateInput(t *testing.T) {
	in := []int{5, 3, 3, 1, 5}
	snapshot := append([]int(nil), in...)
	out := dedup(in)
	for i := range in {
		if in[i] != snapshot[i] {
			t.Fatalf("dedup mutated its input: %v (was %v)", in, snapshot)
		}
	}
	want := []int{1, 3, 5}
	if len(out) != len(want) {
		t.Fatalf("dedup = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("dedup = %v, want %v", out, want)
		}
	}
}

func TestDedupSharedClosureAliasing(t *testing.T) {
	// Two views into one backing array, as shared ε-closure slices are: the
	// dedup of one view must not reorder or compact through the other.
	backing := []int{9, 2, 7, 2, 4}
	a := backing[:3]
	b := backing[2:]
	_ = dedup(a)
	if b[0] != 7 || b[1] != 2 || b[2] != 4 {
		t.Fatalf("dedup of an aliased view corrupted the other view: %v", backing)
	}
}

// TestQuotientEmptyKeyState regresses the "unassigned" sentinel: a state
// whose canonical key is legitimately empty must still be adopted as its
// class representative (the old q.Keys[from] == "" check made every later
// state of the class overwrite it).
func TestQuotientEmptyKeyState(t *testing.T) {
	// Hand-built two-state graph: 0 --a--> 1, both keys empty, distinct
	// classes (state 1 is terminal).
	ev := lotos.ServiceEvent("a", 1)
	g := &lts.Graph{
		States:   make([]lotos.Expr, 2),
		Keys:     []string{"", ""},
		Edges:    [][]lts.Edge{{{Label: lts.EventLabel(ev), To: 1}}, nil},
		Depth:    []int{0, 1},
		ObsDepth: []int{0, 1},
		Frontier: map[int]bool{},
	}
	q := QuotientWeak(g)
	if q.NumStates() != 2 {
		t.Fatalf("quotient states = %d, want 2", q.NumStates())
	}
	if q.Keys[0] != "" || q.Keys[1] != "" {
		t.Fatalf("quotient keys = %q", q.Keys)
	}
	if len(q.Edges[0]) != 1 || q.Edges[0][0].To != 1 {
		t.Fatalf("quotient edges = %v", q.Edges)
	}
	if !WeakBisimilar(g, q) {
		t.Fatal("quotient not bisimilar to original")
	}
}

func TestTauCycleCollapsesToOneClass(t *testing.T) {
	// A hand-built three-state τ-cycle (recursive specs explore to fresh
	// occurrence numbers, so cycles only arise through key canonicalization
	// — e.g. in composed product graphs). Every state shares one τ-SCC and
	// one class, and the cycle is weakly bisimilar to stop (no observable
	// behaviour, no termination).
	tau := lts.Internal()
	g := &lts.Graph{
		States: make([]lotos.Expr, 3),
		Keys:   []string{"s0", "s1", "s2"},
		Edges: [][]lts.Edge{
			{{Label: tau, To: 1}},
			{{Label: tau, To: 2}},
			{{Label: tau, To: 0}},
		},
		Depth:    []int{0, 1, 2},
		ObsDepth: []int{0, 0, 0},
		Frontier: map[int]bool{},
	}
	if n := NumClassesWeak(g); n != 1 {
		t.Fatalf("τ-cycle classes = %d, want 1", n)
	}
	if !WeakBisimilar(g, graphOf(t, "stop")) {
		t.Fatal("τ-divergent loop not weakly bisimilar to stop")
	}
	if RefNumClassesWeak(g) != 1 {
		t.Fatal("reference disagrees on the τ-cycle")
	}
}

func TestWeakBisimilarStatsCounters(t *testing.T) {
	g1 := graphOf(t, "a1; i; b2; exit")
	g2 := graphOf(t, "a1; b2; exit")
	ok, st := WeakBisimilarStats(g1, g2)
	if !ok {
		t.Fatal("expected weakly bisimilar")
	}
	if st.States != g1.NumStates()+g2.NumStates() {
		t.Errorf("stats states = %d, want %d", st.States, g1.NumStates()+g2.NumStates())
	}
	if st.TauSCCs <= 0 || st.TauSCCs > st.States {
		t.Errorf("stats τ-SCCs = %d out of range", st.TauSCCs)
	}
	if st.SaturationEdges < st.TauSCCs {
		t.Errorf("stats saturation edges = %d < SCC count %d (ε rows missing)", st.SaturationEdges, st.TauSCCs)
	}
	if st.RefinementRounds < 1 {
		t.Errorf("stats rounds = %d", st.RefinementRounds)
	}
	if st.Blocks < 1 || st.Blocks > st.TauSCCs {
		t.Errorf("stats blocks = %d out of range", st.Blocks)
	}
	if st.SaturateNanos < 0 || st.RefineNanos < 0 {
		t.Errorf("negative phase times: %+v", st)
	}
}

// TestRefineParallelMatchesSerial forces both code paths of the per-round
// signature computation over the same relation and checks identical
// partitions (the parallel path must be deterministic).
func TestRefineParallelMatchesSerial(t *testing.T) {
	// A chain of 2*refineParallelMin states with alternating labels: big
	// enough to cross the parallel threshold, fully distinguishable, so the
	// refinement runs many rounds.
	n := 2 * refineParallelMin
	off := make([]int, n+1)
	pairs := make([]uint64, 0, n)
	for s := 0; s < n; s++ {
		if s+1 < n {
			pairs = append(pairs, packPair(lts.LabelID(s%3), int32(s+1)))
		}
		off[s+1] = len(pairs)
	}
	serialBlock, serialBlocks, serialRounds := refinePacked(n, off, pairs, 1)
	parBlock, parBlocks, parRounds := refinePacked(n, off, pairs, 8)
	if serialBlocks != parBlocks || serialRounds != parRounds {
		t.Fatalf("serial (%d blocks, %d rounds) != parallel (%d blocks, %d rounds)",
			serialBlocks, serialRounds, parBlocks, parRounds)
	}
	for i := range serialBlock {
		if serialBlock[i] != parBlock[i] {
			t.Fatalf("block[%d]: serial %d != parallel %d", i, serialBlock[i], parBlock[i])
		}
	}
	if serialBlocks != n {
		t.Fatalf("chain of %d distinguishable states refined to %d blocks", n, serialBlocks)
	}
}

func TestLabelTableInterning(t *testing.T) {
	tab := lts.NewLabelTable()
	a := tab.Intern(lts.EventLabel(lotos.ServiceEvent("a", 1)))
	b := tab.Intern(lts.EventLabel(lotos.ServiceEvent("b", 2)))
	i1 := tab.Intern(lts.Internal())
	d := tab.Intern(lts.Delta())
	if a == b || a == i1 || b == d || i1 == d {
		t.Fatalf("distinct labels share ids: a=%d b=%d i=%d d=%d", a, b, i1, d)
	}
	if got := tab.Intern(lts.EventLabel(lotos.ServiceEvent("a", 1))); got != a {
		t.Fatalf("re-interning a1 gave %d, want %d", got, a)
	}
	if !tab.Observable(a) || !tab.Observable(d) || tab.Observable(i1) {
		t.Fatal("observability lost through interning")
	}
	if tab.Len() != 4 {
		t.Fatalf("table len = %d, want 4", tab.Len())
	}
}
