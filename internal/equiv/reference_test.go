package equiv

// Differential validation of the integer engine against the retained
// map/string reference checker (reference.go): for hand-picked law pairs
// and a randomized sweep of guarded behaviour expressions, every public
// verdict — WeakBisimilar, ObservationCongruent, StrongBisimilar,
// NumClassesWeak — must agree exactly. The corpus-wide differential sweep
// (service vs composed graphs plus mutants) lives in the root package,
// which can import internal/compose.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/lts"
)

// diffPairs are expression pairs spanning the interesting corners: τ
// absorption, internal choice, the root condition, δ, hiding and the
// parallel operators.
var diffPairs = [][2]string{
	{"a1; exit", "a1; exit"},
	{"a1; exit", "b1; exit"},
	{"a1; exit", "a1; stop"},
	{"i; a1; exit", "a1; exit"},
	{"a1; i; b2; exit", "a1; b2; exit"},
	{"exit >> b2; exit", "i; b2; exit"},
	{"a1; exit [] i; b1; exit", "a1; exit [] b1; exit"},
	{"i; a1; exit [] i; b1; exit", "a1; exit [] b1; exit"},
	{"a1; exit [] i; a1; exit", "i; a1; exit"},
	{"hide a1 in (a1; b2; exit)", "i; hide a1 in (b2; exit)"},
	{"a1; exit ||| b2; exit", "b2; exit ||| a1; exit"},
	{"a1; exit [> b2; exit", "a1; exit [] b2; exit"},
	{"exit [> b2; exit", "exit [] b2; exit"},
	{"exit", "stop"},
	{"a1; (b1; exit [] i; c1; exit) [] a1; c1; exit", "a1; (b1; exit [] i; c1; exit)"},
}

func assertAgreement(t *testing.T, name string, g1, g2 *lts.Graph) {
	t.Helper()
	if got, want := WeakBisimilar(g1, g2), RefWeakBisimilar(g1, g2); got != want {
		t.Errorf("%s: WeakBisimilar engine=%v reference=%v", name, got, want)
	}
	if got, want := ObservationCongruent(g1, g2), RefObservationCongruent(g1, g2); got != want {
		t.Errorf("%s: ObservationCongruent engine=%v reference=%v", name, got, want)
	}
	if got, want := StrongBisimilar(g1, g2), RefStrongBisimilar(g1, g2); got != want {
		t.Errorf("%s: StrongBisimilar engine=%v reference=%v", name, got, want)
	}
	for i, g := range []*lts.Graph{g1, g2} {
		if got, want := NumClassesWeak(g), RefNumClassesWeak(g); got != want {
			t.Errorf("%s: NumClassesWeak(g%d) engine=%d reference=%d", name, i+1, got, want)
		}
	}
}

func TestEngineAgreesWithReferenceOnLawPairs(t *testing.T) {
	for _, pair := range diffPairs {
		g1, g2 := graphOf(t, pair[0]), graphOf(t, pair[1])
		assertAgreement(t, fmt.Sprintf("%q vs %q", pair[0], pair[1]), g1, g2)
	}
}

func TestEngineAgreesWithReferenceOnRandomExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		e1 := genLawExpr(r, 3)
		e2 := genLawExpr(r, 3)
		g1 := graphOfExpr(t, e1)
		g2 := graphOfExpr(t, e2)
		assertAgreement(t, fmt.Sprintf("random pair %d", i), g1, g2)
		// Self comparisons exercise the guaranteed-equivalent path.
		assertAgreement(t, fmt.Sprintf("random self %d", i), g1, g1)
	}
}

func TestReferenceQuotientMatchesEngineQuotient(t *testing.T) {
	for _, src := range []string{
		"exit >> (exit >> a1; exit)",
		"i; a1; exit [] i; b1; exit",
		"a1; exit ||| b2; exit",
		"hide a1 in (a1; b2; a1; exit)",
	} {
		g := graphOf(t, src)
		qe := QuotientWeak(g)
		qr := RefQuotientWeak(g)
		if qe.NumStates() != qr.NumStates() {
			t.Errorf("%q: quotient states engine=%d reference=%d", src, qe.NumStates(), qr.NumStates())
		}
		if qe.NumTransitions() != qr.NumTransitions() {
			t.Errorf("%q: quotient transitions engine=%d reference=%d", src, qe.NumTransitions(), qr.NumTransitions())
		}
		if !RefWeakBisimilar(qe, qr) {
			t.Errorf("%q: engine and reference quotients not weakly bisimilar", src)
		}
	}
}
