// Package equiv implements the behavioural equivalences the paper's
// correctness argument (Section 5) is stated in: weak bisimulation
// (observational equivalence), the root condition that strengthens it to
// observation congruence, strong bisimulation (used to validate the
// algebraic laws of Annex A), and bounded weak-trace equivalence as the
// fallback for state spaces that cannot be explored to closure.
//
// All checks operate on the finite (possibly truncated) transition graphs
// produced by internal/lts. They run on the integer engine of engine.go
// (interned labels, τ-SCC saturation, hashed partition refinement); the
// original map/string checker is retained in reference.go as the executable
// specification the differential tests compare against.
package equiv

import (
	"sort"

	"repro/internal/lts"
)

// epsKey is the pseudo-label used for weak internal moves in saturated
// graphs. It cannot collide with lts label keys ("\x01i"/"\x01d"/gates).
const epsKey = "\x02eps"

// WeakBisimilar reports whether the initial states of g1 and g2 are weakly
// bisimilar (observationally equivalent, "≈" without the congruence root
// condition). Successful termination δ is treated as observable, as in
// LOTOS. The graphs must be fully explored; calling this on truncated
// graphs gives an answer for the truncated systems only.
func WeakBisimilar(g1, g2 *lts.Graph) bool {
	ok, _ := WeakBisimilarStats(g1, g2)
	return ok
}

// WeakBisimilarStats is WeakBisimilar plus the engine's work counters.
func WeakBisimilarStats(g1, g2 *lts.Graph) (bool, Stats) {
	e := newWeakEngine(g1, g2)
	return e.stateBlock(0) == e.stateBlock(g1.NumStates()), e.stats
}

// ObservationCongruent reports whether the initial states of g1 and g2 are
// observation congruent ("≈" of the paper, written B1 = B2 in Annex A):
// weakly bisimilar AND every initial internal move of one side is matched by
// at least one internal move (i then i*) of the other into a weakly
// bisimilar state. The root condition distinguishes e.g. "B" from "i; B".
func ObservationCongruent(g1, g2 *lts.Graph) bool {
	e := newWeakEngine(g1, g2)
	off := g1.NumStates()
	if e.stateBlock(0) != e.stateBlock(off) {
		return false
	}
	return e.rootMatched(g1, 0, g2, off) && e.rootMatched(g2, off, g1, 0)
}

// rootMatched checks that every initial i-move of a (at combined offset
// aOff) is matched in b by a strict weak i-move (at least one internal
// step) into the same equivalence class. The ε-closures needed are read off
// the engine's τ-SCC condensation.
func (e *weakEngine) rootMatched(a *lts.Graph, aOff int, b *lts.Graph, bOff int) bool {
	var bBlocks map[int32]struct{}
	for _, ed := range a.Edges[0] {
		if ed.Label.Kind != lts.LInternal {
			continue
		}
		if bBlocks == nil {
			// Classes reachable from b's root by one i step then i*.
			bBlocks = map[int32]struct{}{}
			for _, be := range b.Edges[0] {
				if be.Label.Kind != lts.LInternal {
					continue
				}
				for _, d := range e.reach[e.sccOf[bOff+be.To]] {
					bBlocks[e.block[d]] = struct{}{}
				}
			}
		}
		if _, ok := bBlocks[e.stateBlock(aOff+ed.To)]; !ok {
			return false
		}
	}
	return true
}

// StrongBisimilar reports whether the initial states of g1 and g2 are
// strongly bisimilar (every action, including i, matched one-for-one). It
// runs the hashed refinement directly over the combined state-level CSR —
// no saturation and no τ-condensation, since i is not absorbed.
func StrongBisimilar(g1, g2 *lts.Graph) bool {
	table := lts.NewLabelTable()
	c1 := g1.ExportCSR(table)
	c2 := g2.ExportCSR(table)
	n1, n2 := c1.NumStates, c2.NumStates
	n := n1 + n2
	off := make([]int, n+1)
	pairs := make([]uint64, 0, len(c1.To)+len(c2.To))
	for s := 0; s < n1; s++ {
		for i := c1.Off[s]; i < c1.Off[s+1]; i++ {
			pairs = append(pairs, packPair(c1.Labels[i], c1.To[i]))
		}
		off[s+1] = len(pairs)
	}
	for s := 0; s < n2; s++ {
		for i := c2.Off[s]; i < c2.Off[s+1]; i++ {
			pairs = append(pairs, packPair(c2.Labels[i], c2.To[i]+int32(n1)))
		}
		off[n1+s+1] = len(pairs)
	}
	block, _, _ := refinePacked(n, off, pairs, 0)
	return block[0] == block[n1]
}

// dedup returns a sorted, duplicate-free version of xs. It never modifies
// the input: callers pass aliased views of shared closure slices (the
// reference checker's ε-closures among them), and sorting or compacting
// through the caller's backing array would corrupt them.
func dedup(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	out := make([]int, len(xs))
	copy(out, xs)
	sort.Ints(out)
	w := 1
	for _, x := range out[1:] {
		if x != out[w-1] {
			out[w] = x
			w++
		}
	}
	return out[:w]
}

// WeakTraceEquivalent reports whether g1 and g2 have the same weak traces up
// to the given length. It is sound for truncated graphs only as a bounded
// check: traces longer than the exploration depth are not compared.
func WeakTraceEquivalent(g1, g2 *lts.Graph, maxLen int) bool {
	t1 := lts.WeakTraces(g1, maxLen)
	t2 := lts.WeakTraces(g2, maxLen)
	if len(t1) != len(t2) {
		return false
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			return false
		}
	}
	return true
}

// TraceDiff returns example traces present in exactly one of the two
// graphs, up to maxLen and at most limit entries per side, for diagnostics.
func TraceDiff(g1, g2 *lts.Graph, maxLen, limit int) (onlyG1, onlyG2 []string) {
	t1 := lts.WeakTraces(g1, maxLen)
	t2 := lts.WeakTraces(g2, maxLen)
	set1 := map[string]bool{}
	for _, t := range t1 {
		set1[t] = true
	}
	set2 := map[string]bool{}
	for _, t := range t2 {
		set2[t] = true
	}
	for _, t := range t1 {
		if !set2[t] && len(onlyG1) < limit {
			onlyG1 = append(onlyG1, t)
		}
	}
	for _, t := range t2 {
		if !set1[t] && len(onlyG2) < limit {
			onlyG2 = append(onlyG2, t)
		}
	}
	return onlyG1, onlyG2
}
