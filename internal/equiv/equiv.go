// Package equiv implements the behavioural equivalences the paper's
// correctness argument (Section 5) is stated in: weak bisimulation
// (observational equivalence), the root condition that strengthens it to
// observation congruence, strong bisimulation (used to validate the
// algebraic laws of Annex A), and bounded weak-trace equivalence as the
// fallback for state spaces that cannot be explored to closure.
//
// All checks operate on the finite (possibly truncated) transition graphs
// produced by internal/lts.
package equiv

import (
	"sort"
	"strings"

	"repro/internal/lts"
)

// epsKey is the pseudo-label used for weak internal moves in saturated
// graphs. It cannot collide with lts label keys ("\x01i"/"\x01d"/gates).
const epsKey = "\x02eps"

// saturated holds the weak transition relation of one graph:
// weak[s][label] = sorted set of states reachable via i* label i*
// (for observable labels), plus weak[s][epsKey] = i* closure (including s).
type saturated struct {
	n    int
	weak []map[string][]int
}

// saturate computes the weak transition relation of g.
func saturate(g *lts.Graph) *saturated {
	n := g.NumStates()
	closure := make([][]int, n)
	for s := 0; s < n; s++ {
		closure[s] = epsClosure(g, s)
	}
	sat := &saturated{n: n, weak: make([]map[string][]int, n)}
	for s := 0; s < n; s++ {
		m := map[string][]int{}
		m[epsKey] = closure[s]
		// i* a i*: from every state in closure(s), take an observable edge,
		// then close again.
		for _, mid := range closure[s] {
			for _, e := range g.Edges[mid] {
				if !e.Label.Observable() {
					continue
				}
				key := e.Label.Key()
				m[key] = append(m[key], closure[e.To]...)
			}
		}
		for k := range m {
			m[k] = dedup(m[k])
		}
		sat.weak[s] = m
	}
	return sat
}

func epsClosure(g *lts.Graph, s int) []int {
	visited := map[int]bool{s: true}
	stack := []int{s}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Edges[cur] {
			if e.Label.Kind == lts.LInternal && !visited[e.To] {
				visited[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	out := make([]int, 0, len(visited))
	for st := range visited {
		out = append(out, st)
	}
	sort.Ints(out)
	return out
}

func dedup(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// WeakBisimilar reports whether the initial states of g1 and g2 are weakly
// bisimilar (observationally equivalent, "≈" without the congruence root
// condition). Successful termination δ is treated as observable, as in
// LOTOS. The graphs must be fully explored; calling this on truncated
// graphs gives an answer for the truncated systems only.
func WeakBisimilar(g1, g2 *lts.Graph) bool {
	p := weakPartition(g1, g2)
	return p.sameBlock(0, g1.NumStates())
}

// weakPartition runs partition refinement over the disjoint union of the
// two graphs, with signatures built from the saturated weak transitions.
// The result assigns every state a block; weakly bisimilar states share a
// block.
func weakPartition(g1, g2 *lts.Graph) *partition {
	s1 := saturate(g1)
	s2 := saturate(g2)
	n := s1.n + s2.n
	// weakAt returns the weak transition map of combined state s.
	weakAt := func(s int) map[string][]int {
		if s < s1.n {
			return s1.weak[s]
		}
		return shift(s2.weak[s-s1.n], s1.n)
	}
	// Pre-shift the second graph's maps once for speed.
	shifted := make([]map[string][]int, s2.n)
	for i := range shifted {
		shifted[i] = shift(s2.weak[i], s1.n)
	}
	weakAt = func(s int) map[string][]int {
		if s < s1.n {
			return s1.weak[s]
		}
		return shifted[s-s1.n]
	}

	p := newPartition(n)
	for {
		changed := p.refine(weakAt)
		if !changed {
			return p
		}
	}
}

func shift(m map[string][]int, off int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, v := range m {
		sv := make([]int, len(v))
		for i, x := range v {
			sv[i] = x + off
		}
		out[k] = sv
	}
	return out
}

// partition tracks block membership during refinement.
type partition struct {
	block []int
}

func newPartition(n int) *partition {
	return &partition{block: make([]int, n)}
}

func (p *partition) sameBlock(a, b int) bool { return p.block[a] == p.block[b] }

// refine splits blocks by transition signature; it returns whether any
// block split.
func (p *partition) refine(weakAt func(int) map[string][]int) bool {
	sigs := make([]string, len(p.block))
	for s := range p.block {
		sigs[s] = p.signature(s, weakAt(s))
	}
	next := map[string]int{}
	newBlock := make([]int, len(p.block))
	for s := range p.block {
		key := sigs[s]
		id, ok := next[key]
		if !ok {
			id = len(next)
			next[key] = id
		}
		newBlock[s] = id
	}
	changed := false
	for s := range p.block {
		if newBlock[s] != p.block[s] {
			changed = true
		}
	}
	copy(p.block, newBlock)
	return changed
}

// signature renders the current block plus the set of (label, targetBlock)
// pairs reachable by weak moves.
func (p *partition) signature(s int, weak map[string][]int) string {
	var parts []string
	parts = append(parts, "b"+itoa(p.block[s]))
	keys := make([]string, 0, len(weak))
	for k := range weak {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		blocks := map[int]bool{}
		for _, t := range weak[k] {
			blocks[p.block[t]] = true
		}
		bs := make([]int, 0, len(blocks))
		for b := range blocks {
			bs = append(bs, b)
		}
		sort.Ints(bs)
		var sb strings.Builder
		sb.WriteString(k)
		sb.WriteString("->")
		for _, b := range bs {
			sb.WriteString(itoa(b))
			sb.WriteByte(',')
		}
		parts = append(parts, sb.String())
	}
	return strings.Join(parts, ";")
}

func itoa(x int) string {
	var buf [12]byte
	i := len(buf)
	if x == 0 {
		return "0"
	}
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}

// ObservationCongruent reports whether the initial states of g1 and g2 are
// observation congruent ("≈" of the paper, written B1 = B2 in Annex A):
// weakly bisimilar AND every initial internal move of one side is matched by
// at least one internal move (i then i*) of the other into a weakly
// bisimilar state. The root condition distinguishes e.g. "B" from "i; B".
func ObservationCongruent(g1, g2 *lts.Graph) bool {
	p := weakPartition(g1, g2)
	off := g1.NumStates()
	if !p.sameBlock(0, off) {
		return false
	}
	return rootCondition(g1, g2, p, off, false) && rootCondition(g2, g1, p, off, true)
}

// rootCondition checks that every initial i-move of a is matched in b by a
// strict weak i-move (at least one internal step). When swapped is true, a
// is the second graph (its states are offset in the partition).
func rootCondition(a, b *lts.Graph, p *partition, off int, swapped bool) bool {
	aIdx := func(s int) int {
		if swapped {
			return s + off
		}
		return s
	}
	bIdx := func(s int) int {
		if swapped {
			return s
		}
		return s + off
	}
	// Strict weak internal successors of b's root: one i step then i*.
	var bTargets []int
	for _, e := range b.Edges[0] {
		if e.Label.Kind == lts.LInternal {
			bTargets = append(bTargets, epsClosure(b, e.To)...)
		}
	}
	bTargets = dedup(bTargets)
	for _, e := range a.Edges[0] {
		if e.Label.Kind != lts.LInternal {
			continue
		}
		matched := false
		for _, t := range bTargets {
			if p.sameBlock(aIdx(e.To), bIdx(t)) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// StrongBisimilar reports whether the initial states of g1 and g2 are
// strongly bisimilar (every action, including i, matched one-for-one).
func StrongBisimilar(g1, g2 *lts.Graph) bool {
	n1 := g1.NumStates()
	strongAt := func(s int) map[string][]int {
		var g *lts.Graph
		off := 0
		if s < n1 {
			g = g1
		} else {
			g = g2
			off = n1
			s -= n1
		}
		m := map[string][]int{}
		for _, e := range g.Edges[s] {
			key := e.Label.Key()
			m[key] = append(m[key], e.To+off)
		}
		for k := range m {
			m[k] = dedup(m[k])
		}
		return m
	}
	p := newPartition(n1 + g2.NumStates())
	for p.refine(strongAt) {
	}
	return p.sameBlock(0, n1)
}

// WeakTraceEquivalent reports whether g1 and g2 have the same weak traces up
// to the given length. It is sound for truncated graphs only as a bounded
// check: traces longer than the exploration depth are not compared.
func WeakTraceEquivalent(g1, g2 *lts.Graph, maxLen int) bool {
	t1 := lts.WeakTraces(g1, maxLen)
	t2 := lts.WeakTraces(g2, maxLen)
	if len(t1) != len(t2) {
		return false
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			return false
		}
	}
	return true
}

// TraceDiff returns example traces present in exactly one of the two
// graphs, up to maxLen and at most limit entries per side, for diagnostics.
func TraceDiff(g1, g2 *lts.Graph, maxLen, limit int) (onlyG1, onlyG2 []string) {
	t1 := lts.WeakTraces(g1, maxLen)
	t2 := lts.WeakTraces(g2, maxLen)
	set1 := map[string]bool{}
	for _, t := range t1 {
		set1[t] = true
	}
	set2 := map[string]bool{}
	for _, t := range t2 {
		set2[t] = true
	}
	for _, t := range t1 {
		if !set2[t] && len(onlyG1) < limit {
			onlyG1 = append(onlyG1, t)
		}
	}
	for _, t := range t2 {
		if !set1[t] && len(onlyG2) < limit {
			onlyG2 = append(onlyG2, t)
		}
	}
	return onlyG1, onlyG2
}
