package equiv

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/lts"
)

// This file finds concrete counterexample paths for failed trace-equivalence
// checks: where TraceDiff reports *which* weak traces separate two graphs,
// DivergentPath reports *how to get there* — the shortest transition path
// (entity moves included, internal steps and all) that exhibits a trace one
// side has and the other does not. The searches run a determinized subset
// construction of the reference graph alongside a parent-pointer BFS of the
// subject graph, so the returned path is minimal in transition count over
// the explored state space.

// witnessNode is one node of the subset-product BFS: a subject state paired
// with the set of reference states reachable by the same weak trace.
type witnessNode struct {
	state  int    // subject graph state
	refKey string // canonical key of the τ-closed reference state set
	refSet []int
	obs    int // observable steps taken so far
	parent int // index of the parent node (-1 for the root)
	edge   lts.Edge
}

// DivergentPath returns a shortest transition path (by edge count) in the
// subject graph whose weak observable trace is NOT a weak trace of the
// reference graph. The final edge of the path is the divergent observable:
// its trace prefix is a reference trace, the full trace is not.
//
// maxObs bounds the number of observable steps considered (0 = unbounded —
// sound only when both graphs are explored to closure). Divergence is never
// reported through an unexpanded frontier state of the reference graph,
// whose successors are unknown; such branches are conservatively treated as
// matching.
//
// The second result is false when no divergent path exists within the bound.
func DivergentPath(subject, reference *lts.Graph, maxObs int) ([]lts.PathStep, bool) {
	if subject.NumStates() == 0 || reference.NumStates() == 0 {
		return nil, false
	}
	refClosure := tauClosures(reference)

	rootSet := refClosure[0]
	nodes := []witnessNode{{state: 0, refKey: intSetKey(rootSet), refSet: rootSet, obs: 0, parent: -1}}
	visited := map[string]bool{nodeKey(0, intSetKey(rootSet), 0, maxObs): true}

	for head := 0; head < len(nodes); head++ {
		cur := nodes[head]
		for _, e := range subject.Edges[cur.state] {
			if !e.Label.Observable() {
				// Internal subject move: the reference set is unchanged.
				push(&nodes, visited, witnessNode{
					state: e.To, refKey: cur.refKey, refSet: cur.refSet,
					obs: cur.obs, parent: head, edge: e,
				}, maxObs)
				continue
			}
			if maxObs > 0 && cur.obs >= maxObs {
				continue // beyond the sound comparison bound
			}
			// Determinized reference step: all weak successors of the set
			// under the same observable label.
			next, frontier := weakStep(reference, refClosure, cur.refSet, e.Label.Key())
			if len(next) == 0 {
				if frontier {
					continue // unknown successors: cannot judge soundly
				}
				// Divergence: the reference cannot match this observable.
				return unwindNodes(nodes, head, e), true
			}
			push(&nodes, visited, witnessNode{
				state: e.To, refKey: intSetKey(next), refSet: next,
				obs: cur.obs + 1, parent: head, edge: e,
			}, maxObs)
		}
	}
	return nil, false
}

// TracePrefixPath returns a shortest subject-graph path realizing the
// longest realizable prefix of the given observable trace (labels rendered
// as by Label.String). The second result is the number of trace labels the
// path realizes. For a trace the subject cannot perform in full, the path
// leads to a state after which the next label is not weakly reachable
// anywhere in the explored graph (the BFS exhausts every state reaching the
// maximal prefix before giving up on extending it).
func TracePrefixPath(subject *lts.Graph, trace []string) ([]lts.PathStep, int) {
	if subject.NumStates() == 0 {
		return nil, 0
	}
	type node struct {
		state  int
		pos    int
		parent int
		edge   lts.Edge
	}
	nodes := []node{{state: 0, pos: 0, parent: -1}}
	visited := map[[2]int]bool{{0, 0}: true}
	best := 0
	bestAt := 0
	for head := 0; head < len(nodes); head++ {
		cur := nodes[head]
		if cur.pos > best {
			best, bestAt = cur.pos, head
			if best == len(trace) {
				break
			}
		}
		for _, e := range subject.Edges[cur.state] {
			pos := cur.pos
			if e.Label.Observable() {
				if pos >= len(trace) || e.Label.String() != trace[pos] {
					continue
				}
				pos++
			}
			if visited[[2]int{e.To, pos}] {
				continue
			}
			visited[[2]int{e.To, pos}] = true
			nodes = append(nodes, node{state: e.To, pos: pos, parent: head, edge: e})
		}
	}
	var rev []lts.PathStep
	for at := bestAt; nodes[at].parent >= 0; at = nodes[at].parent {
		rev = append(rev, lts.PathStep{From: nodes[nodes[at].parent].state, Edge: nodes[at].edge})
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, best
}

// ShortestDivergentTrace returns the observable projection of
// DivergentPath(subject, reference): the shortest-path divergent weak trace,
// rendered label by label.
func ShortestDivergentTrace(subject, reference *lts.Graph, maxObs int) ([]string, bool) {
	path, ok := DivergentPath(subject, reference, maxObs)
	if !ok {
		return nil, false
	}
	return lts.ObservableTrace(path), true
}

// weakStep computes the τ-closed set of reference states reachable from any
// state in set by one observable transition with the given label key. The
// second result reports that some member of the set is an unexpanded
// frontier state (its successors are unknown, so an empty result is not
// conclusive).
func weakStep(g *lts.Graph, closure [][]int, set []int, labelKey string) ([]int, bool) {
	var out []int
	frontier := false
	for _, s := range set {
		if g.Frontier[s] {
			frontier = true
		}
		for _, e := range g.Edges[s] {
			if e.Label.Observable() && e.Label.Key() == labelKey {
				out = append(out, closure[e.To]...)
			}
		}
	}
	return dedup(out), frontier
}

// tauClosures computes, for every state, the sorted set of states reachable
// by zero or more internal transitions.
func tauClosures(g *lts.Graph) [][]int {
	out := make([][]int, g.NumStates())
	for s := range out {
		seen := map[int]bool{s: true}
		stack := []int{s}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Edges[cur] {
				if e.Label.Kind == lts.LInternal && !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		cl := make([]int, 0, len(seen))
		for st := range seen {
			cl = append(cl, st)
		}
		sort.Ints(cl)
		out[s] = cl
	}
	return out
}

// push appends a product node unless its (state, refSet, obs) signature was
// already visited.
func push(nodes *[]witnessNode, visited map[string]bool, n witnessNode, maxObs int) {
	k := nodeKey(n.state, n.refKey, n.obs, maxObs)
	if visited[k] {
		return
	}
	visited[k] = true
	*nodes = append(*nodes, n)
}

// nodeKey builds the visited signature. The observable count participates
// only under a bound: with maxObs = 0 the judgement of a node is independent
// of how many observables led to it, and folding obs into the key would
// blow the search up for cyclic graphs.
func nodeKey(state int, refKey string, obs, maxObs int) string {
	if maxObs <= 0 {
		obs = 0
	}
	return strconv.Itoa(state) + "\x00" + refKey + "\x00" + strconv.Itoa(obs)
}

// unwindNodes reconstructs the path to nodes[head] and appends the final
// divergent edge.
func unwindNodes(nodes []witnessNode, head int, last lts.Edge) []lts.PathStep {
	var rev []lts.PathStep
	rev = append(rev, lts.PathStep{From: nodes[head].state, Edge: last})
	for at := head; nodes[at].parent >= 0; at = nodes[at].parent {
		rev = append(rev, lts.PathStep{From: nodes[nodes[at].parent].state, Edge: nodes[at].edge})
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// intSetKey renders a sorted int set canonically.
func intSetKey(xs []int) string {
	var b strings.Builder
	for _, x := range xs {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}
