package equiv

import (
	"math/rand"
	"testing"

	"repro/internal/lotos"
	"repro/internal/lts"
)

// Randomized validation of the Annex-A algebraic laws: for random behaviour
// expressions B1, B2, B3, the law's two sides must be weakly bisimilar
// (congruent where the law is stated as a congruence). This complements the
// hand-picked law tests with broad structural coverage of the SOS rules.

// genLawExpr builds random guarded expressions (no process references, so
// every expression is finite-state).
func genLawExpr(r *rand.Rand, depth int) lotos.Expr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return lotos.X()
		case 1:
			return lotos.Halt()
		default:
			return lotos.Act(lotos.ServiceEvent(string(rune('a'+r.Intn(3))), 1+r.Intn(3)))
		}
	}
	sub := func() lotos.Expr { return genLawExpr(r, depth-1) }
	switch r.Intn(7) {
	case 0:
		return lotos.Pfx(lotos.ServiceEvent(string(rune('a'+r.Intn(3))), 1+r.Intn(3)), sub())
	case 1:
		return lotos.Pfx(lotos.InternalEvent(), sub())
	case 2:
		return lotos.Ch(sub(), sub())
	case 3:
		return lotos.Ill(sub(), sub())
	case 4:
		return lotos.Enb(sub(), sub())
	case 5:
		return lotos.Dis(sub(), sub())
	default:
		return lotos.Gates(sub(), []string{"a1", "b2"}, sub())
	}
}

func graphOfExpr(t *testing.T, e lotos.Expr) *lts.Graph {
	t.Helper()
	res, err := lotos.Resolve(&lotos.Spec{Root: &lotos.DefBlock{Expr: e}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := lts.Explore(lts.NewEnv(res), e, lts.Limits{MaxStates: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if g.Truncated {
		t.Skip("expression too large for exact law checking")
	}
	return g
}

// checkLaw asserts weak bisimilarity of two expression builders over many
// random operand triples.
func checkLaw(t *testing.T, name string, lhs, rhs func(a, b, c lotos.Expr) lotos.Expr) {
	t.Helper()
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		a := genLawExpr(r, 1+r.Intn(2))
		b := genLawExpr(r, 1+r.Intn(2))
		c := genLawExpr(r, 1+r.Intn(2))
		l := lhs(lotos.Clone(a), lotos.Clone(b), lotos.Clone(c))
		rr := rhs(lotos.Clone(a), lotos.Clone(b), lotos.Clone(c))
		gl := graphOfExpr(t, l)
		gr := graphOfExpr(t, rr)
		if !WeakBisimilar(gl, gr) {
			t.Fatalf("%s violated (seed %d):\n  lhs: %s\n  rhs: %s",
				name, seed, lotos.Format(l), lotos.Format(rr))
		}
	}
}

func TestLawPropertyChoiceCommutative(t *testing.T) {
	checkLaw(t, "C1: B1 [] B2 = B2 [] B1",
		func(a, b, _ lotos.Expr) lotos.Expr { return lotos.Ch(a, b) },
		func(a, b, _ lotos.Expr) lotos.Expr { return lotos.Ch(b, a) })
}

func TestLawPropertyChoiceAssociative(t *testing.T) {
	checkLaw(t, "C2: B1 [] (B2 [] B3) = (B1 [] B2) [] B3",
		func(a, b, c lotos.Expr) lotos.Expr { return lotos.Ch(a, lotos.Ch(b, c)) },
		func(a, b, c lotos.Expr) lotos.Expr { return lotos.Ch(lotos.Ch(a, b), c) })
}

func TestLawPropertyChoiceIdempotent(t *testing.T) {
	checkLaw(t, "C3: B [] B = B",
		func(a, _, _ lotos.Expr) lotos.Expr { return lotos.Ch(a, lotos.Clone(a)) },
		func(a, _, _ lotos.Expr) lotos.Expr { return a })
}

func TestLawPropertyInterleaveCommutative(t *testing.T) {
	checkLaw(t, "P1: B1 ||| B2 = B2 ||| B1",
		func(a, b, _ lotos.Expr) lotos.Expr { return lotos.Ill(a, b) },
		func(a, b, _ lotos.Expr) lotos.Expr { return lotos.Ill(b, a) })
}

func TestLawPropertyInterleaveAssociative(t *testing.T) {
	checkLaw(t, "P2: B1 ||| (B2 ||| B3) = (B1 ||| B2) ||| B3",
		func(a, b, c lotos.Expr) lotos.Expr { return lotos.Ill(a, lotos.Ill(b, c)) },
		func(a, b, c lotos.Expr) lotos.Expr { return lotos.Ill(lotos.Ill(a, b), c) })
}

func TestLawPropertyEnableAssociative(t *testing.T) {
	checkLaw(t, "E2: (B1 >> B2) >> B3 = B1 >> (B2 >> B3)",
		func(a, b, c lotos.Expr) lotos.Expr { return lotos.Enb(lotos.Enb(a, b), c) },
		func(a, b, c lotos.Expr) lotos.Expr { return lotos.Enb(a, lotos.Enb(b, c)) })
}

func TestLawPropertyDisableAssociative(t *testing.T) {
	checkLaw(t, "D1: B1 [> (B2 [> B3) = (B1 [> B2) [> B3",
		func(a, b, c lotos.Expr) lotos.Expr { return lotos.Dis(a, lotos.Dis(b, c)) },
		func(a, b, c lotos.Expr) lotos.Expr { return lotos.Dis(lotos.Dis(a, b), c) })
}

func TestLawPropertyDisableAbsorption(t *testing.T) {
	checkLaw(t, "D2: (B1 [> B2) [] B2 = B1 [> B2",
		func(a, b, _ lotos.Expr) lotos.Expr { return lotos.Ch(lotos.Dis(a, b), lotos.Clone(b)) },
		func(a, b, _ lotos.Expr) lotos.Expr { return lotos.Dis(a, b) })
}

func TestLawPropertyPrefixInternalAbsorbed(t *testing.T) {
	checkLaw(t, "I1: a; i; B = a; B",
		func(a, _, _ lotos.Expr) lotos.Expr {
			return lotos.Pfx(lotos.ServiceEvent("x", 1), lotos.Pfx(lotos.InternalEvent(), a))
		},
		func(a, _, _ lotos.Expr) lotos.Expr {
			return lotos.Pfx(lotos.ServiceEvent("x", 1), a)
		})
}

func TestLawPropertyChoiceInternal(t *testing.T) {
	checkLaw(t, "I2: B [] i; B = i; B",
		func(a, _, _ lotos.Expr) lotos.Expr {
			return lotos.Ch(a, lotos.Pfx(lotos.InternalEvent(), lotos.Clone(a)))
		},
		func(a, _, _ lotos.Expr) lotos.Expr {
			return lotos.Pfx(lotos.InternalEvent(), a)
		})
}

func TestLawPropertyExitEnable(t *testing.T) {
	checkLaw(t, "E1: exit >> B = i; B",
		func(a, _, _ lotos.Expr) lotos.Expr { return lotos.Enb(lotos.X(), a) },
		func(a, _, _ lotos.Expr) lotos.Expr { return lotos.Pfx(lotos.InternalEvent(), a) })
}
