package equiv

import (
	"testing"

	"repro/internal/lotos"
	"repro/internal/lts"
)

func graphOf(t testing.TB, src string) *lts.Graph {
	t.Helper()
	e, err := lotos.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	res, err := lotos.Resolve(&lotos.Spec{Root: &lotos.DefBlock{Expr: e}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := lts.Explore(lts.NewEnv(res), e, lts.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func wantWeakBisim(t *testing.T, a, b string, want bool) {
	t.Helper()
	ga, gb := graphOf(t, a), graphOf(t, b)
	if got := WeakBisimilar(ga, gb); got != want {
		t.Errorf("WeakBisimilar(%q, %q) = %v, want %v", a, b, got, want)
	}
}

func wantCongruent(t *testing.T, a, b string, want bool) {
	t.Helper()
	ga, gb := graphOf(t, a), graphOf(t, b)
	if got := ObservationCongruent(ga, gb); got != want {
		t.Errorf("ObservationCongruent(%q, %q) = %v, want %v", a, b, got, want)
	}
}

func TestWeakBisimBasics(t *testing.T) {
	wantWeakBisim(t, "a1; exit", "a1; exit", true)
	wantWeakBisim(t, "a1; exit", "b1; exit", false)
	wantWeakBisim(t, "a1; exit", "a1; stop", false)
	wantWeakBisim(t, "a1; b2; exit", "a1; exit", false)
}

func TestWeakBisimAbsorbsInternal(t *testing.T) {
	// a; i; B = a; B (law I1).
	wantWeakBisim(t, "a1; i; b2; exit", "a1; b2; exit", true)
	// i; B ≈ B weakly (but not congruent, see below).
	wantWeakBisim(t, "i; a1; exit", "a1; exit", true)
	// exit >> B inserts an i: weakly equal to i;B and to B.
	wantWeakBisim(t, "exit >> b2; exit", "b2; exit", true)
}

func TestWeakBisimDistinguishesInternalChoice(t *testing.T) {
	// a;B [] i;C is NOT equivalent to a;B [] C: the internal move commits.
	wantWeakBisim(t, "a1; exit [] i; b1; exit", "a1; exit [] b1; exit", false)
	// Internal choice vs external choice.
	wantWeakBisim(t, "i; a1; exit [] i; b1; exit", "a1; exit [] b1; exit", false)
}

func TestObservationCongruenceRootCondition(t *testing.T) {
	// i; B ≈ B but NOT congruent (the classic root-condition example).
	wantCongruent(t, "i; a1; exit", "a1; exit", false)
	wantCongruent(t, "i; a1; exit", "i; a1; exit", true)
	// B [] i;B = i;B (law I2) holds as a congruence.
	wantCongruent(t, "a1; exit [] i; a1; exit", "i; a1; exit", true)
	// a; i; B = a; B (law I1) as congruence.
	wantCongruent(t, "a1; i; b2; exit", "a1; b2; exit", true)
}

func TestStrongBisimBasics(t *testing.T) {
	check := func(a, b string, want bool) {
		t.Helper()
		if got := StrongBisimilar(graphOf(t, a), graphOf(t, b)); got != want {
			t.Errorf("StrongBisimilar(%q, %q) = %v, want %v", a, b, got, want)
		}
	}
	// Choice laws C1-C3 hold strongly.
	check("a1; exit [] b2; exit", "b2; exit [] a1; exit", true)
	check("a1; exit [] (b2; exit [] c3; exit)", "(a1; exit [] b2; exit) [] c3; exit", true)
	check("a1; exit [] a1; exit", "a1; exit", true)
	// i is NOT absorbed strongly.
	check("a1; i; b2; exit", "a1; b2; exit", false)
}

func TestWeakTraceEquivalent(t *testing.T) {
	g1 := graphOf(t, "a1; exit [] b1; exit")
	g2 := graphOf(t, "i; a1; exit [] i; b1; exit")
	if !WeakTraceEquivalent(g1, g2, 5) {
		t.Error("trace-equivalent expressions reported different")
	}
	g3 := graphOf(t, "a1; c2; exit")
	if WeakTraceEquivalent(g1, g3, 5) {
		t.Error("different traces reported equivalent")
	}
}

func TestTraceDiff(t *testing.T) {
	g1 := graphOf(t, "a1; b2; exit")
	g2 := graphOf(t, "a1; c3; exit")
	only1, only2 := TraceDiff(g1, g2, 5, 10)
	if len(only1) == 0 || len(only2) == 0 {
		t.Fatalf("diff empty: %v %v", only1, only2)
	}
	same1, same2 := TraceDiff(g1, g1, 5, 10)
	if len(same1) != 0 || len(same2) != 0 {
		t.Fatal("self diff must be empty")
	}
}

func TestParallelLawsWeak(t *testing.T) {
	// P1: commutativity of ||| (weak bisimulation).
	wantWeakBisim(t, "a1; exit ||| b2; exit", "b2; exit ||| a1; exit", true)
	// P2: associativity of |||.
	wantWeakBisim(t,
		"a1; exit ||| (b2; exit ||| c3; exit)",
		"(a1; exit ||| b2; exit) ||| c3; exit", true)
	// P5: B1 |[]| B2 = B1 ||| B2 — the parser maps both to interleaving;
	// check interleaving against full synchronization on disjoint alphabets.
	wantWeakBisim(t, "a1; exit |[c3]| b2; exit", "a1; exit ||| b2; exit", true)
}

func TestEnableDisableLaws(t *testing.T) {
	// E1: exit >> B = i; B (congruence).
	wantCongruent(t, "exit >> b2; exit", "i; b2; exit", true)
	// E2: (B1 >> B2) >> B3 = B1 >> (B2 >> B3).
	wantCongruent(t,
		"(a1; exit >> b2; exit) >> c3; exit",
		"a1; exit >> (b2; exit >> c3; exit)", true)
	// D1: B1 [> (B2 [> B3) = (B1 [> B2) [> B3.
	wantCongruent(t,
		"a1; exit [> (b2; exit [> c3; exit)",
		"(a1; exit [> b2; exit) [> c3; exit", true)
	// D2: (B1 [> B2) [] B2 = B1 [> B2.
	wantCongruent(t,
		"(a1; exit [> b2; exit) [] b2; exit",
		"a1; exit [> b2; exit", true)
	// D3: exit [> B = exit [] B.
	wantCongruent(t, "exit [> b2; exit", "exit [] b2; exit", true)
}

func TestInternalLaws(t *testing.T) {
	// I3: a;(B1 [] i;B2) [] a;B2 = a;(B1 [] i;B2).
	wantCongruent(t,
		"a1; (b1; exit [] i; c1; exit) [] a1; c1; exit",
		"a1; (b1; exit [] i; c1; exit)", true)
}

func TestHideLaws(t *testing.T) {
	// H5: hide a in (a; B) = i; hide a in B.
	wantCongruent(t,
		"hide a1 in (a1; b2; exit)",
		"i; hide a1 in (b2; exit)", true)
	// H4: hide list in B = B when the list does not intersect L(B).
	wantCongruent(t, "hide c3 in (a1; b2; exit)", "a1; b2; exit", true)
	// H6 over choice.
	wantCongruent(t,
		"hide a1 in (a1; exit [] b2; a1; exit)",
		"hide a1 in (a1; exit) [] b2; hide a1 in (a1; exit)", true)
}

func TestWeakBisimDeltaObservable(t *testing.T) {
	// exit and stop differ: δ is observable.
	wantWeakBisim(t, "exit", "stop", false)
	// exit [> B is NOT exit (D3 shows it equals exit [] B).
	wantWeakBisim(t, "exit [> b2; exit", "exit", false)
}
