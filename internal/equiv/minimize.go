package equiv

import (
	"repro/internal/lotos"
	"repro/internal/lts"
)

// QuotientWeak builds the quotient of a transition graph under weak
// bisimilarity: states are merged into their equivalence classes, and the
// class graph carries one edge per distinct (label, target-class) pair of
// its members' transitions, with internal moves inside one class collapsed.
// The result is weakly bisimilar to the input (checked by the tests) and is
// the canonical minimal-form presentation used when reporting explored
// behaviours.
//
// The initial state's class is state 0 of the quotient.
func QuotientWeak(g *lts.Graph) *lts.Graph {
	p := weakPartitionSingle(g)

	// Renumber blocks so the initial state's block is 0, then by first
	// appearance.
	blockIndex := map[int]int{}
	count := 0
	assign := func(b int) int {
		if id, ok := blockIndex[b]; ok {
			return id
		}
		id := count
		blockIndex[b] = id
		count++
		return id
	}
	assign(p.block[0])
	for s := range p.block {
		assign(p.block[s])
	}

	n := count
	q := &lts.Graph{
		States:   make([]lotos.Expr, n),
		Keys:     make([]string, n),
		Edges:    make([][]lts.Edge, n),
		Depth:    make([]int, n),
		ObsDepth: make([]int, n),
		Frontier: map[int]bool{},
	}

	seen := make([]map[string]bool, n)
	for i := range seen {
		seen[i] = map[string]bool{}
	}
	for s, es := range g.Edges {
		from := blockIndex[p.block[s]]
		if q.Keys[from] == "" {
			q.Keys[from] = g.Keys[s]
			if s < len(g.States) {
				q.States[from] = g.States[s]
			}
		}
		for _, e := range es {
			to := blockIndex[p.block[e.To]]
			if e.Label.Kind == lts.LInternal && to == from {
				continue // internal move within one class: collapsed
			}
			key := e.Label.Key() + ">" + itoa(to)
			if seen[from][key] {
				continue
			}
			seen[from][key] = true
			q.Edges[from] = append(q.Edges[from], lts.Edge{Label: e.Label, To: to})
		}
		if g.Frontier[s] {
			q.Frontier[from] = true
		}
	}
	// Keys of blocks containing only terminal states were not set above.
	for s := range g.Keys {
		from := blockIndex[p.block[s]]
		if q.Keys[from] == "" {
			q.Keys[from] = g.Keys[s]
			if s < len(g.States) {
				q.States[from] = g.States[s]
			}
		}
	}
	q.Truncated = g.Truncated
	return q
}

// weakPartitionSingle refines one graph under weak bisimilarity.
func weakPartitionSingle(g *lts.Graph) *partition {
	sat := saturate(g)
	p := newPartition(g.NumStates())
	weakAt := func(s int) map[string][]int { return sat.weak[s] }
	for p.refine(weakAt) {
	}
	return p
}

// NumClassesWeak returns the number of weak-bisimilarity classes of g.
func NumClassesWeak(g *lts.Graph) int {
	p := weakPartitionSingle(g)
	set := map[int]bool{}
	for _, b := range p.block {
		set[b] = true
	}
	return len(set)
}
