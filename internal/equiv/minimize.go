package equiv

import (
	"repro/internal/lotos"
	"repro/internal/lts"
)

// QuotientWeak builds the quotient of a transition graph under weak
// bisimilarity: states are merged into their equivalence classes, and the
// class graph carries one edge per distinct (label, target-class) pair of
// its members' transitions, with internal moves inside one class collapsed.
// The result is weakly bisimilar to the input (checked by the tests) and is
// the canonical minimal-form presentation used when reporting explored
// behaviours.
//
// The initial state's class is state 0 of the quotient.
func QuotientWeak(g *lts.Graph) *lts.Graph {
	q, _ := QuotientWeakMap(g)
	return q
}

// QuotientWeakMap is QuotientWeak returning, alongside the quotient, the
// per-state class assignment: classOf[s] is the quotient state holding input
// state s. The FSM compiler (internal/fsm) uses the assignment to relate its
// exact execution tables to the minimized canonical tables.
func QuotientWeakMap(g *lts.Graph) (*lts.Graph, []int32) {
	e := newWeakEngine(g, nil)
	return buildQuotient(g, func(s int) int32 { return e.stateBlock(s) }, e.table)
}

// buildQuotient constructs the class graph from a per-state block
// assignment, returning it with the renumbered per-state class map. The
// label table (fresh when nil) interns labels for the per-class (label,
// target) edge dedup.
func buildQuotient(g *lts.Graph, blockOf func(int) int32, table *lts.LabelTable) (*lts.Graph, []int32) {
	if table == nil {
		table = lts.NewLabelTable()
	}
	// Renumber blocks so the initial state's block is 0, then by first
	// appearance.
	blockIndex := map[int32]int{}
	count := 0
	assign := func(b int32) int {
		if id, ok := blockIndex[b]; ok {
			return id
		}
		id := count
		blockIndex[b] = id
		count++
		return id
	}
	assign(blockOf(0))
	for s := 0; s < g.NumStates(); s++ {
		assign(blockOf(s))
	}

	n := count
	q := &lts.Graph{
		States:   make([]lotos.Expr, n),
		Keys:     make([]string, n),
		Edges:    make([][]lts.Edge, n),
		Depth:    make([]int, n),
		ObsDepth: make([]int, n),
		Frontier: map[int]bool{},
	}

	// assigned tracks which classes have adopted a representative state.
	// (A key-emptiness check would misbehave for states whose canonical key
	// is legitimately empty.)
	assigned := make([]bool, n)
	adopt := func(from, s int) {
		if assigned[from] {
			return
		}
		assigned[from] = true
		q.Keys[from] = g.Keys[s]
		if s < len(g.States) {
			q.States[from] = g.States[s]
		}
	}

	seen := make([]map[uint64]bool, n)
	for i := range seen {
		seen[i] = map[uint64]bool{}
	}
	for s, es := range g.Edges {
		from := blockIndex[blockOf(s)]
		adopt(from, s)
		for _, e := range es {
			to := blockIndex[blockOf(e.To)]
			if e.Label.Kind == lts.LInternal && to == from {
				continue // internal move within one class: collapsed
			}
			key := packPair(table.Intern(e.Label), int32(to))
			if seen[from][key] {
				continue
			}
			seen[from][key] = true
			q.Edges[from] = append(q.Edges[from], lts.Edge{Label: e.Label, To: to})
		}
		if g.Frontier[s] {
			q.Frontier[from] = true
		}
	}
	// Classes containing only terminal states have no edge row above; give
	// them a representative too.
	classOf := make([]int32, g.NumStates())
	for s := range g.Keys {
		c := blockIndex[blockOf(s)]
		adopt(c, s)
		classOf[s] = int32(c)
	}
	q.Truncated = g.Truncated
	return q, classOf
}

// NumClassesWeak returns the number of weak-bisimilarity classes of g.
func NumClassesWeak(g *lts.Graph) int {
	return newWeakEngine(g, nil).blocks
}
