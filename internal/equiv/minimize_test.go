package equiv

import (
	"testing"
)

func TestQuotientCollapsesInternalRuns(t *testing.T) {
	// exit >> exit >> a1; exit ≈ a1; exit: the internal steps collapse.
	g := graphOf(t, "exit >> (exit >> a1; exit)")
	q := QuotientWeak(g)
	if q.NumStates() >= g.NumStates() {
		t.Errorf("quotient %d states, original %d", q.NumStates(), g.NumStates())
	}
	if !WeakBisimilar(g, q) {
		t.Error("quotient not weakly bisimilar to original")
	}
	ref := graphOf(t, "a1; exit")
	if !WeakBisimilar(q, ref) {
		t.Error("quotient not bisimilar to the reduced reference")
	}
}

func TestQuotientIdempotent(t *testing.T) {
	g := graphOf(t, "a1; exit [] b1; c2; exit")
	q1 := QuotientWeak(g)
	q2 := QuotientWeak(q1)
	if q1.NumStates() != q2.NumStates() {
		t.Errorf("quotient not idempotent: %d then %d", q1.NumStates(), q2.NumStates())
	}
}

func TestQuotientPreservesBranching(t *testing.T) {
	// Internal choice must not collapse into external choice.
	g := graphOf(t, "i; a1; exit [] i; b1; exit")
	q := QuotientWeak(g)
	if !WeakBisimilar(g, q) {
		t.Error("quotient changed behaviour")
	}
	ext := graphOf(t, "a1; exit [] b1; exit")
	if WeakBisimilar(q, ext) {
		t.Error("quotient collapsed internal choice into external choice")
	}
}

func TestQuotientOfDiamond(t *testing.T) {
	// a ||| b has diamond shape; duplicate interleavings share classes with
	// nothing to merge (all states distinct), so the quotient is the same
	// size — and still bisimilar.
	g := graphOf(t, "a1; exit ||| b2; exit")
	q := QuotientWeak(g)
	if !WeakBisimilar(g, q) {
		t.Error("quotient changed behaviour")
	}
}

func TestNumClassesWeak(t *testing.T) {
	g := graphOf(t, "exit >> (exit >> a1; exit)")
	classes := NumClassesWeak(g)
	if classes >= g.NumStates() {
		t.Errorf("classes %d, states %d", classes, g.NumStates())
	}
	q := QuotientWeak(g)
	if q.NumStates() != classes {
		t.Errorf("quotient states %d != classes %d", q.NumStates(), classes)
	}
}
