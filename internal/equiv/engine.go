package equiv

// The integer equivalence engine. The reference checker (reference.go)
// saturates weak transitions into per-state map[string][]int and re-renders
// string signatures for every state on every refinement round; this engine
// replaces both hot paths:
//
//   - Labels are interned into dense lts.LabelID integers through one
//     lts.LabelTable shared by both graphs, and edges are walked through a
//     CSR (offset/label/target array) export instead of []Edge slices.
//
//   - The per-state ε-closure is replaced by one Tarjan condensation of the
//     τ-subgraph. All states of one τ-SCC have the same ε-closure, hence
//     identical weak transition rows, hence they are weakly bisimilar — so
//     both the saturated weak relation and the partition refinement operate
//     on τ-SCCs, not states. Tarjan emits SCCs in reverse topological order
//     of the condensation, so closures and saturated rows are built by one
//     successors-first propagation pass each (no per-state graph searches).
//
//   - The saturated weak relation is stored in CSR form as packed
//     (labelID, targetSCC) uint64 pairs, and refinement signatures are
//     64-bit hashes of the sorted, deduplicated (labelID, targetBlock)
//     pairs, computed into reusable per-worker buffers across GOMAXPROCS
//     workers (the worker-pool idiom of lts.ExploreSourceParallel).
//     Refinement never merges blocks — each signature includes the node's
//     current block — so stabilization is detected by block count alone and
//     per-round renumbering cannot cause spurious extra rounds.

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lts"
)

// Stats reports the equivalence engine's work for one check: graph and
// condensation sizes, the size of the saturated weak relation, refinement
// effort, and wall time per phase. It is exposed through compose.Verify,
// `verify -stats` and the pgd /metrics page.
type Stats struct {
	// States and Transitions measure the (combined) input graph.
	States      int `json:"states"`
	Transitions int `json:"transitions"`
	// Labels is the number of distinct interned labels.
	Labels int `json:"labels"`
	// TauSCCs is the number of τ-SCCs of the condensation — the node count
	// the weak refinement actually runs on.
	TauSCCs int `json:"tauSccs"`
	// SaturationEdges is the number of (label, target) entries of the
	// saturated weak relation, ε rows included.
	SaturationEdges int `json:"saturationEdges"`
	// RefinementRounds is the number of signature rounds until the block
	// count stabilized.
	RefinementRounds int `json:"refinementRounds"`
	// Blocks is the final number of equivalence classes.
	Blocks int `json:"blocks"`
	// SaturateNanos and RefineNanos are wall clock per phase (saturation
	// includes interning, the CSR export and the SCC condensation).
	SaturateNanos int64 `json:"saturateNanos"`
	RefineNanos   int64 `json:"refineNanos"`
}

// weakEngine is the saturated, condensed and refined form of one graph or
// of the disjoint union of two graphs.
type weakEngine struct {
	table *lts.LabelTable
	n     int
	// sccOf maps each combined state to its τ-SCC; SCC ids are in Tarjan
	// emission order (reverse topological over the τ-condensation).
	sccOf []int32
	// reach[c] is the sorted set of SCCs τ-reachable from c, including c —
	// the shared ε-closure of every member state.
	reach [][]int32
	// block is the refined partition over SCCs; blocks is its class count.
	block  []int32
	blocks int
	stats  Stats
}

// stateBlock returns the equivalence class of a combined state.
func (e *weakEngine) stateBlock(s int) int32 { return e.block[e.sccOf[s]] }

// newWeakEngine saturates and refines g1 (and g2, unless nil) under weak
// bisimilarity. States of g2 follow g1's in the combined numbering.
func newWeakEngine(g1, g2 *lts.Graph) *weakEngine {
	t0 := time.Now()
	e := &weakEngine{table: lts.NewLabelTable()}
	epsID := e.table.InternKey(epsKey)

	// Combined CSR with a shared label-id space.
	c1 := g1.ExportCSR(e.table)
	n1, n2 := c1.NumStates, 0
	var c2 *lts.CSR
	if g2 != nil {
		c2 = g2.ExportCSR(e.table)
		n2 = c2.NumStates
	}
	n := n1 + n2
	e.n = n
	m := len(c1.To)
	if c2 != nil {
		m += len(c2.To)
	}
	off := make([]int32, n+1)
	labs := make([]lts.LabelID, m)
	to := make([]int32, m)
	copy(off, c1.Off)
	copy(labs, c1.Labels)
	copy(to, c1.To)
	if c2 != nil {
		base := int32(len(c1.To))
		for s := 0; s <= n2; s++ {
			off[n1+s] = base + c2.Off[s]
		}
		copy(labs[base:], c2.Labels)
		for i, t := range c2.To {
			to[int(base)+i] = t + int32(n1)
		}
	}
	isTau := make([]bool, e.table.Len())
	for id := range isTau {
		isTau[id] = !e.table.Observable(lts.LabelID(id))
	}
	isTau[epsID] = false // pseudo-label, never appears in the state CSR

	e.stats.States = n
	e.stats.Transitions = m
	e.stats.Labels = e.table.Len()

	// τ-SCC condensation.
	var sccCount int
	e.sccOf, sccCount = tarjanTau(n, off, labs, to, isTau)
	e.stats.TauSCCs = sccCount

	// Member lists per SCC (counting sort).
	memberOff := make([]int32, sccCount+1)
	for _, c := range e.sccOf {
		memberOff[c+1]++
	}
	for c := 0; c < sccCount; c++ {
		memberOff[c+1] += memberOff[c]
	}
	members := make([]int32, n)
	cursor := append([]int32(nil), memberOff[:sccCount]...)
	for s, c := range e.sccOf {
		members[cursor[c]] = int32(s)
		cursor[c]++
	}

	// Condensed τ adjacency, deduplicated per source SCC.
	tauAdj := make([][]int32, sccCount)
	for s := 0; s < n; s++ {
		c := e.sccOf[s]
		for i := off[s]; i < off[s+1]; i++ {
			if !isTau[labs[i]] {
				continue
			}
			if d := e.sccOf[to[i]]; d != c {
				tauAdj[c] = append(tauAdj[c], d)
			}
		}
	}
	for c := range tauAdj {
		sortDedup32(&tauAdj[c])
	}

	// Pass 1 — ε-closures over the condensation, successors first: SCC ids
	// are in reverse topological order, so every τ-successor's closure is
	// final before it is merged.
	e.reach = make([][]int32, sccCount)
	for c := 0; c < sccCount; c++ {
		r := []int32{int32(c)}
		for _, d := range tauAdj[c] {
			r = mergeSorted32(r, e.reach[d])
		}
		e.reach[c] = r
	}

	// Pass 2 — saturated observable rows, same order: a weak move
	// c =a=> f exists iff some d ∈ reach[c] has a member with an observable
	// a-edge into a state whose closure contains f. Propagating finished
	// successor rows along the condensed τ edges makes each row a merge of
	// its local contribution and its successors' rows.
	weak := make([][]uint64, sccCount)
	var step []uint64
	for c := 0; c < sccCount; c++ {
		// Local (label, target-SCC) steps of c's own members.
		step = step[:0]
		for _, s := range members[memberOff[c]:memberOff[c+1]] {
			for i := off[s]; i < off[s+1]; i++ {
				if isTau[labs[i]] {
					continue
				}
				step = append(step, packPair(labs[i], e.sccOf[to[i]]))
			}
		}
		sortDedup64(&step)
		// Expand each step target by its ε-closure.
		var local []uint64
		for _, p := range step {
			lab := lts.LabelID(p >> 32)
			for _, f := range e.reach[int32(uint32(p))] {
				local = append(local, packPair(lab, f))
			}
		}
		sortDedup64(&local)
		for _, d := range tauAdj[c] {
			local = mergeSorted64(local, weak[d])
		}
		weak[c] = local
	}

	// Flatten into the final weak CSR: ε row (reach, self included) plus
	// the saturated observable rows.
	wOff := make([]int, sccCount+1)
	total := 0
	for c := 0; c < sccCount; c++ {
		total += len(e.reach[c]) + len(weak[c])
	}
	wPairs := make([]uint64, 0, total)
	for c := 0; c < sccCount; c++ {
		for _, f := range e.reach[c] {
			wPairs = append(wPairs, packPair(epsID, f))
		}
		wPairs = append(wPairs, weak[c]...)
		wOff[c+1] = len(wPairs)
	}
	e.stats.SaturationEdges = len(wPairs)
	e.stats.SaturateNanos = time.Since(t0).Nanoseconds()

	t1 := time.Now()
	e.block, e.blocks, e.stats.RefinementRounds = refinePacked(sccCount, wOff, wPairs, 0)
	e.stats.Blocks = e.blocks
	e.stats.RefineNanos = time.Since(t1).Nanoseconds()
	return e
}

// packPair packs a label id and a target index into one uint64 signature
// element (label high, target low).
func packPair(lab lts.LabelID, tgt int32) uint64 {
	return uint64(uint32(lab))<<32 | uint64(uint32(tgt))
}

// tarjanTau condenses the subgraph of τ-labelled edges (iteratively — state
// spaces reach 10^5 states and recursion would overflow the stack). SCC ids
// are assigned in emission order, which for Tarjan's algorithm is reverse
// topological order of the condensation: every τ-successor SCC of c has an
// id smaller than c's.
func tarjanTau(n int, off []int32, labs []lts.LabelID, to []int32, isTau []bool) ([]int32, int) {
	sccOf := make([]int32, n)
	for i := range sccOf {
		sccOf[i] = -1
	}
	index := make([]int32, n) // 0 = unvisited, else order+1
	low := make([]int32, n)
	onStack := make([]bool, n)
	var tarjanStack []int32
	type frame struct {
		v  int32
		ei int32
	}
	var frames []frame
	var order int32
	sccCount := 0

	for root := 0; root < n; root++ {
		if index[root] != 0 {
			continue
		}
		order++
		index[root], low[root] = order, order
		tarjanStack = append(tarjanStack, int32(root))
		onStack[root] = true
		frames = append(frames[:0], frame{int32(root), off[root]})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			descended := false
			for f.ei < off[v+1] {
				i := f.ei
				f.ei++
				if !isTau[labs[i]] {
					continue
				}
				w := to[i]
				if index[w] == 0 {
					order++
					index[w], low[w] = order, order
					tarjanStack = append(tarjanStack, w)
					onStack[w] = true
					frames = append(frames, frame{w, off[w]})
					descended = true
					break
				}
				if onStack[w] && low[w] < low[v] {
					low[v] = low[w]
				}
			}
			if descended {
				continue
			}
			if low[v] == index[v] {
				for {
					w := tarjanStack[len(tarjanStack)-1]
					tarjanStack = tarjanStack[:len(tarjanStack)-1]
					onStack[w] = false
					sccOf[w] = int32(sccCount)
					if w == v {
						break
					}
				}
				sccCount++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := frames[len(frames)-1].v; low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return sccOf, sccCount
}

// sortDedup32 sorts *xs and removes duplicates in place.
func sortDedup32(xs *[]int32) {
	s := *xs
	if len(s) < 2 {
		return
	}
	slices.Sort(s)
	*xs = slices.Compact(s)
}

// sortDedup64 sorts *xs and removes duplicates in place.
func sortDedup64(xs *[]uint64) {
	s := *xs
	if len(s) < 2 {
		return
	}
	slices.Sort(s)
	*xs = slices.Compact(s)
}

// mergeSorted32 merges two sorted duplicate-free slices into a new sorted
// duplicate-free slice. Either input may be returned unchanged when the
// other is empty; inputs are never modified.
func mergeSorted32(a, b []int32) []int32 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// mergeSorted64 is mergeSorted32 over packed pairs.
func mergeSorted64(a, b []uint64) []uint64 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// mix64 is the SplitMix64 finalizer — the per-element mixer of the hashed
// signatures.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sigChunk is the unit of work a refinement worker claims at a time.
const sigChunk = 1024

// refineParallelMin is the node count below which per-round signature
// computation stays serial (goroutine fan-out costs more than it saves).
const refineParallelMin = 4096

// refinePacked runs hashed signature refinement over a node-level CSR whose
// entries are packed (labelID, target-node) pairs: nodes are τ-SCCs for the
// weak relation and plain states for the strong one. It returns the stable
// partition, its class count and the number of rounds. workers <= 0 selects
// GOMAXPROCS.
//
// Each round hashes, per node, the node's current block plus the sorted
// deduplicated set of (labelID, targetBlock) pairs. Because the signature
// includes the current block, refinement never merges blocks; the partition
// is stable exactly when the block count stops growing, so renumbering
// between rounds cannot cause spurious extra rounds.
func refinePacked(nodes int, off []int, pairs []uint64, workers int) ([]int32, int, int) {
	block := make([]int32, nodes)
	if nodes == 0 {
		return block, 0, 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sigs := make([]uint64, nodes)
	newBlock := make([]int32, nodes)
	nBlocks := 1
	rounds := 0
	for {
		rounds++
		computeSigs(nodes, off, pairs, block, sigs, workers)
		next := make(map[uint64]int32, 2*nBlocks)
		var count int32
		for v := 0; v < nodes; v++ {
			id, ok := next[sigs[v]]
			if !ok {
				id = count
				next[sigs[v]] = id
				count++
			}
			newBlock[v] = id
		}
		if int(count) == nBlocks {
			// No block split: the partition is stable (and identical to the
			// previous round's, only possibly renumbered).
			return block, nBlocks, rounds
		}
		copy(block, newBlock)
		nBlocks = int(count)
	}
}

// computeSigs fills sigs[v] for every node, fanning out across workers for
// large node counts. Workers claim fixed-size chunks through a shared
// atomic cursor (the lts.ExploreSourceParallel pool idiom) and reuse one
// scratch pair buffer each.
func computeSigs(nodes int, off []int, pairs []uint64, block []int32, sigs []uint64, workers int) {
	if w := (nodes + sigChunk - 1) / sigChunk; workers > w {
		workers = w
	}
	if nodes < refineParallelMin || workers <= 1 {
		buf := make([]uint64, 0, 64)
		for v := 0; v < nodes; v++ {
			sigs[v], buf = sigOne(v, off, pairs, block, buf)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]uint64, 0, 64)
			for {
				lo := (int(cursor.Add(1)) - 1) * sigChunk
				if lo >= nodes {
					return
				}
				hi := lo + sigChunk
				if hi > nodes {
					hi = nodes
				}
				for v := lo; v < hi; v++ {
					sigs[v], buf = sigOne(v, off, pairs, block, buf)
				}
			}
		}()
	}
	wg.Wait()
}

// sigOne hashes one node's signature, reusing buf as scratch; it returns
// the (possibly grown) buffer for the caller to thread through.
func sigOne(v int, off []int, pairs []uint64, block []int32, buf []uint64) (uint64, []uint64) {
	buf = buf[:0]
	for i := off[v]; i < off[v+1]; i++ {
		p := pairs[i]
		buf = append(buf, p>>32<<32|uint64(uint32(block[int32(uint32(p))])))
	}
	slices.Sort(buf)
	h := mix64(0x9e3779b97f4a7c15 ^ uint64(uint32(block[v])))
	prev := ^uint64(0)
	for _, p := range buf {
		if p == prev {
			continue // duplicate (label, block) pair: set semantics
		}
		prev = p
		h = mix64(h ^ mix64(p))
	}
	return h, buf
}
