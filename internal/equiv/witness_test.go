package equiv

import (
	"testing"

	"repro/internal/lotos"
	"repro/internal/lts"
)

// wGraph builds a bare graph with n states and the given edges.
func wGraph(n int, edges map[int][]lts.Edge) *lts.Graph {
	g := &lts.Graph{
		States: make([]lotos.Expr, n),
		Keys:   make([]string, n),
		Edges:  make([][]lts.Edge, n),
	}
	for s, es := range edges {
		g.Edges[s] = es
	}
	return g
}

func wev(name string) lts.Label { return lts.EventLabel(lotos.ServiceEvent(name, 1)) }

// hasWeakTrace is a naive oracle: does g weakly perform the observable trace
// (labels rendered as by Label.String)? Subset simulation with τ-closure.
func hasWeakTrace(g *lts.Graph, trace []string) bool {
	set := map[int]bool{}
	var grow func(s int)
	grow = func(s int) {
		if set[s] {
			return
		}
		set[s] = true
		for _, e := range g.Edges[s] {
			if !e.Label.Observable() {
				grow(e.To)
			}
		}
	}
	grow(0)
	for _, lab := range trace {
		next := map[int]bool{}
		for s := range set {
			for _, e := range g.Edges[s] {
				if e.Label.Observable() && e.Label.String() == lab {
					next[e.To] = true
				}
			}
		}
		set = map[int]bool{}
		for s := range next {
			grow(s)
		}
		if len(set) == 0 {
			return false
		}
	}
	return true
}

// naiveShortestDivergent brute-forces the minimal edge count of a subject
// path whose observable trace the reference cannot weakly perform, up to the
// given path-length bound. Returns -1 when none exists within the bound.
func naiveShortestDivergent(subject, reference *lts.Graph, bound int) int {
	type node struct {
		state int
		trace []string
	}
	frontier := []node{{state: 0}}
	for depth := 1; depth <= bound; depth++ {
		var next []node
		for _, cur := range frontier {
			for _, e := range subject.Edges[cur.state] {
				tr := cur.trace
				if e.Label.Observable() {
					tr = append(append([]string(nil), cur.trace...), e.Label.String())
					if !hasWeakTrace(reference, tr) {
						return depth
					}
				}
				next = append(next, node{state: e.To, trace: tr})
			}
		}
		frontier = next
	}
	return -1
}

func TestDivergentPathFindsExtraObservable(t *testing.T) {
	// Subject: a then b. Reference: a only.
	subject := wGraph(3, map[int][]lts.Edge{
		0: {{Label: wev("a"), To: 1}},
		1: {{Label: wev("b"), To: 2}},
	})
	reference := wGraph(2, map[int][]lts.Edge{
		0: {{Label: wev("a"), To: 1}},
	})
	path, ok := DivergentPath(subject, reference, 0)
	if !ok {
		t.Fatal("no divergence found")
	}
	trace := lts.ObservableTrace(path)
	if len(trace) != 2 || trace[1] != wev("b").String() {
		t.Errorf("divergent trace = %v, want [... b1]", trace)
	}
	// The prefix without the final divergent observable is a reference trace.
	if !hasWeakTrace(reference, trace[:len(trace)-1]) {
		t.Errorf("divergent trace prefix %v is not a reference trace", trace[:len(trace)-1])
	}
	if hasWeakTrace(reference, trace) {
		t.Errorf("divergent trace %v is a reference trace after all", trace)
	}
}

func TestDivergentPathNoDivergenceOnEqualGraphs(t *testing.T) {
	mk := func() *lts.Graph {
		return wGraph(3, map[int][]lts.Edge{
			0: {{Label: wev("a"), To: 1}, {Label: lts.Internal(), To: 0}},
			1: {{Label: wev("b"), To: 2}},
		})
	}
	if _, ok := DivergentPath(mk(), mk(), 0); ok {
		t.Error("found divergence between identical graphs")
	}
	if _, ok := DivergentPath(mk(), mk(), 3); ok {
		t.Error("found bounded divergence between identical graphs")
	}
}

func TestDivergentPathSeesThroughTau(t *testing.T) {
	// The reference reaches its 'a' only after a τ step: weak matching must
	// credit it, so the only divergence is the subject's 'b'.
	subject := wGraph(3, map[int][]lts.Edge{
		0: {{Label: wev("a"), To: 1}, {Label: wev("b"), To: 2}},
	})
	reference := wGraph(3, map[int][]lts.Edge{
		0: {{Label: lts.Internal(), To: 1}},
		1: {{Label: wev("a"), To: 2}},
	})
	path, ok := DivergentPath(subject, reference, 0)
	if !ok {
		t.Fatal("no divergence found")
	}
	if tr := lts.ObservableTrace(path); len(tr) != 1 || tr[0] != wev("b").String() {
		t.Errorf("divergent trace = %v, want [b1]", tr)
	}
}

func TestDivergentPathConservativeOnFrontier(t *testing.T) {
	// The reference was truncated at state 1: its successors are unknown, so
	// the subject's a-then-b must NOT be reported divergent through it.
	subject := wGraph(3, map[int][]lts.Edge{
		0: {{Label: wev("a"), To: 1}},
		1: {{Label: wev("b"), To: 2}},
	})
	reference := wGraph(2, map[int][]lts.Edge{
		0: {{Label: wev("a"), To: 1}},
	})
	reference.Truncated = true
	reference.Frontier = map[int]bool{1: true}
	if path, ok := DivergentPath(subject, reference, 0); ok {
		t.Errorf("reported divergence %v through an unexpanded frontier state", lts.ObservableTrace(path))
	}
}

// TestDivergentPathMinimalityOracle cross-checks the subset-product BFS
// against a brute-force enumeration on graphs with τ steps, cycles and
// multiple divergences at different depths.
func TestDivergentPathMinimalityOracle(t *testing.T) {
	cases := []struct {
		name      string
		subject   *lts.Graph
		reference *lts.Graph
	}{
		{
			name: "deep and shallow divergence",
			// Divergences: c after a (depth 2) and b immediately (depth 1).
			subject: wGraph(4, map[int][]lts.Edge{
				0: {{Label: wev("a"), To: 1}, {Label: wev("b"), To: 3}},
				1: {{Label: wev("c"), To: 2}},
			}),
			reference: wGraph(2, map[int][]lts.Edge{
				0: {{Label: wev("a"), To: 1}},
			}),
		},
		{
			name: "tau detour lengthens the path",
			// The only divergent observable sits behind two internal steps.
			subject: wGraph(4, map[int][]lts.Edge{
				0: {{Label: lts.Internal(), To: 1}},
				1: {{Label: lts.Internal(), To: 2}},
				2: {{Label: wev("b"), To: 3}},
			}),
			reference: wGraph(2, map[int][]lts.Edge{
				0: {{Label: wev("a"), To: 1}},
			}),
		},
		{
			name: "cycle before divergence",
			subject: wGraph(3, map[int][]lts.Edge{
				0: {{Label: wev("a"), To: 0}, {Label: wev("b"), To: 1}},
				1: {{Label: wev("b"), To: 2}},
			}),
			// Reference loops on a and allows one b.
			reference: wGraph(2, map[int][]lts.Edge{
				0: {{Label: wev("a"), To: 0}, {Label: wev("b"), To: 1}},
			}),
		},
	}
	for _, c := range cases {
		path, ok := DivergentPath(c.subject, c.reference, 0)
		want := naiveShortestDivergent(c.subject, c.reference, 8)
		if !ok {
			if want != -1 {
				t.Errorf("%s: BFS found nothing, oracle found a divergence at depth %d", c.name, want)
			}
			continue
		}
		if want == -1 {
			t.Errorf("%s: BFS found %v, oracle found nothing", c.name, lts.ObservableTrace(path))
			continue
		}
		if len(path) != want {
			t.Errorf("%s: BFS path has %d edges, oracle minimum is %d", c.name, len(path), want)
		}
		// The found trace must genuinely diverge.
		tr := lts.ObservableTrace(path)
		if hasWeakTrace(c.reference, tr) {
			t.Errorf("%s: returned trace %v is a reference trace", c.name, tr)
		}
	}
}

func TestTracePrefixPathFullAndPartial(t *testing.T) {
	g := wGraph(4, map[int][]lts.Edge{
		0: {{Label: lts.Internal(), To: 1}},
		1: {{Label: wev("a"), To: 2}},
		2: {{Label: wev("b"), To: 3}},
	})
	a, b := wev("a").String(), wev("b").String()
	// Fully realizable trace.
	path, n := TracePrefixPath(g, []string{a, b})
	if n != 2 {
		t.Fatalf("realized %d of 2 labels", n)
	}
	if tr := lts.ObservableTrace(path); len(tr) != 2 || tr[0] != a || tr[1] != b {
		t.Errorf("path trace = %v, want [%s %s]", tr, a, b)
	}
	// Only the first label is realizable.
	path, n = TracePrefixPath(g, []string{a, a})
	if n != 1 {
		t.Errorf("realized %d of [a a], want 1", n)
	}
	if tr := lts.ObservableTrace(path); len(tr) != 1 || tr[0] != a {
		t.Errorf("partial path trace = %v, want [%s]", tr, a)
	}
	// Nothing realizable: empty path, zero labels.
	path, n = TracePrefixPath(g, []string{b})
	if n != 0 || len(path) != 0 {
		t.Errorf("unrealizable trace gave path %v n=%d", path, n)
	}
}

func TestShortestDivergentTraceProjection(t *testing.T) {
	subject := wGraph(2, map[int][]lts.Edge{
		0: {{Label: wev("b"), To: 1}},
	})
	reference := wGraph(2, map[int][]lts.Edge{
		0: {{Label: wev("a"), To: 1}},
	})
	tr, ok := ShortestDivergentTrace(subject, reference, 0)
	if !ok || len(tr) != 1 || tr[0] != wev("b").String() {
		t.Errorf("trace = %v ok = %v, want [b1]", tr, ok)
	}
}
