package equiv

// The pre-engine equivalence checker, retained verbatim as an executable
// specification: per-state ε-closure searches, weak transition maps of the
// form map[string][]int, and partition refinement over rendered string
// signatures. It is quadratic-ish and allocation-heavy — never call it on a
// hot path. Its sole clients are the differential tests (reference_test.go
// and the corpus-wide sweep in the root package), which assert that the
// integer engine agrees with it verdict for verdict, and the benchmark
// sweeps that measure the engine's speedup against it. Exported Ref* names
// exist because the corpus differential tests must live outside this
// package (internal/compose imports equiv, so equiv's own test files cannot
// build composed graphs).

import (
	"sort"
	"strings"

	"repro/internal/lts"
)

// refSaturated holds the weak transition relation of one graph:
// weak[s][label] = sorted set of states reachable via i* label i*
// (for observable labels), plus weak[s][epsKey] = i* closure (including s).
type refSaturated struct {
	n    int
	weak []map[string][]int
}

// refSaturate computes the weak transition relation of g.
func refSaturate(g *lts.Graph) *refSaturated {
	n := g.NumStates()
	closure := make([][]int, n)
	for s := 0; s < n; s++ {
		closure[s] = epsClosure(g, s)
	}
	sat := &refSaturated{n: n, weak: make([]map[string][]int, n)}
	for s := 0; s < n; s++ {
		m := map[string][]int{}
		m[epsKey] = closure[s]
		// i* a i*: from every state in closure(s), take an observable edge,
		// then close again.
		for _, mid := range closure[s] {
			for _, e := range g.Edges[mid] {
				if !e.Label.Observable() {
					continue
				}
				key := e.Label.Key()
				m[key] = append(m[key], closure[e.To]...)
			}
		}
		for k := range m {
			m[k] = dedup(m[k])
		}
		sat.weak[s] = m
	}
	return sat
}

func epsClosure(g *lts.Graph, s int) []int {
	visited := map[int]bool{s: true}
	stack := []int{s}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Edges[cur] {
			if e.Label.Kind == lts.LInternal && !visited[e.To] {
				visited[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	out := make([]int, 0, len(visited))
	for st := range visited {
		out = append(out, st)
	}
	sort.Ints(out)
	return out
}

// RefWeakBisimilar is the reference implementation of WeakBisimilar.
func RefWeakBisimilar(g1, g2 *lts.Graph) bool {
	p := refWeakPartition(g1, g2)
	return p.sameBlock(0, g1.NumStates())
}

// refWeakPartition runs partition refinement over the disjoint union of the
// two graphs, with signatures built from the saturated weak transitions.
// The result assigns every state a block; weakly bisimilar states share a
// block.
func refWeakPartition(g1, g2 *lts.Graph) *refPartition {
	s1 := refSaturate(g1)
	s2 := refSaturate(g2)
	n := s1.n + s2.n
	// Pre-shift the second graph's maps once for speed.
	shifted := make([]map[string][]int, s2.n)
	for i := range shifted {
		shifted[i] = refShift(s2.weak[i], s1.n)
	}
	weakAt := func(s int) map[string][]int {
		if s < s1.n {
			return s1.weak[s]
		}
		return shifted[s-s1.n]
	}

	p := newRefPartition(n)
	for {
		changed := p.refine(weakAt)
		if !changed {
			return p
		}
	}
}

func refShift(m map[string][]int, off int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, v := range m {
		sv := make([]int, len(v))
		for i, x := range v {
			sv[i] = x + off
		}
		out[k] = sv
	}
	return out
}

// refPartition tracks block membership during refinement.
type refPartition struct {
	block []int
}

func newRefPartition(n int) *refPartition {
	return &refPartition{block: make([]int, n)}
}

func (p *refPartition) sameBlock(a, b int) bool { return p.block[a] == p.block[b] }

// refine splits blocks by transition signature; it returns whether any
// block split.
func (p *refPartition) refine(weakAt func(int) map[string][]int) bool {
	sigs := make([]string, len(p.block))
	for s := range p.block {
		sigs[s] = p.signature(s, weakAt(s))
	}
	next := map[string]int{}
	newBlock := make([]int, len(p.block))
	for s := range p.block {
		key := sigs[s]
		id, ok := next[key]
		if !ok {
			id = len(next)
			next[key] = id
		}
		newBlock[s] = id
	}
	changed := false
	for s := range p.block {
		if newBlock[s] != p.block[s] {
			changed = true
		}
	}
	copy(p.block, newBlock)
	return changed
}

// signature renders the current block plus the set of (label, targetBlock)
// pairs reachable by weak moves.
func (p *refPartition) signature(s int, weak map[string][]int) string {
	var parts []string
	parts = append(parts, "b"+itoa(p.block[s]))
	keys := make([]string, 0, len(weak))
	for k := range weak {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		blocks := map[int]bool{}
		for _, t := range weak[k] {
			blocks[p.block[t]] = true
		}
		bs := make([]int, 0, len(blocks))
		for b := range blocks {
			bs = append(bs, b)
		}
		sort.Ints(bs)
		var sb strings.Builder
		sb.WriteString(k)
		sb.WriteString("->")
		for _, b := range bs {
			sb.WriteString(itoa(b))
			sb.WriteByte(',')
		}
		parts = append(parts, sb.String())
	}
	return strings.Join(parts, ";")
}

func itoa(x int) string {
	var buf [12]byte
	i := len(buf)
	if x == 0 {
		return "0"
	}
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}

// RefObservationCongruent is the reference implementation of
// ObservationCongruent.
func RefObservationCongruent(g1, g2 *lts.Graph) bool {
	p := refWeakPartition(g1, g2)
	off := g1.NumStates()
	if !p.sameBlock(0, off) {
		return false
	}
	return refRootCondition(g1, g2, p, off, false) && refRootCondition(g2, g1, p, off, true)
}

// refRootCondition checks that every initial i-move of a is matched in b by
// a strict weak i-move (at least one internal step). When swapped is true,
// a is the second graph (its states are offset in the partition).
func refRootCondition(a, b *lts.Graph, p *refPartition, off int, swapped bool) bool {
	aIdx := func(s int) int {
		if swapped {
			return s + off
		}
		return s
	}
	bIdx := func(s int) int {
		if swapped {
			return s
		}
		return s + off
	}
	// Strict weak internal successors of b's root: one i step then i*.
	var bTargets []int
	for _, e := range b.Edges[0] {
		if e.Label.Kind == lts.LInternal {
			bTargets = append(bTargets, epsClosure(b, e.To)...)
		}
	}
	bTargets = dedup(bTargets)
	for _, e := range a.Edges[0] {
		if e.Label.Kind != lts.LInternal {
			continue
		}
		matched := false
		for _, t := range bTargets {
			if p.sameBlock(aIdx(e.To), bIdx(t)) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// RefStrongBisimilar is the reference implementation of StrongBisimilar.
func RefStrongBisimilar(g1, g2 *lts.Graph) bool {
	n1 := g1.NumStates()
	strongAt := func(s int) map[string][]int {
		var g *lts.Graph
		off := 0
		if s < n1 {
			g = g1
		} else {
			g = g2
			off = n1
			s -= n1
		}
		m := map[string][]int{}
		for _, e := range g.Edges[s] {
			key := e.Label.Key()
			m[key] = append(m[key], e.To+off)
		}
		for k := range m {
			m[k] = dedup(m[k])
		}
		return m
	}
	p := newRefPartition(n1 + g2.NumStates())
	for p.refine(strongAt) {
	}
	return p.sameBlock(0, n1)
}

// refWeakPartitionSingle refines one graph under weak bisimilarity.
func refWeakPartitionSingle(g *lts.Graph) *refPartition {
	sat := refSaturate(g)
	p := newRefPartition(g.NumStates())
	weakAt := func(s int) map[string][]int { return sat.weak[s] }
	for p.refine(weakAt) {
	}
	return p
}

// RefNumClassesWeak is the reference implementation of NumClassesWeak.
func RefNumClassesWeak(g *lts.Graph) int {
	p := refWeakPartitionSingle(g)
	set := map[int]bool{}
	for _, b := range p.block {
		set[b] = true
	}
	return len(set)
}

// RefQuotientWeak is the reference implementation of QuotientWeak, kept for
// the quotient benchmarks (the reference partition drives the same graph
// construction as the engine's, so timing differences isolate the
// partition-refinement cost).
func RefQuotientWeak(g *lts.Graph) *lts.Graph {
	p := refWeakPartitionSingle(g)
	blockOf := func(s int) int32 { return int32(p.block[s]) }
	q, _ := buildQuotient(g, blockOf, nil)
	return q
}
