package core

import (
	"strings"
	"testing"

	"repro/internal/lotos"
)

// mustDerive derives with default options, failing the test on error.
func mustDerive(t testing.TB, src string) *Derivation {
	t.Helper()
	d, err := Derive(lotos.MustParse(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// wantEntity checks that the derived entity for a place is isomorphic
// (modulo message renumbering) to an expected specification text.
func wantEntity(t *testing.T, d *Derivation, place int, expected string) {
	t.Helper()
	got := d.Entity(place)
	if got == nil {
		t.Fatalf("no entity for place %d", place)
	}
	want := lotos.MustParse(expected)
	if !lotos.IsomorphicSpecsModuloMsgIDs(got, want) {
		t.Errorf("entity %d mismatch:\n--- got ---\n%s\n--- want ---\n%s", place, got, want)
	}
}

// --- E3: Example 4 of the paper (Section 3.1, sequences) -------------------

func TestE3_Example4Sequence(t *testing.T) {
	// Service: a1; exit >> b2; exit.
	d := mustDerive(t, "SPEC a1; exit >> b2; exit ENDSPEC")
	if len(d.Places) != 2 {
		t.Fatalf("places %v", d.Places)
	}
	// Place 1: "a1 ; (s2(x) ; exit) >> (empty)" in the paper's informal
	// rendering; the Table-3-faithful tree is T_1(a1;exit) >> Synch_Left.
	wantEntity(t, d, 1, "SPEC a1; exit >> s2(1); exit ENDSPEC")
	// Place 2: "(empty) >> (r1(x) ; exit) >> b2 ; exit".
	wantEntity(t, d, 2, "SPEC (r1(1); exit) >> b2; exit ENDSPEC")
}

// --- E4: Example 5 of the paper (Section 3.2, choice) ----------------------

func TestE4_Example5Choice(t *testing.T) {
	src := `
SPEC A WHERE
  PROC A = (a1; b2; A >> c2; d3; exit) [] (e1; f3; exit) END
ENDSPEC`
	d := mustDerive(t, src)
	if len(d.Places) != 3 {
		t.Fatalf("places %v", d.Places)
	}

	// Place 1 chooses; choosing e1 sends the Alternative message to place 2
	// (the only place of the left alternative absent from the right one).
	p1 := d.Entity(1)
	text1 := p1.String()
	if !strings.Contains(text1, "e1; s3(") {
		t.Errorf("place 1 must send a sequence message to place 3 after e1:\n%s", text1)
	}
	// The Alternative message to place 2 appears in the right alternative.
	body1 := p1.Root.Procs[0].Body.Expr.(*lotos.Choice)
	rightText := lotos.Format(body1.R)
	if !strings.Contains(rightText, "s2(") {
		t.Errorf("place 1 right alternative must inform place 2: %s", rightText)
	}

	// Place 2's right alternative is exactly the Alternative receive.
	p2 := d.Entity(2)
	body2 := p2.Root.Procs[0].Body.Expr.(*lotos.Choice)
	if got := lotos.Format(body2.R); !strings.HasPrefix(got, "r1(") {
		t.Errorf("place 2 right alternative = %q, want a receive from place 1", got)
	}

	// Place 3 has no Alternative messages (it participates in both
	// alternatives), but it does carry the ">>"-unwind signal to place 2:
	// EP(a1;b2;A) = {3}, so place 3 hands control to c2 after each
	// instance of A completes.
	p3 := d.Entity(3)
	body3 := p3.Root.Procs[0].Body.Expr.(*lotos.Choice)
	if got := lotos.Format(body3.R); !strings.HasPrefix(got, "r1(") {
		t.Errorf("place 3 right alternative = %q, want sequence receive from place 1", got)
	}
	alts := 0
	lotos.WalkSpec(p3, func(e lotos.Expr) {
		if pfx, ok := e.(*lotos.Prefix); ok && pfx.Ev.Kind == lotos.EvSend && pfx.Ev.Place == 2 {
			alts++
		}
	})
	if alts != 1 {
		t.Errorf("place 3 sends %d messages to place 2, want exactly the unwind signal", alts)
	}
}

// --- E5: Example 6 of the paper (Section 3.3, disabling) -------------------

func TestE5_Example6Disable(t *testing.T) {
	src := `SPEC a1; b2; c3; exit [> d3; e3; exit ENDSPEC`
	d := mustDerive(t, src)

	// Place 1: a1; ... >> (r3(x);exit) [> (r3(y);exit) ...
	p1 := lotos.Format(d.Entity(1).Root.Expr)
	if !strings.Contains(p1, "[>") || !strings.Contains(p1, "r3(") {
		t.Errorf("place 1: %s", p1)
	}
	dis1 := d.Entity(1).Root.Expr.(*lotos.Disable)
	if got := lotos.Format(dis1.R); !strings.HasPrefix(got, "r3(") {
		t.Errorf("place 1 disabling part = %q, want interrupt receive", got)
	}

	// Place 3 hosts the interrupt: d3; broadcast, plus the Rel broadcast on
	// normal termination (EP = {3}).
	p3 := d.Entity(3)
	dis3 := p3.Root.Expr.(*lotos.Disable)
	rhs := lotos.Format(dis3.R)
	if !strings.HasPrefix(rhs, "d3; ") || !strings.Contains(rhs, "s1(") || !strings.Contains(rhs, "s2(") {
		t.Errorf("place 3 disabling part = %q, want d3 followed by broadcast", rhs)
	}
	lhs := lotos.Format(dis3.L)
	if !strings.Contains(lhs, "c3; exit") || !strings.Contains(lhs, "s1(") || !strings.Contains(lhs, "s2(") {
		t.Errorf("place 3 normal part = %q, want c3 then Rel broadcast", lhs)
	}
}

func TestE5_Example6FullStructure(t *testing.T) {
	// The exact expected entities for Example 6 with continuation exit,
	// matching the Section 3.3 discussion (message ids renumbered).
	d := mustDerive(t, "SPEC a1; b2; c3; exit [> d3; exit ENDSPEC")
	wantEntity(t, d, 1, `
SPEC (a1; s2(12); exit >> r3(15); exit) [> r3(40); exit ENDSPEC`)
	wantEntity(t, d, 2, `
SPEC ((r1(12); exit >> b2; s3(18); exit) >> r3(15); exit) [> r3(40); exit ENDSPEC`)
	wantEntity(t, d, 3, `
SPEC ((r2(18); exit >> c3; exit) >> s1(15); exit ||| s2(15); exit)
     [> d3; (s1(40); exit ||| s2(40); exit) ENDSPEC`)
}

// --- E2: Example 3 of the paper (Section 4.2, full derivation) --------------

const example3Source = `
SPEC S [> interrupt3; exit WHERE
  PROC S = (read1; push2; S >> pop2; write3; exit)
        [] (eof1; make3; exit)
  END
ENDSPEC`

func TestE2_Example3Derivation(t *testing.T) {
	d := mustDerive(t, example3Source)
	if len(d.Places) != 3 {
		t.Fatalf("places %v", d.Places)
	}

	// The expected entities below are the Section 4.2 listings with the
	// paper's two typos corrected ("read1" -> "eof1" in place 1's right
	// alternative; "write3" -> "make3" in place 3's right alternative) and
	// message identifications renumbered to our preorder node numbers (the
	// isomorphism check requires only a consistent bijection).
	wantEntity(t, d, 1, `
SPEC ((s2(17); exit ||| s3(17); exit >> S) >> r3(15); exit) [> r3(22); exit
WHERE
  PROC S =
    read1; (s2(48); exit >> r2(54); exit >> s2(65); exit ||| s3(65); exit >> S)
    [] (eof1; s3(84); exit >> s2(86); exit)
  END
ENDSPEC`)

	wantEntity(t, d, 2, `
SPEC ((r1(17); exit >> S) >> r3(15); exit) [> r3(22); exit
WHERE
  PROC S =
    ((r1(48); exit >> push2; (s1(54); exit >> r1(65); exit >> S))
       >> r3(49); exit >> pop2; s3(66); exit)
    [] r1(86); exit
  END
ENDSPEC`)

	wantEntity(t, d, 3, `
SPEC ((r1(17); exit >> S) >> s1(15); exit ||| s2(15); exit)
     [> interrupt3; (s1(22); exit ||| s2(22); exit)
WHERE
  PROC S =
    ((r1(65); exit >> S) >> s2(49); exit >> r2(66); exit >> write3; exit)
    [] (r1(84); exit >> make3; exit)
  END
ENDSPEC`)
}

func TestE2_Example3StructurePreserved(t *testing.T) {
	// The derivation preserves the service structure in every entity:
	// same process names, a disable at the root, a choice in the body.
	d := mustDerive(t, example3Source)
	for _, p := range d.Places {
		e := d.Entity(p)
		if len(e.Root.Procs) != 1 || e.Root.Procs[0].Name != "S" {
			t.Errorf("place %d: processes %v", p, e.Root.Procs)
		}
		if _, ok := e.Root.Expr.(*lotos.Disable); !ok {
			t.Errorf("place %d: root is %T, want disable", p, e.Root.Expr)
		}
		if _, ok := e.Root.Procs[0].Body.Expr.(*lotos.Choice); !ok {
			t.Errorf("place %d: body is %T, want choice", p, e.Root.Procs[0].Body.Expr)
		}
	}
}

func TestDerivedEntitiesReparse(t *testing.T) {
	// Rendered entities are valid specifications in the same language.
	d := mustDerive(t, example3Source)
	for _, p := range d.Places {
		text := d.Entity(p).String()
		back, err := lotos.Parse(text)
		if err != nil {
			t.Errorf("place %d: rendered entity does not re-parse: %v\n%s", p, err, text)
			continue
		}
		if !lotos.EqualSpec(d.Entity(p), back) {
			t.Errorf("place %d: re-parse changed structure", p)
		}
	}
}

// --- E6: Example 2 (Section 3.4, recursion) ---------------------------------

func TestE6_Example2Recursion(t *testing.T) {
	src := `SPEC A WHERE PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END ENDSPEC`
	d := mustDerive(t, src)
	if len(d.Places) != 2 {
		t.Fatalf("places %v", d.Places)
	}

	// Section 3.4's expected shape: place 1 sends after a1 before invoking
	// A; place 2 receives before invoking A.
	p1 := d.Entity(1)
	t1 := p1.String()
	if !strings.Contains(t1, "a1; ") || !strings.Contains(t1, "s2(") {
		t.Errorf("place 1:\n%s", t1)
	}
	p2 := d.Entity(2)
	body2 := p2.Root.Procs[0].Body.Expr.(*lotos.Choice)
	leftText := lotos.Format(body2.L)
	if !strings.Contains(leftText, "r1(") || !strings.Contains(leftText, ">> S") &&
		!strings.Contains(leftText, ">> A") {
		t.Errorf("place 2 left alternative: %s", leftText)
	}
}

// --- E7: Example 7 (Section 3.5, multiple instances) ------------------------

func TestE7_Example7MultipleInstances(t *testing.T) {
	src := `SPEC B ||| B WHERE PROC B = (a1; (b2; exit ||| c3; exit)) >> g4; exit END ENDSPEC`
	d := mustDerive(t, src)
	if len(d.Places) != 4 {
		t.Fatalf("places %v", d.Places)
	}
	// Place 4 waits for messages from places 2 and 3 (the ending places of
	// the left part of ">>") inside each instance of B.
	p4 := d.Entity(4)
	body := p4.Root.Procs[0].Body.Expr
	text := lotos.Format(body)
	if !strings.Contains(text, "r2(") || !strings.Contains(text, "r3(") {
		t.Errorf("place 4 body must receive from 2 and 3: %s", text)
	}
	if !strings.Contains(text, "g4") {
		t.Errorf("place 4 body must keep g4: %s", text)
	}
	// The root has two B instances at distinct call sites: the derivation
	// keeps both, and their occurrence disambiguation comes from distinct
	// call-site node numbers at unfold time.
	refs := 0
	lotos.Walk(p4.Root.Expr, func(e lotos.Expr) {
		if _, ok := e.(*lotos.ProcRef); ok {
			refs++
		}
	})
	if refs != 2 {
		t.Errorf("place 4 root has %d process references, want 2", refs)
	}
}

// --- Structure preservation and smaller properties --------------------------

func TestRule17NoMessagesForFinalAction(t *testing.T) {
	// "a1; exit" alone generates no synchronization at all.
	d := mustDerive(t, "SPEC a1; exit ENDSPEC")
	if d.SendCount() != 0 || d.ReceiveCount() != 0 {
		t.Errorf("sends=%d receives=%d, want 0", d.SendCount(), d.ReceiveCount())
	}
	wantEntity(t, d, 1, "SPEC a1; exit ENDSPEC")
}

func TestSequenceChainMessages(t *testing.T) {
	// a1; b2; c3; exit: one message per place change (rule 16), none for
	// the final action (rule 17).
	d := mustDerive(t, "SPEC a1; b2; c3; exit ENDSPEC")
	if got := d.SendCount(); got != 2 {
		t.Errorf("sends = %d, want 2", got)
	}
	wantEntity(t, d, 1, "SPEC a1; s2(6); exit ENDSPEC")
	wantEntity(t, d, 2, "SPEC (r1(6); exit) >> b2; s3(12); exit ENDSPEC")
	wantEntity(t, d, 3, "SPEC (r2(12); exit) >> c3; exit ENDSPEC")
}

func TestSameplaceSequenceNoMessages(t *testing.T) {
	// Successive actions at the same place need no synchronization.
	d := mustDerive(t, "SPEC a1; b1; c1; exit ENDSPEC")
	if got := d.SendCount(); got != 0 {
		t.Errorf("sends = %d, want 0", got)
	}
	wantEntity(t, d, 1, "SPEC a1; b1; c1; exit ENDSPEC")
}

func TestParallelNoMessages(t *testing.T) {
	// "|||" requires no synchronization messages (Section 3).
	d := mustDerive(t, "SPEC a1; exit ||| b2; exit ENDSPEC")
	if got := d.SendCount(); got != 0 {
		t.Errorf("sends = %d, want 0", got)
	}
	wantEntity(t, d, 1, "SPEC a1; exit ENDSPEC")
	wantEntity(t, d, 2, "SPEC b2; exit ENDSPEC")
}

func TestSynchronizedParallelProjectsGates(t *testing.T) {
	src := "SPEC a1; b2; exit |[a1,b2]| a1; b2; exit ENDSPEC"
	d := mustDerive(t, src)
	p1 := d.Entity(1).Root.Expr.(*lotos.Parallel)
	if p1.Kind != lotos.ParGates || len(p1.Sync) != 1 || p1.Sync[0] != "a1" {
		t.Errorf("place 1 sync set = %v", p1.Sync)
	}
	p2 := d.Entity(2).Root.Expr.(*lotos.Parallel)
	if p2.Kind != lotos.ParGates || len(p2.Sync) != 1 || p2.Sync[0] != "b2" {
		t.Errorf("place 2 sync set = %v", p2.Sync)
	}
}

func TestFullParallelProjectsAllLocalGates(t *testing.T) {
	d := mustDerive(t, "SPEC a1; b2; exit || a1; b2; exit ENDSPEC")
	p1 := d.Entity(1).Root.Expr.(*lotos.Parallel)
	if p1.Kind != lotos.ParGates || len(p1.Sync) != 1 || p1.Sync[0] != "a1" {
		t.Errorf("place 1 sync = %+v", p1)
	}
}

func TestParallelGateProjectionDegradesToInterleave(t *testing.T) {
	// A place not mentioned in the gate set gets "|||" (law P5).
	d := mustDerive(t, "SPEC a1; c3; exit |[a1]| a1; d3; exit ENDSPEC")
	p3 := d.Entity(3).Root.Expr.(*lotos.Parallel)
	if p3.Kind != lotos.ParInterleave {
		t.Errorf("place 3 parallel kind = %v, want interleave", p3.Kind)
	}
}

func TestDerivationDoesNotModifyInput(t *testing.T) {
	sp := lotos.MustParse(example3Source)
	before := sp.String()
	if _, err := Derive(sp, Options{}); err != nil {
		t.Fatal(err)
	}
	if sp.String() != before {
		t.Error("Derive modified its input specification")
	}
}

func TestDeriveRejectsInvalidService(t *testing.T) {
	bad := []string{
		"SPEC a1; exit [] b2; exit ENDSPEC",         // R1
		"SPEC a1; b2; exit [] a1; c3; exit ENDSPEC", // R2
		"SPEC i; a1; exit ENDSPEC",                  // internal action
		"SPEC s2(7); exit ENDSPEC",                  // message event
	}
	for _, src := range bad {
		if _, err := Derive(lotos.MustParse(src), Options{}); err == nil {
			t.Errorf("Derive(%q): expected error", src)
		}
	}
}

func TestSkipRestrictionsDerivesAnyway(t *testing.T) {
	d, err := Derive(lotos.MustParse("SPEC a1; exit [] b2; exit ENDSPEC"), Options{SkipRestrictions: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Places) != 2 {
		t.Errorf("places %v", d.Places)
	}
}

func TestKeepRedundantRetainsEmpties(t *testing.T) {
	raw, err := Derive(lotos.MustParse("SPEC a1; exit >> b2; exit ENDSPEC"), Options{KeepRedundant: true})
	if err != nil {
		t.Fatal(err)
	}
	simp := mustDerive(t, "SPEC a1; exit >> b2; exit ENDSPEC")
	// The raw place-2 text contains the unsimplified ">> exit" skeleton.
	rawText := lotos.Format(raw.Entity(2).Root.Expr)
	simpText := lotos.Format(simp.Entity(2).Root.Expr)
	if len(rawText) <= len(simpText) {
		t.Errorf("raw %q should be longer than simplified %q", rawText, simpText)
	}
}

func TestDialect1986(t *testing.T) {
	// Accepted: ';', '[]', '|||' only.
	ok := "SPEC a1; b2; exit [] a1; c2; exit ||| d3; exit ENDSPEC"
	if _, err := Derive(lotos.MustParse(ok), Options{Dialect1986: true, SkipRestrictions: true}); err != nil {
		t.Errorf("1986 subset rejected valid input: %v", err)
	}
	rejected := []string{
		"SPEC a1; exit >> b2; exit ENDSPEC",
		"SPEC a1; exit [> b2; exit ENDSPEC",
		"SPEC a1; exit || a1; exit ENDSPEC",
		"SPEC a1; exit |[a1]| a1; exit ENDSPEC",
		"SPEC A WHERE PROC A = a1; exit END ENDSPEC",
	}
	for _, src := range rejected {
		if _, err := Derive(lotos.MustParse(src), Options{Dialect1986: true}); err == nil {
			t.Errorf("1986 subset accepted %q", src)
		}
	}
}

func TestRenderContainsAllPlaces(t *testing.T) {
	d := mustDerive(t, example3Source)
	text := d.Render()
	for _, want := range []string{"place 1", "place 2", "place 3"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
