package core

import (
	"repro/internal/attr"
	"repro/internal/lotos"
)

// This file implements the synchronization-message generators of Table 4.
// Each returns a behaviour expression to be spliced into the derived entity
// — an interleaving of "s_i(s,N); exit" / "r_i(s,N); exit" interactions, or
// the neutral Empty when place p is not involved.
//
// Message identification: the paper identifies every synchronization message
// with the number N(x) of the syntax-tree node that generated it. The
// paper's derivation trees number every grammar non-terminal, so the
// different generator functions always draw distinct numbers; our AST
// collapses chain productions, so one node may feed several generators
// (e.g. the first event of a choice alternative feeds both Synch_Left and
// Alternative). msgID keeps the identifications injective by namespacing
// N(x) per generator function.

// Generator-function namespaces for message identifications.
const (
	msgSeq    = iota // Synch_Left / Synch_Right of action prefix (rules 16, 9.4)
	msgSeqE          // Synch_Left / Synch_Right of '>>' (rule 7)
	msgAlt           // Alternative (rules 14, 9.2)
	msgRel           // Rel (rule 9.1)
	msgInterr        // Interr (rule 9.4)
	msgProc          // Proc_Synch (rule 18)
	msgReq           // interrupt request (handshake mode, Section 3.3)
	msgAck           // interrupt acknowledgment (handshake mode, Section 3.3)
	msgSpan          // number of namespaces
)

// msgID builds the injective message identification for node and function.
func msgID(node, fn int) int { return node*msgSpan + fn }

// FlushingMsgID reports whether a numeric message identification belongs to
// the interrupt-handshake control namespaces (request/acknowledgment).
// Receives of such messages have FLUSH semantics: consuming the control
// message discards every earlier message on the same channel — they were
// addressed to a normal part that the interrupt has killed. This completes
// the paper's Section 3.3 sketch, which implicitly assumes in-flight
// messages of the interrupted phase can be discarded.
func FlushingMsgID(id int) bool {
	fn := id % msgSpan
	return fn == msgReq || fn == msgAck
}

// send builds "( s_i(s,N);exit ||| ... ||| s_k(s,N);exit )" over the sorted
// destination set, or Empty for an empty set (function send of Table 4).
func send(dest attr.PlaceSet, node int) lotos.Expr {
	places := dest.Sorted()
	if len(places) == 0 {
		return lotos.Emp()
	}
	parts := make([]lotos.Expr, len(places))
	for i, q := range places {
		parts[i] = lotos.Act(lotos.SendEvent(q, node))
	}
	return lotos.InterleaveOf(parts...)
}

// receive builds "( r_i(s,N);exit ||| ... ||| r_k(s,N);exit )" over the
// sorted source set, or Empty (function receive of Table 4).
func receive(src attr.PlaceSet, node int) lotos.Expr {
	places := src.Sorted()
	if len(places) == 0 {
		return lotos.Emp()
	}
	parts := make([]lotos.Expr, len(places))
	for i, q := range places {
		parts[i] = lotos.Act(lotos.RecvEvent(q, node))
	}
	return lotos.InterleaveOf(parts...)
}

// synchLeft is Synch_Left_p(e1,e2): if p is an ending place of e1, send a
// message identified by N(e1) to every starting place of e2 except p.
func (pr *projector) synchLeft(e1, e2 lotos.Expr) lotos.Expr {
	a1 := pr.info.Of(e1)
	a2 := pr.info.Of(e2)
	if !a1.EP.Contains(pr.place) {
		return lotos.Emp()
	}
	return send(a2.SP.MinusPlace(pr.place), msgID(e1.ID(), msgSeqE))
}

// synchRight is Synch_Right_p(e1,e2): if p is a starting place of e2,
// receive a message identified by N(e1) from every ending place of e1
// except p.
func (pr *projector) synchRight(e1, e2 lotos.Expr) lotos.Expr {
	a1 := pr.info.Of(e1)
	a2 := pr.info.Of(e2)
	if !a2.SP.Contains(pr.place) {
		return lotos.Emp()
	}
	return receive(a1.EP.MinusPlace(pr.place), msgID(e1.ID(), msgSeqE))
}

// synchLeftEvent specializes Synch_Left for rule 16, where e1 is the
// prefixed event itself: EP(e1) = {place(Event_Id)} and N(e1) is the node
// number of the prefix.
func (pr *projector) synchLeftEvent(x *lotos.Prefix) lotos.Expr {
	if pr.place != x.Ev.Place {
		return lotos.Emp()
	}
	sp2 := pr.info.Of(x.Cont).SP
	return send(sp2.MinusPlace(pr.place), msgID(x.ID(), msgSeq))
}

// synchRightEvent specializes Synch_Right for rule 16.
func (pr *projector) synchRightEvent(x *lotos.Prefix) lotos.Expr {
	sp2 := pr.info.Of(x.Cont).SP
	if !sp2.Contains(pr.place) {
		return lotos.Emp()
	}
	return receive(attr.NewPlaceSet(x.Ev.Place).MinusPlace(pr.place), msgID(x.ID(), msgSeq))
}

// alternative is Alternative_p(u,v) (Section 3.2): the starting place of the
// chosen alternative u informs every place that participates in the other
// alternative v but not in u, so that no entity is left with an empty
// alternative it cannot distinguish.
func (pr *projector) alternative(u, v lotos.Expr) lotos.Expr {
	au := pr.info.Of(u)
	av := pr.info.Of(v)
	nonParticipants := av.AP.Minus(au.AP)
	switch {
	case au.SP.Contains(pr.place):
		return send(nonParticipants.MinusPlace(pr.place), msgID(u.ID(), msgAlt))
	case nonParticipants.Contains(pr.place):
		return receive(au.SP, msgID(u.ID(), msgAlt))
	default:
		return lotos.Emp()
	}
}

// rel is Rel_p(e) (Section 3.3): the termination barrier of the normal part
// of a disabling expression. Every ending place broadcasts termination to
// all other places and waits for the other ending places; every other place
// waits for all ending places.
func (pr *projector) rel(e lotos.Expr) lotos.Expr {
	a := pr.info.Of(e)
	all := pr.info.All
	if a.EP.Contains(pr.place) {
		return lotos.Ill(
			send(all.MinusPlace(pr.place), msgID(e.ID(), msgRel)),
			receive(a.EP.MinusPlace(pr.place), msgID(e.ID(), msgRel)),
		)
	}
	return receive(a.EP, msgID(e.ID(), msgRel))
}

// interr is Interr_p(e1,e2) (Section 3.3, Table 4) for the first event of a
// disabling alternative "Event_Id ; Seq": the interrupting place broadcasts
// the interruption to every place that is notified neither as the
// interrupter (SP(e1)) nor through the subsequent Synch_Left exchange
// (SP(e2)).
func (pr *projector) interr(x *lotos.Prefix) lotos.Expr {
	sp1 := attr.NewPlaceSet(x.Ev.Place)
	sp2 := pr.info.Of(x.Cont).SP
	others := pr.info.All.Minus(sp1).Minus(sp2)
	switch {
	case sp1.Contains(pr.place):
		return send(others, msgID(x.ID(), msgInterr))
	case others.Contains(pr.place):
		return receive(sp1, msgID(x.ID(), msgInterr))
	default:
		return lotos.Emp()
	}
}

// interrReq and interrAck implement the "alternative implementation of
// interruption" the paper sketches at the end of Section 3.3: before the
// disabling event may occur, the interrupting place issues an interrupt
// REQUEST to every other place; each place stops its normal execution on
// reception and returns an ACKNOWLEDGMENT; only when all acknowledgments
// have arrived does the disabling event execute. This satisfies the LOTOS
// properties (a) and (b) up to trace equivalence (the paper's claim), at
// the cost of 2(n-1) messages per interrupt instead of at most n-2.
//
// interrReq is the request phase seen from place p: the interrupter
// broadcasts, everyone else receives (their first disabling action).
func (pr *projector) interrReq(x *lotos.Prefix) lotos.Expr {
	interrupter := x.Ev.Place
	others := pr.info.All.MinusPlace(interrupter)
	if pr.place == interrupter {
		return send(others, msgID(x.ID(), msgReq))
	}
	if others.Contains(pr.place) {
		return receive(attr.NewPlaceSet(interrupter), msgID(x.ID(), msgReq))
	}
	return lotos.Emp()
}

// interrAck is the acknowledgment phase seen from place p.
func (pr *projector) interrAck(x *lotos.Prefix) lotos.Expr {
	interrupter := x.Ev.Place
	others := pr.info.All.MinusPlace(interrupter)
	if pr.place == interrupter {
		return receive(others, msgID(x.ID(), msgAck))
	}
	if others.Contains(pr.place) {
		return send(attr.NewPlaceSet(interrupter), msgID(x.ID(), msgAck))
	}
	return lotos.Emp()
}

// procSynch is Proc_Synch_p(e) (Section 3.4): synchronization at the
// process level. The starting places of the invoked process inform all
// other places that a new instance begins; everyone else waits for that
// notification before executing any action of the instance.
func (pr *projector) procSynch(ref *lotos.ProcRef) lotos.Expr {
	a := pr.info.Of(ref)
	all := pr.info.All
	if a.SP.Contains(pr.place) {
		return send(all.Minus(a.SP), msgID(ref.ID(), msgProc))
	}
	return receive(a.SP, msgID(ref.ID(), msgProc))
}
