package core

import (
	"strings"
	"testing"

	"repro/internal/lotos"
)

func TestE10_CentralizedStructure(t *testing.T) {
	d, err := DeriveCentralized(lotos.MustParse("SPEC a1; b2; c3; exit ENDSPEC"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Server != 1 {
		t.Errorf("default server = %d, want smallest place 1", d.Server)
	}
	if len(d.Places) != 3 {
		t.Fatalf("places %v", d.Places)
	}
	// Server text: a1 stays local; b2/c3 become command/ack exchanges.
	srv := d.Entities[1].String()
	if !strings.Contains(srv, "a1;") {
		t.Errorf("server must keep local a1:\n%s", srv)
	}
	if !strings.Contains(srv, "s2(cmd") || !strings.Contains(srv, "r2(ack") {
		t.Errorf("server must command place 2:\n%s", srv)
	}
	if !strings.Contains(srv, "s3(cmd") || !strings.Contains(srv, "r3(ack") {
		t.Errorf("server must command place 3:\n%s", srv)
	}
	if !strings.Contains(srv, "s2(halt)") || !strings.Contains(srv, "s3(halt)") {
		t.Errorf("server must broadcast halt:\n%s", srv)
	}
	// Clients: command loops.
	cl2 := d.Entities[2].String()
	if !strings.Contains(cl2, "PROC Loop") || !strings.Contains(cl2, "b2;") ||
		!strings.Contains(cl2, "r1(halt); exit") {
		t.Errorf("client 2 loop malformed:\n%s", cl2)
	}
	// Client entities re-parse.
	for p, sp := range d.Entities {
		if _, err := lotos.Parse(sp.String()); err != nil {
			t.Errorf("entity %d does not re-parse: %v", p, err)
		}
	}
}

func TestE10_CentralizedMessageCount(t *testing.T) {
	// a1; b2; c3; exit: remote occurrences b2 and c3 -> 2 cmd/ack pairs = 4
	// messages, plus 2 halt broadcasts = 6.
	d, err := DeriveCentralized(lotos.MustParse("SPEC a1; b2; c3; exit ENDSPEC"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.MessageCount(); got != 6 {
		t.Errorf("centralized messages = %d, want 6", got)
	}
	// The distributed derivation needs only 2 (one per place change).
	dist := mustDerive(t, "SPEC a1; b2; c3; exit ENDSPEC")
	if dist.SendCount() >= d.MessageCount() {
		t.Errorf("distributed (%d) must beat centralized (%d) here",
			dist.SendCount(), d.MessageCount())
	}
}

func TestE10_CentralizedServerChoice(t *testing.T) {
	d, err := DeriveCentralized(lotos.MustParse("SPEC a1; b2; exit ENDSPEC"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Server != 2 {
		t.Errorf("server = %d", d.Server)
	}
	srv := d.Entities[2].String()
	if !strings.Contains(srv, "s1(cmd") {
		t.Errorf("server 2 must command place 1:\n%s", srv)
	}
}

func TestE10_CentralizedRejections(t *testing.T) {
	if _, err := DeriveCentralized(lotos.MustParse("SPEC a1; exit [> b1; exit ENDSPEC"), 0); err == nil {
		t.Error("disabling must be rejected")
	}
	if _, err := DeriveCentralized(lotos.MustParse("SPEC a1; b2; exit ENDSPEC"), 9); err == nil {
		t.Error("non-service server place must be rejected")
	}
	if _, err := DeriveCentralized(lotos.MustParse("SPEC i; a1; exit ENDSPEC"), 0); err == nil {
		t.Error("non-service spec must be rejected")
	}
}

func TestE10_CentralizedPreservesProcesses(t *testing.T) {
	src := `SPEC A WHERE PROC A = a1; b2; A [] c1; exit END ENDSPEC`
	d, err := DeriveCentralized(lotos.MustParse(src), 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := d.Entities[1]
	if len(srv.Root.Procs) != 1 || srv.Root.Procs[0].Name != "A" {
		t.Errorf("server processes: %+v", srv.Root.Procs)
	}
	if _, err := lotos.Parse(srv.String()); err != nil {
		t.Errorf("server does not re-parse: %v\n%s", err, srv)
	}
}

func TestE10_CentralizedGrowsLinearlyWithRemoteEvents(t *testing.T) {
	// Message counts: centralized pays 2 per remote event; distributed pays
	// 1 per place change — the quantitative form of the paper's Section 3
	// argument for the distributed method.
	mk := func(k int) string {
		var b strings.Builder
		b.WriteString("SPEC a1; ")
		for i := 0; i < k; i++ {
			b.WriteString("b2; c1; ")
		}
		b.WriteString("exit ENDSPEC")
		return b.String()
	}
	for _, k := range []int{1, 2, 4, 8} {
		src := mk(k)
		cen, err := DeriveCentralized(lotos.MustParse(src), 1)
		if err != nil {
			t.Fatal(err)
		}
		dist := mustDerive(t, src)
		wantCen := 2*k + 1 // cmd/ack per b2, one halt to place 2
		if got := cen.MessageCount(); got != wantCen {
			t.Errorf("k=%d: centralized = %d, want %d", k, got, wantCen)
		}
		// Distributed: 1->2 and 2->1 messages around each b2; the final
		// c1 / trailing exit need none. 2k messages minus the final hop
		// back when the sequence ends at place 1 keeps parity with 2k-ish;
		// the essential claim is distributed <= centralized.
		if dist.SendCount() > cen.MessageCount() {
			t.Errorf("k=%d: distributed %d > centralized %d", k, dist.SendCount(), cen.MessageCount())
		}
	}
}
