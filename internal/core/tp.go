package core

import (
	"repro/internal/attr"
	"repro/internal/lotos"
)

// projector implements the derivation function T_p of Table 3 for one
// place. It walks the attributed service syntax tree top-down and builds
// the protocol entity expression for its place, inserting the
// synchronization interactions of Table 4.
type projector struct {
	info  *attr.Info
	place int
	// raw disables the constructive "empty"-elision inside ">>" chains, so
	// the full Table-3 skeleton (with neutral terminations in place of
	// "empty") is visible in the output.
	raw bool
	// interrupt selects the disabling implementation (Section 3.3).
	interrupt InterruptMode
}

// spec derives the whole entity specification (rules 1-6): same block
// structure, same process names, projected bodies.
func (pr *projector) spec(sp *lotos.Spec) *lotos.Spec {
	return &lotos.Spec{Root: pr.block(sp.Root)}
}

func (pr *projector) block(blk *lotos.DefBlock) *lotos.DefBlock {
	out := &lotos.DefBlock{Expr: pr.tp(blk.Expr)}
	for _, pd := range blk.Procs {
		out.Procs = append(out.Procs, &lotos.ProcDef{
			ID:   pd.ID,
			Name: pd.Name,
			Body: pr.block(pd.Body),
		})
	}
	return out
}

// tp is the projection T_p in "normal" context (everywhere except directly
// below a disabling operator, where tpDisabling applies — rules 9.2-9.4).
func (pr *projector) tp(e lotos.Expr) lotos.Expr {
	switch x := e.(type) {
	case *lotos.Exit, *lotos.Empty:
		// A bare termination involves no place: nothing to execute locally;
		// Empty is the neutral element (it prints and behaves as exit).
		return lotos.Emp()

	case *lotos.Stop:
		return lotos.Halt()

	case *lotos.Prefix:
		return pr.tpPrefix(x, false)

	case *lotos.Choice:
		// Rule 14: ( T_p(L) >> Alternative_p(L,R) ) [] ( T_p(R) >> Alternative_p(R,L) ).
		return lotos.Ch(
			pr.chain(pr.tp(x.L), pr.alternative(x.L, x.R)),
			pr.chain(pr.tp(x.R), pr.alternative(x.R, x.L)),
		)

	case *lotos.Parallel:
		// Rules 11-13: parallel composition requires no synchronization
		// messages; the gate set is projected onto the local events.
		return pr.tpParallel(x)

	case *lotos.Enable:
		// Rule 7: T_p(L) >> Synch_Left_p(L,R) >> Synch_Right_p(L,R) >> T_p(R).
		return pr.chain(
			pr.tp(x.L),
			pr.synchLeft(x.L, x.R),
			pr.synchRight(x.L, x.R),
			pr.tp(x.R),
		)

	case *lotos.Disable:
		// Rule 9.1: (( T_p(L) >> Rel_p(L) )) [> ( T_p(Mc) ).
		return lotos.Dis(
			pr.chain(pr.tp(x.L), pr.rel(x.L)),
			pr.tpDisabling(x.R),
		)

	case *lotos.ProcRef:
		// Rule 18: ( Proc_Synch_p(Proc_Id) >> Proc_Id ).
		call := lotos.Call(x.Name)
		call.SetID(x.ID())
		return pr.chain(pr.procSynch(x), call)
	}
	// Rule 19 "(e)" has no explicit AST node: grouping is structural.
	return lotos.Emp()
}

// tpPrefix implements rules 16, 17 and 9.4.
//
// Rule 17 ("Event_Id ; exit"): the local place keeps the event; all other
// places derive the neutral termination — no synchronization is generated
// for the final action of a sequence.
//
// Rule 16 ("Event_Id ; Seq"): the event is followed by the Synch_Left /
// Synch_Right message exchange that hands control from the event's place to
// the starting places of the continuation.
//
// Rule 9.4 (inDisabling): additionally, the first event of a disabling
// alternative broadcasts the interruption to every place not otherwise
// notified (function Interr, Section 3.3).
func (pr *projector) tpPrefix(x *lotos.Prefix, inDisabling bool) lotos.Expr {
	contIsExit := isTermination(x.Cont)
	var rest lotos.Expr
	if contIsExit && !inDisabling {
		// Rule 17: Proj_p(Event) "; exit".
		if pr.place == x.Ev.Place {
			return lotos.Pfx(x.Ev, lotos.X())
		}
		return lotos.Emp()
	}
	if inDisabling && pr.interrupt == InterruptHandshake {
		return pr.tpPrefixHandshake(x)
	}
	parts := []lotos.Expr{}
	if inDisabling {
		parts = append(parts, pr.interr(x))
	}
	parts = append(parts,
		pr.synchLeftEvent(x),
		pr.synchRightEvent(x),
		pr.tp(x.Cont),
	)
	rest = pr.chain(parts...)
	if pr.place == x.Ev.Place {
		return prefixOnto(x.Ev, rest)
	}
	return rest
}

// tpPrefixHandshake derives the first event of a disabling alternative in
// the handshake mode (Section 3.3, "alternative implementation"): the
// interrupter's entity first broadcasts the request, collects all
// acknowledgments, and only then executes the disabling event; every other
// entity's disabling part starts with the request receive, stops the
// normal part, acknowledges, and continues with its share of the
// continuation.
func (pr *projector) tpPrefixHandshake(x *lotos.Prefix) lotos.Expr {
	contIsExit := isTermination(x.Cont)
	var after lotos.Expr
	if contIsExit {
		after = lotos.Emp()
	} else {
		after = pr.chain(
			pr.synchLeftEvent(x),
			pr.synchRightEvent(x),
			pr.tp(x.Cont),
		)
	}
	if pr.place == x.Ev.Place {
		rest := after
		if lotos.IsEmpty(rest) {
			rest = lotos.X()
		}
		return pr.chain(
			pr.interrReq(x),
			pr.interrAck(x),
			prefixOnto(x.Ev, rest),
		)
	}
	return pr.chain(
		pr.interrReq(x),
		pr.interrAck(x),
		after,
	)
}

// prefixOnto builds "ev ; ( rest )", collapsing a neutral rest to exit.
func prefixOnto(ev lotos.Event, rest lotos.Expr) lotos.Expr {
	if lotos.IsEmpty(rest) {
		return lotos.Pfx(ev, lotos.X())
	}
	return lotos.Pfx(ev, rest)
}

// tpDisabling projects the right-hand side of "[>", which the action-prefix
// transformation guarantees to be a choice of prefixes (rules 9.2-9.4).
func (pr *projector) tpDisabling(e lotos.Expr) lotos.Expr {
	switch x := e.(type) {
	case *lotos.Choice:
		// Rule 9.2 mirrors rule 14, with the alternatives in
		// disabling context.
		return lotos.Ch(
			pr.chain(pr.tpDisabling(x.L), pr.alternative(x.L, x.R)),
			pr.chain(pr.tpDisabling(x.R), pr.alternative(x.R, x.L)),
		)
	case *lotos.Prefix:
		return pr.tpPrefix(x, true)
	default:
		// Unreachable on validated input; project conservatively.
		return pr.tp(e)
	}
}

// tpParallel implements rules 11-13: the structure is preserved and the
// synchronization set is restricted to the local events (function select_p).
func (pr *projector) tpParallel(x *lotos.Parallel) lotos.Expr {
	l := pr.tp(x.L)
	r := pr.tp(x.R)
	switch x.Kind {
	case lotos.ParInterleave:
		return lotos.Ill(l, r)
	case lotos.ParFull:
		// "||" synchronizes on all events of the expression; the projection
		// synchronizes on all local events of the two sides.
		return pr.gatesOrInterleave(l, r, pr.selectLocal(allGates(x)))
	default:
		return pr.gatesOrInterleave(l, r, pr.selectLocal(x.Sync))
	}
}

// gatesOrInterleave builds "l |[gates]| r", degrading to "|||" when the
// projected gate set is empty (law P5: B1 |[]| B2 = B1 ||| B2).
func (pr *projector) gatesOrInterleave(l, r lotos.Expr, gates []string) lotos.Expr {
	if len(gates) == 0 {
		return lotos.Ill(l, r)
	}
	return lotos.Gates(l, gates, r)
}

// selectLocal is the function select_p of Table 4: the subset of gate
// identifiers whose place is p.
func (pr *projector) selectLocal(gates []string) []string {
	var out []string
	for _, g := range gates {
		ev, err := lotos.ParseEventID(g)
		if err == nil && ev.Place == pr.place {
			out = append(out, g)
		}
	}
	return out
}

// allGates collects the raw identifiers of every service event below e,
// deduplicated in first-occurrence order (the event set of "||").
func allGates(e lotos.Expr) []string {
	seen := map[string]bool{}
	var out []string
	lotos.Walk(e, func(n lotos.Expr) {
		if pfx, ok := n.(*lotos.Prefix); ok && pfx.Ev.Kind == lotos.EvService {
			id := pfx.Ev.RawID()
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	})
	return out
}

// isTermination reports whether the continuation is "exit" (rule 17).
func isTermination(e lotos.Expr) bool {
	switch e.(type) {
	case *lotos.Exit, *lotos.Empty:
		return true
	}
	return false
}

// chain folds the parts into a right-nested ">>" chain. Unless raw output
// was requested, empty parts are dropped (rules "empty >> e = e" and
// "e >> empty = e"); an all-empty chain is Empty.
func (pr *projector) chain(parts ...lotos.Expr) lotos.Expr {
	var kept []lotos.Expr
	for _, p := range parts {
		if p == nil {
			continue
		}
		if lotos.IsEmpty(p) && !pr.raw {
			continue
		}
		kept = append(kept, p)
	}
	if len(kept) == 0 {
		return lotos.Emp()
	}
	out := kept[len(kept)-1]
	for i := len(kept) - 2; i >= 0; i-- {
		out = lotos.Enb(kept[i], out)
	}
	return out
}
