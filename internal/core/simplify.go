package core

import (
	"repro/internal/lotos"
)

// simplifySpec applies the "empty"-elimination rules of Section 4.2 to every
// expression of the derived entity, in place:
//
//	empty ; e  = e        (never constructed: projection drops the prefix)
//	empty >> e = e
//	e >> empty = e
//	e ||| empty = e
//
// plus the closure rules needed for whole sub-derivations that vanish at a
// place: a choice, disabling or synchronized parallel whose two sides are
// both empty is empty. Residual Empty nodes that cannot be elided (e.g. one
// arm of a choice) are replaced by exit, which is their meaning.
func simplifySpec(sp *lotos.Spec) {
	simplifyBlock(sp.Root)
}

// SimplifySpec applies the Section 4.2 empty-elimination rewrite rules to a
// derived entity specification, in place. It is exported for passes that
// edit derived entities (e.g. the message optimizer) and need to re-normalize.
func SimplifySpec(sp *lotos.Spec) { simplifySpec(sp) }

func simplifyBlock(blk *lotos.DefBlock) {
	blk.Expr = finalize(simplify(blk.Expr))
	for _, pd := range blk.Procs {
		simplifyBlock(pd.Body)
	}
}

// simplify rewrites bottom-up, returning Empty whenever the whole
// expression generates no interaction.
func simplify(e lotos.Expr) lotos.Expr {
	switch x := e.(type) {
	case *lotos.Prefix:
		x.Cont = finalize(simplify(x.Cont))
		return x

	case *lotos.Choice:
		l := simplify(x.L)
		r := simplify(x.R)
		if lotos.IsEmpty(l) && lotos.IsEmpty(r) {
			return lotos.Emp()
		}
		x.L = finalize(l)
		x.R = finalize(r)
		return x

	case *lotos.Parallel:
		l := simplify(x.L)
		r := simplify(x.R)
		if x.Kind == lotos.ParInterleave {
			// e ||| empty = e.
			if lotos.IsEmpty(l) {
				return r
			}
			if lotos.IsEmpty(r) {
				return l
			}
		}
		if lotos.IsEmpty(l) && lotos.IsEmpty(r) {
			return lotos.Emp()
		}
		x.L = finalize(l)
		x.R = finalize(r)
		return x

	case *lotos.Enable:
		l := simplify(x.L)
		r := simplify(x.R)
		// empty >> e = e ; e >> empty = e.
		if lotos.IsEmpty(l) {
			return r
		}
		if lotos.IsEmpty(r) {
			return l
		}
		x.L = l
		x.R = r
		return x

	case *lotos.Disable:
		l := simplify(x.L)
		r := simplify(x.R)
		if lotos.IsEmpty(l) && lotos.IsEmpty(r) {
			return lotos.Emp()
		}
		x.L = finalize(l)
		x.R = finalize(r)
		return x

	case *lotos.Hide:
		x.Body = finalize(simplify(x.Body))
		return x
	}
	return e
}

// finalize converts a residual Empty into the exit it denotes, so that
// derived entities contain no Empty nodes at positions where elision was
// impossible.
func finalize(e lotos.Expr) lotos.Expr {
	if lotos.IsEmpty(e) {
		return lotos.X()
	}
	return e
}
