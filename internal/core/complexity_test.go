package core

import (
	"strings"
	"testing"
)

// complexitySuite is the spec set used for the Section 4.3 accounting
// checks.
var complexitySuite = []string{
	"SPEC a1; exit ENDSPEC",
	"SPEC a1; b2; exit ENDSPEC",
	"SPEC a1; b2; c3; exit ENDSPEC",
	"SPEC a1; exit >> b2; exit ENDSPEC",
	"SPEC a1; b2; exit [] a1; c2; exit ENDSPEC",
	"SPEC a1; c3; b2; exit [] e1; b2; exit ENDSPEC",
	"SPEC a1; exit ||| b2; exit ENDSPEC",
	"SPEC a1; exit >> (b2; exit ||| c3; exit) >> d1; exit ENDSPEC",
	"SPEC a1; b2; c3; exit [> d3; exit ENDSPEC",
	"SPEC a1; b2; c3; exit [> d3; e3; exit ENDSPEC",
	`SPEC A WHERE PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END ENDSPEC`,
	`SPEC B ||| B WHERE PROC B = (a1; (b2; exit ||| c3; exit)) >> g4; exit END ENDSPEC`,
	example3Source,
}

// TestE8_ComplexityMatchesDerivedSends is the cross-check at the heart of
// the Section 4.3 reproduction: the attribute-level message accounting
// equals the number of send interactions in the derived entity texts.
func TestE8_ComplexityMatchesDerivedSends(t *testing.T) {
	for _, src := range complexitySuite {
		d := mustDerive(t, src)
		c := MessageComplexity(d.Service)
		if got, want := c.Total(), d.SendCount(); got != want {
			t.Errorf("%s:\n complexity total %d != derived sends %d\n%s", src, got, want, c)
		}
		// Receives must pair with sends one-to-one.
		if got, want := d.ReceiveCount(), d.SendCount(); got != want {
			t.Errorf("%s: receives %d != sends %d", src, got, want)
		}
	}
}

func TestE8_PaperBounds(t *testing.T) {
	// Section 4.3 bounds per operator occurrence, for specifications whose
	// ending/starting sets are singletons (the paper's implicit setting):
	//   ';'/'>>'      at most 1 message
	//   '[]'          at most n messages
	//   '[>'          Rel at most n-1, Interr at most n-2 (nonempty cont)
	//   instantiation at most n-1 messages
	d := mustDerive(t, example3Source)
	c := MessageComplexity(d.Service)
	n := c.Places
	if n != 3 {
		t.Fatalf("n = %d", n)
	}
	for _, nc := range c.PerNode {
		switch nc.Op {
		case "seq":
			if nc.Messages > 1 {
				t.Errorf("seq node %d: %d messages, bound 1", nc.Node, nc.Messages)
			}
		case "choice":
			if nc.Messages > n {
				t.Errorf("choice node %d: %d messages, bound n=%d", nc.Node, nc.Messages, n)
			}
		case "disable-rel":
			if nc.Messages > n-1 {
				t.Errorf("rel node %d: %d messages, bound n-1=%d", nc.Node, nc.Messages, n-1)
			}
		case "disable-interr":
			// Continuation of interrupt3 is exit: SP(e2) empty, so the
			// broadcast reaches n-1 places (the 2n-3 total of the paper
			// assumes a nonempty continuation).
			if nc.Messages > n-1 {
				t.Errorf("interr node %d: %d messages, bound n-1=%d", nc.Node, nc.Messages, n-1)
			}
		case "instantiate":
			if nc.Messages > n-1 {
				t.Errorf("instantiate node %d: %d messages, bound n-1=%d", nc.Node, nc.Messages, n-1)
			}
		}
	}
}

func TestE8_Example3Breakdown(t *testing.T) {
	// Hand-computed Section 4.3 accounting for Example 3 (n = 3):
	//   seq: '>>' 1, read1 1, push2 1, pop2 1, eof1 1        =  5
	//   choice: |AP(left)-AP(right)| = |{2}| = 1             =  1
	//   Rel: EP(S)={3} broadcasts to 2 places                =  2
	//   Interr: interrupt3 to ALL-{3}-{} = 2 places          =  2
	//   Proc_Synch: two call sites of S, 1x2 each            =  4
	d := mustDerive(t, example3Source)
	c := MessageComplexity(d.Service)
	if c.Seq != 5 {
		t.Errorf("seq = %d, want 5", c.Seq)
	}
	if c.Choice != 1 {
		t.Errorf("choice = %d, want 1", c.Choice)
	}
	if c.DisableRel != 2 {
		t.Errorf("rel = %d, want 2", c.DisableRel)
	}
	if c.DisableInterr != 2 {
		t.Errorf("interr = %d, want 2", c.DisableInterr)
	}
	if c.Instantiate != 4 {
		t.Errorf("instantiate = %d, want 4", c.Instantiate)
	}
	if c.Total() != 14 {
		t.Errorf("total = %d, want 14", c.Total())
	}
}

func TestE8_ParallelMultiplication(t *testing.T) {
	// Section 4.3: e1 >> (e2 ||| e3) >> e4 with the parallel parts at two
	// different places doubles the '>>' messages on both sides.
	d := mustDerive(t, "SPEC a1; exit >> (b2; exit ||| c3; exit) >> d1; exit ENDSPEC")
	c := MessageComplexity(d.Service)
	// First '>>': EP={1} -> SP={2,3}: 2 messages. Second: EP={2,3} -> SP={1}: 2.
	if c.Seq != 4 {
		t.Errorf("seq = %d, want 4 (2 per '>>' around the parallel)", c.Seq)
	}
}

func TestE8_NoMessagesForPurelyLocal(t *testing.T) {
	d := mustDerive(t, "SPEC a1; b1; exit [] c1; b1; exit ENDSPEC")
	c := MessageComplexity(d.Service)
	if c.Total() != 0 {
		t.Errorf("single-place service must need no messages, got %d\n%s", c.Total(), c)
	}
}

func TestComplexityString(t *testing.T) {
	d := mustDerive(t, example3Source)
	c := MessageComplexity(d.Service)
	s := c.String()
	for _, want := range []string{"places n=3", "seq", "choice", "Rel", "Interr", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestComplexityPerNodeSorted(t *testing.T) {
	d := mustDerive(t, example3Source)
	c := MessageComplexity(d.Service)
	for i := 1; i < len(c.PerNode); i++ {
		if c.PerNode[i].Node < c.PerNode[i-1].Node {
			t.Fatal("PerNode not sorted by node number")
		}
	}
}
