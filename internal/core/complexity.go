package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/attr"
	"repro/internal/lotos"
)

// NodeCost is the message cost attributed to one operator occurrence
// (Section 4.3).
type NodeCost struct {
	// Node is the syntax-tree node number.
	Node int
	// Op names the operator class: "seq" (';' or '>>'), "choice",
	// "disable-rel", "disable-interr" or "instantiate".
	Op string
	// Messages is the number of send interactions this occurrence
	// contributes across all derived entities.
	Messages int
}

// Complexity is the message-complexity report of Section 4.3 for one
// service specification: how many synchronization messages the derivation
// generates, broken down by operator class.
type Complexity struct {
	// Places is n = |ALL|.
	Places int
	// Seq counts messages from ';' and '>>' (at most one per occurrence
	// between singleton ending/starting place sets; parallel starting or
	// ending sets multiply the count, Section 4.3).
	Seq int
	// Choice counts Alternative messages (at most n per '[]' occurrence).
	Choice int
	// DisableRel counts Rel termination-barrier messages (at most n-1 per
	// '[>' occurrence with a single ending place).
	DisableRel int
	// DisableInterr counts Interr interrupt broadcasts (at most n-2 per
	// disabling alternative whose continuation has starting places).
	DisableInterr int
	// Instantiate counts Proc_Synch messages (at most n-1 per process
	// instantiation with a single starting place).
	Instantiate int
	// PerNode attributes costs to individual operator occurrences, sorted
	// by node number.
	PerNode []NodeCost
}

// Total returns the total static message count (the number of send
// interactions in the union of all derived entity texts).
func (c Complexity) Total() int {
	return c.Seq + c.Choice + c.DisableRel + c.DisableInterr + c.Instantiate
}

// String renders the report as the Section 4.3 table.
func (c Complexity) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "places n=%d\n", c.Places)
	fmt.Fprintf(&b, "  seq (';' '>>')      %4d\n", c.Seq)
	fmt.Fprintf(&b, "  choice '[]'         %4d\n", c.Choice)
	fmt.Fprintf(&b, "  disable Rel         %4d\n", c.DisableRel)
	fmt.Fprintf(&b, "  disable Interr      %4d\n", c.DisableInterr)
	fmt.Fprintf(&b, "  instantiation       %4d\n", c.Instantiate)
	fmt.Fprintf(&b, "  total               %4d\n", c.Total())
	return b.String()
}

// MessageComplexity computes, from the attributes alone (without deriving),
// the number of synchronization messages the derivation inserts for every
// operator occurrence, for the default broadcast interrupt mode. It equals
// the number of send interactions of the derived entities (see
// TestE8_ComplexityMatchesDerivedSends).
func MessageComplexity(info *attr.Info) Complexity {
	return MessageComplexityMode(info, InterruptBroadcast)
}

// MessageComplexityMode is MessageComplexity for a specific disabling
// implementation: the handshake mode pays 2(n-1) request/acknowledgment
// messages per disabling alternative instead of the broadcast's at most
// n-2.
func MessageComplexityMode(info *attr.Info, mode InterruptMode) Complexity {
	c := Complexity{Places: info.All.Len()}
	all := info.All

	countSeq := func(e1, e2 lotos.Expr, node int) {
		a1, a2 := info.Of(e1), info.Of(e2)
		n := 0
		for _, p := range a1.EP.Sorted() {
			n += a2.SP.MinusPlace(p).Len()
		}
		if n > 0 {
			c.Seq += n
			c.PerNode = append(c.PerNode, NodeCost{Node: node, Op: "seq", Messages: n})
		}
	}

	// Disabling right-hand sides need the Interr accounting of rule 9.4,
	// so the walk tracks which prefixes are the first events of disabling
	// alternatives.
	disablingFirst := map[lotos.Expr]bool{}
	var markDisabling func(e lotos.Expr)
	markDisabling = func(e lotos.Expr) {
		switch x := e.(type) {
		case *lotos.Choice:
			markDisabling(x.L)
			markDisabling(x.R)
		case *lotos.Prefix:
			disablingFirst[x] = true
		}
	}
	lotos.WalkSpec(info.Spec, func(e lotos.Expr) {
		if d, ok := e.(*lotos.Disable); ok {
			markDisabling(d.R)
		}
	})

	lotos.WalkSpec(info.Spec, func(e lotos.Expr) {
		switch x := e.(type) {
		case *lotos.Enable:
			countSeq(x.L, x.R, x.ID())

		case *lotos.Prefix:
			if isTermination(x.Cont) && !disablingFirst[x] {
				return // rule 17: no synchronization
			}
			// Rule 16 / 9.4 Synch_Left from the event's place.
			spCont := info.Of(x.Cont).SP
			n := spCont.MinusPlace(x.Ev.Place).Len()
			if n > 0 {
				c.Seq += n
				c.PerNode = append(c.PerNode, NodeCost{Node: x.ID(), Op: "seq", Messages: n})
			}
			if disablingFirst[x] {
				if mode == InterruptHandshake {
					// Section 3.3 alternative: request + acknowledgment
					// between the interrupter and every other place.
					m := 2 * all.MinusPlace(x.Ev.Place).Len()
					if m > 0 {
						c.DisableInterr += m
						c.PerNode = append(c.PerNode, NodeCost{Node: x.ID(), Op: "disable-handshake", Messages: m})
					}
				} else {
					// Rule 9.4 Interr broadcast.
					sp1 := attr.NewPlaceSet(x.Ev.Place)
					m := all.Minus(sp1).Minus(spCont).Len()
					if m > 0 {
						c.DisableInterr += m
						c.PerNode = append(c.PerNode, NodeCost{Node: x.ID(), Op: "disable-interr", Messages: m})
					}
				}
			}

		case *lotos.Choice:
			aL, aR := info.Of(x.L), info.Of(x.R)
			n := aR.AP.Minus(aL.AP).Len() + aL.AP.Minus(aR.AP).Len()
			if n > 0 {
				c.Choice += n
				c.PerNode = append(c.PerNode, NodeCost{Node: x.ID(), Op: "choice", Messages: n})
			}

		case *lotos.Disable:
			// Rel barrier: every ending place of the normal part broadcasts.
			ep := info.Of(x.L).EP
			n := 0
			for _, p := range ep.Sorted() {
				n += all.MinusPlace(p).Len()
			}
			if n > 0 {
				c.DisableRel += n
				c.PerNode = append(c.PerNode, NodeCost{Node: x.ID(), Op: "disable-rel", Messages: n})
			}

		case *lotos.ProcRef:
			sp := info.Of(x).SP
			n := sp.Len() * all.Minus(sp).Len()
			if n > 0 {
				c.Instantiate += n
				c.PerNode = append(c.PerNode, NodeCost{Node: x.ID(), Op: "instantiate", Messages: n})
			}
		}
	})
	sort.Slice(c.PerNode, func(i, j int) bool { return c.PerNode[i].Node < c.PerNode[j].Node })
	return c
}
