package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lotos"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden derivation outputs")

// checkGolden compares got against the golden file, or rewrites it.
func checkGolden(t *testing.T, goldenPath, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("derivation changed for %s:\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, got, string(want))
	}
}

// hasDisable reports whether the specification uses "[>".
func hasDisable(sp *lotos.Spec) bool {
	found := false
	lotos.WalkSpec(sp, func(e lotos.Expr) {
		if _, ok := e.(*lotos.Disable); ok {
			found = true
		}
	})
	return found
}

// TestGoldenDerivations pins the exact derived output for a corpus of
// service specifications. Any change to the derivation rules, the message
// numbering, the simplifier or the printer shows up as a diff here.
// Regenerate intentionally with:
//
//	go test ./internal/core -run TestGoldenDerivations -update
func TestGoldenDerivations(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join("testdata", "*.spec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 8 {
		t.Fatalf("corpus too small: %v", specs)
	}
	for _, path := range specs {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			srcBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := lotos.Parse(string(srcBytes))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			d, err := Derive(sp, Options{})
			if err != nil {
				t.Fatalf("derive: %v", err)
			}
			var b strings.Builder
			b.WriteString(d.Render())
			b.WriteString("-- Complexity\n")
			b.WriteString(MessageComplexity(d.Service).String())

			checkGolden(t, strings.TrimSuffix(path, ".spec")+".golden", b.String())

			// Specifications with disabling also pin the handshake mode.
			if hasDisable(sp) {
				hd, err := Derive(sp, Options{Interrupt: InterruptHandshake})
				if err != nil {
					t.Fatalf("handshake derive: %v", err)
				}
				var hb strings.Builder
				hb.WriteString(hd.Render())
				hb.WriteString("-- Complexity\n")
				hb.WriteString(MessageComplexityMode(hd.Service, InterruptHandshake).String())
				checkGolden(t, strings.TrimSuffix(path, ".spec")+".handshake.golden", hb.String())
			}
		})
	}
}
