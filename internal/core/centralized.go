package core

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/attr"
	"repro/internal/lotos"
)

// CentralizedDerivation is the "trivial solution" sketched at the start of
// Section 3: a single server protocol entity holds a copy of the service
// specification and drives all other (client) entities by exchanging
// command/acknowledgment messages. It serves as the baseline the paper's
// distributed method is motivated against: "such a centralized control
// method requires many synchronization messages and the load for the server
// PE becomes large".
type CentralizedDerivation struct {
	// Server is the place hosting the controlling entity.
	Server int
	// Places lists all service places, sorted.
	Places []int
	// Entities maps every place to its specification. The server entity is
	// structurally the service specification with remote actions replaced
	// by command/ack exchanges; each client entity is a command loop.
	Entities map[int]*lotos.Spec
}

// cmdTag builds the symbolic message tag identifying the command for one
// service primitive occurrence ("execute a at your place"), and ackTag the
// corresponding acknowledgment. Tags are per-node so that concurrent
// commands for the same primitive remain distinguishable.
func cmdTag(node int) string { return "cmd" + strconv.Itoa(node) }
func ackTag(node int) string { return "ack" + strconv.Itoa(node) }

// stopTag is the termination broadcast sent by the server when the service
// terminates, releasing the client command loops.
const stopTag = "halt"

func taggedSend(to int, tag string) lotos.Expr {
	return lotos.Act(lotos.Event{Kind: lotos.EvSend, Place: to, Node: -1, Tag: tag})
}

func taggedRecv(from int, tag string) lotos.Expr {
	return lotos.Act(lotos.Event{Kind: lotos.EvRecv, Place: from, Node: -1, Tag: tag})
}

// DeriveCentralized builds the centralized baseline for a service
// specification. The server place defaults to the smallest place of ALL
// when server is 0.
//
// Supported service language: the full language except "[>" (the
// centralized treatment of disabling shares the distributed version's
// semantic deviations without adding insight, so the baseline rejects it).
// Choices are resolved by the server; this preserves the service's trace
// set as a whole but moves the choice from the remote user to the server —
// exactly the weakness the paper notes for centralized control.
func DeriveCentralized(sp *lotos.Spec, server int) (*CentralizedDerivation, error) {
	work := lotos.CloneSpec(sp)
	info, err := attr.Analyze(work)
	if err != nil {
		return nil, fmt.Errorf("core: centralized baseline: %w", err)
	}
	var hasDisable bool
	lotos.WalkSpec(work, func(e lotos.Expr) {
		if _, ok := e.(*lotos.Disable); ok {
			hasDisable = true
		}
	})
	if hasDisable {
		return nil, fmt.Errorf("core: centralized baseline does not support the disabling operator")
	}
	places := info.All.Sorted()
	if len(places) == 0 {
		return nil, fmt.Errorf("core: service has no places")
	}
	if server == 0 {
		server = places[0]
	}
	found := false
	for _, p := range places {
		found = found || p == server
	}
	if !found {
		return nil, fmt.Errorf("core: server place %d is not a service place", server)
	}

	d := &CentralizedDerivation{
		Server:   server,
		Places:   places,
		Entities: map[int]*lotos.Spec{},
	}

	// Server entity: the service structure with every remote primitive
	// a_q (q != server) replaced by "send cmd to q >> receive ack from q",
	// followed by a termination broadcast to all clients.
	srv := &centralizer{server: server}
	serverBlock := srv.block(work.Root)
	var stops []lotos.Expr
	for _, q := range places {
		if q != server {
			stops = append(stops, taggedSend(q, stopTag))
		}
	}
	if len(stops) > 0 {
		serverBlock.Expr = lotos.Enb(serverBlock.Expr, lotos.InterleaveOf(stops...))
	}
	d.Entities[server] = &lotos.Spec{Root: serverBlock}

	// Client entities: a command loop with one alternative per service
	// primitive occurrence at the client's place, plus the halt message.
	occurrences := primitiveOccurrences(work)
	for _, q := range places {
		if q == server {
			continue
		}
		d.Entities[q] = clientLoop(q, server, occurrences[q])
	}
	return d, nil
}

// primitiveOccurrence is one service-primitive occurrence of the
// specification: the event plus its node number.
type primitiveOccurrence struct {
	Ev   lotos.Event
	Node int
}

// primitiveOccurrences groups the primitive occurrences by place.
func primitiveOccurrences(sp *lotos.Spec) map[int][]primitiveOccurrence {
	out := map[int][]primitiveOccurrence{}
	lotos.WalkSpec(sp, func(e lotos.Expr) {
		if pfx, ok := e.(*lotos.Prefix); ok && pfx.Ev.Kind == lotos.EvService {
			out[pfx.Ev.Place] = append(out[pfx.Ev.Place], primitiveOccurrence{Ev: pfx.Ev, Node: pfx.ID()})
		}
	})
	for p := range out {
		sort.Slice(out[p], func(i, j int) bool { return out[p][i].Node < out[p][j].Node })
	}
	return out
}

// clientLoop builds the client entity for place q:
//
//	PROC Loop = r_srv(cmdN); a_q; s_srv(ackN); Loop
//	         [] ...one alternative per occurrence...
//	         [] r_srv(halt); exit
//	END
func clientLoop(q, server int, occs []primitiveOccurrence) *lotos.Spec {
	var alts []lotos.Expr
	for _, occ := range occs {
		alts = append(alts, lotos.Pfx(
			lotos.Event{Kind: lotos.EvRecv, Place: server, Node: -1, Tag: cmdTag(occ.Node)},
			lotos.Pfx(occ.Ev,
				lotos.Pfx(lotos.Event{Kind: lotos.EvSend, Place: server, Node: -1, Tag: ackTag(occ.Node)},
					lotos.Call("Loop")))))
	}
	alts = append(alts, lotos.Pfx(
		lotos.Event{Kind: lotos.EvRecv, Place: server, Node: -1, Tag: stopTag},
		lotos.X()))
	body := lotos.ChoiceOf(alts...)
	return &lotos.Spec{Root: &lotos.DefBlock{
		Expr: lotos.Call("Loop"),
		Procs: []*lotos.ProcDef{{
			Name: "Loop",
			Body: &lotos.DefBlock{Expr: body},
		}},
	}}
}

// centralizer rewrites the service structure into the server entity.
type centralizer struct {
	server int
}

func (c *centralizer) block(blk *lotos.DefBlock) *lotos.DefBlock {
	out := &lotos.DefBlock{Expr: c.rewrite(blk.Expr)}
	for _, pd := range blk.Procs {
		out.Procs = append(out.Procs, &lotos.ProcDef{
			ID: pd.ID, Name: pd.Name, Body: c.block(pd.Body),
		})
	}
	return out
}

func (c *centralizer) rewrite(e lotos.Expr) lotos.Expr {
	switch x := e.(type) {
	case *lotos.Prefix:
		cont := c.rewrite(x.Cont)
		if x.Ev.Place == c.server {
			return lotos.Pfx(x.Ev, cont)
		}
		// Remote action: command, then acknowledgment, then continue.
		cmd := lotos.Pfx(
			lotos.Event{Kind: lotos.EvSend, Place: x.Ev.Place, Node: -1, Tag: cmdTag(x.ID())},
			lotos.Pfx(lotos.Event{Kind: lotos.EvRecv, Place: x.Ev.Place, Node: -1, Tag: ackTag(x.ID())},
				lotos.X()))
		if _, ok := cont.(*lotos.Exit); ok {
			return cmd
		}
		return lotos.Enb(cmd, cont)
	case *lotos.Choice:
		return lotos.Ch(c.rewrite(x.L), c.rewrite(x.R))
	case *lotos.Parallel:
		p := &lotos.Parallel{L: c.rewrite(x.L), R: c.rewrite(x.R), Kind: x.Kind, Sync: x.Sync}
		p.SetID(x.ID())
		return c.projectSync(p)
	case *lotos.Enable:
		return lotos.Enb(c.rewrite(x.L), c.rewrite(x.R))
	case *lotos.ProcRef:
		call := lotos.Call(x.Name)
		call.SetID(x.ID())
		return call
	case *lotos.Exit:
		return lotos.X()
	default:
		return lotos.Clone(e)
	}
}

// projectSync restricts a synchronized parallel to the server-local gates:
// remote events became messages and can no longer synchronize, so
// synchronization on them must be dropped. (Remote synchronized events are
// serialized through their command/ack exchange instead.)
func (c *centralizer) projectSync(p *lotos.Parallel) lotos.Expr {
	if p.Kind == lotos.ParInterleave {
		return p
	}
	var local []string
	if p.Kind == lotos.ParGates {
		for _, g := range p.Sync {
			if ev, err := lotos.ParseEventID(g); err == nil && ev.Place == c.server {
				local = append(local, g)
			}
		}
	} else {
		// "||": synchronize on all server-local service events of both sides.
		seen := map[string]bool{}
		lotos.Walk(p, func(n lotos.Expr) {
			if pfx, ok := n.(*lotos.Prefix); ok && pfx.Ev.Kind == lotos.EvService && pfx.Ev.Place == c.server {
				seen[pfx.Ev.RawID()] = true
			}
		})
		for g := range seen {
			local = append(local, g)
		}
		sort.Strings(local)
	}
	if len(local) == 0 {
		return lotos.Ill(p.L, p.R)
	}
	return lotos.Gates(p.L, local, p.R)
}

// MessageCount returns the number of messages a centralized execution
// exchanges: two per remote primitive occurrence (command + ack) plus the
// final halt broadcast — the Section-3 argument made quantitative.
func (d *CentralizedDerivation) MessageCount() int {
	n := 0
	for p, occs := range primitiveOccurrencesOfEntities(d) {
		if p != d.Server {
			n += 2 * occs
		}
	}
	return n + len(d.Places) - 1
}

// primitiveOccurrencesOfEntities counts remote command alternatives per
// client (each corresponds to one command/ack pair in the server text).
func primitiveOccurrencesOfEntities(d *CentralizedDerivation) map[int]int {
	out := map[int]int{}
	for p, sp := range d.Entities {
		if p == d.Server {
			continue
		}
		lotos.WalkSpec(sp, func(e lotos.Expr) {
			if pfx, ok := e.(*lotos.Prefix); ok && pfx.Ev.Kind == lotos.EvService {
				out[p]++
			}
		})
	}
	return out
}
