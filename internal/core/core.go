// Package core implements the paper's primary contribution: the automatic
// derivation of protocol entity specifications from a service specification
// (Section 4, Tables 3 and 4).
//
// Given a service specification S over service access points (places)
// 1..n, Derive produces one protocol entity specification T_p(S) per place.
// Each entity contains only the service interactions local to its place,
// plus the send/receive synchronization messages that enforce the global
// temporal ordering of the service:
//
//   - action prefix ";" and sequential composition ">>" generate
//     Synch_Left/Synch_Right messages from the ending places of the left
//     part to the starting places of the right part (Section 3.1);
//   - choice "[]" generates Alternative messages from the deciding place to
//     the places that do not participate in the chosen alternative
//     (Section 3.2);
//   - disabling "[>" generates Rel termination-barrier messages and Interr
//     interrupt broadcasts (Section 3.3);
//   - process instantiation generates Proc_Synch messages from the starting
//     places of the process to all other places (Section 3.4), and every
//     message is parameterized by a process occurrence number so that
//     multiple instances of one process cannot be confused (Section 3.5).
//
// The derivation preserves the structure of the service specification: each
// entity has the same process definitions, the same operators, and local
// projections of the same behaviour — the property the paper's correctness
// proof (Section 5) relies on.
package core

import (
	"fmt"
	"sort"

	"repro/internal/apf"
	"repro/internal/attr"
	"repro/internal/lotos"
)

// InterruptMode selects the distributed implementation of the disabling
// operator "[>" (Section 3.3).
type InterruptMode int

const (
	// InterruptBroadcast is the paper's primary implementation: the
	// disabling event executes immediately and a broadcast informs the
	// other places (functions Interr/Synch_Left). Cheap (at most n-2 extra
	// messages) but deviates from the LOTOS semantics: normal-part events
	// may still occur while the broadcast is in flight.
	InterruptBroadcast InterruptMode = iota
	// InterruptHandshake is the paper's sketched alternative: an interrupt
	// REQUEST is broadcast first, every place stops and ACKNOWLEDGES, and
	// only then does the disabling event execute. Trace-faithful to the
	// LOTOS semantics for non-terminating normal parts, at 2(n-1) messages
	// per interrupt. The termination race of the broadcast mode (see
	// EXPERIMENTS.md, E11) persists when the normal part can terminate —
	// the paper's sketch does not resolve it either.
	InterruptHandshake
)

// Options configures Derive.
type Options struct {
	// KeepRedundant retains derivation artifacts that the simplifier
	// (the "empty"-elimination rules of Section 4.2) would remove. Useful
	// for inspecting the raw output of the T_p rules.
	KeepRedundant bool
	// SkipRestrictions derives even when the restrictions R1-R3 fail.
	// The result is generally incorrect; intended for experiments that
	// demonstrate why the restrictions exist.
	SkipRestrictions bool
	// Dialect1986 restricts the accepted service language to the operators
	// of the original SIGCOMM'86 algorithm: action prefix ";", choice "[]"
	// and pure interleaving "|||" with no process instantiation. Derive
	// rejects anything else, mirroring the scope of [Boch 86].
	Dialect1986 bool
	// Interrupt selects the disabling implementation (Section 3.3).
	Interrupt InterruptMode
}

// Derivation is the result of deriving all protocol entities of a service.
type Derivation struct {
	// Service is the analyzed service specification actually derived from:
	// a clone of the input, with disabling right-hand sides normalized to
	// action prefix form and nodes renumbered.
	Service *attr.Info
	// Places lists the service access points (the attribute ALL), sorted.
	Places []int
	// Entities maps each place to its derived protocol entity.
	Entities map[int]*lotos.Spec
	// Opts records the options the derivation ran with.
	Opts Options
}

// Entity returns the derived specification for a place (nil if the place is
// not part of the service).
func (d *Derivation) Entity(place int) *lotos.Spec { return d.Entities[place] }

// Derive runs the full derivation algorithm of Section 4 on the service
// specification:
//
//	Step 1: build the syntax tree (the caller has parsed it) and normalize
//	        disabling expressions to action prefix form;
//	Step 2: number the nodes and synthesize the attributes SP/EP/AP;
//	Step 3: apply the projection T_p for every place p in ALL.
//
// The input specification is not modified.
func Derive(sp *lotos.Spec, opts Options) (*Derivation, error) {
	if opts.Dialect1986 {
		if err := check1986(sp); err != nil {
			return nil, err
		}
	}
	work := lotos.CloneSpec(sp)
	if _, err := apf.TransformSpec(work); err != nil {
		return nil, fmt.Errorf("core: action-prefix-form transformation: %w", err)
	}
	info, err := attr.Analyze(work)
	if err != nil {
		return nil, fmt.Errorf("core: attribute evaluation: %w", err)
	}
	if !opts.SkipRestrictions {
		if errs := info.CheckRestrictions(); len(errs) > 0 {
			return nil, fmt.Errorf("core: %w", errs[0])
		}
	}
	d := &Derivation{
		Service:  info,
		Places:   info.All.Sorted(),
		Entities: map[int]*lotos.Spec{},
		Opts:     opts,
	}
	for _, p := range d.Places {
		proj := &projector{info: info, place: p, raw: opts.KeepRedundant, interrupt: opts.Interrupt}
		entity := proj.spec(work)
		if !opts.KeepRedundant {
			simplifySpec(entity)
		}
		d.Entities[p] = entity
	}
	return d, nil
}

// check1986 rejects constructs beyond the scope of the original 1986
// algorithm.
func check1986(sp *lotos.Spec) error {
	var err error
	lotos.WalkSpec(sp, func(e lotos.Expr) {
		if err != nil {
			return
		}
		switch x := e.(type) {
		case *lotos.Enable:
			err = fmt.Errorf("core: '>>' requires the extended algorithm (not in the 1986 subset)")
		case *lotos.Disable:
			err = fmt.Errorf("core: '[>' requires the extended algorithm (not in the 1986 subset)")
		case *lotos.Parallel:
			if x.Kind != lotos.ParInterleave {
				err = fmt.Errorf("core: synchronized parallelism requires the extended algorithm (not in the 1986 subset)")
			}
		case *lotos.ProcRef:
			err = fmt.Errorf("core: process instantiation requires the extended algorithm (not in the 1986 subset)")
		}
	})
	if err != nil {
		return err
	}
	if len(sp.Root.Procs) > 0 {
		return fmt.Errorf("core: process definitions require the extended algorithm (not in the 1986 subset)")
	}
	return nil
}

// Render returns the derived entities as concatenated text, one per place,
// in place order — the output format of the paper's Protocol Generator.
func (d *Derivation) Render() string {
	var b []byte
	for _, p := range d.Places {
		b = append(b, fmt.Sprintf("-- Protocol entity for place %d\n%s\n", p, d.Entities[p].String())...)
	}
	return string(b)
}

// SendCount returns the total number of send interactions across all
// derived entities — the number of synchronization messages exchanged per
// "straight-line" execution of each construct (used by the complexity
// analysis of Section 4.3).
func (d *Derivation) SendCount() int {
	n := 0
	for _, sp := range d.Entities {
		lotos.WalkSpec(sp, func(e lotos.Expr) {
			if pfx, ok := e.(*lotos.Prefix); ok && pfx.Ev.Kind == lotos.EvSend {
				n++
			}
		})
	}
	return n
}

// ReceiveCount returns the total number of receive interactions across all
// derived entities.
func (d *Derivation) ReceiveCount() int {
	n := 0
	for _, sp := range d.Entities {
		lotos.WalkSpec(sp, func(e lotos.Expr) {
			if pfx, ok := e.(*lotos.Prefix); ok && pfx.Ev.Kind == lotos.EvRecv {
				n++
			}
		})
	}
	return n
}

// EntityPlaces returns the sorted places of a derived entity map.
func EntityPlaces(m map[int]*lotos.Spec) []int {
	out := make([]int, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
