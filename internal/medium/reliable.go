package medium

import (
	"math/rand/v2"
	"sync"
	"time"
)

// This file implements the error-recovery extension the paper defers to
// future work (Section 6): "for the case of a non-reliable underlying
// communication service it is possible to use our algorithm as a first
// step (assuming a reliable medium) and then use a procedure which will
// systematically transform the error-free protocol into an error-
// recoverable one", in the spirit of [Rama 86].
//
// Rather than rewriting the derived entity texts, the transformation is
// realized as a transport layer: Reliable provides the exactly-once,
// in-order FIFO channels the derived protocol assumes, on top of a lossy,
// delaying "wire", using per-channel stop-and-wait ARQ (sequence numbers,
// acknowledgments, retransmission timers). The derived entities run
// unchanged; the experiments show they complete despite loss rates that
// stall the bare medium.

// Transport is the medium interface the runtime entities use. *Medium
// (the paper's reliable FIFO medium) and *Reliable (ARQ over a lossy wire)
// both implement it.
type Transport interface {
	Send(Message)
	TryConsume(Message) bool
	TryConsumeCheck(Message) bool
	TryConsumeFlush(Message) bool
	TryConsumeFlushCheck(Message) bool
	Generation() uint64
	WaitChange(uint64) uint64
	InFlight() int
	Stats() Stats
	Close()
}

var (
	_ Transport = (*Medium)(nil)
	_ Transport = (*Reliable)(nil)
)

// ReliableConfig tunes the ARQ layer.
type ReliableConfig struct {
	// LossRate is the per-frame loss probability of the underlying wire
	// (applied independently to data frames and acknowledgment frames).
	LossRate float64
	// MaxDelay bounds the random wire latency per frame.
	MaxDelay time.Duration
	// RTO is the retransmission timeout (default 2*MaxDelay + 2ms).
	RTO time.Duration
	// Seed seeds the loss/delay randomness.
	Seed int64
}

// ReliableStats extends the basic counters with ARQ activity.
type ReliableStats struct {
	Stats
	// Frames counts data-frame transmission attempts (incl. retransmits).
	Frames int
	// FrameLosses counts data frames dropped by the wire.
	FrameLosses int
	// Acks counts acknowledgment transmission attempts.
	Acks int
	// AckLosses counts acknowledgments dropped by the wire.
	AckLosses int
	// Retransmits counts retransmission timeouts that re-sent a frame.
	Retransmits int
	// Duplicates counts received duplicate data frames (re-acked, dropped).
	Duplicates int
}

// chanState is the per-ordered-channel ARQ state.
type chanState struct {
	// Sender side: FIFO of messages not yet acknowledged; the head is the
	// in-flight frame (stop-and-wait).
	sendQ       []Message
	nextSeq     uint64 // sequence number of sendQ[0]
	awaitingAck bool
	// Receiver side.
	expected  uint64
	delivered []Message
}

// Reliable is a stop-and-wait ARQ transport over a lossy wire.
type Reliable struct {
	mu     sync.Mutex
	cond   *sync.Cond
	chans  map[[2]int]*chanState
	rng    *rand.Rand
	gen    uint64
	closed bool
	stats  ReliableStats
	cfg    ReliableConfig
}

// NewReliable builds the ARQ transport.
func NewReliable(cfg ReliableConfig) *Reliable {
	if cfg.RTO <= 0 {
		cfg.RTO = 2*cfg.MaxDelay + 2*time.Millisecond
	}
	r := &Reliable{
		chans: map[[2]int]*chanState{},
		rng:   rand.New(rand.NewPCG(uint64(cfg.Seed), 0x9e3779b97f4a7c15)),
		cfg:   cfg,
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *Reliable) state(from, to int) *chanState {
	key := [2]int{from, to}
	st := r.chans[key]
	if st == nil {
		st = &chanState{}
		r.chans[key] = st
	}
	return st
}

// wireDelay returns a random latency (may be zero).
func (r *Reliable) wireDelay() time.Duration {
	if r.cfg.MaxDelay <= 0 {
		return 0
	}
	return time.Duration(r.rng.Int64N(int64(r.cfg.MaxDelay)))
}

// lost flips the wire-loss coin.
func (r *Reliable) lost() bool {
	return r.cfg.LossRate > 0 && r.rng.Float64() < r.cfg.LossRate
}

// after schedules fn on the wire, respecting Close.
func (r *Reliable) after(d time.Duration, fn func()) {
	time.AfterFunc(d, func() {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		fn() // called with r.mu held
		r.cond.Broadcast()
		r.mu.Unlock()
	})
}

// Send enqueues the message for reliable in-order delivery. Never blocks.
func (r *Reliable) Send(msg Message) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Sent++
	st := r.state(msg.From, msg.To)
	st.sendQ = append(st.sendQ, msg)
	if !st.awaitingAck {
		r.transmitHead(msg.From, msg.To, st)
	}
	r.gen++
	r.cond.Broadcast()
}

// transmitHead puts the head of the send queue on the wire and arms the
// retransmission timer. Caller holds r.mu; the head must exist.
func (r *Reliable) transmitHead(from, to int, st *chanState) {
	st.awaitingAck = true
	seq := st.nextSeq
	msg := st.sendQ[0]
	r.stats.Frames++
	if r.lost() {
		r.stats.FrameLosses++
	} else {
		r.after(r.wireDelay(), func() { r.frameArrives(from, to, seq, msg) })
	}
	// Retransmission timer: if the frame is still unacknowledged when the
	// timer fires, send it again.
	r.after(r.cfg.RTO, func() {
		cur := r.state(from, to)
		if cur.awaitingAck && cur.nextSeq == seq {
			r.stats.Retransmits++
			r.retransmit(from, to, cur, seq, msg)
		}
	})
}

// retransmit re-sends a frame (r.mu held).
func (r *Reliable) retransmit(from, to int, st *chanState, seq uint64, msg Message) {
	r.stats.Frames++
	if r.lost() {
		r.stats.FrameLosses++
	} else {
		r.after(r.wireDelay(), func() { r.frameArrives(from, to, seq, msg) })
	}
	r.after(r.cfg.RTO, func() {
		cur := r.state(from, to)
		if cur.awaitingAck && cur.nextSeq == seq {
			r.stats.Retransmits++
			r.retransmit(from, to, cur, seq, msg)
		}
	})
}

// frameArrives is the receiver-side wire event (r.mu held).
func (r *Reliable) frameArrives(from, to int, seq uint64, msg Message) {
	st := r.state(from, to)
	switch {
	case seq == st.expected:
		st.expected++
		st.delivered = append(st.delivered, msg)
		r.stats.Delivered++
		r.gen++
	case seq < st.expected:
		r.stats.Duplicates++
	default:
		// Stop-and-wait never sends ahead; a future frame is impossible.
		return
	}
	// Acknowledge everything up to expected (cumulative ack).
	ackSeq := st.expected
	r.stats.Acks++
	if r.lost() {
		r.stats.AckLosses++
		return
	}
	r.after(r.wireDelay(), func() { r.ackArrives(from, to, ackSeq) })
}

// ackArrives is the sender-side wire event (r.mu held).
func (r *Reliable) ackArrives(from, to int, ackSeq uint64) {
	st := r.state(from, to)
	if !st.awaitingAck || ackSeq <= st.nextSeq {
		return // stale ack
	}
	st.nextSeq = ackSeq
	st.sendQ = st.sendQ[1:]
	st.awaitingAck = false
	if len(st.sendQ) > 0 {
		r.transmitHead(from, to, st)
	}
	r.gen++
}

// TryConsume removes the wanted message when it heads the delivered queue.
func (r *Reliable) TryConsume(want Message) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state(want.From, want.To)
	if len(st.delivered) == 0 || st.delivered[0] != want {
		return false
	}
	st.delivered = st.delivered[1:]
	r.gen++
	r.cond.Broadcast()
	return true
}

// TryConsumeCheck reports whether TryConsume would succeed.
func (r *Reliable) TryConsumeCheck(want Message) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state(want.From, want.To)
	return len(st.delivered) > 0 && st.delivered[0] == want
}

// TryConsumeFlush removes the wanted message from anywhere in the delivered
// queue, discarding everything before it (interrupt-handshake semantics).
func (r *Reliable) TryConsumeFlush(want Message) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state(want.From, want.To)
	for i, m := range st.delivered {
		if m == want {
			st.delivered = st.delivered[i+1:]
			r.stats.Flushed += i
			r.gen++
			r.cond.Broadcast()
			return true
		}
	}
	return false
}

// TryConsumeFlushCheck reports whether TryConsumeFlush would succeed.
func (r *Reliable) TryConsumeFlushCheck(want Message) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state(want.From, want.To)
	for _, m := range st.delivered {
		if m == want {
			return true
		}
	}
	return false
}

// Generation returns the change counter.
func (r *Reliable) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// WaitChange blocks while the generation equals gen and the transport is
// open.
func (r *Reliable) WaitChange(gen uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.gen == gen && !r.closed {
		r.cond.Wait()
	}
	return r.gen
}

// InFlight counts messages accepted but not yet consumed: unacknowledged
// send queues plus delivered-but-unread messages. While it is non-zero the
// system can still progress (retransmission keeps trying).
func (r *Reliable) InFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, st := range r.chans {
		n += len(st.sendQ) + len(st.delivered)
	}
	return n
}

// Stats returns the basic counters (sent/delivered/dropped). Dropped is
// always zero: the ARQ layer never loses accepted messages.
func (r *Reliable) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats.Stats
}

// ARQStats returns the extended ARQ counters.
func (r *Reliable) ARQStats() ReliableStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Close wakes all waiters and stops future wire events.
func (r *Reliable) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.cond.Broadcast()
}
