package medium

import (
	"strings"
	"testing"
	"time"

	"repro/internal/lotos"
)

func TestMediumBasicFIFO(t *testing.T) {
	m := New(Config{Seed: 1})
	defer m.Close()
	m.Send(msg(1, 2, 10))
	m.Send(msg(1, 2, 11))
	if m.InFlight() != 2 {
		t.Fatalf("in flight = %d", m.InFlight())
	}
	if m.TryConsume(msg(1, 2, 11)) {
		t.Error("out-of-order consume succeeded")
	}
	if !m.TryConsumeCheck(msg(1, 2, 10)) || !m.TryConsume(msg(1, 2, 10)) {
		t.Error("head consume failed")
	}
	if !m.TryConsume(msg(1, 2, 11)) {
		t.Error("second consume failed")
	}
	if m.TryConsume(msg(1, 2, 12)) || m.TryConsumeCheck(msg(1, 2, 12)) {
		t.Error("consume from empty channel succeeded")
	}
	st := m.Stats()
	if st.Sent != 2 || st.Delivered != 2 || st.Dropped != 0 || st.Flushed != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestMediumFlushConsume(t *testing.T) {
	m := New(Config{Seed: 2})
	defer m.Close()
	// Stale normal messages ahead of a control message.
	m.Send(msg(1, 2, 100))
	m.Send(msg(1, 2, 101))
	m.Send(msg(1, 2, 200)) // the "control" message
	m.Send(msg(1, 2, 300)) // after it
	if m.TryConsumeFlush(msg(1, 2, 999)) {
		t.Error("flush of absent message succeeded")
	}
	if !m.TryConsumeFlushCheck(msg(1, 2, 200)) {
		t.Error("flush check failed")
	}
	if !m.TryConsumeFlush(msg(1, 2, 200)) {
		t.Error("flush consume failed")
	}
	st := m.Stats()
	if st.Flushed != 2 {
		t.Errorf("flushed = %d, want 2", st.Flushed)
	}
	// The message after the control message is preserved.
	if !m.TryConsume(msg(1, 2, 300)) {
		t.Error("post-control message lost")
	}
	// The stale ones are gone.
	if m.TryConsume(msg(1, 2, 100)) || m.TryConsume(msg(1, 2, 101)) {
		t.Error("flushed messages still consumable")
	}
}

func TestMediumFlushWithDelaysRespectsVisibility(t *testing.T) {
	m := New(Config{Seed: 3, MaxDelay: 30 * time.Millisecond})
	defer m.Close()
	m.Send(msg(1, 2, 1))
	m.Send(msg(1, 2, 2))
	// Immediately after send the messages may not be visible yet; the
	// flush check must not see through invisible messages.
	deadline := time.Now().Add(time.Second)
	for !m.TryConsumeFlush(msg(1, 2, 2)) {
		if time.Now().After(deadline) {
			t.Fatal("flush never succeeded")
		}
		time.Sleep(time.Millisecond)
	}
	if m.InFlight() != 0 {
		t.Errorf("in flight = %d after flush", m.InFlight())
	}
}

func TestMediumLossCounting(t *testing.T) {
	m := New(Config{Seed: 4, LossRate: 1.0})
	defer m.Close()
	for i := 0; i < 5; i++ {
		m.Send(msg(1, 2, i))
	}
	st := m.Stats()
	if st.Sent != 5 || st.Dropped != 5 || m.InFlight() != 0 {
		t.Errorf("stats %+v inflight %d", st, m.InFlight())
	}
}

func TestMediumTickerWakesDelayedWaiters(t *testing.T) {
	m := New(Config{Seed: 5, MaxDelay: 5 * time.Millisecond})
	defer m.Close()
	m.Send(msg(1, 2, 7))
	gen := m.Generation()
	// The ticker must eventually broadcast even without further sends, so
	// a waiter polling via WaitChange+TryConsume completes.
	done := make(chan bool, 1)
	go func() {
		for !m.TryConsume(msg(1, 2, 7)) {
			gen = m.WaitChange(gen)
			if m.Closed() {
				done <- false
				return
			}
		}
		done <- true
	}()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("waiter aborted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delayed delivery never observed")
	}
}

func TestMessageHelpersAndString(t *testing.T) {
	send := lotos.SendEvent(3, 7).WithOcc("0/2")
	mg := MessageFor(1, send)
	if mg.From != 1 || mg.To != 3 || mg.Node != 7 || mg.Occ != "0/2" {
		t.Errorf("msg %+v", mg)
	}
	recv := lotos.RecvEvent(1, 7).WithOcc("0/2")
	if mg != WantedBy(3, recv) {
		t.Error("send/recv helper mismatch")
	}
	if !strings.Contains(mg.String(), "1->3") || !strings.Contains(mg.String(), "7#0/2") {
		t.Errorf("string %q", mg.String())
	}
	tagged := Message{From: 2, To: 1, Tag: "halt"}
	if !strings.Contains(tagged.String(), "halt") {
		t.Errorf("tag string %q", tagged.String())
	}
}

func TestReliableFlushConsume(t *testing.T) {
	r := NewReliable(ReliableConfig{Seed: 6})
	defer r.Close()
	r.Send(msg(1, 2, 100))
	r.Send(msg(1, 2, 200))
	r.Send(msg(1, 2, 300))
	// Wait until all three are delivered in order.
	deadline := time.Now().Add(2 * time.Second)
	for !r.TryConsumeFlushCheck(msg(1, 2, 300)) {
		if time.Now().After(deadline) {
			t.Fatal("messages not delivered")
		}
		time.Sleep(200 * time.Microsecond)
	}
	if !r.TryConsumeFlush(msg(1, 2, 200)) {
		t.Fatal("flush failed")
	}
	if got := r.ARQStats().Flushed; got != 1 {
		t.Errorf("flushed = %d, want 1", got)
	}
	if !r.TryConsume(msg(1, 2, 300)) {
		t.Error("post-flush message lost")
	}
	if r.TryConsumeFlush(msg(1, 2, 999)) || r.TryConsumeFlushCheck(msg(1, 2, 999)) {
		t.Error("flush of absent message succeeded")
	}
}

// TestTickerIdleNoWakeups pins the fix for the delay ticker busy-polling:
// on an empty medium the ticker goroutine performs at most its initial scan
// and then blocks until a send or Close, instead of waking on a fixed
// period forever.
func TestTickerIdleNoWakeups(t *testing.T) {
	m := New(Config{MaxDelay: 2 * time.Millisecond, Seed: 1})
	defer m.Close()
	// Long compared to MaxDelay: a periodic ticker would scan many times.
	time.Sleep(30 * time.Millisecond)
	if n := m.tickerScanCount(); n > 1 {
		t.Errorf("idle medium: %d ticker scans, want at most the initial one", n)
	}
}

// TestTickerWakesOnDeadline checks that a delayed message still becomes
// visible (the deadline-based ticker advances the generation) and that the
// ticker settles once everything queued has been notified.
func TestTickerWakesOnDeadline(t *testing.T) {
	m := New(Config{MaxDelay: 3 * time.Millisecond, Seed: 42})
	defer m.Close()
	gen := m.Generation()
	m.Send(msg(1, 2, 5))
	deadline := time.Now().Add(2 * time.Second)
	for !m.TryConsumeCheck(msg(1, 2, 5)) {
		if time.Now().After(deadline) {
			t.Fatal("delayed message never became visible")
		}
		gen = m.WaitChange(gen)
	}
	if !m.TryConsume(msg(1, 2, 5)) {
		t.Fatal("visible message not consumable")
	}
	// After the message is notified and consumed the medium is idle again:
	// the scan count must stop growing.
	time.Sleep(10 * time.Millisecond)
	before := m.tickerScanCount()
	time.Sleep(20 * time.Millisecond)
	if after := m.tickerScanCount(); after != before {
		t.Errorf("idle-after-delivery medium kept scanning: %d -> %d", before, after)
	}
}

// TestTickerExitsOnClose checks the ticker goroutine terminates when the
// medium closes (scan count stops advancing even with a message pending).
func TestTickerExitsOnClose(t *testing.T) {
	m := New(Config{MaxDelay: time.Hour, Seed: 7})
	m.Send(msg(1, 2, 9)) // far-future deadline keeps a naive ticker alive
	m.Close()
	time.Sleep(5 * time.Millisecond)
	before := m.tickerScanCount()
	time.Sleep(20 * time.Millisecond)
	if after := m.tickerScanCount(); after != before {
		t.Errorf("ticker still scanning after Close: %d -> %d", before, after)
	}
}
