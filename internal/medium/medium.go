// Package medium implements the underlying communication medium of the
// paper's protocol architecture (Section 1 and Section 5.2) for the
// concurrent runtime: one FIFO channel from every entity i to every other
// entity j. The reliable medium does not lose, duplicate or reorder
// messages, and delivers each message after an arbitrary (bounded, random)
// delay.
//
// Beyond the paper's reliable medium, the package supports fault injection
// (message loss) used by the Section-6 discussion of error-recoverable
// protocols: the derived protocols assume reliability, and the experiments
// show how they stall when that assumption is broken.
package medium

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/lotos"
)

// Message is one synchronization message in transit. From/To are entity
// places; the payload mirrors the message identification of the derived
// specifications: either a node number plus occurrence, or a symbolic tag.
type Message struct {
	From, To int
	Node     int
	Occ      string
	Tag      string
}

// MessageFor builds the message a send event of the given entity emits.
func MessageFor(self int, ev lotos.Event) Message {
	return Message{From: self, To: ev.Place, Node: ev.Node, Occ: ev.Occ, Tag: ev.Tag}
}

// WantedBy builds the message a receive event of the given entity expects.
func WantedBy(self int, ev lotos.Event) Message {
	return Message{From: ev.Place, To: self, Node: ev.Node, Occ: ev.Occ, Tag: ev.Tag}
}

// String renders the message for diagnostics.
func (m Message) String() string {
	if m.Tag != "" {
		return fmt.Sprintf("%d->%d:%s", m.From, m.To, m.Tag)
	}
	return fmt.Sprintf("%d->%d:%d#%s", m.From, m.To, m.Node, m.Occ)
}

// Config tunes the medium.
type Config struct {
	// MaxDelay bounds the random delivery delay per message. Zero delivers
	// immediately (interleaving nondeterminism still comes from goroutine
	// scheduling and the runners' random choices).
	MaxDelay time.Duration
	// LossRate is the probability in [0,1) that a message is silently
	// dropped — fault injection beyond the paper's reliable medium.
	LossRate float64
	// DupRate is the probability in [0,1) that a delivered message is
	// enqueued twice (adjacent duplicate), mirroring the compose-side
	// FaultModel.Duplication in the runtime simulation.
	DupRate float64
	// ReorderRate is the probability in [0,1) that a newly sent message is
	// swapped with its channel predecessor (adjacent reordering, the
	// minimal FIFO violation), mirroring FaultModel.Reorder.
	ReorderRate float64
	// Seed seeds the medium's random source (delays, losses, duplicates,
	// reorderings).
	Seed int64
}

// Stats counts medium activity.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int
	// Flushed counts messages discarded by flushing receives (interrupt
	// handshake control messages drain their channel).
	Flushed int
	// Duplicated counts extra copies enqueued by duplication faults.
	Duplicated int
	// Reordered counts adjacent swaps applied by reordering faults.
	Reordered int
}

// queued is a message with its earliest visible time.
type queued struct {
	msg     Message
	visible time.Time
	// notified records that the ticker already broadcast this message's
	// visibility, so passing the same deadline never wakes waiters twice.
	notified bool
}

// Medium is a concurrent reliable-FIFO medium. All methods are safe for
// concurrent use.
type Medium struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[[2]int][]queued
	rng    *rand.Rand
	// lastVisible keeps per-channel delivery times monotone so random
	// delays can never reorder one channel's messages (FIFO).
	lastVisible map[[2]int]time.Time
	gen         uint64
	closed      bool
	stats       Stats
	cfg         Config
	// wake nudges the ticker goroutine: a new message may have changed the
	// earliest delivery deadline, or the medium closed. Buffered so signals
	// coalesce and senders never block.
	wake chan struct{}
	// tickerScans counts ticker loop iterations (test instrumentation for
	// the no-busy-poll guarantee).
	tickerScans int
}

// New builds a medium.
func New(cfg Config) *Medium {
	m := &Medium{
		queues:      map[[2]int][]queued{},
		lastVisible: map[[2]int]time.Time{},
		rng:         rand.New(rand.NewPCG(uint64(cfg.Seed), 0x9e3779b97f4a7c15)),
		cfg:         cfg,
		wake:        make(chan struct{}, 1),
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.MaxDelay > 0 {
		go m.ticker()
	}
	return m
}

// signalTicker nudges the ticker without blocking; signals coalesce.
func (m *Medium) signalTicker() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// ticker wakes waiters exactly when a delayed message's visible deadline
// passes: the passage of that deadline is a state change (the message has
// become consumable), so the generation advances and WaitChange returns.
// While no delayed message is pending the goroutine blocks on the wake
// channel — an idle medium causes no wakeups at all — and it exits when the
// medium closes.
func (m *Medium) ticker() {
	for {
		m.mu.Lock()
		m.tickerScans++
		if m.closed {
			m.mu.Unlock()
			return
		}
		now := time.Now()
		changed := false
		var next time.Time
		pending := false
		for _, q := range m.queues {
			for i := range q {
				e := &q[i]
				if e.visible.After(now) {
					if !pending || e.visible.Before(next) {
						next, pending = e.visible, true
					}
				} else if !e.notified {
					e.notified = true
					changed = true
				}
			}
		}
		if changed {
			m.gen++
			m.cond.Broadcast()
		}
		m.mu.Unlock()
		if !pending {
			// Idle: every queued message (if any) is already visible and
			// notified. Sleep until a send or Close changes the picture.
			<-m.wake
			continue
		}
		t := time.NewTimer(time.Until(next))
		select {
		case <-m.wake:
			// A new message (possibly with an earlier deadline) arrived,
			// or the medium closed: recompute under the mutex.
			t.Stop()
		case <-t.C:
		}
	}
}

// tickerScanCount returns the number of ticker wakeups so far (tests).
func (m *Medium) tickerScanCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tickerScans
}

// Send enqueues a message (or drops it, per LossRate). It never blocks:
// runtime channels are unbounded, as in the service architecture of
// Section 1.
func (m *Medium) Send(msg Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Sent++
	if m.cfg.LossRate > 0 && m.rng.Float64() < m.cfg.LossRate {
		m.stats.Dropped++
		m.gen++
		m.cond.Broadcast()
		return
	}
	visible := time.Now()
	if m.cfg.MaxDelay > 0 {
		visible = visible.Add(time.Duration(m.rng.Int64N(int64(m.cfg.MaxDelay))))
		key := [2]int{msg.From, msg.To}
		if last := m.lastVisible[key]; visible.Before(last) {
			visible = last
		}
		m.lastVisible[key] = visible
	}
	key := [2]int{msg.From, msg.To}
	// Messages visible on arrival need no further ticker notification.
	m.queues[key] = append(m.queues[key], queued{msg: msg, visible: visible, notified: !visible.After(time.Now())})
	if m.cfg.DupRate > 0 && m.rng.Float64() < m.cfg.DupRate {
		// Adjacent duplicate: same visibility, queued right behind the
		// original.
		m.queues[key] = append(m.queues[key], queued{msg: msg, visible: visible, notified: !visible.After(time.Now())})
		m.stats.Duplicated++
	}
	if m.cfg.ReorderRate > 0 && m.rng.Float64() < m.cfg.ReorderRate {
		// Adjacent reordering: swap the message contents of the last two
		// queue entries (visible times stay in place, so per-channel
		// delivery times remain monotone).
		if q := m.queues[key]; len(q) >= 2 && q[len(q)-1].msg != q[len(q)-2].msg {
			q[len(q)-1].msg, q[len(q)-2].msg = q[len(q)-2].msg, q[len(q)-1].msg
			m.stats.Reordered++
		}
	}
	m.gen++
	m.cond.Broadcast()
	if m.cfg.MaxDelay > 0 {
		m.signalTicker()
	}
}

// DropAt deterministically removes the message at the given queue position
// of channel from->to (a targeted loss fault, used by counterexample
// replay). Reports whether the position existed.
func (m *Medium) DropAt(from, to, index int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := [2]int{from, to}
	q := m.queues[key]
	if index < 0 || index >= len(q) {
		return false
	}
	m.queues[key] = append(q[:index:index], q[index+1:]...)
	m.stats.Dropped++
	m.gen++
	m.cond.Broadcast()
	return true
}

// DuplicateAt deterministically inserts an adjacent copy of the message at
// the given queue position of channel from->to (a targeted duplication
// fault, used by counterexample replay). The copy inherits the original's
// visibility. Reports whether the position existed.
func (m *Medium) DuplicateAt(from, to, index int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := [2]int{from, to}
	q := m.queues[key]
	if index < 0 || index >= len(q) {
		return false
	}
	nq := make([]queued, 0, len(q)+1)
	nq = append(nq, q[:index+1]...)
	nq = append(nq, q[index])
	nq = append(nq, q[index+1:]...)
	m.queues[key] = nq
	m.stats.Duplicated++
	m.gen++
	m.cond.Broadcast()
	return true
}

// SwapAt deterministically swaps the message contents of queue positions
// index and index+1 of channel from->to (a targeted adjacent-reordering
// fault, used by counterexample replay). Visible times stay in place, so
// delivery times remain monotone. Reports whether both positions existed.
func (m *Medium) SwapAt(from, to, index int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.queues[[2]int{from, to}]
	if index < 0 || index+1 >= len(q) {
		return false
	}
	q[index].msg, q[index+1].msg = q[index+1].msg, q[index].msg
	m.stats.Reordered++
	m.gen++
	m.cond.Broadcast()
	return true
}

// TryConsume removes and returns true when the wanted message is at the
// (visible) head of its channel.
func (m *Medium) TryConsume(want Message) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := [2]int{want.From, want.To}
	q := m.queues[key]
	if len(q) == 0 {
		return false
	}
	head := q[0]
	if m.cfg.MaxDelay > 0 && time.Now().Before(head.visible) {
		return false
	}
	if head.msg != want {
		return false
	}
	m.queues[key] = q[1:]
	m.stats.Delivered++
	m.gen++
	m.cond.Broadcast()
	return true
}

// TryConsumeFlush removes the wanted message from anywhere in its channel,
// discarding every (visible) message queued before it — the receive
// semantics of interrupt-handshake control messages (see
// core.FlushingMsgID). Returns false when the message is not yet visible.
func (m *Medium) TryConsumeFlush(want Message) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := [2]int{want.From, want.To}
	q := m.queues[key]
	now := time.Now()
	for i, entry := range q {
		if m.cfg.MaxDelay > 0 && now.Before(entry.visible) {
			return false // not yet visible (nor is anything after it)
		}
		if entry.msg == want {
			m.queues[key] = q[i+1:]
			m.stats.Delivered++
			m.stats.Flushed += i
			m.gen++
			m.cond.Broadcast()
			return true
		}
	}
	return false
}

// TryConsumeFlushCheck reports whether TryConsumeFlush(want) would succeed.
func (m *Medium) TryConsumeFlushCheck(want Message) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.queues[[2]int{want.From, want.To}]
	now := time.Now()
	for _, entry := range q {
		if m.cfg.MaxDelay > 0 && now.Before(entry.visible) {
			return false
		}
		if entry.msg == want {
			return true
		}
	}
	return false
}

// TryConsumeCheck reports whether TryConsume(want) would currently succeed,
// without consuming anything.
func (m *Medium) TryConsumeCheck(want Message) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := [2]int{want.From, want.To}
	q := m.queues[key]
	if len(q) == 0 {
		return false
	}
	head := q[0]
	if m.cfg.MaxDelay > 0 && time.Now().Before(head.visible) {
		return false
	}
	return head.msg == want
}

// Generation returns a counter that increases on every state change; pair
// it with WaitChange to block until something happens.
func (m *Medium) Generation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// WaitChange blocks while the medium's generation equals gen and the medium
// is open; it returns the current generation. Closing the medium wakes all
// waiters.
func (m *Medium) WaitChange(gen uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.gen == gen && !m.closed {
		m.cond.Wait()
	}
	return m.gen
}

// InFlight returns the number of queued (undelivered) messages.
func (m *Medium) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, q := range m.queues {
		n += len(q)
	}
	return n
}

// Pending returns the messages currently queued on the channel from->to,
// oldest first (diagnostics).
func (m *Medium) Pending(from, to int) []Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.queues[[2]int{from, to}]
	out := make([]Message, len(q))
	for i, e := range q {
		out[i] = e.msg
	}
	return out
}

// Stats returns a snapshot of the medium counters.
func (m *Medium) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Close wakes all waiters and stops the delay ticker. Further Sends are
// still accepted (and counted) but no one may be listening.
func (m *Medium) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
	m.signalTicker()
}

// Closed reports whether Close was called.
func (m *Medium) Closed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}
