package medium

import (
	"testing"
	"time"
)

func msg(from, to, node int) Message {
	return Message{From: from, To: to, Node: node, Occ: "0"}
}

// consumeEventually polls until the message can be consumed or the deadline
// passes.
func consumeEventually(t *testing.T, tr Transport, want Message, d time.Duration) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if tr.TryConsume(want) {
			return true
		}
		time.Sleep(200 * time.Microsecond)
	}
	return false
}

func TestReliableDeliversInOrderWithoutLoss(t *testing.T) {
	r := NewReliable(ReliableConfig{Seed: 1})
	defer r.Close()
	r.Send(msg(1, 2, 10))
	r.Send(msg(1, 2, 11))
	r.Send(msg(1, 2, 12))
	// Strict FIFO: 11 before 10 must fail even after delivery.
	if consumeEventually(t, r, msg(1, 2, 11), 20*time.Millisecond) {
		t.Fatal("out-of-order consume succeeded")
	}
	for _, n := range []int{10, 11, 12} {
		if !consumeEventually(t, r, msg(1, 2, n), time.Second) {
			t.Fatalf("message %d never delivered", n)
		}
	}
	st := r.ARQStats()
	if st.Delivered != 3 || st.Dropped != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestReliableSurvivesHeavyLoss(t *testing.T) {
	r := NewReliable(ReliableConfig{Seed: 7, LossRate: 0.5, RTO: time.Millisecond})
	defer r.Close()
	const k = 20
	for i := 0; i < k; i++ {
		r.Send(msg(1, 2, 100+i))
	}
	for i := 0; i < k; i++ {
		if !consumeEventually(t, r, msg(1, 2, 100+i), 5*time.Second) {
			t.Fatalf("message %d lost despite ARQ", 100+i)
		}
	}
	st := r.ARQStats()
	if st.Delivered != k {
		t.Errorf("delivered %d, want %d", st.Delivered, k)
	}
	if st.Retransmits == 0 || st.FrameLosses == 0 {
		t.Errorf("expected loss and retransmission activity: %+v", st)
	}
	if st.Frames <= k {
		t.Errorf("frames %d should exceed messages %d under 50%% loss", st.Frames, k)
	}
}

func TestReliableWithDelaysAndAckLoss(t *testing.T) {
	r := NewReliable(ReliableConfig{
		Seed:     3,
		LossRate: 0.3,
		MaxDelay: time.Millisecond,
		RTO:      2 * time.Millisecond,
	})
	defer r.Close()
	// Interleave two channels.
	for i := 0; i < 8; i++ {
		r.Send(msg(1, 2, i))
		r.Send(msg(2, 1, 50+i))
	}
	for i := 0; i < 8; i++ {
		if !consumeEventually(t, r, msg(1, 2, i), 5*time.Second) {
			t.Fatalf("1->2 message %d lost", i)
		}
		if !consumeEventually(t, r, msg(2, 1, 50+i), 5*time.Second) {
			t.Fatalf("2->1 message %d lost", 50+i)
		}
	}
	st := r.ARQStats()
	if st.Duplicates == 0 && st.AckLosses > 0 {
		t.Logf("note: ack losses (%d) without observed duplicates", st.AckLosses)
	}
}

func TestReliableInFlightAndGeneration(t *testing.T) {
	r := NewReliable(ReliableConfig{Seed: 2})
	defer r.Close()
	gen := r.Generation()
	r.Send(msg(1, 2, 1))
	if r.Generation() == gen {
		t.Error("send must bump generation")
	}
	if r.InFlight() == 0 {
		t.Error("message must be in flight")
	}
	if !consumeEventually(t, r, msg(1, 2, 1), time.Second) {
		t.Fatal("not delivered")
	}
	// Wait for the ack to drain the send queue.
	deadline := time.Now().Add(time.Second)
	for r.InFlight() != 0 && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
	if r.InFlight() != 0 {
		t.Errorf("in flight = %d after delivery+ack", r.InFlight())
	}
}

func TestReliableWaitChangeWakesOnClose(t *testing.T) {
	r := NewReliable(ReliableConfig{Seed: 4})
	gen := r.Generation()
	done := make(chan struct{})
	go func() {
		r.WaitChange(gen)
		close(done)
	}()
	time.Sleep(time.Millisecond)
	r.Close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("WaitChange did not wake on Close")
	}
}

func TestReliableTryConsumeCheckDoesNotConsume(t *testing.T) {
	r := NewReliable(ReliableConfig{Seed: 5})
	defer r.Close()
	r.Send(msg(1, 2, 9))
	deadline := time.Now().Add(time.Second)
	for !r.TryConsumeCheck(msg(1, 2, 9)) {
		if time.Now().After(deadline) {
			t.Fatal("never delivered")
		}
		time.Sleep(200 * time.Microsecond)
	}
	// Check twice: peeking must not consume.
	if !r.TryConsumeCheck(msg(1, 2, 9)) || !r.TryConsume(msg(1, 2, 9)) {
		t.Fatal("peek consumed the message")
	}
}

func TestBareMediumLossVsReliable(t *testing.T) {
	// The same lossy wire: the bare medium loses messages for good, the
	// ARQ layer does not.
	bare := New(Config{Seed: 11, LossRate: 0.5})
	defer bare.Close()
	for i := 0; i < 20; i++ {
		bare.Send(msg(1, 2, i))
	}
	if bare.Stats().Dropped == 0 {
		t.Error("bare medium should drop under 50% loss")
	}
	arq := NewReliable(ReliableConfig{Seed: 11, LossRate: 0.5, RTO: time.Millisecond})
	defer arq.Close()
	for i := 0; i < 20; i++ {
		arq.Send(msg(1, 2, i))
	}
	for i := 0; i < 20; i++ {
		if !consumeEventually(t, arq, msg(1, 2, i), 5*time.Second) {
			t.Fatalf("ARQ lost message %d", i)
		}
	}
	if arq.Stats().Dropped != 0 {
		t.Error("ARQ layer must never report drops")
	}
}

func TestMediumPendingDiagnostics(t *testing.T) {
	m := New(Config{Seed: 1})
	defer m.Close()
	m.Send(msg(1, 2, 5))
	m.Send(msg(1, 2, 6))
	got := m.Pending(1, 2)
	if len(got) != 2 || got[0].Node != 5 || got[1].Node != 6 {
		t.Errorf("pending %v", got)
	}
	if m.Closed() {
		t.Error("not closed yet")
	}
	m.Close()
	if !m.Closed() {
		t.Error("closed flag")
	}
}

func TestMediumWaitChange(t *testing.T) {
	m := New(Config{Seed: 1})
	defer m.Close()
	gen := m.Generation()
	go func() {
		time.Sleep(time.Millisecond)
		m.Send(msg(1, 2, 1))
	}()
	next := m.WaitChange(gen)
	if next == gen {
		t.Error("generation did not advance")
	}
}
