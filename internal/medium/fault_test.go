package medium

import "testing"

func TestMediumSeededDuplication(t *testing.T) {
	m := New(Config{Seed: 11, DupRate: 1.0})
	defer m.Close()
	m.Send(msg(1, 2, 10))
	if got := m.InFlight(); got != 2 {
		t.Fatalf("in flight = %d after dup-always send, want 2", got)
	}
	// Both copies are the same message and deliver in order.
	if !m.TryConsume(msg(1, 2, 10)) || !m.TryConsume(msg(1, 2, 10)) {
		t.Error("duplicate copies not consumable in order")
	}
	st := m.Stats()
	if st.Sent != 1 || st.Duplicated != 1 || st.Delivered != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestMediumSeededReordering(t *testing.T) {
	m := New(Config{Seed: 12, ReorderRate: 1.0})
	defer m.Close()
	m.Send(msg(1, 2, 10))
	m.Send(msg(1, 2, 11))
	// The second send swaps with its predecessor: 11 is now at the head.
	if !m.TryConsume(msg(1, 2, 11)) {
		t.Errorf("expected reordered head 11, pending %v", m.Pending(1, 2))
	}
	if !m.TryConsume(msg(1, 2, 10)) {
		t.Error("original message lost after reorder")
	}
	if st := m.Stats(); st.Reordered != 1 {
		t.Errorf("reordered = %d, want 1", st.Reordered)
	}
}

func TestMediumReorderingSkipsIdenticalAdjacent(t *testing.T) {
	m := New(Config{Seed: 13, ReorderRate: 1.0})
	defer m.Close()
	// Two identical messages: a swap would be a no-op, so it is not counted.
	m.Send(msg(1, 2, 10))
	m.Send(msg(1, 2, 10))
	if st := m.Stats(); st.Reordered != 0 {
		t.Errorf("reordered = %d for identical adjacent messages, want 0", st.Reordered)
	}
	// A lone first message has no predecessor to swap with either.
	m2 := New(Config{Seed: 13, ReorderRate: 1.0})
	defer m2.Close()
	m2.Send(msg(1, 2, 10))
	if st := m2.Stats(); st.Reordered != 0 {
		t.Errorf("reordered = %d for a single message, want 0", st.Reordered)
	}
}

func TestMediumDropAt(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	m.Send(msg(1, 2, 10))
	m.Send(msg(1, 2, 11))
	m.Send(msg(1, 2, 12))
	if m.DropAt(1, 2, 3) || m.DropAt(1, 2, -1) || m.DropAt(2, 1, 0) {
		t.Error("DropAt accepted an out-of-range position")
	}
	if !m.DropAt(1, 2, 1) {
		t.Fatal("DropAt(1) failed")
	}
	// 11 is gone; FIFO order of the survivors is preserved.
	if !m.TryConsume(msg(1, 2, 10)) || !m.TryConsume(msg(1, 2, 12)) {
		t.Errorf("survivors not consumable in order, pending %v", m.Pending(1, 2))
	}
	if st := m.Stats(); st.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", st.Dropped)
	}
}

func TestMediumDuplicateAt(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	m.Send(msg(1, 2, 10))
	m.Send(msg(1, 2, 11))
	if m.DuplicateAt(1, 2, 2) || m.DuplicateAt(1, 2, -1) {
		t.Error("DuplicateAt accepted an out-of-range position")
	}
	if !m.DuplicateAt(1, 2, 0) {
		t.Fatal("DuplicateAt(0) failed")
	}
	// The copy sits adjacent to the original: 10, 10, 11.
	want := []int{10, 10, 11}
	got := m.Pending(1, 2)
	if len(got) != len(want) {
		t.Fatalf("pending %v, want nodes %v", got, want)
	}
	for i, g := range got {
		if g.Node != want[i] {
			t.Fatalf("pending %v, want nodes %v", got, want)
		}
	}
	if st := m.Stats(); st.Duplicated != 1 {
		t.Errorf("duplicated = %d, want 1", st.Duplicated)
	}
}

func TestMediumSwapAt(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	m.Send(msg(1, 2, 10))
	m.Send(msg(1, 2, 11))
	m.Send(msg(1, 2, 12))
	if m.SwapAt(1, 2, 2) || m.SwapAt(1, 2, -1) {
		t.Error("SwapAt accepted a position without an adjacent pair")
	}
	if !m.SwapAt(1, 2, 1) {
		t.Fatal("SwapAt(1) failed")
	}
	// 10, 12, 11 now.
	for i, wantNode := range []int{10, 12, 11} {
		if got := m.Pending(1, 2); got[i].Node != wantNode {
			t.Fatalf("pending %v, want order 10,12,11", got)
		}
	}
	if st := m.Stats(); st.Reordered != 1 {
		t.Errorf("reordered = %d, want 1", st.Reordered)
	}
	// Targeted fault ops fire change notifications so blocked runners rescan.
	gen := m.Generation()
	m.SwapAt(1, 2, 0)
	if m.Generation() == gen {
		t.Error("SwapAt did not advance the generation counter")
	}
}
