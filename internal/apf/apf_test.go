package apf

import (
	"errors"
	"testing"

	"repro/internal/attr"
	"repro/internal/equiv"
	"repro/internal/lotos"
	"repro/internal/lts"
)

func envFor(t *testing.T, sp *lotos.Spec) *lts.Env {
	t.Helper()
	env, err := lts.EnvFor(sp)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestTransformLeavesAPFAlone(t *testing.T) {
	sp := lotos.MustParse("SPEC a1; b1; exit [> d1; exit [] e1; exit ENDSPEC")
	changed, err := TransformSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("already-APF spec must not change")
	}
}

func TestTransformParallelRHS(t *testing.T) {
	sp := lotos.MustParse("SPEC a1; b1; exit [> (c1; exit ||| d1; exit) ENDSPEC")
	orig := lotos.CloneSpec(sp)
	changed, err := TransformSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("expected transformation")
	}
	dis := sp.Root.Expr.(*lotos.Disable)
	if !attr.InActionPrefixForm(dis.R) {
		t.Fatalf("RHS not in APF: %s", lotos.Format(dis.R))
	}
	// Expansion preserves observational behaviour: compare with original.
	lotos.Number(sp)
	lotos.Number(orig)
	g1, err := lts.ExploreSpec(orig, lts.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := lts.ExploreSpec(sp, lts.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !equiv.WeakBisimilar(g1, g2) {
		t.Error("transformed spec not weakly bisimilar to original")
	}
}

func TestTransformNestedAndInProcs(t *testing.T) {
	src := `
SPEC A WHERE
  PROC A = a1; b1; exit [> (c1; exit ||| d1; exit) END
ENDSPEC`
	sp := lotos.MustParse(src)
	changed, err := TransformSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("expected transformation inside process body")
	}
	dis := sp.Root.Procs[0].Body.Expr.(*lotos.Disable)
	if !attr.InActionPrefixForm(dis.R) {
		t.Fatalf("RHS not APF: %s", lotos.Format(dis.R))
	}
}

func TestTransformEnableRHS(t *testing.T) {
	// (c1;exit >> d1;exit) has initial action c1 and is expandable.
	sp := lotos.MustParse("SPEC a1; exit [> (c1; exit >> d1; exit) ENDSPEC")
	changed, err := TransformSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("expected transformation")
	}
	dis := sp.Root.Expr.(*lotos.Disable)
	pfx, ok := dis.R.(*lotos.Prefix)
	if !ok {
		t.Fatalf("RHS is %T", dis.R)
	}
	if pfx.Ev.String() != "c1" {
		t.Errorf("first event %s", pfx.Ev)
	}
}

func TestTransformErrors(t *testing.T) {
	cases := []struct {
		src  string
		want error
	}{
		{"SPEC a1; exit [> (exit >> c1; exit) ENDSPEC", ErrInitialInternal},
		{"SPEC a1; exit [> (exit ||| exit) ENDSPEC", ErrInitialTermination},
		{"SPEC a1; exit [> (stop ||| stop) ENDSPEC", ErrNoInitialAction},
	}
	for _, c := range cases {
		sp := lotos.MustParse(c.src)
		_, err := TransformSpec(sp)
		if !errors.Is(err, c.want) {
			t.Errorf("TransformSpec(%q): err = %v, want %v", c.src, err, c.want)
		}
	}
}

func TestExpandChoiceOfParallels(t *testing.T) {
	sp := lotos.MustParse("SPEC exit ENDSPEC")
	env := envFor(t, sp)
	e := lotos.MustParseExpr("(a1; exit ||| b2; c3; exit)")
	out, err := Expand(env, e)
	if err != nil {
		t.Fatal(err)
	}
	if !attr.InActionPrefixForm(out) {
		t.Fatalf("not APF: %s", lotos.Format(out))
	}
	// Expansion: a1;(exit ||| b2;c3;exit) [] b2;(a1;exit ||| c3;exit).
	ch, ok := out.(*lotos.Choice)
	if !ok {
		t.Fatalf("got %T", out)
	}
	l := ch.L.(*lotos.Prefix)
	r := ch.R.(*lotos.Prefix)
	if l.Ev.String() != "a1" || r.Ev.String() != "b2" {
		t.Errorf("events %s %s", l.Ev, r.Ev)
	}
}

func TestExpandClonesSuccessors(t *testing.T) {
	// (a1;exit ||| a1;c3;exit): both alternatives reference parts of the
	// original tree; Expand must clone so no node is shared.
	sp := lotos.MustParse("SPEC exit ENDSPEC")
	env := envFor(t, sp)
	e := lotos.MustParseExpr("(a1; exit ||| a1; c3; exit)")
	out, err := Expand(env, e)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[lotos.Expr]bool{}
	dup := false
	lotos.Walk(out, func(n lotos.Expr) {
		if seen[n] {
			dup = true
		}
		seen[n] = true
	})
	if dup {
		t.Error("expanded tree shares nodes between alternatives")
	}
}

func TestExpandPreservesBisimilarity(t *testing.T) {
	exprs := []string{
		"(a1; exit ||| b2; exit)",
		"(a1; b1; exit ||| a1; c1; exit)",
		"(a1; exit [] b2; exit) |[a1]| a1; exit",
		"(a1; exit >> b2; exit) ||| c3; exit",
	}
	sp := lotos.MustParse("SPEC exit ENDSPEC")
	env := envFor(t, sp)
	for _, src := range exprs {
		e := lotos.MustParseExpr(src)
		out, err := Expand(env, lotos.Clone(e))
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		g1, err := lts.Explore(env, e, lts.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		g2, err := lts.Explore(env, out, lts.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if !equiv.WeakBisimilar(g1, g2) {
			t.Errorf("%s: expansion changed behaviour\n  got: %s", src, lotos.Format(out))
		}
	}
}
