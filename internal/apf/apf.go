// Package apf implements the action-prefix-form transformation the paper
// requires before derivation (Section 2, extension rules 9.1-9.4): the
// right-hand side of every disabling operator "[>" must be a choice of
// event-prefixed sequences,
//
//	Dis = [] (Event_Id_i ; Seq_i)   for i = 1..n.
//
// "Using expansion theorems every finitely branching expression can be
// written in action prefix form" — this package applies exactly that: the
// initial transitions of the right-hand side are derived with the
// operational semantics (internal/lts, expansion theorems T1-T3 of Annex A)
// and reassembled as a prefix-choice expression. The result is strongly
// bisimilar to the original by the expansion theorem, which the tests check.
package apf

import (
	"errors"
	"fmt"

	"repro/internal/lotos"
	"repro/internal/lts"
)

// ErrInitialInternal is reported when a disabling right-hand side can start
// with an internal action, which cannot be written in the paper's action
// prefix form (rule 9.4 requires an Event_Id).
var ErrInitialInternal = errors.New("apf: disabling expression has an initial internal action")

// ErrInitialTermination is reported when a disabling right-hand side can
// terminate immediately (initial δ), which has no action-prefix form.
var ErrInitialTermination = errors.New("apf: disabling expression can terminate immediately")

// ErrNoInitialAction is reported when a disabling right-hand side offers no
// action at all (equivalent to stop), so no interruption could ever occur.
var ErrNoInitialAction = errors.New("apf: disabling expression offers no initial action")

// TransformSpec rewrites, in place, the right-hand side of every disabling
// operator in the specification into action prefix form. It returns whether
// anything changed. Specifications whose disabling parts are already in
// action prefix form are returned unchanged.
//
// Note: the transformation introduces cloned subtrees; callers must
// renumber the specification (lotos.Number or attr.Analyze) afterwards.
func TransformSpec(sp *lotos.Spec) (bool, error) {
	res, err := lotos.Resolve(sp)
	if err != nil {
		return false, err
	}
	env := lts.NewEnv(res)
	changed := false
	var transformBlock func(blk *lotos.DefBlock) error
	transformBlock = func(blk *lotos.DefBlock) error {
		e, c, err := transform(env, blk.Expr)
		if err != nil {
			return err
		}
		blk.Expr = e
		changed = changed || c
		for _, pd := range blk.Procs {
			if err := transformBlock(pd.Body); err != nil {
				return fmt.Errorf("in process %s: %w", pd.Name, err)
			}
		}
		return nil
	}
	if err := transformBlock(sp.Root); err != nil {
		return false, err
	}
	return changed, nil
}

// transform rewrites e bottom-up, expanding disabling right-hand sides.
func transform(env *lts.Env, e lotos.Expr) (lotos.Expr, bool, error) {
	switch x := e.(type) {
	case *lotos.Prefix:
		c, ch, err := transform(env, x.Cont)
		if err != nil {
			return nil, false, err
		}
		x.Cont = c
		return x, ch, nil
	case *lotos.Choice:
		return transformBinary(env, x, &x.L, &x.R)
	case *lotos.Parallel:
		return transformBinary(env, x, &x.L, &x.R)
	case *lotos.Enable:
		return transformBinary(env, x, &x.L, &x.R)
	case *lotos.Hide:
		b, ch, err := transform(env, x.Body)
		if err != nil {
			return nil, false, err
		}
		x.Body = b
		return x, ch, nil
	case *lotos.Disable:
		l, chL, err := transform(env, x.L)
		if err != nil {
			return nil, false, err
		}
		x.L = l
		r, chR, err := transform(env, x.R)
		if err != nil {
			return nil, false, err
		}
		if isAPF(r) {
			x.R = r
			return x, chL || chR, nil
		}
		expanded, err := Expand(env, r)
		if err != nil {
			return nil, false, err
		}
		x.R = expanded
		return x, true, nil
	default:
		return e, false, nil
	}
}

func transformBinary(env *lts.Env, node lotos.Expr, l, r *lotos.Expr) (lotos.Expr, bool, error) {
	nl, chL, err := transform(env, *l)
	if err != nil {
		return nil, false, err
	}
	*l = nl
	nr, chR, err := transform(env, *r)
	if err != nil {
		return nil, false, err
	}
	*r = nr
	return node, chL || chR, nil
}

// isAPF reports whether e is already a choice of prefixes.
func isAPF(e lotos.Expr) bool {
	switch x := e.(type) {
	case *lotos.Prefix:
		return true
	case *lotos.Choice:
		return isAPF(x.L) && isAPF(x.R)
	default:
		return false
	}
}

// Expand rewrites e into action prefix form using one step of the expansion
// theorem: e = [] { a_i ; B_i } where e --a_i--> B_i are the initial
// transitions of e. Successor trees are cloned so the result shares no
// nodes with other alternatives (callers renumber before deriving).
//
// Expansion fails for expressions with initial internal actions or initial
// successful termination (no action-prefix form exists), and for
// expressions offering no action at all.
func Expand(env *lts.Env, e lotos.Expr) (lotos.Expr, error) {
	ts, err := env.Transitions(e)
	if err != nil {
		return nil, err
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoInitialAction, lotos.Format(e))
	}
	var alts []lotos.Expr
	for _, t := range ts {
		switch t.Label.Kind {
		case lts.LInternal:
			return nil, fmt.Errorf("%w: %s", ErrInitialInternal, lotos.Format(e))
		case lts.LDelta:
			return nil, fmt.Errorf("%w: %s", ErrInitialTermination, lotos.Format(e))
		default:
			alts = append(alts, lotos.Pfx(t.Label.Ev, lotos.Clone(t.To)))
		}
	}
	return lotos.ChoiceOf(alts...), nil
}
