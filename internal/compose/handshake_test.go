package compose

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/equiv"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// dataPhaseSrc is the paper's archetypal disabling use case ("for instance,
// for the disconnecting the data transfer phase of a communication
// protocol"): a non-terminating transfer loop disabled by a disconnect.
// Because the normal part cannot terminate, the paper's shortcoming (i) is
// irrelevant and R2/R3 are vacuous.
const dataPhaseSrc = `
SPEC D [> d2; c1; exit WHERE
  PROC D = a1; b2; D END
ENDSPEC`

func deriveMode(t *testing.T, src string, mode core.InterruptMode) *core.Derivation {
	t.Helper()
	d, err := core.Derive(lotos.MustParse(src), core.Options{Interrupt: mode})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestE14_HandshakeIsTraceFaithful validates the paper's claim for the
// Section 3.3 "alternative implementation": with the request/acknowledge
// handshake, the composed system is trace-equivalent to the LOTOS service —
// no normal-part event can occur after the disabling event.
func TestE14_HandshakeIsTraceFaithful(t *testing.T) {
	// Channel capacity 4: the handshake's ack may need to enter a channel
	// still holding the (structurally bounded) backlog of stale normal-part
	// messages; smaller capacities block the SEND — a bounded-model
	// artifact, since the paper's channels are unbounded.
	d := deriveMode(t, dataPhaseSrc, core.InterruptHandshake)
	rep, err := Verify(d.Service.Spec, d.Entities, VerifyOptions{ObsDepth: 6, MaxStates: 200000, ChannelCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TracesEqual {
		t.Errorf("handshake mode not trace-faithful:\n%s", rep.Summary())
	}
	if rep.ComposedDeadlocks != 0 {
		t.Errorf("handshake mode deadlocks: %d", rep.ComposedDeadlocks)
	}
}

// TestE14_BroadcastDeviatesOnSameService is the control: the primary
// broadcast implementation exhibits the documented extra interleavings
// (shortcoming (ii)) on the same service.
func TestE14_BroadcastDeviatesOnSameService(t *testing.T) {
	d := deriveMode(t, dataPhaseSrc, core.InterruptBroadcast)
	rep, err := Verify(d.Service.Spec, d.Entities, VerifyOptions{ObsDepth: 6, MaxStates: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TracesEqual {
		t.Error("broadcast mode unexpectedly trace-faithful (the Section 3.3 deviation vanished?)")
	}
	for _, tr := range rep.OnlyComposed {
		if !strings.Contains(tr, "d2") {
			t.Errorf("extra trace %q does not involve the interrupt", tr)
		}
	}
	if len(rep.OnlyService) != 0 {
		t.Errorf("broadcast mode lost service traces: %v", rep.OnlyService)
	}
}

// TestE14_HandshakeNoEventAfterInterrupt is property (a) stated directly on
// the composed traces: in handshake mode, no trace contains a normal-part
// event after d2.
func TestE14_HandshakeNoEventAfterInterrupt(t *testing.T) {
	d := deriveMode(t, dataPhaseSrc, core.InterruptHandshake)
	sys, err := New(d.Entities, Config{ChannelCap: 2, Limits: lts.Limits{MaxObsDepth: 6, MaxStates: 200000}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := sys.Explore()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range lts.WeakTraces(g, 6) {
		events := lts.ParseTrace(tr)
		seenInterrupt := false
		for _, ev := range events {
			if ev == "d2" {
				seenInterrupt = true
				continue
			}
			if seenInterrupt && (ev == "a1" || ev == "b2") {
				t.Fatalf("normal event %s after interrupt in trace %q", ev, tr)
			}
		}
	}
}

// TestE14_HandshakeCostsMoreMessages pins the complexity trade-off: the
// handshake pays 2(n-1) per interrupt alternative where the broadcast pays
// at most n-2.
func TestE14_HandshakeCostsMoreMessages(t *testing.T) {
	b := deriveMode(t, dataPhaseSrc, core.InterruptBroadcast)
	h := deriveMode(t, dataPhaseSrc, core.InterruptHandshake)
	cb := core.MessageComplexityMode(b.Service, core.InterruptBroadcast)
	ch := core.MessageComplexityMode(h.Service, core.InterruptHandshake)
	if cb.Total() != b.SendCount() {
		t.Errorf("broadcast accounting %d != sends %d", cb.Total(), b.SendCount())
	}
	if ch.Total() != h.SendCount() {
		t.Errorf("handshake accounting %d != sends %d", ch.Total(), h.SendCount())
	}
	if ch.DisableInterr <= cb.DisableInterr {
		t.Errorf("handshake interrupt cost %d should exceed broadcast %d",
			ch.DisableInterr, cb.DisableInterr)
	}
	// n = 2: handshake pays 2(n-1) = 2; broadcast pays |ALL - {2} - SP(c1)| = 0.
	if ch.DisableInterr != 2 {
		t.Errorf("handshake interrupt messages = %d, want 2", ch.DisableInterr)
	}
}

// TestE14_HandshakeStructure inspects the derived texts: the interrupter
// waits for all acknowledgments before the disabling event.
func TestE14_HandshakeStructure(t *testing.T) {
	d := deriveMode(t, dataPhaseSrc, core.InterruptHandshake)
	p2 := lotos.Format(d.Entity(2).Root.Expr) // interrupter
	// The disabling part must be: send req >> receive ack >> d2; ...
	dis := d.Entity(2).Root.Expr.(*lotos.Disable)
	rhs := lotos.Format(dis.R)
	if !strings.HasPrefix(rhs, "s1(") {
		t.Errorf("interrupter RHS must start with the request send: %s", rhs)
	}
	idxReq := strings.Index(rhs, "s1(")
	idxAck := strings.Index(rhs, "r1(")
	idxEv := strings.Index(rhs, "d2")
	if !(idxReq < idxAck && idxAck < idxEv) {
		t.Errorf("interrupter order wrong (req %d, ack %d, d2 %d): %s", idxReq, idxAck, idxEv, rhs)
	}
	_ = p2
	// The other place starts with the request receive and acknowledges.
	dis1 := d.Entity(1).Root.Expr.(*lotos.Disable)
	rhs1 := lotos.Format(dis1.R)
	if !strings.HasPrefix(rhs1, "r2(") || !strings.Contains(rhs1, "s2(") {
		t.Errorf("peer RHS must receive the request then acknowledge: %s", rhs1)
	}
}

// TestE14_HandshakeResolvesTerminationRace shows that the handshake mode
// with flushing control receives eliminates the E11 Rel/interrupt race on
// the paper's own Example 3 (at a channel capacity covering the protocol's
// bounded stale backlog): an entity that has passed its Rel barrier still
// holds its disabling arm until global termination, so it can always drain
// the channel up to the interrupt request and acknowledge.
func TestE14_HandshakeResolvesTerminationRace(t *testing.T) {
	src := `
SPEC S [> interrupt3; exit WHERE
  PROC S = (read1; push2; S >> pop2; write3; exit)
        [] (eof1; make3; exit)
  END
ENDSPEC`
	d := deriveMode(t, src, core.InterruptHandshake)
	sys, err := New(d.Entities, Config{ChannelCap: 4, Limits: lts.Limits{MaxObsDepth: 5, MaxStates: 400000}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := sys.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if dls := g.Deadlocks(); len(dls) != 0 {
		for _, st := range dls {
			t.Logf("deadlocked: %s", g.Keys[st])
		}
		t.Errorf("handshake+flush left %d deadlocks on Example 3 (capacity 4)", len(dls))
	}
	_ = equiv.WeakTraceEquivalent
}
