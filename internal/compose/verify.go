package compose

import (
	"fmt"
	"strings"

	"repro/internal/equiv"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// Report is the outcome of checking the Section-5 correctness relation
// S ≈ hide G in ((T_1 ||| ... ||| T_n) |[G]| Medium) for one service.
type Report struct {
	// ServiceGraph and ComposedGraph are the explored transition systems.
	ServiceGraph  *lts.Graph
	ComposedGraph *lts.Graph

	// Complete reports that both state spaces were explored to closure, in
	// which case WeakBisimilar is the exact verdict.
	Complete bool
	// WeakBisimilar is the weak-bisimulation verdict (valid when Complete).
	WeakBisimilar bool

	// ObsDepth is the observable depth used for the bounded trace check.
	ObsDepth int
	// TracesEqual reports equality of the weak trace sets up to ObsDepth.
	TracesEqual bool
	// OnlyService / OnlyComposed list example traces present on one side
	// only (diagnostics, empty when TracesEqual).
	OnlyService  []string
	OnlyComposed []string
	// ComposedSubset reports that every composed trace (up to ObsDepth) is
	// a service trace — the weaker "safety" conformance that holds e.g.
	// for the centralized baseline (which narrows choices) and fails for
	// protocols that invent behaviour.
	ComposedSubset bool
	// ServiceSubset reports the converse: every service trace is realized.
	ServiceSubset bool

	// ComposedDeadlocks lists deadlocked composed states (none expected for
	// a correct derivation of a deadlock-free service).
	ComposedDeadlocks int

	// Faults is the medium fault model the composition was explored under.
	Faults FaultModel

	// Witness is the shortest counterexample for a non-conformant or
	// deadlocking verdict: a concrete replayable transition path from the
	// composed initial state to the divergence point. Nil when Ok, and nil
	// for the rare failure mode with no path-shaped witness (bounded trace
	// sets equal but weak bisimulation refuted).
	Witness *Witness

	// Equiv reports the equivalence engine's work counters (τ-SCC count,
	// saturation size, refinement rounds, per-phase wall time). Set only
	// when the weak-bisimulation check ran, i.e. when Complete.
	Equiv *equiv.Stats
}

// Ok reports overall success: trace equality at the checked depth, no
// composed deadlock, and — when complete exploration was possible — weak
// bisimilarity.
func (r *Report) Ok() bool {
	if !r.TracesEqual || r.ComposedDeadlocks > 0 {
		return false
	}
	if r.Complete && !r.WeakBisimilar {
		return false
	}
	return true
}

// Summary renders a one-paragraph human-readable verdict.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "service: %d states / %d transitions (truncated=%v)\n",
		r.ServiceGraph.NumStates(), r.ServiceGraph.NumTransitions(), r.ServiceGraph.Truncated)
	fmt.Fprintf(&b, "composed: %d states / %d transitions (truncated=%v)\n",
		r.ComposedGraph.NumStates(), r.ComposedGraph.NumTransitions(), r.ComposedGraph.Truncated)
	if r.Complete {
		fmt.Fprintf(&b, "weak bisimulation: %v\n", r.WeakBisimilar)
	} else {
		fmt.Fprintf(&b, "weak bisimulation: skipped (state space truncated)\n")
	}
	fmt.Fprintf(&b, "weak traces equal up to %d observable steps: %v\n", r.ObsDepth, r.TracesEqual)
	for _, t := range r.OnlyService {
		fmt.Fprintf(&b, "  only in service:  %q\n", t)
	}
	for _, t := range r.OnlyComposed {
		fmt.Fprintf(&b, "  only in composed: %q\n", t)
	}
	fmt.Fprintf(&b, "composed deadlocks: %d\n", r.ComposedDeadlocks)
	if r.Faults.Any() {
		fmt.Fprintf(&b, "fault model: %s\n", r.Faults)
	}
	fmt.Fprintf(&b, "verdict: %v\n", map[bool]string{true: "OK", false: "FAIL"}[r.Ok()])
	if r.Witness != nil {
		b.WriteString(r.Witness.Summary())
	}
	return b.String()
}

// VerifyOptions tunes Verify.
type VerifyOptions struct {
	// ChannelCap is the medium channel capacity (default 1).
	ChannelCap int
	// ObsDepth is the observable depth of the bounded trace comparison
	// (default 8).
	ObsDepth int
	// MaxStates caps both explorations (default lts.DefaultMaxStates).
	MaxStates int
	// Parallel explores the composed product with the parallel explorer
	// (see Config.Parallel); the service side stays serial (it is tiny by
	// comparison).
	Parallel bool
	// Workers sizes the parallel worker pool (0 = GOMAXPROCS).
	Workers int
	// Faults selects the medium fault model to compose in (zero value =
	// the paper's reliable FIFO medium).
	Faults FaultModel
	// TraceDiffLimit caps how many example traces TraceDiff collects per
	// side for a failed trace comparison (default DefaultTraceDiffLimit).
	TraceDiffLimit int
	// NoWitness skips counterexample extraction for failed verdicts (the
	// graphs alone are wanted, e.g. in tight sweeps).
	NoWitness bool
}

// DefaultObsDepth is the default bounded-comparison depth.
const DefaultObsDepth = 8

// DefaultTraceDiffLimit is the default per-side cap on diagnostic example
// traces collected when the trace sets differ.
const DefaultTraceDiffLimit = 5

// Verify checks a derived protocol against its service specification:
// it explores the service and the composed protocol system to the same
// observable depth, compares their weak trace sets, checks the composed
// system for deadlocks and — when both state spaces are finite within the
// limits — decides weak bisimulation.
//
// The service specification must be the analyzed clone actually derived
// from (core.Derivation.Service.Spec), so that both sides use the same
// normalized tree.
func Verify(service *lotos.Spec, entities map[int]*lotos.Spec, opts VerifyOptions) (*Report, error) {
	if opts.ObsDepth <= 0 {
		opts.ObsDepth = DefaultObsDepth
	}
	if opts.TraceDiffLimit <= 0 {
		opts.TraceDiffLimit = DefaultTraceDiffLimit
	}
	lim := lts.Limits{MaxStates: opts.MaxStates, MaxObsDepth: opts.ObsDepth}

	sg, err := lts.ExploreSpec(service, lim)
	if err != nil {
		return nil, fmt.Errorf("compose: exploring service: %w", err)
	}
	sys, err := New(entities, Config{
		ChannelCap: opts.ChannelCap,
		Limits:     lim,
		Parallel:   opts.Parallel,
		Workers:    opts.Workers,
		Faults:     opts.Faults,
	})
	if err != nil {
		return nil, err
	}
	cg, err := sys.Explore()
	if err != nil {
		return nil, fmt.Errorf("compose: exploring composed system: %w", err)
	}

	r := &Report{
		ServiceGraph:  sg,
		ComposedGraph: cg,
		ObsDepth:      opts.ObsDepth,
		Faults:        opts.Faults,
	}
	r.TracesEqual = equiv.WeakTraceEquivalent(sg, cg, opts.ObsDepth)
	r.ComposedSubset = true
	r.ServiceSubset = true
	if !r.TracesEqual {
		r.OnlyService, r.OnlyComposed = equiv.TraceDiff(sg, cg, opts.ObsDepth, opts.TraceDiffLimit)
		r.ComposedSubset = len(r.OnlyComposed) == 0
		r.ServiceSubset = len(r.OnlyService) == 0
	}
	r.ComposedDeadlocks = len(cg.Deadlocks())
	r.Complete = !sg.Truncated && !cg.Truncated
	if r.Complete {
		var st equiv.Stats
		r.WeakBisimilar, st = equiv.WeakBisimilarStats(sg, cg)
		r.Equiv = &st
	}
	if !r.Ok() && !opts.NoWitness {
		w, err := buildWitness(sys, r, opts)
		if err != nil {
			return nil, fmt.Errorf("compose: extracting counterexample: %w", err)
		}
		r.Witness = w
	}
	return r, nil
}

// MatrixCell is one entry of a fault matrix: the report of one verification
// under one fault model.
type MatrixCell struct {
	Faults FaultModel
	Report *Report
}

// VerifyMatrix runs Verify once per fault model and returns the cells in
// input order. An empty or nil model list verifies the reliable medium only.
// opts.Faults is overridden per cell.
func VerifyMatrix(service *lotos.Spec, entities map[int]*lotos.Spec, models []FaultModel, opts VerifyOptions) ([]MatrixCell, error) {
	if len(models) == 0 {
		models = []FaultModel{Reliable}
	}
	out := make([]MatrixCell, 0, len(models))
	for _, fm := range models {
		o := opts
		o.Faults = fm
		r, err := Verify(service, entities, o)
		if err != nil {
			return nil, fmt.Errorf("compose: fault model %s: %w", fm, err)
		}
		out = append(out, MatrixCell{Faults: fm, Report: r})
	}
	return out, nil
}
