package compose

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/equiv"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// Report is the outcome of checking the Section-5 correctness relation
// S ≈ hide G in ((T_1 ||| ... ||| T_n) |[G]| Medium) for one service.
type Report struct {
	// ServiceGraph and ComposedGraph are the explored transition systems.
	ServiceGraph  *lts.Graph
	ComposedGraph *lts.Graph

	// Complete reports that both state spaces were explored to closure, in
	// which case WeakBisimilar is the exact verdict.
	Complete bool
	// WeakBisimilar is the weak-bisimulation verdict (valid when Complete).
	WeakBisimilar bool

	// ObsDepth is the observable depth used for the bounded trace check.
	ObsDepth int
	// TracesEqual reports equality of the weak trace sets up to ObsDepth.
	TracesEqual bool
	// OnlyService / OnlyComposed list example traces present on one side
	// only (diagnostics, empty when TracesEqual).
	OnlyService  []string
	OnlyComposed []string
	// ComposedSubset reports that every composed trace (up to ObsDepth) is
	// a service trace — the weaker "safety" conformance that holds e.g.
	// for the centralized baseline (which narrows choices) and fails for
	// protocols that invent behaviour.
	ComposedSubset bool
	// ServiceSubset reports the converse: every service trace is realized.
	ServiceSubset bool

	// ComposedDeadlocks lists deadlocked composed states (none expected for
	// a correct derivation of a deadlock-free service).
	ComposedDeadlocks int

	// Faults is the medium fault model the composition was explored under.
	Faults FaultModel

	// Witness is the shortest counterexample for a non-conformant or
	// deadlocking verdict: a concrete replayable transition path from the
	// composed initial state to the divergence point. Nil when Ok, and nil
	// for the rare failure mode with no path-shaped witness (bounded trace
	// sets equal but weak bisimulation refuted).
	Witness *Witness

	// Equiv reports the equivalence engine's work counters (τ-SCC count,
	// saturation size, refinement rounds, per-phase wall time). Set only
	// when the weak-bisimulation check ran, i.e. when Complete.
	Equiv *equiv.Stats

	// Compositional reports the quotient-before-compose pipeline when the
	// verification ran with VerifyOptions.Compositional: per-entity quotient
	// sizes and build times, product-over-quotients size, artifact reuse,
	// and — when the verdict came from the monolithic fallback — why. Nil
	// for plain monolithic verifications.
	Compositional *CompositionalStats

	// Reduction reports the state-space reductions the product exploration
	// ran with and the work they did (orbits collapsed, ample hits, runs
	// spilled). When a symmetry-reduced verification was non-conformant,
	// the verdict and witness come from an automatic re-verification with
	// symmetry off — so counterexamples replay against the concrete,
	// unreduced product — and Reduction.Fallback records that.
	Reduction *ReductionStats
}

// Ok reports overall success: trace equality at the checked depth, no
// composed deadlock, and — when complete exploration was possible — weak
// bisimilarity.
func (r *Report) Ok() bool {
	if !r.TracesEqual || r.ComposedDeadlocks > 0 {
		return false
	}
	if r.Complete && !r.WeakBisimilar {
		return false
	}
	return true
}

// Summary renders a one-paragraph human-readable verdict.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "service: %d states / %d transitions (truncated=%v)\n",
		r.ServiceGraph.NumStates(), r.ServiceGraph.NumTransitions(), r.ServiceGraph.Truncated)
	fmt.Fprintf(&b, "composed: %d states / %d transitions (truncated=%v)\n",
		r.ComposedGraph.NumStates(), r.ComposedGraph.NumTransitions(), r.ComposedGraph.Truncated)
	if r.Complete {
		fmt.Fprintf(&b, "weak bisimulation: %v\n", r.WeakBisimilar)
	} else {
		fmt.Fprintf(&b, "weak bisimulation: skipped (state space truncated)\n")
	}
	fmt.Fprintf(&b, "weak traces equal up to %d observable steps: %v\n", r.ObsDepth, r.TracesEqual)
	for _, t := range r.OnlyService {
		fmt.Fprintf(&b, "  only in service:  %q\n", t)
	}
	for _, t := range r.OnlyComposed {
		fmt.Fprintf(&b, "  only in composed: %q\n", t)
	}
	fmt.Fprintf(&b, "composed deadlocks: %d\n", r.ComposedDeadlocks)
	if r.Faults.Any() {
		fmt.Fprintf(&b, "fault model: %s\n", r.Faults)
	}
	if ri := r.Reduction; ri != nil && (ri.SymmetryColumns > 0 || ri.SpillRuns > 0 || ri.Fallback != "") {
		fmt.Fprintf(&b, "reductions: %s (columns=%d orbits=%d ample=%d spillRuns=%d)\n",
			ri.Enabled, ri.SymmetryColumns, ri.OrbitsCollapsed, ri.AmpleHits, ri.SpillRuns)
		if ri.Fallback != "" {
			fmt.Fprintf(&b, "  fallback: %s\n", ri.Fallback)
		}
	}
	fmt.Fprintf(&b, "verdict: %v\n", map[bool]string{true: "OK", false: "FAIL"}[r.Ok()])
	if r.Witness != nil {
		b.WriteString(r.Witness.Summary())
	}
	return b.String()
}

// VerifyOptions tunes Verify.
type VerifyOptions struct {
	// ChannelCap is the medium channel capacity (default 1).
	ChannelCap int
	// ObsDepth is the observable depth of the bounded trace comparison
	// (default 8).
	ObsDepth int
	// MaxStates caps both explorations (default lts.DefaultMaxStates).
	MaxStates int
	// Parallel explores the composed product with the parallel explorer
	// (see Config.Parallel); the service side stays serial (it is tiny by
	// comparison).
	Parallel bool
	// Workers sizes the parallel worker pool (0 = GOMAXPROCS).
	Workers int
	// Faults selects the medium fault model to compose in (zero value =
	// the paper's reliable FIFO medium).
	Faults FaultModel
	// TraceDiffLimit caps how many example traces TraceDiff collects per
	// side for a failed trace comparison (default DefaultTraceDiffLimit).
	TraceDiffLimit int
	// NoWitness skips counterexample extraction for failed verdicts (the
	// graphs alone are wanted, e.g. in tight sweeps).
	NoWitness bool
	// Compositional selects the quotient-before-compose path: each entity's
	// LTS is explored and minimized with the weak-bisimulation quotient
	// before the product is built, so exploration runs over quotient state
	// spaces. A conformant compositional verdict is sound (the quotient is
	// a congruence for the product's operators); a non-conformant one, a
	// truncated entity, or a truncated quotient product falls back to the
	// full monolithic Verify, whose report — counterexample included — is
	// returned wholesale with the fallback reason recorded in
	// Report.Compositional.
	Compositional bool
	// EntityProvider, when set with Compositional, supplies per-entity
	// quotient artifacts (the injection point for content-addressed caches).
	// Nil means BuildEntityLTS per place.
	EntityProvider EntityProvider
	// Reductions selects the product exploration's state-space reductions
	// (zero value = the default set, POR only). Every reduction is verdict-
	// preserving: a symmetry-reduced non-conformant verdict is automatically
	// re-verified with symmetry off so the witness and deadlock counts refer
	// to the concrete product (see Report.Reduction.Fallback).
	Reductions Reductions
	// SpillBudget bounds the in-memory visited index (bytes) when the
	// reduction set includes RedSpill; past it, sorted runs spill to disk.
	// 0 selects lts.DefaultSpillBudget.
	SpillBudget int64
	// SpillDir is the directory for spill runs ("" = os.TempDir()).
	SpillDir string
}

// DefaultObsDepth is the default bounded-comparison depth.
const DefaultObsDepth = 8

// DefaultTraceDiffLimit is the default per-side cap on diagnostic example
// traces collected when the trace sets differ.
const DefaultTraceDiffLimit = 5

// Verify checks a derived protocol against its service specification:
// it explores the service and the composed protocol system to the same
// observable depth, compares their weak trace sets, checks the composed
// system for deadlocks and — when both state spaces are finite within the
// limits — decides weak bisimulation.
//
// With opts.Compositional the product is built over weak-bisimulation
// quotients of the entity LTSs (see verifyCompositional); a non-conformant
// or incomplete compositional verdict falls back to the monolithic path,
// so counterexamples are always the monolithic (replayable) ones.
//
// The service specification must be the analyzed clone actually derived
// from (core.Derivation.Service.Spec), so that both sides use the same
// normalized tree.
func Verify(service *lotos.Spec, entities map[int]*lotos.Spec, opts VerifyOptions) (*Report, error) {
	if opts.Compositional {
		return verifyCompositional(service, entities, opts)
	}
	return verifyMonolithic(service, entities, opts)
}

func verifyMonolithic(service *lotos.Spec, entities map[int]*lotos.Spec, opts VerifyOptions) (*Report, error) {
	if opts.ObsDepth <= 0 {
		opts.ObsDepth = DefaultObsDepth
	}
	if opts.TraceDiffLimit <= 0 {
		opts.TraceDiffLimit = DefaultTraceDiffLimit
	}
	lim := lts.Limits{MaxStates: opts.MaxStates, MaxObsDepth: opts.ObsDepth}

	sg, err := lts.ExploreSpec(service, lim)
	if err != nil {
		return nil, fmt.Errorf("compose: exploring service: %w", err)
	}
	sys, err := New(entities, Config{
		ChannelCap:  opts.ChannelCap,
		Limits:      lim,
		Parallel:    opts.Parallel,
		Workers:     opts.Workers,
		Faults:      opts.Faults,
		Reductions:  opts.Reductions,
		SpillBudget: opts.SpillBudget,
		SpillDir:    opts.SpillDir,
	})
	if err != nil {
		return nil, err
	}
	cg, err := sys.Explore()
	if err != nil {
		return nil, fmt.Errorf("compose: exploring composed system: %w", err)
	}

	ri := sys.ReductionInfo()
	r := &Report{
		ServiceGraph:  sg,
		ComposedGraph: cg,
		ObsDepth:      opts.ObsDepth,
		Faults:        opts.Faults,
		Reduction:     &ri,
	}
	verdict(r, opts)
	if sys.sym != nil && !r.Ok() {
		// The symmetry quotient is weakly bisimilar to the concrete product,
		// so the verdict itself is trustworthy — but its graph stores one
		// state per permutation orbit: deadlock counts are orbit counts, and
		// a counterexample path would step through canonical representatives
		// rather than replayable concrete states. Re-verify with symmetry
		// stripped from the effective set (everything else unchanged) so the
		// failure report — witness included — is byte-identical to an
		// unreduced verification. Mirrors fallbackMonolithic in spirit; the
		// repeated service exploration is cheap next to the product.
		o := opts
		o.Reductions = sys.red.Without(RedSymmetry)
		full, err := verifyMonolithic(service, entities, o)
		if err != nil {
			return nil, err
		}
		full.Reduction.Fallback = "non-conformant under symmetry; re-verified without it"
		return full, nil
	}
	if !r.Ok() && !opts.NoWitness {
		w, err := buildWitness(sys, r, opts)
		if err != nil {
			return nil, fmt.Errorf("compose: extracting counterexample: %w", err)
		}
		r.Witness = w
	}
	return r, nil
}

// verdict fills the comparison fields of a report whose graphs are set.
func verdict(r *Report, opts VerifyOptions) {
	sg, cg := r.ServiceGraph, r.ComposedGraph
	r.TracesEqual = equiv.WeakTraceEquivalent(sg, cg, opts.ObsDepth)
	r.ComposedSubset = true
	r.ServiceSubset = true
	if !r.TracesEqual {
		r.OnlyService, r.OnlyComposed = equiv.TraceDiff(sg, cg, opts.ObsDepth, opts.TraceDiffLimit)
		r.ComposedSubset = len(r.OnlyComposed) == 0
		r.ServiceSubset = len(r.OnlyService) == 0
	}
	r.ComposedDeadlocks = len(cg.Deadlocks())
	r.Complete = !sg.Truncated && !cg.Truncated
	if r.Complete {
		var st equiv.Stats
		r.WeakBisimilar, st = equiv.WeakBisimilarStats(sg, cg)
		r.Equiv = &st
	}
}

// verifyCompositional is the quotient-before-compose path: every entity LTS
// is explored to closure and minimized with the weak-bisimulation quotient,
// and the product is explored over the quotients. A complete, conformant
// quotient-product verdict is final — the quotient is a congruence for the
// product's operators, so the monolithic product is weakly bisimilar to the
// quotient product, and a monolithic deadlock always projects to a quotient-
// product deadlock. Everything else (a truncated entity, a truncated
// quotient product, a non-conformant verdict) re-runs the monolithic path
// and returns its report wholesale, counterexample included, with the
// fallback reason recorded in Report.Compositional. The caller's trees are
// never mutated by the compositional attempt (the service is explored on a
// clone; entity providers explore clones), so the fallback sees them
// pristine.
func verifyCompositional(service *lotos.Spec, entities map[int]*lotos.Spec, opts VerifyOptions) (*Report, error) {
	if opts.ObsDepth <= 0 {
		opts.ObsDepth = DefaultObsDepth
	}
	if opts.TraceDiffLimit <= 0 {
		opts.TraceDiffLimit = DefaultTraceDiffLimit
	}
	provider := opts.EntityProvider
	if provider == nil {
		provider = BuildEntityLTS
	}

	stats := &CompositionalStats{}
	places := make([]int, 0, len(entities))
	for p := range entities {
		places = append(places, p)
	}
	sortInts(places)
	ltss := make(map[int]*EntityLTS, len(places))
	for _, p := range places {
		el, err := provider(p, entities[p], opts.MaxStates)
		if err != nil {
			return nil, err
		}
		stat := EntityQuotientStat{
			Place:            p,
			ExactStates:      el.ExactStates,
			ExactTransitions: el.ExactTransitions,
			BuildNanos:       el.BuildNanos,
			Reused:           el.Reused,
		}
		if el.Quotient != nil {
			stat.QuotientStates = el.Quotient.NumStates()
			stat.QuotientTransitions = el.Quotient.NumTransitions()
		}
		stats.Entities = append(stats.Entities, stat)
		stats.BuildNanos += el.BuildNanos
		if el.Reused {
			stats.Reused++
		}
		if el.Truncated {
			return fallbackMonolithic(service, entities, opts, stats,
				fmt.Sprintf("entity %d exceeds the exploration cap", p))
		}
		ltss[p] = el
	}

	lim := lts.Limits{MaxStates: opts.MaxStates, MaxObsDepth: opts.ObsDepth}
	// Explore the service on a clone: exploration resolves and numbers the
	// tree in place, and the monolithic fallback needs the original.
	sg, err := lts.ExploreSpec(lotos.CloneSpec(service), lim)
	if err != nil {
		return nil, fmt.Errorf("compose: exploring service: %w", err)
	}
	sys, err := NewCompositional(entities, ltss, Config{
		ChannelCap:  opts.ChannelCap,
		Limits:      lim,
		Parallel:    opts.Parallel,
		Workers:     opts.Workers,
		Faults:      opts.Faults,
		Reductions:  opts.Reductions,
		SpillBudget: opts.SpillBudget,
		SpillDir:    opts.SpillDir,
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	cg, err := sys.Explore()
	if err != nil {
		return nil, fmt.Errorf("compose: exploring quotient product: %w", err)
	}
	stats.ProductNanos = time.Since(start).Nanoseconds()
	stats.ProductStates = cg.NumStates()
	stats.ProductTransitions = cg.NumTransitions()

	ri := sys.ReductionInfo()
	r := &Report{
		ServiceGraph:  sg,
		ComposedGraph: cg,
		ObsDepth:      opts.ObsDepth,
		Faults:        opts.Faults,
		Compositional: stats,
		Reduction:     &ri,
	}
	verdict(r, opts)
	// An incomplete exploration is acceptable only when the truncation is
	// depth-only: the monolithic product is explored to the same observable
	// depth, the full products are weakly bisimilar (quotient congruence),
	// and trace length is a weak-bisimulation invariant — so both paths cut
	// the same bounded trace sets and skip the bisimulation check alike. A
	// state-cap truncation instead means the quotient product was not
	// covered, and nothing relates the partial graphs; fall back.
	if cap := effectiveMaxStates(opts.MaxStates); cg.Truncated && cg.NumStates() >= cap {
		return fallbackMonolithic(service, entities, opts, stats, "quotient product exceeds the state cap")
	}
	if !r.Ok() {
		// Sound only in the conformant direction: the weak quotient can
		// introduce a spurious deadlock (a pure-τ cycle collapses to a stuck
		// class), and the fallback's witness refers to monolithic transition
		// indices, which replay through the concrete interpreter.
		return fallbackMonolithic(service, entities, opts, stats, "non-conformant; re-verified monolithically")
	}
	return r, nil
}

// effectiveMaxStates resolves the exploration state cap an explorer applies
// for a MaxStates option (0 = the default cap).
func effectiveMaxStates(maxStates int) int {
	if maxStates <= 0 {
		return lts.DefaultMaxStates
	}
	return maxStates
}

// MemoEntityProvider wraps an EntityProvider with a (place, maxStates)-keyed
// memo for repeated verifications of ONE entity set — the fault matrix's
// reuse pattern, where every cell composes the same entities under a
// different medium. Cache hits return a shallow copy with Reused set and
// BuildNanos zeroed (the artifact cost nothing this time); the quotient
// graph is shared, which is safe because preset systems only read it. Not a
// content-addressed cache: callers verifying different specs need their own
// keying (see the facade's artifact cache).
func MemoEntityProvider(next EntityProvider) EntityProvider {
	type memoKey struct {
		place     int
		maxStates int
	}
	var mu sync.Mutex
	memo := map[memoKey]*EntityLTS{}
	return func(place int, sp *lotos.Spec, maxStates int) (*EntityLTS, error) {
		k := memoKey{place, maxStates}
		mu.Lock()
		el, ok := memo[k]
		mu.Unlock()
		if ok {
			hit := *el
			hit.Reused = true
			hit.BuildNanos = 0
			return &hit, nil
		}
		el, err := next(place, sp, maxStates)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		memo[k] = el
		mu.Unlock()
		return el, nil
	}
}

// fallbackMonolithic re-runs the monolithic path and returns its report
// wholesale — verdict fields and counterexample byte-identical to a plain
// Verify — with the compositional attempt's stats and the fallback reason
// attached.
func fallbackMonolithic(service *lotos.Spec, entities map[int]*lotos.Spec, opts VerifyOptions, stats *CompositionalStats, reason string) (*Report, error) {
	stats.Fallback = reason
	r, err := verifyMonolithic(service, entities, opts)
	if err != nil {
		return nil, err
	}
	r.Compositional = stats
	return r, nil
}

// MatrixCell is one entry of a fault matrix: the report of one verification
// under one fault model.
type MatrixCell struct {
	Faults FaultModel
	Report *Report
}

// VerifyMatrix runs Verify once per fault model and returns the cells in
// input order. An empty or nil model list verifies the reliable medium only.
// opts.Faults is overridden per cell. Under opts.Compositional the entity
// quotients are built once and shared across every cell — faults and
// channel capacity live in the medium, so the entity artifacts are
// identical for all fault models.
func VerifyMatrix(service *lotos.Spec, entities map[int]*lotos.Spec, models []FaultModel, opts VerifyOptions) ([]MatrixCell, error) {
	if len(models) == 0 {
		models = []FaultModel{Reliable}
	}
	if opts.Compositional && opts.EntityProvider == nil {
		opts.EntityProvider = MemoEntityProvider(BuildEntityLTS)
	}
	out := make([]MatrixCell, 0, len(models))
	for _, fm := range models {
		o := opts
		o.Faults = fm
		r, err := Verify(service, entities, o)
		if err != nil {
			return nil, fmt.Errorf("compose: fault model %s: %w", fm, err)
		}
		out = append(out, MatrixCell{Faults: fm, Report: r})
	}
	return out, nil
}
