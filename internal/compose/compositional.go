// Quotient-before-compose: the compositional verification path.
//
// The monolithic path explores the product of the entities' full local
// state spaces. But the product construction factors through the entity
// LTSs, and weak bisimilarity is a congruence for every operator the
// product applies — parallel composition with synchronization on the
// message gates and on δ, and hiding of the message interactions. Replacing
// each entity LTS with its weak-bisimulation quotient (equiv.QuotientWeak,
// message events kept observable) therefore yields a product that is
// weakly bisimilar to the monolithic one: every verdict the report derives
// from weak equivalence — the bisimulation check against the service, the
// bounded weak-trace comparison — is identical, over a state space that is
// often dramatically smaller (recursive entities in particular explore one
// state per syntactic unfolding, which the quotient collapses).
//
// Deadlock detection survives the quotient in the direction that matters:
// a monolithic deadlock projects to a quotient-product deadlock (a
// deadlocked global state enables no entity move, so every entity offers
// only blocked sends/receives; its class offers exactly the same labels,
// blocked by the same channel contents). The converse can fail in theory —
// the weak quotient maps a τ-divergent entity state to a deadlocked class —
// so a non-conformant compositional verdict is always re-verified
// monolithically (see verify.go), which also reproduces the monolithic
// counterexample byte for byte. A spurious compositional deadlock costs
// time, never correctness.
package compose

import (
	"fmt"
	"time"

	"repro/internal/equiv"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// EntityLTS is one derived entity's behaviour, explored to closure and
// minimized with the weak-bisimulation quotient — the per-entity artifact
// the compositional product composes over, and the unit the daemon's
// content-addressed artifact cache stores (two specifications sharing one
// normalized entity share this work).
type EntityLTS struct {
	// Place is the entity's protocol place.
	Place int
	// Quotient is the weak-bisimulation quotient of the entity LTS, with
	// message events observable. State 0 is the initial class.
	Quotient *lts.Graph
	// ExactStates / ExactTransitions are the pre-quotient sizes.
	ExactStates      int
	ExactTransitions int
	// Truncated reports that entity exploration hit the state cap before
	// closure; the quotient is then unsound to compose over and the
	// verification falls back to the monolithic path.
	Truncated bool
	// BuildNanos is the wall time of exploration plus quotient.
	BuildNanos int64
	// Reused marks an artifact served from a provider's cache rather than
	// built for this call (set by caching providers, never by
	// BuildEntityLTS).
	Reused bool
}

// QuotientStates returns the minimized state count.
func (e *EntityLTS) QuotientStates() int { return e.Quotient.NumStates() }

// EntityProvider supplies the EntityLTS of one place — the injection point
// for content-addressed artifact caches layered above this package. The
// specification passed in is private to the call (already cloned); providers
// that build artifacts must still not retain it, because BuildEntityLTS
// explores its own clone precisely so cached artifacts alias nothing live.
type EntityProvider func(place int, sp *lotos.Spec, maxStates int) (*EntityLTS, error)

// BuildEntityLTS explores one entity's behaviour to closure (maxStates <= 0
// selects lts.DefaultMaxStates) and minimizes it with the weak-bisimulation
// quotient. The entity tree is cloned before exploration, so the returned
// artifact is immutable and safe to cache and share across goroutines.
func BuildEntityLTS(place int, sp *lotos.Spec, maxStates int) (*EntityLTS, error) {
	start := time.Now()
	if maxStates <= 0 {
		maxStates = lts.DefaultMaxStates
	}
	g, err := lts.ExploreSpec(lotos.CloneSpec(sp), lts.Limits{MaxStates: maxStates})
	if err != nil {
		return nil, fmt.Errorf("compose: exploring entity %d: %w", place, err)
	}
	out := &EntityLTS{
		Place:            place,
		ExactStates:      g.NumStates(),
		ExactTransitions: g.NumTransitions(),
		Truncated:        g.Truncated,
	}
	if g.Truncated {
		// The quotient of a truncated graph would merge frontier states on
		// their explored prefix only; composing over it is unsound. Leave
		// Quotient nil — the caller falls back to the monolithic path.
		out.BuildNanos = time.Since(start).Nanoseconds()
		return out, nil
	}
	out.Quotient = equiv.QuotientWeak(g)
	out.BuildNanos = time.Since(start).Nanoseconds()
	return out, nil
}

// NewCompositional prepares a product system over pre-quotiented entity
// behaviours: every local state table is preloaded from the quotient graphs
// (derived=true), so product exploration never touches the SOS interpreter.
// State keys stay content-derived — each local state contributes the digest
// of its class representative's canonical expression — so serial and
// parallel exploration agree on the key set exactly as in the monolithic
// system.
func NewCompositional(entities map[int]*lotos.Spec, ltss map[int]*EntityLTS, cfg Config) (*System, error) {
	if cfg.ChannelCap <= 0 {
		cfg.ChannelCap = DefaultChannelCap
	}
	sys := &System{
		Entities: entities,
		placeIdx: map[int]int{},
		cfg:      cfg,
		// Quotient classes carry no syntax to detect columns in, so the
		// symmetry reduction never applies to a preset system.
		red:    cfg.effectiveReductions() &^ RedSymmetry,
		msgIDs: map[message]int32{},
		preset: true,
	}
	for p := range entities {
		sys.Places = append(sys.Places, p)
	}
	sortInts(sys.Places)
	for idx, p := range sys.Places {
		el := ltss[p]
		if el == nil || el.Quotient == nil {
			return nil, fmt.Errorf("compose: no quotient LTS for place %d", p)
		}
		sys.placeIdx[p] = idx
		sys.intern = append(sys.intern, map[string]int32{})
		sys.local = append(sys.local, nil)
		_ = idx
	}
	// Second pass: message/peer resolution needs the complete placeIdx.
	for idx, p := range sys.Places {
		g := ltss[p].Quotient
		states := make([]localState, g.NumStates())
		for sid := range states {
			key := g.Keys[sid]
			sys.intern[idx][key] = int32(sid)
			states[sid] = localState{sum: digest16([]byte(key)), derived: true}
		}
		for sid, edges := range g.Edges {
			trans := make([]cachedTrans, len(edges))
			for i, e := range edges {
				ct := cachedTrans{label: e.Label, to: int32(e.To), peer: -1, msg: -1}
				if e.Label.Kind == lts.LEvent {
					ev := e.Label.Ev
					if ev.Kind == lotos.EvSend || ev.Kind == lotos.EvRecv {
						pi, ok := sys.placeIdx[ev.Place]
						if !ok {
							return nil, fmt.Errorf("compose: entity %d message event %s targets unknown place %d", p, ev, ev.Place)
						}
						ct.peer = int32(pi)
						ct.msg = sys.msgIDLocked(msgOf(ev))
						if ev.Kind == lotos.EvRecv {
							ct.flush = flushingRecv(ev)
						}
					}
				}
				trans[i] = ct
			}
			states[sid].trans = trans
		}
		sys.local[idx] = states
	}
	return sys, nil
}

// sortInts is sort.Ints without dragging the package import into this file's
// hot path twice (compose.go already sorts; kept tiny and local).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// EntityQuotientStat reports one entity's quotient-before-compose numbers.
type EntityQuotientStat struct {
	// Place is the entity's protocol place.
	Place int `json:"place"`
	// ExactStates / QuotientStates are the entity LTS sizes before and
	// after the weak quotient.
	ExactStates    int `json:"exactStates"`
	QuotientStates int `json:"quotientStates"`
	// ExactTransitions / QuotientTransitions likewise.
	ExactTransitions    int `json:"exactTransitions"`
	QuotientTransitions int `json:"quotientTransitions"`
	// BuildNanos is the explore+quotient wall time (≈0 for cache hits).
	BuildNanos int64 `json:"buildNanos"`
	// Reused marks an artifact served from a content-addressed cache.
	Reused bool `json:"reused"`
}

// CompositionalStats describes the quotient-before-compose pipeline of one
// verification: per-entity quotient sizes and build times, the size and
// exploration time of the product over quotients, artifact reuse, and —
// when the monolithic path produced the final verdict — why.
type CompositionalStats struct {
	// Entities holds one row per place, in place order.
	Entities []EntityQuotientStat `json:"entities"`
	// ProductStates / ProductTransitions size the product over quotients.
	ProductStates      int `json:"productStates"`
	ProductTransitions int `json:"productTransitions"`
	// BuildNanos sums the per-entity explore+quotient wall time;
	// ProductNanos is the quotient-product exploration wall time.
	BuildNanos   int64 `json:"buildNanos"`
	ProductNanos int64 `json:"productNanos"`
	// Reused counts entities served from an artifact cache.
	Reused int `json:"reused"`
	// Fallback, when non-empty, explains why the final verdict came from
	// the monolithic path: an entity state space over the cap, a truncated
	// quotient product, or a non-conformant verdict re-verified for its
	// exact (byte-identical, replayable) counterexample.
	Fallback string `json:"fallback,omitempty"`
}

// ExactStatesTotal sums the entities' pre-quotient state counts.
func (c *CompositionalStats) ExactStatesTotal() int {
	n := 0
	for _, e := range c.Entities {
		n += e.ExactStates
	}
	return n
}

// QuotientStatesTotal sums the entities' post-quotient state counts.
func (c *CompositionalStats) QuotientStatesTotal() int {
	n := 0
	for _, e := range c.Entities {
		n += e.QuotientStates
	}
	return n
}

// ReuseRatio is the fraction of entities served from an artifact cache.
func (c *CompositionalStats) ReuseRatio() float64 {
	if len(c.Entities) == 0 {
		return 0
	}
	return float64(c.Reused) / float64(len(c.Entities))
}
