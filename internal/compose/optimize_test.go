package compose

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lotos"
)

func optimize(t *testing.T, src string, opts VerifyOptions) (*core.Derivation, *OptimizeResult) {
	t.Helper()
	d, err := core.Derive(lotos.MustParse(src), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeMessages(d.Service.Spec, d.Entities, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

func TestOptimizeKeepsEssentialMessage(t *testing.T) {
	// a1; b2; exit needs its single synchronization message: removing it
	// would let b2 run before a1.
	d, res := optimize(t, "SPEC a1; b2; exit ENDSPEC", VerifyOptions{})
	if len(res.Removed) != 0 {
		t.Errorf("removed essential messages: %v", res.Removed)
	}
	if res.Before != d.SendCount() || res.After != res.Before {
		t.Errorf("counts: %+v", res)
	}
}

func TestOptimizeRemovesRedundantProcSynch(t *testing.T) {
	// Tail recursion: the Proc_Synch message at each invocation of A is
	// redundant — the a1->b2 sequence message already carries the ordering
	// into the new instance.
	src := `SPEC A WHERE PROC A = a1; b2; A [] c1; exit END ENDSPEC`
	d, res := optimize(t, src, VerifyOptions{ObsDepth: 6, MaxStates: 60000})
	if len(res.Removed) == 0 {
		t.Fatalf("expected redundant messages, none removed (before=%d)", res.Before)
	}
	if res.After >= res.Before {
		t.Errorf("no reduction: before=%d after=%d", res.Before, res.After)
	}
	// The optimized protocol still provides the service.
	rep, err := Verify(d.Service.Spec, res.Entities, VerifyOptions{ObsDepth: 6, MaxStates: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Errorf("optimized protocol fails verification:\n%s", rep.Summary())
	}
	t.Logf("removed %d/%d messages (%v)", res.Before-res.After, res.Before, res.Removed)
}

func TestOptimizeSequenceOfReturns(t *testing.T) {
	// a1; b2; c1; exit: both messages (1->2 and 2->1) are essential.
	_, res := optimize(t, "SPEC a1; b2; c1; exit ENDSPEC", VerifyOptions{})
	if len(res.Removed) != 0 {
		t.Errorf("removed essential messages: %v", res.Removed)
	}
}

func TestOptimizeEntitiesStayWellFormed(t *testing.T) {
	src := `SPEC A WHERE PROC A = a1; b2; A [] c1; exit END ENDSPEC`
	_, res := optimize(t, src, VerifyOptions{ObsDepth: 6, MaxStates: 60000})
	for p, sp := range res.Entities {
		text := sp.String()
		if _, err := lotos.Parse(text); err != nil {
			t.Errorf("optimized entity %d does not re-parse: %v\n%s", p, err, text)
		}
	}
}

func TestOptimizeInputUntouched(t *testing.T) {
	src := "SPEC a1; b2; exit ENDSPEC"
	d, err := core.Derive(lotos.MustParse(src), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := d.Entity(1).String() + d.Entity(2).String()
	if _, err := OptimizeMessages(d.Service.Spec, d.Entities, VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	after := d.Entity(1).String() + d.Entity(2).String()
	if before != after {
		t.Error("optimizer modified its input entities")
	}
}

func TestOptimizeExample5(t *testing.T) {
	// The Alternative and unwind messages of Example 5 are all load-bearing
	// except possibly redundant Proc_Synch notifications; whatever the
	// optimizer removes, the result must still verify.
	src := `
SPEC A WHERE
  PROC A = (a1; b2; A >> c2; d3; exit) [] (e1; f3; exit) END
ENDSPEC`
	d, res := optimize(t, src, VerifyOptions{ObsDepth: 5, MaxStates: 80000})
	rep, err := Verify(d.Service.Spec, res.Entities, VerifyOptions{ObsDepth: 6, MaxStates: 120000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Errorf("optimized Example 5 fails at greater depth:\n%s", rep.Summary())
	}
	t.Logf("example 5: %d -> %d messages (removed ids %v)", res.Before, res.After, res.Removed)
}
