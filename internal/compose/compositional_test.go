package compose

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// deriveSrc derives the protocol of a service source.
func deriveSrc(t testing.TB, src string) *core.Derivation {
	t.Helper()
	d, err := core.Derive(lotos.MustParse(src), core.Options{})
	if err != nil {
		t.Fatalf("derive %q: %v", src, err)
	}
	return d
}

// cloneEntityMap deep-copies an entity map (exploration numbers trees in
// place, so every Verify call gets private trees).
func cloneEntityMap(m map[int]*lotos.Spec) map[int]*lotos.Spec {
	out := make(map[int]*lotos.Spec, len(m))
	for p, sp := range m {
		out[p] = lotos.CloneSpec(sp)
	}
	return out
}

// bothPaths verifies one derivation monolithically and compositionally with
// identical options and returns the two reports.
func bothPaths(t testing.TB, src string, opts VerifyOptions) (mono, comp *Report) {
	t.Helper()
	d := deriveSrc(t, src)
	var err error
	mono, err = Verify(lotos.CloneSpec(d.Service.Spec), cloneEntityMap(d.Entities), opts)
	if err != nil {
		t.Fatalf("monolithic verify: %v", err)
	}
	o := opts
	o.Compositional = true
	comp, err = Verify(lotos.CloneSpec(d.Service.Spec), cloneEntityMap(d.Entities), o)
	if err != nil {
		t.Fatalf("compositional verify: %v", err)
	}
	return mono, comp
}

// wantSameVerdict asserts that the two paths agree on every verdict field.
// When the monolithic product hit the exploration state cap its verdict is
// an artifact of the truncation and the quotient product may legitimately do
// better (that is the point of composing over quotients), so only the safe
// direction is checked there.
func wantSameVerdict(t *testing.T, src string, mono, comp *Report) {
	t.Helper()
	if mono.ComposedGraph.Truncated && mono.ComposedGraph.NumStates() >= lts.DefaultMaxStates {
		if mono.Ok() && !comp.Ok() {
			t.Errorf("%s: monolithic ok under the cap but compositional failed:\n%s", src, comp.Summary())
		}
		return
	}
	if mono.Ok() != comp.Ok() {
		t.Errorf("%s: Ok monolithic=%v compositional=%v\nmono:\n%s\ncomp:\n%s",
			src, mono.Ok(), comp.Ok(), mono.Summary(), comp.Summary())
	}
	if mono.TracesEqual != comp.TracesEqual {
		t.Errorf("%s: TracesEqual monolithic=%v compositional=%v", src, mono.TracesEqual, comp.TracesEqual)
	}
	if mono.Complete && comp.Complete && mono.WeakBisimilar != comp.WeakBisimilar {
		t.Errorf("%s: WeakBisimilar monolithic=%v compositional=%v", src, mono.WeakBisimilar, comp.WeakBisimilar)
	}
	if (mono.ComposedDeadlocks > 0) != (comp.ComposedDeadlocks > 0) {
		t.Errorf("%s: deadlocks monolithic=%d compositional=%d", src, mono.ComposedDeadlocks, comp.ComposedDeadlocks)
	}
	if comp.Compositional == nil {
		t.Errorf("%s: compositional report carries no CompositionalStats", src)
	}
}

var compositionalSources = []struct {
	name string
	src  string
	opts VerifyOptions
}{
	{"sequence", "SPEC a1; b2; c3; exit ENDSPEC", VerifyOptions{}},
	{"choice", "SPEC a1; b2; exit [] a1; c2; exit ENDSPEC", VerifyOptions{}},
	{"parallel", "SPEC a1; b2; exit ||| c3; d4; exit ENDSPEC", VerifyOptions{}},
	{"enable", "SPEC a1; b2; exit >> c1; exit >> d3; exit ENDSPEC", VerifyOptions{}},
	{"recursion", "SPEC A WHERE PROC A = a1; b2; A [] q1; b2; exit END ENDSPEC", VerifyOptions{}},
	{"disable-deviation", "SPEC a1; b2; c3; exit [> d3; exit ENDSPEC", VerifyOptions{ObsDepth: 6}},
	{"loss-deadlock", "SPEC a1; b2; exit ENDSPEC", VerifyOptions{Faults: FaultModel{Loss: true}}},
	{"dup-cap2", "SPEC a1; b2; a1; exit ENDSPEC", VerifyOptions{ChannelCap: 2, Faults: FaultModel{Duplication: true}}},
	{"reorder-cap2", "SPEC a1; b2; c1; b2; exit ENDSPEC", VerifyOptions{ChannelCap: 2, Faults: FaultModel{Reorder: true}}},
}

// TestCompositionalMatchesMonolithic: the quotient-before-compose path
// reaches the same verdict as the monolithic path on conformant and
// non-conformant services, with and without medium faults, serially and in
// parallel.
func TestCompositionalMatchesMonolithic(t *testing.T) {
	for _, tc := range compositionalSources {
		for _, par := range []bool{false, true} {
			name := tc.name
			if par {
				name += "-parallel"
			}
			t.Run(name, func(t *testing.T) {
				o := tc.opts
				o.Parallel = par
				mono, comp := bothPaths(t, tc.src, o)
				wantSameVerdict(t, tc.src, mono, comp)
			})
		}
	}
}

// TestCompositionalFailingFallsBack: a non-conformant verdict must come from
// the monolithic fallback — fallback reason recorded, witness byte-identical
// to the plain monolithic one.
func TestCompositionalFailingFallsBack(t *testing.T) {
	src := "SPEC a1; b2; exit ENDSPEC"
	opts := VerifyOptions{Faults: FaultModel{Loss: true}}
	mono, comp := bothPaths(t, src, opts)
	if comp.Ok() {
		t.Fatalf("expected loss to break the protocol:\n%s", comp.Summary())
	}
	if comp.Compositional == nil || comp.Compositional.Fallback == "" {
		t.Fatalf("failing compositional verdict did not record a fallback: %+v", comp.Compositional)
	}
	if mono.Witness == nil || comp.Witness == nil {
		t.Fatalf("missing witness: mono=%v comp=%v", mono.Witness, comp.Witness)
	}
	if got, want := comp.Witness.Summary(), mono.Witness.Summary(); got != want {
		t.Errorf("fallback witness differs from monolithic:\n--- monolithic\n%s\n--- compositional\n%s", want, got)
	}
	if comp.ComposedDeadlocks != mono.ComposedDeadlocks {
		t.Errorf("fallback deadlock count %d != monolithic %d", comp.ComposedDeadlocks, mono.ComposedDeadlocks)
	}
}

// TestCompositionalQuotientShrinks: on a finite-entity multi-place service
// (the multiinstance shape) the entity quotients are no larger than the
// exact entity LTSs, the quotient product is no larger than the monolithic
// product, and no fallback happens.
func TestCompositionalQuotientShrinks(t *testing.T) {
	// One instance of the multiinstance shape: four places, finite entities.
	// (The two-instance original is the benchmark's job — its monolithic
	// product runs to ~120k states, too slow for a unit test.)
	src := "SPEC (a1; (b2; exit ||| c3; exit)) >> g4; exit ENDSPEC"
	mono, comp := bothPaths(t, src, VerifyOptions{})
	wantSameVerdict(t, src, mono, comp)
	st := comp.Compositional
	if st.Fallback != "" {
		t.Fatalf("unexpected fallback: %s", st.Fallback)
	}
	if st.QuotientStatesTotal() > st.ExactStatesTotal() {
		t.Errorf("quotient grew the entities: exact=%d quotient=%d",
			st.ExactStatesTotal(), st.QuotientStatesTotal())
	}
	if st.ProductStates > mono.ComposedGraph.NumStates() {
		t.Errorf("quotient product (%d states) larger than monolithic product (%d states)",
			st.ProductStates, mono.ComposedGraph.NumStates())
	}
	t.Logf("entities exact=%d quotient=%d; product mono=%d comp=%d",
		st.ExactStatesTotal(), st.QuotientStatesTotal(),
		mono.ComposedGraph.NumStates(), st.ProductStates)
}

// TestCompositionalRecursiveEntityFallsBack: recursive services derive
// entities whose unfoldings carry fresh occurrence numbers — the entity LTS
// is unbounded, so the compositional path must fall back and agree with the
// monolithic verdict exactly.
func TestCompositionalRecursiveEntityFallsBack(t *testing.T) {
	src := "SPEC A WHERE PROC A = a1; b2; c1; A [] q1; b2; exit END ENDSPEC"
	mono, comp := bothPaths(t, src, VerifyOptions{})
	wantSameVerdict(t, src, mono, comp)
	if comp.Compositional.Fallback == "" {
		t.Error("expected an exploration-cap fallback for the recursive entity")
	}
	if mono.Complete != comp.Complete {
		t.Errorf("Complete mono=%v comp=%v", mono.Complete, comp.Complete)
	}
}

// TestCompositionalMatrixReusesEntities: a compositional fault matrix builds
// each entity's quotient once; every later cell reuses it.
func TestCompositionalMatrixReusesEntities(t *testing.T) {
	d := deriveSrc(t, "SPEC a1; b2; c1; exit ENDSPEC")
	models := []FaultModel{Reliable, {Loss: true}, {Duplication: true}, {Reorder: true}}
	cells, err := VerifyMatrix(lotos.CloneSpec(d.Service.Spec), cloneEntityMap(d.Entities), models,
		VerifyOptions{Compositional: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(models) {
		t.Fatalf("got %d cells, want %d", len(cells), len(models))
	}
	for i, c := range cells {
		st := c.Report.Compositional
		if st == nil {
			t.Fatalf("cell %d (%s) has no compositional stats", i, c.Faults)
		}
		if i == 0 && st.Reused != 0 {
			t.Errorf("first cell reused %d entities, want 0", st.Reused)
		}
		if i > 0 && st.Reused != len(st.Entities) {
			t.Errorf("cell %d (%s) reused %d/%d entities, want all", i, c.Faults, st.Reused, len(st.Entities))
		}
	}

	// Each cell must match its monolithic counterpart.
	monoCells, err := VerifyMatrix(lotos.CloneSpec(d.Service.Spec), cloneEntityMap(d.Entities), models, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		wantSameVerdict(t, fmt.Sprintf("cell %s", models[i]), monoCells[i].Report, cells[i].Report)
	}
}

// TestMemoEntityProvider: hits are flagged Reused with zero build time and
// share the underlying quotient graph.
func TestMemoEntityProvider(t *testing.T) {
	d := deriveSrc(t, "SPEC a1; b2; exit ENDSPEC")
	calls := 0
	p := MemoEntityProvider(func(place int, sp *lotos.Spec, maxStates int) (*EntityLTS, error) {
		calls++
		return BuildEntityLTS(place, sp, maxStates)
	})
	places := []int{1, 2}
	for _, pl := range places {
		el, err := p(pl, d.Entities[pl], 0)
		if err != nil {
			t.Fatal(err)
		}
		if el.Reused {
			t.Errorf("place %d: first build flagged Reused", pl)
		}
	}
	if calls != 2 {
		t.Fatalf("expected 2 builds, got %d", calls)
	}
	for _, pl := range places {
		el, err := p(pl, d.Entities[pl], 0)
		if err != nil {
			t.Fatal(err)
		}
		if !el.Reused || el.BuildNanos != 0 {
			t.Errorf("place %d: hit not flagged (reused=%v buildNanos=%d)", pl, el.Reused, el.BuildNanos)
		}
	}
	if calls != 2 {
		t.Errorf("memo missed: %d builds after hits", calls)
	}
	// Distinct maxStates are distinct artifacts.
	if _, err := p(1, d.Entities[1], 12345); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("maxStates not part of the memo key: %d builds", calls)
	}
}

// TestBuildEntityLTSTruncation: an entity over the cap yields a Truncated
// artifact with a nil quotient, and the compositional path falls back.
func TestBuildEntityLTSTruncation(t *testing.T) {
	d := deriveSrc(t, "SPEC A WHERE PROC A = a1; b2; A [] q1; b2; exit END ENDSPEC")
	el, err := BuildEntityLTS(1, d.Entities[1], 2)
	if err != nil {
		t.Fatal(err)
	}
	if !el.Truncated || el.Quotient != nil {
		t.Fatalf("expected truncated artifact with nil quotient, got %+v", el)
	}

	mono, err := Verify(lotos.CloneSpec(d.Service.Spec), cloneEntityMap(d.Entities), VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Verify(lotos.CloneSpec(d.Service.Spec), cloneEntityMap(d.Entities), VerifyOptions{
		Compositional: true,
		EntityProvider: func(place int, sp *lotos.Spec, maxStates int) (*EntityLTS, error) {
			return BuildEntityLTS(place, sp, 2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Compositional == nil || comp.Compositional.Fallback == "" {
		t.Fatalf("truncated entity did not fall back: %+v", comp.Compositional)
	}
	if mono.Ok() != comp.Ok() {
		t.Errorf("fallback verdict %v != monolithic %v", comp.Ok(), mono.Ok())
	}
}
