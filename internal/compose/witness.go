package compose

import (
	"fmt"
	"strings"

	"repro/internal/equiv"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// Witness step kinds.
const (
	StepService   = "service"   // an entity fires a service primitive
	StepInternal  = "internal"  // an entity fires a local internal action
	StepSend      = "send"      // an entity enqueues a message on a channel
	StepRecv      = "recv"      // an entity consumes a message from a channel
	StepDelta     = "delta"     // global successful termination (all entities)
	StepLoss      = "loss"      // the medium drops an in-transit message
	StepDuplicate = "duplicate" // the medium duplicates an in-transit message
	StepReorder   = "reorder"   // the medium swaps two adjacent messages
)

// Witness verdict kinds.
const (
	WitnessDeadlock     = "deadlock"      // path ends in a composed deadlock
	WitnessExtraTrace   = "extra-trace"   // composed behaviour absent from the service
	WitnessMissingTrace = "missing-trace" // service behaviour the composition cannot realize
)

// WitnessStep is one concrete transition of a counterexample path: which
// entity (or the medium) moved and how. Steps carry everything a replay
// needs to re-execute the path deterministically.
type WitnessStep struct {
	// Kind is one of the Step* constants.
	Kind string `json:"kind"`
	// Place is the acting entity's place number (-1 for medium faults and
	// the global δ).
	Place int `json:"place"`
	// TIndex is the index of the fired transition in the entity's local
	// transition list at the source state — the replay selector (-1 for
	// medium faults and δ).
	TIndex int `json:"tIndex"`
	// Ev is the fired entity event (zero for internal/δ/fault steps). Not
	// serialized: replay re-derives it from TIndex.
	Ev lotos.Event `json:"-"`
	// Label is a human-readable rendering of the step.
	Label string `json:"label"`
	// From and To identify the channel of a send/recv/fault step (place
	// numbers; zero otherwise).
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Msg renders the affected message of a send/recv/fault step.
	Msg string `json:"msg,omitempty"`
	// Index is the queue position a fault step acts on.
	Index int `json:"index,omitempty"`
}

// Witness is a shortest counterexample for a failed verification: a concrete
// transition path from the composed initial state to the divergence point,
// replayable step-for-step (see sim.ReplayWitness). Minimality is the BFS
// guarantee: no strictly shorter path in the explored composed graph reaches
// an equivalent divergence.
type Witness struct {
	// Kind is one of the Witness* verdict constants.
	Kind string `json:"kind"`
	// Faults is the fault model the composition ran under.
	Faults FaultModel `json:"faults"`
	// ChannelCap is the medium capacity the composition ran under.
	ChannelCap int `json:"channelCap"`
	// Steps is the concrete transition path through the composed system.
	Steps []WitnessStep `json:"steps"`
	// Trace is the observable projection of Steps.
	Trace []string `json:"trace"`
	// Missing, for a missing-trace witness, is the service trace the
	// composition cannot realize; Steps then realize exactly the first
	// MatchedPrefix labels of it.
	Missing []string `json:"missing,omitempty"`
	// MatchedPrefix is the number of Missing labels Steps realize.
	MatchedPrefix int `json:"matchedPrefix,omitempty"`
}

// Summary renders the witness as an indented step listing.
func (w *Witness) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "counterexample (%s, faults=%s, cap=%d, %d steps):\n",
		w.Kind, w.Faults, w.ChannelCap, len(w.Steps))
	for i, st := range w.Steps {
		fmt.Fprintf(&b, "  %2d. [%s] %s\n", i+1, st.Kind, st.Label)
	}
	if len(w.Trace) > 0 {
		fmt.Fprintf(&b, "  observable trace: %s\n", strings.Join(w.Trace, " "))
	}
	if w.Kind == WitnessMissingTrace {
		fmt.Fprintf(&b, "  service trace not realized: %s (composition realizes the first %d label(s))\n",
			strings.Join(w.Missing, " "), w.MatchedPrefix)
	}
	return b.String()
}

// annotatePath re-walks a path of the composed graph from the initial state,
// matching each edge against a fresh derivation of the source state to
// recover the concrete step (acting entity, transition index, fault) behind
// it. The match key is (transition label key, target state key): derive is
// deterministic, so the pair identifies the edge uniquely up to replay
// equivalence (two derived moves reaching the same target state with the
// same label are interchangeable for replay purposes).
func (s *System) annotatePath(g *lts.Graph, path []lts.PathStep) ([]WitnessStep, error) {
	cur := s.rootState()
	out := make([]WitnessStep, 0, len(path))
	for pi, ps := range path {
		trans, steps, err := s.derive(cur, true)
		if err != nil {
			return nil, err
		}
		wantKey := g.Keys[ps.Edge.To]
		wantLabel := ps.Edge.Label.Key()
		found := -1
		for i, t := range trans {
			if t.Key == wantKey && t.Label.Key() == wantLabel {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("compose: witness path step %d: no derived transition matches edge %q", pi, ps.Edge.Label)
		}
		out = append(out, steps[found])
		cur = trans[found].To.(*gstate)
	}
	return out, nil
}

// buildWitness extracts the shortest counterexample for a failed report, in
// verdict priority order: a composed deadlock (shortest path to any
// deadlocked state), then an extra composed trace (behaviour the service
// forbids), then a missing service trace (realized up to its maximal
// prefix). Returns nil when the failure mode has no path-shaped witness
// (e.g. a weak-bisimulation failure with equal bounded trace sets).
func buildWitness(sys *System, r *Report, opts VerifyOptions) (*Witness, error) {
	sg, cg := r.ServiceGraph, r.ComposedGraph
	// Unbounded comparison is sound only over fully-explored graphs.
	maxObs := opts.ObsDepth
	if r.Complete {
		maxObs = 0
	}
	base := Witness{Faults: opts.Faults, ChannelCap: sys.cfg.ChannelCap}

	if r.ComposedDeadlocks > 0 {
		dead := map[int]bool{}
		for _, st := range cg.Deadlocks() {
			dead[st] = true
		}
		path, ok := cg.ShortestPathTo(func(st int) bool { return dead[st] })
		if ok {
			w := base
			w.Kind = WitnessDeadlock
			steps, err := sys.annotatePath(cg, path)
			if err != nil {
				return nil, err
			}
			w.Steps = steps
			w.Trace = lts.ObservableTrace(path)
			return &w, nil
		}
	}
	if !r.ComposedSubset {
		if path, ok := equiv.DivergentPath(cg, sg, maxObs); ok {
			w := base
			w.Kind = WitnessExtraTrace
			steps, err := sys.annotatePath(cg, path)
			if err != nil {
				return nil, err
			}
			w.Steps = steps
			w.Trace = lts.ObservableTrace(path)
			return &w, nil
		}
	}
	if !r.ServiceSubset {
		if missing, ok := equiv.ShortestDivergentTrace(sg, cg, maxObs); ok {
			w := base
			w.Kind = WitnessMissingTrace
			w.Missing = missing
			path, matched := equiv.TracePrefixPath(cg, missing)
			steps, err := sys.annotatePath(cg, path)
			if err != nil {
				return nil, err
			}
			w.Steps = steps
			w.Trace = lts.ObservableTrace(path)
			w.MatchedPrefix = matched
			return &w, nil
		}
	}
	return nil, nil
}
