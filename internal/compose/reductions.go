package compose

import (
	"fmt"
	"sort"
	"strings"
)

// Reductions selects which state-space reductions the product exploration
// applies. It is a bitmask so ablation benchmarks and the differential
// soundness suite can enable each reduction independently.
//
// The zero value selects the default reduction set (partial-order reduction
// only — the behaviour the explorer has always had). An explicitly empty
// set — every interleaving explored — is RedNone, or the deprecated
// Config.NoReduction alias.
type Reductions uint8

const (
	// RedPOR is the ample-set partial-order reduction: when every local
	// transition of some entity is invisible and commutes with every other
	// entity's moves, that entity's transitions are explored as the state's
	// only global moves (see System.derive for the exact conditions).
	RedPOR Reductions = 1 << iota
	// RedSymmetry is the instance-symmetry reduction: |||-interleaved
	// syntactically identical entity instances are detected at compose time
	// and every global state is keyed by a canonical representative of its
	// permutation orbit, so the visited set stores one state per orbit.
	RedSymmetry
	// RedSpill is the disk-spilling visited set: when the in-memory visited
	// index crosses the configured byte budget, sorted runs are spilled to
	// temp files and frontier batches deduplicate against them by merge, so
	// exploration scales past memory.
	RedSpill

	// redExplicit marks a mask that was built explicitly, so that an empty
	// explicit mask (RedNone) is distinguishable from the zero-value default.
	redExplicit
)

// RedNone is the explicitly empty reduction set: every interleaving is
// explored, nothing spills, nothing is canonicalized.
const RedNone = redExplicit

// RedAll enables every reduction.
const RedAll = RedPOR | RedSymmetry | RedSpill

// Has reports whether the mask (taken literally, without default resolution)
// contains the given reduction bit.
func (r Reductions) Has(bit Reductions) bool { return r&bit != 0 }

// Without returns an explicit mask with the given bits cleared. Unlike plain
// bit-clearing, the result stays distinguishable from the zero-value default
// even when no bits remain.
func (r Reductions) Without(bits Reductions) Reductions {
	return (r &^ bits) | redExplicit
}

// With returns an explicit mask with the given bits set.
func (r Reductions) With(bits Reductions) Reductions {
	return r | bits | redExplicit
}

// String renders the canonical form parsed by ParseReductions: the enabled
// reduction names joined with "+", "none" for an explicitly empty mask, and
// "default" for the zero value.
func (r Reductions) String() string {
	if r == 0 {
		return "default"
	}
	var parts []string
	if r&RedPOR != 0 {
		parts = append(parts, "por")
	}
	if r&RedSymmetry != 0 {
		parts = append(parts, "symmetry")
	}
	if r&RedSpill != 0 {
		parts = append(parts, "spill")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// ParseReductions parses a reduction-set name: "" or "default" (the default
// set), "none", "all", or reduction names ("por", "symmetry"/"sym",
// "spill") joined with "+" or ",".
func ParseReductions(s string) (Reductions, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", "default":
		return 0, nil
	case "none":
		return RedNone, nil
	case "all":
		return RedAll | redExplicit, nil
	}
	var out Reductions
	for _, tok := range strings.FieldsFunc(s, func(r rune) bool { return r == '+' || r == ',' }) {
		switch strings.TrimSpace(strings.ToLower(tok)) {
		case "por":
			out |= RedPOR
		case "symmetry", "sym":
			out |= RedSymmetry
		case "spill":
			out |= RedSpill
		case "":
		default:
			return 0, fmt.Errorf("compose: unknown reduction %q (want por, symmetry, spill, all, none)", tok)
		}
	}
	return out | redExplicit, nil
}

// ReductionNames lists the canonical individual reduction names.
func ReductionNames() []string {
	names := []string{"por", "symmetry", "spill"}
	sort.Strings(names)
	return names
}

// effectiveReductions resolves the reduction set a Config selects: the
// explicit mask when one was set, otherwise the default (POR only) unless
// the deprecated NoReduction alias asks for no reductions at all.
func (c Config) effectiveReductions() Reductions {
	if c.Reductions != 0 {
		return c.Reductions &^ redExplicit
	}
	if c.NoReduction {
		return 0
	}
	return RedPOR
}

// ReductionStats reports the work the enabled reductions did during one
// product exploration, and — for a verification — whether a symmetry-reduced
// non-conformant verdict fell back to an unreduced re-verification.
type ReductionStats struct {
	// Enabled is the canonical name of the effective reduction set.
	Enabled string `json:"enabled"`
	// SymmetryColumns is the number of interchangeable |||-instance columns
	// detected (0 when symmetry was off or not applicable to the entities).
	SymmetryColumns int `json:"symmetryColumns,omitempty"`
	// OrbitsCollapsed counts canonicalizations that mapped a state onto a
	// different orbit representative (a strict reduction of the visited set).
	OrbitsCollapsed int64 `json:"orbitsCollapsed,omitempty"`
	// AmpleHits counts states whose successor set was reduced to one
	// entity's ample transition set.
	AmpleHits int64 `json:"ampleHits,omitempty"`
	// SpillRuns is the number of sorted visited-index runs spilled to disk;
	// SpilledBytes their total size; PeakMemBytes the high-water estimate of
	// the in-memory visited index.
	SpillRuns    int   `json:"spillRuns,omitempty"`
	SpilledBytes int64 `json:"spilledBytes,omitempty"`
	PeakMemBytes int64 `json:"peakMemBytes,omitempty"`
	// Fallback records why a reduced verification was re-run without
	// symmetry (witness extraction and deadlock counts must come from the
	// unreduced product so counterexamples replay byte-for-byte).
	Fallback string `json:"fallback,omitempty"`
}
