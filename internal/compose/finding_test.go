package compose

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// TestE11_RelInterruptRaceDeadlock documents a reproduction finding about
// the paper's distributed disabling implementation (Section 3.3), observed
// on the paper's own Example 3.
//
// The derived entity for an ending place p of the normal part has the form
//
//	( T_p(e1) >> Rel_p(e1) ) [> T_p(Mc)
//
// so the disabling event stays enabled until the left side's successful
// termination — in particular AFTER the Rel termination barrier has been
// broadcast. When the interrupting place first broadcasts Rel and then
// executes the disabling event, a receiving place q gets BOTH the Rel
// message and the interrupt message on the same FIFO channel, in that
// order. If q's normal part can no longer progress (e.g. it waits for a
// message from an entity that already took the interrupt), q's Rel receive
// is unreachable and the interrupt message is stuck behind the Rel message
// at the head of the queue: a genuine deadlock, independent of channel
// capacity. Restrictions R2/R3 do not prevent it.
//
// The test pins the behaviour: the deadlock exists for Example 3 at every
// capacity, always with a Rel message blocking the channel, and disappears
// when the disabling operator is removed from the service.
func TestE11_RelInterruptRaceDeadlock(t *testing.T) {
	src := `
SPEC S [> interrupt3; exit WHERE
  PROC S = (read1; push2; S >> pop2; write3; exit)
        [] (eof1; make3; exit)
  END
ENDSPEC`
	d, err := core.Derive(lotos.MustParse(src), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, capacity := range []int{1, 2, 4} {
		// StringKeys: the readable legacy keys let the test inspect the
		// channel contents of the deadlocked states below.
		sys, err := New(d.Entities, Config{
			ChannelCap: capacity,
			Limits:     lts.Limits{MaxObsDepth: 5, MaxStates: 400000},
			StringKeys: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		g, err := sys.Explore()
		if err != nil {
			t.Fatal(err)
		}
		dls := g.Deadlocks()
		if len(dls) == 0 {
			t.Errorf("cap=%d: expected the Rel/interrupt race deadlock, found none "+
				"(did the disabling implementation change?)", capacity)
			continue
		}
		// Every deadlocked state has a non-empty channel (a message stuck
		// behind the FIFO head); at capacity >= 2 the canonical witness has
		// the interrupt message queued behind the Rel message. In the
		// legacy string keys a non-empty channel renders as ";slot=msgs".
		for _, s := range dls {
			if !strings.Contains(g.Keys[s], ";") || !strings.Contains(g.Keys[s], "=") {
				t.Errorf("cap=%d: deadlock state %q has empty channels", capacity, g.Keys[s])
			}
		}
	}

	// Control: the same service without "[>" has no deadlock.
	ctrl := `
SPEC S WHERE
  PROC S = (read1; push2; S >> pop2; write3; exit)
        [] (eof1; make3; exit)
  END
ENDSPEC`
	dc, err := core.Derive(lotos.MustParse(ctrl), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(dc.Entities, Config{ChannelCap: 1, Limits: lts.Limits{MaxObsDepth: 5, MaxStates: 400000}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := sys.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if dl := g.Deadlocks(); len(dl) != 0 {
		t.Errorf("control without [> deadlocks: %d", len(dl))
	}
}

// TestE11_LinearDisableHasNoDeadlock shows the race needs the interrupting
// place to also be an ending place reached through work that other places
// gate: the paper's simple Example 6 shape stays deadlock-free.
func TestE11_LinearDisableHasNoDeadlock(t *testing.T) {
	d, err := core.Derive(lotos.MustParse("SPEC a1; b2; c3; exit [> d3; exit ENDSPEC"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, capacity := range []int{1, 3} {
		sys, err := New(d.Entities, Config{ChannelCap: capacity, Limits: lts.Limits{MaxObsDepth: 6}})
		if err != nil {
			t.Fatal(err)
		}
		g, err := sys.Explore()
		if err != nil {
			t.Fatal(err)
		}
		if dl := g.Deadlocks(); len(dl) != 0 {
			t.Errorf("cap=%d: unexpected deadlocks: %d", capacity, len(dl))
		}
	}
}
