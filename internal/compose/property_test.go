package compose

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// genService generates a random [>-free service specification that
// satisfies the paper's restrictions BY CONSTRUCTION: choices are generated
// with a fixed (startPlace, endPlaces) signature for both alternatives, so
// R1 and R2 hold without rejection sampling. The generator exercises ";",
// "[]", "|||" and ">>" over up to 4 places.
type genService struct {
	rng    *rand.Rand
	places int
	names  int
}

func (g *genService) place() int { return g.rng.Intn(g.places) + 1 }

func (g *genService) event(place int) string {
	g.names++
	return fmt.Sprintf("%s%d", string(rune('a'+g.names%20)), place)
}

// expr generates an expression that starts at startPlace and ends with its
// last action at endPlace (so SP = {startPlace}, EP = {endPlace}).
func (g *genService) expr(startPlace, endPlace, depth int) string {
	if depth <= 0 {
		return g.seq(startPlace, endPlace)
	}
	switch g.rng.Intn(4) {
	case 0: // plain sequence
		return g.seq(startPlace, endPlace)
	case 1: // choice: same start and end places in both alternatives (R1/R2)
		l := g.expr(startPlace, endPlace, depth-1)
		r := g.expr(startPlace, endPlace, depth-1)
		return "(" + l + " [] " + r + ")"
	case 2: // enabling: left part ends anywhere, right continues to endPlace
		mid := g.place()
		l := g.expr(startPlace, mid, depth-1)
		r := g.expr(g.place(), endPlace, depth-1)
		return "(" + l + " >> " + r + ")"
	default: // sequence with an interleaved middle, then rejoin
		mid1, mid2 := g.place(), g.place()
		l := g.seq(startPlace, mid1)
		m := "(" + g.seq(g.place(), mid2) + " ||| " + g.seq(g.place(), g.place()) + ")"
		r := g.seq(g.place(), endPlace)
		return "(" + l + " >> " + m + " >> " + r + ")"
	}
}

// seq generates "ev(start); [ev(mid);...] ev(end); exit".
func (g *genService) seq(startPlace, endPlace int) string {
	var b strings.Builder
	b.WriteString(g.event(startPlace))
	b.WriteString("; ")
	middles := g.rng.Intn(3)
	for i := middles; i > 0; i-- {
		b.WriteString(g.event(g.place()))
		b.WriteString("; ")
	}
	// The final event fixes EP = {endPlace}; it may only be omitted when
	// the start event already is the last action at endPlace.
	if startPlace != endPlace || middles > 0 || g.rng.Intn(2) == 0 {
		b.WriteString(g.event(endPlace))
		b.WriteString("; ")
	}
	b.WriteString("exit")
	return b.String()
}

func (g *genService) spec(depth int) string {
	return "SPEC " + g.expr(g.place(), g.place(), depth) + " ENDSPEC"
}

// TestPropertyRandomServicesDeriveAndVerify is the randomized end-to-end
// property: for every generated valid service, (1) the derivation succeeds,
// (2) the Section-4.3 accounting equals the derived send count, (3) the
// composed protocol is trace-equivalent to the service (exactly, via weak
// bisimulation, whenever exploration closes) and deadlock-free.
func TestPropertyRandomServicesDeriveAndVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	checked := 0
	for seed := int64(1); checked < 60 && seed < 800; seed++ {
		g := &genService{rng: rand.New(rand.NewSource(seed)), places: 4}
		src := g.spec(1 + int(seed%3))
		sp, err := lotos.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: generator produced unparsable spec: %v\n%s", seed, err, src)
		}
		// The generator guarantees R1/R2 by construction; double-check and
		// fail loudly if the guarantee breaks.
		if _, err := attr.Validate(lotos.CloneSpec(sp)); err != nil {
			t.Fatalf("seed %d: generated spec violates restrictions: %v\n%s", seed, err, src)
		}
		d, err := core.Derive(sp, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: derive: %v\n%s", seed, err, src)
		}
		if got, want := core.MessageComplexity(d.Service).Total(), d.SendCount(); got != want {
			t.Errorf("seed %d: complexity %d != sends %d\n%s", seed, got, want, src)
		}
		rep, err := Verify(d.Service.Spec, d.Entities, VerifyOptions{ObsDepth: 5, MaxStates: 150000})
		if err != nil {
			t.Fatalf("seed %d: verify: %v\n%s", seed, err, src)
		}
		if !rep.Ok() {
			t.Errorf("seed %d: verification failed:\n%s\n%s", seed, src, rep.Summary())
		}
		if rep.Complete && !rep.WeakBisimilar {
			t.Errorf("seed %d: complete but not bisimilar:\n%s", seed, src)
		}
		checked++
	}
	if checked < 60 {
		t.Fatalf("only %d specs checked", checked)
	}
}

// TestPropertyReductionSoundness cross-checks the partial-order reduction:
// the reduced and the full exploration must have identical weak trace sets.
func TestPropertyReductionSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	checked := 0
	for seed := int64(1); checked < 20 && seed < 200; seed++ {
		g := &genService{rng: rand.New(rand.NewSource(seed + 1000)), places: 3}
		src := g.spec(1)
		sp, err := lotos.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.Derive(sp, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		limits := lts.Limits{MaxObsDepth: 4, MaxStates: 300000}
		sysR, err := New(d.Entities, Config{Limits: limits})
		if err != nil {
			t.Fatal(err)
		}
		gr, err := sysR.Explore()
		if err != nil {
			t.Fatal(err)
		}
		sysF, err := New(d.Entities, Config{NoReduction: true, Limits: limits})
		if err != nil {
			t.Fatal(err)
		}
		gf, err := sysF.Explore()
		if err != nil {
			t.Fatal(err)
		}
		if gr.NumStates() > gf.NumStates() {
			t.Errorf("seed %d: reduction enlarged the state space", seed)
		}
		trR := strings.Join(lts.WeakTraces(gr, 4), ";")
		trF := strings.Join(lts.WeakTraces(gf, 4), ";")
		if trR != trF {
			t.Errorf("seed %d: reduction changed the trace set\n%s\nreduced: %s\nfull:    %s",
				seed, src, trR, trF)
		}
		checked++
	}
}
