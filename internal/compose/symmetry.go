package compose

import (
	"bytes"
	"encoding/binary"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/lotos"
)

// Instance-symmetry reduction.
//
// Many services interleave several syntactically identical process instances
// ("B ||| B", a token ring of identical stations, a worker pool). The derived
// protocol entities inherit that shape: at every place the entity root is a
// |||-composition of k columns that are identical up to a renaming of the
// column-private identifiers (message node numbers and process call sites).
// Any permutation of the columns — applied at every place and to every
// in-flight message simultaneously — is then an automorphism of the product
// transition system, so states that differ only by such a permutation are
// interchangeable, and the visited set only needs one representative per
// permutation orbit.
//
// Detection is syntactic and conservative: it either constructs an explicit
// identifier bijection per column (a witness that the permutation really is
// an automorphism) or reports no symmetry. Soundness rests on the checks
// performed here, not on any assumption about how the spec was written.
type symmetry struct {
	// k is the number of interchangeable columns.
	k int
	// rename maps each column's private identifiers into column 0's
	// namespace: rename[j][id] is the column-0 counterpart of the column-j
	// identifier id. rename[0] is nil (the identity).
	rename []map[int]int
	// colOf gives the owning column of every column-private identifier, at
	// every place. Identifiers absent from the map are shared (process
	// definition bodies, tags) and rename to themselves.
	colOf map[int]int
}

// interleaveSpine returns the maximal right-comb spine of |||-compositions
// rooted at e: [L, spine(R)...] for e = L ||| R, else [e]. The parser builds
// ||| right-associatively, so the spine recovers the source-level operand
// list (possibly extended by the last operand's own internal |||).
func interleaveSpine(e lotos.Expr) []lotos.Expr {
	var out []lotos.Expr
	for {
		p, ok := e.(*lotos.Parallel)
		if !ok || p.Kind != lotos.ParInterleave {
			return append(out, e)
		}
		out = append(out, p.L)
		e = p.R
	}
}

// splitColumns cuts e into exactly k columns along the right comb: the first
// k-1 spine elements and the remaining subtree. Returns nil when the comb is
// too shallow.
func splitColumns(e lotos.Expr, k int) []lotos.Expr {
	parts := make([]lotos.Expr, 0, k)
	for j := 0; j < k-1; j++ {
		p, ok := e.(*lotos.Parallel)
		if !ok || p.Kind != lotos.ParInterleave {
			return nil
		}
		parts = append(parts, p.L)
		e = p.R
	}
	return append(parts, e)
}

// detectSymmetry looks for interchangeable ||| columns across all entities of
// a system. It tries every column count from the widest cut every place
// supports down to 2 and returns the first one whose columns match at every
// place under one global identifier bijection, or nil.
func detectSymmetry(places []int, entities map[int]*lotos.Spec) *symmetry {
	maxK := 0
	for i, p := range places {
		arity := len(interleaveSpine(entities[p].Root.Expr))
		if i == 0 || arity < maxK {
			maxK = arity
		}
	}
	for k := maxK; k >= 2; k-- {
		if sym := trySymmetry(places, entities, k); sym != nil {
			return sym
		}
	}
	return nil
}

func trySymmetry(places []int, entities map[int]*lotos.Spec, k int) *symmetry {
	cols := make([][]lotos.Expr, len(places))
	for i, p := range places {
		cols[i] = splitColumns(entities[p].Root.Expr, k)
		if cols[i] == nil {
			return nil
		}
	}
	sym := &symmetry{k: k, rename: make([]map[int]int, k), colOf: map[int]int{}}
	// Build one global bijection per column j >= 1 by structural matching of
	// column j against column 0 simultaneously at every place: the SAME
	// renaming must explain every place, or the permutation would desynchronize
	// the message traffic between places.
	for j := 1; j < k; j++ {
		m := &renameMatcher{fwd: map[int]int{}, rev: map[int]int{}}
		for i := range places {
			if !matchExpr(cols[i][j], cols[i][0], m) {
				return nil
			}
		}
		sym.rename[j] = m.fwd
	}
	// Column ownership: every renameable identifier occurring in a column
	// subtree belongs to that column, consistently across places. An
	// identifier claimed by two different columns (or by a column and a
	// shared process-definition body) would make the permutation ill-defined.
	ok := true
	for i, p := range places {
		for j, col := range cols[i] {
			j := j
			collectRenameIDs(col, func(id int) {
				if prev, seen := sym.colOf[id]; seen && prev != j {
					ok = false
				}
				sym.colOf[id] = j
			})
		}
		_ = p
	}
	if !ok {
		return nil
	}
	shared := map[int]bool{}
	for _, p := range places {
		collectDefIDs(entities[p].Root, func(id int) { shared[id] = true })
	}
	// Validate the bijections against ownership: every non-trivially renamed
	// identifier must be private to exactly the column the bijection says,
	// and must not also occur in a shared definition body.
	for j := 1; j < k; j++ {
		for x, y := range sym.rename[j] {
			if x == y {
				continue
			}
			if sym.colOf[x] != j || sym.colOf[y] != 0 || shared[x] || shared[y] {
				return nil
			}
		}
	}
	return sym
}

// renameMatcher accumulates the identifier bijection while matching one
// column against column 0 across all places.
type renameMatcher struct {
	fwd map[int]int // column-j id -> column-0 id
	rev map[int]int // column-0 id -> column-j id
}

func (m *renameMatcher) pair(x, y int) bool {
	if to, ok := m.fwd[x]; ok {
		return to == y
	}
	if from, ok := m.rev[y]; ok {
		return from == x
	}
	m.fwd[x] = y
	m.rev[y] = x
	return true
}

// matchExpr structurally matches a (column j) against b (column 0), growing
// the identifier bijection. Only identifiers that contribute to state and
// message identity are mapped: message node numbers and process call-site
// ids (whose numbers enter occurrence paths, see lts.Env.Instantiate).
func matchExpr(a, b lotos.Expr, m *renameMatcher) bool {
	switch x := a.(type) {
	case *lotos.Stop:
		_, ok := b.(*lotos.Stop)
		return ok
	case *lotos.Exit:
		_, ok := b.(*lotos.Exit)
		return ok
	case *lotos.Empty:
		_, ok := b.(*lotos.Empty)
		return ok
	case *lotos.Prefix:
		y, ok := b.(*lotos.Prefix)
		return ok && matchEvent(x.Ev, y.Ev, m) && matchExpr(x.Cont, y.Cont, m)
	case *lotos.Choice:
		y, ok := b.(*lotos.Choice)
		return ok && matchExpr(x.L, y.L, m) && matchExpr(x.R, y.R, m)
	case *lotos.Parallel:
		y, ok := b.(*lotos.Parallel)
		return ok && x.Kind == y.Kind && sameStrings(x.Sync, y.Sync) &&
			matchExpr(x.L, y.L, m) && matchExpr(x.R, y.R, m)
	case *lotos.Enable:
		y, ok := b.(*lotos.Enable)
		return ok && matchExpr(x.L, y.L, m) && matchExpr(x.R, y.R, m)
	case *lotos.Disable:
		y, ok := b.(*lotos.Disable)
		return ok && matchExpr(x.L, y.L, m) && matchExpr(x.R, y.R, m)
	case *lotos.Hide:
		y, ok := b.(*lotos.Hide)
		return ok && sameStrings(x.Gates, y.Gates) && matchExpr(x.Body, y.Body, m)
	case *lotos.ProcRef:
		y, ok := b.(*lotos.ProcRef)
		if !ok || x.Name != y.Name || x.Occ != y.Occ {
			return false
		}
		// Same name in the same definition block resolves to the same
		// definition; when resolution already ran, require it explicitly.
		if x.Def != nil && y.Def != nil && x.Def != y.Def {
			return false
		}
		return m.pair(x.ID(), y.ID())
	}
	return false
}

// matchEvent matches two events. Peer places, service names/places, tags and
// static occurrence parameters must be exactly equal (they are global); the
// message node numbers are mapped through the bijection and must agree on
// flush semantics, which are a function of the node number.
func matchEvent(a, b lotos.Event, m *renameMatcher) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case lotos.EvInternal:
		return true
	case lotos.EvService:
		return a.Name == b.Name && a.Place == b.Place
	default: // EvSend, EvRecv
		if a.Place != b.Place || a.Tag != b.Tag || a.Occ != b.Occ {
			return false
		}
		if a.Tag == "" && core.FlushingMsgID(a.Node) != core.FlushingMsgID(b.Node) {
			return false
		}
		return m.pair(a.Node, b.Node)
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// collectRenameIDs visits every renameable identifier in an expression: the
// node numbers of untagged AND tagged message events (both enter in-flight
// message identity) and process call-site ids.
func collectRenameIDs(e lotos.Expr, fn func(int)) {
	lotos.Walk(e, func(x lotos.Expr) {
		switch n := x.(type) {
		case *lotos.Prefix:
			if n.Ev.IsMessage() {
				fn(n.Ev.Node)
			}
		case *lotos.ProcRef:
			fn(n.ID())
		}
	})
}

// collectDefIDs visits the renameable identifiers of every process definition
// body (recursively through nested definition blocks) — the shared part of
// the entity text that every column instantiates.
func collectDefIDs(blk *lotos.DefBlock, fn func(int)) {
	for _, pd := range blk.Procs {
		collectRenameIDs(pd.Body.Expr, fn)
		collectDefIDs(pd.Body, fn)
	}
}

// renameID maps one identifier of column col into column 0's namespace.
// Shared identifiers map to themselves. Sets *ok to false when the
// identifier belongs to a different column (the expression mixes columns and
// cannot be canonicalized).
func (sym *symmetry) renameID(id, col int, ok *bool) int {
	owner, private := sym.colOf[id]
	if !private {
		return id
	}
	if owner != col {
		*ok = false
		return id
	}
	if col == 0 {
		return id
	}
	if to, found := sym.rename[col][id]; found {
		return to
	}
	*ok = false
	return id
}

// renameOcc maps every numeric component of an occurrence path (the chain of
// call-site node numbers built by lts.Env.Instantiate) through the column
// renaming. Non-numeric components (the symbolic "s") pass through.
func (sym *symmetry) renameOcc(occ string, col int, ok *bool) string {
	if occ == "" || col == 0 && len(sym.colOf) == 0 {
		return occ
	}
	parts := strings.Split(occ, "/")
	changed := false
	for i, part := range parts {
		id, err := strconv.Atoi(part)
		if err != nil {
			continue
		}
		to := sym.renameID(id, col, ok)
		if to != id {
			parts[i] = strconv.Itoa(to)
			changed = true
		}
	}
	if !changed {
		return occ
	}
	return strings.Join(parts, "/")
}

// occColumns adds the owning columns of an occurrence path's components to
// the set.
func (sym *symmetry) occColumns(occ string, add func(int)) {
	for _, part := range strings.Split(occ, "/") {
		if id, err := strconv.Atoi(part); err == nil {
			if c, private := sym.colOf[id]; private {
				add(c)
			}
		}
	}
}

// canonSym renders the column-col expression in the exact shape of
// lotos.Canon with every column-private identifier renamed into column 0's
// namespace, so two columns in the same local configuration (modulo the
// renaming) render identically. Returns ok=false when the expression mixes
// identifiers from several columns.
func (sym *symmetry) canonSym(e lotos.Expr, col int) (string, bool) {
	var b strings.Builder
	ok := true
	sym.writeCanonSym(&b, e, col, &ok)
	return b.String(), ok
}

func (sym *symmetry) writeCanonSym(b *strings.Builder, e lotos.Expr, col int, ok *bool) {
	switch x := e.(type) {
	case *lotos.Stop:
		b.WriteString("0")
	case *lotos.Exit:
		b.WriteString("X")
	case *lotos.Empty:
		b.WriteString("E")
	case *lotos.ProcRef:
		b.WriteString("P(")
		b.WriteString(x.Name)
		b.WriteString("@")
		b.WriteString(strconv.Itoa(sym.renameID(x.ID(), col, ok)))
		b.WriteString("^")
		b.WriteString(sym.renameOcc(x.Occ, col, ok))
		b.WriteString(")")
	case *lotos.Prefix:
		sym.writeEventSym(b, x.Ev, col, ok)
		if x.Ev.Kind == lotos.EvInternal {
			b.WriteString("i")
		}
		b.WriteString(".")
		sym.writeCanonSym(b, x.Cont, col, ok)
	case *lotos.Choice:
		b.WriteString("(")
		sym.writeCanonSym(b, x.L, col, ok)
		b.WriteString("+")
		sym.writeCanonSym(b, x.R, col, ok)
		b.WriteString(")")
	case *lotos.Parallel:
		b.WriteString("(")
		sym.writeCanonSym(b, x.L, col, ok)
		switch x.Kind {
		case lotos.ParInterleave:
			b.WriteString("|||")
		case lotos.ParFull:
			b.WriteString("||")
		default:
			b.WriteString("|[" + lotos.FormatGateSet(x.Sync) + "]|")
		}
		sym.writeCanonSym(b, x.R, col, ok)
		b.WriteString(")")
	case *lotos.Enable:
		b.WriteString("(")
		sym.writeCanonSym(b, x.L, col, ok)
		b.WriteString(">>")
		sym.writeCanonSym(b, x.R, col, ok)
		b.WriteString(")")
	case *lotos.Disable:
		b.WriteString("(")
		sym.writeCanonSym(b, x.L, col, ok)
		b.WriteString("[>")
		sym.writeCanonSym(b, x.R, col, ok)
		b.WriteString(")")
	case *lotos.Hide:
		b.WriteString("hide[" + lotos.FormatGateSet(x.Gates) + "](")
		sym.writeCanonSym(b, x.Body, col, ok)
		b.WriteString(")")
	default:
		*ok = false
	}
}

// writeEventSym renders an event gate exactly as lotos.Event.Gate does,
// with the message node number and occurrence path renamed.
func (sym *symmetry) writeEventSym(b *strings.Builder, ev lotos.Event, col int, ok *bool) {
	switch ev.Kind {
	case lotos.EvService:
		b.WriteString(ev.Name)
		b.WriteString("@")
		b.WriteString(strconv.Itoa(ev.Place))
	case lotos.EvSend, lotos.EvRecv:
		if ev.Kind == lotos.EvSend {
			b.WriteString("s@")
		} else {
			b.WriteString("r@")
		}
		b.WriteString(strconv.Itoa(ev.Place))
		b.WriteString(":")
		if ev.Tag != "" {
			b.WriteString("t")
			b.WriteString(ev.Tag)
		} else {
			b.WriteString(strconv.Itoa(sym.renameID(ev.Node, col, ok)))
			b.WriteString("#")
			b.WriteString(sym.renameOcc(ev.Occ, col, ok))
		}
	}
}

// symColsFor splits a runtime local state into its k column sub-expressions
// and digests each column's renamed canonical form. The ||| spine persists
// through every SOS step (transParallel always rebuilds the Parallel node),
// so every reachable local state decomposes; a nil result (shape mismatch or
// column mixing) falls the whole global state back to identity keying, which
// is sound — only the reduction is lost.
func (sym *symmetry) symColsFor(e lotos.Expr) [][16]byte {
	parts := splitColumns(e, sym.k)
	if parts == nil {
		return nil
	}
	out := make([][16]byte, sym.k)
	for j, part := range parts {
		canon, ok := sym.canonSym(part, j)
		if !ok {
			return nil
		}
		out[j] = digest16([]byte(canon))
	}
	return out
}

// Message classification for canonical keys.
const (
	msgColShared = -1 // touches no column-private identifier
	msgColPoison = -2 // touches several columns: no canonical key exists
)

// msgMeta is the symmetry view of one interned message: the column that owns
// it and the digest of its column-0 renaming (equal to the msgSum its
// column-0 counterpart would have; equal to the plain msgSum for shared and
// column-0 messages).
type msgMeta struct {
	col  int32
	norm [16]byte
}

// classify determines which column an in-flight message belongs to — via its
// node number and the call-site components of its occurrence path — and
// digests its column-0 renaming with exactly the framing of msgIDLocked.
func (sym *symmetry) classify(m message, plain [16]byte) msgMeta {
	col := msgColShared
	mixed := false
	add := func(c int) {
		switch col {
		case msgColShared:
			col = c
		case c:
		default:
			mixed = true
		}
	}
	if c, private := sym.colOf[m.Node]; private {
		add(c)
	}
	sym.occColumns(m.Occ, add)
	if mixed {
		return msgMeta{col: msgColPoison}
	}
	if col == msgColShared || col == 0 {
		return msgMeta{col: int32(col), norm: plain}
	}
	ok := true
	node := sym.renameID(m.Node, col, &ok)
	occ := sym.renameOcc(m.Occ, col, &ok)
	if !ok {
		return msgMeta{col: msgColPoison}
	}
	buf := make([]byte, 0, 32)
	buf = binary.AppendUvarint(buf, uint64(len(m.Tag)))
	buf = append(buf, m.Tag...)
	buf = binary.AppendUvarint(buf, uint64(uint32(node)))
	buf = binary.AppendUvarint(buf, uint64(len(occ)))
	buf = append(buf, occ...)
	return msgMeta{col: int32(col), norm: digest16(buf)}
}

// canonKeyLocked builds the canonical (orbit-representative) key of a global
// state: the columns are sorted by their full signature — per-place column
// digests plus the column's queue footprint — and the state is re-encoded in
// that order. Two states in the same permutation orbit sort to the same
// encoding; conversely an equal encoding reconstructs the state up to a
// column permutation, so the key never merges states outside one orbit.
// (Columns with equal signatures necessarily have empty queue footprints —
// a queued message occupies one concrete position, which would differ — so
// sort ties are genuinely interchangeable and the key is well defined.)
//
// Returns ok=false — fall back to the identity key — when any local state
// fails to decompose or any in-flight message mixes columns. Both properties
// are invariant under column permutation, so mixing canonical and identity
// keys within one exploration cannot merge or split an orbit incorrectly.
// Caller holds s.mu (read).
func (s *System) canonKeyLocked(g *gstate) (string, bool) {
	sym := s.sym
	k := sym.k
	cols := make([][][16]byte, len(g.locals)) // place -> column -> digest
	for idx, id := range g.locals {
		sc := s.local[idx][id].symCols
		if sc == nil {
			return "", false
		}
		cols[idx] = sc
	}
	// Per-column signatures: local digests at every place, then the queue
	// footprint (slot, position, normalized content) of the column's
	// in-flight messages.
	sigs := make([][]byte, k)
	for c := 0; c < k; c++ {
		sig := make([]byte, 0, len(g.locals)*16+16)
		for idx := range g.locals {
			sig = append(sig, cols[idx][c][:]...)
		}
		sigs[c] = sig
	}
	for slot, q := range g.chans {
		for pos, mid := range q {
			meta := &s.msgMeta[mid]
			switch meta.col {
			case msgColPoison:
				return "", false
			case msgColShared:
			default:
				sig := sigs[meta.col]
				sig = binary.AppendUvarint(sig, uint64(slot))
				sig = binary.AppendUvarint(sig, uint64(pos))
				sig = append(sig, meta.norm[:]...)
				sigs[meta.col] = sig
			}
		}
	}
	order := make([]int, k)
	for c := range order {
		order[c] = c
	}
	sort.SliceStable(order, func(a, b int) bool {
		return bytes.Compare(sigs[order[a]], sigs[order[b]]) < 0
	})
	identity := true
	rank := make([]int, k)
	for pos, c := range order {
		rank[c] = pos
		if c != pos {
			identity = false
		}
	}
	if !identity {
		s.orbitsCollapsed.Add(1)
	}
	// Re-encode the state with columns in canonical order. The leading byte
	// separates this digest domain from binaryKeyLocked's, so a canonical
	// key can never collide with an identity key of a different state.
	buf := make([]byte, 0, 512)
	buf = append(buf, 0xC5)
	for idx := range g.locals {
		for _, c := range order {
			buf = append(buf, cols[idx][c][:]...)
		}
	}
	for slot, q := range g.chans {
		if len(q) == 0 {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(slot)+1)
		buf = binary.AppendUvarint(buf, uint64(len(q)))
		for _, mid := range q {
			meta := &s.msgMeta[mid]
			if meta.col == msgColShared {
				buf = append(buf, 0)
				buf = append(buf, s.msgSum[mid][:]...)
			} else {
				buf = append(buf, 1, byte(rank[meta.col]))
				buf = append(buf, meta.norm[:]...)
			}
		}
	}
	sum := digest16(buf)
	return string(sum[:]), true
}
