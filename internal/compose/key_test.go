package compose

import "testing"

// testSystem builds a bare System with two places and hand-planted local
// states, for white-box key-encoding tests.
func testSystem() *System {
	sys := &System{
		Places:   []int{1, 2},
		placeIdx: map[int]int{1: 0, 2: 1},
		msgIDs:   map[message]int32{},
		intern:   []map[string]int32{{}, {}},
		local: [][]localState{
			{{sum: digest16([]byte("entity1-state0"))}},
			{{sum: digest16([]byte("entity2-state0"))}},
		},
	}
	return sys
}

// gstateWith builds a two-place global state with the given queue on the
// channel 1->2 (slot 0*2+1 = 1).
func gstateWith(queue ...int32) *gstate {
	g := &gstate{locals: []int32{0, 0}, chans: make([][]int32, 4)}
	g.chans[1] = queue
	return g
}

// TestKeyEncodingCollisions pins the fix for the historical key/message
// encoding ambiguities: the old rendering joined messages with "," and
// printed node messages as "node#occ", so a symbolic tag shaped like "7#0"
// collided with the node-7/occurrence-"0" message, and a tag containing a
// separator ("a,b") collided with two adjacent messages "a","b". Both the
// binary keys and the legacy string keys must now keep all of these states
// distinct.
func TestKeyEncodingCollisions(t *testing.T) {
	sys := testSystem()
	tagLikeNode := sys.msgIDLocked(message{Tag: "7#0"})
	nodeMsg := sys.msgIDLocked(message{Node: 7, Occ: "0"})
	tagWithSep := sys.msgIDLocked(message{Tag: "a,b"})
	tagA := sys.msgIDLocked(message{Tag: "a"})
	tagB := sys.msgIDLocked(message{Tag: "b"})

	cases := []struct {
		name string
		a, b *gstate
	}{
		{"tag shaped like node#occ", gstateWith(tagLikeNode), gstateWith(nodeMsg)},
		{"tag containing separator", gstateWith(tagWithSep), gstateWith(tagA, tagB)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if ka, kb := sys.binaryKeyLocked(c.a), sys.binaryKeyLocked(c.b); ka == kb {
				t.Errorf("binary keys collide: %x", ka)
			}
			if ka, kb := sys.stringKeyLocked(c.a), sys.stringKeyLocked(c.b); ka == kb {
				t.Errorf("string keys collide: %q", ka)
			}
		})
	}

	// Sanity: independently built but equal states share keys.
	if sys.binaryKeyLocked(gstateWith(tagA)) != sys.binaryKeyLocked(gstateWith(tagA)) {
		t.Error("equal states got distinct binary keys")
	}
	if sys.stringKeyLocked(gstateWith(tagA)) != sys.stringKeyLocked(gstateWith(tagA)) {
		t.Error("equal states got distinct string keys")
	}
}

// TestKeySlotAndLengthFraming checks the remaining dimensions of the
// encodings: which slot holds a queue, and how a queue splits across
// slots, must always be part of the key.
func TestKeySlotAndLengthFraming(t *testing.T) {
	sys := testSystem()
	tagA := sys.msgIDLocked(message{Tag: "a"})

	onSlot1 := gstateWith(tagA)
	onSlot2 := &gstate{locals: []int32{0, 0}, chans: make([][]int32, 4)}
	onSlot2.chans[2] = []int32{tagA} // channel 2->1
	if sys.binaryKeyLocked(onSlot1) == sys.binaryKeyLocked(onSlot2) {
		t.Error("binary key ignores channel slot")
	}
	if sys.stringKeyLocked(onSlot1) == sys.stringKeyLocked(onSlot2) {
		t.Error("string key ignores channel slot")
	}

	empty := gstateWith()
	if sys.binaryKeyLocked(onSlot1) == sys.binaryKeyLocked(empty) {
		t.Error("binary key ignores queue contents")
	}

	// Same multiset of messages split differently across two slots.
	split1 := &gstate{locals: []int32{0, 0}, chans: make([][]int32, 4)}
	split1.chans[1] = []int32{tagA, tagA}
	split2 := &gstate{locals: []int32{0, 0}, chans: make([][]int32, 4)}
	split2.chans[1] = []int32{tagA}
	split2.chans[2] = []int32{tagA}
	if sys.binaryKeyLocked(split1) == sys.binaryKeyLocked(split2) {
		t.Error("binary key ignores how messages distribute over channels")
	}
	if sys.stringKeyLocked(split1) == sys.stringKeyLocked(split2) {
		t.Error("string key ignores how messages distribute over channels")
	}
}

// TestBinaryKeyContentDerived checks the property the parallel explorer
// depends on: binary keys are derived from content only, so two System
// instances that interned the same messages in DIFFERENT orders still
// assign equal keys to equal global states.
func TestBinaryKeyContentDerived(t *testing.T) {
	sysA, sysB := testSystem(), testSystem()
	// Interning order differs: ids swap between the two systems.
	a1, a2 := sysA.msgIDLocked(message{Tag: "x"}), sysA.msgIDLocked(message{Node: 3, Occ: "0/1"})
	b2, b1 := sysB.msgIDLocked(message{Node: 3, Occ: "0/1"}), sysB.msgIDLocked(message{Tag: "x"})
	if a1 == b1 && a2 == b2 {
		t.Fatal("test broken: interning orders coincide")
	}
	ka := sysA.binaryKeyLocked(gstateWith(a1, a2))
	kb := sysB.binaryKeyLocked(gstateWith(b1, b2))
	if ka != kb {
		t.Errorf("binary keys depend on interning order: %x vs %x", ka, kb)
	}
}
