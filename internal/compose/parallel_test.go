package compose

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/equiv"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// corpusLimits avoids MaxStates truncation on every corpus spec: a capped
// exploration may cut different (equally valid) prefixes serial vs
// parallel, so the cross-check needs closure within the observable bound.
var corpusLimits = lts.Limits{MaxObsDepth: 5, MaxStates: 400000}

func exploreCorpusSpec(t *testing.T, entities map[int]*lotos.Spec, cfg Config) *lts.Graph {
	t.Helper()
	sys, err := New(entities, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sys.Explore()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// adjacencyByKey renders each state's sorted outgoing edge set keyed by the
// state's key — a numbering-independent graph signature.
func adjacencyByKey(g *lts.Graph) map[string][]string {
	adj := make(map[string][]string, len(g.Keys))
	for s, es := range g.Edges {
		out := make([]string, len(es))
		for i, e := range es {
			out[i] = e.Label.String() + "\x00" + g.Keys[e.To]
		}
		sort.Strings(out)
		adj[g.Keys[s]] = out
	}
	return adj
}

// TestParallelMatchesSerialOnCorpus cross-checks the parallel explorer
// against the serial oracle over the full specs/ corpus: identical
// state-key sets, identical sizes, and weakly bisimilar graphs.
func TestParallelMatchesSerialOnCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.spec"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus specs found: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			d, err := core.Derive(lotos.MustParse(string(src)), core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			serial := exploreCorpusSpec(t, d.Entities, Config{Limits: corpusLimits})
			par := exploreCorpusSpec(t, d.Entities, Config{Limits: corpusLimits, Parallel: true, Workers: 4})

			// Truncation at the observable bound is fine (the cut depends
			// only on the depth fixpoint, which both explorers share); only
			// the MaxStates cap cuts order-dependent prefixes, so the cap
			// must not be the truncating factor.
			if serial.NumStates() >= corpusLimits.MaxStates || par.NumStates() >= corpusLimits.MaxStates {
				t.Fatalf("state cap hit (serial=%d parallel=%d); raise corpusLimits.MaxStates",
					serial.NumStates(), par.NumStates())
			}
			if serial.NumStates() != par.NumStates() || serial.NumTransitions() != par.NumTransitions() {
				t.Errorf("sizes differ: serial %d/%d, parallel %d/%d",
					serial.NumStates(), serial.NumTransitions(), par.NumStates(), par.NumTransitions())
			}
			sk := append([]string{}, serial.Keys...)
			pk := append([]string{}, par.Keys...)
			sort.Strings(sk)
			sort.Strings(pk)
			if !reflect.DeepEqual(sk, pk) {
				t.Error("state key sets differ between serial and parallel exploration")
			}
			// Per-key adjacency equality: the graphs are isomorphic under the
			// key bijection — strictly stronger than weak bisimilarity, and
			// cheap enough for the 100k+-state corpus entries.
			if !reflect.DeepEqual(adjacencyByKey(serial), adjacencyByKey(par)) {
				t.Error("per-key adjacency differs between serial and parallel exploration")
			}
			// The saturation-based bisimulation check is quadratic in states;
			// run it as an extra semantic check on the small graphs only.
			if serial.NumStates() <= 5000 && !equiv.WeakBisimilar(serial, par) {
				t.Error("serial and parallel graphs are not weakly bisimilar")
			}
			if len(serial.Deadlocks()) != len(par.Deadlocks()) {
				t.Errorf("deadlock counts differ: %d vs %d", len(serial.Deadlocks()), len(par.Deadlocks()))
			}
		})
	}
}

// TestParallelExploreDeterministic requires two fresh parallel explorations
// of the same entities to produce bit-identical graphs (state numbering
// included), despite worker scheduling nondeterminism.
func TestParallelExploreDeterministic(t *testing.T) {
	d, err := core.Derive(lotos.MustParse("SPEC a1; b2; c3; exit [> d3; exit ENDSPEC"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *lts.Graph {
		return exploreCorpusSpec(t, d.Entities, Config{Limits: corpusLimits, Parallel: true, Workers: 8})
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Keys, b.Keys) {
		t.Fatal("state numbering differs between identical parallel runs")
	}
	if !reflect.DeepEqual(a.Edges, b.Edges) {
		t.Error("edges differ between identical parallel runs")
	}
}

// TestStringKeysMatchBinaryKeysStructurally explores the same system under
// both key encodings and checks they agree on the graph structure — the
// encodings must merge exactly the same global states.
func TestStringKeysMatchBinaryKeysStructurally(t *testing.T) {
	d, err := core.Derive(lotos.MustParse("SPEC a1; b2; exit ||| c3; d1; exit ENDSPEC"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bin := exploreCorpusSpec(t, d.Entities, Config{Limits: corpusLimits})
	str := exploreCorpusSpec(t, d.Entities, Config{Limits: corpusLimits, StringKeys: true})
	if bin.NumStates() != str.NumStates() || bin.NumTransitions() != str.NumTransitions() {
		t.Errorf("key encodings disagree on graph size: binary %d/%d, string %d/%d",
			bin.NumStates(), bin.NumTransitions(), str.NumStates(), str.NumTransitions())
	}
	if !equiv.WeakBisimilar(bin, str) {
		t.Error("binary-key and string-key graphs are not weakly bisimilar")
	}
}
