package compose

import (
	"sort"

	"repro/internal/core"
	"repro/internal/lotos"
)

// This file implements the message optimizer the paper defers to [Khen 89]:
// "the derivation rules may lead sometimes to a local exchange of messages
// ... [Khen 89] presents some methods to eliminate non-essential messages".
//
// Instead of syntactic redundancy criteria, the optimizer here is
// semantics-driven and self-verifying: it removes one message group at a
// time (all sends and receives carrying one message identification) and
// keeps the removal only if the composed system still provides the service
// (the same check as Verify). The result is a protocol that is correct by
// the same standard as the original, with a message count that is locally
// minimal with respect to whole-group removal.

// OptimizeResult reports what the optimizer achieved.
type OptimizeResult struct {
	// Entities are the optimized protocol entities.
	Entities map[int]*lotos.Spec
	// Removed lists the message identifications whose send/receive groups
	// were eliminated, in removal order.
	Removed []int
	// Tried is the number of candidate groups examined.
	Tried int
	// Before and After count send interactions in the entity texts.
	Before, After int
}

// OptimizeMessages removes non-essential synchronization messages from the
// derived entities of a service. Each distinct message identification is
// tentatively removed (every send and every matching receive of that
// identification, across all entities); the removal is kept when the
// composed system still passes Verify against the service. Candidates are
// processed in ascending identification order, re-verifying after each
// accepted removal, so the output is deterministic.
//
// The verification options bound the (repeated) correctness checks; they
// should be at least as strong as the check used to accept the original
// derivation.
func OptimizeMessages(service *lotos.Spec, entities map[int]*lotos.Spec, opts VerifyOptions) (*OptimizeResult, error) {
	res := &OptimizeResult{
		Entities: cloneEntities(entities),
		Before:   countSends(entities),
	}
	// The unoptimized protocol must analyze cleanly; a failure here is a
	// real error, not a rejected candidate.
	if _, err := Verify(service, res.Entities, opts); err != nil {
		return nil, err
	}
	for {
		ids := messageIDs(res.Entities)
		improved := false
		for _, id := range ids {
			trial := removeMessage(res.Entities, id)
			res.Tried++
			rep, err := Verify(service, trial, opts)
			if err != nil {
				// A removal may make an entity unanalyzable (e.g. a
				// leading Proc_Synch receive guarded a recursive call and
				// the recursion became unguarded): reject the candidate.
				continue
			}
			if rep.Ok() {
				res.Entities = trial
				res.Removed = append(res.Removed, id)
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	res.After = countSends(res.Entities)
	return res, nil
}

func cloneEntities(entities map[int]*lotos.Spec) map[int]*lotos.Spec {
	out := make(map[int]*lotos.Spec, len(entities))
	for p, sp := range entities {
		out[p] = lotos.CloneSpec(sp)
	}
	return out
}

func countSends(entities map[int]*lotos.Spec) int {
	n := 0
	for _, sp := range entities {
		lotos.WalkSpec(sp, func(e lotos.Expr) {
			if pfx, ok := e.(*lotos.Prefix); ok && pfx.Ev.Kind == lotos.EvSend {
				n++
			}
		})
	}
	return n
}

// messageIDs collects the distinct numeric message identifications used by
// the entities, ascending.
func messageIDs(entities map[int]*lotos.Spec) []int {
	set := map[int]bool{}
	for _, sp := range entities {
		lotos.WalkSpec(sp, func(e lotos.Expr) {
			if pfx, ok := e.(*lotos.Prefix); ok && pfx.Ev.IsMessage() && pfx.Ev.Tag == "" {
				set[pfx.Ev.Node] = true
			}
		})
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// removeMessage returns a copy of the entities with every send and receive
// of the given message identification eliminated and the specifications
// re-normalized.
func removeMessage(entities map[int]*lotos.Spec, id int) map[int]*lotos.Spec {
	out := make(map[int]*lotos.Spec, len(entities))
	for p, sp := range entities {
		c := lotos.CloneSpec(sp)
		stripBlock(c.Root, id)
		core.SimplifySpec(c)
		out[p] = c
	}
	return out
}

func stripBlock(blk *lotos.DefBlock, id int) {
	blk.Expr = strip(blk.Expr, id)
	for _, pd := range blk.Procs {
		stripBlock(pd.Body, id)
	}
}

// strip rewrites e with every prefix of the doomed message removed: the
// prefix collapses into its continuation (a terminated continuation becomes
// the neutral Empty so the simplifier can elide the whole position).
func strip(e lotos.Expr, id int) lotos.Expr {
	switch x := e.(type) {
	case *lotos.Prefix:
		if x.Ev.IsMessage() && x.Ev.Tag == "" && x.Ev.Node == id {
			switch x.Cont.(type) {
			case *lotos.Exit, *lotos.Empty:
				return lotos.Emp()
			default:
				return strip(x.Cont, id)
			}
		}
		x.Cont = strip(x.Cont, id)
		return x
	case *lotos.Choice:
		x.L = strip(x.L, id)
		x.R = strip(x.R, id)
		return x
	case *lotos.Parallel:
		x.L = strip(x.L, id)
		x.R = strip(x.R, id)
		return x
	case *lotos.Enable:
		x.L = strip(x.L, id)
		x.R = strip(x.R, id)
		return x
	case *lotos.Disable:
		x.L = strip(x.L, id)
		x.R = strip(x.R, id)
		return x
	case *lotos.Hide:
		x.Body = strip(x.Body, id)
		return x
	default:
		return e
	}
}
