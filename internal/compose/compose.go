// Package compose builds the global behaviour of a derived protocol — the
// right-hand side of the paper's correctness relation (Section 5):
//
//	hide G in ( ( T_1(S) ||| T_2(S) ||| ... ||| T_n(S) ) |[G]| Medium )
//
// as an explicit product transition system over the entity states and the
// channel contents of the communication medium, with all message
// interactions (the set G) hidden. The observable labels are exactly the
// service primitives plus successful termination, so the result can be
// compared against the service specification with internal/equiv.
//
// The medium follows Section 5.2: one FIFO channel per ordered pair of
// places, no loss, duplication or reordering. The channel capacity is
// configurable; the paper's proof assumes capacity 1, which is the default.
// Successful termination synchronizes across the entities only — the
// paper's Medium never terminates, and its algebraic proof composes
// termination over the entities alone.
//
// # State keys
//
// Global states are identified by a compact fixed-layout binary key: the
// 16-byte content digests of the entities' interned local states (one per
// place, in place order) followed by the non-empty channels (slot number,
// queue length, one digest per in-flight message), hashed once more to a
// fixed 16 bytes. Every component is derived from *content* (the canonical
// local expression, the message's tag/node/occurrence), never from interning
// order, so the key of a global state is identical no matter which
// exploration order — serial or parallel — first reached it. Entity-local
// states and messages are interned to small integers per System, so queue
// operations and equality checks never allocate or compare strings.
package compose

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// DefaultChannelCap is the per-channel capacity used by the Section-5 proof.
const DefaultChannelCap = 1

// Config tunes the product construction.
type Config struct {
	// ChannelCap bounds the number of messages in transit per ordered
	// channel (default 1). Larger capacities approximate the unbounded
	// medium of the service architecture.
	ChannelCap int
	// Limits bounds the exploration of the product state space.
	Limits lts.Limits
	// Reductions selects the state-space reductions (POR, symmetry, disk
	// spilling) applied during exploration. The zero value selects the
	// default set (POR only); RedNone selects none. See Reductions.
	Reductions Reductions
	// NoReduction disables every reduction and explores every interleaving.
	// Exponentially slower; kept for the reduction-soundness tests and the
	// ablation benchmark.
	//
	// Deprecated: set Reductions to RedNone instead. Ignored when Reductions
	// is non-zero.
	NoReduction bool
	// SpillBudget bounds the in-memory visited index (in bytes) when the
	// RedSpill reduction is enabled; past it, sorted key runs spill to temp
	// files. 0 selects lts.DefaultSpillBudget.
	SpillBudget int64
	// SpillDir is the directory for spilled runs ("" = the OS temp dir).
	SpillDir string
	// Parallel explores the product with the level-synchronous parallel
	// BFS (lts.ExploreSourceParallel) instead of the serial explorer. The
	// resulting graph has the same state-key set and weakly bisimilar
	// behaviour; state numbering is deterministic run to run.
	Parallel bool
	// Workers sizes the parallel explorer's worker pool (0 = GOMAXPROCS).
	// Ignored unless Parallel is set.
	Workers int
	// StringKeys selects the legacy human-readable string state keys
	// instead of the binary digests — slower and allocation-heavy; kept
	// for the key-encoding ablation benchmark and for debugging. String
	// keys embed per-run interned ids, so they are not comparable across
	// System instances.
	StringKeys bool
	// Faults composes medium faults — message loss, duplication, adjacent
	// reordering — into the product as internal medium transitions. The
	// zero value is the paper's reliable medium. See FaultModel.
	Faults FaultModel
}

// System is a set of protocol entities ready for product exploration.
type System struct {
	// Places lists the entity places in ascending order.
	Places []int
	// Entities holds one specification per place.
	Entities map[int]*lotos.Spec

	envs     []*lts.Env  // indexed like Places; nil for preset systems
	placeIdx map[int]int // place number -> index in Places
	cfg      Config
	// red is the resolved reduction set (Config.effectiveReductions); sym is
	// the detected instance symmetry, nil when RedSymmetry is off or no
	// symmetry exists.
	red Reductions
	sym *symmetry
	// Reduction telemetry. The counters are atomic because the parallel
	// explorer's workers share the system; spillStats is written once by
	// Explore (single-threaded) after the spilling explorer returns.
	orbitsCollapsed atomic.Int64
	ampleHits       atomic.Int64
	spillStats      *lts.SpillStats
	// preset marks a system whose local tables were preloaded from quotient
	// graphs (NewCompositional): every local state is already derived, state
	// ids mirror the quotient graphs' state numbering (0 = initial class),
	// and no SOS environment exists.
	preset bool

	// Interning tables, shared by every exploration of the system and —
	// under the parallel explorer — by every worker, hence the lock.
	// Entity-local state interning mirrors the paper's observation that
	// the product factors through the (much smaller) local transition
	// systems: every distinct entity expression gets a small integer id
	// per place, local transitions are derived once per local state, and
	// messages are interned to small integers per system.
	mu     sync.RWMutex
	intern []map[string]int32 // place idx -> canon -> local id
	local  [][]localState     // place idx -> local id -> state
	msgIDs  map[message]int32 // message -> id
	msgs    []message         // id -> message (diagnostics, string keys)
	msgSum  [][16]byte        // id -> content digest
	msgMeta []msgMeta         // id -> symmetry classification (sym != nil only)
}

// localState is one interned entity-local state. Transitions are derived
// lazily (entities may be infinite-state under recursion, so the local
// graphs cannot be built eagerly).
type localState struct {
	expr lotos.Expr
	// sum is the 16-byte digest of the canonical expression — the state's
	// order-independent contribution to global state keys.
	sum     [16]byte
	derived bool
	trans   []cachedTrans
	// symCols holds the per-column renamed-canonical digests under symmetry
	// reduction (nil when symmetry is off or the state does not decompose
	// into the detected columns).
	symCols [][16]byte
}

// cachedTrans is an entity-local transition targeting an interned state,
// with the message bookkeeping resolved once at derivation time.
type cachedTrans struct {
	label lts.Label
	to    int32 // local state id
	peer  int32 // place index of the message peer, -1 for non-message labels
	msg   int32 // interned message id (sent or expected), -1 otherwise
	flush bool  // receive carries interrupt-handshake flush semantics
}

// digest16 truncates a SHA-256 content digest to the 16 bytes used in keys.
func digest16(data []byte) (h [16]byte) {
	sum := sha256.Sum256(data)
	copy(h[:], sum[:16])
	return h
}

// internStateLocked assigns (or recalls) the local id of an entity
// expression. Caller holds s.mu.
func (s *System) internStateLocked(idx int, e lotos.Expr) int32 {
	key := lotos.Canon(e)
	if id, ok := s.intern[idx][key]; ok {
		return id
	}
	id := int32(len(s.local[idx]))
	s.intern[idx][key] = id
	st := localState{expr: e, sum: digest16([]byte(key))}
	if s.sym != nil {
		st.symCols = s.sym.symColsFor(e)
	}
	s.local[idx] = append(s.local[idx], st)
	return id
}

// msgIDLocked assigns (or recalls) the interned id of a message and its
// content digest. The digest input frames every field with its length, so
// no two distinct messages share an encoding — a tag shaped like "7#0"
// cannot collide with the node-7/occurrence-"0" message, and separator
// characters inside a tag cannot corrupt any framing. Caller holds s.mu.
func (s *System) msgIDLocked(m message) int32 {
	if id, ok := s.msgIDs[m]; ok {
		return id
	}
	id := int32(len(s.msgs))
	s.msgIDs[m] = id
	s.msgs = append(s.msgs, m)
	buf := make([]byte, 0, 32)
	buf = binary.AppendUvarint(buf, uint64(len(m.Tag)))
	buf = append(buf, m.Tag...)
	buf = binary.AppendUvarint(buf, uint64(uint32(m.Node)))
	buf = binary.AppendUvarint(buf, uint64(len(m.Occ)))
	buf = append(buf, m.Occ...)
	sum := digest16(buf)
	s.msgSum = append(s.msgSum, sum)
	if s.sym != nil {
		s.msgMeta = append(s.msgMeta, s.sym.classify(m, sum))
	}
	return id
}

// localTrans derives (once) and returns the transitions of a local state.
// Safe for concurrent use: cached results are returned under a read lock;
// the first derivation of a local state runs under the write lock, which
// also serializes the underlying (non-thread-safe) SOS environment.
func (s *System) localTrans(idx int, id int32) ([]cachedTrans, error) {
	s.mu.RLock()
	if st := &s.local[idx][id]; st.derived {
		trans := st.trans
		s.mu.RUnlock()
		return trans, nil
	}
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	st := &s.local[idx][id]
	if st.derived {
		return st.trans, nil
	}
	ts, err := s.envs[idx].Transitions(st.expr)
	if err != nil {
		return nil, err
	}
	out := make([]cachedTrans, len(ts))
	for i, t := range ts {
		ct := cachedTrans{label: t.Label, to: s.internStateLocked(idx, t.To), peer: -1, msg: -1}
		if t.Label.Kind == lts.LEvent {
			ev := t.Label.Ev
			if ev.Kind == lotos.EvSend || ev.Kind == lotos.EvRecv {
				pi, ok := s.placeIdx[ev.Place]
				if !ok {
					return nil, fmt.Errorf("message event %s targets unknown place %d", ev, ev.Place)
				}
				ct.peer = int32(pi)
				ct.msg = s.msgIDLocked(msgOf(ev))
				if ev.Kind == lotos.EvRecv {
					ct.flush = flushingRecv(ev)
				}
			}
		}
		out[i] = ct
	}
	// Re-take the pointer: internStateLocked may have grown the backing
	// array.
	st = &s.local[idx][id]
	st.trans = out
	st.derived = true
	return out, nil
}

// New prepares a system from derived entities. Each entity is resolved
// independently (entities have their own process name spaces).
func New(entities map[int]*lotos.Spec, cfg Config) (*System, error) {
	if cfg.ChannelCap <= 0 {
		cfg.ChannelCap = DefaultChannelCap
	}
	sys := &System{
		Entities: entities,
		placeIdx: map[int]int{},
		cfg:      cfg,
		red:      cfg.effectiveReductions(),
		msgIDs:   map[message]int32{},
	}
	for p := range entities {
		sys.Places = append(sys.Places, p)
	}
	sort.Ints(sys.Places)
	for idx, p := range sys.Places {
		env, err := lts.EnvFor(entities[p])
		if err != nil {
			return nil, fmt.Errorf("compose: entity %d: %w", p, err)
		}
		sys.envs = append(sys.envs, env)
		sys.placeIdx[p] = idx
		sys.intern = append(sys.intern, map[string]int32{})
		sys.local = append(sys.local, nil)
	}
	// Symmetry must be detected before any state or message is interned:
	// the canonical column digests and message classifications are computed
	// at intern time. String keys embed raw interned ids and cannot be
	// canonicalized, so symmetry stays off under StringKeys.
	if sys.red&RedSymmetry != 0 && !cfg.StringKeys {
		sys.sym = detectSymmetry(sys.Places, entities)
	}
	return sys, nil
}

// message is one in-flight synchronization message.
type message struct {
	Node int
	Occ  string
	Tag  string
}

func msgOf(ev lotos.Event) message {
	return message{Node: ev.Node, Occ: ev.Occ, Tag: ev.Tag}
}

// flushingRecv reports whether a receive event carries the interrupt-
// handshake flush semantics: consuming it discards everything queued
// before it on its channel (the messages were addressed to the normal part
// the interrupt killed).
func flushingRecv(ev lotos.Event) bool {
	return ev.Tag == "" && core.FlushingMsgID(ev.Node)
}

// consumeIDs returns the channel contents after consuming the wanted
// message, honouring flush semantics, or ok=false when not consumable.
func consumeIDs(q []int32, want int32, flush bool) (rest []int32, ok bool) {
	if len(q) == 0 {
		return nil, false
	}
	if !flush {
		if q[0] != want {
			return nil, false
		}
		return append([]int32(nil), q[1:]...), true
	}
	for i, m := range q {
		if m == want {
			return append([]int32(nil), q[i+1:]...), true
		}
	}
	return nil, false
}

func (m message) String() string {
	if m.Tag != "" {
		return m.Tag
	}
	return fmt.Sprintf("%d#%s", m.Node, m.Occ)
}

// gstate is one global state: the interned local-state ids of the entities
// (indexed like Places) and the channel contents as interned message-id
// queues, indexed by channel slot fromIdx*n + toIdx.
type gstate struct {
	locals []int32
	chans  [][]int32
}

// key builds the canonical global state key. Under symmetry reduction the
// key identifies the state's permutation orbit (see canonKeyLocked), falling
// back to the identity key for states no column permutation applies to.
func (s *System) key(g *gstate) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.cfg.StringKeys {
		return s.stringKeyLocked(g)
	}
	if s.sym != nil {
		if k, ok := s.canonKeyLocked(g); ok {
			return k
		}
	}
	return s.binaryKeyLocked(g)
}

// binaryKeyLocked assembles the fixed-layout binary key: one 16-byte local
// state digest per place, then for each non-empty channel its slot (+1),
// queue length and the queued messages' digests, all collapsed to a final
// 16-byte digest. The layout is unambiguous (fixed-size digest blocks,
// explicit lengths, channels in ascending slot order), so distinct global
// states never share a key input.
func (s *System) binaryKeyLocked(g *gstate) string {
	buf := make([]byte, 0, 512)
	for idx, id := range g.locals {
		sum := &s.local[idx][id].sum
		buf = append(buf, sum[:]...)
	}
	for slot, q := range g.chans {
		if len(q) == 0 {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(slot)+1)
		buf = binary.AppendUvarint(buf, uint64(len(q)))
		for _, mid := range q {
			sum := &s.msgSum[mid]
			buf = append(buf, sum[:]...)
		}
	}
	sum := sha256.Sum256(buf)
	return string(sum[:16])
}

// stringKeyLocked is the legacy human-readable key encoding, kept for the
// key-encoding ablation benchmark and for debugging. Message renderings are
// length-prefixed and kind-tagged so the historical collisions (a tag
// containing a separator or shaped like "node#occ") cannot merge distinct
// states, but the encoding still pays the fmt/strings allocation cost the
// binary keys avoid.
func (s *System) stringKeyLocked(g *gstate) string {
	var b strings.Builder
	for i, id := range g.locals {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(int(id)))
	}
	for slot, q := range g.chans {
		if len(q) == 0 {
			continue
		}
		fmt.Fprintf(&b, ";%d=", slot)
		for _, mid := range q {
			m := s.msgs[mid]
			if m.Tag != "" {
				fmt.Fprintf(&b, "t%d:%s,", len(m.Tag), m.Tag)
			} else {
				fmt.Fprintf(&b, "m%d#%d:%s,", m.Node, len(m.Occ), m.Occ)
			}
		}
	}
	return b.String()
}

// clone copies the state with one entity local state replaced. The channel
// queues are shared (only cloneChans callers mutate them).
func (g *gstate) clone(idx int, localID int32) *gstate {
	out := &gstate{locals: append([]int32(nil), g.locals...), chans: g.chans}
	out.locals[idx] = localID
	return out
}

// cloneChans additionally copies the channel slot table for mutation.
func (g *gstate) cloneChans(idx int, localID int32) *gstate {
	out := g.clone(idx, localID)
	out.chans = append([][]int32(nil), g.chans...)
	return out
}

// source implements lts.StateSource over the product system. Next is safe
// for concurrent use (the parallel explorer's workers share one source).
type source struct {
	sys *System
}

// Next derives all global transitions of a product state.
func (src *source) Next(state any) ([]lts.GenTransition, error) {
	out, _, err := src.sys.derive(state.(*gstate), false)
	return out, err
}

// msgString renders an interned message for diagnostics, under the lock (the
// msgs slice header moves when another goroutine interns a new message).
func (s *System) msgString(id int32) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.msgs[id].String()
}

// derive computes the global transitions of a product state:
//
//   - a service primitive of entity i -> observable transition;
//   - an internal action of entity i  -> internal transition;
//   - a send s_j(m) of entity i       -> internal transition enqueueing m on
//     channel i->j, enabled while the channel has room;
//   - a receive r_j(m) of entity i    -> internal transition consuming m,
//     enabled when m is at the head of channel j->i (FIFO);
//   - successful termination          -> one global δ when every entity can
//     terminate (δ synchronizes across the interleaved entities);
//   - a medium fault (per Config.Faults) -> internal transition dropping,
//     duplicating or swapping in-transit messages (see faultMoves).
//
// With annotate set it also returns one WitnessStep per transition — the
// concrete description (acting entity, local transition index, channel,
// message, fault) used to build replayable counterexamples. The two slices
// are index-aligned.
func (s *System) derive(g *gstate, annotate bool) ([]lts.GenTransition, []WitnessStep, error) {
	n := len(s.Places)
	var out []lts.GenTransition
	var steps []WitnessStep
	emit := func(t lts.GenTransition, st WitnessStep) {
		out = append(out, t)
		if annotate {
			steps = append(steps, st)
		}
	}

	// Ample-set partial-order reduction: if one entity's complete local
	// transition set qualifies as an ample set, fire exactly those
	// transitions as the state's global moves. Two shapes qualify:
	//
	//   - a sole internal action: invisible, touches no channel, so it
	//     commutes with every other entity's move and every medium fault,
	//     disables nothing, and commits no local choice (no alternative);
	//   - ALL local transitions are receives and EVERY one is consumable
	//     right now on a fault-free channel: receives are invisible, only
	//     this entity consumes its channels (senders append at the tail, so
	//     a peer's move neither disables a receive nor changes which message
	//     it consumes — flush receives discard the same prefix either way),
	//     and since the full enabled set of the entity is taken, no local
	//     choice branch is lost. Receives strictly decrease the number of
	//     queued messages, so an exploration can never cycle through
	//     ample-only states and starve another entity's moves (the ample-set
	//     cycle proviso holds for free).
	//
	// An entity with a blocked receive is NOT eligible — a peer's send could
	// enable it, committing the local choice differently — and neither are
	// mixed internal/receive sets. Sends are never eligible: with bounded
	// channels, reordering two sends onto one channel changes the FIFO
	// order. A receive does not commute with faults on its channel (losing
	// or duplicating the message it would consume leads elsewhere), so the
	// all-receives shape additionally requires its channels fault-free;
	// the sole-internal shape stays eligible under every fault model.
	if s.red&RedPOR != 0 {
	ample:
		for idx, localID := range g.locals {
			ts, err := s.localTrans(idx, localID)
			if err != nil {
				return nil, nil, fmt.Errorf("entity %d: %w", s.Places[idx], err)
			}
			if len(ts) == 0 {
				continue
			}
			if len(ts) == 1 && ts[0].label.Kind == lts.LInternal {
				t := ts[0]
				next := g.clone(idx, t.to)
				emit(lts.GenTransition{Label: lts.Internal(), Key: s.key(next), To: next},
					WitnessStep{Kind: StepInternal, Place: s.Places[idx], TIndex: 0, Label: "i"})
				s.ampleHits.Add(1)
				return out, steps, nil
			}
			for _, t := range ts {
				if t.label.Kind != lts.LEvent || t.label.Ev.Kind != lotos.EvRecv {
					continue ample
				}
			}
			rests := make([][]int32, len(ts))
			for i, t := range ts {
				slot := int(t.peer)*n + idx
				if !s.channelFaultFree(slot) {
					continue ample
				}
				rest, ok := consumeIDs(g.chans[slot], t.msg, t.flush)
				if !ok {
					continue ample // a blocked receive disqualifies the whole set
				}
				rests[i] = rest
			}
			for i, t := range ts {
				slot := int(t.peer)*n + idx
				next := g.cloneChans(idx, t.to)
				next.chans[slot] = rests[i]
				var st WitnessStep
				if annotate {
					st = s.recvStep(idx, i, t)
				}
				emit(lts.GenTransition{Label: lts.Internal(), Key: s.key(next), To: next}, st)
			}
			s.ampleHits.Add(1)
			return out, steps, nil
		}
	}

	deltaReady := 0
	deltaTargets := make([]int32, len(g.locals))
	for idx, localID := range g.locals {
		ts, err := s.localTrans(idx, localID)
		if err != nil {
			return nil, nil, fmt.Errorf("entity %d: %w", s.Places[idx], err)
		}
		sawDelta := false
		for i, t := range ts {
			switch t.label.Kind {
			case lts.LDelta:
				if !sawDelta {
					sawDelta = true
					deltaReady++
					deltaTargets[idx] = t.to
				}
			case lts.LInternal:
				next := g.clone(idx, t.to)
				emit(lts.GenTransition{Label: lts.Internal(), Key: s.key(next), To: next},
					WitnessStep{Kind: StepInternal, Place: s.Places[idx], TIndex: i, Label: "i"})
			case lts.LEvent:
				ev := t.label.Ev
				switch ev.Kind {
				case lotos.EvService:
					next := g.clone(idx, t.to)
					emit(lts.GenTransition{Label: t.label, Key: s.key(next), To: next},
						WitnessStep{Kind: StepService, Place: s.Places[idx], TIndex: i, Ev: ev, Label: ev.String()})
				case lotos.EvSend:
					slot := idx*n + int(t.peer)
					q := g.chans[slot]
					if len(q) >= s.cfg.ChannelCap {
						continue // channel full: the send blocks
					}
					next := g.cloneChans(idx, t.to)
					nq := make([]int32, len(q)+1)
					copy(nq, q)
					nq[len(q)] = t.msg
					next.chans[slot] = nq
					var st WitnessStep
					if annotate {
						msg := s.msgString(t.msg)
						st = WitnessStep{
							Kind: StepSend, Place: s.Places[idx], TIndex: i, Ev: ev,
							From: s.Places[idx], To: s.Places[int(t.peer)], Msg: msg,
							Label: fmt.Sprintf("send %d->%d %s", s.Places[idx], s.Places[int(t.peer)], msg),
						}
					}
					emit(lts.GenTransition{Label: lts.Internal(), Key: s.key(next), To: next}, st)
				case lotos.EvRecv:
					slot := int(t.peer)*n + idx
					rest, ok := consumeIDs(g.chans[slot], t.msg, t.flush)
					if !ok {
						continue // no matching message consumable
					}
					next := g.cloneChans(idx, t.to)
					next.chans[slot] = rest
					var st WitnessStep
					if annotate {
						st = s.recvStep(idx, i, t)
					}
					emit(lts.GenTransition{Label: lts.Internal(), Key: s.key(next), To: next}, st)
				}
			}
		}
	}
	if deltaReady == len(g.locals) && len(g.locals) > 0 {
		next := &gstate{locals: deltaTargets, chans: g.chans}
		emit(lts.GenTransition{Label: lts.Delta(), Key: s.key(next), To: next},
			WitnessStep{Kind: StepDelta, Place: -1, TIndex: -1, Label: "delta"})
	}
	if s.cfg.Faults.Any() {
		s.faultMoves(g, annotate, emit)
	}
	return out, steps, nil
}

// channelFaultFree reports whether the medium applies no fault transitions
// to the given channel slot. The fault model is currently global — faults
// apply to every channel or none — but the per-slot shape keeps every POR
// eligibility decision local to the channels it actually touches, so a
// per-channel fault model only has to change this predicate.
func (s *System) channelFaultFree(slot int) bool {
	_ = slot
	return !s.cfg.Faults.Any()
}

// recvStep builds the witness annotation of a receive transition.
func (s *System) recvStep(idx, tIndex int, t cachedTrans) WitnessStep {
	msg := s.msgString(t.msg)
	return WitnessStep{
		Kind: StepRecv, Place: s.Places[idx], TIndex: tIndex, Ev: t.label.Ev,
		From: s.Places[int(t.peer)], To: s.Places[idx], Msg: msg,
		Label: fmt.Sprintf("recv %d->%d %s", s.Places[int(t.peer)], s.Places[idx], msg),
	}
}

// cloneFault copies the state with the channel table cloned for a medium
// fault (entity locals are untouched and shared: every mutator of a locals
// slice copies it first, so sharing is safe).
func (g *gstate) cloneFault() *gstate {
	return &gstate{locals: g.locals, chans: append([][]int32(nil), g.chans...)}
}

// faultMoves emits the medium's fault transitions of a state, one internal
// transition per applicable (channel, position, fault) triple, in
// deterministic order: channels by ascending slot; per channel loss, then
// duplication, then reordering; per fault ascending queue position.
func (s *System) faultMoves(g *gstate, annotate bool, emit func(lts.GenTransition, WitnessStep)) {
	n := len(s.Places)
	for slot, q := range g.chans {
		if len(q) == 0 {
			continue
		}
		fromP, toP := s.Places[slot/n], s.Places[slot%n]
		if s.cfg.Faults.Loss {
			for i := range q {
				next := g.cloneFault()
				nq := make([]int32, 0, len(q)-1)
				nq = append(nq, q[:i]...)
				nq = append(nq, q[i+1:]...)
				next.chans[slot] = nq
				var st WitnessStep
				if annotate {
					msg := s.msgString(q[i])
					st = WitnessStep{
						Kind: StepLoss, Place: -1, TIndex: -1, From: fromP, To: toP, Msg: msg, Index: i,
						Label: fmt.Sprintf("loss %d->%d %s@%d", fromP, toP, msg, i),
					}
				}
				emit(lts.GenTransition{Label: lts.Internal(), Key: s.key(next), To: next}, st)
			}
		}
		if s.cfg.Faults.Duplication && len(q) < s.cfg.ChannelCap {
			for i := range q {
				next := g.cloneFault()
				nq := make([]int32, 0, len(q)+1)
				nq = append(nq, q[:i+1]...)
				nq = append(nq, q[i])
				nq = append(nq, q[i+1:]...)
				next.chans[slot] = nq
				var st WitnessStep
				if annotate {
					msg := s.msgString(q[i])
					st = WitnessStep{
						Kind: StepDuplicate, Place: -1, TIndex: -1, From: fromP, To: toP, Msg: msg, Index: i,
						Label: fmt.Sprintf("dup %d->%d %s@%d", fromP, toP, msg, i),
					}
				}
				emit(lts.GenTransition{Label: lts.Internal(), Key: s.key(next), To: next}, st)
			}
		}
		if s.cfg.Faults.Reorder {
			for i := 0; i+1 < len(q); i++ {
				if q[i] == q[i+1] {
					continue // swapping identical messages is a no-op
				}
				next := g.cloneFault()
				nq := append([]int32(nil), q...)
				nq[i], nq[i+1] = nq[i+1], nq[i]
				next.chans[slot] = nq
				var st WitnessStep
				if annotate {
					st = WitnessStep{
						Kind: StepReorder, Place: -1, TIndex: -1, From: fromP, To: toP,
						Msg: s.msgString(q[i]), Index: i,
						Label: fmt.Sprintf("reorder %d->%d @%d", fromP, toP, i),
					}
				}
				emit(lts.GenTransition{Label: lts.Internal(), Key: s.key(next), To: next}, st)
			}
		}
	}
}

// Explore builds the observable global transition graph of the composed
// protocol system. With Config.Parallel it runs the frontier-at-a-time
// parallel explorer; the serial explorer remains the oracle the parallel
// path is cross-checked against. With RedSpill enabled the disk-spilling
// explorer runs instead (it takes precedence over Parallel) and its
// statistics become available through ReductionInfo.
func (s *System) Explore() (*lts.Graph, error) {
	root := s.rootState()
	src := &source{sys: s}
	if s.red&RedSpill != 0 {
		g, st, err := lts.ExploreSourceSpill(src, s.key(root), root, s.cfg.Limits, lts.SpillConfig{
			Budget: s.cfg.SpillBudget,
			Dir:    s.cfg.SpillDir,
		})
		s.spillStats = st
		return g, err
	}
	if s.cfg.Parallel {
		return lts.ExploreSourceParallel(src, s.key(root), root, s.cfg.Limits, s.cfg.Workers)
	}
	return lts.ExploreSource(src, s.key(root), root, s.cfg.Limits)
}

// ExploreStatsOnly explores the product counting states without retaining
// the graph — the memory-bounded census mode for products far past what a
// retained graph could hold. Requires RedSpill (the spilling explorer is the
// only one that can discard visited states) and no depth limits.
func (s *System) ExploreStatsOnly() (*lts.SpillStats, error) {
	if s.red&RedSpill == 0 {
		return nil, fmt.Errorf("compose: ExploreStatsOnly requires the spill reduction")
	}
	root := s.rootState()
	src := &source{sys: s}
	_, st, err := lts.ExploreSourceSpill(src, s.key(root), root, s.cfg.Limits, lts.SpillConfig{
		Budget:    s.cfg.SpillBudget,
		Dir:       s.cfg.SpillDir,
		StatsOnly: true,
	})
	s.spillStats = st
	return st, err
}

// ReductionInfo reports the reduction configuration and the work each
// enabled reduction did during the system's explorations so far.
func (s *System) ReductionInfo() ReductionStats {
	rs := ReductionStats{
		Enabled:         (s.red | redExplicit).String(),
		OrbitsCollapsed: s.orbitsCollapsed.Load(),
		AmpleHits:       s.ampleHits.Load(),
	}
	if s.sym != nil {
		rs.SymmetryColumns = s.sym.k
	}
	if st := s.spillStats; st != nil {
		rs.SpillRuns = st.Runs
		rs.SpilledBytes = st.SpilledBytes
		rs.PeakMemBytes = st.PeakMemBytes
	}
	return rs
}

// rootState builds the composed initial state: every entity at its root
// expression, all channels empty.
func (s *System) rootState() *gstate {
	n := len(s.Places)
	root := &gstate{chans: make([][]int32, n*n)}
	if s.preset {
		// Quotient graphs number their initial class 0.
		root.locals = make([]int32, n)
		return root
	}
	s.mu.Lock()
	for idx, p := range s.Places {
		root.locals = append(root.locals, s.internStateLocked(idx, s.Entities[p].Root.Expr))
	}
	s.mu.Unlock()
	return root
}
