// Package compose builds the global behaviour of a derived protocol — the
// right-hand side of the paper's correctness relation (Section 5):
//
//	hide G in ( ( T_1(S) ||| T_2(S) ||| ... ||| T_n(S) ) |[G]| Medium )
//
// as an explicit product transition system over the entity states and the
// channel contents of the communication medium, with all message
// interactions (the set G) hidden. The observable labels are exactly the
// service primitives plus successful termination, so the result can be
// compared against the service specification with internal/equiv.
//
// The medium follows Section 5.2: one FIFO channel per ordered pair of
// places, no loss, duplication or reordering. The channel capacity is
// configurable; the paper's proof assumes capacity 1, which is the default.
// Successful termination synchronizes across the entities only — the
// paper's Medium never terminates, and its algebraic proof composes
// termination over the entities alone.
package compose

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// DefaultChannelCap is the per-channel capacity used by the Section-5 proof.
const DefaultChannelCap = 1

// Config tunes the product construction.
type Config struct {
	// ChannelCap bounds the number of messages in transit per ordered
	// channel (default 1). Larger capacities approximate the unbounded
	// medium of the service architecture.
	ChannelCap int
	// Limits bounds the exploration of the product state space.
	Limits lts.Limits
	// NoReduction disables the partial-order reduction (see source.Next)
	// and explores every interleaving. Exponentially slower; kept for the
	// reduction-soundness tests and the ablation benchmark.
	NoReduction bool
}

// System is a set of protocol entities ready for product exploration.
type System struct {
	// Places lists the entity places in ascending order.
	Places []int
	// Entities holds one specification per place.
	Entities map[int]*lotos.Spec

	envs map[int]*lts.Env
	cfg  Config
	// Entity-local state interning: every distinct entity expression gets
	// a small integer id per place, so global state keys stay short and
	// local transitions are derived once per entity state.
	intern map[int]map[string]int // place -> canon -> local id
	local  map[int][]localState   // place -> local id -> state
}

// localState is one interned entity-local state. Transitions are derived
// lazily (entities may be infinite-state under recursion, so the local
// graphs cannot be built eagerly).
type localState struct {
	expr    lotos.Expr
	derived bool
	trans   []cachedTrans
}

// cachedTrans is an entity-local transition targeting an interned state.
type cachedTrans struct {
	label lts.Label
	to    int // local state id
}

// internState assigns (or recalls) the local id of an entity expression.
func (s *System) internState(place int, e lotos.Expr) (int, error) {
	key := lotos.Canon(e)
	if id, ok := s.intern[place][key]; ok {
		return id, nil
	}
	id := len(s.local[place])
	s.intern[place][key] = id
	s.local[place] = append(s.local[place], localState{expr: e})
	return id, nil
}

// localTrans derives (once) and returns the transitions of a local state.
func (s *System) localTrans(place, id int) ([]cachedTrans, error) {
	st := &s.local[place][id]
	if st.derived {
		return st.trans, nil
	}
	ts, err := s.envs[place].Transitions(st.expr)
	if err != nil {
		return nil, err
	}
	out := make([]cachedTrans, len(ts))
	for i, t := range ts {
		toID, err := s.internState(place, t.To)
		if err != nil {
			return nil, err
		}
		out[i] = cachedTrans{label: t.Label, to: toID}
	}
	// Re-take the pointer: internState may have grown the backing array.
	st = &s.local[place][id]
	st.trans = out
	st.derived = true
	return out, nil
}

// New prepares a system from derived entities. Each entity is resolved
// independently (entities have their own process name spaces).
func New(entities map[int]*lotos.Spec, cfg Config) (*System, error) {
	if cfg.ChannelCap <= 0 {
		cfg.ChannelCap = DefaultChannelCap
	}
	sys := &System{
		Entities: entities,
		envs:     map[int]*lts.Env{},
		cfg:      cfg,
		intern:   map[int]map[string]int{},
		local:    map[int][]localState{},
	}
	for p := range entities {
		sys.Places = append(sys.Places, p)
	}
	sort.Ints(sys.Places)
	for _, p := range sys.Places {
		env, err := lts.EnvFor(entities[p])
		if err != nil {
			return nil, fmt.Errorf("compose: entity %d: %w", p, err)
		}
		sys.envs[p] = env
		sys.intern[p] = map[string]int{}
	}
	return sys, nil
}

// message is one in-flight synchronization message.
type message struct {
	Node int
	Occ  string
	Tag  string
}

func msgOf(ev lotos.Event) message {
	return message{Node: ev.Node, Occ: ev.Occ, Tag: ev.Tag}
}

// flushingRecv reports whether a receive event carries the interrupt-
// handshake flush semantics: consuming it discards everything queued
// before it on its channel (the messages were addressed to the normal part
// the interrupt killed).
func flushingRecv(ev lotos.Event) bool {
	return ev.Tag == "" && core.FlushingMsgID(ev.Node)
}

// consumeFrom returns the channel contents after consuming the wanted
// message, honouring flush semantics, or ok=false when not consumable.
func consumeFrom(q []message, ev lotos.Event) (rest []message, ok bool) {
	want := msgOf(ev)
	if len(q) == 0 {
		return nil, false
	}
	if !flushingRecv(ev) {
		if q[0] != want {
			return nil, false
		}
		return append([]message(nil), q[1:]...), true
	}
	for i, m := range q {
		if m == want {
			return append([]message(nil), q[i+1:]...), true
		}
	}
	return nil, false
}

func (m message) String() string {
	if m.Tag != "" {
		return m.Tag
	}
	return fmt.Sprintf("%d#%s", m.Node, m.Occ)
}

// gstate is one global state: the interned local-state ids of the entities
// (indexed like Places) and the channel contents, keyed by "from>to".
type gstate struct {
	locals []int
	chans  map[string][]message
}

func chanKey(from, to int) string { return fmt.Sprintf("%d>%d", from, to) }

// key builds the canonical global state key.
func (s *System) key(g *gstate) string {
	var b strings.Builder
	for i, id := range g.locals {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(id))
	}
	// Channels in deterministic order.
	keys := make([]string, 0, len(g.chans))
	for k, msgs := range g.chans {
		if len(msgs) == 0 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(";")
		b.WriteString(k)
		b.WriteString("=")
		for _, m := range g.chans[k] {
			b.WriteString(m.String())
			b.WriteByte(',')
		}
	}
	return b.String()
}

// clone copies the state with one entity local state replaced.
func (g *gstate) clone(idx, localID int) *gstate {
	out := &gstate{locals: append([]int(nil), g.locals...), chans: g.chans}
	out.locals[idx] = localID
	return out
}

// cloneChans additionally deep-copies the channel map for mutation.
func (g *gstate) cloneChans(idx, localID int) *gstate {
	out := g.clone(idx, localID)
	chans := make(map[string][]message, len(g.chans))
	for k, v := range g.chans {
		chans[k] = v
	}
	out.chans = chans
	return out
}

// source implements lts.StateSource over the product system.
type source struct {
	sys *System
}

// Next derives all global transitions of a product state:
//
//   - a service primitive of entity i -> observable transition;
//   - an internal action of entity i  -> internal transition;
//   - a send s_j(m) of entity i       -> internal transition enqueueing m on
//     channel i->j, enabled while the channel has room;
//   - a receive r_j(m) of entity i    -> internal transition consuming m,
//     enabled when m is at the head of channel j->i (FIFO);
//   - successful termination          -> one global δ when every entity can
//     terminate (δ synchronizes across the interleaved entities).
func (src *source) Next(state any) ([]lts.GenTransition, error) {
	g := state.(*gstate)
	sys := src.sys

	// Partial-order reduction: if some entity's ONLY local transition is an
	// internal action or an enabled receive, fire it as the state's sole
	// global transition. Such a move is invisible, persistently enabled
	// (only this entity consumes its queue heads; senders append at the
	// tail), cannot disable any other entity's move (consuming a message
	// only frees channel capacity), and cannot commit a local choice
	// (there is no alternative). Every interleaving from this state is
	// therefore weakly equivalent to one that takes the move first.
	// Sends are NOT eligible: with bounded channels, reordering two sends
	// onto one channel changes the FIFO order.
	if !sys.cfg.NoReduction {
		for idx, localID := range g.locals {
			place := sys.Places[idx]
			ts, err := sys.localTrans(place, localID)
			if err != nil {
				return nil, fmt.Errorf("entity %d: %w", place, err)
			}
			if len(ts) != 1 {
				continue
			}
			t := ts[0]
			switch {
			case t.label.Kind == lts.LInternal:
				next := g.clone(idx, t.to)
				return []lts.GenTransition{{Label: lts.Internal(), Key: sys.key(next), To: next}}, nil
			case t.label.Kind == lts.LEvent && t.label.Ev.Kind == lotos.EvRecv:
				ev := t.label.Ev
				ck := chanKey(ev.Place, place)
				rest, ok := consumeFrom(g.chans[ck], ev)
				if !ok {
					continue // blocked; not eligible
				}
				next := g.cloneChans(idx, t.to)
				next.chans[ck] = rest
				return []lts.GenTransition{{Label: lts.Internal(), Key: sys.key(next), To: next}}, nil
			}
		}
	}

	var out []lts.GenTransition
	deltaReady := 0
	deltaTargets := make([]int, len(g.locals))
	for idx, localID := range g.locals {
		place := sys.Places[idx]
		ts, err := sys.localTrans(place, localID)
		if err != nil {
			return nil, fmt.Errorf("entity %d: %w", place, err)
		}
		sawDelta := false
		for _, t := range ts {
			switch t.label.Kind {
			case lts.LDelta:
				if !sawDelta {
					sawDelta = true
					deltaReady++
					deltaTargets[idx] = t.to
				}
			case lts.LInternal:
				next := g.clone(idx, t.to)
				out = append(out, lts.GenTransition{Label: lts.Internal(), Key: sys.key(next), To: next})
			case lts.LEvent:
				ev := t.label.Ev
				switch ev.Kind {
				case lotos.EvService:
					next := g.clone(idx, t.to)
					out = append(out, lts.GenTransition{Label: t.label, Key: sys.key(next), To: next})
				case lotos.EvSend:
					ck := chanKey(place, ev.Place)
					if len(g.chans[ck]) >= sys.cfg.ChannelCap {
						continue // channel full: the send blocks
					}
					next := g.cloneChans(idx, t.to)
					next.chans[ck] = append(append([]message(nil), g.chans[ck]...), msgOf(ev))
					out = append(out, lts.GenTransition{Label: lts.Internal(), Key: sys.key(next), To: next})
				case lotos.EvRecv:
					ck := chanKey(ev.Place, place)
					rest, ok := consumeFrom(g.chans[ck], ev)
					if !ok {
						continue // no matching message consumable
					}
					next := g.cloneChans(idx, t.to)
					next.chans[ck] = rest
					out = append(out, lts.GenTransition{Label: lts.Internal(), Key: sys.key(next), To: next})
				}
			}
		}
	}
	if deltaReady == len(g.locals) && len(g.locals) > 0 {
		next := &gstate{locals: deltaTargets, chans: g.chans}
		out = append(out, lts.GenTransition{Label: lts.Delta(), Key: sys.key(next), To: next})
	}
	return out, nil
}

// Explore builds the observable global transition graph of the composed
// protocol system.
func (s *System) Explore() (*lts.Graph, error) {
	root := &gstate{chans: map[string][]message{}}
	for _, p := range s.Places {
		id, err := s.internState(p, s.Entities[p].Root.Expr)
		if err != nil {
			return nil, fmt.Errorf("compose: entity %d: %w", p, err)
		}
		root.locals = append(root.locals, id)
	}
	return lts.ExploreSource(&source{sys: s}, s.key(root), root, s.cfg.Limits)
}
