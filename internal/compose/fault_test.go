package compose

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/equiv"
	"repro/internal/lotos"
	"repro/internal/lts"
)

func TestFaultModelString(t *testing.T) {
	cases := []struct {
		f    FaultModel
		want string
	}{
		{FaultModel{}, "reliable"},
		{FaultModel{Loss: true}, "loss"},
		{FaultModel{Duplication: true}, "dup"},
		{FaultModel{Reorder: true}, "reorder"},
		{FaultModel{Loss: true, Reorder: true}, "loss+reorder"},
		{FaultModel{Loss: true, Duplication: true, Reorder: true}, "loss+dup+reorder"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestParseFaultModel(t *testing.T) {
	for _, c := range []struct {
		in   string
		want FaultModel
	}{
		{"", FaultModel{}},
		{"reliable", FaultModel{}},
		{"none", FaultModel{}},
		{"loss", FaultModel{Loss: true}},
		{"dup", FaultModel{Duplication: true}},
		{"duplication", FaultModel{Duplication: true}},
		{"reorder", FaultModel{Reorder: true}},
		{"reordering", FaultModel{Reorder: true}},
		{"LOSS+Dup", FaultModel{Loss: true, Duplication: true}},
		{" loss + reorder ", FaultModel{Loss: true, Reorder: true}},
	} {
		got, err := ParseFaultModel(c.in)
		if err != nil {
			t.Errorf("ParseFaultModel(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseFaultModel(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if _, err := ParseFaultModel("gremlins"); err == nil {
		t.Error("ParseFaultModel accepted an unknown fault")
	}
}

func TestParseFaultModels(t *testing.T) {
	ms, err := ParseFaultModels("loss,dup,loss,duplication,reorder")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("expected 3 deduplicated models, got %v", ms)
	}
	want := []string{"loss", "dup", "reorder"}
	for i, m := range ms {
		if m.String() != want[i] {
			t.Errorf("model %d = %s, want %s", i, m, want[i])
		}
	}
	if _, err := ParseFaultModels("loss,bogus"); err == nil {
		t.Error("ParseFaultModels accepted an unknown fault")
	}
}

// TestLossDeadlocksSimplePair: the minimal two-place protocol stalls forever
// when the medium may drop its only synchronization message — the Section-6
// reliability assumption made concrete.
func TestLossDeadlocksSimplePair(t *testing.T) {
	rep := verifySrc(t, "SPEC a1; b2; exit ENDSPEC", VerifyOptions{Faults: FaultModel{Loss: true}})
	if rep.Ok() {
		t.Fatalf("expected loss to break the protocol:\n%s", rep.Summary())
	}
	if rep.ComposedDeadlocks == 0 {
		t.Errorf("expected a deadlock under loss:\n%s", rep.Summary())
	}
	if rep.Witness == nil {
		t.Fatal("non-conformant verdict carries no witness")
	}
	if rep.Witness.Kind != WitnessDeadlock {
		t.Errorf("witness kind = %s, want %s", rep.Witness.Kind, WitnessDeadlock)
	}
	sawLoss := false
	for _, st := range rep.Witness.Steps {
		if st.Kind == StepLoss {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Errorf("deadlock witness contains no loss step:\n%s", rep.Witness.Summary())
	}
}

// TestDuplicationAbsorbedAtCapacityOne: with capacity-1 channels a full
// buffer has no room for the duplicate, so the duplication fault model is
// degenerate and the verdict equals the reliable one.
func TestDuplicationAbsorbedAtCapacityOne(t *testing.T) {
	src := "SPEC a1; b2; c1; exit ENDSPEC"
	reliable := verifySrc(t, src, VerifyOptions{ChannelCap: 1})
	dup := verifySrc(t, src, VerifyOptions{ChannelCap: 1, Faults: FaultModel{Duplication: true}})
	if !reliable.Ok() || !dup.Ok() {
		t.Fatalf("expected both conformant: reliable=%v dup=%v", reliable.Ok(), dup.Ok())
	}
	if reliable.ComposedGraph.NumStates() != dup.ComposedGraph.NumStates() {
		t.Errorf("cap-1 duplication changed the state space: %d vs %d states",
			reliable.ComposedGraph.NumStates(), dup.ComposedGraph.NumStates())
	}
}

// TestDuplicationBreaksAtCapacityTwo: with room for the duplicate the
// receiver faces an unconsumable extra copy and the protocol deadlocks.
func TestDuplicationBreaksAtCapacityTwo(t *testing.T) {
	src := "SPEC A WHERE\n  PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END\nENDSPEC"
	rep := verifySrc(t, src, VerifyOptions{ChannelCap: 2, Faults: FaultModel{Duplication: true}})
	if rep.Ok() {
		t.Fatalf("expected duplication at cap 2 to break the protocol:\n%s", rep.Summary())
	}
	if rep.Witness == nil {
		t.Fatal("non-conformant verdict carries no witness")
	}
	sawDup := false
	for _, st := range rep.Witness.Steps {
		if st.Kind == StepDuplicate {
			sawDup = true
		}
	}
	if !sawDup {
		t.Errorf("witness contains no duplication step:\n%s", rep.Witness.Summary())
	}
}

// TestFaultExplorationAgreesWithoutReduction: the partial-order reduction's
// receive case is disabled under fault models (a receive does not commute
// with faults on its channel). The remaining sole-internal reduction must
// not change any verdict: compare reduced and unreduced exploration.
func TestFaultExplorationAgreesWithoutReduction(t *testing.T) {
	srcs := []string{
		"SPEC a1; b2; exit ENDSPEC",
		"SPEC a1; b2; c3; exit ENDSPEC",
		"SPEC a1; b2; exit [] a1; c2; exit ENDSPEC",
		"SPEC a1; exit ||| b2; exit ENDSPEC",
	}
	models := []FaultModel{{Loss: true}, {Duplication: true}, {Reorder: true}, {Loss: true, Duplication: true, Reorder: true}}
	for _, src := range srcs {
		d, err := core.Derive(lotos.MustParse(src), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, fm := range models {
			for _, chanCap := range []int{1, 2} {
				reduced := verifySrc(t, src, VerifyOptions{ChannelCap: chanCap, Faults: fm})
				sysNR, err := New(d.Entities, Config{ChannelCap: chanCap, Faults: fm, NoReduction: true,
					Limits: lts.Limits{MaxObsDepth: DefaultObsDepth}})
				if err != nil {
					t.Fatal(err)
				}
				gNR, err := sysNR.Explore()
				if err != nil {
					t.Fatal(err)
				}
				// Reduction must neither hide nor invent deadlocks, and the
				// observable behaviour must stay weakly trace-equivalent.
				if (reduced.ComposedDeadlocks > 0) != (len(gNR.Deadlocks()) > 0) {
					t.Errorf("%s faults=%s cap=%d: reduced deadlocks=%d, unreduced=%d",
						src, fm, chanCap, reduced.ComposedDeadlocks, len(gNR.Deadlocks()))
				}
				if !equiv.WeakTraceEquivalent(reduced.ComposedGraph, gNR, DefaultObsDepth) {
					t.Errorf("%s faults=%s cap=%d: reduced and unreduced explorations are not weakly trace-equivalent",
						src, fm, chanCap)
				}
			}
		}
	}
}

// TestTraceDiffLimitOption: the per-side cap on diagnostic example traces is
// configurable and defaults to 5 (the previously hardcoded value).
func TestTraceDiffLimitOption(t *testing.T) {
	// A service whose derivation deviates (disabling, broadcast interrupt)
	// produces a rich trace diff.
	src := "SPEC a1; b2; c3; exit [> d3; exit ENDSPEC"
	def := verifySrc(t, src, VerifyOptions{})
	if def.Ok() || def.TracesEqual {
		t.Skipf("expected a failing trace comparison to exercise the diff")
	}
	if len(def.OnlyService) > DefaultTraceDiffLimit || len(def.OnlyComposed) > DefaultTraceDiffLimit {
		t.Errorf("default diff exceeds %d per side: %d / %d",
			DefaultTraceDiffLimit, len(def.OnlyService), len(def.OnlyComposed))
	}
	one := verifySrc(t, src, VerifyOptions{TraceDiffLimit: 1})
	if len(one.OnlyService) > 1 || len(one.OnlyComposed) > 1 {
		t.Errorf("diff limit 1 exceeded: %d / %d", len(one.OnlyService), len(one.OnlyComposed))
	}
	ten := verifySrc(t, src, VerifyOptions{TraceDiffLimit: 10})
	if len(ten.OnlyService)+len(ten.OnlyComposed) < len(one.OnlyService)+len(one.OnlyComposed) {
		t.Errorf("raising the diff limit shrank the diff: limit1=%d+%d limit10=%d+%d",
			len(one.OnlyService), len(one.OnlyComposed), len(ten.OnlyService), len(ten.OnlyComposed))
	}
}

// TestDeadlockWitnessMinimality: the extracted counterexample is a shortest
// path — its step count equals the BFS depth of the nearest deadlock state.
// Regression guard for the parent-pointer BFS in lts.ShortestPathTo.
func TestDeadlockWitnessMinimality(t *testing.T) {
	srcs := []string{
		"SPEC a1; b2; exit ENDSPEC",
		"SPEC a1; b2; c3; exit ENDSPEC",
		"SPEC a1; b2; c1; exit ENDSPEC",
		"SPEC a1; b2; exit [] a1; c2; exit ENDSPEC",
	}
	for _, src := range srcs {
		for _, fm := range []FaultModel{{Loss: true}, {Loss: true, Duplication: true, Reorder: true}} {
			rep := verifySrc(t, src, VerifyOptions{ChannelCap: 2, Faults: fm})
			if rep.Witness == nil || rep.Witness.Kind != WitnessDeadlock {
				t.Fatalf("%s faults=%s: expected a deadlock witness, got %+v", src, fm, rep.Witness)
			}
			min := -1
			for _, d := range rep.ComposedGraph.Deadlocks() {
				if min == -1 || rep.ComposedGraph.Depth[d] < min {
					min = rep.ComposedGraph.Depth[d]
				}
			}
			if len(rep.Witness.Steps) != min {
				t.Errorf("%s faults=%s: witness has %d steps, nearest deadlock at BFS depth %d",
					src, fm, len(rep.Witness.Steps), min)
			}
		}
	}
}

// TestWitnessSummaryRendering: the rendering names the verdict, the fault
// model and every step.
func TestWitnessSummaryRendering(t *testing.T) {
	rep := verifySrc(t, "SPEC a1; b2; exit ENDSPEC", VerifyOptions{Faults: FaultModel{Loss: true}})
	if rep.Witness == nil {
		t.Fatal("no witness")
	}
	s := rep.Witness.Summary()
	for _, want := range []string{"deadlock", "faults=loss", "[send]", "[loss]"} {
		if !strings.Contains(s, want) {
			t.Errorf("witness summary missing %q:\n%s", want, s)
		}
	}
}
