package compose

import (
	"fmt"
	"strings"
)

// FaultModel selects which medium faults the product exploration composes in
// alongside the reliable FIFO behaviour of Section 5.2. Every enabled fault
// contributes internal (unobservable) global transitions: faults are the
// medium's moves, invisible to the service users, exactly like the message
// interactions themselves. The zero value is the paper's reliable medium.
//
// Fault transitions keep the state space finite: duplication respects the
// channel capacity (a duplicate that would overflow the medium buffer is
// absorbed), and loss and reordering never grow a queue.
type FaultModel struct {
	// Loss lets the medium silently drop any in-transit message: one
	// internal transition per queued message position.
	Loss bool `json:"loss,omitempty"`
	// Duplication lets the medium deliver an in-transit message twice: one
	// internal transition per queued message position inserting an adjacent
	// copy, enabled while the channel has capacity for it.
	Duplication bool `json:"duplication,omitempty"`
	// Reorder lets the medium swap two adjacent in-transit messages on one
	// channel — the minimal FIFO violation; repeated swaps generate every
	// permutation the capacity admits.
	Reorder bool `json:"reorder,omitempty"`
}

// Reliable is the zero fault model: the paper's medium.
var Reliable = FaultModel{}

// Any reports whether at least one fault is enabled.
func (f FaultModel) Any() bool { return f.Loss || f.Duplication || f.Reorder }

// String renders the model canonically: "reliable", "loss", "dup",
// "reorder", or a "+"-joined combination in that fixed order.
func (f FaultModel) String() string {
	if !f.Any() {
		return "reliable"
	}
	var parts []string
	if f.Loss {
		parts = append(parts, "loss")
	}
	if f.Duplication {
		parts = append(parts, "dup")
	}
	if f.Reorder {
		parts = append(parts, "reorder")
	}
	return strings.Join(parts, "+")
}

// ParseFaultModel parses one fault-model spec: "reliable" (or "none"), or a
// "+"-joined combination of "loss", "dup" (or "duplication"), "reorder"
// (or "reordering"), e.g. "loss+dup".
func ParseFaultModel(s string) (FaultModel, error) {
	var f FaultModel
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" || s == "reliable" || s == "none" {
		return f, nil
	}
	for _, part := range strings.Split(s, "+") {
		switch strings.TrimSpace(part) {
		case "loss":
			f.Loss = true
		case "dup", "duplication":
			f.Duplication = true
		case "reorder", "reordering":
			f.Reorder = true
		default:
			return FaultModel{}, fmt.Errorf("unknown fault model %q (want loss, dup, reorder, reliable, or a + combination)", part)
		}
	}
	return f, nil
}

// ParseFaultModels parses a comma-separated list of fault-model specs, e.g.
// "loss,dup,reorder" or "loss,loss+dup". Duplicate models are collapsed.
func ParseFaultModels(s string) ([]FaultModel, error) {
	var out []FaultModel
	seen := map[FaultModel]bool{}
	for _, part := range strings.Split(s, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		f, err := ParseFaultModel(part)
		if err != nil {
			return nil, err
		}
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out, nil
}
