package compose

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/equiv"
	"repro/internal/lotos"
	"repro/internal/lts"
)

func TestParseReductionsRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Reductions
		str  string
	}{
		{"", 0, "default"},
		{"default", 0, "default"},
		{"none", RedNone, "none"},
		{"all", RedAll | redExplicit, "por+symmetry+spill"},
		{"por", RedPOR | redExplicit, "por"},
		{"symmetry", RedSymmetry | redExplicit, "symmetry"},
		{"sym", RedSymmetry | redExplicit, "symmetry"},
		{"spill", RedSpill | redExplicit, "spill"},
		{"por+symmetry", RedPOR | RedSymmetry | redExplicit, "por+symmetry"},
		{"symmetry,por", RedPOR | RedSymmetry | redExplicit, "por+symmetry"},
		{"POR+Spill", RedPOR | RedSpill | redExplicit, "por+spill"},
	}
	for _, c := range cases {
		got, err := ParseReductions(c.in)
		if err != nil {
			t.Errorf("ParseReductions(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseReductions(%q) = %v, want %v", c.in, got, c.want)
		}
		if got.String() != c.str {
			t.Errorf("ParseReductions(%q).String() = %q, want %q", c.in, got.String(), c.str)
		}
		// The canonical form must parse back to the same mask (modulo the
		// default marker, which "default" keeps at zero).
		back, err := ParseReductions(got.String())
		if err != nil {
			t.Errorf("reparse %q: %v", got.String(), err)
		}
		if back != got && !(got == 0 && back == 0) {
			t.Errorf("reparse %q = %v, want %v", got.String(), back, got)
		}
	}
	if _, err := ParseReductions("warp-drive"); err == nil {
		t.Error("unknown reduction name did not error")
	}
}

func TestEffectiveReductions(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want Reductions
	}{
		{"zero value = POR default", Config{}, RedPOR},
		{"deprecated NoReduction alias", Config{NoReduction: true}, 0},
		{"explicit none", Config{Reductions: RedNone}, 0},
		{"explicit none beats NoReduction=false", Config{Reductions: RedNone, NoReduction: false}, 0},
		{"explicit mask ignores NoReduction", Config{Reductions: RedPOR.With(RedSpill), NoReduction: true}, RedPOR | RedSpill},
		{"all", Config{Reductions: RedAll | redExplicit}, RedAll},
	}
	for _, c := range cases {
		if got := c.cfg.effectiveReductions(); got != c.want {
			t.Errorf("%s: effectiveReductions() = %v, want %v", c.name, got, c.want)
		}
	}
	// Without must stay distinguishable from the default even when empty.
	if got := (Config{Reductions: RedPOR.Without(RedPOR)}).effectiveReductions(); got != 0 {
		t.Errorf("explicitly emptied mask resolved to %v, want none", got)
	}
}

// multiSrc is the two-instance symmetric shape (specs/multiinstance.spec).
const multiSrc = `SPEC B ||| B WHERE
  PROC B = (a1; (b2; exit ||| c3; exit)) >> g4; exit END
ENDSPEC`

// asymSrc interleaves two syntactically different operands.
const asymSrc = `SPEC (a1; b2; exit) ||| (c1; d2; e2; exit) ENDSPEC`

// pairSrc is a small symmetric shape for full-vs-reduced comparisons where
// exploring the unreduced product twice would dominate the test's runtime.
const pairSrc = `SPEC B ||| B WHERE
  PROC B = a1; b2; c3; exit END
ENDSPEC`

func exploreSrc(t testing.TB, src string, cfg Config) (*System, *lts.Graph) {
	t.Helper()
	d, err := core.Derive(lotos.MustParse(src), core.Options{})
	if err != nil {
		t.Fatalf("derive: %v", err)
	}
	sys, err := New(d.Entities, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sys.Explore()
	if err != nil {
		t.Fatal(err)
	}
	return sys, g
}

// TestSymmetryDetectedAndSound checks the core symmetry claims on the
// two-instance shape: the columns are detected, the orbit-quotient graph is
// strictly smaller, and it is weakly bisimilar to the full product — the
// property every verdict field rests on.
func TestSymmetryDetectedAndSound(t *testing.T) {
	lim := lts.Limits{MaxStates: 300000}
	symSys, gr := exploreSrc(t, pairSrc, Config{Reductions: RedPOR.With(RedSymmetry), Limits: lim})
	if symSys.sym == nil {
		t.Fatal("symmetry not detected on B ||| B")
	}
	if symSys.sym.k != 2 {
		t.Fatalf("detected %d columns, want 2", symSys.sym.k)
	}
	_, gf := exploreSrc(t, pairSrc, Config{Reductions: RedPOR | redExplicit, Limits: lim})
	if gr.Truncated || gf.Truncated {
		t.Fatal("exploration unexpectedly truncated")
	}
	if gr.NumStates() >= gf.NumStates() {
		t.Errorf("symmetry did not shrink the product: %d vs %d states", gr.NumStates(), gf.NumStates())
	}
	if !equiv.WeakBisimilar(gr, gf) {
		t.Error("orbit-quotient product is not weakly bisimilar to the full product")
	}
	ri := symSys.ReductionInfo()
	if ri.SymmetryColumns != 2 || ri.OrbitsCollapsed == 0 {
		t.Errorf("reduction stats did not record the symmetry work: %+v", ri)
	}
	if len(gr.Deadlocks()) != 0 || len(gf.Deadlocks()) != 0 {
		t.Error("conformant shape reported deadlocks")
	}
}

// TestSymmetryConservativelyOff pins the cases where detection must refuse:
// asymmetric operands, string-keyed debugging systems, and preset
// (quotient-composed) systems.
func TestSymmetryConservativelyOff(t *testing.T) {
	sys, _ := exploreSrc(t, asymSrc, Config{Reductions: RedPOR.With(RedSymmetry), Limits: lts.Limits{MaxStates: 50000}})
	if sys.sym != nil {
		t.Error("symmetry detected on asymmetric operands")
	}

	d, err := core.Derive(lotos.MustParse(multiSrc), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	strSys, err := New(d.Entities, Config{Reductions: RedPOR.With(RedSymmetry), StringKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	if strSys.sym != nil {
		t.Error("symmetry active under StringKeys")
	}
}

// TestSymmetryRandomizedDifferential doubles every generated service into a
// two-instance interleaving and cross-checks the symmetry-reduced product
// against the full one: never larger, identical bounded weak-trace sets, and
// weakly bisimilar whenever both explorations close. Loss+duplication cells
// run the same comparison under a faulty medium.
func TestSymmetryRandomizedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	faults := []FaultModel{{}, {Loss: true, Duplication: true}}
	checked := 0
	for seed := int64(1); checked < 12 && seed < 200; seed++ {
		g := &genService{rng: rand.New(rand.NewSource(seed + 7000)), places: 3}
		inner := g.expr(g.place(), g.place(), 1)
		src := "SPEC (" + inner + ") ||| (" + inner + ") ENDSPEC"
		sp, err := lotos.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		d, err := core.Derive(sp, core.Options{})
		if err != nil {
			continue // generator occasionally violates a restriction under doubling
		}
		for _, fm := range faults {
			lim := lts.Limits{MaxObsDepth: 4, MaxStates: 200000}
			symSys, err := New(d.Entities, Config{Reductions: RedPOR.With(RedSymmetry), Limits: lim, Faults: fm})
			if err != nil {
				t.Fatal(err)
			}
			gr, err := symSys.Explore()
			if err != nil {
				t.Fatal(err)
			}
			fullSys, err := New(d.Entities, Config{Reductions: RedPOR | redExplicit, Limits: lim, Faults: fm})
			if err != nil {
				t.Fatal(err)
			}
			gf, err := fullSys.Explore()
			if err != nil {
				t.Fatal(err)
			}
			if symSys.sym == nil {
				t.Errorf("seed %d: symmetry not detected on doubled service\n%s", seed, src)
				continue
			}
			if gr.NumStates() > gf.NumStates() {
				t.Errorf("seed %d faults=%s: symmetry enlarged the product: %d vs %d\n%s",
					seed, fm, gr.NumStates(), gf.NumStates(), src)
			}
			trR := strings.Join(lts.WeakTraces(gr, 4), ";")
			trF := strings.Join(lts.WeakTraces(gf, 4), ";")
			if trR != trF {
				t.Errorf("seed %d faults=%s: symmetry changed the bounded trace set\n%s", seed, fm, src)
			}
			if !gr.Truncated && !gf.Truncated {
				if !equiv.WeakBisimilar(gr, gf) {
					t.Errorf("seed %d faults=%s: reduced and full products not weakly bisimilar\n%s", seed, fm, src)
				}
				if (len(gr.Deadlocks()) == 0) != (len(gf.Deadlocks()) == 0) {
					t.Errorf("seed %d faults=%s: deadlock presence differs (%d orbit vs %d concrete)\n%s",
						seed, fm, len(gr.Deadlocks()), len(gf.Deadlocks()), src)
				}
			}
		}
		checked++
	}
	if checked < 12 {
		t.Fatalf("only %d doubled services checked", checked)
	}
}

// TestSpillProductByteIdentical pins the compose-level spill contract: with
// a budget tiny enough to force spilling, the product graph — state
// numbering included — equals the parallel in-memory one, under reliable and
// faulty media alike.
func TestSpillProductByteIdentical(t *testing.T) {
	for _, fm := range []FaultModel{{}, {Loss: true, Duplication: true}} {
		lim := lts.Limits{MaxStates: 60000}
		spillSys, err := New(mustDerive(t, multiSrc).Entities, Config{
			Reductions: RedPOR.With(RedSpill), Limits: lim, SpillBudget: 4096, Faults: fm,
		})
		if err != nil {
			t.Fatal(err)
		}
		gs, err := spillSys.Explore()
		if err != nil {
			t.Fatal(err)
		}
		parSys, err := New(mustDerive(t, multiSrc).Entities, Config{
			Reductions: RedPOR | redExplicit, Limits: lim, Parallel: true, Workers: 4, Faults: fm,
		})
		if err != nil {
			t.Fatal(err)
		}
		gp, err := parSys.Explore()
		if err != nil {
			t.Fatal(err)
		}
		if gs.NumStates() != gp.NumStates() || gs.NumTransitions() != gp.NumTransitions() {
			t.Fatalf("faults=%s: spilled product sizes differ: %d/%d vs %d/%d",
				fm, gs.NumStates(), gs.NumTransitions(), gp.NumStates(), gp.NumTransitions())
		}
		if !reflect.DeepEqual(gs.Keys, gp.Keys) {
			t.Errorf("faults=%s: spilled product state numbering differs from the parallel explorer", fm)
		}
		ri := spillSys.ReductionInfo()
		if ri.SpillRuns == 0 {
			t.Errorf("faults=%s: 4KiB budget spilled no runs over %d states", fm, gs.NumStates())
		}
	}
}

func mustDerive(t testing.TB, src string) *core.Derivation {
	t.Helper()
	d, err := core.Derive(lotos.MustParse(src), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestExploreStatsOnly checks the out-of-core counting mode against the full
// exploration's sizes.
func TestExploreStatsOnly(t *testing.T) {
	lim := lts.Limits{MaxStates: 300000}
	sys, err := New(mustDerive(t, multiSrc).Entities, Config{Reductions: RedAll | redExplicit, Limits: lim, SpillBudget: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.ExploreStatsOnly()
	if err != nil {
		t.Fatal(err)
	}
	full, gf := exploreSrc(t, multiSrc, Config{Reductions: RedAll | redExplicit, Limits: lim, SpillBudget: 1 << 14})
	_ = full
	if stats.States != int64(gf.NumStates()) || stats.Transitions != int64(gf.NumTransitions()) {
		t.Errorf("stats-only counted %d/%d, full exploration has %d/%d",
			stats.States, stats.Transitions, gf.NumStates(), gf.NumTransitions())
	}

	noSpill, err := New(mustDerive(t, multiSrc).Entities, Config{Limits: lim})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noSpill.ExploreStatsOnly(); err == nil {
		t.Error("ExploreStatsOnly without the spill reduction did not error")
	}
}

// TestVerifySymmetryFallbackMatchesUnreduced checks the witness discipline:
// a symmetry-reduced non-conformant verdict must be re-derived without
// symmetry, so the failure report equals an explicitly unreduced one field
// for field, with the fallback recorded.
func TestVerifySymmetryFallbackMatchesUnreduced(t *testing.T) {
	d := mustDerive(t, multiSrc)
	// A budget far below the product size forces a truncation-artifact
	// failure, which must trigger the unreduced re-verification.
	opts := VerifyOptions{ObsDepth: 4, MaxStates: 2000, Reductions: RedPOR.With(RedSymmetry)}
	rep, err := Verify(d.Service.Spec, d.Entities, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("expected a truncation-artifact failure at 2000 states")
	}
	if rep.Reduction == nil || rep.Reduction.Fallback == "" {
		t.Fatalf("non-conformant symmetric verdict recorded no fallback: %+v", rep.Reduction)
	}
	if strings.Contains(rep.Reduction.Enabled, "symmetry") {
		t.Errorf("fallback report still claims symmetry: %q", rep.Reduction.Enabled)
	}

	plain := opts
	plain.Reductions = RedPOR | redExplicit
	want, err := Verify(d.Service.Spec, d.Entities, plain)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() != want.Ok() || rep.TracesEqual != want.TracesEqual ||
		rep.ComposedDeadlocks != want.ComposedDeadlocks ||
		rep.ComposedGraph.NumStates() != want.ComposedGraph.NumStates() {
		t.Errorf("fallback report differs from an explicitly unreduced verification:\nfallback:\n%s\nunreduced:\n%s",
			rep.Summary(), want.Summary())
	}
	if !reflect.DeepEqual(witnessShape(rep.Witness), witnessShape(want.Witness)) {
		t.Errorf("fallback witness differs from the unreduced witness")
	}
}

// witnessShape projects a witness to comparable parts (the inner extraction
// context carries unexported pointers).
func witnessShape(w *Witness) any {
	if w == nil {
		return nil
	}
	return struct {
		Kind   string
		Steps  []WitnessStep
		Trace  []string
		Missin []string
	}{w.Kind, w.Steps, w.Trace, w.Missing}
}

// TestAmpleSetFaultAware pins the fault-awareness of the generalized ample
// set: under a faulty medium the receive shortcut must stay off (a lost or
// duplicated message invalidates the commutation argument), while the
// sole-internal shortcut — which touches no channel — keeps firing.
func TestAmpleSetFaultAware(t *testing.T) {
	lim := lts.Limits{MaxObsDepth: 4, MaxStates: 100000}
	rel, _ := exploreSrc(t, multiSrc, Config{Limits: lim})
	if rel.ReductionInfo().AmpleHits == 0 {
		t.Error("reliable exploration recorded no ample hits")
	}

	// Under faults, the exploration must agree with the unreduced one on
	// bounded weak traces (the sole-internal shortcut is the only ample
	// case allowed to fire).
	faulty := FaultModel{Loss: true, Duplication: true}
	_, gPOR := exploreSrc(t, pairSrc, Config{Limits: lim, Faults: faulty})
	_, gFull := exploreSrc(t, pairSrc, Config{Reductions: RedNone, Limits: lim, Faults: faulty})
	trR := strings.Join(lts.WeakTraces(gPOR, 4), ";")
	trF := strings.Join(lts.WeakTraces(gFull, 4), ";")
	if trR != trF {
		t.Error("faulty-medium POR changed the bounded trace set")
	}
	if (len(gPOR.Deadlocks()) == 0) != (len(gFull.Deadlocks()) == 0) {
		t.Errorf("faulty-medium POR changed deadlock presence: %d vs %d",
			len(gPOR.Deadlocks()), len(gFull.Deadlocks()))
	}
}
