package compose

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// verifySrc derives the protocol for a service source and checks the
// Section-5 correctness relation.
func verifySrc(t testing.TB, src string, opts VerifyOptions) *Report {
	t.Helper()
	d, err := core.Derive(lotos.MustParse(src), core.Options{})
	if err != nil {
		t.Fatalf("derive: %v", err)
	}
	rep, err := Verify(d.Service.Spec, d.Entities, opts)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	return rep
}

// wantOk asserts that the derived protocol provides exactly the service.
func wantOk(t *testing.T, src string, opts VerifyOptions) *Report {
	t.Helper()
	rep := verifySrc(t, src, opts)
	if !rep.Ok() {
		t.Errorf("verification failed for %q:\n%s", src, rep.Summary())
	}
	return rep
}

// --- E9: the Section 5 theorem on [>-free services --------------------------

func TestE9_Theorem_Elementary(t *testing.T) {
	// The base case of the induction (Section 5.3.2): S = a_i; exit.
	rep := wantOk(t, "SPEC a1; exit ENDSPEC", VerifyOptions{})
	if !rep.Complete || !rep.WeakBisimilar {
		t.Errorf("expected exact weak bisimilarity:\n%s", rep.Summary())
	}
}

func TestE9_Theorem_Sequences(t *testing.T) {
	for _, src := range []string{
		"SPEC a1; b2; exit ENDSPEC",
		"SPEC a1; b2; c3; exit ENDSPEC",
		"SPEC a1; b2; a1; b2; exit ENDSPEC",
		"SPEC a1; exit >> b2; exit ENDSPEC",
		"SPEC a1; b2; exit >> c1; exit >> d3; exit ENDSPEC",
		"SPEC a1; b1; c1; exit ENDSPEC",
	} {
		rep := wantOk(t, src, VerifyOptions{})
		if !rep.Complete || !rep.WeakBisimilar {
			t.Errorf("%s: expected exact weak bisimilarity:\n%s", src, rep.Summary())
		}
	}
}

func TestE9_Theorem_Choice(t *testing.T) {
	for _, src := range []string{
		"SPEC a1; b2; exit [] c1; b2; exit ENDSPEC",
		"SPEC a1; b2; exit [] a1; c2; exit ENDSPEC",
		// Alternative messages needed: place 3 only in the left alternative.
		"SPEC a1; c3; b2; exit [] e1; b2; exit ENDSPEC",
	} {
		rep := wantOk(t, src, VerifyOptions{})
		if !rep.Complete || !rep.WeakBisimilar {
			t.Errorf("%s: expected exact weak bisimilarity:\n%s", src, rep.Summary())
		}
	}
}

func TestE9_Theorem_Parallel(t *testing.T) {
	for _, src := range []string{
		"SPEC a1; exit ||| b2; exit ENDSPEC",
		"SPEC a1; b2; exit ||| c3; d4; exit ENDSPEC",
		"SPEC (a1; exit ||| b2; exit) >> c3; exit ENDSPEC",
		"SPEC a1; exit >> (b2; exit ||| c3; exit) >> d1; exit ENDSPEC",
	} {
		rep := wantOk(t, src, VerifyOptions{})
		if !rep.Complete || !rep.WeakBisimilar {
			t.Errorf("%s: expected exact weak bisimilarity:\n%s", src, rep.Summary())
		}
	}
}

func TestE9_Theorem_SynchronizedParallel(t *testing.T) {
	for _, src := range []string{
		// Both branches synchronize on b2 at place 2.
		"SPEC a1; b2; exit |[b2]| c2; b2; exit ENDSPEC",
		"SPEC a1; exit || a1; exit ENDSPEC",
	} {
		rep := wantOk(t, src, VerifyOptions{})
		if !rep.Complete || !rep.WeakBisimilar {
			t.Errorf("%s: expected exact weak bisimilarity:\n%s", src, rep.Summary())
		}
	}
}

func TestE9_Theorem_Recursion(t *testing.T) {
	// Example 2: (a1)^n (b2)^n — infinite-state; bounded trace check.
	src := `SPEC A WHERE PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END ENDSPEC`
	rep := wantOk(t, src, VerifyOptions{ObsDepth: 6, MaxStates: 60000})
	if rep.Complete {
		t.Log("note: recursion explored to closure (unexpected but fine)")
	}
}

func TestE9_Theorem_TailRecursion(t *testing.T) {
	src := `SPEC A WHERE PROC A = a1; b2; A [] c1; exit END ENDSPEC`
	wantOk(t, src, VerifyOptions{ObsDepth: 6, MaxStates: 60000})
}

func TestE9_Theorem_MutualRecursion(t *testing.T) {
	src := `
SPEC A WHERE
  PROC A = a1; B END
  PROC B = b2; A [] c2; exit END
ENDSPEC`
	wantOk(t, src, VerifyOptions{ObsDepth: 6, MaxStates: 60000})
}

func TestE9_Theorem_Example5(t *testing.T) {
	src := `
SPEC A WHERE
  PROC A = (a1; b2; A >> c2; d3; exit) [] (e1; f3; exit) END
ENDSPEC`
	wantOk(t, src, VerifyOptions{ObsDepth: 6, MaxStates: 80000})
}

func TestE9_Theorem_Example7MultipleInstances(t *testing.T) {
	src := `SPEC B ||| B WHERE PROC B = (a1; (b2; exit ||| c3; exit)) >> g4; exit END ENDSPEC`
	wantOk(t, src, VerifyOptions{ObsDepth: 5, MaxStates: 200000, ChannelCap: 1})
}

func TestE9_Theorem_FileCopyWithoutDisable(t *testing.T) {
	// Example 3's process S without the interrupt wrapper.
	src := `
SPEC S WHERE
  PROC S = (read1; push2; S >> pop2; write3; exit)
        [] (eof1; make3; exit)
  END
ENDSPEC`
	wantOk(t, src, VerifyOptions{ObsDepth: 6, MaxStates: 120000})
}

// --- E11: the documented disabling deviation (Section 3.3) -------------------

func TestE11_DisableDeviationIsOneSided(t *testing.T) {
	// For services with "[>" the distributed implementation deviates from
	// the LOTOS semantics (shortcomings (i) and (ii) of Section 3.3): the
	// composed system exhibits extra interleavings (e.g. an action of the
	// normal part after the interrupt has occurred, because the interrupt
	// message is still in flight). The deviation is one-sided: every
	// service trace remains realizable.
	src := "SPEC a1; b2; c3; exit [> d3; exit ENDSPEC"
	rep := verifySrc(t, src, VerifyOptions{ObsDepth: 6})
	if len(rep.OnlyService) != 0 {
		t.Errorf("service traces lost by the implementation: %v", rep.OnlyService)
	}
	if len(rep.OnlyComposed) == 0 {
		t.Error("expected the documented extra interleavings, found none " +
			"(did the disabling implementation become exact?)")
	}
	for _, tr := range rep.OnlyComposed {
		// Every extra trace must involve the disabling event d3 — the
		// deviation is confined to interrupt timing.
		if !strings.Contains(tr, "d3") {
			t.Errorf("extra composed trace %q does not involve the interrupt", tr)
		}
	}
	if rep.ComposedDeadlocks != 0 {
		t.Errorf("composed deadlocks: %d", rep.ComposedDeadlocks)
	}
}

func TestE11_DisableServiceTracesPreserved(t *testing.T) {
	// All service traces are accepted by the composed system.
	src := "SPEC a1; b2; c3; exit [> d3; exit ENDSPEC"
	d, err := core.Derive(lotos.MustParse(src), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lim := lts.Limits{MaxObsDepth: 6}
	sg, err := lts.ExploreSpec(d.Service.Spec, lim)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(d.Entities, Config{ChannelCap: 2, Limits: lim})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := sys.Explore()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range lts.WeakTraces(sg, 6) {
		if !lts.AcceptsTrace(cg, tr) {
			t.Errorf("service trace %q not realizable by the composed protocol", tr)
		}
	}
}

// --- medium behaviour --------------------------------------------------------

func TestChannelCapacityBlocksSends(t *testing.T) {
	// Two parallel cross-place sequences force two messages on the same
	// channel; capacity 1 serializes them but must not deadlock.
	src := "SPEC (a1; b2; exit ||| c1; d2; exit) ENDSPEC"
	rep := wantOk(t, src, VerifyOptions{ChannelCap: 1})
	if rep.ComposedDeadlocks != 0 {
		t.Errorf("deadlocks with capacity 1: %s", rep.Summary())
	}
	rep2 := wantOk(t, src, VerifyOptions{ChannelCap: 4})
	if rep2.ComposedGraph.NumStates() < rep.ComposedGraph.NumStates() {
		t.Error("larger capacity cannot shrink the state space")
	}
}

func TestFIFOOrderingIsRespected(t *testing.T) {
	// a1;b2;a1;b2: two sequence messages 1->2 with the same node id but
	// different positions; FIFO keeps them ordered, so the service order
	// b2 after each a1 holds exactly.
	wantOk(t, "SPEC a1; b2; a1; b2; exit ENDSPEC", VerifyOptions{})
}

func TestNewRejectsUnresolvedEntities(t *testing.T) {
	bad := map[int]*lotos.Spec{1: lotos.MustParse("SPEC A ENDSPEC")}
	if _, err := New(bad, Config{}); err == nil {
		t.Error("expected resolution error")
	}
}

func TestReportSummaryRendering(t *testing.T) {
	rep := wantOk(t, "SPEC a1; b2; exit ENDSPEC", VerifyOptions{})
	s := rep.Summary()
	for _, want := range []string{"service:", "composed:", "weak bisimulation", "verdict: OK"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestVerifyDetectsBrokenProtocol(t *testing.T) {
	// Sabotage: swap the entities of places 1 and 2 of a derived protocol.
	d, err := core.Derive(lotos.MustParse("SPEC a1; b2; exit ENDSPEC"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	broken := map[int]*lotos.Spec{1: d.Entities[2], 2: d.Entities[1]}
	rep, err := Verify(d.Service.Spec, broken, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Error("verification accepted a sabotaged protocol")
	}
}

func TestVerifyDetectsMissingSynchronization(t *testing.T) {
	// Hand-written entities without any synchronization messages: the
	// composed system can do b2 before a1, which the service forbids.
	service := lotos.MustParse("SPEC a1; b2; exit ENDSPEC")
	entities := map[int]*lotos.Spec{
		1: lotos.MustParse("SPEC a1; exit ENDSPEC"),
		2: lotos.MustParse("SPEC b2; exit ENDSPEC"),
	}
	rep, err := Verify(service, entities, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Error("verification accepted an unsynchronized protocol")
	}
	found := false
	for _, tr := range rep.OnlyComposed {
		if strings.HasPrefix(tr, "b2") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected the premature b2 trace, diff: %v / %v", rep.OnlyService, rep.OnlyComposed)
	}
}
