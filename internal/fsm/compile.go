package fsm

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/equiv"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// DefaultMaxStates is the default per-entity state cap. Derived entities of
// the corpus are a few dozen to a few hundred states; anything past this cap
// is in practice an unbounded recursion (the state key grows with the
// recursion depth), so compilation reports it instead of exploring forever.
const DefaultMaxStates = 4096

// Config parameterizes compilation. The zero value selects defaults.
type Config struct {
	// MaxStates caps the per-entity state space; exceeding it yields a
	// *CompileError. 0 means DefaultMaxStates.
	MaxStates int
	// Table supplies a shared label-interning table so several machines
	// speak one id space (a Fleet compiles all its entities through one
	// table). Nil means a fresh table per call.
	Table *lts.LabelTable
}

func (c Config) maxStates() int {
	if c.MaxStates <= 0 {
		return DefaultMaxStates
	}
	return c.MaxStates
}

// Compile explores the behaviour of one derived entity specification and
// builds its table-driven machine. The input specification is cloned first
// (exploration numbers syntax trees in place), so sp is not mutated and may
// be shared. A state space exceeding the cap returns a *CompileError.
func Compile(place int, sp *lotos.Spec, cfg Config) (*Machine, error) {
	clone := lotos.CloneSpec(sp)
	env, err := lts.EnvFor(clone)
	if err != nil {
		return nil, &CompileError{Place: place, Reason: err.Error(), err: err}
	}
	g, err := lts.Explore(env, clone.Root.Expr, lts.Limits{MaxStates: cfg.maxStates()})
	if err != nil {
		return nil, &CompileError{Place: place, Reason: err.Error(), err: err}
	}
	if g.Truncated {
		return nil, &CompileError{
			Place:  place,
			States: g.NumStates(),
			Cap:    cfg.maxStates(),
			Reason: fmt.Sprintf("state space exceeds cap (%d states explored, cap %d): entity behaviour is unbounded or the cap is too small", g.NumStates(), cfg.maxStates()),
		}
	}
	return fromGraph(place, g, cfg.Table), nil
}

// Classify maps a transition label to its runtime dispatch kind and event.
// It is the single classification rule shared by the compiler and by the
// runtime's AST engine, so both engines partition transition rows
// identically.
func Classify(l lts.Label) (Op, lotos.Event) {
	switch l.Kind {
	case lts.LInternal:
		return OpInternal, lotos.Event{}
	case lts.LDelta:
		return OpDelta, lotos.Event{}
	}
	ev := l.Ev
	switch ev.Kind {
	case lotos.EvSend:
		return OpSend, ev
	case lotos.EvRecv:
		// Statically derived control messages (interrupt-handshake req/ack)
		// flush their channel on receipt; symbolic hand-written tags never do.
		if ev.Tag == "" && core.FlushingMsgID(ev.Node) {
			return OpRecvFlush, ev
		}
		return OpRecv, ev
	default:
		return OpService, ev
	}
}

func flagFor(op Op) StateFlags {
	switch op {
	case OpInternal:
		return HasInternal
	case OpDelta:
		return HasDelta
	case OpSend:
		return HasSend
	case OpRecv, OpRecvFlush:
		return HasRecv
	default:
		return HasService
	}
}

// fromGraph flattens an explored entity graph into the two table layers.
func fromGraph(place int, g *lts.Graph, table *lts.LabelTable) *Machine {
	if table == nil {
		table = lts.NewLabelTable()
	}
	n := g.NumStates()
	nt := g.NumTransitions()
	m := &Machine{
		Place:    place,
		Table:    table,
		Off:      make([]int32, n+1),
		Ops:      make([]Op, 0, nt),
		Events:   make([]lotos.Event, 0, nt),
		Labels:   make([]lts.LabelID, 0, nt),
		To:       make([]int32, 0, nt),
		Keys:     append([]string(nil), g.Keys...),
		Flags:    make([]StateFlags, n),
		OfferOff: make([]int32, n+1),
	}
	for s := 0; s < n; s++ {
		for _, e := range g.Edges[s] {
			op, ev := Classify(e.Label)
			edge := int32(len(m.Ops))
			m.Ops = append(m.Ops, op)
			m.Events = append(m.Events, ev)
			m.Labels = append(m.Labels, table.Intern(e.Label))
			m.To = append(m.To, int32(e.To))
			m.Flags[s] |= flagFor(op)
			if op == OpService {
				m.OfferEvents = append(m.OfferEvents, ev)
				m.OfferEdge = append(m.OfferEdge, edge)
			}
		}
		m.Off[s+1] = int32(len(m.Ops))
		m.OfferOff[s+1] = int32(len(m.OfferEvents))
	}

	// Minimized layer: weak-bisimulation quotient, each class row sorted by
	// (label key, target class) so the canonical tables do not depend on
	// exploration order.
	q, classOf := equiv.QuotientWeakMap(g)
	m.ClassOf = classOf
	qn := q.NumStates()
	qt := q.NumTransitions()
	m.MinOff = make([]int32, qn+1)
	m.MinOps = make([]Op, 0, qt)
	m.MinEvents = make([]lotos.Event, 0, qt)
	m.MinLabels = make([]lts.LabelID, 0, qt)
	m.MinTo = make([]int32, 0, qt)
	m.MinKeys = append([]string(nil), q.Keys...)
	for c := 0; c < qn; c++ {
		row := append([]lts.Edge(nil), q.Edges[c]...)
		sort.SliceStable(row, func(i, j int) bool {
			ki, kj := row[i].Label.Key(), row[j].Label.Key()
			if ki != kj {
				return ki < kj
			}
			return row[i].To < row[j].To
		})
		for _, e := range row {
			op, ev := Classify(e.Label)
			m.MinOps = append(m.MinOps, op)
			m.MinEvents = append(m.MinEvents, ev)
			m.MinLabels = append(m.MinLabels, table.Intern(e.Label))
			m.MinTo = append(m.MinTo, int32(e.To))
		}
		m.MinOff[c+1] = int32(len(m.MinTo))
	}
	return m
}

// Fleet is the compilation result for a set of protocol entities: the
// machines that compiled plus, per entity that did not, the structured
// reason. A fleet with Errors is still runnable — the runtime executes the
// failed entities with the AST interpreter (a mixed fleet).
type Fleet struct {
	// Table is the label table shared by all machines of the fleet.
	Table *lts.LabelTable
	// Machines maps each successfully compiled place to its machine.
	Machines map[int]*Machine
	// Errors maps each failed place to its compile error.
	Errors map[int]*CompileError
}

// Compiled reports whether place compiled.
func (f *Fleet) Compiled(place int) bool {
	_, ok := f.Machines[place]
	return ok
}

// CompileEntities compiles every entity of a derived protocol, in ascending
// place order (so shared-table label ids are deterministic). It never fails
// as a whole: entities that cannot be compiled are recorded in Errors and
// the caller runs them interpreted.
func CompileEntities(entities map[int]*lotos.Spec, cfg Config) *Fleet {
	if cfg.Table == nil {
		cfg.Table = lts.NewLabelTable()
	}
	f := &Fleet{
		Table:    cfg.Table,
		Machines: make(map[int]*Machine, len(entities)),
		Errors:   map[int]*CompileError{},
	}
	places := make([]int, 0, len(entities))
	for p := range entities {
		places = append(places, p)
	}
	sort.Ints(places)
	for _, p := range places {
		machine, err := Compile(p, entities[p], cfg)
		if err != nil {
			ce, ok := err.(*CompileError)
			if !ok {
				ce = &CompileError{Place: p, Reason: err.Error(), err: err}
			}
			f.Errors[p] = ce
			continue
		}
		f.Machines[p] = machine
	}
	return f
}
