// Package fsm compiles derived protocol entities — the behaviour
// expressions PE_p produced by the derivation algorithm in internal/core —
// into table-driven finite state machines, so the concurrent runtime
// (internal/sim) can execute an entity by indexed array lookups instead of
// re-deriving SOS transitions from its syntax tree on every step.
//
// A compiled Machine carries two layers over one shared lts.LabelTable:
//
//   - The EXACT layer is the entity's explored labelled transition system
//     flattened into compressed-sparse-row int32 tables, with each state's
//     transitions in exactly the derivation order of lts.Env.Transitions.
//     This layer drives execution and counterexample replay: a runner
//     walking it is step-for-step and random-choice-for-random-choice
//     indistinguishable from the AST interpreter, and the transition
//     indices pinned by compose.Witness steps select the same transitions.
//
//   - The MINIMIZED layer is the weak-bisimulation quotient of the exact
//     layer (equiv.QuotientWeak), with each class's transitions sorted by
//     (label key, target class) — a canonical minimal form independent of
//     exploration order. It is the compact artifact reported by compile
//     statistics, and ClassOf maps every exact state into it.
//
// Entities whose state space exceeds the configured cap (the symptom of
// unbounded recursion, e.g. the anbn counter service) fail to compile with
// a structured *CompileError; callers fall back to the AST interpreter for
// those entities, so mixed fleets work.
package fsm

import (
	"fmt"

	"repro/internal/lotos"
	"repro/internal/lts"
)

// Op is the dispatch kind of one compiled transition: what the runtime has
// to do to execute it. It refines lts.LabelKind with the runtime-relevant
// event distinctions (send vs receive vs service primitive, and the
// flushing receive semantics of interrupt-handshake control messages).
type Op uint8

const (
	// OpInternal is the unobservable internal action i.
	OpInternal Op = iota
	// OpDelta is successful termination δ.
	OpDelta
	// OpSend emits a synchronization message into the medium.
	OpSend
	// OpRecv consumes the head of a FIFO channel.
	OpRecv
	// OpRecvFlush consumes a message from anywhere in its channel,
	// discarding everything queued before it (interrupt-handshake control
	// messages, see core.FlushingMsgID).
	OpRecvFlush
	// OpService offers a service primitive to the local user.
	OpService
)

// String renders the op for diagnostics.
func (o Op) String() string {
	switch o {
	case OpInternal:
		return "internal"
	case OpDelta:
		return "delta"
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpRecvFlush:
		return "recv-flush"
	case OpService:
		return "service"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// StateFlags summarizes which dispatch classes a state's transition row
// contains, so the runtime can skip work (e.g. a state with only service
// offers never scans for executable candidates).
type StateFlags uint8

const (
	// HasDelta marks a state with a successful-termination transition.
	HasDelta StateFlags = 1 << iota
	// HasInternal marks a state with an internal transition.
	HasInternal
	// HasSend marks a state with a send transition.
	HasSend
	// HasRecv marks a state with a receive (plain or flushing) transition.
	HasRecv
	// HasService marks a state with a service-primitive offer.
	HasService
)

// Machine is one compiled protocol entity. All slices are immutable after
// compilation; a Machine is safe for concurrent use by any number of
// runners.
//
// Exact layer: state s's transitions are the parallel entries
// Ops/Events/Labels/To in [Off[s], Off[s+1]), in derivation order. State 0
// is the initial state.
//
// Minimized layer: class c's transitions are MinOps/MinEvents/MinLabels/
// MinTo in [MinOff[c], MinOff[c+1]), sorted by (label key, target class).
// ClassOf[s] is the class of exact state s; ClassOf[0] is always 0.
type Machine struct {
	// Place is the entity's protocol place (0 when compiled standalone).
	Place int
	// Table interns the labels of both layers (shared across a Fleet).
	Table *lts.LabelTable

	// Off/Ops/Events/Labels/To are the exact transition tables.
	Off    []int32
	Ops    []Op
	Events []lotos.Event
	Labels []lts.LabelID
	To     []int32
	// Keys holds the canonical expression key of each exact state
	// (diagnostics: blocked-state reporting renders Keys[current]).
	Keys []string
	// Flags summarizes each exact state's dispatch classes.
	Flags []StateFlags

	// OfferOff/OfferEvents/OfferEdge are the service-primitive dispatch
	// rows: state s offers OfferEvents[OfferOff[s]:OfferOff[s+1]] to its
	// user, and OfferEdge maps each offer back to its exact edge index.
	OfferOff    []int32
	OfferEvents []lotos.Event
	OfferEdge   []int32

	// ClassOf, MinOff, MinOps, MinEvents, MinLabels, MinTo, MinKeys are the
	// minimized layer.
	ClassOf   []int32
	MinOff    []int32
	MinOps    []Op
	MinEvents []lotos.Event
	MinLabels []lts.LabelID
	MinTo     []int32
	MinKeys   []string
}

// NumStates returns the exact layer's state count.
func (m *Machine) NumStates() int { return len(m.Off) - 1 }

// NumTransitions returns the exact layer's transition count.
func (m *Machine) NumTransitions() int { return len(m.Ops) }

// MinStates returns the minimized layer's state count (the number of weak-
// bisimilarity classes of the entity behaviour).
func (m *Machine) MinStates() int { return len(m.MinOff) - 1 }

// MinTransitions returns the minimized layer's transition count.
func (m *Machine) MinTransitions() int { return len(m.MinTo) }

// Row returns the exact edge index range of state s.
func (m *Machine) Row(s int32) (lo, hi int32) { return m.Off[s], m.Off[s+1] }

// Offers returns state s's service-primitive offers (shared slice — callers
// must not mutate) and the parallel exact edge indices.
func (m *Machine) Offers(s int32) ([]lotos.Event, []int32) {
	lo, hi := m.OfferOff[s], m.OfferOff[s+1]
	return m.OfferEvents[lo:hi], m.OfferEdge[lo:hi]
}

// label reconstructs the lts.Label of exact edge e.
func (m *Machine) label(e int32) lts.Label {
	switch m.Ops[e] {
	case OpInternal:
		return lts.Internal()
	case OpDelta:
		return lts.Delta()
	default:
		return lts.EventLabel(m.Events[e])
	}
}

// Graph reconstructs the exact layer as an lts.Graph (state expressions are
// not retained by compilation, so States holds nils; Keys and Edges are
// faithful). Used by equivalence checks and graph reporting.
func (m *Machine) Graph() *lts.Graph {
	n := m.NumStates()
	g := &lts.Graph{
		States:   make([]lotos.Expr, n),
		Keys:     append([]string(nil), m.Keys...),
		Edges:    make([][]lts.Edge, n),
		Depth:    make([]int, n),
		ObsDepth: make([]int, n),
		Frontier: map[int]bool{},
	}
	for s := 0; s < n; s++ {
		lo, hi := m.Off[s], m.Off[s+1]
		if lo == hi {
			continue
		}
		es := make([]lts.Edge, 0, hi-lo)
		for e := lo; e < hi; e++ {
			es = append(es, lts.Edge{Label: m.label(e), To: int(m.To[e])})
		}
		g.Edges[s] = es
	}
	return g
}

// MinGraph reconstructs the minimized layer as an lts.Graph.
func (m *Machine) MinGraph() *lts.Graph {
	n := m.MinStates()
	g := &lts.Graph{
		States:   make([]lotos.Expr, n),
		Keys:     append([]string(nil), m.MinKeys...),
		Edges:    make([][]lts.Edge, n),
		Depth:    make([]int, n),
		ObsDepth: make([]int, n),
		Frontier: map[int]bool{},
	}
	minLabel := func(e int32) lts.Label {
		switch m.MinOps[e] {
		case OpInternal:
			return lts.Internal()
		case OpDelta:
			return lts.Delta()
		default:
			return lts.EventLabel(m.MinEvents[e])
		}
	}
	for c := 0; c < n; c++ {
		lo, hi := m.MinOff[c], m.MinOff[c+1]
		if lo == hi {
			continue
		}
		es := make([]lts.Edge, 0, hi-lo)
		for e := lo; e < hi; e++ {
			es = append(es, lts.Edge{Label: minLabel(e), To: int(m.MinTo[e])})
		}
		g.Edges[c] = es
	}
	return g
}

// CompileError reports that one entity's behaviour could not be compiled —
// its reachable state space exceeded the cap (unbounded recursion), or
// transition derivation itself failed. Callers are expected to fall back to
// the AST interpreter for the affected entity.
type CompileError struct {
	// Place is the entity's protocol place.
	Place int
	// States is the number of states explored when compilation stopped.
	States int
	// Cap is the state cap compilation ran with (0 when the failure was not
	// a cap overflow).
	Cap int
	// Reason describes the failure.
	Reason string

	err error // underlying cause, for Unwrap (nil for cap overflows)
}

// Error implements the error interface.
func (e *CompileError) Error() string {
	return fmt.Sprintf("fsm: entity %d: %s", e.Place, e.Reason)
}

// Unwrap returns the underlying error (nil for cap overflows).
func (e *CompileError) Unwrap() error { return e.err }
