package fsm

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/equiv"
	"repro/internal/lotos"
	"repro/internal/lts"
)

func deriveFor(t testing.TB, src string) *core.Derivation {
	t.Helper()
	d, err := core.Derive(lotos.MustParse(src), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func exploreEntity(t testing.TB, sp *lotos.Spec) *lts.Graph {
	t.Helper()
	clone := lotos.CloneSpec(sp)
	env, err := lts.EnvFor(clone)
	if err != nil {
		t.Fatal(err)
	}
	g, err := lts.Explore(env, clone.Root.Expr, lts.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCompileMatchesExploration(t *testing.T) {
	d := deriveFor(t, "SPEC a1; exit >> (b2; exit ||| c3; exit) >> d1; exit ENDSPEC")
	for _, p := range d.Places {
		m, err := Compile(p, d.Entities[p], Config{})
		if err != nil {
			t.Fatalf("place %d: %v", p, err)
		}
		g := exploreEntity(t, d.Entities[p])
		if m.NumStates() != g.NumStates() || m.NumTransitions() != g.NumTransitions() {
			t.Fatalf("place %d: machine %d/%d states/transitions, exploration %d/%d",
				p, m.NumStates(), m.NumTransitions(), g.NumStates(), g.NumTransitions())
		}
		// The exact layer must reproduce the exploration edge-for-edge in
		// derivation order — that is what makes the FSM engine's random
		// choices and witness transition indices line up with the AST
		// interpreter's.
		mg := m.Graph()
		for s := 0; s < g.NumStates(); s++ {
			if len(mg.Edges[s]) != len(g.Edges[s]) {
				t.Fatalf("place %d state %d: %d edges vs %d", p, s, len(mg.Edges[s]), len(g.Edges[s]))
			}
			for i, e := range g.Edges[s] {
				me := mg.Edges[s][i]
				if me.To != e.To || me.Label.Key() != e.Label.Key() {
					t.Fatalf("place %d state %d edge %d: %v->%d vs %v->%d",
						p, s, i, me.Label, me.To, e.Label, e.To)
				}
			}
		}
		if !equiv.WeakBisimilar(mg, g) {
			t.Errorf("place %d: exact layer not weakly bisimilar to exploration", p)
		}
		if !equiv.WeakBisimilar(m.MinGraph(), g) {
			t.Errorf("place %d: minimized layer not weakly bisimilar to exploration", p)
		}
		if want := equiv.NumClassesWeak(g); m.MinStates() != want {
			t.Errorf("place %d: MinStates = %d, NumClassesWeak = %d", p, m.MinStates(), want)
		}
	}
}

func TestCompileDispatchRows(t *testing.T) {
	d := deriveFor(t, "SPEC a1; b2; exit ENDSPEC")
	m, err := Compile(1, d.Entities[1], Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Initial state of entity 1 offers the service primitive a1.
	offers, edges := m.Offers(0)
	if len(offers) != 1 || offers[0].Kind != lotos.EvService || offers[0].Name != "a" {
		t.Fatalf("initial offers = %v", offers)
	}
	if m.Ops[edges[0]] != OpService {
		t.Fatalf("offer edge op = %v", m.Ops[edges[0]])
	}
	if m.Flags[0]&HasService == 0 {
		t.Fatalf("initial flags = %v, want HasService", m.Flags[0])
	}
	// Somewhere in the machine there must be a send (entity 1 notifies
	// entity 2) and a delta.
	var sawSend, sawDelta bool
	for _, op := range m.Ops {
		switch op {
		case OpSend:
			sawSend = true
		case OpDelta:
			sawDelta = true
		}
	}
	if !sawSend || !sawDelta {
		t.Errorf("ops missing dispatch kinds: send=%v delta=%v", sawSend, sawDelta)
	}
}

func TestCompileDeterministic(t *testing.T) {
	d := deriveFor(t, "SPEC (a1; b2; exit [] c1; d2; exit) [> e2; d2; exit ENDSPEC")
	for _, p := range d.Places {
		m1, err1 := Compile(p, d.Entities[p], Config{})
		m2, err2 := Compile(p, d.Entities[p], Config{})
		if err1 != nil || err2 != nil {
			t.Fatalf("place %d: %v / %v", p, err1, err2)
		}
		m1.Table, m2.Table = nil, nil // tables compare by pointer identity
		if !reflect.DeepEqual(m1, m2) {
			t.Errorf("place %d: repeated compilation differs", p)
		}
	}
}

func TestCompileUnboundedRecursionFails(t *testing.T) {
	// Example 2 (a^n b^n): the derived entities stack one continuation per
	// recursion level, so their state spaces are unbounded.
	d := deriveFor(t, `SPEC A WHERE PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END ENDSPEC`)
	_, err := Compile(1, d.Entities[1], Config{MaxStates: 256})
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CompileError", err)
	}
	if ce.Place != 1 || ce.Cap != 256 || ce.States < 256 {
		t.Errorf("CompileError fields: %+v", ce)
	}
	if ce.Error() == "" || ce.Unwrap() != nil {
		t.Errorf("cap overflow: Error()=%q Unwrap()=%v", ce.Error(), ce.Unwrap())
	}
}

func TestCompileEntitiesMixedFleet(t *testing.T) {
	d := deriveFor(t, `SPEC A WHERE PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END ENDSPEC`)
	f := CompileEntities(d.Entities, Config{MaxStates: 256})
	if len(f.Machines)+len(f.Errors) != len(d.Entities) {
		t.Fatalf("fleet covers %d+%d of %d entities", len(f.Machines), len(f.Errors), len(d.Entities))
	}
	if len(f.Errors) == 0 {
		t.Fatalf("expected at least one entity over the cap, got none (machines=%d)", len(f.Machines))
	}
	for p, m := range f.Machines {
		if m.Table != f.Table {
			t.Errorf("place %d: machine not on the fleet's shared table", p)
		}
		if f.Compiled(p) != true {
			t.Errorf("Compiled(%d) = false", p)
		}
	}
	for p := range f.Errors {
		if f.Compiled(p) {
			t.Errorf("Compiled(%d) = true for failed entity", p)
		}
	}

	// A terminating fleet compiles fully.
	d2 := deriveFor(t, "SPEC a1; b2; c3; exit ENDSPEC")
	f2 := CompileEntities(d2.Entities, Config{})
	if len(f2.Errors) != 0 || len(f2.Machines) != len(d2.Entities) {
		t.Fatalf("terminating fleet: machines=%d errors=%v", len(f2.Machines), f2.Errors)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpInternal: "internal", OpDelta: "delta", OpSend: "send",
		OpRecv: "recv", OpRecvFlush: "recv-flush", OpService: "service",
		Op(99): "Op(99)",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", uint8(op), got, want)
		}
	}
}
