package fsm_test

// FuzzCompile drives arbitrary specifications through parse, derive and
// FSM compilation, holding the compiler to its three contracts on every
// input the fuzzer discovers:
//
//   - compilation never panics: each entity either yields a machine or a
//     structured *CompileError naming its place;
//   - minimization is exact: a machine's minimized layer has one state per
//     weak-bisimulation class of its exact layer, never more or fewer;
//   - fallback composes: whatever mix of compiled and overflowed entities
//     comes out, the fleet runs — a lockstep simulation over the mixed
//     fleet must execute without an engine error.
//
// The test lives in the external package so it can drive the sim runtime
// over the compiled fleets without an import cycle.

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/equiv"
	"repro/internal/fsm"
	"repro/internal/lotos"
	"repro/internal/sim"
)

func seedCompileCorpus(f *testing.F) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.spec"))
	if err != nil {
		f.Fatal(err)
	}
	if len(matches) == 0 {
		f.Fatal("no seed specs found under specs/")
	}
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	for _, s := range []string{
		// Finite shapes of every operator the compiler flattens.
		"SPEC a1; b2; exit ENDSPEC",
		"SPEC (a1; b2; exit [] c1; d2; exit) [> e2; d2; exit ENDSPEC",
		"SPEC a1; exit >> (b2; exit ||| c3; exit) >> d1; exit ENDSPEC",
		"SPEC (a1; s4; exit ||| b2; s4; exit) |[s4]| s4; c4; exit ENDSPEC",
		// Unbounded recursion: must overflow into a structured fallback.
		"SPEC A WHERE PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END ENDSPEC",
		// Degenerate service with no primitives: derives zero entities.
		"SPEC exit ENDSPEC",
		"",
	} {
		f.Add(s)
	}
}

func FuzzCompile(f *testing.F) {
	seedCompileCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		sp, err := lotos.Parse(src)
		if err != nil {
			return // ungrammatical input: the parser's contract, not ours
		}
		d, err := core.Derive(sp, core.Options{})
		if err != nil {
			return // restriction violations reject the service before compilation
		}
		fleet := fsm.CompileEntities(d.Entities, fsm.Config{MaxStates: 256})
		for place := range d.Entities {
			m := fleet.Machines[place]
			if m == nil {
				ce := fleet.Errors[place]
				if ce == nil {
					t.Fatalf("entity %d: no machine and no compile error", place)
				}
				if ce.Place != place || ce.Error() == "" {
					t.Fatalf("entity %d: malformed compile error %+v", place, ce)
				}
				continue
			}
			if fleet.Errors[place] != nil {
				t.Fatalf("entity %d: both a machine and a compile error", place)
			}
			// Minimization is exact: one minimized state per weak class.
			if want := equiv.NumClassesWeak(m.Graph()); m.MinStates() != want {
				t.Fatalf("entity %d: %d minimized states, want %d weak classes\ninput: %q",
					place, m.MinStates(), want, src)
			}
			// Tables are well-formed: every transition targets a real state.
			for _, to := range m.To {
				if to < 0 || int(to) >= m.NumStates() {
					t.Fatalf("entity %d: transition target %d out of range [0,%d)", place, to, m.NumStates())
				}
			}
			for _, to := range m.MinTo {
				if to < 0 || int(to) >= m.MinStates() {
					t.Fatalf("entity %d: minimized target %d out of range [0,%d)", place, to, m.MinStates())
				}
			}
		}
		if len(d.Entities) == 0 {
			return // nothing to run
		}
		// Fallback composes: the mixed fleet must run exactly like the AST
		// interpreter. A spec can legitimately fail at runtime (e.g.
		// unguarded recursion exceeds the interpreter's unfold bound), but
		// then it must fail under the pure AST engine too — the FSM engine
		// may not introduce or mask errors, and on success the lockstep
		// traces must be identical.
		base := sim.Config{Seed: 1, MaxEvents: 8, Timeout: 250 * time.Millisecond, Lockstep: true}
		astRes, astErr := sim.Run(d.Entities, base)
		fsmCfg := base
		fsmCfg.Engine = sim.EngineFSM
		fsmCfg.Fleet = fleet
		res, err := sim.Run(d.Entities, fsmCfg)
		if (err == nil) != (astErr == nil) {
			t.Fatalf("engines disagree on runnability: ast err=%v, fsm err=%v\ninput: %q", astErr, err, src)
		}
		if err != nil {
			return // both engines reject the spec at runtime — consistent
		}
		if astRes.TimedOut || res.TimedOut {
			return // the wall-clock cut is not deterministic across engines
		}
		if !reflect.DeepEqual(astRes.TraceStrings(), res.TraceStrings()) {
			t.Fatalf("traces diverge\n ast: %v\n fsm: %v\ninput: %q",
				astRes.TraceStrings(), res.TraceStrings(), src)
		}
		for p := range d.Entities {
			want := sim.EngineAST
			if fleet.Machines[p] != nil {
				want = sim.EngineFSM
			}
			if res.Engines[p] != want {
				t.Fatalf("entity %d ran %s, want %s", p, res.Engines[p], want)
			}
		}
	})
}
