package wire

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fsm"
	"repro/internal/lotos"
	"repro/internal/medium"
)

// testTable builds a small interning table from a hand-made fleet-like
// alphabet by compiling a tiny derived corpus member would drag in the
// whole derivation; instead, exercise TableFromFleet on a machine built by
// the compiler from a minimal two-place spec.
func testTable(t testing.TB) *MsgTable {
	ent, err := lotos.Parse(`SPEC a1; s2(7); r2(9); exit ENDSPEC`)
	if err != nil {
		t.Fatalf("parse entity: %v", err)
	}
	fleet := fsm.CompileEntities(map[int]*lotos.Spec{1: ent}, fsm.Config{})
	if fleet.Machines[1] == nil {
		t.Fatalf("entity failed to compile: %v", fleet.Errors[1])
	}
	return TableFromFleet(fleet)
}

// frameCases enumerates one representative frame per type.
func frameCases(table *MsgTable) []*Frame {
	var interned Msg
	if table.Len() > 0 {
		interned, _ = table.Lookup(0)
	}
	return []*Frame{
		{Type: FrameHello, Version: ProtocolVersion, Kind: ConnControl, Place: 3,
			SpecDigest: 0xdeadbeef, TableDigest: table.Digest(), Addr: "127.0.0.1:4242", Engine: "fsm"},
		{Type: FrameData, From: 1, To: 2, Seq: 7, Msg: interned},
		{Type: FrameData, From: 2, To: 1, Seq: 1, Msg: Msg{Node: 99, Occ: "0.1.2"}},
		{Type: FrameData, From: 2, To: 1, Seq: 2, Msg: Msg{Node: -1, Tag: "x"}},
		{Type: FrameAck, From: 1, To: 2, Seq: 7},
		{Type: FramePeers, Peers: []Peer{{Place: 1, Addr: "a:1"}, {Place: 2, Addr: "b:2"}}},
		{Type: FrameReady},
		{Type: FrameStart, Seed: -12345, Mode: ModeReplay},
		{Type: FrameStep},
		{Type: FrameStepExact, Op: uint8(fsm.OpSend), TIndex: 4},
		{Type: FrameStepResult, Progressed: true, Done: false, Queued: 2,
			HasEvent: true, EventName: "read1", EventPlace: 1},
		{Type: FrameStepResult},
		{Type: FrameChoose, Offered: []ServicePrimitive{{Name: "read", Place: 1}, {Name: "write", Place: 2}}},
		{Type: FrameChooseReply, Choice: -1},
		{Type: FrameChooseReply, Choice: 1},
		{Type: FrameSeq, GlobalSeq: 41},
		{Type: FrameEnabled},
		{Type: FrameEnabledReport, Delta: true, RecvReady: true, SendTargets: []int{2, 3},
			QueueLens: []QueueLen{{From: 2, Len: 1}}},
		{Type: FrameHalt, Outcome: OutDeadlocked, Reason: "quiescent"},
		{Type: FrameError, ErrMsg: "boom"},
	}
}

// TestFrameRoundTrip encodes and decodes every frame type and requires the
// exact struct back.
func TestFrameRoundTrip(t *testing.T) {
	table := testTable(t)
	for _, f := range frameCases(table) {
		buf, err := f.Encode(table)
		if err != nil {
			t.Fatalf("%s: encode: %v", f.Type, err)
		}
		got, err := DecodeBody(buf[4:], table)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Type, err)
		}
		if !reflect.DeepEqual(f, got) {
			t.Errorf("%s: round trip diverges\n in:  %+v\n out: %+v", f.Type, f, got)
		}
	}
}

// TestFrameRoundTripStream round-trips frames through Write/ReadFrame over
// one stream.
func TestFrameRoundTripStream(t *testing.T) {
	table := testTable(t)
	var buf bytes.Buffer
	cases := frameCases(table)
	for _, f := range cases {
		if err := WriteFrame(&buf, f, table); err != nil {
			t.Fatalf("%s: write: %v", f.Type, err)
		}
	}
	for _, f := range cases {
		got, err := ReadFrame(&buf, table)
		if err != nil {
			t.Fatalf("%s: read: %v", f.Type, err)
		}
		if !reflect.DeepEqual(f, got) {
			t.Errorf("%s: stream round trip diverges", f.Type)
		}
	}
	if _, err := ReadFrame(&buf, table); err != io.EOF {
		t.Errorf("stream end: want io.EOF, got %v", err)
	}
}

// TestDecodeStrictness feeds malformed bodies and requires errors, never
// panics.
func TestDecodeStrictness(t *testing.T) {
	table := testTable(t)
	cases := map[string][]byte{
		"empty body":        {},
		"unknown type":      {0xEE},
		"truncated hello":   {byte(FrameHello), 1},
		"truncated data":    {byte(FrameData), 1},
		"oversized string":  append([]byte{byte(FrameError), 0xFF, 0xFF, 0x7F}, make([]byte, 10)...),
		"unknown msg flags": {byte(FrameData), 1, 2, 1, 0x80},
		"bad msg key":       {byte(FrameData), 1, 2, 1, msgInterned, 0xF0},
		"unknown conn kind": {byte(FrameHello), 1, 9, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"unknown mode":      {byte(FrameStart), 0, 9},
		"choice range":      {byte(FrameChooseReply), 0xFF, 0xFF, 0xFF, 0x7F},
	}
	for name, body := range cases {
		if _, err := DecodeBody(body, table); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Trailing garbage after a valid frame is an error.
	buf, err := (&Frame{Type: FrameReady}).Encode(table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBody(append(buf[4:], 0), table); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing garbage: want trailing-bytes error, got %v", err)
	}
}

// TestReadFrameBoundsAllocation requires that a corrupt length prefix is
// rejected before any body allocation.
func TestReadFrameBoundsAllocation(t *testing.T) {
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(huge), nil); err != ErrFrameTooLarge {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

// TestInternedVersusVerbose checks that a table round-trips its own entries
// interned and everything else verbose, and that an interned frame decoded
// without a table errors instead of guessing.
func TestInternedVersusVerbose(t *testing.T) {
	table := testTable(t)
	if table.Len() == 0 {
		t.Fatal("test table is empty")
	}
	m, _ := table.Lookup(0)
	f := &Frame{Type: FrameData, From: 1, To: 2, Seq: 1, Msg: m}
	buf, err := f.Encode(table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBody(buf[4:], nil); err == nil {
		t.Error("interned frame decoded without a table")
	}
	// Verbose encoding survives a nil table on both sides.
	v := &Frame{Type: FrameData, From: 1, To: 2, Seq: 1, Msg: Msg{Node: 7, Occ: "0"}}
	buf, err = v.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBody(buf[4:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, got) {
		t.Errorf("verbose round trip diverges: %+v != %+v", v, got)
	}
}

// TestTableDeterminism requires that independently built tables agree
// (places iterated in any order) — the digest handshake depends on it.
func TestTableDeterminism(t *testing.T) {
	ent, err := lotos.Parse(`SPEC a1; s2(7); r2(9); exit ENDSPEC`)
	if err != nil {
		t.Fatal(err)
	}
	ent2, err := lotos.Parse(`SPEC b2; s1(3); r1(7); exit ENDSPEC`)
	if err != nil {
		t.Fatal(err)
	}
	entities := map[int]*lotos.Spec{1: ent, 2: ent2}
	a := TableForEntities(entities, 0)
	b := TableForEntities(entities, 0)
	if a.Digest() != b.Digest() || a.Len() != b.Len() {
		t.Fatalf("tables diverge: %016x/%d vs %016x/%d", a.Digest(), a.Len(), b.Digest(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		ma, _ := a.Lookup(i)
		mb, _ := b.Lookup(i)
		if ma != mb {
			t.Fatalf("key %d diverges: %+v vs %+v", i, ma, mb)
		}
	}
	if (&MsgTable{}).Digest() == a.Digest() {
		t.Error("non-empty table digests like the empty table")
	}
}

// TestMsgOfMessage round-trips the medium payload extraction.
func TestMsgOfMessage(t *testing.T) {
	m := medium.Message{From: 1, To: 2, Node: 9, Occ: "0.1", Tag: ""}
	if got := MsgOf(m).Message(1, 2); got != m {
		t.Fatalf("payload round trip diverges: %+v != %+v", got, m)
	}
}

// FuzzWireCodec holds the decoder to its safety contract on arbitrary
// bytes — never panic, never over-allocate, and reject or round-trip: any
// body that decodes must re-encode and re-decode to the same frame.
func FuzzWireCodec(f *testing.F) {
	table := testTable(f)
	for _, fr := range frameCases(table) {
		buf, err := fr.Encode(table)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := DecodeBody(body, table)
		if err != nil {
			return
		}
		buf, err := fr.Encode(table)
		if err != nil {
			// A decoded frame must be encodable: decode is stricter than
			// encode for every type it accepts.
			t.Fatalf("decoded frame does not re-encode: %v (%+v)", err, fr)
		}
		again, err := DecodeBody(buf[4:], table)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v (%+v)", err, fr)
		}
		if !reflect.DeepEqual(fr, again) {
			t.Fatalf("re-decode diverges\n first:  %+v\n second: %+v", fr, again)
		}
	})
}
