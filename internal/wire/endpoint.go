package wire

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/medium"
)

// Endpoint is the network medium of one deployed entity: it implements
// medium.Transport over per-peer TCP connections while presenting exactly
// the in-process medium's contract — one FIFO stream per directed channel,
// channel capacity honored end-to-end by windowed delivery acknowledgments.
//
// Inbound messages land in an inner *medium.Medium (immediate-delivery
// configuration), which supplies the FIFO queues, flush semantics and
// generation/wait machinery unchanged; the Endpoint's own work is the wire:
// framing, per-channel sequence numbers, cumulative acks, and the send
// window that makes a full remote queue exert backpressure on the sender
// just as a full in-process channel would block a capacity check.
type Endpoint struct {
	place      int
	table      *MsgTable
	inner      *medium.Medium
	specDigest uint64

	mu    sync.Mutex
	cond  *sync.Cond
	conns map[int]*peerConn // peer place -> data connection
	// sendSeq is the next sequence number per outbound channel (to-place);
	// the first frame on a channel carries Seq 1.
	sendSeq map[int]uint64
	// ackedTo is the highest cumulatively acked sequence per outbound
	// channel; sendSeq - ackedTo is the channel's unacked window occupancy.
	ackedTo map[int]uint64
	// recvHi is the highest sequence enqueued per inbound channel
	// (from-place); frames at or below it are duplicates, gaps are losses.
	recvHi map[int]uint64
	// window bounds unacked frames per outbound channel (0 = unbounded).
	window int
	stats  WireStats
	failed error
	closed bool

	ln net.Listener
	wg sync.WaitGroup
}

// WireStats counts Endpoint wire activity (beyond the inner medium's
// queue-level Stats).
type WireStats struct {
	// FramesSent / FramesRecv count data frames on the wire.
	FramesSent int
	FramesRecv int
	// AcksSent / AcksRecv count acknowledgment frames.
	AcksSent int
	AcksRecv int
	// Duplicates counts received data frames at or below the channel's
	// high-water sequence (re-acked, not enqueued).
	Duplicates int
	// Losses counts sequence-number gaps observed on inbound channels
	// (frames that left the sender but never arrived).
	Losses int
	// Reordered counts frames that arrived with a sequence number below an
	// already-seen gap, i.e. out of channel order.
	Reordered int
}

// peerConn is one established data connection.
type peerConn struct {
	place int
	conn  net.Conn
	wmu   sync.Mutex // serializes frame writes
}

// EndpointConfig tunes an Endpoint.
type EndpointConfig struct {
	// Place is the entity's own place number.
	Place int
	// Table is the interned message table (shared by all processes).
	Table *MsgTable
	// ChannelCap bounds unacked frames per directed channel, mirroring the
	// composition's channel capacity. 0 means unbounded.
	ChannelCap int
	// Listen is the address to listen on ("127.0.0.1:0" for loopback dev).
	Listen string
	// SpecDigest identifies the service spec revision in handshakes.
	SpecDigest uint64
}

// NewEndpoint opens the entity's data listener. ConnectPeers/AcceptPeers
// complete the mesh afterwards.
func NewEndpoint(cfg EndpointConfig) (*Endpoint, error) {
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", cfg.Listen, err)
	}
	ep := &Endpoint{
		place:   cfg.Place,
		table:   cfg.Table,
		inner:   medium.New(medium.Config{}),
		conns:   map[int]*peerConn{},
		sendSeq: map[int]uint64{},
		ackedTo: map[int]uint64{},
		recvHi:  map[int]uint64{},
		window:  cfg.ChannelCap,
		ln:      ln,
	}
	ep.cond = sync.NewCond(&ep.mu)
	ep.specDigest = cfg.SpecDigest
	return ep, nil
}

// ChannelCap returns the endpoint's per-channel window bound.
func (ep *Endpoint) ChannelCap() int { return ep.window }

// Addr returns the listener's address (resolves ":0" ports).
func (ep *Endpoint) Addr() string { return ep.ln.Addr().String() }

// Place returns the entity's place number.
func (ep *Endpoint) Place() int { return ep.place }

// EstablishMesh builds the full data mesh against the peer address map:
// the entity dials every peer with a higher place and accepts connections
// from every peer with a lower one — a deterministic orientation so each
// unordered pair establishes exactly one connection, used by both
// directions of the pair's two channels. It blocks until every expected
// connection exists.
func (ep *Endpoint) EstablishMesh(peers []Peer) error {
	expectLower := 0
	var dialErr error
	var dialWG sync.WaitGroup
	var dialMu sync.Mutex
	for _, p := range peers {
		if p.Place == ep.place {
			continue
		}
		if p.Place < ep.place {
			expectLower++
			continue
		}
		dialWG.Add(1)
		go func(p Peer) {
			defer dialWG.Done()
			if err := ep.dial(p); err != nil {
				dialMu.Lock()
				if dialErr == nil {
					dialErr = err
				}
				dialMu.Unlock()
			}
		}(p)
	}
	acceptErr := ep.acceptN(expectLower)
	dialWG.Wait()
	if dialErr != nil {
		return dialErr
	}
	if acceptErr != nil {
		return acceptErr
	}
	ep.mu.Lock()
	for _, pc := range ep.conns {
		ep.wg.Add(1)
		go ep.readLoop(pc)
	}
	ep.mu.Unlock()
	return nil
}

// dial connects to one higher-place peer and completes the handshake.
func (ep *Endpoint) dial(p Peer) error {
	conn, err := net.Dial("tcp", p.Addr)
	if err != nil {
		return fmt.Errorf("wire: entity %d dial peer %d (%s): %w", ep.place, p.Place, p.Addr, err)
	}
	hello := &Frame{
		Type: FrameHello, Version: ProtocolVersion, Kind: ConnData,
		Place: ep.place, SpecDigest: ep.specDigest, TableDigest: ep.table.Digest(),
	}
	if err := WriteFrame(conn, hello, ep.table); err != nil {
		conn.Close()
		return fmt.Errorf("wire: entity %d hello to peer %d: %w", ep.place, p.Place, err)
	}
	reply, err := ReadFrame(conn, ep.table)
	if err != nil {
		conn.Close()
		return fmt.Errorf("wire: entity %d handshake with peer %d: %w", ep.place, p.Place, err)
	}
	if err := ep.checkHello(reply, p.Place); err != nil {
		conn.Close()
		return err
	}
	ep.register(p.Place, conn)
	return nil
}

// acceptN accepts n inbound data connections from lower-place peers.
func (ep *Endpoint) acceptN(n int) error {
	for i := 0; i < n; i++ {
		conn, err := ep.ln.Accept()
		if err != nil {
			return fmt.Errorf("wire: entity %d accept: %w", ep.place, err)
		}
		hello, err := ReadFrame(conn, ep.table)
		if err != nil {
			conn.Close()
			return fmt.Errorf("wire: entity %d inbound handshake: %w", ep.place, err)
		}
		if err := ep.checkHello(hello, -1); err != nil {
			conn.Close()
			return err
		}
		reply := &Frame{
			Type: FrameHello, Version: ProtocolVersion, Kind: ConnData,
			Place: ep.place, SpecDigest: ep.specDigest, TableDigest: ep.table.Digest(),
		}
		if err := WriteFrame(conn, reply, ep.table); err != nil {
			conn.Close()
			return fmt.Errorf("wire: entity %d hello reply: %w", ep.place, err)
		}
		ep.register(hello.Place, conn)
	}
	return nil
}

// checkHello validates a data-connection handshake frame. wantPlace -1
// accepts any lower place.
func (ep *Endpoint) checkHello(f *Frame, wantPlace int) error {
	if f.Type != FrameHello {
		return fmt.Errorf("wire: entity %d expected hello, got %s", ep.place, f.Type)
	}
	if f.Version != ProtocolVersion {
		return fmt.Errorf("wire: entity %d peer speaks protocol version %d, want %d", ep.place, f.Version, ProtocolVersion)
	}
	if f.Kind != ConnData {
		return fmt.Errorf("wire: entity %d expected data connection, got %v", ep.place, f.Kind)
	}
	if wantPlace >= 0 && f.Place != wantPlace {
		return fmt.Errorf("wire: entity %d dialed peer %d but reached %d", ep.place, wantPlace, f.Place)
	}
	if f.TableDigest != ep.table.Digest() {
		return fmt.Errorf("wire: entity %d table digest mismatch with peer %d: %016x != %016x",
			ep.place, f.Place, f.TableDigest, ep.table.Digest())
	}
	if ep.specDigest != 0 && f.SpecDigest != 0 && f.SpecDigest != ep.specDigest {
		return fmt.Errorf("wire: entity %d spec digest mismatch with peer %d", ep.place, f.Place)
	}
	return nil
}

// register records an established data connection.
func (ep *Endpoint) register(place int, conn net.Conn) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if old, ok := ep.conns[place]; ok {
		old.conn.Close()
	}
	ep.conns[place] = &peerConn{place: place, conn: conn}
}

// readLoop consumes frames from one peer connection until it closes.
func (ep *Endpoint) readLoop(pc *peerConn) {
	defer ep.wg.Done()
	for {
		f, err := ReadFrame(pc.conn, ep.table)
		if err != nil {
			ep.mu.Lock()
			closed := ep.closed
			if !closed && ep.failed == nil {
				ep.failed = fmt.Errorf("wire: entity %d lost peer %d: %w", ep.place, pc.place, err)
			}
			ep.cond.Broadcast()
			ep.mu.Unlock()
			if !closed {
				// Wake any Transport waiter blocked in the inner medium.
				ep.inner.Close()
			}
			return
		}
		switch f.Type {
		case FrameData:
			ep.dataArrives(pc, f)
		case FrameAck:
			ep.ackArrives(f)
		default:
			ep.mu.Lock()
			if ep.failed == nil {
				ep.failed = fmt.Errorf("wire: entity %d unexpected %s frame from peer %d", ep.place, f.Type, pc.place)
			}
			ep.cond.Broadcast()
			ep.mu.Unlock()
		}
	}
}

// dataArrives handles one inbound data frame: duplicate suppression by
// sequence number, loss/reorder accounting on gaps, enqueue into the inner
// medium in arrival order (the wire's FIFO is the channel's FIFO), and a
// cumulative ack back to the sender. Acking after the enqueue makes the ack
// a delivery acknowledgment: when the sender's window drains, every sent
// message is consumable at its receiver.
func (ep *Endpoint) dataArrives(pc *peerConn, f *Frame) {
	if f.To != ep.place {
		return
	}
	ep.mu.Lock()
	hi := ep.recvHi[f.From]
	ep.stats.FramesRecv++
	switch {
	case f.Seq <= hi:
		ep.stats.Duplicates++
		ep.mu.Unlock()
	case f.Seq > hi+1:
		// Gap: frames hi+1 .. seq-1 never arrived (dropped in transit, e.g.
		// by a fault-injection proxy). The wire stream itself cannot
		// reorder, so the gap is loss, counted and skipped — exactly the
		// in-process medium's silent drop.
		ep.stats.Losses += int(f.Seq - hi - 1)
		ep.recvHi[f.From] = f.Seq
		ep.mu.Unlock()
		ep.inner.Send(f.Msg.Message(f.From, f.To))
	default:
		ep.recvHi[f.From] = f.Seq
		ep.mu.Unlock()
		ep.inner.Send(f.Msg.Message(f.From, f.To))
	}
	ack := &Frame{Type: FrameAck, From: f.From, To: f.To, Seq: f.Seq}
	pc.wmu.Lock()
	err := WriteFrame(pc.conn, ack, ep.table)
	pc.wmu.Unlock()
	ep.mu.Lock()
	if err != nil && ep.failed == nil && !ep.closed {
		ep.failed = fmt.Errorf("wire: entity %d ack to peer %d: %w", ep.place, pc.place, err)
	}
	ep.stats.AcksSent++
	ep.mu.Unlock()
}

// ackArrives advances the cumulative ack high-water of an outbound channel.
func (ep *Endpoint) ackArrives(f *Frame) {
	if f.From != ep.place {
		return
	}
	ep.mu.Lock()
	ep.stats.AcksRecv++
	if f.Seq > ep.ackedTo[f.To] {
		ep.ackedTo[f.To] = f.Seq
	}
	ep.cond.Broadcast()
	ep.mu.Unlock()
}

// Send transmits one message on its directed channel, blocking while the
// channel's unacked window is full — the wire image of the in-process
// medium's bounded channel. Send on a failed or closed endpoint returns
// silently (like Medium.Send after Close); the failure surfaces via Err.
func (ep *Endpoint) Send(msg medium.Message) {
	if msg.From != ep.place {
		return
	}
	if msg.To == ep.place {
		// Self-channel: no wire involved.
		ep.inner.Send(msg)
		return
	}
	ep.mu.Lock()
	for ep.window > 0 && ep.failed == nil && !ep.closed &&
		ep.sendSeq[msg.To]-ep.ackedTo[msg.To] >= uint64(ep.window) {
		ep.cond.Wait()
	}
	if ep.failed != nil || ep.closed {
		ep.mu.Unlock()
		return
	}
	pc := ep.conns[msg.To]
	if pc == nil {
		if ep.failed == nil {
			ep.failed = fmt.Errorf("wire: entity %d has no connection to peer %d", ep.place, msg.To)
		}
		ep.cond.Broadcast()
		ep.mu.Unlock()
		return
	}
	ep.sendSeq[msg.To]++
	seq := ep.sendSeq[msg.To]
	ep.stats.FramesSent++
	ep.mu.Unlock()

	f := &Frame{Type: FrameData, From: msg.From, To: msg.To, Seq: seq, Msg: MsgOf(msg)}
	pc.wmu.Lock()
	err := WriteFrame(pc.conn, f, ep.table)
	pc.wmu.Unlock()
	if err != nil {
		ep.mu.Lock()
		if ep.failed == nil && !ep.closed {
			ep.failed = fmt.Errorf("wire: entity %d send to peer %d: %w", ep.place, msg.To, err)
		}
		ep.cond.Broadcast()
		ep.mu.Unlock()
	}
}

// Flush blocks until every sent frame has been delivery-acked (or the
// endpoint fails). It is the coordinator's post-step barrier: after Flush,
// the messages this entity sent are enqueued at their receivers, so the
// next entity's candidate scan observes them exactly as it would under the
// in-process shared medium.
func (ep *Endpoint) Flush() error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for ep.failed == nil && !ep.closed && ep.unackedLocked() > 0 {
		ep.cond.Wait()
	}
	return ep.failed
}

// unackedLocked sums unacked frames across outbound channels (mu held).
func (ep *Endpoint) unackedLocked() int {
	total := 0
	for to, seq := range ep.sendSeq {
		total += int(seq - ep.ackedTo[to])
	}
	return total
}

// Err reports the endpoint's sticky failure, if any.
func (ep *Endpoint) Err() error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.failed
}

// WireStats returns a snapshot of the wire counters.
func (ep *Endpoint) WireStats() WireStats {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.stats
}

// Transport delegation: the inner medium owns the inbound queues, so the
// consume/wait face of the Transport contract is its machinery verbatim.

// TryConsume consumes the head-of-queue message if it matches.
func (ep *Endpoint) TryConsume(want medium.Message) bool { return ep.inner.TryConsume(want) }

// TryConsumeCheck reports whether TryConsume would succeed.
func (ep *Endpoint) TryConsumeCheck(want medium.Message) bool { return ep.inner.TryConsumeCheck(want) }

// TryConsumeFlush consumes the wanted message, discarding queue prefix.
func (ep *Endpoint) TryConsumeFlush(want medium.Message) bool { return ep.inner.TryConsumeFlush(want) }

// TryConsumeFlushCheck reports whether TryConsumeFlush would succeed.
func (ep *Endpoint) TryConsumeFlushCheck(want medium.Message) bool {
	return ep.inner.TryConsumeFlushCheck(want)
}

// Generation returns the inbound-queue change generation.
func (ep *Endpoint) Generation() uint64 { return ep.inner.Generation() }

// WaitChange blocks until the inbound queues change past gen.
func (ep *Endpoint) WaitChange(gen uint64) uint64 { return ep.inner.WaitChange(gen) }

// InFlight counts undelivered messages: queued inbound plus unacked
// outbound (sent but not yet known-enqueued at the receiver).
func (ep *Endpoint) InFlight() int {
	ep.mu.Lock()
	unacked := ep.unackedLocked()
	ep.mu.Unlock()
	return ep.inner.InFlight() + unacked
}

// Stats returns the inner medium's queue-level stats.
func (ep *Endpoint) Stats() medium.Stats { return ep.inner.Stats() }

// Close tears the endpoint down: listener, peer connections, inner medium.
func (ep *Endpoint) Close() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.closed = true
	conns := make([]*peerConn, 0, len(ep.conns))
	for _, pc := range ep.conns {
		conns = append(conns, pc)
	}
	ep.cond.Broadcast()
	ep.mu.Unlock()
	ep.ln.Close()
	for _, pc := range conns {
		pc.conn.Close()
	}
	ep.inner.Close()
	ep.wg.Wait()
}

var _ medium.Transport = (*Endpoint)(nil)
