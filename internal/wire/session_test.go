package wire

// The live-vs-lockstep differential gate, in-process: every corpus spec is
// deployed as one coordinator plus one goroutine per entity speaking the
// real TCP wire protocol over loopback, seeded sessions are driven to
// completion, and the protocol outcome must be byte-identical to sim.Run
// with Config{Lockstep: true} and the same seed. This is the test that
// makes the deployment layer trustworthy: the wire adds connections,
// framing, acks and a control plane, but must not add (or remove) a single
// observable behavior.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/lotos"
	"repro/internal/sim"
)

// wireMaxStates matches the sim differential sweep's compile cap: large
// enough for every finite corpus entity, small enough that the unbounded
// ones fall back to the interpreter (exercising verbose encoding live).
const wireMaxStates = 1024

// wireMaxEvents bounds non-terminating sessions, as in the sim sweep.
const wireMaxEvents = 24

// corpusEntry is one derived corpus member.
type corpusEntry struct {
	d         *core.Derivation
	disabling bool
}

// corpus parses and derives every repository corpus spec.
func corpus(t *testing.T) map[string]corpusEntry {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.spec"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus specs found: %v", err)
	}
	out := map[string]corpusEntry{}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := lotos.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: parse: %v", file, err)
		}
		d, err := core.Derive(sp, core.Options{})
		if err != nil {
			t.Fatalf("%s: derive: %v", file, err)
		}
		name := strings.TrimSuffix(filepath.Base(file), ".spec")
		out[name] = corpusEntry{d: d, disabling: strings.Contains(string(src), "[>")}
	}
	return out
}

// deployment is one in-process live deployment: a coordinator and one
// goroutine per entity, all speaking real TCP over loopback.
type deployment struct {
	coord  *Coordinator
	fleet  *fsm.Fleet
	table  *MsgTable
	logs   map[int]*bytes.Buffer
	errs   chan error
	places []int
}

// deployOptions tunes a test deployment.
type deployOptions struct {
	maxStates    int
	maxEvents    int
	rewritePeers func(place int, peers []Peer) []Peer
	timeout      time.Duration
}

// deploy starts coordinator and entities and waits for the mesh.
func deploy(t *testing.T, entities map[int]*lotos.Spec, opt deployOptions) *deployment {
	t.Helper()
	if opt.maxStates == 0 {
		opt.maxStates = wireMaxStates
	}
	if opt.timeout == 0 {
		opt.timeout = 30 * time.Second
	}
	fleet := fsm.CompileEntities(entities, fsm.Config{MaxStates: opt.maxStates})
	table := TableFromFleet(fleet)
	places := make([]int, 0, len(entities))
	for p := range entities {
		places = append(places, p)
	}
	sort.Ints(places)
	coord, err := NewCoordinator(CoordinatorConfig{
		N: len(places), Table: table, Listen: "127.0.0.1:0",
		MaxEvents: opt.maxEvents, Timeout: opt.timeout, RewritePeers: opt.rewritePeers,
	})
	if err != nil {
		t.Fatal(err)
	}
	dep := &deployment{
		coord: coord, fleet: fleet, table: table,
		logs: map[int]*bytes.Buffer{}, errs: make(chan error, len(places)),
		places: places,
	}
	for i, p := range places {
		buf := &bytes.Buffer{}
		dep.logs[p] = buf
		go func(i, p int, buf *bytes.Buffer) {
			dep.errs <- RunEntity(EntityConfig{
				Place: p, PlaceIndex: i,
				Spec: entities[p], Machine: fleet.Machines[p],
				Table: table, Coordinator: coord.Addr(), Listen: "127.0.0.1:0",
				ChannelCap: compose.DefaultChannelCap,
				TraceLog:   buf, SessionTimeout: opt.timeout,
			})
		}(i, p, buf)
	}
	if err := coord.WaitEntities(); err != nil {
		coord.Close()
		t.Fatalf("mesh establishment: %v", err)
	}
	return dep
}

// wait collects every entity's exit status after the session ended.
func (dep *deployment) wait(t *testing.T) {
	t.Helper()
	for range dep.places {
		if err := <-dep.errs; err != nil {
			t.Errorf("entity exit: %v", err)
		}
	}
	dep.coord.Close()
}

// TestCorpusLiveMatchesLockstep is the differential gate: for every corpus
// spec and a battery of seeds, the live deployment's seeded session outcome
// (trace + classification) is byte-identical to the in-process lockstep run
// with the same seed.
func TestCorpusLiveMatchesLockstep(t *testing.T) {
	if testing.Short() {
		t.Skip("live deployments are wall-clock-bound; skipped in -short")
	}
	const seeds = 3
	for name, entry := range corpus(t) {
		d := entry.d
		fleet := fsm.CompileEntities(d.Entities, fsm.Config{MaxStates: wireMaxStates})
		for seed := int64(0); seed < seeds; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				simRes, err := sim.Run(d.Entities, sim.Config{
					Seed: seed, Lockstep: true, MaxEvents: wireMaxEvents,
					Engine: sim.EngineFSM, Fleet: fleet,
				})
				if err != nil {
					t.Fatalf("lockstep run: %v", err)
				}
				dep := deploy(t, d.Entities, deployOptions{maxEvents: wireMaxEvents})
				rep, err := dep.coord.RunSeeded(seed)
				if err != nil {
					t.Fatalf("live session: %v", err)
				}
				dep.wait(t)
				if got, want := rep.Canonical(), CanonicalResult(simRes); got != want {
					t.Fatalf("live session diverges from lockstep\n live: %s\n sim:  %s", got, want)
				}
				// Engines must agree too: compiled where compiled, interpreter
				// fallback where the state cap was exceeded.
				for p, eng := range rep.Engines {
					if eng != string(simRes.Engines[p]) {
						t.Errorf("entity %d ran %s live, %s in-process", p, eng, simRes.Engines[p])
					}
				}
				checkLogsMatchReport(t, dep, rep)
			})
		}
	}
}

// checkLogsMatchReport parses every entity trace log and checks that the
// per-entity records reassemble exactly the coordinator's global trace —
// the soundness of the sequence-number merge the conformance checker
// relies on.
func checkLogsMatchReport(t *testing.T, dep *deployment, rep *SessionReport) {
	t.Helper()
	merged := make([]string, len(rep.Trace))
	for p, buf := range dep.logs {
		log, err := ParseTraceLog(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("entity %d log: %v", p, err)
		}
		if !log.DigestOK {
			t.Errorf("entity %d log: digest chain broken", p)
		}
		if !log.Ended {
			t.Errorf("entity %d log: no end record", p)
		}
		for _, rec := range log.Events {
			if rec.Seq < 0 || rec.Seq >= len(merged) {
				t.Fatalf("entity %d log: sequence %d outside global trace of %d", p, rec.Seq, len(merged))
			}
			if merged[rec.Seq] != "" {
				t.Fatalf("entity %d log: sequence %d assigned twice", p, rec.Seq)
			}
			merged[rec.Seq] = rec.Event
		}
	}
	for i, ev := range merged {
		if ev != rep.Trace[i] {
			t.Fatalf("merged log trace diverges at %d: %q != %q\n merged: %v\n report: %v",
				i, ev, rep.Trace[i], merged, rep.Trace)
		}
	}
}
