package wire

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/medium"
)

// pairUp builds a two-endpoint mesh over loopback.
func pairUp(t *testing.T, window int) (*Endpoint, *Endpoint) {
	t.Helper()
	table := testTable(t)
	a, err := NewEndpoint(EndpointConfig{Place: 1, Table: table, ChannelCap: window, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEndpoint(EndpointConfig{Place: 2, Table: table, ChannelCap: window, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	peers := []Peer{{Place: 1, Addr: a.Addr()}, {Place: 2, Addr: b.Addr()}}
	done := make(chan error, 1)
	go func() { done <- b.EstablishMesh(peers) }()
	if err := a.EstablishMesh(peers); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// waitConsumable polls until the wanted message is consumable (delivery is
// asynchronous over the wire).
func waitConsumable(t *testing.T, ep *Endpoint, want medium.Message) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	gen := ep.Generation()
	for !ep.TryConsumeCheck(want) {
		if time.Now().After(deadline) {
			t.Fatalf("message %s never became consumable", want)
		}
		gen = ep.WaitChange(gen)
	}
}

// TestEndpointFIFO sends a sequence of distinct messages and requires them
// consumable in exactly send order — the per-channel FIFO contract.
func TestEndpointFIFO(t *testing.T) {
	a, b := pairUp(t, 0)
	msgs := []medium.Message{
		{From: 1, To: 2, Node: 10, Occ: "0"},
		{From: 1, To: 2, Node: 11, Occ: "0"},
		{From: 1, To: 2, Node: 12, Occ: "0.1"},
		{From: 1, To: 2, Node: -1, Tag: "x"},
	}
	for _, m := range msgs {
		a.Send(m)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	// Head-of-queue discipline: message k+1 must not be consumable before
	// message k was consumed.
	for i, m := range msgs {
		waitConsumable(t, b, m)
		for _, later := range msgs[i+1:] {
			if later != m && b.TryConsumeCheck(later) {
				t.Fatalf("message %s consumable before %s", later, m)
			}
		}
		if !b.TryConsume(m) {
			t.Fatalf("message %s not consumable", m)
		}
	}
	if got := b.InFlight(); got != 0 {
		t.Fatalf("in flight after draining: %d", got)
	}
}

// TestEndpointFlushBarrier requires Flush to block until the receiver has
// enqueued everything: after Flush returns, the messages are consumable
// with no further waiting.
func TestEndpointFlushBarrier(t *testing.T) {
	a, b := pairUp(t, 1)
	m := medium.Message{From: 1, To: 2, Node: 10, Occ: "0"}
	a.Send(m)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if !b.TryConsumeCheck(m) {
		t.Fatal("flushed message not consumable at receiver")
	}
	if got := a.InFlight(); got != 0 {
		t.Fatalf("sender in flight after flush: %d", got)
	}
}

// TestEndpointWindowBlocks requires the send window to exert backpressure:
// with window 1 a second Send blocks until the first is delivery-acked.
func TestEndpointWindowBlocks(t *testing.T) {
	a, b := pairUp(t, 1)
	_ = b
	a.Send(medium.Message{From: 1, To: 2, Node: 10, Occ: "0"})
	sent := make(chan struct{})
	go func() {
		a.Send(medium.Message{From: 1, To: 2, Node: 11, Occ: "0"})
		close(sent)
	}()
	// The second send completes only once the ack for the first arrives —
	// which the peer produces on its own; just require it finishes.
	select {
	case <-sent:
	case <-time.After(5 * time.Second):
		t.Fatal("windowed send never unblocked")
	}
}

// TestEndpointBidirectional exercises both directions of one connection.
func TestEndpointBidirectional(t *testing.T) {
	a, b := pairUp(t, 1)
	ma := medium.Message{From: 1, To: 2, Node: 10, Occ: "0"}
	mb := medium.Message{From: 2, To: 1, Node: 20, Occ: "0"}
	a.Send(ma)
	b.Send(mb)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if !b.TryConsume(ma) || !a.TryConsume(mb) {
		t.Fatal("cross messages not consumable")
	}
}

// TestEndpointSelfChannel keeps place-local messages off the wire.
func TestEndpointSelfChannel(t *testing.T) {
	a, _ := pairUp(t, 1)
	m := medium.Message{From: 1, To: 1, Node: 5, Occ: "0"}
	a.Send(m)
	if !a.TryConsume(m) {
		t.Fatal("self message not consumable")
	}
	if st := a.WireStats(); st.FramesSent != 0 {
		t.Fatalf("self message hit the wire: %+v", st)
	}
}

// TestEndpointPeerLossSurfaces requires a torn-down peer to surface as a
// sticky error, not a hang.
func TestEndpointPeerLossSurfaces(t *testing.T) {
	a, b := pairUp(t, 1)
	b.Close()
	deadline := time.Now().Add(5 * time.Second)
	for a.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.Err() == nil {
		t.Fatal("peer loss never surfaced")
	}
	// Sends and flushes after failure return instead of blocking.
	a.Send(medium.Message{From: 1, To: 2, Node: 10, Occ: "0"})
	if err := a.Flush(); err == nil {
		t.Fatal("flush on failed endpoint reported success")
	}
}

// TestTraceLogRoundTrip writes a session log and parses it back, verifying
// records, digests and the end marker.
func TestTraceLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, 2, 42, "fsm", 0xabc, false)
	if err != nil {
		t.Fatal(err)
	}
	tw.Event(0, "read1")
	tw.Event(2, "write3")
	if err := tw.End(OutcomeCompleted); err != nil {
		t.Fatal(err)
	}
	log, err := ParseTraceLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if log.Place != 2 || log.Seed != 42 || log.Engine != "fsm" {
		t.Fatalf("start record mangled: %+v", log)
	}
	if !log.Started || !log.Ended || log.Outcome != OutcomeCompleted || !log.DigestOK {
		t.Fatalf("log flags wrong: %+v", log)
	}
	if len(log.Events) != 2 || log.Events[0].Event != "read1" || log.Events[1].Seq != 2 {
		t.Fatalf("events mangled: %+v", log.Events)
	}
}

// TestTraceLogTruncationAndTamper distinguishes the two failure shapes:
// a missing end record parses with Ended false (the crash case), while an
// edited event breaks the digest chain.
func TestTraceLogTruncationAndTamper(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, 1, 7, "ast", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	tw.Event(0, "read1")
	tw.Event(1, "write3")
	truncated := buf.String()
	log, err := ParseTraceLog(strings.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if log.Ended {
		t.Fatal("truncated log reported an end record")
	}
	if !log.DigestOK || len(log.Events) != 2 {
		t.Fatalf("truncated log should keep its (valid) events: %+v", log)
	}
	tampered := strings.Replace(truncated, "read1", "fake9", 1)
	log, err = ParseTraceLog(strings.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	if log.DigestOK {
		t.Fatal("tampered log passed the digest chain")
	}
}

// TestTraceLogRestartSegments checks that a relaunch appending to the same
// log is visible as a restart marker and resets the segment digest.
func TestTraceLogRestartSegments(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, 1, 7, "ast", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	tw.Event(0, "read1")
	// Crash here: no end record. The relaunch appends to the same file.
	tw2, err := NewTraceWriter(&buf, 1, 8, "ast", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	tw2.Event(1, "write3")
	if err := tw2.End(OutcomeAborted); err != nil {
		t.Fatal(err)
	}
	log, err := ParseTraceLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if log.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", log.Restarts)
	}
	if !log.DigestOK {
		t.Fatal("per-segment digests should verify independently")
	}
	if log.Seed != 8 {
		t.Fatalf("last start record should win: seed %d", log.Seed)
	}
	// Each start record opens a fresh numbering epoch: only the last
	// segment's events are mergeable, the earlier segment survives as the
	// restart marker.
	if len(log.Events) != 1 || log.Events[0].Event != "write3" {
		t.Fatalf("events = %+v, want the last segment's write3 only", log.Events)
	}
}
