package wire

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"time"

	"repro/internal/compose"
	"repro/internal/fsm"
	"repro/internal/lotos"
	"repro/internal/sim"
)

// The coordinator: the deployment's scheduler and service-user harness. It
// drives a distributed session in lockstep — sweeps over the entities in
// ascending place order, one granted step each — with a delivery barrier
// after every step (the entity flushes its sends before reporting), so the
// queue states any entity observes are exactly those of the in-process
// shared medium under sim's lockstep scheduler. With the harness hosted
// here and seeded sim.HarnessSeed(seed), and each entity's scheduling RNG
// seeded sim.RunnerSeed(seed, placeIndex), a seeded distributed session is
// execution-identical to sim.Run with Config{Lockstep: true, Seed: seed}:
// same candidate rows, same random draws, same trace, same outcome.

// CoordinatorConfig configures a deployment coordinator.
type CoordinatorConfig struct {
	// N is the number of entity processes to expect.
	N int
	// Table is the interning table; SpecDigest identifies the service spec.
	Table      *MsgTable
	SpecDigest uint64
	// Listen is the control listen address ("127.0.0.1:0" for loopback).
	Listen string
	// MaxEvents stops a seeded session after this many service primitives
	// (0 means unlimited), exactly as sim.Config.MaxEvents.
	MaxEvents int
	// Timeout is the wall-clock budget of one session; on expiry the session
	// aborts (OutAborted) rather than hang (default 60s).
	Timeout time.Duration
	// RewritePeers, when non-nil, edits the peer map sent to each entity —
	// the test seam that splices fault-injection proxies into chosen
	// channels (wiretest).
	RewritePeers func(place int, peers []Peer) []Peer
}

// ctrl is one entity's control connection.
type ctrl struct {
	place  int
	conn   net.Conn
	engine string
	addr   string
	done   bool
	queued int
}

// Coordinator accepts entity control connections and drives sessions.
type Coordinator struct {
	cfg   CoordinatorConfig
	ln    net.Listener
	ents  []*ctrl // ascending place order
	table *MsgTable
}

// SessionReport is the outcome of one coordinated session, mirroring
// sim.Result's classification so live and in-process runs compare directly.
type SessionReport struct {
	// Trace is the global observable trace (event strings, in global
	// sequence order).
	Trace []string
	// TracePlaces gives the executing place of each trace entry.
	TracePlaces []int
	Completed   bool
	Deadlocked  bool
	TimedOut    bool
	Stopped     bool
	// Aborted marks an infrastructure failure (lost entity, wall-clock
	// budget) — not a protocol outcome; Reason says what happened.
	Aborted bool
	Reason  string
	// Sweeps counts scheduling sweeps; Engines records each entity's engine.
	Sweeps  int
	Engines map[int]string
}

// Canonical renders the protocol outcome as one comparable string — the
// byte-identity format of the live-vs-lockstep differential gate.
func (r *SessionReport) Canonical() string {
	return canonicalOutcome(r.Trace, r.Completed, r.Deadlocked, r.TimedOut, r.Stopped)
}

// CanonicalResult renders a sim.Result in SessionReport.Canonical's format.
func CanonicalResult(res *sim.Result) string {
	return canonicalOutcome(res.TraceStrings(), res.Completed, res.Deadlocked, res.TimedOut, res.Stopped)
}

func canonicalOutcome(trace []string, completed, deadlocked, timedOut, stopped bool) string {
	outcome := "none"
	switch {
	case completed:
		outcome = OutcomeCompleted
	case deadlocked:
		outcome = OutcomeDeadlocked
	case timedOut:
		outcome = OutcomeTimedOut
	case stopped:
		outcome = OutcomeStopped
	}
	return outcome + "|" + strings.Join(trace, " ")
}

// NewCoordinator opens the control listener.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("wire: coordinator needs at least one entity")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("wire: coordinator listen %s: %w", cfg.Listen, err)
	}
	return &Coordinator{cfg: cfg, ln: ln, table: cfg.Table}, nil
}

// Addr returns the control address entities must dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// WaitEntities accepts the N entity hellos, distributes the peer map, and
// waits for every entity to report its data mesh established.
func (c *Coordinator) WaitEntities() error {
	deadline := time.Now().Add(c.cfg.Timeout)
	for len(c.ents) < c.cfg.N {
		c.ln.(*net.TCPListener).SetDeadline(deadline)
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("wire: coordinator accept: %w", err)
		}
		conn.SetDeadline(deadline)
		hello, err := ReadFrame(conn, c.table)
		if err != nil {
			conn.Close()
			return fmt.Errorf("wire: coordinator handshake: %w", err)
		}
		if hello.Type != FrameHello || hello.Kind != ConnControl {
			conn.Close()
			return fmt.Errorf("wire: coordinator expected control hello, got %s", hello.Type)
		}
		if hello.Version != ProtocolVersion {
			conn.Close()
			return fmt.Errorf("wire: entity %d speaks protocol version %d, want %d", hello.Place, hello.Version, ProtocolVersion)
		}
		if hello.TableDigest != c.table.Digest() {
			conn.Close()
			return fmt.Errorf("wire: entity %d table digest mismatch: %016x != %016x",
				hello.Place, hello.TableDigest, c.table.Digest())
		}
		for _, e := range c.ents {
			if e.place == hello.Place {
				conn.Close()
				return fmt.Errorf("wire: duplicate entity place %d", hello.Place)
			}
		}
		c.ents = append(c.ents, &ctrl{place: hello.Place, conn: conn, engine: hello.Engine, addr: hello.Addr})
	}
	sort.Slice(c.ents, func(i, j int) bool { return c.ents[i].place < c.ents[j].place })

	peers := make([]Peer, len(c.ents))
	for i, e := range c.ents {
		peers[i] = Peer{Place: e.place, Addr: e.addr}
	}
	for _, e := range c.ents {
		p := peers
		if c.cfg.RewritePeers != nil {
			p = c.cfg.RewritePeers(e.place, peers)
		}
		if err := WriteFrame(e.conn, &Frame{Type: FramePeers, Peers: p}, c.table); err != nil {
			return fmt.Errorf("wire: peers to entity %d: %w", e.place, err)
		}
	}
	for _, e := range c.ents {
		f, err := ReadFrame(e.conn, c.table)
		if err != nil {
			return fmt.Errorf("wire: awaiting ready from entity %d: %w", e.place, err)
		}
		if f.Type == FrameError {
			return fmt.Errorf("wire: entity %d failed during mesh setup: %s", e.place, f.ErrMsg)
		}
		if f.Type != FrameReady {
			return fmt.Errorf("wire: entity %d expected ready, got %s", e.place, f.Type)
		}
	}
	return nil
}

// Engines reports each connected entity's execution engine.
func (c *Coordinator) Engines() map[int]string {
	m := make(map[int]string, len(c.ents))
	for _, e := range c.ents {
		m[e.place] = e.engine
	}
	return m
}

// halt broadcasts the session end (best effort) so every entity closes its
// trace log with the outcome.
func (c *Coordinator) halt(outcome OutcomeFlags, reason string) {
	for _, e := range c.ents {
		WriteFrame(e.conn, &Frame{Type: FrameHalt, Outcome: outcome, Reason: reason}, c.table)
	}
}

// outcomeFlags folds a report's classification into Halt flags.
func (r *SessionReport) outcomeFlags() OutcomeFlags {
	var o OutcomeFlags
	if r.Completed {
		o |= OutCompleted
	}
	if r.Deadlocked {
		o |= OutDeadlocked
	}
	if r.TimedOut {
		o |= OutTimedOut
	}
	if r.Stopped {
		o |= OutStopped
	}
	if r.Aborted {
		o |= OutAborted
	}
	return o
}

// abort closes a failed session: Halt(aborted) to everyone, report flagged.
func (c *Coordinator) abort(rep *SessionReport, err error) (*SessionReport, error) {
	rep.Aborted = true
	rep.Reason = err.Error()
	c.halt(OutAborted, rep.Reason)
	return rep, err
}

// stepEntity grants one step (FrameStep, or the given exact grant) to one
// entity and serves harness requests until its StepResult arrives. Service
// events are sequenced into the report's global trace immediately — the
// FrameSeq answer is what lets the entity stamp its log record.
func (c *Coordinator) stepEntity(e *ctrl, grant *Frame, harness sim.Harness, rep *SessionReport) (*Frame, error) {
	if err := WriteFrame(e.conn, grant, c.table); err != nil {
		return nil, fmt.Errorf("wire: step grant to entity %d: %w", e.place, err)
	}
	for {
		f, err := ReadFrame(e.conn, c.table)
		if err != nil {
			return nil, fmt.Errorf("wire: awaiting step result from entity %d: %w", e.place, err)
		}
		switch f.Type {
		case FrameChoose:
			// The entity's user wants to interact: consult the shared harness
			// exactly as the in-process runner would (one Choose call, same
			// offer order), and return its verdict.
			evs := make([]lotos.Event, len(f.Offered))
			for i, o := range f.Offered {
				evs[i] = o.Event()
			}
			pick := harness.Choose(e.place, evs)
			reply := &Frame{Type: FrameChooseReply, Choice: pick}
			if err := WriteFrame(e.conn, reply, c.table); err != nil {
				return nil, fmt.Errorf("wire: harness reply to entity %d: %w", e.place, err)
			}
		case FrameStepResult:
			if f.HasEvent {
				rep.Trace = append(rep.Trace, f.EventName)
				rep.TracePlaces = append(rep.TracePlaces, e.place)
				seq := &Frame{Type: FrameSeq, GlobalSeq: len(rep.Trace) - 1}
				if err := WriteFrame(e.conn, seq, c.table); err != nil {
					return nil, fmt.Errorf("wire: sequencing event for entity %d: %w", e.place, err)
				}
			}
			return f, nil
		case FrameError:
			return nil, fmt.Errorf("wire: entity %d failed: %s", e.place, f.ErrMsg)
		default:
			return nil, fmt.Errorf("wire: entity %d sent unexpected %s during step", e.place, f.Type)
		}
	}
}

// start broadcasts the session start and arms the wall-clock budget.
func (c *Coordinator) start(seed int64, mode SessionMode) error {
	deadline := time.Now().Add(c.cfg.Timeout)
	for _, e := range c.ents {
		e.conn.SetDeadline(deadline)
		e.done = false
		e.queued = 0
	}
	for _, e := range c.ents {
		f := &Frame{Type: FrameStart, Seed: seed, Mode: mode}
		if err := WriteFrame(e.conn, f, c.table); err != nil {
			return fmt.Errorf("wire: start to entity %d: %w", e.place, err)
		}
	}
	return nil
}

// RunSeeded drives one seeded session to its end, mirroring Session.StepN
// run to completion: sweeps in ascending place order, each live entity
// granted one step, MaxEvents stops taking effect mid-sweep, and a sweep
// without progress classified as deadlock (nothing queued anywhere) or a
// stuck run. The report's protocol outcome is byte-identical (Canonical)
// to sim.Run with Config{Lockstep: true, Seed: seed} over the same
// entities.
func (c *Coordinator) RunSeeded(seed int64) (*SessionReport, error) {
	rep := &SessionReport{Engines: c.Engines()}
	if err := c.start(seed, ModeSeeded); err != nil {
		return c.abort(rep, err)
	}
	harness := sim.NewAcceptAll(sim.HarnessSeed(seed))
	stopped, maxhit := false, false
	for !stopped {
		progress := false
		alive := 0
		for _, e := range c.ents {
			if e.done || stopped {
				continue
			}
			alive++
			res, err := c.stepEntity(e, &Frame{Type: FrameStep}, harness, rep)
			if err != nil {
				return c.abort(rep, err)
			}
			if res.Done {
				e.done = true
			}
			if res.Progressed {
				progress = true
			}
			e.queued = res.Queued
			if res.HasEvent && c.cfg.MaxEvents > 0 && len(rep.Trace) >= c.cfg.MaxEvents {
				// The event that hit the budget stops the run mid-sweep,
				// exactly as world.record does under the lockstep scheduler.
				stopped, maxhit = true, true
			}
		}
		if alive == 0 {
			break
		}
		rep.Sweeps++
		if !progress {
			// A full sweep without progress: with the delivery barrier,
			// nothing is on the wire, so the global in-flight count is the
			// sum of the entities' queued messages — and during a
			// no-progress sweep the queues are static, so the per-entity
			// reports form a consistent snapshot.
			total, err := c.totalQueued()
			if err != nil {
				return c.abort(rep, err)
			}
			stopped = true
			if total == 0 {
				rep.Deadlocked = true
			} else {
				rep.TimedOut = true
			}
		}
	}
	rep.Stopped = maxhit
	rep.Completed = c.allDone()
	c.halt(rep.outcomeFlags(), "")
	return rep, nil
}

// allDone reports that every entity terminated.
func (c *Coordinator) allDone() bool {
	for _, e := range c.ents {
		if !e.done {
			return false
		}
	}
	return true
}

// enabledReports polls every entity's enabledness and queue occupancy.
func (c *Coordinator) enabledReports() (map[int]*Frame, error) {
	for _, e := range c.ents {
		if err := WriteFrame(e.conn, &Frame{Type: FrameEnabled}, c.table); err != nil {
			return nil, fmt.Errorf("wire: enabled query to entity %d: %w", e.place, err)
		}
	}
	reports := make(map[int]*Frame, len(c.ents))
	for _, e := range c.ents {
		f, err := ReadFrame(e.conn, c.table)
		if err != nil {
			return nil, fmt.Errorf("wire: awaiting enabled report from entity %d: %w", e.place, err)
		}
		if f.Type == FrameError {
			return nil, fmt.Errorf("wire: entity %d failed: %s", e.place, f.ErrMsg)
		}
		if f.Type != FrameEnabledReport {
			return nil, fmt.Errorf("wire: entity %d expected enabled report, got %s", e.place, f.Type)
		}
		reports[e.place] = f
	}
	return reports, nil
}

// totalQueued sums queued messages across every entity's inbound channels.
func (c *Coordinator) totalQueued() (int, error) {
	reports, err := c.enabledReports()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, f := range reports {
		for _, q := range f.QueueLens {
			total += q.Len
		}
	}
	return total, nil
}

// ReplayReport is the outcome of a live witness replay, mirroring
// sim.ReplayResult.
type ReplayReport struct {
	// Trace is the observable projection of the replayed execution.
	Trace []string
	// Terminated reports the witness path took the global δ.
	Terminated bool
	// Deadlocked reports that after the final step no entity move, no
	// global δ, and no fault of the witness's model is enabled.
	Deadlocked bool
	// Steps counts executed witness steps.
	Steps   int
	Aborted bool
	Reason  string
}

// exactOp maps a witness step kind to the granted transition op.
func exactOp(kind string) (fsm.Op, bool) {
	switch kind {
	case compose.StepInternal:
		return fsm.OpInternal, true
	case compose.StepService:
		return fsm.OpService, true
	case compose.StepSend:
		return fsm.OpSend, true
	case compose.StepRecv:
		return fsm.OpRecv, true
	}
	return 0, false
}

// RunReplay drives a verification counterexample step-for-step through the
// live deployment — the distributed face of sim.ReplayWitness. Entity steps
// become exact grants; loss steps are realized by the fault-injection
// proxy on the wire (configured from the same witness, see wiretest), so
// the coordinator only advances past them. Duplication and reordering
// faults are not supported live: their wire realization would need
// sequence-number rewriting that the conformance contract has no use for.
func (c *Coordinator) RunReplay(w *compose.Witness) (*ReplayReport, error) {
	rep := &ReplayReport{}
	if w == nil {
		return rep, fmt.Errorf("wire: nil witness")
	}
	if w.Faults.Duplication || w.Faults.Reorder {
		return rep, fmt.Errorf("wire: live replay supports loss faults only")
	}
	cap := w.ChannelCap
	if cap <= 0 {
		cap = compose.DefaultChannelCap
	}
	if err := c.start(0, ModeReplay); err != nil {
		rep.Aborted, rep.Reason = true, err.Error()
		c.halt(OutAborted, rep.Reason)
		return rep, err
	}
	// The replay harness should never be consulted: every grant is exact.
	harness := sim.NewScripted(nil)
	collector := &SessionReport{}
	fail := func(err error) (*ReplayReport, error) {
		rep.Aborted, rep.Reason = true, err.Error()
		c.halt(OutAborted, rep.Reason)
		return rep, err
	}
	for i, st := range w.Steps {
		switch st.Kind {
		case compose.StepDelta:
			for _, e := range c.ents {
				grant := &Frame{Type: FrameStepExact, Op: uint8(fsm.OpDelta)}
				if _, err := c.stepEntity(e, grant, harness, collector); err != nil {
					return fail(fmt.Errorf("witness step %d [%s]: %w", i+1, st.Kind, err))
				}
				e.done = true
			}
			rep.Trace = append(rep.Trace, "delta")
			rep.Terminated = true
		case compose.StepLoss:
			// Realized on the wire by the proxy when the frame passed; the
			// abstract queue position is accounted for by the plan that
			// configured the proxy (wiretest.LossPlan).
		default:
			op, ok := exactOp(st.Kind)
			if !ok {
				return fail(fmt.Errorf("witness step %d: unsupported kind %q for live replay", i+1, st.Kind))
			}
			e := c.entity(st.Place)
			if e == nil {
				return fail(fmt.Errorf("witness step %d names unknown entity %d", i+1, st.Place))
			}
			grant := &Frame{Type: FrameStepExact, Op: uint8(op), TIndex: st.TIndex}
			res, err := c.stepEntity(e, grant, harness, collector)
			if err != nil {
				return fail(fmt.Errorf("witness step %d [%s] %s: %w", i+1, st.Kind, st.Label, err))
			}
			if res.HasEvent {
				rep.Trace = append(rep.Trace, res.EventName)
			}
		}
		rep.Steps++
	}
	if !rep.Terminated {
		enabled, err := c.anyEnabled(cap, w.Faults)
		if err != nil {
			return fail(err)
		}
		rep.Deadlocked = !enabled
	}
	// The halt outcome is what the entities close their trace logs with, so
	// it must be the replay's faithful classification: a deadlocked replay
	// logged as completed would read, to the conformance checker, as a
	// termination the service never allowed.
	switch {
	case rep.Deadlocked:
		c.halt(OutDeadlocked, "replay done")
	case rep.Terminated:
		c.halt(OutCompleted, "replay done")
	default:
		c.halt(OutStopped, "replay done")
	}
	return rep, nil
}

// entity finds a control connection by place.
func (c *Coordinator) entity(place int) *ctrl {
	for _, e := range c.ents {
		if e.place == place {
			return e
		}
	}
	return nil
}

// anyEnabled combines the entities' enabledness reports into the global
// verdict, mirroring the in-process replayer: a local move anywhere, a
// receive with its message consumable, a send with channel capacity left,
// a global δ (every entity termination-ready), or a loss fault applicable
// to some occupied queue.
func (c *Coordinator) anyEnabled(channelCap int, faults compose.FaultModel) (bool, error) {
	reports, err := c.enabledReports()
	if err != nil {
		return false, err
	}
	queue := map[[2]int]int{}
	for to, f := range reports {
		for _, q := range f.QueueLens {
			queue[[2]int{q.From, to}] = q.Len
		}
	}
	deltaReady := 0
	for _, f := range reports {
		if f.Local || f.RecvReady {
			return true, nil
		}
		if f.Delta {
			deltaReady++
		}
	}
	for from, f := range reports {
		for _, target := range f.SendTargets {
			if queue[[2]int{from, target}] < channelCap {
				return true, nil
			}
		}
	}
	if deltaReady == len(reports) && len(reports) > 0 {
		return true, nil
	}
	if faults.Loss {
		for _, n := range queue {
			if n > 0 {
				return true, nil
			}
		}
	}
	return false, nil
}

// Close tears down the control plane.
func (c *Coordinator) Close() {
	c.ln.Close()
	for _, e := range c.ents {
		e.conn.Close()
	}
}
