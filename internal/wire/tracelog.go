package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The observable-trace log: each deployed entity appends one NDJSON record
// per executed service primitive to an append-only log, stamped with the
// global sequence number the coordinator assigned and a chained FNV-1a 64
// digest. The per-entity logs are the raw material of the conformance
// harness (internal/wire/conformance): merged on the sequence numbers they
// reconstruct the global observable trace of the live system, the digests
// detect tampering and interleaved corruption, and explicit start/restart/
// end marker records let the checker distinguish a cleanly ended session
// from a truncated one (crash, kill, lost coordinator).

// Trace record kinds.
const (
	// RecStart opens a session segment (one process launch).
	RecStart = "start"
	// RecRestart marks a process relaunch appending to an existing log.
	RecRestart = "restart"
	// RecEvent is one executed service primitive.
	RecEvent = "event"
	// RecEnd closes a session segment with its outcome.
	RecEnd = "end"
)

// Outcome strings recorded by RecEnd (and reported by conformance).
const (
	OutcomeCompleted  = "completed"
	OutcomeDeadlocked = "deadlocked"
	OutcomeTimedOut   = "timed-out"
	OutcomeStopped    = "stopped"
	OutcomeAborted    = "aborted"
)

// TraceRecord is one NDJSON line of an entity trace log.
type TraceRecord struct {
	Kind string `json:"kind"`
	// Start fields.
	Place  int    `json:"place,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	Engine string `json:"engine,omitempty"`
	Spec   string `json:"spec,omitempty"`
	// Event fields. Seq is the coordinator-assigned global sequence number
	// (0 is valid: the first event of the session).
	Seq   int    `json:"seq"`
	Event string `json:"event,omitempty"`
	// End fields.
	Outcome string `json:"outcome,omitempty"`
	Events  int    `json:"events,omitempty"`
	// Digest is the chained FNV-1a 64 digest over this segment's event
	// records so far, hex-encoded (event and end records).
	Digest string `json:"digest,omitempty"`
}

const fnvOffset64 = 14695981039346656037
const fnvPrime64 = 1099511628211

// fnvFold folds bytes into a running FNV-1a 64 state.
func fnvFold(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// eventDigest advances the chained digest by one (seq, event) record.
func eventDigest(h uint64, seq int, event string) uint64 {
	h = fnvFold(h, fmt.Sprintf("%d", seq))
	h = fnvFold(h, "\x00")
	h = fnvFold(h, event)
	return fnvFold(h, "\n")
}

// TraceWriter appends NDJSON records to an entity trace log. Each record is
// written (and flushed) as one line, so a killed process loses at most the
// line being written — the substrate of the crash/restart conformance
// contract.
type TraceWriter struct {
	w      io.Writer
	place  int
	digest uint64
	events int
	err    error
}

// NewTraceWriter starts a log segment: a restart marker first when the
// process is appending to a previous segment's log, then the start record.
func NewTraceWriter(w io.Writer, place int, seed int64, engine string, specDigest uint64, restarted bool) (*TraceWriter, error) {
	t := &TraceWriter{w: w, place: place, digest: fnvOffset64}
	if restarted {
		if err := t.emit(&TraceRecord{Kind: RecRestart, Place: place}); err != nil {
			return nil, err
		}
	}
	err := t.emit(&TraceRecord{
		Kind:   RecStart,
		Place:  place,
		Seed:   seed,
		Engine: engine,
		Spec:   fmt.Sprintf("%016x", specDigest),
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// emit writes one record as an NDJSON line.
func (t *TraceWriter) emit(rec *TraceRecord) error {
	if t.err != nil {
		return t.err
	}
	line, err := json.Marshal(rec)
	if err == nil {
		line = append(line, '\n')
		_, err = t.w.Write(line)
	}
	if err != nil {
		t.err = fmt.Errorf("wire: trace log: %w", err)
	}
	return t.err
}

// Event records one executed service primitive under its global sequence
// number, advancing the chained digest.
func (t *TraceWriter) Event(seq int, event string) error {
	t.digest = eventDigest(t.digest, seq, event)
	t.events++
	return t.emit(&TraceRecord{
		Kind:   RecEvent,
		Seq:    seq,
		Event:  event,
		Digest: fmt.Sprintf("%016x", t.digest),
	})
}

// End closes the segment with the session outcome and the final digest.
func (t *TraceWriter) End(outcome string) error {
	return t.emit(&TraceRecord{
		Kind:    RecEnd,
		Outcome: outcome,
		Events:  t.events,
		Digest:  fmt.Sprintf("%016x", t.digest),
	})
}

// EntityLog is one parsed entity trace log.
type EntityLog struct {
	// Place, Seed, Engine, Spec echo the (last) start record.
	Place  int
	Seed   int64
	Engine string
	Spec   string
	// Events are the event records of the last session segment, in file
	// order. Each start record opens a new segment and a new global
	// numbering epoch (the coordinator's trace restarts empty), so events
	// from earlier segments cannot be merged into the current session's
	// numbering and are dropped here; the restart marker is what carries
	// their existence into the conformance verdict.
	Events []TraceRecord
	// Restarts counts restart markers.
	Restarts int
	// Ended reports a final end record; Outcome is its outcome string.
	Ended   bool
	Outcome string
	// DigestOK reports that every segment's chained digests verified.
	DigestOK bool
	// Started reports at least one start record was seen.
	Started bool
}

// ParseTraceLog reads one entity NDJSON trace log. Unparseable lines are
// errors; a log whose last segment has no end record parses fine (Ended
// false) — that is exactly the truncation the conformance checker must
// classify, not reject.
func ParseTraceLog(r io.Reader) (*EntityLog, error) {
	log := &EntityLog{DigestOK: true}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxFrameBody)
	digest := uint64(fnvOffset64)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("wire: trace log line %d: %w", line, err)
		}
		switch rec.Kind {
		case RecStart:
			log.Started = true
			log.Place = rec.Place
			log.Seed = rec.Seed
			log.Engine = rec.Engine
			log.Spec = rec.Spec
			log.Ended = false
			log.Events = nil
			digest = fnvOffset64
		case RecRestart:
			log.Restarts++
		case RecEvent:
			digest = eventDigest(digest, rec.Seq, rec.Event)
			if rec.Digest != fmt.Sprintf("%016x", digest) {
				log.DigestOK = false
			}
			log.Events = append(log.Events, rec)
		case RecEnd:
			log.Ended = true
			log.Outcome = rec.Outcome
			if rec.Digest != fmt.Sprintf("%016x", digest) {
				log.DigestOK = false
			}
		default:
			return nil, fmt.Errorf("wire: trace log line %d: unknown record kind %q", line, rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wire: trace log: %w", err)
	}
	return log, nil
}
