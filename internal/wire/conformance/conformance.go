// Package conformance checks a live deployment against its service
// specification from the outside: it takes the per-entity observable-trace
// logs a wire deployment emits, merges them into the global observable
// trace, and replays that trace against the service LTS — the
// service/implementation analysis view of the paper's correctness theorem,
// applied to recorded executions instead of state spaces.
//
// The merge is sound because the coordinator assigns each executed service
// primitive a unique global sequence number before the executing entity may
// take another step: the sequence order IS the global execution order, so
// sorting the union of the per-entity records by sequence number
// reconstructs exactly the trace an omniscient observer would have written
// down. Gaps in the sequence numbers, missing end markers and restart
// markers all mean some entity's observations are missing — such a trace is
// classified incomplete (its contiguous prefix must still be a service
// trace) rather than rejected.
package conformance

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/lotos"
	"repro/internal/lts"
	"repro/internal/wire"
)

// Verdict classifies one checked deployment session.
type Verdict string

const (
	// VerdictAccepted: the merged trace is a weak trace of the service (and
	// the session outcome is consistent with it).
	VerdictAccepted Verdict = "accepted"
	// VerdictIncomplete: observations are missing (sequence gaps, missing
	// end records, restart markers, aborted sessions); the recorded prefix
	// is a service trace, so nothing observed contradicts the service.
	VerdictIncomplete Verdict = "incomplete"
	// VerdictDeadlock: the session came to a quiescent standstill in a
	// non-final state — the trace is a service trace, but the service
	// cannot terminate there.
	VerdictDeadlock Verdict = "deadlock"
	// VerdictViolation: the recorded observations contradict the service —
	// a non-service trace, a termination the service does not allow, or a
	// corrupted log.
	VerdictViolation Verdict = "violation"
)

// Report is the outcome of checking one session's trace logs.
type Report struct {
	// Verdict is the classification; Reason explains it.
	Verdict Verdict
	Reason  string
	// Trace is the merged global observable trace (the contiguous prefix of
	// the sequence numbering).
	Trace []string
	// TraceAccepted reports that Trace is a weak trace of the service —
	// meaningful under every verdict (an incomplete session's prefix may
	// still be checked).
	TraceAccepted bool
	// Complete reports that nothing was missing: all logs ended, no gaps,
	// no restarts, no aborts.
	Complete bool
	// Outcome is the session outcome the logs agree on ("" when they are
	// silent or disagree).
	Outcome string
	// Gaps counts missing sequence numbers; Beyond counts recorded events
	// stranded past the first gap; Restarts sums restart markers.
	Gaps     int
	Beyond   int
	Restarts int
}

// Merged is the sequence-number merge of the per-entity logs.
type Merged struct {
	// Trace is the contiguous prefix: events 0..len-1 by global sequence.
	Trace []string
	// Places gives the recording entity of each Trace entry.
	Places []int
	// Gaps counts missing sequence numbers up to the highest recorded one;
	// Beyond counts events recorded past the first gap.
	Gaps   int
	Beyond int
}

// Merge reassembles the global trace from per-entity logs. Duplicate
// sequence numbers are an error — the coordinator assigns each exactly
// once, so a collision means the logs are not one session's.
func Merge(logs map[int]*wire.EntityLog) (*Merged, error) {
	type rec struct {
		seq   int
		ev    string
		place int
	}
	var all []rec
	for place, log := range logs {
		for _, e := range log.Events {
			all = append(all, rec{seq: e.Seq, ev: e.Event, place: place})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	m := &Merged{}
	next := 0
	for i, r := range all {
		if i > 0 && r.seq == all[i-1].seq {
			return nil, fmt.Errorf("conformance: global sequence %d recorded twice (entities %d and %d)",
				r.seq, all[i-1].place, r.place)
		}
		if r.seq == next && m.Gaps == 0 {
			m.Trace = append(m.Trace, r.ev)
			m.Places = append(m.Places, r.place)
			next++
			continue
		}
		if r.seq > next {
			m.Gaps += r.seq - next
			next = r.seq + 1
		} else {
			next++
		}
		m.Beyond++
	}
	return m, nil
}

// Check classifies one session's entity logs against the service. maxStates
// bounds the service exploration (the LTS is explored only to the trace's
// observable depth, so recursive services check fine).
func Check(service *lotos.Spec, logs map[int]*wire.EntityLog, maxStates int) (*Report, error) {
	if len(logs) == 0 {
		return nil, fmt.Errorf("conformance: no entity logs")
	}
	rep := &Report{}
	for place, log := range logs {
		if !log.Started {
			return nil, fmt.Errorf("conformance: entity %d log has no start record", place)
		}
		if !log.DigestOK {
			rep.Verdict = VerdictViolation
			rep.Reason = fmt.Sprintf("entity %d log fails its digest chain (corrupt or tampered)", place)
			return rep, nil
		}
		rep.Restarts += log.Restarts
	}
	merged, err := Merge(logs)
	if err != nil {
		return nil, err
	}
	rep.Trace = merged.Trace
	rep.Gaps = merged.Gaps
	rep.Beyond = merged.Beyond

	// Completeness: every log must end cleanly, with no gaps, restarts or
	// aborts; the logs must also agree on one outcome.
	rep.Complete = merged.Gaps == 0 && rep.Restarts == 0
	var incompleteWhy []string
	if merged.Gaps > 0 {
		incompleteWhy = append(incompleteWhy, fmt.Sprintf("%d sequence gaps", merged.Gaps))
	}
	if rep.Restarts > 0 {
		incompleteWhy = append(incompleteWhy, fmt.Sprintf("%d restarts", rep.Restarts))
	}
	outcome := ""
	outcomeAgreed := true
	for place, log := range logs {
		if !log.Ended {
			rep.Complete = false
			incompleteWhy = append(incompleteWhy, fmt.Sprintf("entity %d log has no end record", place))
			continue
		}
		if log.Outcome == wire.OutcomeAborted {
			rep.Complete = false
			incompleteWhy = append(incompleteWhy, fmt.Sprintf("entity %d session aborted", place))
			continue
		}
		if outcome == "" {
			outcome = log.Outcome
		} else if outcome != log.Outcome {
			outcomeAgreed = false
		}
	}
	if outcomeAgreed {
		rep.Outcome = outcome
	}

	// The trace-inclusion core: the merged (prefix) trace must be a weak
	// trace of the service, explored exactly to the needed depth.
	depth := len(rep.Trace) + 2
	g, err := lts.ExploreSpec(service, lts.Limits{MaxObsDepth: depth, MaxStates: maxStates})
	if err != nil {
		return nil, fmt.Errorf("conformance: exploring service: %w", err)
	}
	trace := lts.JoinTrace(rep.Trace)
	rep.TraceAccepted = lts.AcceptsTrace(g, trace)
	withDelta := trace
	if withDelta != "" {
		withDelta += lts.TraceSep
	}
	withDelta += "delta"
	deltaOK := lts.AcceptsTrace(g, withDelta)

	switch {
	case !rep.TraceAccepted:
		rep.Verdict = VerdictViolation
		rep.Reason = fmt.Sprintf("recorded trace %q is not a service trace", trace)
	case !rep.Complete:
		rep.Verdict = VerdictIncomplete
		rep.Reason = "recorded prefix is a service trace, but observations are missing: " +
			strings.Join(incompleteWhy, "; ")
	case rep.Outcome == wire.OutcomeCompleted && !deltaOK:
		rep.Verdict = VerdictViolation
		rep.Reason = fmt.Sprintf("session terminated but the service cannot terminate after %q", trace)
	case rep.Outcome == wire.OutcomeDeadlocked && !deltaOK:
		rep.Verdict = VerdictDeadlock
		rep.Reason = fmt.Sprintf("session quiescent after %q where the service cannot terminate", trace)
	default:
		rep.Verdict = VerdictAccepted
		rep.Reason = "recorded trace is a service trace"
	}
	return rep, nil
}

// CheckFiles parses entity log files (one per entity) and checks them.
func CheckFiles(service *lotos.Spec, paths []string, maxStates int) (*Report, error) {
	logs := make(map[int]*wire.EntityLog, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("conformance: %w", err)
		}
		log, err := wire.ParseTraceLog(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", path, err)
		}
		if _, dup := logs[log.Place]; dup {
			return nil, fmt.Errorf("conformance: two logs claim place %d", log.Place)
		}
		logs[log.Place] = log
	}
	return Check(service, logs, maxStates)
}
