package conformance

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lotos"
	"repro/internal/sim"
	"repro/internal/wire"
)

const testMaxStates = 4096

// parseService parses a service spec source.
func parseService(t *testing.T, src string) *lotos.Spec {
	t.Helper()
	sp, err := lotos.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return sp
}

// logRec is one shorthand event for buildLogs.
type logRec struct {
	seq int
	ev  string
}

// entitySession describes one entity's fabricated log.
type entitySession struct {
	events  []logRec
	outcome string // "" = no end record (crash)
	restart bool
}

// buildLogs writes each session through the real TraceWriter and parses it
// back, so the tests exercise the same NDJSON path a deployment uses.
func buildLogs(t *testing.T, sessions map[int]entitySession) map[int]*wire.EntityLog {
	t.Helper()
	logs := map[int]*wire.EntityLog{}
	for place, s := range sessions {
		var buf bytes.Buffer
		tw, err := wire.NewTraceWriter(&buf, place, 1, "fsm", 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if s.restart {
			// A restarted session's events belong to the post-restart
			// segment — a start record opens a fresh numbering epoch, as in
			// a real relaunch.
			tw, err = wire.NewTraceWriter(&buf, place, 1, "fsm", 0, true)
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range s.events {
			tw.Event(r.seq, r.ev)
		}
		if s.outcome != "" {
			if err := tw.End(s.outcome); err != nil {
				t.Fatal(err)
			}
		}
		log, err := wire.ParseTraceLog(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		logs[place] = log
	}
	return logs
}

// TestCheckAccepted: a complete two-entity session whose merged trace the
// service allows, ending in termination the service allows.
func TestCheckAccepted(t *testing.T) {
	service := parseService(t, `SPEC read1; write2; exit ENDSPEC`)
	logs := buildLogs(t, map[int]entitySession{
		1: {events: []logRec{{0, "read1"}}, outcome: wire.OutcomeCompleted},
		2: {events: []logRec{{1, "write2"}}, outcome: wire.OutcomeCompleted},
	})
	rep, err := Check(service, logs, testMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictAccepted || !rep.TraceAccepted || !rep.Complete {
		t.Fatalf("want accepted, got %+v", rep)
	}
	if got := strings.Join(rep.Trace, " "); got != "read1 write2" {
		t.Fatalf("merged trace %q", got)
	}
	if rep.Outcome != wire.OutcomeCompleted {
		t.Fatalf("outcome %q", rep.Outcome)
	}
}

// TestCheckViolationTrace: the merged order contradicts the service.
func TestCheckViolationTrace(t *testing.T) {
	service := parseService(t, `SPEC read1; write2; exit ENDSPEC`)
	logs := buildLogs(t, map[int]entitySession{
		1: {events: []logRec{{1, "read1"}}, outcome: wire.OutcomeCompleted},
		2: {events: []logRec{{0, "write2"}}, outcome: wire.OutcomeCompleted},
	})
	rep, err := Check(service, logs, testMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictViolation || rep.TraceAccepted {
		t.Fatalf("want violation, got %+v", rep)
	}
}

// TestCheckViolationEarlyTermination: the trace is a service trace, but the
// session claims successful termination where the service cannot terminate.
func TestCheckViolationEarlyTermination(t *testing.T) {
	service := parseService(t, `SPEC read1; write2; exit ENDSPEC`)
	logs := buildLogs(t, map[int]entitySession{
		1: {events: []logRec{{0, "read1"}}, outcome: wire.OutcomeCompleted},
		2: {outcome: wire.OutcomeCompleted},
	})
	rep, err := Check(service, logs, testMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictViolation || !rep.TraceAccepted {
		t.Fatalf("want violation (early termination), got %+v", rep)
	}
	if !strings.Contains(rep.Reason, "terminate") {
		t.Fatalf("reason %q", rep.Reason)
	}
}

// TestCheckDeadlock: quiescent in a non-final state is flagged, while a
// standstill where the service could terminate is accepted.
func TestCheckDeadlock(t *testing.T) {
	service := parseService(t, `SPEC read1; write2; exit ENDSPEC`)
	logs := buildLogs(t, map[int]entitySession{
		1: {events: []logRec{{0, "read1"}}, outcome: wire.OutcomeDeadlocked},
		2: {outcome: wire.OutcomeDeadlocked},
	})
	rep, err := Check(service, logs, testMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictDeadlock || !rep.TraceAccepted {
		t.Fatalf("want deadlock, got %+v", rep)
	}

	// Same standstill after the full trace: the service can terminate
	// there, so quiescence is not an error.
	logs = buildLogs(t, map[int]entitySession{
		1: {events: []logRec{{0, "read1"}}, outcome: wire.OutcomeDeadlocked},
		2: {events: []logRec{{1, "write2"}}, outcome: wire.OutcomeDeadlocked},
	})
	rep, err = Check(service, logs, testMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictAccepted {
		t.Fatalf("quiescent final state should be accepted, got %+v", rep)
	}
}

// TestCheckIncompleteCrash: a log without an end record (the crash shape)
// yields an incomplete verdict with the recorded prefix still checked.
func TestCheckIncompleteCrash(t *testing.T) {
	service := parseService(t, `SPEC read1; write2; exit ENDSPEC`)
	logs := buildLogs(t, map[int]entitySession{
		1: {events: []logRec{{0, "read1"}}, outcome: wire.OutcomeCompleted},
		2: {}, // crashed before any event, no end record
	})
	rep, err := Check(service, logs, testMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictIncomplete || !rep.TraceAccepted || rep.Complete {
		t.Fatalf("want incomplete with accepted prefix, got %+v", rep)
	}
	if !strings.Contains(rep.Reason, "no end record") {
		t.Fatalf("reason %q", rep.Reason)
	}
}

// TestCheckIncompleteGap: a missing sequence number (one entity's
// observations lost) truncates the checked trace at the gap and strands the
// later events, but the verdict stays incomplete as long as the prefix is a
// service trace.
func TestCheckIncompleteGap(t *testing.T) {
	service := parseService(t, `SPEC read1; write2; read1; write2; exit ENDSPEC`)
	logs := buildLogs(t, map[int]entitySession{
		1: {events: []logRec{{0, "read1"}, {2, "read1"}}, outcome: wire.OutcomeCompleted},
		2: {}, // write2 at sequence 1 lost with its recorder
	})
	rep, err := Check(service, logs, testMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictIncomplete || !rep.TraceAccepted {
		t.Fatalf("want incomplete, got %+v", rep)
	}
	if rep.Gaps != 1 || rep.Beyond != 1 || len(rep.Trace) != 1 || rep.Trace[0] != "read1" {
		t.Fatalf("gap accounting wrong: %+v", rep)
	}
}

// TestCheckIncompleteBadPrefix: even an incomplete session is a violation
// when what WAS recorded already contradicts the service.
func TestCheckIncompleteBadPrefix(t *testing.T) {
	service := parseService(t, `SPEC read1; write2; exit ENDSPEC`)
	logs := buildLogs(t, map[int]entitySession{
		1: {},
		2: {events: []logRec{{0, "write2"}}, outcome: ""},
	})
	rep, err := Check(service, logs, testMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictViolation {
		t.Fatalf("bad prefix must trump incompleteness, got %+v", rep)
	}
}

// TestCheckIncompleteRestartAndAbort: restart markers and aborted outcomes
// both mark the session incomplete.
func TestCheckIncompleteRestartAndAbort(t *testing.T) {
	service := parseService(t, `SPEC read1; write2; exit ENDSPEC`)
	logs := buildLogs(t, map[int]entitySession{
		1: {events: []logRec{{0, "read1"}}, restart: true, outcome: wire.OutcomeCompleted},
		2: {events: []logRec{{1, "write2"}}, outcome: wire.OutcomeCompleted},
	})
	rep, err := Check(service, logs, testMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictIncomplete || rep.Restarts != 1 || !rep.TraceAccepted {
		t.Fatalf("want incomplete via restart with accepted trace, got %+v", rep)
	}

	logs = buildLogs(t, map[int]entitySession{
		1: {events: []logRec{{0, "read1"}}, outcome: wire.OutcomeAborted},
		2: {events: []logRec{{1, "write2"}}, outcome: wire.OutcomeCompleted},
	})
	rep, err = Check(service, logs, testMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictIncomplete {
		t.Fatalf("want incomplete via abort, got %+v", rep)
	}
}

// TestCheckTamperedLog: a broken digest chain is a violation regardless of
// the trace content.
func TestCheckTamperedLog(t *testing.T) {
	service := parseService(t, `SPEC read1; write2; exit ENDSPEC`)
	var buf bytes.Buffer
	tw, err := wire.NewTraceWriter(&buf, 1, 1, "fsm", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	tw.Event(0, "read1")
	if err := tw.End(wire.OutcomeCompleted); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(buf.String(), "read1", "fake9", 1)
	log, err := wire.ParseTraceLog(strings.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(service, map[int]*wire.EntityLog{1: log}, testMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictViolation || !strings.Contains(rep.Reason, "digest") {
		t.Fatalf("want digest violation, got %+v", rep)
	}
}

// TestMergeDuplicateSeq: two entities claiming the same global sequence
// number is an error, not a verdict.
func TestMergeDuplicateSeq(t *testing.T) {
	logs := buildLogs(t, map[int]entitySession{
		1: {events: []logRec{{0, "read1"}}, outcome: wire.OutcomeCompleted},
		2: {events: []logRec{{0, "write2"}}, outcome: wire.OutcomeCompleted},
	})
	if _, err := Merge(logs); err == nil {
		t.Fatal("duplicate sequence numbers merged without error")
	}
	service := parseService(t, `SPEC read1; write2; exit ENDSPEC`)
	if _, err := Check(service, logs, testMaxStates); err == nil {
		t.Fatal("Check accepted colliding logs")
	}
}

// TestCheckAgainstSimulation closes the loop with the simulator: fabricate
// per-entity logs from a real lockstep run of a derived corpus-style spec
// and require the conformance verdict to agree with sim.CheckTrace.
func TestCheckAgainstSimulation(t *testing.T) {
	src := `SPEC read1; write2; read1; write2; exit ENDSPEC`
	sp := parseService(t, src)
	d, err := core.Derive(sp, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		res, err := sim.Run(d.Entities, sim.Config{Seed: seed, Lockstep: true, MaxEvents: 32})
		if err != nil {
			t.Fatal(err)
		}
		sessions := map[int]entitySession{}
		for p := range d.Entities {
			sessions[p] = entitySession{outcome: outcomeOf(res)}
		}
		for _, ev := range res.Trace {
			s := sessions[ev.Place]
			s.events = append(s.events, logRec{seq: ev.Seq, ev: ev.Ev.String()})
			sessions[ev.Place] = s
		}
		rep, err := Check(d.Service.Spec, buildLogs(t, sessions), testMaxStates)
		if err != nil {
			t.Fatal(err)
		}
		// sim.CheckTrace ignores deadlock; conformance additionally flags
		// quiescent non-final states, so compare on the shared ground.
		simErr := sim.CheckTrace(d.Service.Spec, res, testMaxStates)
		if simErr == nil {
			if !rep.TraceAccepted {
				t.Fatalf("seed %d: sim accepts trace, conformance rejects: %s", seed, rep.Reason)
			}
			if res.Completed && rep.Verdict != VerdictAccepted {
				t.Fatalf("seed %d: completed run not accepted: %s (%s)", seed, rep.Verdict, rep.Reason)
			}
		} else if rep.Verdict == VerdictAccepted {
			t.Fatalf("seed %d: conformance accepts what sim.CheckTrace rejects (%v)", seed, simErr)
		}
	}
}

// outcomeOf renders a sim result as the trace-log outcome string.
func outcomeOf(res *sim.Result) string {
	switch {
	case res.Completed:
		return wire.OutcomeCompleted
	case res.Deadlocked:
		return wire.OutcomeDeadlocked
	case res.TimedOut:
		return wire.OutcomeTimedOut
	default:
		return wire.OutcomeStopped
	}
}
