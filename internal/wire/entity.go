package wire

import (
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/fsm"
	"repro/internal/lotos"
	"repro/internal/medium"
	"repro/internal/sim"
)

// The entity-side deployment runtime: RunEntity is the main loop of one
// derived protocol entity running as its own OS process. The entity owns
// its execution engine (compiled FSM tables or the AST interpreter — the
// same per-entity fallback as in-process runs) and its network endpoint;
// every scheduling decision comes from the coordinator over the control
// connection, so a seeded distributed session is the in-process lockstep
// execution with the sweeps stretched over TCP.

// DefaultSessionTimeout bounds how long an entity waits on its control
// connection before declaring the session lost.
const DefaultSessionTimeout = 60 * time.Second

// EntityConfig configures one deployed entity process.
type EntityConfig struct {
	// Place is the entity's place number; PlaceIndex its index in the
	// ascending-place order of the deployment (the scheduling-seed index).
	Place      int
	PlaceIndex int
	// Spec is the entity's derived specification (AST fallback); Machine its
	// compiled tables (nil selects the interpreter).
	Spec    *lotos.Spec
	Machine *fsm.Machine
	// Table is the interning table; SpecDigest identifies the service spec.
	Table      *MsgTable
	SpecDigest uint64
	// Coordinator is the control address to dial; Listen the entity's own
	// data listen address ("127.0.0.1:0" for loopback).
	Coordinator string
	Listen      string
	// ChannelCap bounds unacked frames per directed channel.
	ChannelCap int
	// TraceLog receives the entity's NDJSON observable-trace records
	// (nil discards them).
	TraceLog io.Writer
	// Restarted marks a process relaunch appending to an existing log.
	Restarted bool
	// SessionTimeout bounds control-connection waits (default 60s).
	SessionTimeout time.Duration
}

// remoteHarness forwards Choose calls to the coordinator-hosted harness.
// It is called synchronously from inside a granted step, so reading the
// control connection here cannot race the main loop: the coordinator sends
// nothing but the ChooseReply until the step's result is reported.
type remoteHarness struct {
	conn  net.Conn
	table *MsgTable
	err   error
}

// Choose implements sim.Harness over the control connection.
func (h *remoteHarness) Choose(place int, offered []lotos.Event) int {
	if h.err != nil {
		return -1
	}
	f := &Frame{Type: FrameChoose, Offered: make([]ServicePrimitive, len(offered))}
	for i, ev := range offered {
		f.Offered[i] = ServicePrimitive{Name: ev.Name, Place: ev.Place}
	}
	if err := WriteFrame(h.conn, f, h.table); err != nil {
		h.err = fmt.Errorf("wire: harness request: %w", err)
		return -1
	}
	reply, err := ReadFrame(h.conn, h.table)
	if err != nil {
		h.err = fmt.Errorf("wire: harness reply: %w", err)
		return -1
	}
	if reply.Type != FrameChooseReply {
		h.err = fmt.Errorf("wire: harness expected choose-reply, got %s", reply.Type)
		return -1
	}
	return reply.Choice
}

// outcomeString renders Halt outcome flags as the trace-log outcome.
func outcomeString(o OutcomeFlags) string {
	switch {
	case o&OutAborted != 0:
		return OutcomeAborted
	case o&OutCompleted != 0:
		return OutcomeCompleted
	case o&OutDeadlocked != 0:
		return OutcomeDeadlocked
	case o&OutTimedOut != 0:
		return OutcomeTimedOut
	case o&OutStopped != 0:
		return OutcomeStopped
	}
	return "unknown"
}

// RunEntity runs one deployed entity to session end: handshake with the
// coordinator, data-mesh establishment, then the control loop serving step
// grants until Halt. It returns nil on a cleanly halted session.
func RunEntity(cfg EntityConfig) error {
	if cfg.SessionTimeout <= 0 {
		cfg.SessionTimeout = DefaultSessionTimeout
	}
	if cfg.TraceLog == nil {
		cfg.TraceLog = io.Discard
	}
	engine := string(sim.EngineAST)
	if cfg.Machine != nil {
		engine = string(sim.EngineFSM)
	}

	ep, err := NewEndpoint(EndpointConfig{
		Place: cfg.Place, Table: cfg.Table, ChannelCap: cfg.ChannelCap,
		Listen: cfg.Listen, SpecDigest: cfg.SpecDigest,
	})
	if err != nil {
		return err
	}
	defer ep.Close()

	ctrl, err := net.Dial("tcp", cfg.Coordinator)
	if err != nil {
		return fmt.Errorf("wire: entity %d dial coordinator %s: %w", cfg.Place, cfg.Coordinator, err)
	}
	defer ctrl.Close()
	ctrl.SetDeadline(time.Now().Add(cfg.SessionTimeout))

	hello := &Frame{
		Type: FrameHello, Version: ProtocolVersion, Kind: ConnControl,
		Place: cfg.Place, SpecDigest: cfg.SpecDigest, TableDigest: cfg.Table.Digest(),
		Addr: ep.Addr(), Engine: engine,
	}
	if err := WriteFrame(ctrl, hello, cfg.Table); err != nil {
		return fmt.Errorf("wire: entity %d hello: %w", cfg.Place, err)
	}

	peersFrame, err := ReadFrame(ctrl, cfg.Table)
	if err != nil {
		return fmt.Errorf("wire: entity %d awaiting peers: %w", cfg.Place, err)
	}
	if peersFrame.Type != FramePeers {
		return fmt.Errorf("wire: entity %d expected peers, got %s", cfg.Place, peersFrame.Type)
	}
	if err := ep.EstablishMesh(peersFrame.Peers); err != nil {
		return err
	}
	if err := WriteFrame(ctrl, &Frame{Type: FrameReady}, cfg.Table); err != nil {
		return fmt.Errorf("wire: entity %d ready: %w", cfg.Place, err)
	}

	start, err := ReadFrame(ctrl, cfg.Table)
	if err != nil {
		return fmt.Errorf("wire: entity %d awaiting start: %w", cfg.Place, err)
	}
	if start.Type != FrameStart {
		return fmt.Errorf("wire: entity %d expected start, got %s", cfg.Place, start.Type)
	}

	tw, err := NewTraceWriter(cfg.TraceLog, cfg.Place, start.Seed, engine, cfg.SpecDigest, cfg.Restarted)
	if err != nil {
		return err
	}
	harness := &remoteHarness{conn: ctrl, table: cfg.Table}
	st, err := sim.NewEntityStepper(cfg.Place, cfg.Spec, cfg.Machine, ep,
		harness, sim.RunnerSeed(start.Seed, cfg.PlaceIndex))
	if err != nil {
		return err
	}

	fail := func(err error) error {
		// Best-effort error report, then an aborted end record: the log must
		// say the session did not end cleanly.
		WriteFrame(ctrl, &Frame{Type: FrameError, ErrMsg: err.Error()}, cfg.Table)
		tw.End(OutcomeAborted)
		return err
	}

	// pendingEvent is a reported-but-unsequenced service primitive: the
	// coordinator answers a StepResult carrying an event with the event's
	// global sequence number, which completes the trace-log record.
	pendingEvent := ""
	for {
		ctrl.SetDeadline(time.Now().Add(cfg.SessionTimeout))
		f, err := ReadFrame(ctrl, cfg.Table)
		if err != nil {
			tw.End(OutcomeAborted)
			return fmt.Errorf("wire: entity %d lost coordinator: %w", cfg.Place, err)
		}
		switch f.Type {
		case FrameStep, FrameStepExact:
			var out sim.StepOutcome
			var serr error
			if f.Type == FrameStep {
				out, serr = st.StepOnce()
			} else {
				out, serr = st.StepExact(f.TIndex, fsm.Op(f.Op))
			}
			if serr == nil {
				serr = harness.err
			}
			if serr != nil {
				return fail(serr)
			}
			// Delivery barrier: every message this step sent must be enqueued
			// at its receiver before the coordinator grants the next step, so
			// the next entity's candidate scan sees exactly the queues an
			// in-process shared medium would show it.
			if err := ep.Flush(); err != nil {
				return fail(err)
			}
			res := &Frame{
				Type: FrameStepResult, Progressed: out.Progressed, Done: out.Done,
				Queued: ep.InFlight(),
			}
			if out.Event != nil {
				res.HasEvent = true
				res.EventName = out.Event.String()
				res.EventPlace = cfg.Place
				pendingEvent = res.EventName
			}
			if err := WriteFrame(ctrl, res, cfg.Table); err != nil {
				tw.End(OutcomeAborted)
				return fmt.Errorf("wire: entity %d step result: %w", cfg.Place, err)
			}
		case FrameSeq:
			if pendingEvent == "" {
				return fail(fmt.Errorf("wire: entity %d got a sequence number with no pending event", cfg.Place))
			}
			if err := tw.Event(f.GlobalSeq, pendingEvent); err != nil {
				return fail(err)
			}
			pendingEvent = ""
		case FrameEnabled:
			en, eerr := st.Enabledness()
			if eerr != nil {
				return fail(eerr)
			}
			rep := &Frame{
				Type: FrameEnabledReport, Delta: en.Delta, Local: en.Local,
				RecvReady: en.RecvReady, SendTargets: en.SendTargets,
			}
			for _, p := range peersFrame.Peers {
				if n := len(ep.Pending(p.Place)); n > 0 {
					rep.QueueLens = append(rep.QueueLens, QueueLen{From: p.Place, Len: n})
				}
			}
			if err := WriteFrame(ctrl, rep, cfg.Table); err != nil {
				tw.End(OutcomeAborted)
				return fmt.Errorf("wire: entity %d enabled report: %w", cfg.Place, err)
			}
		case FrameHalt:
			return tw.End(outcomeString(f.Outcome))
		default:
			return fail(fmt.Errorf("wire: entity %d unexpected %s frame on control connection", cfg.Place, f.Type))
		}
	}
}

// Pending returns the entity's queued inbound messages from one peer.
func (ep *Endpoint) Pending(from int) []medium.Message {
	return ep.inner.Pending(from, ep.place)
}
