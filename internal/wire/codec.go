// Package wire runs a derived protocol over real TCP: a length-prefixed
// binary codec for the synchronization messages of internal/medium, a
// network medium (Endpoint) presenting the same per-channel FIFO contract
// as the in-process medium — one ordered stream per directed channel, with
// windowed delivery acknowledgments bounding in-flight frames — and the
// deployment control plane (Coordinator, RunEntity) that runs each protocol
// entity as its own OS process and drives seeded sessions whose outcomes
// are byte-identical to in-process sim.Lockstep runs with the same seeds.
//
// The codec is strict: every frame is a 4-byte big-endian body length
// followed by a one-byte frame type and the type's fields; decoding rejects
// oversized lengths before allocating, truncated fields, unknown types and
// trailing garbage. Message identifications travel as interned keys into a
// MsgTable both endpoints derive independently from the (shared) service
// specification — with a verbose fallback encoding for entities whose
// unbounded state space defeats compilation, whose message alphabet is
// therefore unknown in advance.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/lotos"
	"repro/internal/medium"
)

// ProtocolVersion is the wire protocol version, checked in Hello frames.
const ProtocolVersion = 1

// Frame size limits. MaxFrameBody bounds the decoded body allocation (a
// corrupt length prefix must not over-allocate); MaxString bounds any
// embedded string; MaxListLen bounds embedded lists (offered events, peer
// tables, queue reports).
const (
	MaxFrameBody = 1 << 20
	MaxString    = 1 << 12
	MaxListLen   = 1 << 12
)

// ErrFrameTooLarge reports a length prefix beyond MaxFrameBody.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// FrameType discriminates the wire frames.
type FrameType uint8

const (
	// FrameHello opens every connection (data and control).
	FrameHello FrameType = iota + 1
	// FrameData carries one synchronization message on a directed channel.
	FrameData
	// FrameAck acknowledges delivery (enqueue at the receiver) of a data
	// frame; acks are cumulative per channel.
	FrameAck
	// FramePeers distributes the place -> data-address map (coordinator to
	// entity).
	FramePeers
	// FrameReady reports an entity's data mesh is established.
	FrameReady
	// FrameStart begins a session (seed + mode).
	FrameStart
	// FrameStep grants one scheduling step (coordinator to entity).
	FrameStep
	// FrameStepExact grants one exact transition during witness replay.
	FrameStepExact
	// FrameStepResult reports the outcome of a granted step.
	FrameStepResult
	// FrameChoose asks the coordinator-hosted harness to pick among offered
	// service primitives.
	FrameChoose
	// FrameChooseReply answers a FrameChoose.
	FrameChooseReply
	// FrameSeq assigns the global sequence number of an executed service
	// primitive.
	FrameSeq
	// FrameEnabled queries an entity's enabledness (quiescence checks).
	FrameEnabled
	// FrameEnabledReport answers a FrameEnabled.
	FrameEnabledReport
	// FrameHalt ends a session, carrying the global outcome.
	FrameHalt
	// FrameError reports a fatal entity-side error to the coordinator.
	FrameError
)

// String renders the frame type for diagnostics.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameData:
		return "data"
	case FrameAck:
		return "ack"
	case FramePeers:
		return "peers"
	case FrameReady:
		return "ready"
	case FrameStart:
		return "start"
	case FrameStep:
		return "step"
	case FrameStepExact:
		return "step-exact"
	case FrameStepResult:
		return "step-result"
	case FrameChoose:
		return "choose"
	case FrameChooseReply:
		return "choose-reply"
	case FrameSeq:
		return "seq"
	case FrameEnabled:
		return "enabled"
	case FrameEnabledReport:
		return "enabled-report"
	case FrameHalt:
		return "halt"
	case FrameError:
		return "error"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// ConnKind distinguishes the two connection roles in Hello frames.
type ConnKind uint8

const (
	// ConnControl is an entity's connection to the coordinator.
	ConnControl ConnKind = iota
	// ConnData is an entity-to-entity channel connection.
	ConnData
)

// Frame is one decoded wire frame.
type Frame struct {
	Type FrameType

	// Hello fields.
	Version     uint8
	Kind        ConnKind
	Place       int
	SpecDigest  uint64
	TableDigest uint64
	Addr        string
	Engine      string

	// Data / Ack fields. From/To are the directed channel; Seq is the
	// channel-local sequence number (first frame on a channel has Seq 1).
	From, To int
	Seq      uint64
	Msg      Msg

	// Peers fields.
	Peers []Peer

	// Start fields.
	Seed int64
	Mode SessionMode

	// StepExact fields.
	Op     uint8 // fsm.Op of the granted transition kind
	TIndex int

	// StepResult fields.
	Progressed, Done bool
	Queued           int // messages queued in the entity's inbound channels
	HasEvent         bool
	EventName        string
	EventPlace       int

	// Choose fields (offered service primitives, in row order).
	Offered []ServicePrimitive
	// ChooseReply: chosen offer index, -1 declines.
	Choice int

	// Seq assignment (FrameSeq): GlobalSeq of the reported event.
	GlobalSeq int

	// EnabledReport fields.
	Delta, Local, RecvReady bool
	SendTargets             []int
	QueueLens               []QueueLen

	// Halt fields.
	Outcome OutcomeFlags
	Reason  string

	// Error fields.
	ErrMsg string
}

// Peer is one entry of the place -> data-address map.
type Peer struct {
	Place int
	Addr  string
}

// ServicePrimitive identifies one offered service primitive (name + SAP).
type ServicePrimitive struct {
	Name  string
	Place int
}

// QueueLen reports the occupancy of one inbound channel (From -> reporter).
type QueueLen struct {
	From int
	Len  int
}

// SessionMode selects how a session is scheduled.
type SessionMode uint8

const (
	// ModeSeeded is the lockstep-equivalent seeded session: the coordinator
	// grants sweeps in ascending place order and hosts the run harness.
	ModeSeeded SessionMode = iota
	// ModeReplay drives a verification counterexample (compose.Witness)
	// step-for-step through the live deployment.
	ModeReplay
)

// OutcomeFlags encodes a session outcome classification in Halt frames.
type OutcomeFlags uint8

const (
	// OutCompleted: every entity terminated successfully.
	OutCompleted OutcomeFlags = 1 << iota
	// OutDeadlocked: a sweep without progress with nothing in flight.
	OutDeadlocked
	// OutTimedOut: a sweep without progress with messages still queued.
	OutTimedOut
	// OutStopped: the MaxEvents budget was reached.
	OutStopped
	// OutAborted: infrastructure failure (lost entity, transport error) —
	// not a protocol outcome; conformance treats the trace as incomplete.
	OutAborted
)

// Msg is the payload of a data frame: the message identification of
// medium.Message without the channel endpoints (those travel as From/To in
// the frame itself).
type Msg struct {
	Node int
	Occ  string
	Tag  string
}

// MsgOf extracts the payload of a medium message.
func MsgOf(m medium.Message) Msg { return Msg{Node: m.Node, Occ: m.Occ, Tag: m.Tag} }

// Message rebuilds the medium message for channel from -> to.
func (p Msg) Message(from, to int) medium.Message {
	return medium.Message{From: from, To: to, Node: p.Node, Occ: p.Occ, Tag: p.Tag}
}

// payload encoding flags.
const (
	msgInterned = 1 << iota
	msgTagged
)

// encoder appends wire primitives to a buffer.
type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)     { e.buf = append(e.buf, v) }
func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) uint(v int)     { e.uvarint(uint64(v)) }
func (e *encoder) u64(v uint64)   { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// zig encodes a signed integer with zigzag.
func (e *encoder) zig(v int64) { e.uvarint(uint64(v)<<1 ^ uint64(v>>63)) }

// decoder consumes wire primitives from a buffer, accumulating the first
// error; every accessor after an error returns a zero value.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated or malformed %s", what)
	}
}

func (d *decoder) u8(what string) uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail(what)
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// uint decodes a non-negative int, bounded to avoid overflow surprises.
func (d *decoder) uint(what string) int {
	v := d.uvarint(what)
	if d.err == nil && v > 1<<31 {
		d.fail(what + " (out of range)")
		return 0
	}
	return int(v)
}

// listLen decodes a list length, enforcing MaxListLen strictly.
func (d *decoder) listLen(what string) int {
	n := d.uint(what)
	if d.err == nil && n > MaxListLen {
		d.fail(what + " (list too long)")
		return 0
	}
	return n
}

func (d *decoder) u64(what string) uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) bool(what string) bool { return d.u8(what) != 0 }

func (d *decoder) str(what string) string {
	n := d.uvarint(what)
	if d.err != nil {
		return ""
	}
	if n > MaxString || uint64(len(d.buf)) < n {
		d.fail(what)
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) zig(what string) int64 {
	v := d.uvarint(what)
	return int64(v>>1) ^ -int64(v&1)
}

// encodeMsg writes a message payload, interned when the table knows it.
func encodeMsg(e *encoder, m Msg, t *MsgTable) {
	if t != nil {
		if key, ok := t.Key(m); ok {
			e.u8(msgInterned)
			e.uint(key)
			return
		}
	}
	if m.Tag != "" {
		e.u8(msgTagged)
		e.str(m.Tag)
		return
	}
	e.u8(0)
	e.zig(int64(m.Node))
	e.str(m.Occ)
}

// decodeMsg reads a message payload.
func decodeMsg(d *decoder, t *MsgTable) Msg {
	flags := d.u8("message flags")
	switch {
	case flags&msgInterned != 0:
		key := d.uint("message key")
		if d.err != nil {
			return Msg{}
		}
		if t == nil {
			d.fail("interned message without a table")
			return Msg{}
		}
		m, ok := t.Lookup(key)
		if !ok {
			d.fail("message key (unknown)")
			return Msg{}
		}
		return m
	case flags&msgTagged != 0:
		return Msg{Node: -1, Tag: d.str("message tag")}
	case flags == 0:
		node := d.zig("message node")
		occ := d.str("message occurrence")
		if d.err == nil && (node < -(1<<31) || node > 1<<31) {
			d.fail("message node (out of range)")
			return Msg{}
		}
		return Msg{Node: int(node), Occ: occ}
	default:
		d.fail("message flags (unknown bits)")
		return Msg{}
	}
}

// Encode serializes the frame, including its length prefix.
func (f *Frame) Encode(t *MsgTable) ([]byte, error) {
	e := &encoder{buf: make([]byte, 4, 64)}
	e.u8(uint8(f.Type))
	switch f.Type {
	case FrameHello:
		e.u8(f.Version)
		e.u8(uint8(f.Kind))
		e.uint(f.Place)
		e.u64(f.SpecDigest)
		e.u64(f.TableDigest)
		e.str(f.Addr)
		e.str(f.Engine)
	case FrameData:
		e.uint(f.From)
		e.uint(f.To)
		e.uvarint(f.Seq)
		encodeMsg(e, f.Msg, t)
	case FrameAck:
		e.uint(f.From)
		e.uint(f.To)
		e.uvarint(f.Seq)
	case FramePeers:
		e.uint(len(f.Peers))
		for _, p := range f.Peers {
			e.uint(p.Place)
			e.str(p.Addr)
		}
	case FrameReady, FrameStep, FrameEnabled:
		// no fields
	case FrameStart:
		e.zig(f.Seed)
		e.u8(uint8(f.Mode))
	case FrameStepExact:
		e.u8(f.Op)
		e.uint(f.TIndex)
	case FrameStepResult:
		e.bool(f.Progressed)
		e.bool(f.Done)
		e.uint(f.Queued)
		e.bool(f.HasEvent)
		if f.HasEvent {
			e.str(f.EventName)
			e.uint(f.EventPlace)
		}
	case FrameChoose:
		e.uint(len(f.Offered))
		for _, o := range f.Offered {
			e.str(o.Name)
			e.uint(o.Place)
		}
	case FrameChooseReply:
		e.zig(int64(f.Choice))
	case FrameSeq:
		e.uint(f.GlobalSeq)
	case FrameEnabledReport:
		e.bool(f.Delta)
		e.bool(f.Local)
		e.bool(f.RecvReady)
		e.uint(len(f.SendTargets))
		for _, p := range f.SendTargets {
			e.uint(p)
		}
		e.uint(len(f.QueueLens))
		for _, q := range f.QueueLens {
			e.uint(q.From)
			e.uint(q.Len)
		}
	case FrameHalt:
		e.u8(uint8(f.Outcome))
		e.str(f.Reason)
	case FrameError:
		e.str(f.ErrMsg)
	default:
		return nil, fmt.Errorf("wire: cannot encode frame type %s", f.Type)
	}
	body := len(e.buf) - 4
	if body > MaxFrameBody {
		return nil, ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(e.buf[:4], uint32(body))
	return e.buf, nil
}

// DecodeBody parses one frame body (everything after the length prefix).
// It is strict: unknown types, truncated fields, out-of-range values and
// trailing bytes are all errors.
func DecodeBody(body []byte, t *MsgTable) (*Frame, error) {
	d := &decoder{buf: body}
	f := &Frame{Type: FrameType(d.u8("frame type"))}
	switch f.Type {
	case FrameHello:
		f.Version = d.u8("version")
		f.Kind = ConnKind(d.u8("conn kind"))
		f.Place = d.uint("place")
		f.SpecDigest = d.u64("spec digest")
		f.TableDigest = d.u64("table digest")
		f.Addr = d.str("address")
		f.Engine = d.str("engine")
		if d.err == nil && f.Kind > ConnData {
			d.fail("conn kind (unknown)")
		}
	case FrameData:
		f.From = d.uint("from")
		f.To = d.uint("to")
		f.Seq = d.uvarint("seq")
		f.Msg = decodeMsg(d, t)
	case FrameAck:
		f.From = d.uint("from")
		f.To = d.uint("to")
		f.Seq = d.uvarint("seq")
	case FramePeers:
		n := d.listLen("peer count")
		for i := 0; i < n && d.err == nil; i++ {
			f.Peers = append(f.Peers, Peer{Place: d.uint("peer place"), Addr: d.str("peer address")})
		}
	case FrameReady, FrameStep, FrameEnabled:
		// no fields
	case FrameStart:
		f.Seed = d.zig("seed")
		f.Mode = SessionMode(d.u8("session mode"))
		if d.err == nil && f.Mode > ModeReplay {
			d.fail("session mode (unknown)")
		}
	case FrameStepExact:
		f.Op = d.u8("op")
		f.TIndex = d.uint("transition index")
	case FrameStepResult:
		f.Progressed = d.bool("progressed")
		f.Done = d.bool("done")
		f.Queued = d.uint("queued")
		f.HasEvent = d.bool("has-event")
		if f.HasEvent {
			f.EventName = d.str("event name")
			f.EventPlace = d.uint("event place")
		}
	case FrameChoose:
		n := d.listLen("offer count")
		for i := 0; i < n && d.err == nil; i++ {
			f.Offered = append(f.Offered, ServicePrimitive{Name: d.str("offer name"), Place: d.uint("offer place")})
		}
	case FrameChooseReply:
		v := d.zig("choice")
		if d.err == nil && (v < -1 || v > MaxListLen) {
			d.fail("choice (out of range)")
		}
		f.Choice = int(v)
	case FrameSeq:
		f.GlobalSeq = d.uint("global seq")
	case FrameEnabledReport:
		f.Delta = d.bool("delta")
		f.Local = d.bool("local")
		f.RecvReady = d.bool("recv-ready")
		n := d.listLen("send-target count")
		for i := 0; i < n && d.err == nil; i++ {
			f.SendTargets = append(f.SendTargets, d.uint("send target"))
		}
		n = d.listLen("queue count")
		for i := 0; i < n && d.err == nil; i++ {
			f.QueueLens = append(f.QueueLens, QueueLen{From: d.uint("queue from"), Len: d.uint("queue len")})
		}
	case FrameHalt:
		f.Outcome = OutcomeFlags(d.u8("outcome"))
		f.Reason = d.str("reason")
	case FrameError:
		f.ErrMsg = d.str("error message")
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", uint8(f.Type))
	}
	if d.err != nil {
		return nil, fmt.Errorf("%s frame: %w", f.Type, d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("wire: %s frame has %d trailing bytes", f.Type, len(d.buf))
	}
	return f, nil
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, f *Frame, t *MsgTable) error {
	buf, err := f.Encode(t)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads and decodes one length-prefixed frame. The length prefix
// is validated against MaxFrameBody before any body allocation.
func ReadFrame(r io.Reader, t *MsgTable) (*Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBody {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: truncated frame body: %w", err)
	}
	return DecodeBody(body, t)
}

// ServiceEvent rebuilds the lotos event of a reported service primitive.
func (p ServicePrimitive) Event() lotos.Event { return lotos.ServiceEvent(p.Name, p.Place) }
