package wiretest

import (
	"fmt"

	"repro/internal/compose"
)

// LossPlan compiles a verification counterexample's medium-loss steps into a
// proxy drop schedule: for every StepLoss it determines which sender-side
// sequence number the struck queue position corresponds to, by replaying the
// witness's sends and receives against per-channel FIFO models. The result
// is the exact set of frames a proxy must drop for the live deployment to
// experience the witness's faults at the witness's points.
//
// Only loss faults translate: duplication and reordering change the
// composition's queue contents in ways the replay coordinator does not
// drive, and are rejected.
func LossPlan(w *compose.Witness) (Faults, error) {
	type qitem struct {
		seq uint64
		msg string
	}
	queues := map[[2]int][]qitem{}
	sent := map[[2]int]uint64{}
	var f Faults
	for i, st := range w.Steps {
		ch := [2]int{st.From, st.To}
		switch st.Kind {
		case compose.StepSend:
			sent[ch]++
			queues[ch] = append(queues[ch], qitem{seq: sent[ch], msg: st.Msg})
		case compose.StepRecv:
			q := queues[ch]
			if len(q) == 0 {
				return Faults{}, fmt.Errorf("wiretest: step %d receives on empty channel %d->%d", i, st.From, st.To)
			}
			if q[0].msg != st.Msg {
				return Faults{}, fmt.Errorf("wiretest: step %d receives %q past the channel head %q (flush receive, unsupported live)",
					i, st.Msg, q[0].msg)
			}
			queues[ch] = q[1:]
		case compose.StepLoss:
			q := queues[ch]
			if st.Index < 0 || st.Index >= len(q) {
				return Faults{}, fmt.Errorf("wiretest: step %d loss index %d outside channel %d->%d queue of %d",
					i, st.Index, st.From, st.To, len(q))
			}
			f.Drop = append(f.Drop, ChannelSeq{From: st.From, To: st.To, Seq: q[st.Index].seq})
			queues[ch] = append(q[:st.Index:st.Index], q[st.Index+1:]...)
		case compose.StepDuplicate, compose.StepReorder:
			return Faults{}, fmt.Errorf("wiretest: %s faults are not supported in live replay", st.Kind)
		}
	}
	sortSpecs(f.Drop)
	return f, nil
}
