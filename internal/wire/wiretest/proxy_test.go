package wiretest

import (
	"testing"
	"time"

	"repro/internal/compose"
	"repro/internal/fsm"
	"repro/internal/lotos"
	"repro/internal/medium"
	"repro/internal/wire"
)

// proxyPair builds a two-endpoint mesh with the proxy spliced into the data
// connection: endpoint 1 dials the proxy believing it is endpoint 2.
func proxyPair(t *testing.T, window int, faults Faults) (a, b *wire.Endpoint, px *Proxy) {
	t.Helper()
	ent, err := lotos.Parse(`SPEC a1; s2(7); r2(9); exit ENDSPEC`)
	if err != nil {
		t.Fatal(err)
	}
	fleet := fsm.CompileEntities(map[int]*lotos.Spec{1: ent}, fsm.Config{})
	table := wire.TableFromFleet(fleet)
	b, err = wire.NewEndpoint(wire.EndpointConfig{Place: 2, Table: table, ChannelCap: window, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	px, err = NewProxy("127.0.0.1:0", b.Addr(), faults)
	if err != nil {
		t.Fatal(err)
	}
	a, err = wire.NewEndpoint(wire.EndpointConfig{Place: 1, Table: table, ChannelCap: window, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	// One shared peer table: the dialer (place 1) reaches place 2 through
	// the proxy; place 2 ignores its own entry and only accepts.
	peers := []wire.Peer{{Place: 1, Addr: a.Addr()}, {Place: 2, Addr: px.Addr()}}
	done := make(chan error, 1)
	go func() { done <- b.EstablishMesh(peers) }()
	if err := a.EstablishMesh(peers); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close(); px.Close() })
	return a, b, px
}

// drainExpect consumes exactly the expected messages, in order.
func drainExpect(t *testing.T, ep *wire.Endpoint, want []medium.Message) {
	t.Helper()
	for _, m := range want {
		deadline := time.Now().Add(5 * time.Second)
		gen := ep.Generation()
		for !ep.TryConsumeCheck(m) {
			if time.Now().After(deadline) {
				t.Fatalf("message %s never became consumable", m)
			}
			gen = ep.WaitChange(gen)
		}
		if !ep.TryConsume(m) {
			t.Fatalf("message %s not consumable", m)
		}
	}
	if got := ep.InFlight(); got != 0 {
		t.Fatalf("in flight after draining: %d", got)
	}
}

// testMsgs builds n distinct messages on channel 1 -> 2.
func testMsgs(n int) []medium.Message {
	out := make([]medium.Message, n)
	for i := range out {
		out[i] = medium.Message{From: 1, To: 2, Node: 10 + i, Occ: "0"}
	}
	return out
}

// TestProxyDropMirrorsDropAt drops the second frame and requires the
// receiver's queue to match the in-process medium after DropAt: the message
// vanishes, the receiver counts the loss, and the sender's flush barrier
// still drains (forged delivery ack).
func TestProxyDropMirrorsDropAt(t *testing.T) {
	msgs := testMsgs(3)
	a, b, px := proxyPair(t, 1, Faults{Drop: []ChannelSeq{{From: 1, To: 2, Seq: 2}}})
	for _, m := range msgs {
		a.Send(m)
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	med := medium.New(medium.Config{})
	for _, m := range msgs {
		med.Send(m)
	}
	if !med.DropAt(1, 2, 1) {
		t.Fatal("reference DropAt failed")
	}
	drainExpect(t, b, med.Pending(1, 2))
	if st := b.WireStats(); st.Losses != 1 {
		t.Fatalf("receiver losses = %d, want 1 (%+v)", st.Losses, st)
	}
	if st := px.Stats(); st.Dropped != 1 {
		t.Fatalf("proxy dropped = %d, want 1", st.Dropped)
	}
}

// TestProxyDuplicateMirrorsDuplicateAt duplicates the second frame and
// requires the receiver's queue to match the in-process medium after
// DuplicateAt — the same message enqueued twice, later frames renumbered
// transparently (the trailing message still arrives and every ack
// translates back to the sender's numbering, so windows drain).
func TestProxyDuplicateMirrorsDuplicateAt(t *testing.T) {
	msgs := testMsgs(3)
	a, b, px := proxyPair(t, 1, Faults{Duplicate: []ChannelSeq{{From: 1, To: 2, Seq: 2}}})
	for _, m := range msgs {
		a.Send(m)
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	med := medium.New(medium.Config{})
	for _, m := range msgs {
		med.Send(m)
	}
	if !med.DuplicateAt(1, 2, 1) {
		t.Fatal("reference DuplicateAt failed")
	}
	drainExpect(t, b, med.Pending(1, 2))
	if st := px.Stats(); st.Duplicated != 1 {
		t.Fatalf("proxy duplicated = %d, want 1", st.Duplicated)
	}
}

// TestProxySwapMirrorsSwapAt swaps the first two frames and requires the
// receiver's queue to match the in-process medium after SwapAt, with a
// flush barrier between the two sends (the held frame's ack is forged, so
// the lockstep discipline of one flushed send per step cannot deadlock).
func TestProxySwapMirrorsSwapAt(t *testing.T) {
	msgs := testMsgs(3)
	a, b, px := proxyPair(t, 1, Faults{Swap: []ChannelSeq{{From: 1, To: 2, Seq: 1}}})
	for _, m := range msgs {
		a.Send(m)
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	med := medium.New(medium.Config{})
	for _, m := range msgs {
		med.Send(m)
	}
	if !med.SwapAt(1, 2, 0) {
		t.Fatal("reference SwapAt failed")
	}
	drainExpect(t, b, med.Pending(1, 2))
	if st := px.Stats(); st.Swapped != 1 {
		t.Fatalf("proxy swapped = %d, want 1", st.Swapped)
	}
	if st := b.WireStats(); st.Losses != 0 || st.Duplicates != 0 {
		t.Fatalf("swap must not look like loss or duplication: %+v", st)
	}
}

// TestLossPlan compiles witness loss steps to drop schedules and rejects
// what live replay cannot drive.
func TestLossPlan(t *testing.T) {
	w := &compose.Witness{Steps: []compose.WitnessStep{
		{Kind: compose.StepSend, From: 1, To: 2, Msg: "m1"},
		{Kind: compose.StepSend, From: 1, To: 2, Msg: "m2"},
		{Kind: compose.StepLoss, From: 1, To: 2, Index: 0, Msg: "m1"},
		{Kind: compose.StepRecv, From: 1, To: 2, Msg: "m2"},
		{Kind: compose.StepSend, From: 2, To: 1, Msg: "r1"},
		{Kind: compose.StepLoss, From: 2, To: 1, Index: 0, Msg: "r1"},
	}}
	f, err := LossPlan(w)
	if err != nil {
		t.Fatal(err)
	}
	want := []ChannelSeq{{From: 1, To: 2, Seq: 1}, {From: 2, To: 1, Seq: 1}}
	if len(f.Drop) != len(want) {
		t.Fatalf("drops = %+v, want %+v", f.Drop, want)
	}
	for i := range want {
		if f.Drop[i] != want[i] {
			t.Fatalf("drops = %+v, want %+v", f.Drop, want)
		}
	}

	// A receive past the channel head (flush semantics) is rejected.
	flush := &compose.Witness{Steps: []compose.WitnessStep{
		{Kind: compose.StepSend, From: 1, To: 2, Msg: "m1"},
		{Kind: compose.StepSend, From: 1, To: 2, Msg: "m2"},
		{Kind: compose.StepRecv, From: 1, To: 2, Msg: "m2"},
	}}
	if _, err := LossPlan(flush); err == nil {
		t.Fatal("flush receive compiled without error")
	}

	// Duplication faults cannot be compiled to a drop schedule.
	dup := &compose.Witness{Steps: []compose.WitnessStep{
		{Kind: compose.StepSend, From: 1, To: 2, Msg: "m1"},
		{Kind: compose.StepDuplicate, From: 1, To: 2, Index: 0, Msg: "m1"},
	}}
	if _, err := LossPlan(dup); err == nil {
		t.Fatal("duplicate fault compiled without error")
	}

	// A loss striking outside the modeled queue is an inconsistency.
	bad := &compose.Witness{Steps: []compose.WitnessStep{
		{Kind: compose.StepLoss, From: 1, To: 2, Index: 0, Msg: "m1"},
	}}
	if _, err := LossPlan(bad); err == nil {
		t.Fatal("out-of-range loss compiled without error")
	}
}
