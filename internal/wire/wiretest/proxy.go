// Package wiretest provides fault injection for the wire transport: a
// frame-aware TCP proxy spliced into a deployment's data mesh that drops,
// duplicates or swaps selected data frames — the live images of the
// composition's medium faults (medium.DropAt / DuplicateAt / SwapAt and the
// compose fault models) — and a planner that turns a verification
// counterexample's loss steps into the proxy's drop schedule, so a
// non-conformant fault-matrix cell replays as a real network execution.
package wiretest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
)

// Wire framing constants, mirrored from internal/wire's codec: the proxy
// parses only the data/ack frame headers (type byte, then channel endpoints
// and sequence number as uvarints) and treats message payloads as opaque
// bytes, so it needs no message table and works for interned and verbose
// encodings alike.
const (
	frameData    = 2
	frameAck     = 3
	maxFrameBody = 1 << 20
)

// ChannelSeq names one data frame: the channel's directed endpoints and the
// frame's sender-side (original) sequence number — the wire image of "the
// k-th message sent on From -> To" (sequence numbers start at 1).
type ChannelSeq struct {
	From, To int
	Seq      uint64
}

// Faults is a proxy manipulation schedule. Each entry strikes at most once;
// at most one manipulation may name a given frame.
//
//   - Drop suppresses the frame. The receiver observes a sequence gap (its
//     loss counter), the sender receives a forged delivery ack so windows
//     and flush barriers drain — the frame simply vanishes, like the
//     in-process medium's DropAt.
//   - Duplicate forwards the frame and an immediate copy under a fresh
//     sequence number (subsequent frames are renumbered, acks translated
//     back), so the receiver enqueues the message twice, like DuplicateAt.
//   - Swap holds the frame and releases it after its channel successor,
//     with payloads exchanged so sequence numbers stay ascending: the
//     receiver enqueues the two messages in swapped order, like SwapAt.
//     The held frame's delivery ack is forged so a sender flushing between
//     the two sends does not deadlock.
type Faults struct {
	Drop      []ChannelSeq
	Duplicate []ChannelSeq
	Swap      []ChannelSeq
}

// Stats counts the manipulations a proxy performed.
type Stats struct {
	Dropped    int
	Duplicated int
	Swapped    int
	// Forwarded counts data frames passed through (including manipulated
	// ones that were forwarded in some form).
	Forwarded int
}

// seqBreak records that wire sequence numbers >= start carry the given
// offset over the original numbering (duplicates shift the tail up).
type seqBreak struct {
	start, offset uint64
}

// chanState is the proxy's per-directed-channel rewrite state.
type chanState struct {
	breaks  []seqBreak
	holding bool
	held    []byte // payload bytes of the held (swap) frame
	heldSeq uint64 // original sequence number of the held frame
}

// offsetAt returns the numbering offset applying to wire sequence w.
func (st *chanState) offsetAt(w uint64) uint64 {
	off := uint64(0)
	for _, b := range st.breaks {
		if w >= b.start {
			off = b.offset
		}
	}
	return off
}

// current returns the offset applying to the next forwarded frame.
func (st *chanState) current() uint64 {
	if n := len(st.breaks); n > 0 {
		return st.breaks[n-1].offset
	}
	return 0
}

// Proxy is a frame-aware TCP forwarder for wire data connections. It
// accepts connections on its own address, dials the real peer for each, and
// forwards frames both ways, applying the fault schedule to data frames and
// keeping the ack stream consistent with the rewritten numbering. Frames it
// does not understand (handshakes) pass through untouched.
type Proxy struct {
	forward string
	faults  Faults

	mu     sync.Mutex
	chans  map[[2]int]*chanState
	stats  Stats
	closed bool
	conns  []net.Conn

	ln net.Listener
	wg sync.WaitGroup
}

// NewProxy starts a proxy listening on listen (e.g. "127.0.0.1:0") and
// forwarding every accepted connection to forward.
func NewProxy(listen, forward string, faults Faults) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("wiretest: listen %s: %w", listen, err)
	}
	p := &Proxy{forward: forward, faults: faults, chans: map[[2]int]*chanState{}, ln: ln}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address, for splicing into a peer table.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the manipulation counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops the proxy and tears down every forwarded connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := append([]net.Conn(nil), p.conns...)
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		up, err := p.ln.Accept()
		if err != nil {
			return
		}
		down, err := net.Dial("tcp", p.forward)
		if err != nil {
			up.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			up.Close()
			down.Close()
			return
		}
		p.conns = append(p.conns, up, down)
		p.mu.Unlock()
		a := &side{conn: up}
		b := &side{conn: down}
		p.wg.Add(2)
		go p.pump(a, b)
		go p.pump(b, a)
	}
}

// side is one end of a forwarded connection with serialized writes (the
// opposite pump and forged acks both write to it).
type side struct {
	conn net.Conn
	wmu  sync.Mutex
}

func (s *side) write(body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if _, err := s.conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := s.conn.Write(body)
	return err
}

// readBody reads one length-prefixed frame body.
func readBody(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBody {
		return nil, errors.New("wiretest: frame exceeds size limit")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// header is a parsed data/ack frame header.
type header struct {
	from, to int
	seq      uint64
	payload  []byte // opaque message bytes (data frames only)
}

// parseHeader decodes the channel header of a data or ack frame body.
func parseHeader(body []byte) (header, bool) {
	b := body[1:]
	from, n := binary.Uvarint(b)
	if n <= 0 {
		return header{}, false
	}
	b = b[n:]
	to, n := binary.Uvarint(b)
	if n <= 0 {
		return header{}, false
	}
	b = b[n:]
	seq, n := binary.Uvarint(b)
	if n <= 0 {
		return header{}, false
	}
	return header{from: int(from), to: int(to), seq: seq, payload: b[n:]}, true
}

// encodeFrame rebuilds a data/ack frame body from its parts.
func encodeFrame(typ byte, from, to int, seq uint64, payload []byte) []byte {
	buf := make([]byte, 0, 16+len(payload))
	buf = append(buf, typ)
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = binary.AppendUvarint(buf, uint64(to))
	buf = binary.AppendUvarint(buf, seq)
	return append(buf, payload...)
}

// pump forwards frames from src to dst until src closes, applying the fault
// schedule to data frames and renumbering acks.
func (p *Proxy) pump(src, dst *side) {
	defer p.wg.Done()
	for {
		body, err := readBody(src.conn)
		if err != nil {
			// Half of the pair died; propagate to the other half so the
			// endpoints observe the same teardown they would without a proxy.
			dst.conn.Close()
			src.conn.Close()
			return
		}
		if len(body) == 0 {
			continue
		}
		var out [][]byte // frames for dst, in order
		var back []byte  // forged ack for src
		switch body[0] {
		case frameData:
			h, ok := parseHeader(body)
			if !ok {
				out = [][]byte{body}
				break
			}
			out, back = p.onData(h)
		case frameAck:
			h, ok := parseHeader(body)
			if !ok {
				out = [][]byte{body}
				break
			}
			out = [][]byte{p.onAck(h)}
		default:
			out = [][]byte{body}
		}
		for _, b := range out {
			if err := dst.write(b); err != nil {
				src.conn.Close()
				return
			}
		}
		if back != nil {
			if err := src.write(back); err != nil {
				dst.conn.Close()
				return
			}
		}
	}
}

// match reports whether the schedule names this frame.
func match(list []ChannelSeq, from, to int, seq uint64) bool {
	for _, c := range list {
		if c.From == from && c.To == to && c.Seq == seq {
			return true
		}
	}
	return false
}

// onData applies the schedule to one data frame, returning the frames to
// forward toward the receiver and an optional forged ack for the sender.
func (p *Proxy) onData(h header) (out [][]byte, back []byte) {
	key := [2]int{h.from, h.to}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.chans[key]
	if st == nil {
		st = &chanState{}
		p.chans[key] = st
	}
	off := st.current()
	if st.holding {
		// The held frame's successor arrived: release both with payloads
		// exchanged so the wire sequence stays ascending while the receiver
		// enqueues the messages in swapped order.
		p.stats.Swapped++
		p.stats.Forwarded += 2
		first := encodeFrame(frameData, h.from, h.to, st.heldSeq+off, h.payload)
		second := encodeFrame(frameData, h.from, h.to, h.seq+off, st.held)
		st.holding = false
		st.held = nil
		return [][]byte{first, second}, nil
	}
	switch {
	case match(p.faults.Drop, h.from, h.to, h.seq):
		// Vanish: the receiver sees a gap at the next frame, the sender gets
		// its delivery ack forged (in its own, original numbering).
		p.stats.Dropped++
		return nil, encodeFrame(frameAck, h.from, h.to, h.seq, nil)
	case match(p.faults.Duplicate, h.from, h.to, h.seq):
		// Forward twice; the copy takes the next wire sequence number and
		// every later frame shifts up by one.
		p.stats.Duplicated++
		p.stats.Forwarded += 2
		orig := encodeFrame(frameData, h.from, h.to, h.seq+off, h.payload)
		dup := encodeFrame(frameData, h.from, h.to, h.seq+off+1, h.payload)
		st.breaks = append(st.breaks, seqBreak{start: h.seq + off + 1, offset: off + 1})
		return [][]byte{orig, dup}, nil
	case match(p.faults.Swap, h.from, h.to, h.seq):
		// Hold until the successor; forge the delivery ack now so a sender
		// flushing between the two sends does not wait on a frame the proxy
		// is sitting on.
		st.holding = true
		st.held = append([]byte(nil), h.payload...)
		st.heldSeq = h.seq
		return nil, encodeFrame(frameAck, h.from, h.to, h.seq, nil)
	}
	p.stats.Forwarded++
	return [][]byte{encodeFrame(frameData, h.from, h.to, h.seq+off, h.payload)}, nil
}

// onAck translates an ack from the receiver's (rewritten) numbering back to
// the sender's original numbering.
func (p *Proxy) onAck(h header) []byte {
	key := [2]int{h.from, h.to}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.chans[key]
	if st == nil {
		return encodeFrame(frameAck, h.from, h.to, h.seq, nil)
	}
	return encodeFrame(frameAck, h.from, h.to, h.seq-st.offsetAt(h.seq), nil)
}

// sortSpecs orders a schedule for stable rendering in diagnostics.
func sortSpecs(specs []ChannelSeq) {
	sort.Slice(specs, func(i, j int) bool {
		a, b := specs[i], specs[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Seq < b.Seq
	})
}
