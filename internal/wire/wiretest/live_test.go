package wiretest

// The live fault-matrix test: the PR-4 fault matrix says the transport
// protocol is conformant over a reliable medium and deadlocks under message
// loss (cap 1). Both cells are re-established here on real sockets — the
// conformant cell as a seeded live session whose recorded trace the service
// accepts, the non-conformant cell by replaying the verification
// counterexample through a deployment whose wire actually loses the frames
// the witness loses, and checking that the recorded logs earn the deadlock
// verdict from the conformance checker.

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/lotos"
	"repro/internal/wire"
	"repro/internal/wire/conformance"
)

const (
	liveMaxStates = 1024
	liveMaxEvents = 24
)

// transportDerivation parses and derives specs/transport.spec.
func transportDerivation(t *testing.T) *core.Derivation {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "..", "specs", "transport.spec"))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := lotos.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Derive(sp, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// cloneEntities deep-copies the entity map (exploration numbers trees in
// place).
func cloneEntities(m map[int]*lotos.Spec) map[int]*lotos.Spec {
	out := make(map[int]*lotos.Spec, len(m))
	for p, sp := range m {
		out[p] = lotos.CloneSpec(sp)
	}
	return out
}

// proxySet lazily creates one fault proxy per affected connection pair and
// splices it into the peer maps the coordinator distributes: the dialing
// (lower-place) entity of each pair is pointed at the proxy instead of the
// real peer.
type proxySet struct {
	faults Faults

	mu      sync.Mutex
	proxies map[[2]int]*Proxy
	t       *testing.T
}

func newProxySet(t *testing.T, faults Faults) *proxySet {
	ps := &proxySet{faults: faults, proxies: map[[2]int]*Proxy{}, t: t}
	t.Cleanup(ps.close)
	return ps
}

// pairs returns the unordered connection pairs the schedule touches.
func (ps *proxySet) pairs() map[[2]int]bool {
	out := map[[2]int]bool{}
	all := append(append(append([]ChannelSeq{}, ps.faults.Drop...), ps.faults.Duplicate...), ps.faults.Swap...)
	for _, c := range all {
		lo, hi := c.From, c.To
		if lo > hi {
			lo, hi = hi, lo
		}
		out[[2]int{lo, hi}] = true
	}
	return out
}

// rewrite is the CoordinatorConfig.RewritePeers hook.
func (ps *proxySet) rewrite(place int, peers []wire.Peer) []wire.Peer {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := append([]wire.Peer(nil), peers...)
	for pair := range ps.pairs() {
		if place != pair[0] {
			continue // only the dialing (lower) side goes through the proxy
		}
		for i, p := range out {
			if p.Place != pair[1] {
				continue
			}
			px := ps.proxies[pair]
			if px == nil {
				var err error
				px, err = NewProxy("127.0.0.1:0", p.Addr, ps.faults)
				if err != nil {
					ps.t.Errorf("proxy for pair %v: %v", pair, err)
					return out
				}
				ps.proxies[pair] = px
			}
			out[i].Addr = px.Addr()
		}
	}
	return out
}

func (ps *proxySet) close() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, px := range ps.proxies {
		px.Close()
	}
}

// liveDeployment is an in-process deployment (coordinator + one goroutine
// per entity over loopback TCP), optionally faulted through a proxySet.
type liveDeployment struct {
	coord  *wire.Coordinator
	logs   map[int]*bytes.Buffer
	errs   chan error
	places []int
}

func deployLive(t *testing.T, entities map[int]*lotos.Spec, channelCap, maxEvents int,
	rewrite func(int, []wire.Peer) []wire.Peer) *liveDeployment {
	t.Helper()
	fleet := fsm.CompileEntities(entities, fsm.Config{MaxStates: liveMaxStates})
	table := wire.TableFromFleet(fleet)
	places := make([]int, 0, len(entities))
	for p := range entities {
		places = append(places, p)
	}
	sort.Ints(places)
	coord, err := wire.NewCoordinator(wire.CoordinatorConfig{
		N: len(places), Table: table, Listen: "127.0.0.1:0",
		MaxEvents: maxEvents, Timeout: 30 * time.Second, RewritePeers: rewrite,
	})
	if err != nil {
		t.Fatal(err)
	}
	dep := &liveDeployment{
		coord: coord, logs: map[int]*bytes.Buffer{},
		errs: make(chan error, len(places)), places: places,
	}
	for i, p := range places {
		buf := &bytes.Buffer{}
		dep.logs[p] = buf
		go func(i, p int, buf *bytes.Buffer) {
			dep.errs <- wire.RunEntity(wire.EntityConfig{
				Place: p, PlaceIndex: i,
				Spec: entities[p], Machine: fleet.Machines[p],
				Table: table, Coordinator: coord.Addr(), Listen: "127.0.0.1:0",
				ChannelCap: channelCap, TraceLog: buf,
				SessionTimeout: 30 * time.Second,
			})
		}(i, p, buf)
	}
	if err := coord.WaitEntities(); err != nil {
		coord.Close()
		t.Fatalf("mesh establishment: %v", err)
	}
	return dep
}

func (dep *liveDeployment) wait(t *testing.T) {
	t.Helper()
	for range dep.places {
		if err := <-dep.errs; err != nil {
			t.Errorf("entity exit: %v", err)
		}
	}
	dep.coord.Close()
}

// parseLogs parses every entity trace log.
func (dep *liveDeployment) parseLogs(t *testing.T) map[int]*wire.EntityLog {
	t.Helper()
	logs := map[int]*wire.EntityLog{}
	for p, buf := range dep.logs {
		log, err := wire.ParseTraceLog(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("entity %d log: %v", p, err)
		}
		logs[p] = log
	}
	return logs
}

// TestLiveFaultMatrixTransport re-establishes the PR-4 fault matrix's two
// transport/cap1 cells on real sockets.
func TestLiveFaultMatrixTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("live deployments are wall-clock-bound; skipped in -short")
	}
	d := transportDerivation(t)

	// Conformant cell: reliable wire, seeded session; the recorded trace
	// must be accepted by the service.
	t.Run("reliable", func(t *testing.T) {
		dep := deployLive(t, d.Entities, compose.DefaultChannelCap, liveMaxEvents, nil)
		rep, err := dep.coord.RunSeeded(1)
		if err != nil {
			t.Fatalf("live session: %v", err)
		}
		dep.wait(t)
		if rep.Aborted {
			t.Fatalf("session aborted: %s", rep.Reason)
		}
		conf, err := conformance.Check(lotos.CloneSpec(d.Service.Spec), dep.parseLogs(t), 4096)
		if err != nil {
			t.Fatal(err)
		}
		if conf.Verdict != conformance.VerdictAccepted || !conf.TraceAccepted {
			t.Fatalf("reliable cell not accepted: %s (%s)", conf.Verdict, conf.Reason)
		}
	})

	// Non-conformant cell: verification under loss finds a deadlock witness;
	// the witness replays on a wire that actually drops the frames, and the
	// recorded logs earn the deadlock verdict.
	t.Run("loss", func(t *testing.T) {
		vrep, err := compose.Verify(lotos.CloneSpec(d.Service.Spec), cloneEntities(d.Entities), compose.VerifyOptions{
			ChannelCap: 1,
			Faults:     compose.FaultModel{Loss: true},
		})
		if err != nil {
			t.Fatalf("verify under loss: %v", err)
		}
		if vrep.Ok() || vrep.Witness == nil {
			t.Fatalf("fault matrix changed: transport/cap1/loss expected a witness, got ok=%v", vrep.Ok())
		}
		if vrep.Witness.Kind != compose.WitnessDeadlock {
			t.Fatalf("witness kind %q, want %q", vrep.Witness.Kind, compose.WitnessDeadlock)
		}
		plan, err := LossPlan(vrep.Witness)
		if err != nil {
			t.Fatalf("loss plan: %v", err)
		}
		if len(plan.Drop) == 0 {
			t.Fatal("deadlock witness without loss steps")
		}
		ps := newProxySet(t, plan)
		dep := deployLive(t, d.Entities, 1, 0, ps.rewrite)
		lrep, err := dep.coord.RunReplay(vrep.Witness)
		if err != nil {
			t.Fatalf("live replay: %v", err)
		}
		dep.wait(t)
		if !lrep.Deadlocked {
			t.Fatalf("live replay did not deadlock: %+v", lrep)
		}
		if got, want := len(lrep.Trace), len(vrep.Witness.Trace); got != want {
			t.Fatalf("replay trace %v, witness trace %v", lrep.Trace, vrep.Witness.Trace)
		}
		for i := range lrep.Trace {
			if lrep.Trace[i] != vrep.Witness.Trace[i] {
				t.Fatalf("replay trace %v diverges from witness trace %v", lrep.Trace, vrep.Witness.Trace)
			}
		}
		// The proxy performed exactly the planned drops.
		dropped := 0
		ps.mu.Lock()
		for _, px := range ps.proxies {
			dropped += px.Stats().Dropped
		}
		ps.mu.Unlock()
		if dropped != len(plan.Drop) {
			t.Fatalf("proxy dropped %d frames, plan had %d", dropped, len(plan.Drop))
		}
		conf, err := conformance.Check(lotos.CloneSpec(d.Service.Spec), dep.parseLogs(t), 4096)
		if err != nil {
			t.Fatal(err)
		}
		if conf.Verdict != conformance.VerdictDeadlock {
			t.Fatalf("loss cell verdict %s (%s), want deadlock", conf.Verdict, conf.Reason)
		}
		if !conf.TraceAccepted {
			t.Fatalf("deadlock witness trace must still be a service trace: %s", conf.Reason)
		}
	})
}
