package wire

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/fsm"
	"repro/internal/lotos"
)

// MsgTable interns the message identifications of a derived protocol: every
// (node, occurrence) or tag payload that can cross a channel, enumerated in
// a canonical order so every deployment process — each derives and compiles
// the same service specification independently — builds the same table and
// the same key assignment. The table digest travels in Hello frames; a
// mismatch (different spec revision, different compile cap) fails the
// handshake instead of silently mis-decoding frames.
//
// Entities that fall back to the AST interpreter (state space beyond the
// compile cap, the unbounded-recursion shapes) have an unbounded message
// alphabet; their messages simply miss the table and travel in the codec's
// verbose encoding. Both sides agree on the table regardless, because
// compilation failure is deterministic.
type MsgTable struct {
	labels []Msg
	index  map[Msg]int
	digest uint64
}

// TableFromFleet builds the interning table from a compiled entity fleet:
// the union of every machine's send/receive alphabets, deduplicated and
// sorted canonically. Machines that failed to compile contribute nothing.
func TableFromFleet(fleet *fsm.Fleet) *MsgTable {
	set := map[Msg]bool{}
	places := make([]int, 0, len(fleet.Machines))
	for p := range fleet.Machines {
		places = append(places, p)
	}
	sort.Ints(places)
	for _, p := range places {
		m := fleet.Machines[p]
		if m == nil {
			continue
		}
		for i, op := range m.Ops {
			if op != fsm.OpSend && op != fsm.OpRecv && op != fsm.OpRecvFlush {
				continue
			}
			ev := m.Events[i]
			set[Msg{Node: ev.Node, Occ: ev.Occ, Tag: ev.Tag}] = true
		}
	}
	labels := make([]Msg, 0, len(set))
	for m := range set {
		labels = append(labels, m)
	}
	sort.Slice(labels, func(i, j int) bool {
		a, b := labels[i], labels[j]
		if a.Tag != b.Tag {
			return a.Tag < b.Tag
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Occ < b.Occ
	})
	t := &MsgTable{labels: labels, index: make(map[Msg]int, len(labels))}
	h := fnv.New64a()
	for key, m := range labels {
		t.index[m] = key
		fmt.Fprintf(h, "%d\x00%s\x00%s\x1f", m.Node, m.Occ, m.Tag)
	}
	t.digest = h.Sum64()
	return t
}

// TableForEntities compiles the entities (at the given state cap; 0 means
// the fsm default) and builds their table. It is the one-call form used by
// deployment processes.
func TableForEntities(entities map[int]*lotos.Spec, maxStates int) *MsgTable {
	return TableFromFleet(fsm.CompileEntities(entities, fsm.Config{MaxStates: maxStates}))
}

// Key returns the interned key of a message payload.
func (t *MsgTable) Key(m Msg) (int, bool) {
	key, ok := t.index[m]
	return key, ok
}

// Lookup resolves an interned key.
func (t *MsgTable) Lookup(key int) (Msg, bool) {
	if key < 0 || key >= len(t.labels) {
		return Msg{}, false
	}
	return t.labels[key], true
}

// Len returns the number of interned messages.
func (t *MsgTable) Len() int { return len(t.labels) }

// Digest returns the canonical table digest (FNV-1a 64 over the sorted
// entries), exchanged in Hello frames.
func (t *MsgTable) Digest() uint64 {
	if t == nil {
		return 0
	}
	return t.digest
}
