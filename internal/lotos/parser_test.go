package lotos

import (
	"strings"
	"testing"
)

func TestParseEventForms(t *testing.T) {
	cases := []struct {
		src  string
		want Event
	}{
		{"read1; exit", ServiceEvent("read", 1)},
		{"a12; exit", ServiceEvent("a", 12)},
		{"interrupt3; exit", ServiceEvent("interrupt", 3)},
		{"i; exit", InternalEvent()},
		{"s2(7); exit", SendEvent(2, 7)},
		{"r3(9); exit", RecvEvent(3, 9)},
		{"s2(s,7); exit", SendEvent(2, 7)},
		{"s2(x); exit", Event{Kind: EvSend, Place: 2, Node: -1, Tag: "x"}},
		{"r1(y); exit", Event{Kind: EvRecv, Place: 1, Node: -1, Tag: "y"}},
		{"s2(#0/5,7); exit", Event{Kind: EvSend, Place: 2, Node: 7, Occ: "0/5"}},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.src, err)
			continue
		}
		p, ok := e.(*Prefix)
		if !ok {
			t.Errorf("ParseExpr(%q): got %T, want *Prefix", c.src, e)
			continue
		}
		if p.Ev != c.want {
			t.Errorf("ParseExpr(%q): event %+v, want %+v", c.src, p.Ev, c.want)
		}
	}
}

func TestParseServicePrimitiveNamedSOrR(t *testing.T) {
	// "s2" and "r1" without parentheses are service primitives named "s"/"r".
	e := MustParseExpr("s2; r1; exit")
	p := e.(*Prefix)
	if p.Ev != ServiceEvent("s", 2) {
		t.Errorf("got %+v", p.Ev)
	}
	q := p.Cont.(*Prefix)
	if q.Ev != ServiceEvent("r", 1) {
		t.Errorf("got %+v", q.Ev)
	}
}

func TestParsePrecedence(t *testing.T) {
	// ">>" binds loosest, then "[>", parallel, "[]", prefix.
	e := MustParseExpr("a1; exit [] b2; exit ||| c3; exit [> d1; exit >> e2; exit")
	enb, ok := e.(*Enable)
	if !ok {
		t.Fatalf("top is %T, want *Enable", e)
	}
	dis, ok := enb.L.(*Disable)
	if !ok {
		t.Fatalf("enable left is %T, want *Disable", enb.L)
	}
	par, ok := dis.L.(*Parallel)
	if !ok {
		t.Fatalf("disable left is %T, want *Parallel", dis.L)
	}
	if _, ok := par.L.(*Choice); !ok {
		t.Fatalf("parallel left is %T, want *Choice", par.L)
	}
}

func TestParseRightAssociativity(t *testing.T) {
	e := MustParseExpr("a1; exit [] b1; exit [] c1; exit")
	ch := e.(*Choice)
	if _, ok := ch.L.(*Prefix); !ok {
		t.Errorf("left of [] is %T, want *Prefix (right-assoc)", ch.L)
	}
	if _, ok := ch.R.(*Choice); !ok {
		t.Errorf("right of [] is %T, want *Choice (right-assoc)", ch.R)
	}

	e = MustParseExpr("a1; exit >> b1; exit >> c1; exit")
	en := e.(*Enable)
	if _, ok := en.R.(*Enable); !ok {
		t.Errorf("right of >> is %T, want *Enable", en.R)
	}
}

func TestParseGateSet(t *testing.T) {
	e := MustParseExpr("a1; exit |[a1,b2]| b2; exit")
	par := e.(*Parallel)
	if par.Kind != ParGates {
		t.Fatalf("kind = %v", par.Kind)
	}
	if !sameStrings(par.Sync, []string{"a1", "b2"}) {
		t.Fatalf("sync = %v", par.Sync)
	}
	if !par.SyncsOn(ServiceEvent("a", 1)) || par.SyncsOn(ServiceEvent("c", 3)) {
		t.Error("SyncsOn wrong")
	}
}

func TestParseFullAndInterleave(t *testing.T) {
	full := MustParseExpr("a1; exit || b2; exit").(*Parallel)
	if full.Kind != ParFull {
		t.Errorf("|| kind = %v", full.Kind)
	}
	if !full.SyncsOn(ServiceEvent("zz", 9)) {
		t.Error("|| must sync on every observable event")
	}
	if full.SyncsOn(InternalEvent()) {
		t.Error("|| must not sync on i")
	}
	ill := MustParseExpr("a1; exit ||| b2; exit").(*Parallel)
	if ill.Kind != ParInterleave || ill.SyncsOn(ServiceEvent("a", 1)) {
		t.Errorf("||| wrong: %+v", ill)
	}
}

func TestParseSpecExample2(t *testing.T) {
	// Example 2 of the paper (places made concrete: i=1, k=2).
	src := `
SPEC A WHERE
  PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END
ENDSPEC`
	sp, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Root.Procs) != 1 || sp.Root.Procs[0].Name != "A" {
		t.Fatalf("procs: %+v", sp.Root.Procs)
	}
	if _, ok := sp.Root.Expr.(*ProcRef); !ok {
		t.Fatalf("root expr is %T", sp.Root.Expr)
	}
	body := sp.Root.Procs[0].Body.Expr
	ch, ok := body.(*Choice)
	if !ok {
		t.Fatalf("body is %T", body)
	}
	if _, ok := ch.L.(*Enable); !ok {
		t.Fatalf("left alternative is %T, want *Enable", ch.L)
	}
}

func TestParseSpecExample3(t *testing.T) {
	// Example 3: the file-copy service.
	src := `
SPEC S [> interrupt3; exit WHERE
  PROC S = (read1; push2; S >> pop2; write3; exit)
        [] (eof1; make3; exit)
  END
ENDSPEC`
	sp, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sp.Root.Expr.(*Disable); !ok {
		t.Fatalf("root is %T, want *Disable", sp.Root.Expr)
	}
	places := Places(sp)
	if len(places) != 3 || places[0] != 1 || places[2] != 3 {
		t.Fatalf("places = %v", places)
	}
	evs := ServiceEvents(sp)
	var names []string
	for _, ev := range evs {
		names = append(names, ev.String())
	}
	want := "read1 eof1 push2 pop2 interrupt3 write3 make3"
	for _, w := range strings.Fields(want) {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing service event %s in %v", w, names)
		}
	}
}

func TestParseNestedWhere(t *testing.T) {
	src := `
SPEC A WHERE
  PROC A = B WHERE
    PROC B = a1; exit END
  END
ENDSPEC`
	sp, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Resolve(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Defs) != 2 {
		t.Fatalf("defs = %d", len(res.Defs))
	}
}

func TestParseHide(t *testing.T) {
	e := MustParseExpr("hide a1,b2 in (a1; b2; exit)")
	h, ok := e.(*Hide)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if !h.Hidden(ServiceEvent("a", 1)) || h.Hidden(ServiceEvent("c", 3)) {
		t.Error("Hidden wrong")
	}
}

func TestHideWildcards(t *testing.T) {
	h := HideIn([]string{"s*", "r*"}, X())
	if !h.Hidden(SendEvent(2, 1)) || !h.Hidden(RecvEvent(1, 1)) {
		t.Error("wildcards must hide messages")
	}
	if h.Hidden(ServiceEvent("s", 2)) {
		t.Error("wildcard must not hide service primitive named s")
	}
	m := HideIn([]string{"msg*"}, X())
	if !m.Hidden(SendEvent(1, 1)) || !m.Hidden(RecvEvent(1, 1)) || m.Hidden(ServiceEvent("a", 1)) {
		t.Error("msg* wildcard wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                            // nothing
		"SPEC ENDSPEC",                // no expression
		"SPEC a1; exit",               // missing ENDSPEC
		"SPEC a; exit ENDSPEC",        // no place digits
		"SPEC a1 exit ENDSPEC",        // missing semicolon
		"SPEC a1; ENDSPEC",            // missing continuation
		"SPEC (a1; exit ENDSPEC",      // unbalanced paren
		"SPEC a1; exit WHERE ENDSPEC", // empty WHERE
		"SPEC A WHERE PROC A a1; exit END ENDSPEC",        // missing '='
		"SPEC A WHERE PROC A = a1; exit ENDSPEC",          // missing END
		"SPEC a1; exit [] ENDSPEC",                        // missing right alternative
		"SPEC s2(; exit ENDSPEC",                          // malformed message
		"SPEC s2(1,2); exit ENDSPEC",                      // bad payload shape
		"SPEC a1; exit ENDSPEC trailing",                  // trailing input
		"SPEC hide in (a1; exit) ENDSPEC ",                // empty hide list is ok? gates may be empty -> accept; use bad gate instead
		"SPEC hide Zz in (a1; exit) ENDSPEC",              // bad gate identifier
		"SPEC a1; exit |[a]| b2; exit ENDSPEC",            // gate without place digits
		"SPEC A WHERE PROC A = a1; exit END PROC ENDSPEC", // dangling PROC
	}
	for _, src := range cases {
		if src == "SPEC hide in (a1; exit) ENDSPEC " {
			continue // empty gate list is tolerated by the grammar
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	undef := MustParse("SPEC A ENDSPEC")
	if _, err := Resolve(undef); err == nil {
		t.Error("undefined process must fail resolution")
	}
	dup := `
SPEC A WHERE
  PROC A = a1; exit END
  PROC A = b2; exit END
ENDSPEC`
	spDup := MustParse(dup)
	if _, err := Resolve(spDup); err == nil {
		t.Error("duplicate process must fail resolution")
	}
	// Inner definitions are not visible outside their block.
	scopeErr := `
SPEC B WHERE
  PROC A = B WHERE PROC B = a1; exit END END
ENDSPEC`
	spScope := MustParse(scopeErr)
	if _, err := Resolve(spScope); err == nil {
		t.Error("reference to inner-scoped process from outer block must fail")
	}
}

func TestResolveScoping(t *testing.T) {
	src := `
SPEC A WHERE
  PROC A = B WHERE
    PROC B = A END
  END
ENDSPEC`
	sp := MustParse(src)
	res, err := Resolve(sp)
	if err != nil {
		t.Fatal(err)
	}
	// The inner reference to A must bind to the outer definition.
	var innerRef *ProcRef
	WalkSpec(sp, func(e Expr) {
		if r, ok := e.(*ProcRef); ok && r.Name == "A" {
			innerRef = r
		}
	})
	if innerRef == nil || res.Def(innerRef) == nil || res.Def(innerRef).Name != "A" {
		t.Fatal("inner A not resolved to outer definition")
	}
}

func TestNumberPreorder(t *testing.T) {
	sp := MustParse(`SPEC a1; b2; exit WHERE PROC P = c3; exit END ENDSPEC`)
	total := Number(sp)
	// Root expr: Prefix(a1) -> Prefix(b2) -> Exit = 3 nodes,
	// then PROC P (1), then its body Prefix(c3) -> Exit = 2 nodes.
	if total != 6 {
		t.Fatalf("total numbered nodes = %d, want 6", total)
	}
	root := sp.Root.Expr.(*Prefix)
	if root.ID() != 1 {
		t.Errorf("root id = %d", root.ID())
	}
	if root.Cont.ID() != 2 {
		t.Errorf("second id = %d", root.Cont.ID())
	}
	if sp.Root.Procs[0].ID != 4 {
		t.Errorf("proc def id = %d", sp.Root.Procs[0].ID)
	}
	if sp.Root.Procs[0].Body.Expr.ID() != 5 {
		t.Errorf("proc body id = %d", sp.Root.Procs[0].Body.Expr.ID())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic on bad input")
		}
	}()
	MustParse("not a spec")
}

func TestMustParseExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseExpr must panic on bad input")
		}
	}()
	MustParseExpr("[]")
}
