package lotos

// Walk calls fn for e and then for every descendant expression of e in
// preorder. Process bodies are NOT entered (a ProcRef is a leaf); use
// WalkSpec to traverse a whole specification including definitions.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Prefix:
		Walk(x.Cont, fn)
	case *Choice:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Parallel:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Enable:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Disable:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Hide:
		Walk(x.Body, fn)
	}
}

// WalkSpec calls fn for every expression node of the specification in
// preorder: first the root block's expression, then, for each process
// definition (recursively through nested WHERE blocks), the definition's
// body expression.
func WalkSpec(s *Spec, fn func(Expr)) {
	walkBlock(s.Root, fn)
}

func walkBlock(blk *DefBlock, fn func(Expr)) {
	Walk(blk.Expr, fn)
	for _, pd := range blk.Procs {
		walkBlock(pd.Body, fn)
	}
}

// Children returns the direct sub-expressions of e in syntactic order.
func Children(e Expr) []Expr {
	switch x := e.(type) {
	case *Prefix:
		return []Expr{x.Cont}
	case *Choice:
		return []Expr{x.L, x.R}
	case *Parallel:
		return []Expr{x.L, x.R}
	case *Enable:
		return []Expr{x.L, x.R}
	case *Disable:
		return []Expr{x.L, x.R}
	case *Hide:
		return []Expr{x.Body}
	default:
		return nil
	}
}

// Clone returns a deep copy of e. Node numbers are preserved: a copy of a
// node denotes the same syntactic site, which is what occurrence numbering
// (Section 3.5) requires of instantiated process bodies.
func Clone(e Expr) Expr {
	switch x := e.(type) {
	case *Stop:
		c := &Stop{}
		c.id = x.id
		return c
	case *Exit:
		c := &Exit{}
		c.id = x.id
		return c
	case *Empty:
		c := &Empty{}
		c.id = x.id
		return c
	case *ProcRef:
		c := &ProcRef{Name: x.Name, Occ: x.Occ, Def: x.Def}
		c.id = x.id
		return c
	case *Prefix:
		c := &Prefix{Ev: x.Ev, Cont: Clone(x.Cont)}
		c.id = x.id
		return c
	case *Choice:
		c := &Choice{L: Clone(x.L), R: Clone(x.R)}
		c.id = x.id
		return c
	case *Parallel:
		sync := append([]string(nil), x.Sync...)
		c := &Parallel{L: Clone(x.L), R: Clone(x.R), Kind: x.Kind, Sync: sync}
		c.id = x.id
		return c
	case *Enable:
		c := &Enable{L: Clone(x.L), R: Clone(x.R)}
		c.id = x.id
		return c
	case *Disable:
		c := &Disable{L: Clone(x.L), R: Clone(x.R)}
		c.id = x.id
		return c
	case *Hide:
		c := &Hide{Gates: append([]string(nil), x.Gates...), Body: Clone(x.Body)}
		c.id = x.id
		return c
	}
	return nil
}

// CloneSpec returns a deep copy of a specification.
func CloneSpec(s *Spec) *Spec {
	return &Spec{Root: cloneBlock(s.Root)}
}

func cloneBlock(blk *DefBlock) *DefBlock {
	out := &DefBlock{Expr: Clone(blk.Expr)}
	for _, pd := range blk.Procs {
		out.Procs = append(out.Procs, &ProcDef{ID: pd.ID, Name: pd.Name, Body: cloneBlock(pd.Body)})
	}
	return out
}

// Equal reports structural equality of two expressions, ignoring node
// numbers and process-reference occurrence stamps.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case *Stop:
		_, ok := b.(*Stop)
		return ok
	case *Exit:
		_, ok := b.(*Exit)
		return ok
	case *Empty:
		_, ok := b.(*Empty)
		return ok
	case *ProcRef:
		y, ok := b.(*ProcRef)
		return ok && x.Name == y.Name
	case *Prefix:
		y, ok := b.(*Prefix)
		return ok && x.Ev == y.Ev && Equal(x.Cont, y.Cont)
	case *Choice:
		y, ok := b.(*Choice)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Parallel:
		y, ok := b.(*Parallel)
		return ok && x.Kind == y.Kind && sameStrings(x.Sync, y.Sync) &&
			Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Enable:
		y, ok := b.(*Enable)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Disable:
		y, ok := b.(*Disable)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Hide:
		y, ok := b.(*Hide)
		return ok && sameStrings(x.Gates, y.Gates) && Equal(x.Body, y.Body)
	}
	return false
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EqualSpec reports structural equality of two specifications (same process
// names in the same order, structurally equal bodies).
func EqualSpec(a, b *Spec) bool {
	return equalBlock(a.Root, b.Root)
}

func equalBlock(a, b *DefBlock) bool {
	if !Equal(a.Expr, b.Expr) || len(a.Procs) != len(b.Procs) {
		return false
	}
	for i := range a.Procs {
		if a.Procs[i].Name != b.Procs[i].Name || !equalBlock(a.Procs[i].Body, b.Procs[i].Body) {
			return false
		}
	}
	return true
}

// IsomorphicModuloMsgIDs reports whether two expressions are structurally
// equal up to a consistent renaming of message identifications: whenever a
// send/receive in a corresponds to one in b, their (Node, Occ, Tag) triples
// must be related by a bijection, and kinds/peers must match exactly.
// It is used to compare derived protocol entities against the listings in
// the paper, whose node numbering differs from ours.
func IsomorphicModuloMsgIDs(a, b Expr) bool {
	fwd := map[string]string{}
	rev := map[string]string{}
	return isoExpr(a, b, fwd, rev)
}

func isoExpr(a, b Expr, fwd, rev map[string]string) bool {
	switch x := a.(type) {
	case *Stop:
		_, ok := b.(*Stop)
		return ok
	case *Exit, *Empty:
		// Empty is a neutral successful termination: it matches exit.
		switch b.(type) {
		case *Empty, *Exit:
			return true
		}
		return false
	case *ProcRef:
		y, ok := b.(*ProcRef)
		return ok && x.Name == y.Name
	case *Prefix:
		y, ok := b.(*Prefix)
		return ok && isoEvent(x.Ev, y.Ev, fwd, rev) && isoExpr(x.Cont, y.Cont, fwd, rev)
	case *Choice:
		y, ok := b.(*Choice)
		return ok && isoExpr(x.L, y.L, fwd, rev) && isoExpr(x.R, y.R, fwd, rev)
	case *Parallel:
		y, ok := b.(*Parallel)
		return ok && x.Kind == y.Kind && sameStrings(x.Sync, y.Sync) &&
			isoExpr(x.L, y.L, fwd, rev) && isoExpr(x.R, y.R, fwd, rev)
	case *Enable:
		y, ok := b.(*Enable)
		return ok && isoExpr(x.L, y.L, fwd, rev) && isoExpr(x.R, y.R, fwd, rev)
	case *Disable:
		y, ok := b.(*Disable)
		return ok && isoExpr(x.L, y.L, fwd, rev) && isoExpr(x.R, y.R, fwd, rev)
	case *Hide:
		y, ok := b.(*Hide)
		return ok && sameStrings(x.Gates, y.Gates) && isoExpr(x.Body, y.Body, fwd, rev)
	}
	return false
}

// IsomorphicSpecsModuloMsgIDs extends IsomorphicModuloMsgIDs to whole
// specifications: block structure and process names must match exactly, and
// one message-identification bijection must hold consistently across the
// root expression and every process body.
func IsomorphicSpecsModuloMsgIDs(a, b *Spec) bool {
	fwd := map[string]string{}
	rev := map[string]string{}
	return isoBlock(a.Root, b.Root, fwd, rev)
}

func isoBlock(a, b *DefBlock, fwd, rev map[string]string) bool {
	if !isoExpr(a.Expr, b.Expr, fwd, rev) || len(a.Procs) != len(b.Procs) {
		return false
	}
	for i := range a.Procs {
		if a.Procs[i].Name != b.Procs[i].Name {
			return false
		}
		if !isoBlock(a.Procs[i].Body, b.Procs[i].Body, fwd, rev) {
			return false
		}
	}
	return true
}

func isoEvent(a, b Event, fwd, rev map[string]string) bool {
	if a.Kind != b.Kind {
		// Also allow exit-vs-empty asymmetry handled in isoExpr; kinds of
		// events must match exactly.
		return false
	}
	switch a.Kind {
	case EvService:
		return a.Name == b.Name && a.Place == b.Place
	case EvInternal:
		return true
	default:
		if a.Place != b.Place {
			return false
		}
		ka, kb := a.msgKey(), b.msgKey()
		if prev, ok := fwd[ka]; ok {
			return prev == kb
		}
		if prev, ok := rev[kb]; ok {
			return prev == ka
		}
		fwd[ka] = kb
		rev[kb] = ka
		return true
	}
}
