package lotos

import (
	"os"
	"path/filepath"
	"testing"
)

// seedCorpus feeds every checked-in service specification plus a few
// hand-picked grammar corners to the fuzzer.
func seedCorpus(f *testing.F) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.spec"))
	if err != nil {
		f.Fatal(err)
	}
	if len(matches) == 0 {
		f.Fatal("no seed specs found under specs/")
	}
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	for _, s := range []string{
		"SPEC a1; b2; exit ENDSPEC",
		"SPEC hide g in (a1; g; exit ||| g; b2; exit) ENDSPEC",
		"SPEC P WHERE PROC P = a1; P END ENDSPEC",
		"SPEC (a1; exit [] b1; stop) |[x]| x; exit ENDSPEC",
		"SPEC a1; exit >> b2; exit [> c3; stop ENDSPEC",
		"SPEC",
		"",
	} {
		f.Add(s)
	}
}

// FuzzParse checks the printer/parser round trip on every grammatical
// input the fuzzer discovers: print(parse(src)) must re-parse to a
// structurally equal specification, and printing must be idempotent.
// Ungrammatical inputs must produce an error, never a panic.
func FuzzParse(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		sp, err := Parse(src)
		if err != nil {
			return // rejected input: error (not panic) is the contract
		}
		printed := sp.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
		if !EqualSpec(sp, back) {
			t.Fatalf("round trip is not structure-preserving\ninput: %q\nprinted:\n%s", src, printed)
		}
		if again := back.String(); again != printed {
			t.Fatalf("printing is not idempotent\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
	})
}
