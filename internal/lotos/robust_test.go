package lotos

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds the parser random byte soup and random
// token-shaped soup: it must return an error or a tree, never panic.
func TestParseNeverPanics(t *testing.T) {
	pieces := []string{
		"SPEC", "ENDSPEC", "PROC", "END", "WHERE", "exit", "stop", "i", ";",
		"[]", "[>", ">>", "|||", "||", "|[", "]|", "(", ")", ",", "=",
		"a1", "b2", "read17", "A", "B", "s2(7)", "r1(x)", "#0/2", "hide", "in",
		"--comment\n", "\n", " ",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		n := r.Intn(40)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
			b.WriteByte(' ')
		}
		_, _ = Parse(b.String()) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanicsOnRawBytes(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Parse(string(data)) // must not panic
		_, _ = ParseExpr(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDeeplyNestedParens(t *testing.T) {
	depth := 200
	src := strings.Repeat("(", depth) + "a1; exit" + strings.Repeat(")", depth)
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	if Format(e) != "a1; exit" {
		t.Errorf("got %s", Format(e))
	}
}

func TestLongSequenceChain(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 2000; i++ {
		b.WriteString("a1; ")
	}
	b.WriteString("exit")
	e, err := ParseExpr(b.String())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	Walk(e, func(Expr) { count++ })
	if count != 2001 {
		t.Errorf("nodes = %d", count)
	}
}

func TestErrorPositionsAreMeaningful(t *testing.T) {
	_, err := Parse("SPEC a1; exit\n[] \n ENDSPEC")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line < 2 {
		t.Errorf("error line = %d, want >= 2", se.Line)
	}
}
