package lotos

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds of the specification language.
type tokKind uint8

const (
	tEOF          tokKind = iota
	tIdent                // lowercase-initial identifier (event identifiers, "i", "exit", ...)
	tProcIdent            // uppercase-initial identifier (process identifiers)
	tNumber               // decimal integer literal
	tOcc                  // occurrence literal "#0/5/7"
	tSpec                 // SPEC
	tEndSpec              // ENDSPEC
	tProc                 // PROC
	tEnd                  // END
	tWhere                // WHERE
	tExit                 // exit
	tStop                 // stop
	tHide                 // hide
	tIn                   // in
	tSemi                 // ;
	tComma                // ,
	tLParen               // (
	tRParen               // )
	tEquals               // =
	tEnableOp             // >>
	tDisableOp            // [>
	tChoiceOp             // []
	tInterleaveOp         // |||
	tFullParOp            // ||
	tLGate                // |[
	tRGate                // ]|
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of input"
	case tIdent:
		return "identifier"
	case tProcIdent:
		return "process identifier"
	case tNumber:
		return "number"
	case tOcc:
		return "occurrence literal"
	case tSpec:
		return "SPEC"
	case tEndSpec:
		return "ENDSPEC"
	case tProc:
		return "PROC"
	case tEnd:
		return "END"
	case tWhere:
		return "WHERE"
	case tExit:
		return "exit"
	case tStop:
		return "stop"
	case tHide:
		return "hide"
	case tIn:
		return "in"
	case tSemi:
		return "';'"
	case tComma:
		return "','"
	case tLParen:
		return "'('"
	case tRParen:
		return "')'"
	case tEquals:
		return "'='"
	case tEnableOp:
		return "'>>'"
	case tDisableOp:
		return "'[>'"
	case tChoiceOp:
		return "'[]'"
	case tInterleaveOp:
		return "'|||'"
	case tFullParOp:
		return "'||'"
	case tLGate:
		return "'|['"
	case tRGate:
		return "']|'"
	}
	return fmt.Sprintf("tokKind(%d)", uint8(k))
}

// token is a lexical token with its source position (1-based line/column).
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// SyntaxError describes a lexical or syntactic error with source position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// lexer turns specification source text into tokens. Comments run from
// "--" to end of line (LOTOS convention).
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) errf(line, col int, format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekByteAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '-' && lx.peekByteAt(1) == '-':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

var keywords = map[string]tokKind{
	"SPEC":    tSpec,
	"ENDSPEC": tEndSpec,
	"PROC":    tProc,
	"END":     tEnd,
	"WHERE":   tWhere,
	"exit":    tExit,
	"stop":    tStop,
	"hide":    tHide,
	"in":      tIn,
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tEOF, line: line, col: col}, nil
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if k, ok := keywords[text]; ok {
			return token{kind: k, text: text, line: line, col: col}, nil
		}
		if unicode.IsUpper(rune(text[0])) {
			return token{kind: tProcIdent, text: text, line: line, col: col}, nil
		}
		return token{kind: tIdent, text: text, line: line, col: col}, nil

	case c >= '0' && c <= '9':
		start := lx.pos
		for lx.pos < len(lx.src) && lx.peekByte() >= '0' && lx.peekByte() <= '9' {
			lx.advance()
		}
		return token{kind: tNumber, text: lx.src[start:lx.pos], line: line, col: col}, nil

	case c == '#':
		lx.advance()
		start := lx.pos
		for lx.pos < len(lx.src) {
			b := lx.peekByte()
			if (b >= '0' && b <= '9') || b == '/' {
				lx.advance()
				continue
			}
			break
		}
		text := lx.src[start:lx.pos]
		if text == "" || strings.HasSuffix(text, "/") {
			return token{}, lx.errf(line, col, "malformed occurrence literal after '#'")
		}
		return token{kind: tOcc, text: text, line: line, col: col}, nil

	case c == ';':
		lx.advance()
		return token{kind: tSemi, line: line, col: col}, nil
	case c == ',':
		lx.advance()
		return token{kind: tComma, line: line, col: col}, nil
	case c == '(':
		lx.advance()
		return token{kind: tLParen, line: line, col: col}, nil
	case c == ')':
		lx.advance()
		return token{kind: tRParen, line: line, col: col}, nil
	case c == '=':
		lx.advance()
		return token{kind: tEquals, line: line, col: col}, nil

	case c == '>':
		if lx.peekByteAt(1) == '>' {
			lx.advance()
			lx.advance()
			return token{kind: tEnableOp, line: line, col: col}, nil
		}
		return token{}, lx.errf(line, col, "unexpected '>' (did you mean '>>'?)")

	case c == '[':
		switch lx.peekByteAt(1) {
		case '>':
			lx.advance()
			lx.advance()
			return token{kind: tDisableOp, line: line, col: col}, nil
		case ']':
			lx.advance()
			lx.advance()
			return token{kind: tChoiceOp, line: line, col: col}, nil
		}
		return token{}, lx.errf(line, col, "unexpected '[' (expected '[>' or '[]')")

	case c == ']':
		if lx.peekByteAt(1) == '|' {
			lx.advance()
			lx.advance()
			return token{kind: tRGate, line: line, col: col}, nil
		}
		return token{}, lx.errf(line, col, "unexpected ']' (expected ']|')")

	case c == '|':
		if lx.peekByteAt(1) == '|' && lx.peekByteAt(2) == '|' {
			lx.advance()
			lx.advance()
			lx.advance()
			return token{kind: tInterleaveOp, line: line, col: col}, nil
		}
		if lx.peekByteAt(1) == '|' {
			lx.advance()
			lx.advance()
			return token{kind: tFullParOp, line: line, col: col}, nil
		}
		if lx.peekByteAt(1) == '[' {
			lx.advance()
			lx.advance()
			return token{kind: tLGate, line: line, col: col}, nil
		}
		return token{}, lx.errf(line, col, "unexpected '|' (expected '|||', '||' or '|[')")
	}
	return token{}, lx.errf(line, col, "unexpected character %q", string(rune(c)))
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tEOF {
			return out, nil
		}
	}
}
