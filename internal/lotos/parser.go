package lotos

import (
	"fmt"
	"strconv"
)

// Parse parses a complete specification "SPEC Def_block ENDSPEC".
//
// The accepted grammar is that of Table 1 of the paper, liberalized in ways
// that strictly contain the paper's language:
//
//   - "stop", bare "exit" and the internal action "i" are accepted wherever a
//     sequence may start (needed to express derived entities and the
//     algebraic laws of Annex A);
//   - send/receive interactions "s2(7)", "r1(x)", "s3(s,7)" and concrete
//     occurrences "s3(#0/5,7)" are accepted (needed for protocol entity
//     specifications);
//   - "hide g1,g2,... in B" is accepted (needed to state the Section-5
//     correctness relation; it is rejected by the service validator).
//
// Comments run from "--" to end of line.
func Parse(src string) (*Spec, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sp, err := p.parseSpec()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, p.errHere("trailing input after ENDSPEC")
	}
	return sp, nil
}

// ParseExpr parses a bare behaviour expression (no SPEC/ENDSPEC wrapper and
// no WHERE block). It is convenient for tests and for embedding expressions.
func ParseExpr(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseE()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, p.errHere("trailing input after expression")
	}
	return e, nil
}

// MustParse is Parse that panics on error; intended for tests and examples
// with literal specifications.
func MustParse(src string) *Spec {
	sp, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return sp
}

// MustParseExpr is ParseExpr that panics on error.
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) peekAt(off int) token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+off]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, p.errAt(t, "expected %s, found %s", k, describe(t))
	}
	return p.advance(), nil
}

func describe(t token) string {
	if t.text != "" {
		return t.kind.String() + " " + strconv.Quote(t.text)
	}
	return t.kind.String()
}

func (p *parser) errAt(t token, format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) errHere(format string, args ...any) *SyntaxError {
	return p.errAt(p.peek(), format, args...)
}

// --- grammar productions ----------------------------------------------------

// Spec := SPEC DefBlock ENDSPEC
func (p *parser) parseSpec() (*Spec, error) {
	if _, err := p.expect(tSpec); err != nil {
		return nil, err
	}
	blk, err := p.parseDefBlock()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tEndSpec); err != nil {
		return nil, err
	}
	return &Spec{Root: blk}, nil
}

// DefBlock := e [WHERE ProcDef+]
func (p *parser) parseDefBlock() (*DefBlock, error) {
	e, err := p.parseE()
	if err != nil {
		return nil, err
	}
	blk := &DefBlock{Expr: e}
	if p.peek().kind == tWhere {
		p.advance()
		for p.peek().kind == tProc {
			pd, err := p.parseProcDef()
			if err != nil {
				return nil, err
			}
			blk.Procs = append(blk.Procs, pd)
		}
		if len(blk.Procs) == 0 {
			return nil, p.errHere("WHERE must be followed by at least one PROC definition")
		}
	}
	return blk, nil
}

// ProcDef := PROC ProcIdent = DefBlock END
func (p *parser) parseProcDef() (*ProcDef, error) {
	if _, err := p.expect(tProc); err != nil {
		return nil, err
	}
	name, err := p.expect(tProcIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tEquals); err != nil {
		return nil, err
	}
	body, err := p.parseDefBlock()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tEnd); err != nil {
		return nil, err
	}
	return &ProcDef{Name: name.text, Body: body}, nil
}

// e := Dis [>> e]           (rules 7-8; ">>" is right-associative)
func (p *parser) parseE() (Expr, error) {
	l, err := p.parseDis()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tEnableOp {
		p.advance()
		r, err := p.parseE()
		if err != nil {
			return nil, err
		}
		return Enb(l, r), nil
	}
	return l, nil
}

// Dis := Par [[> Dis]       (rules 9-10; "[>" is right-associative, law D1)
func (p *parser) parseDis() (Expr, error) {
	l, err := p.parsePar()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tDisableOp {
		p.advance()
		r, err := p.parseDis()
		if err != nil {
			return nil, err
		}
		return Dis(l, r), nil
	}
	return l, nil
}

// Par := Choice [parop Par] (rules 11-13; right-associative)
func (p *parser) parsePar() (Expr, error) {
	l, err := p.parseChoice()
	if err != nil {
		return nil, err
	}
	switch p.peek().kind {
	case tInterleaveOp:
		p.advance()
		r, err := p.parsePar()
		if err != nil {
			return nil, err
		}
		return Ill(l, r), nil
	case tFullParOp:
		p.advance()
		r, err := p.parsePar()
		if err != nil {
			return nil, err
		}
		return Full(l, r), nil
	case tLGate:
		p.advance()
		gates, err := p.parseGateList(tRGate)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRGate); err != nil {
			return nil, err
		}
		r, err := p.parsePar()
		if err != nil {
			return nil, err
		}
		if len(gates) == 0 {
			// "|[]|" is written "[]" by the lexer; an explicitly empty gate
			// list cannot be produced, but guard anyway: it equals "|||".
			return Ill(l, r), nil
		}
		return Gates(l, gates, r), nil
	}
	return l, nil
}

// parseGateList parses a comma-separated list of event identifiers ending
// at the given closing token (which is not consumed). The wildcards "s*",
// "r*" are not part of the concrete syntax; gate lists in source text are
// plain event identifiers.
func (p *parser) parseGateList(closer tokKind) ([]string, error) {
	var gates []string
	if p.peek().kind == closer {
		return gates, nil
	}
	for {
		t, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		if _, err := ParseEventID(t.text); err != nil {
			return nil, p.errAt(t, "bad gate %q: %v", t.text, err)
		}
		gates = append(gates, t.text)
		if p.peek().kind != tComma {
			return gates, nil
		}
		p.advance()
	}
}

// Choice := Seq [[] Choice] (rules 14-15; right-associative)
func (p *parser) parseChoice() (Expr, error) {
	l, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tChoiceOp {
		p.advance()
		r, err := p.parseChoice()
		if err != nil {
			return nil, err
		}
		return Ch(l, r), nil
	}
	return l, nil
}

// Seq := exit | stop | ProcIdent | ( e ) | hide gates in Seq | Event ; Seq
func (p *parser) parseSeq() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tExit:
		p.advance()
		return X(), nil
	case tStop:
		p.advance()
		return Halt(), nil
	case tProcIdent:
		p.advance()
		return Call(t.text), nil
	case tLParen:
		p.advance()
		e, err := p.parseE()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tHide:
		p.advance()
		gates, err := p.parseGateList(tIn)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tIn); err != nil {
			return nil, err
		}
		body, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		return HideIn(gates, body), nil
	case tIdent:
		ev, err := p.parseEvent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		cont, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		return Pfx(ev, cont), nil
	}
	return nil, p.errAt(t, "expected a behaviour expression, found %s", describe(t))
}

// parseEvent parses an event occurrence: the internal action "i", a
// send/receive interaction "s2(...)" / "r2(...)", or a service primitive
// identifier with trailing place digits.
func (p *parser) parseEvent() (Event, error) {
	t, err := p.expect(tIdent)
	if err != nil {
		return Event{}, err
	}
	if t.text == "i" {
		return InternalEvent(), nil
	}
	if (msgPrefix(t.text, 's') || msgPrefix(t.text, 'r')) && p.peek().kind == tLParen {
		place, _ := strconv.Atoi(t.text[1:])
		kind := EvSend
		if t.text[0] == 'r' {
			kind = EvRecv
		}
		ev := Event{Kind: kind, Place: place, Node: -1}
		p.advance() // (
		if err := p.parseMsgPayload(&ev); err != nil {
			return Event{}, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return Event{}, err
		}
		return ev, nil
	}
	ev, err := ParseEventID(t.text)
	if err != nil {
		return Event{}, p.errAt(t, "%v", err)
	}
	return ev, nil
}

// msgPrefix reports whether id is the letter c followed only by digits.
func msgPrefix(id string, c byte) bool {
	if len(id) < 2 || id[0] != c {
		return false
	}
	for i := 1; i < len(id); i++ {
		if id[i] < '0' || id[i] > '9' {
			return false
		}
	}
	return true
}

// parseMsgPayload parses the message identification inside "s2( ... )":
//
//	NUMBER            node id, symbolic occurrence        s2(7)
//	IDENT             symbolic tag                        s2(x)
//	s , NUMBER        explicit symbolic occurrence        s2(s,7)
//	#OCC , NUMBER     concrete occurrence                 s2(#0/5,7)
func (p *parser) parseMsgPayload(ev *Event) error {
	switch t := p.peek(); t.kind {
	case tNumber:
		p.advance()
		n, _ := strconv.Atoi(t.text)
		ev.Node = n
		ev.Occ = OccSymbolic
		return nil
	case tOcc:
		p.advance()
		ev.Occ = t.text
		if _, err := p.expect(tComma); err != nil {
			return err
		}
		num, err := p.expect(tNumber)
		if err != nil {
			return err
		}
		ev.Node, _ = strconv.Atoi(num.text)
		return nil
	case tIdent:
		p.advance()
		if t.text == OccSymbolic && p.peek().kind == tComma {
			p.advance()
			num, err := p.expect(tNumber)
			if err != nil {
				return err
			}
			ev.Node, _ = strconv.Atoi(num.text)
			ev.Occ = OccSymbolic
			return nil
		}
		ev.Tag = t.text
		return nil
	default:
		return p.errAt(t, "expected message identification, found %s", describe(t))
	}
}
