// Package lotos implements the specification language of the paper
// "Deriving Protocol Specifications from Service Specifications":
// a Basic-LOTOS dialect (Table 1 of the paper) used both for communication
// service specifications and for the derived protocol entity specifications.
//
// The package provides the abstract syntax tree, a lexer and recursive-descent
// parser for the concrete syntax, a pretty-printer whose output re-parses to
// an equivalent tree, and name-resolution utilities for process definitions.
//
// Two event vocabularies share one representation: service primitives such as
// "read1" (primitive "read" at service access point 1) appear in service
// specifications, while send/receive interactions such as "s2(7)" and
// "r1(s,7)" additionally appear in derived protocol entity specifications.
package lotos

import (
	"fmt"
	"strconv"
	"strings"
)

// EventKind discriminates the kinds of atomic actions of the language.
type EventKind uint8

const (
	// EvService is a service primitive interaction "name_place", e.g. "read1".
	EvService EventKind = iota
	// EvSend is a send_a_message interaction "s_j(s,N)": send message (s,N)
	// to the entity at place j.
	EvSend
	// EvRecv is a receive_a_message interaction "r_j(s,N)": receive message
	// (s,N) from the entity at place j.
	EvRecv
	// EvInternal is the unobservable internal action "i".
	EvInternal
)

// String returns a short human-readable kind name.
func (k EventKind) String() string {
	switch k {
	case EvService:
		return "service"
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvInternal:
		return "internal"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// OccSymbolic is the symbolic process-occurrence parameter "s" used in the
// statically derived protocol texts (Section 3.5 of the paper). It stands for
// the occurrence number of the enclosing process instance and is replaced by
// a concrete occurrence path when the entity expression is unfolded.
const OccSymbolic = "s"

// OccRoot is the occurrence number of the top-level (implicit) process
// instance. The paper uses the default occurrence number "0" when the
// specification contains no explicitly defined process.
const OccRoot = "0"

// Event is an atomic action of the language.
//
// For EvService, Name and Place identify the primitive and its service
// access point. For EvSend/EvRecv, Place identifies the peer entity and the
// message is identified either by Node (the syntax-tree node number N that
// generated the synchronization, Section 4.1) together with Occ (the process
// occurrence number, Section 3.5), or — for hand-written specifications in
// the style of the paper's running examples — by a symbolic Tag such as "x".
type Event struct {
	Kind  EventKind
	Name  string // service primitive identifier (EvService only)
	Place int    // SAP of a service primitive; peer place of a send/receive
	Node  int    // message identification N(x); negative when Tag is used
	Tag   string // symbolic message tag (alternative to Node), e.g. "x"
	Occ   string // occurrence number: OccSymbolic, a concrete path, or ""
}

// ServiceEvent constructs a service primitive event such as "read1".
func ServiceEvent(name string, place int) Event {
	return Event{Kind: EvService, Name: name, Place: place}
}

// SendEvent constructs a send_a_message event s_to(s,node) with the symbolic
// occurrence parameter.
func SendEvent(to, node int) Event {
	return Event{Kind: EvSend, Place: to, Node: node, Occ: OccSymbolic}
}

// RecvEvent constructs a receive_a_message event r_from(s,node) with the
// symbolic occurrence parameter.
func RecvEvent(from, node int) Event {
	return Event{Kind: EvRecv, Place: from, Node: node, Occ: OccSymbolic}
}

// InternalEvent constructs the internal action "i".
func InternalEvent() Event { return Event{Kind: EvInternal} }

// IsMessage reports whether the event is a send or receive interaction.
func (e Event) IsMessage() bool { return e.Kind == EvSend || e.Kind == EvRecv }

// WithOcc returns a copy of the event with its occurrence parameter replaced.
// Events that carry no occurrence (service primitives, internal actions, and
// tagged messages) are returned unchanged.
func (e Event) WithOcc(occ string) Event {
	if !e.IsMessage() || e.Tag != "" {
		return e
	}
	e.Occ = occ
	return e
}

// msgPayload renders the parenthesized message identification of a send or
// receive event, mirroring the paper's notations s2(x), s2(7) and s2(s,7).
func (e Event) msgPayload() string {
	if e.Tag != "" {
		return e.Tag
	}
	switch e.Occ {
	case "", OccSymbolic:
		return strconv.Itoa(e.Node)
	default:
		return "#" + e.Occ + "," + strconv.Itoa(e.Node)
	}
}

// String renders the event in the concrete syntax accepted by the parser.
func (e Event) String() string {
	switch e.Kind {
	case EvInternal:
		return "i"
	case EvService:
		return e.Name + strconv.Itoa(e.Place)
	case EvSend:
		return "s" + strconv.Itoa(e.Place) + "(" + e.msgPayload() + ")"
	case EvRecv:
		return "r" + strconv.Itoa(e.Place) + "(" + e.msgPayload() + ")"
	}
	return "?"
}

// RawID returns the bare event identifier as it appears in synchronization
// gate sets of the "|[event_subset]|" operator: the name and place of a
// service primitive, e.g. "a2". Message and internal events have no raw
// identifier and return "".
func (e Event) RawID() string {
	if e.Kind != EvService {
		return ""
	}
	return e.Name + strconv.Itoa(e.Place)
}

// Gate returns a canonical key identifying the interaction "gate" of the
// event for synchronization matching and for labelled-transition-system
// labels. Two events synchronize under full synchronization exactly when
// their gates are equal. The internal action has no gate.
func (e Event) Gate() string {
	switch e.Kind {
	case EvService:
		return e.Name + "@" + strconv.Itoa(e.Place)
	case EvSend:
		return "s@" + strconv.Itoa(e.Place) + ":" + e.msgKey()
	case EvRecv:
		return "r@" + strconv.Itoa(e.Place) + ":" + e.msgKey()
	}
	return ""
}

func (e Event) msgKey() string {
	if e.Tag != "" {
		return "t" + e.Tag
	}
	return strconv.Itoa(e.Node) + "#" + e.Occ
}

// SameMessage reports whether two message events denote the same message
// content, ignoring direction and peer (used when matching a send s_j^i(m)
// with the corresponding receive r_i^j(m) across entities).
func (e Event) SameMessage(o Event) bool {
	if !e.IsMessage() || !o.IsMessage() {
		return false
	}
	if e.Tag != "" || o.Tag != "" {
		return e.Tag == o.Tag
	}
	return e.Node == o.Node && e.Occ == o.Occ
}

// ParseEventID parses a bare event identifier such as "read1" or "a12" into
// a service event. The trailing run of decimal digits is the place; the
// non-empty prefix before it is the primitive name.
func ParseEventID(id string) (Event, error) {
	cut := len(id)
	for cut > 0 && id[cut-1] >= '0' && id[cut-1] <= '9' {
		cut--
	}
	if cut == len(id) {
		return Event{}, fmt.Errorf("event identifier %q has no trailing place digits", id)
	}
	if cut == 0 {
		return Event{}, fmt.Errorf("event identifier %q has no primitive name", id)
	}
	place, err := strconv.Atoi(id[cut:])
	if err != nil {
		return Event{}, fmt.Errorf("event identifier %q: bad place: %w", id, err)
	}
	return ServiceEvent(id[:cut], place), nil
}

// FormatGateSet renders a gate list for the "|[ ... ]|" operator.
func FormatGateSet(gates []string) string {
	return strings.Join(gates, ",")
}
