package lotos

import (
	"strings"
	"testing"
)

func kinds(toks []token) []tokKind {
	out := make([]tokKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := lexAll("SPEC a1 ; exit [] b2 >> [> ||| || |[ ]| ( ) , = ENDSPEC")
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{
		tSpec, tIdent, tSemi, tExit, tChoiceOp, tIdent, tEnableOp, tDisableOp,
		tInterleaveOp, tFullParOp, tLGate, tRGate, tLParen, tRParen, tComma,
		tEquals, tEndSpec, tEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count: got %d want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestLexKeywordsVsIdentifiers(t *testing.T) {
	toks, err := lexAll("PROC Ab = specx WHERE END exit stop hide in")
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{tProc, tProcIdent, tEquals, tIdent, tWhere, tEnd, tExit, tStop, tHide, tIn, tEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lexAll("a1 -- this is a comment >> [] \n ; exit")
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{tIdent, tSemi, tExit, tEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token kinds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestLexOccurrenceLiteral(t *testing.T) {
	toks, err := lexAll("#0/12/7")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tOcc || toks[0].text != "0/12/7" {
		t.Fatalf("got %v %q", toks[0].kind, toks[0].text)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lexAll("a1;\n  b2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].line != 1 || toks[0].col != 1 {
		t.Errorf("first token at %d:%d, want 1:1", toks[0].line, toks[0].col)
	}
	b2 := toks[2]
	if b2.line != 2 || b2.col != 3 {
		t.Errorf("b2 at %d:%d, want 2:3", b2.line, b2.col)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{"a1 } b2", "a >x", "a ]x", "a |x", "#", "#0/"}
	for _, src := range cases {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q): expected error", src)
		} else if se, ok := err.(*SyntaxError); !ok {
			t.Errorf("lexAll(%q): error type %T, want *SyntaxError", src, err)
		} else if se.Error() == "" || !strings.Contains(se.Error(), ":") {
			t.Errorf("lexAll(%q): malformed error message %q", src, se.Error())
		}
	}
}

func TestTokKindStrings(t *testing.T) {
	for k := tEOF; k <= tRGate; k++ {
		if k.String() == "" {
			t.Errorf("empty String() for kind %d", k)
		}
	}
	if got := tokKind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind string = %q", got)
	}
}
