package lotos

// This file defines the abstract syntax tree of the specification language,
// following the grammar of Table 1 (with the disabling extension rules 9.1-9.4)
// of the paper. A single AST serves both levels of abstraction: service
// specifications (events are service primitives) and derived protocol entity
// specifications (events additionally include send/receive interactions).
//
// Every expression node carries a mutable node number, assigned by the
// attribute-evaluation phase in preorder (attribute N of Section 4.1); the
// number identifies synchronization messages generated for that node.

// Expr is a behaviour expression of the specification language.
//
// Concrete types: *Stop, *Exit, *Empty, *Prefix, *Choice, *Parallel,
// *Enable, *Disable, *ProcRef and *Hide.
type Expr interface {
	// ID returns the syntax-tree node number N(x) assigned by numbering
	// (0 before numbering has run).
	ID() int
	// SetID assigns the node number. It is exported so that analysis
	// passes outside this package can number trees they construct.
	SetID(int)
	isExpr()
}

// base carries the node number shared by all expression nodes.
type base struct{ id int }

// ID returns the assigned node number.
func (b *base) ID() int { return b.id }

// SetID assigns the node number.
func (b *base) SetID(i int) { b.id = i }

func (b *base) isExpr() {}

// Stop is inaction: a process that offers nothing. It is not part of the
// paper's service grammar but arises as the terminal state of the
// operational semantics and is accepted by the parser for convenience.
type Stop struct{ base }

// Exit is the successful termination of a sequence of actions (rule 17).
type Exit struct{ base }

// Empty is the derivation-time neutral element "empty" of Section 4.2:
// no actions are generated at this position. It is eliminated by
// Simplify using the rewrite rules "empty;e = e", "empty>>e = e",
// "e>>empty = e" and "e|||empty = e"; any residual Empty is semantically a
// successful termination and prints (and executes) as exit.
type Empty struct{ base }

// Prefix is the action-prefix expression "Event_Id ; Cont" (rules 16/17).
// Rule 17 ("Event_Id ; exit") is represented with Cont = *Exit.
type Prefix struct {
	base
	Ev   Event
	Cont Expr
}

// Choice is the alternative expression "L [] R" (rules 14 and 9.2).
type Choice struct {
	base
	L, R Expr
}

// ParKind distinguishes the three concrete forms of the parallel operator.
type ParKind uint8

const (
	// ParInterleave is "|||": independent parallelism, no synchronization
	// (rule 12).
	ParInterleave ParKind = iota
	// ParGates is "|[event_subset]|": synchronization on the listed gates
	// (rule 11).
	ParGates
	// ParFull is "||": synchronization on all events.
	ParFull
)

// Parallel is the parallel composition "L |[Sync]| R" (rules 11-12). For
// ParGates, Sync lists the raw event identifiers (e.g. "a2") on which the
// two sides must synchronize. Successful termination always synchronizes.
type Parallel struct {
	base
	L, R Expr
	Kind ParKind
	Sync []string
}

// SyncsOn reports whether an event with the given raw identifier (and gate,
// for message events) must be executed in synchronization by both sides.
func (p *Parallel) SyncsOn(ev Event) bool {
	switch p.Kind {
	case ParInterleave:
		return false
	case ParFull:
		return ev.Kind != EvInternal
	default:
		id := ev.RawID()
		if id == "" {
			return false
		}
		for _, g := range p.Sync {
			if g == id {
				return true
			}
		}
		return false
	}
}

// Enable is the sequential composition "L >> R" (rule 7): if L terminates
// successfully, execution of R is enabled.
type Enable struct {
	base
	L, R Expr
}

// Disable is the disabling expression "L [> R" (rule 9.1): R's first action
// may interrupt L at any time before L terminates successfully.
type Disable struct {
	base
	L, R Expr
}

// ProcRef is a process instantiation (rule 18). Occ records the occurrence
// number of the enclosing process instance; it is stamped during unfolding
// so that the new instance created by this call site receives the unique
// occurrence Occ + "/" + N(call site) (Section 3.5). An empty Occ denotes
// the root occurrence OccRoot.
type ProcRef struct {
	base
	Name string
	Occ  string
	// Def is the process definition this reference binds to. It is set by
	// Resolve and preserved by Clone, so instantiated copies of process
	// bodies remain resolved.
	Def *ProcDef
}

// Hide is the LOTOS hiding operator "hide Gates in Body". It is not part of
// the service-specification language (the paper excludes hiding there), but
// it is required to state and check the correctness relation of Section 5:
//
//	S ≈ hide G in ((PE_1 ||| ... ||| PE_n) |[G]| Medium)
//
// Gates are raw event identifiers; message events may also be hidden with
// the wildcard gates "s*" and "r*" (all sends / all receives).
type Hide struct {
	base
	Gates []string
	Body  Expr
}

// Hidden reports whether the event is hidden by this node's gate set.
func (h *Hide) Hidden(ev Event) bool {
	for _, g := range h.Gates {
		switch g {
		case "s*":
			if ev.Kind == EvSend {
				return true
			}
		case "r*":
			if ev.Kind == EvRecv {
				return true
			}
		case "msg*":
			if ev.IsMessage() {
				return true
			}
		default:
			if id := ev.RawID(); id != "" && id == g {
				return true
			}
		}
	}
	return false
}

// ProcDef is a process definition "PROC Name = Body END" (rule 6). Its body
// is a definition block, so process definitions nest lexically.
type ProcDef struct {
	ID   int // node number of the definition (informational)
	Name string
	Body *DefBlock
}

// DefBlock is a definition block "e [WHERE Process_block]" (rules 2-5):
// a behaviour expression together with the process definitions visible
// within it.
type DefBlock struct {
	Expr  Expr
	Procs []*ProcDef
}

// Spec is a complete specification "SPEC Def_block ENDSPEC" (rule 1).
type Spec struct {
	Root *DefBlock
}

// --- construction helpers -------------------------------------------------
//
// The derivation algorithm builds protocol entity trees programmatically;
// these helpers keep that code close to the paper's notation.

// Pfx builds "ev ; cont".
func Pfx(ev Event, cont Expr) *Prefix { return &Prefix{Ev: ev, Cont: cont} }

// Act builds "ev ; exit".
func Act(ev Event) *Prefix { return &Prefix{Ev: ev, Cont: &Exit{}} }

// Ch builds "l [] r".
func Ch(l, r Expr) *Choice { return &Choice{L: l, R: r} }

// Ill builds "l ||| r" (independent parallelism).
func Ill(l, r Expr) *Parallel { return &Parallel{L: l, R: r, Kind: ParInterleave} }

// Full builds "l || r" (fully synchronized parallelism).
func Full(l, r Expr) *Parallel { return &Parallel{L: l, R: r, Kind: ParFull} }

// Gates builds "l |[sync]| r".
func Gates(l Expr, sync []string, r Expr) *Parallel {
	return &Parallel{L: l, R: r, Kind: ParGates, Sync: sync}
}

// Enb builds "l >> r".
func Enb(l, r Expr) *Enable { return &Enable{L: l, R: r} }

// Dis builds "l [> r".
func Dis(l, r Expr) *Disable { return &Disable{L: l, R: r} }

// Call builds a process instantiation.
func Call(name string) *ProcRef { return &ProcRef{Name: name} }

// X builds "exit".
func X() *Exit { return &Exit{} }

// Halt builds "stop".
func Halt() *Stop { return &Stop{} }

// Emp builds the derivation-time "empty".
func Emp() *Empty { return &Empty{} }

// HideIn builds "hide gates in body".
func HideIn(gates []string, body Expr) *Hide { return &Hide{Gates: gates, Body: body} }

// IsEmpty reports whether e is the derivation-time Empty node.
func IsEmpty(e Expr) bool {
	_, ok := e.(*Empty)
	return ok
}

// SeqChain builds "evs[0] ; evs[1] ; ... ; exit".
func SeqChain(evs ...Event) Expr {
	var cont Expr = &Exit{}
	for i := len(evs) - 1; i >= 0; i-- {
		cont = Pfx(evs[i], cont)
	}
	return cont
}

// ChoiceOf folds a non-empty list of expressions into a right-nested choice.
func ChoiceOf(alts ...Expr) Expr {
	if len(alts) == 0 {
		return Emp()
	}
	out := alts[len(alts)-1]
	for i := len(alts) - 2; i >= 0; i-- {
		out = Ch(alts[i], out)
	}
	return out
}

// InterleaveOf folds a non-empty list of expressions into a right-nested
// independent parallel composition; an empty list yields Empty.
func InterleaveOf(parts ...Expr) Expr {
	if len(parts) == 0 {
		return Emp()
	}
	out := parts[len(parts)-1]
	for i := len(parts) - 2; i >= 0; i-- {
		out = Ill(parts[i], out)
	}
	return out
}
