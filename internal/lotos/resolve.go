package lotos

import (
	"fmt"
	"sort"
)

// Resolution is the result of name resolution over a specification: every
// process reference is bound to the lexically visible process definition of
// the same name, following the nesting of WHERE blocks.
type Resolution struct {
	// Refs maps each *ProcRef node to its definition.
	Refs map[*ProcRef]*ProcDef
	// Defs lists all process definitions of the specification in
	// declaration order (outer blocks first).
	Defs []*ProcDef
	// ByName maps a process name to its definitions (several definitions
	// of the same name may exist in disjoint scopes).
	ByName map[string][]*ProcDef
}

// Def returns the definition bound to ref, or nil.
func (r *Resolution) Def(ref *ProcRef) *ProcDef { return r.Refs[ref] }

// Resolve performs name resolution on the specification. It reports an
// error for references to undefined processes and for duplicate process
// names within one WHERE block.
func Resolve(s *Spec) (*Resolution, error) {
	res := &Resolution{
		Refs:   map[*ProcRef]*ProcDef{},
		ByName: map[string][]*ProcDef{},
	}
	if err := resolveBlock(s.Root, nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

// scope is a linked lexical scope of process definitions.
type scope struct {
	parent *scope
	defs   map[string]*ProcDef
}

func (sc *scope) lookup(name string) *ProcDef {
	for s := sc; s != nil; s = s.parent {
		if d, ok := s.defs[name]; ok {
			return d
		}
	}
	return nil
}

func resolveBlock(blk *DefBlock, parent *scope, res *Resolution) error {
	sc := &scope{parent: parent, defs: map[string]*ProcDef{}}
	for _, pd := range blk.Procs {
		if _, dup := sc.defs[pd.Name]; dup {
			return fmt.Errorf("process %s defined twice in the same WHERE block", pd.Name)
		}
		sc.defs[pd.Name] = pd
		res.Defs = append(res.Defs, pd)
		res.ByName[pd.Name] = append(res.ByName[pd.Name], pd)
	}
	var err error
	Walk(blk.Expr, func(e Expr) {
		if err != nil {
			return
		}
		if ref, ok := e.(*ProcRef); ok {
			def := sc.lookup(ref.Name)
			if def == nil {
				err = fmt.Errorf("undefined process %s", ref.Name)
				return
			}
			ref.Def = def
			res.Refs[ref] = def
		}
	})
	if err != nil {
		return err
	}
	// Process bodies see the definitions of their own block (mutual
	// recursion within one WHERE) and of all enclosing blocks.
	for _, pd := range blk.Procs {
		if err := resolveBlock(pd.Body, sc, res); err != nil {
			return fmt.Errorf("in process %s: %w", pd.Name, err)
		}
	}
	return nil
}

// Number assigns preorder node numbers (attribute N of Section 4.1) to every
// expression node of the specification, starting at 1: first the root
// block's expression, then each process definition body in declaration
// order, recursing through nested WHERE blocks. It returns the total number
// of nodes.
func Number(s *Spec) int {
	n := 0
	numberBlock(s.Root, &n)
	return n
}

func numberBlock(blk *DefBlock, n *int) {
	Walk(blk.Expr, func(e Expr) {
		*n++
		e.SetID(*n)
	})
	for _, pd := range blk.Procs {
		*n++
		pd.ID = *n
		numberBlock(pd.Body, n)
	}
}

// Places returns the sorted set of all service access points mentioned by
// service-primitive events of the specification — the attribute ALL of the
// paper when the specification is a service specification.
func Places(s *Spec) []int {
	set := map[int]bool{}
	WalkSpec(s, func(e Expr) {
		if p, ok := e.(*Prefix); ok && p.Ev.Kind == EvService {
			set[p.Ev.Place] = true
		}
	})
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// ServiceEvents returns all distinct service-primitive events of the
// specification, sorted by (place, name).
func ServiceEvents(s *Spec) []Event {
	seen := map[string]Event{}
	WalkSpec(s, func(e Expr) {
		if p, ok := e.(*Prefix); ok && p.Ev.Kind == EvService {
			seen[p.Ev.Gate()] = p.Ev
		}
	})
	out := make([]Event, 0, len(seen))
	for _, ev := range seen {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Place != out[j].Place {
			return out[i].Place < out[j].Place
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// CountNodes returns the number of expression nodes in the specification.
func CountNodes(s *Spec) int {
	n := 0
	WalkSpec(s, func(Expr) { n++ })
	return n
}
