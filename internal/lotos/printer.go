package lotos

import (
	"fmt"
	"strings"
)

// Operator precedence levels used by the printer, loosest first. They mirror
// the grammar strata of Table 1: ">>" binds loosest, then "[>", the parallel
// operators, "[]", and finally action prefix and the atoms.
const (
	precEnable = iota + 1
	precDisable
	precParallel
	precChoice
	precSeq
	precAtom
)

func prec(e Expr) int {
	switch e.(type) {
	case *Enable:
		return precEnable
	case *Disable:
		return precDisable
	case *Parallel:
		return precParallel
	case *Choice:
		return precChoice
	case *Prefix:
		return precSeq
	case *Hide:
		return precSeq
	default:
		return precAtom
	}
}

// String renders the specification in concrete syntax. The output re-parses
// to a structurally equal specification (see TestPrintParseRoundTrip).
func (s *Spec) String() string {
	var b strings.Builder
	b.WriteString("SPEC\n")
	writeDefBlock(&b, s.Root, 1)
	b.WriteString("ENDSPEC\n")
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func writeDefBlock(b *strings.Builder, blk *DefBlock, depth int) {
	indent(b, depth)
	b.WriteString(Format(blk.Expr))
	b.WriteString("\n")
	if len(blk.Procs) > 0 {
		indent(b, depth)
		b.WriteString("WHERE\n")
		for _, pd := range blk.Procs {
			indent(b, depth)
			fmt.Fprintf(b, "PROC %s =\n", pd.Name)
			writeDefBlock(b, pd.Body, depth+1)
			indent(b, depth)
			b.WriteString("END\n")
		}
	}
}

// Format renders a behaviour expression on a single line with the minimal
// parenthesization required for the output to re-parse into the same tree.
func Format(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e, 0)
	return b.String()
}

// writeExpr renders e, wrapping it in parentheses when its operator binds
// looser than the context requires.
func writeExpr(b *strings.Builder, e Expr, minPrec int) {
	if prec(e) < minPrec {
		b.WriteString("(")
		writeExpr(b, e, 0)
		b.WriteString(")")
		return
	}
	switch x := e.(type) {
	case *Stop:
		b.WriteString("stop")
	case *Exit:
		b.WriteString("exit")
	case *Empty:
		// Residual "empty" is a neutral successful termination (Section 4.2);
		// it prints as exit so that every rendering is a valid specification.
		b.WriteString("exit")
	case *ProcRef:
		b.WriteString(x.Name)
	case *Prefix:
		b.WriteString(x.Ev.String())
		b.WriteString("; ")
		writeExpr(b, x.Cont, precSeq)
	case *Choice:
		writeExpr(b, x.L, precChoice+1)
		b.WriteString(" [] ")
		writeExpr(b, x.R, precChoice)
	case *Parallel:
		writeExpr(b, x.L, precParallel+1)
		switch x.Kind {
		case ParInterleave:
			b.WriteString(" ||| ")
		case ParFull:
			b.WriteString(" || ")
		default:
			b.WriteString(" |[")
			b.WriteString(FormatGateSet(x.Sync))
			b.WriteString("]| ")
		}
		writeExpr(b, x.R, precParallel)
	case *Enable:
		writeExpr(b, x.L, precEnable+1)
		b.WriteString(" >> ")
		writeExpr(b, x.R, precEnable)
	case *Disable:
		writeExpr(b, x.L, precDisable+1)
		b.WriteString(" [> ")
		writeExpr(b, x.R, precDisable)
	case *Hide:
		b.WriteString("hide ")
		b.WriteString(FormatGateSet(x.Gates))
		b.WriteString(" in (")
		writeExpr(b, x.Body, 0)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "<?%T>", e)
	}
}

// Canon returns a canonical single-line string for an expression, used as a
// state key during state-space exploration. It differs from Format in that
// the derivation-time Empty node stays distinguishable and occurrence
// numbers of process references are included.
func Canon(e Expr) string {
	var b strings.Builder
	writeCanon(&b, e)
	return b.String()
}

func writeCanon(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *Stop:
		b.WriteString("0")
	case *Exit:
		b.WriteString("X")
	case *Empty:
		b.WriteString("E")
	case *ProcRef:
		fmt.Fprintf(b, "P(%s@%d^%s)", x.Name, x.id, x.Occ)
	case *Prefix:
		b.WriteString(x.Ev.Gate())
		if x.Ev.Kind == EvInternal {
			b.WriteString("i")
		}
		b.WriteString(".")
		writeCanon(b, x.Cont)
	case *Choice:
		b.WriteString("(")
		writeCanon(b, x.L)
		b.WriteString("+")
		writeCanon(b, x.R)
		b.WriteString(")")
	case *Parallel:
		b.WriteString("(")
		writeCanon(b, x.L)
		switch x.Kind {
		case ParInterleave:
			b.WriteString("|||")
		case ParFull:
			b.WriteString("||")
		default:
			b.WriteString("|[" + FormatGateSet(x.Sync) + "]|")
		}
		writeCanon(b, x.R)
		b.WriteString(")")
	case *Enable:
		b.WriteString("(")
		writeCanon(b, x.L)
		b.WriteString(">>")
		writeCanon(b, x.R)
		b.WriteString(")")
	case *Disable:
		b.WriteString("(")
		writeCanon(b, x.L)
		b.WriteString("[>")
		writeCanon(b, x.R)
		b.WriteString(")")
	case *Hide:
		b.WriteString("hide[" + FormatGateSet(x.Gates) + "](")
		writeCanon(b, x.Body)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "<?%T>", e)
	}
}
