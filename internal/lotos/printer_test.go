package lotos

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatBasics(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"a1; exit", "a1; exit"},
		{"a1; b2; exit", "a1; b2; exit"},
		{"a1; exit [] b2; exit", "a1; exit [] b2; exit"},
		{"(a1; exit [] b2; exit) >> c3; exit", "a1; exit [] b2; exit >> c3; exit"},
		{"a1; (b2; exit >> c3; exit)", "a1; (b2; exit >> c3; exit)"},
		{"(a1; exit >> b2; exit) [> c3; exit", "(a1; exit >> b2; exit) [> c3; exit"},
		{"a1; exit ||| b2; exit", "a1; exit ||| b2; exit"},
		{"a1; exit || b2; exit", "a1; exit || b2; exit"},
		{"a1; exit |[a1]| a1; exit", "a1; exit |[a1]| a1; exit"},
		{"a1; exit [> b2; exit", "a1; exit [> b2; exit"},
		{"a1; (b2; exit [] c3; exit)", "a1; (b2; exit [] c3; exit)"},
		{"s2(7); exit", "s2(7); exit"},
		{"s2(x); r1(y); exit", "s2(x); r1(y); exit"},
		{"stop", "stop"},
		{"i; a1; exit", "i; a1; exit"},
	}
	for _, c := range cases {
		e := MustParseExpr(c.src)
		if got := Format(e); got != c.want {
			t.Errorf("Format(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestFormatEmptyRendersExit(t *testing.T) {
	if got := Format(Emp()); got != "exit" {
		t.Errorf("Format(Empty) = %q", got)
	}
	if got := Format(Enb(Act(ServiceEvent("a", 1)), Emp())); got != "a1; exit >> exit" {
		t.Errorf("got %q", got)
	}
}

func TestFormatConcreteOccurrence(t *testing.T) {
	ev := SendEvent(2, 7).WithOcc("0/5")
	got := Format(Act(ev))
	if got != "s2(#0/5,7); exit" {
		t.Fatalf("got %q", got)
	}
	back := MustParseExpr(got).(*Prefix)
	if back.Ev != ev {
		t.Fatalf("round trip: %+v != %+v", back.Ev, ev)
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	srcs := []string{
		`SPEC a1; exit ENDSPEC`,
		`SPEC A WHERE PROC A = a1; A [] b1; exit END ENDSPEC`,
		`SPEC S [> interrupt3; exit WHERE
			PROC S = (read1; push2; S >> pop2; write3; exit) [] (eof1; make3; exit) END
		 ENDSPEC`,
		`SPEC B ||| B WHERE PROC B = (a1; (b2; exit ||| c3; exit)) >> g4; exit END ENDSPEC`,
		`SPEC A WHERE
			PROC A = B WHERE PROC B = a1; exit END END
		 ENDSPEC`,
	}
	for _, src := range srcs {
		sp := MustParse(src)
		text := sp.String()
		back, err := Parse(text)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v\nrendered: %s", src, err, text)
			continue
		}
		if !EqualSpec(sp, back) {
			t.Errorf("round trip changed structure:\noriginal: %s\nrendered: %s", src, text)
		}
	}
}

// genExpr generates a random well-formed expression with service events,
// message events and all operators, for property-based round-trip testing.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return X()
		case 1:
			return Halt()
		case 2:
			return Act(ServiceEvent(string(rune('a'+r.Intn(4))), 1+r.Intn(4)))
		default:
			return Act(SendEvent(1+r.Intn(4), r.Intn(30)))
		}
	}
	switch r.Intn(9) {
	case 0:
		return Pfx(ServiceEvent(string(rune('a'+r.Intn(4))), 1+r.Intn(4)), genExpr(r, depth-1))
	case 1:
		return Pfx(RecvEvent(1+r.Intn(4), r.Intn(30)), genExpr(r, depth-1))
	case 2:
		return Ch(genExpr(r, depth-1), genExpr(r, depth-1))
	case 3:
		return Ill(genExpr(r, depth-1), genExpr(r, depth-1))
	case 4:
		return Full(genExpr(r, depth-1), genExpr(r, depth-1))
	case 5:
		return Gates(genExpr(r, depth-1), []string{"a1", "b2"}, genExpr(r, depth-1))
	case 6:
		return Enb(genExpr(r, depth-1), genExpr(r, depth-1))
	case 7:
		return Dis(genExpr(r, depth-1), genExpr(r, depth-1))
	default:
		return Pfx(InternalEvent(), genExpr(r, depth-1))
	}
}

func TestPropertyPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 1+r.Intn(5))
		text := Format(e)
		back, err := ParseExpr(text)
		if err != nil {
			t.Logf("seed %d: parse error %v on %q", seed, err, text)
			return false
		}
		if !Equal(e, back) {
			t.Logf("seed %d: structure changed\n  orig: %s\n  back: %s", seed, Format(e), Format(back))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 1+r.Intn(5))
		c := Clone(e)
		return Equal(e, c) && Canon(e) == Canon(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCanonDistinguishesEmptyFromExit(t *testing.T) {
	if Canon(Emp()) == Canon(X()) {
		t.Error("Canon must distinguish Empty from Exit")
	}
}

func TestCanonIncludesOccurrence(t *testing.T) {
	a := Call("A")
	a.Occ = "0"
	b := Call("A")
	b.Occ = "0/5"
	if Canon(a) == Canon(b) {
		t.Error("Canon must include occurrence stamps")
	}
}

func TestIsomorphicModuloMsgIDs(t *testing.T) {
	a := MustParseExpr("a1; s2(6); exit")
	b := MustParseExpr("a1; s2(9); exit")
	if !IsomorphicModuloMsgIDs(a, b) {
		t.Error("single renamed message must be isomorphic")
	}
	// Consistency: the same id must map to the same id everywhere.
	c := MustParseExpr("s2(6); r3(6); exit")
	d := MustParseExpr("s2(9); r3(8); exit")
	if IsomorphicModuloMsgIDs(c, d) {
		t.Error("inconsistent renaming must not be isomorphic")
	}
	e := MustParseExpr("s2(6); r3(6); exit")
	f := MustParseExpr("s2(9); r3(9); exit")
	if !IsomorphicModuloMsgIDs(e, f) {
		t.Error("consistent renaming must be isomorphic")
	}
	// Injectivity: two different ids cannot collapse into one.
	g := MustParseExpr("s2(6); s2(7); exit")
	h := MustParseExpr("s2(9); s2(9); exit")
	if IsomorphicModuloMsgIDs(g, h) {
		t.Error("non-injective renaming must not be isomorphic")
	}
	// Tags and node ids may be renamed into each other.
	i := MustParseExpr("s2(x); r3(x); exit")
	j := MustParseExpr("s2(4); r3(4); exit")
	if !IsomorphicModuloMsgIDs(i, j) {
		t.Error("tag-to-node renaming must be isomorphic")
	}
	// Different peers never match.
	k := MustParseExpr("s2(6); exit")
	l := MustParseExpr("s3(6); exit")
	if IsomorphicModuloMsgIDs(k, l) {
		t.Error("different peers must not be isomorphic")
	}
	// Empty matches exit.
	if !IsomorphicModuloMsgIDs(Emp(), X()) || !IsomorphicModuloMsgIDs(X(), Emp()) {
		t.Error("empty and exit must be isomorphic")
	}
	// Service names must match exactly.
	m := MustParseExpr("a1; exit")
	n := MustParseExpr("b1; exit")
	if IsomorphicModuloMsgIDs(m, n) {
		t.Error("different service primitives must not be isomorphic")
	}
}

func TestEqualOperatorsDistinct(t *testing.T) {
	a := MustParseExpr("a1; exit ||| b2; exit")
	b := MustParseExpr("a1; exit || b2; exit")
	c := MustParseExpr("a1; exit [] b2; exit")
	if Equal(a, b) || Equal(a, c) || Equal(b, c) {
		t.Error("distinct operators must not be Equal")
	}
}

func TestChildrenAndWalk(t *testing.T) {
	e := MustParseExpr("(a1; exit [] b2; exit) >> (c3; exit ||| d4; exit)")
	if n := len(Children(e)); n != 2 {
		t.Fatalf("children of >>: %d", n)
	}
	count := 0
	Walk(e, func(Expr) { count++ })
	// Enable, Choice, 2×(Prefix,Exit), Parallel, 2×(Prefix,Exit) = 1+1+4+1+4
	if count != 11 {
		t.Fatalf("walk count = %d, want 11", count)
	}
}

func TestBuilderHelpers(t *testing.T) {
	seq := SeqChain(ServiceEvent("a", 1), ServiceEvent("b", 2))
	if Format(seq) != "a1; b2; exit" {
		t.Errorf("SeqChain: %s", Format(seq))
	}
	ch := ChoiceOf(Act(ServiceEvent("a", 1)), Act(ServiceEvent("b", 1)), Act(ServiceEvent("c", 1)))
	if Format(ch) != "a1; exit [] b1; exit [] c1; exit" {
		t.Errorf("ChoiceOf: %s", Format(ch))
	}
	par := InterleaveOf(Act(ServiceEvent("a", 1)), Act(ServiceEvent("b", 2)))
	if Format(par) != "a1; exit ||| b2; exit" {
		t.Errorf("InterleaveOf: %s", Format(par))
	}
	if !IsEmpty(InterleaveOf()) || !IsEmpty(ChoiceOf()) {
		t.Error("empty folds must yield Empty")
	}
}

func TestEventStringAndGate(t *testing.T) {
	cases := []struct {
		ev        Event
		str, gate string
	}{
		{ServiceEvent("read", 1), "read1", "read@1"},
		{SendEvent(2, 7), "s2(7)", "s@2:7#s"},
		{RecvEvent(3, 7), "r3(7)", "r@3:7#s"},
		{InternalEvent(), "i", ""},
	}
	for _, c := range cases {
		if got := c.ev.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
		if got := c.ev.Gate(); got != c.gate {
			t.Errorf("Gate() = %q, want %q", got, c.gate)
		}
	}
}

func TestSameMessage(t *testing.T) {
	s := SendEvent(2, 7)
	r := RecvEvent(1, 7)
	if !s.SameMessage(r) {
		t.Error("same node+occ must match")
	}
	if s.SameMessage(RecvEvent(1, 8)) {
		t.Error("different node must not match")
	}
	tag1 := Event{Kind: EvSend, Place: 2, Node: -1, Tag: "x"}
	tag2 := Event{Kind: EvRecv, Place: 1, Node: -1, Tag: "x"}
	if !tag1.SameMessage(tag2) {
		t.Error("same tags must match")
	}
	if tag1.SameMessage(r) {
		t.Error("tagged vs numbered must not match")
	}
	if s.SameMessage(ServiceEvent("a", 1)) {
		t.Error("service events are not messages")
	}
	occ1 := SendEvent(2, 7).WithOcc("0/1")
	occ2 := RecvEvent(3, 7).WithOcc("0/2")
	if occ1.SameMessage(occ2) {
		t.Error("different occurrences must not match")
	}
}

func TestWithOcc(t *testing.T) {
	if got := ServiceEvent("a", 1).WithOcc("0/1"); got.Occ != "" {
		t.Error("WithOcc must not touch service events")
	}
	tagged := Event{Kind: EvSend, Place: 2, Node: -1, Tag: "x"}
	if got := tagged.WithOcc("0/1"); got.Occ != "" {
		t.Error("WithOcc must not touch tagged messages")
	}
	if got := SendEvent(2, 7).WithOcc("0/9"); got.Occ != "0/9" {
		t.Error("WithOcc must stamp numbered messages")
	}
}

func TestParseEventIDErrors(t *testing.T) {
	for _, id := range []string{"abc", "123", ""} {
		if _, err := ParseEventID(id); err == nil {
			t.Errorf("ParseEventID(%q): expected error", id)
		}
	}
}

func TestEventKindString(t *testing.T) {
	for _, k := range []EventKind{EvService, EvSend, EvRecv, EvInternal} {
		if k.String() == "" {
			t.Errorf("empty kind string for %d", k)
		}
	}
	if !strings.Contains(EventKind(99).String(), "99") {
		t.Error("unknown kind string")
	}
}
