package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// CacheKey builds the content address of one computation: the SHA-256 of
// the request kind (endpoint), the *normalized* specification text and the
// option fingerprint. Callers pass the pretty-printed form of the parsed
// spec, so two textually different but structurally identical inputs —
// whitespace, comments, redundant parentheses — share one entry.
func CacheKey(kind, normalizedSpec, fingerprint string) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(normalizedSpec))
	h.Write([]byte{0})
	h.Write([]byte(fingerprint))
	return hex.EncodeToString(h.Sum(nil))
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	// Hits counts lookups answered from a stored entry.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that ran the computation. Under singleflight
	// this equals the number of distinct computations performed.
	Misses uint64 `json:"misses"`
	// SharedWaits counts lookups that joined an in-flight computation for
	// the same key instead of starting their own — the singleflight
	// collapse counter.
	SharedWaits uint64 `json:"sharedWaits"`
	// Evictions counts LRU evictions.
	Evictions uint64 `json:"evictions"`
	// Entries is the current number of stored entries.
	Entries int `json:"entries"`
}

// call is one in-flight computation; waiters block on done.
type call struct {
	done chan struct{}
	val  any
	err  error
}

type cacheEntry struct {
	key string
	val any
}

// Cache is a bounded LRU cache with singleflight deduplication: concurrent
// Do calls for the same key while a computation is in flight share its one
// result. Successful results are stored; errors are returned to every
// waiter but never cached (a transient failure must not poison the key).
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	calls   map[string]*call
	stats   CacheStats
}

// NewCache returns a cache bounded to max entries (max <= 0 selects 256).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 256
	}
	return &Cache{
		max:     max,
		ll:      list.New(),
		entries: map[string]*list.Element{},
		calls:   map[string]*call{},
	}
}

// Outcome classifies how a Do call was answered, for response metadata and
// the load-test assertions.
type Outcome int

const (
	// OutcomeComputed: this call ran the computation.
	OutcomeComputed Outcome = iota
	// OutcomeHit: answered from a stored entry.
	OutcomeHit
	// OutcomeShared: joined another caller's in-flight computation.
	OutcomeShared
)

// Do returns the cached value for key, joining an in-flight computation for
// the same key if one exists, and otherwise running compute. compute is
// invoked without the cache lock held. A caller joining an in-flight
// computation stops waiting when its context expires (the computation
// itself continues for the caller that started it).
func (c *Cache) Do(ctx context.Context, key string, compute func() (any, error)) (any, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, OutcomeHit, nil
	}
	if cl, ok := c.calls[key]; ok {
		c.stats.SharedWaits++
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.val, OutcomeShared, cl.err
		case <-ctx.Done():
			return nil, OutcomeShared, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.calls[key] = cl
	c.stats.Misses++
	c.mu.Unlock()

	cl.val, cl.err = compute()
	close(cl.done)

	c.mu.Lock()
	delete(c.calls, key)
	if cl.err == nil {
		if el, ok := c.entries[key]; ok {
			// Another computation stored the key first (possible when an
			// errored call was retried while waiters drained); refresh it.
			el.Value.(*cacheEntry).val = cl.val
			c.ll.MoveToFront(el)
		} else {
			c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: cl.val})
			for c.ll.Len() > c.max {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.entries, oldest.Value.(*cacheEntry).key)
				c.stats.Evictions++
			}
		}
	}
	c.mu.Unlock()
	return cl.val, OutcomeComputed, cl.err
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.ll.Len()
	return st
}
