// Package service exposes the protocol-derivation pipeline as a resident
// HTTP service — the engine behind the pgd daemon. Where the one-shot CLIs
// (pg, verify, lotosim) re-parse and re-derive from scratch on every
// invocation, the service keeps a content-addressed cache of finished
// results keyed by the SHA-256 of the *normalized* specification plus an
// option fingerprint, collapses concurrent identical requests into a
// single computation (singleflight), bounds concurrency with per-class
// worker pools (expensive verifications cannot starve cheap derivations),
// and runs explorations that exceed the synchronous deadline as async jobs
// with a TTL'd result store.
//
// The package layers strictly on the protoderive facade: no internal/core,
// internal/lotos or internal/lts imports. Everything it caches is
// immutable rendered output (strings and value structs), never live
// syntax trees — each computation parses and derives its own tree, so
// concurrent requests share nothing mutable.
//
// Endpoints:
//
//	POST /v1/derive          spec -> entity specs + attributes + complexity
//	                         (+ per-entity FSM compilation with "compile")
//	POST /v1/verify          spec -> derive + compose + equivalence verdict
//	POST /v1/verify?async=1  same, as an async job -> {"jobId": ...}
//	POST /v1/delta-verify    base digest + edited spec -> entity delta +
//	                         compositional verify reusing cached artifacts
//	POST /v1/explore         spec -> bounded LTS exploration report
//	GET  /v1/jobs/{id}       async job status/result
//	GET  /v1/jobs/{id}/events  job progress as server-sent events
//	GET  /healthz            liveness
//	GET  /metrics            JSON counters (requests, cache, pools, jobs,
//	                         Go runtime gauges)
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	protoderive "repro"
)

// Config tunes a Server. The zero value selects production defaults.
type Config struct {
	// DeriveWorkers bounds concurrent derivations/explorations
	// (0 = GOMAXPROCS).
	DeriveWorkers int
	// VerifyWorkers bounds concurrent verifications (0 = GOMAXPROCS).
	VerifyWorkers int
	// CacheEntries bounds the result cache (0 = 256 entries).
	CacheEntries int
	// SyncDeadline bounds a synchronous request end to end: queueing for a
	// worker slot and waiting on a shared in-flight computation count
	// against it (0 = 30s). A computation already running is not
	// interrupted — clients needing longer explorations use async jobs.
	SyncDeadline time.Duration
	// JobDeadline bounds an async job's queueing the same way (0 = 10m).
	JobDeadline time.Duration
	// JobTTL keeps finished jobs retrievable for this long (0 = 10m).
	JobTTL time.Duration
	// MaxJobs caps the job population (0 = 1024).
	MaxJobs int
	// MaxBodyBytes caps request bodies (0 = 1 MiB).
	MaxBodyBytes int64
	// ArtifactEntries bounds the content-addressed per-entity artifact
	// cache backing compositional and delta verification
	// (0 = protoderive.DefaultArtifactEntries).
	ArtifactEntries int
	// SpecIndexEntries bounds the digest -> normalized-spec index that
	// resolves delta-verify base references (0 = 4096).
	SpecIndexEntries int
	// SSEKeepalive is the comment-line heartbeat interval of the job event
	// stream (0 = 15s). Keepalives let proxies and clients distinguish an
	// idle stream from a dead one.
	SSEKeepalive time.Duration

	// PreCompute, when set, is invoked inside the computing call of every
	// cache miss, after a worker slot is acquired and before the
	// computation runs. Test instrumentation: the load test parks the
	// first computation here to prove that concurrent identical requests
	// pile onto one in-flight call, and the deadline test parks it to
	// exhaust the pool.
	PreCompute func(kind, key string)
}

func (c Config) withDefaults() Config {
	if c.SyncDeadline <= 0 {
		c.SyncDeadline = 30 * time.Second
	}
	if c.JobDeadline <= 0 {
		c.JobDeadline = 10 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.SSEKeepalive <= 0 {
		c.SSEKeepalive = 15 * time.Second
	}
	return c
}

// Server is the derivation service. It implements http.Handler.
type Server struct {
	cfg        Config
	cache      *Cache
	jobs       *JobStore
	metrics    *Metrics
	derivePool *Pool
	verifyPool *Pool
	// arts is the daemon-wide content-addressed cache of per-entity
	// pipeline artifacts (quotiented entity LTSs, compiled machines);
	// specs resolves delta-verify base digests to normalized spec text.
	arts  *protoderive.ArtifactCache
	specs *specIndex
	mux   *http.ServeMux
	start time.Time
}

// New builds a Server from the configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		cache:      NewCache(cfg.CacheEntries),
		jobs:       NewJobStore(cfg.JobTTL, cfg.MaxJobs),
		metrics:    NewMetrics(),
		derivePool: NewPool(cfg.DeriveWorkers),
		verifyPool: NewPool(cfg.VerifyWorkers),
		arts:       protoderive.NewArtifactCache(cfg.ArtifactEntries),
		specs:      newSpecIndex(cfg.SpecIndexEntries),
		mux:        http.NewServeMux(),
		start:      time.Now(),
	}
	s.mux.HandleFunc("POST /v1/derive", s.instrument("derive", s.handleDerive))
	s.mux.HandleFunc("POST /v1/verify", s.instrument("verify", s.handleVerify))
	s.mux.HandleFunc("POST /v1/delta-verify", s.instrument("deltaVerify", s.handleDeltaVerify))
	s.mux.HandleFunc("POST /v1/explore", s.instrument("explore", s.handleExplore))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs", s.handleJob))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("jobEvents", s.handleJobEvents))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// CacheStats exposes the cache counters (for tests and the metrics page).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// JobStats exposes the job counters.
func (s *Server) JobStats() JobStats { return s.jobs.Stats() }

// ArtifactStats exposes the per-entity artifact cache counters.
func (s *Server) ArtifactStats() protoderive.ArtifactStats { return s.arts.Stats() }

// --- request / response types ----------------------------------------------

// DeriveRequestOptions mirrors protoderive.DeriveOptions on the wire, plus
// the FSM-compilation request.
type DeriveRequestOptions struct {
	KeepRedundant      bool `json:"keepRedundant,omitempty"`
	Dialect1986        bool `json:"dialect1986,omitempty"`
	InterruptHandshake bool `json:"interruptHandshake,omitempty"`
	// Compile additionally compiles every derived entity to a minimized
	// table-driven machine and reports per-entity state/transition counts.
	Compile bool `json:"compile,omitempty"`
	// CompileMaxStates caps each entity's state space during compilation
	// (0 = the compiler default). Entities over the cap are reported as
	// interpreter fallbacks, not errors.
	CompileMaxStates int `json:"compileMaxStates,omitempty"`
}

func (o DeriveRequestOptions) facade() protoderive.DeriveOptions {
	return protoderive.DeriveOptions{
		KeepRedundant:      o.KeepRedundant,
		Dialect1986:        o.Dialect1986,
		InterruptHandshake: o.InterruptHandshake,
	}
}

func (o DeriveRequestOptions) fingerprint() string {
	return fmt.Sprintf("raw=%t d86=%t hs=%t compile=%t cms=%d",
		o.KeepRedundant, o.Dialect1986, o.InterruptHandshake, o.Compile, o.CompileMaxStates)
}

// DeriveRequest is the body of POST /v1/derive.
type DeriveRequest struct {
	Spec    string               `json:"spec"`
	Options DeriveRequestOptions `json:"options"`
}

// DeriveResponse is the body of a successful derivation.
type DeriveResponse struct {
	// Cached reports that the response was answered without running a new
	// derivation (stored entry or shared in-flight computation).
	Cached bool `json:"cached"`
	// Places lists the service access points.
	Places []int `json:"places"`
	// Entities maps each place (as a decimal string: JSON object keys) to
	// its derived protocol entity specification text.
	Entities map[string]string `json:"entities"`
	// Attributes is the node numbering and SP/EP/AP attribute table.
	Attributes string `json:"attributes"`
	// MessageCount is the static message complexity.
	MessageCount int `json:"messageCount"`
	// Complexity is the per-operator Section-4.3 breakdown.
	Complexity protoderive.Complexity `json:"complexity"`
	// Compile carries the per-entity FSM compilation report when the
	// request asked for it.
	Compile *protoderive.CompileReport `json:"compile,omitempty"`
}

// VerifyRequestOptions are the wire options of POST /v1/verify: the
// derivation options plus the verification bounds.
type VerifyRequestOptions struct {
	DeriveRequestOptions
	ChannelCap int  `json:"channelCap,omitempty"`
	ObsDepth   int  `json:"obsDepth,omitempty"`
	MaxStates  int  `json:"maxStates,omitempty"`
	Parallel   bool `json:"parallel,omitempty"`
	Workers    int  `json:"workers,omitempty"`
	// Faults lists medium fault models to additionally verify under
	// ("loss", "dup", "reorder", "+"-combinations). The response then
	// carries a fault matrix with one cell per model, each failed cell
	// with its shortest replayable counterexample.
	Faults []string `json:"faults,omitempty"`
	// TraceDiffLimit caps the diagnostic example traces per side on a
	// failed trace comparison (0 = default 5).
	TraceDiffLimit int `json:"traceDiffLimit,omitempty"`
	// Compositional verifies quotient-before-compose: each entity LTS is
	// minimized before the product is built, with per-entity artifacts
	// recalled from the daemon's shared content-addressed cache. Verdicts
	// match the monolithic path.
	Compositional bool `json:"compositional,omitempty"`
	// Reductions names the product exploration's reduction set ("default",
	// "none", "all", or "+"-joined por/symmetry/spill). Every set is
	// verdict-preserving, so responses for different sets agree — but they
	// are cached separately (the set is part of the option fingerprint)
	// because the reported statistics and state counts differ.
	Reductions string `json:"reductions,omitempty"`
	// SpillBudget bounds the in-memory visited index (bytes) when the
	// reduction set includes "spill" (0 = the exploration default).
	SpillBudget int64 `json:"spillBudget,omitempty"`
}

// faultModels parses and deduplicates the requested fault models.
func (o VerifyRequestOptions) faultModels() ([]protoderive.FaultModel, error) {
	return protoderive.ParseFaultModels(strings.Join(o.Faults, ","))
}

// faultFingerprint renders the requested fault models canonically, so
// spelling variants ("dup" vs "duplication") and duplicates share a cache
// key while distinct fault configurations never collide. Unparseable input
// is fingerprinted verbatim (the request fails validation anyway).
func (o VerifyRequestOptions) faultFingerprint() string {
	models, err := o.faultModels()
	if err != nil {
		return strings.Join(o.Faults, ",")
	}
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.String()
	}
	return strings.Join(names, ",")
}

// reductionFingerprint renders the requested reduction set canonically, so
// spelling variants ("sym" vs "symmetry", reordered tokens) share a cache key
// while distinct sets never collide. Unparseable input is fingerprinted
// verbatim (the request fails validation anyway).
func (o VerifyRequestOptions) reductionFingerprint() string {
	name, err := protoderive.CanonicalReductions(o.Reductions)
	if err != nil {
		return o.Reductions
	}
	return name
}

func (o VerifyRequestOptions) fingerprint() string {
	return fmt.Sprintf("%s cap=%d obs=%d max=%d par=%t w=%d diff=%d comp=%t faults=%s red=%s spill=%d",
		o.DeriveRequestOptions.fingerprint(), o.ChannelCap, o.ObsDepth, o.MaxStates, o.Parallel, o.Workers,
		o.TraceDiffLimit, o.Compositional, o.faultFingerprint(), o.reductionFingerprint(), o.SpillBudget)
}

// VerifyRequest is the body of POST /v1/verify.
type VerifyRequest struct {
	Spec    string               `json:"spec"`
	Options VerifyRequestOptions `json:"options"`
}

// VerifyResponse is the body of a successful verification.
type VerifyResponse struct {
	Cached         bool   `json:"cached"`
	Ok             bool   `json:"ok"`
	Complete       bool   `json:"complete"`
	WeakBisimilar  bool   `json:"weakBisimilar"`
	TracesEqual    bool   `json:"tracesEqual"`
	ObsDepth       int    `json:"obsDepth"`
	Deadlocks      int    `json:"deadlocks"`
	ServiceStates  int    `json:"serviceStates"`
	ComposedStates int    `json:"composedStates"`
	MessageCount   int    `json:"messageCount"`
	Summary        string `json:"summary"`
	// SpecDigest is the content address of the normalized specification —
	// pass it as "base" to /v1/delta-verify after editing the spec.
	SpecDigest string `json:"specDigest"`
	// Witness is the shortest replayable counterexample when the
	// reliable-medium verification fails.
	Witness *protoderive.Witness `json:"witness,omitempty"`
	// FaultMatrix holds one cell per requested fault model (in canonical,
	// deduplicated order), each failed cell with its counterexample.
	FaultMatrix []FaultMatrixCell `json:"faultMatrix,omitempty"`
	// Equiv carries the equivalence engine's work counters for this check
	// (absent when exploration truncated and the bisimulation was skipped).
	Equiv *protoderive.EquivStats `json:"equiv,omitempty"`
	// Compositional reports the quotient-before-compose pipeline of the
	// reliable-medium check (entity quotient sizes, per-phase times,
	// artifact reuse, fallback reason). Present only for compositional
	// verifications.
	Compositional *protoderive.CompositionalReport `json:"compositional,omitempty"`
	// Reduction reports the state-space reductions the reliable-medium
	// product exploration applied (symmetry orbits collapsed, ample-set
	// hits, visited-index runs spilled).
	Reduction *protoderive.ReductionReport `json:"reduction,omitempty"`
}

// FaultMatrixCell is one fault-matrix entry of a verify response.
type FaultMatrixCell struct {
	Faults      string               `json:"faults"`
	Ok          bool                 `json:"ok"`
	Complete    bool                 `json:"complete"`
	TracesEqual bool                 `json:"tracesEqual"`
	Deadlocks   int                  `json:"deadlocks"`
	Summary     string               `json:"summary"`
	Witness     *protoderive.Witness `json:"witness,omitempty"`
}

// JobAccepted is the 202 body of POST /v1/verify?async=1.
type JobAccepted struct {
	JobID string `json:"jobId"`
	State string `json:"state"`
	Poll  string `json:"poll"`
}

// ExploreRequest is the body of POST /v1/explore. Unlike derive/verify it
// accepts any grammatical specification, not only valid services.
type ExploreRequest struct {
	Spec      string `json:"spec"`
	ObsDepth  int    `json:"obsDepth,omitempty"`
	MaxStates int    `json:"maxStates,omitempty"`
	Traces    bool   `json:"traces,omitempty"`
}

// ExploreResponse is the body of a successful exploration. It mirrors
// protoderive.ExploreReport field by field so the wire names stay
// camelCase like every other endpoint.
type ExploreResponse struct {
	Cached      bool     `json:"cached"`
	States      int      `json:"states"`
	Transitions int      `json:"transitions"`
	Deadlocks   int      `json:"deadlocks"`
	Truncated   bool     `json:"truncated"`
	ObsDepth    int      `json:"obsDepth"`
	Traces      []string `json:"traces,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Line and Col locate spec errors in the submitted source (1-based;
	// absent when the failure has no position).
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
	// Rule names the violated service restriction (R1/R2/R3/APF), when
	// that is what failed.
	Rule string `json:"rule,omitempty"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// MetricsPage is the body of GET /metrics.
type MetricsPage struct {
	MetricsSnapshot
	Cache CacheStats           `json:"cache"`
	Pools map[string]PoolStats `json:"pools"`
	Jobs  JobStats             `json:"jobs"`
	// Artifacts counts the content-addressed per-entity artifact cache's
	// entries and hit/miss totals (quotiented entity LTSs and compiled
	// machines shared across specs, fault models and delta verifications).
	Artifacts protoderive.ArtifactStats `json:"artifacts"`
	// Runtime samples the Go runtime's health gauges at scrape time.
	Runtime RuntimeStats `json:"runtime"`
}

// --- plumbing ---------------------------------------------------------------

// instrument wraps a handler with the per-endpoint metrics bookkeeping.
func (s *Server) instrument(name string, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		done := s.metrics.Begin(name)
		status := h(w, r)
		done(status >= 400)
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body) //nolint:errcheck // late write failures are the client's problem
	return status
}

// badRequestError marks malformed request bodies (as opposed to internal
// failures) for status mapping.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

// writeError maps an error to a status and a structured body: spec errors
// carry their position and rule, deadline expiry maps to 503 (the request
// never got a worker slot in time — retry or go async).
func writeError(w http.ResponseWriter, err error) int {
	var se *protoderive.SpecError
	if errors.As(err, &se) {
		return writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: se.Error(), Line: se.Line, Col: se.Col, Rule: se.Rule,
		})
	}
	var bre badRequestError
	if errors.As(err, &bre) {
		return writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error: "deadline exceeded while queued; retry, raise the deadline, or use async=1",
		})
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{Error: err.Error()})
	}
	return writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
}

// decodeBody decodes a JSON request body, bounded and strict.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return err
		}
		return badRequestError{fmt.Errorf("bad request body: %w", err)}
	}
	return nil
}

// compute runs fn under the given pool with singleflight/cache collapsing.
func (s *Server) compute(ctx context.Context, pool *Pool, kind, key string, fn func() (any, error)) (any, Outcome, error) {
	return s.cache.Do(ctx, key, func() (any, error) {
		if err := pool.Acquire(ctx); err != nil {
			return nil, err
		}
		defer pool.Release()
		if s.cfg.PreCompute != nil {
			s.cfg.PreCompute(kind, key)
		}
		return fn()
	})
}

// --- handlers ---------------------------------------------------------------

func (s *Server) handleDerive(w http.ResponseWriter, r *http.Request) int {
	var req DeriveRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		return writeError(w, err)
	}
	svc, err := protoderive.ParseService(req.Spec)
	if err != nil {
		return writeError(w, err)
	}
	normalized := svc.String()
	s.specs.put(SpecDigest(normalized), normalized)
	key := CacheKey("derive", normalized, req.Options.fingerprint())
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SyncDeadline)
	defer cancel()
	val, outcome, err := s.compute(ctx, s.derivePool, "derive", key, func() (any, error) {
		return s.deriveResponse(svc, req.Options)
	})
	if err != nil {
		return writeError(w, err)
	}
	resp := *(val.(*DeriveResponse))
	resp.Cached = outcome != OutcomeComputed
	return writeJSON(w, http.StatusOK, resp)
}

// deriveResponse runs one derivation. Like verifyResponse it executes only
// inside the computing call of a cache miss, so the compile counters in
// s.metrics count each distinct compilation once.
func (s *Server) deriveResponse(svc *protoderive.Service, opts DeriveRequestOptions) (*DeriveResponse, error) {
	proto, err := svc.DeriveWithOptions(opts.facade())
	if err != nil {
		return nil, err
	}
	resp := &DeriveResponse{
		Places:       proto.Places(),
		Entities:     make(map[string]string, len(proto.Places())),
		Attributes:   svc.AttributeTable(),
		MessageCount: proto.MessageCount(),
		Complexity:   proto.Complexity(),
	}
	for _, p := range proto.Places() {
		resp.Entities[strconv.Itoa(p)] = proto.EntityText(p)
	}
	if opts.Compile {
		rep, err := proto.Compile(&protoderive.CompileOptions{MaxStates: opts.CompileMaxStates})
		if err != nil {
			return nil, err
		}
		states, transitions := 0, 0
		for _, e := range rep.Entities {
			states += e.MinStates
			transitions += e.MinTransitions
		}
		s.metrics.RecordCompile(rep.Compiled, rep.Fallback, states, transitions)
		resp.Compile = rep
	}
	return resp, nil
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) int {
	var req VerifyRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		return writeError(w, err)
	}
	svc, err := protoderive.ParseService(req.Spec)
	if err != nil {
		return writeError(w, err)
	}
	if _, err := req.Options.faultModels(); err != nil {
		return writeError(w, err)
	}
	normalized := svc.String()
	s.specs.put(SpecDigest(normalized), normalized)
	key := CacheKey("verify", normalized, req.Options.fingerprint())

	if async := r.URL.Query().Get("async"); async == "1" || async == "true" {
		id := s.jobs.Create("verify")
		go s.runVerifyJob(id, key, svc, req.Options)
		return writeJSON(w, http.StatusAccepted, JobAccepted{
			JobID: id, State: string(JobQueued), Poll: "/v1/jobs/" + id,
		})
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SyncDeadline)
	defer cancel()
	val, outcome, err := s.compute(ctx, s.verifyPool, "verify", key, func() (any, error) {
		return s.verifyResponse(svc, req.Options, nil)
	})
	if err != nil {
		return writeError(w, err)
	}
	resp := *(val.(*VerifyResponse))
	resp.Cached = outcome != OutcomeComputed
	return writeJSON(w, http.StatusOK, resp)
}

// runVerifyJob executes an async verification. The job shares the cache
// and singleflight with synchronous requests: an async job for a spec
// someone is already verifying joins that computation, and its result
// serves later synchronous requests. Phase progress events flow to the
// job's SSE stream only from the call that actually computes — a job that
// joins another caller's in-flight computation sees lifecycle events only.
func (s *Server) runVerifyJob(id, key string, svc *protoderive.Service, opts VerifyRequestOptions) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.JobDeadline)
	defer cancel()
	s.jobs.Start(id)
	val, outcome, err := s.compute(ctx, s.verifyPool, "verify", key, func() (any, error) {
		return s.verifyResponse(svc, opts, func(phase string) { s.jobs.Publish(id, phase) })
	})
	if err != nil {
		s.jobs.Finish(id, nil, err)
		return
	}
	resp := *(val.(*VerifyResponse))
	resp.Cached = outcome != OutcomeComputed
	s.jobs.Finish(id, resp, nil)
}

// verifyResponse runs one verification. It executes only inside the
// computing call of a cache miss, so the engine-counter aggregation in
// s.metrics counts each distinct verification once — cache hits and joined
// singleflight waiters serve the stored response without re-recording.
// progress, when non-nil, is invoked at the start of each phase (derive,
// reliable verify, one per fault-matrix cell).
func (s *Server) verifyResponse(svc *protoderive.Service, opts VerifyRequestOptions, progress func(string)) (*VerifyResponse, error) {
	if progress == nil {
		progress = func(string) {}
	}
	progress("derive")
	proto, err := svc.DeriveWithOptions(opts.facade())
	if err != nil {
		return nil, err
	}
	vo := &protoderive.VerifyOptions{
		ChannelCap:     opts.ChannelCap,
		ObsDepth:       opts.ObsDepth,
		MaxStates:      opts.MaxStates,
		Parallel:       opts.Parallel,
		Workers:        opts.Workers,
		TraceDiffLimit: opts.TraceDiffLimit,
		Compositional:  opts.Compositional,
		Artifacts:      s.arts,
		Reductions:     opts.Reductions,
		SpillBudget:    opts.SpillBudget,
	}
	progress("verify reliable")
	rep, err := proto.Verify(vo)
	if err != nil {
		return nil, err
	}
	if rep.Equiv != nil {
		s.metrics.RecordEquiv(rep.Equiv.TauSCCs, rep.Equiv.SaturationEdges,
			rep.Equiv.RefinementRounds, rep.Equiv.SaturateNanos, rep.Equiv.RefineNanos)
	}
	if rep.Compositional != nil {
		s.metrics.RecordCompositional(rep.Compositional)
	}
	if rep.Reduction != nil {
		s.metrics.RecordReduction(rep.Reduction)
	}
	resp := &VerifyResponse{
		Ok:             rep.Ok,
		Complete:       rep.Complete,
		WeakBisimilar:  rep.WeakBisimilar,
		TracesEqual:    rep.TracesEqual,
		ObsDepth:       rep.ObsDepth,
		Deadlocks:      rep.Deadlocks,
		ServiceStates:  rep.ServiceStates,
		ComposedStates: rep.ComposedStates,
		MessageCount:   proto.MessageCount(),
		Summary:        rep.Summary,
		SpecDigest:     SpecDigest(svc.String()),
		Witness:        rep.Witness,
		Equiv:          rep.Equiv,
		Compositional:  rep.Compositional,
		Reduction:      rep.Reduction,
	}
	models, err := opts.faultModels()
	if err != nil {
		return nil, err
	}
	// One VerifyMatrix call per model (the matrix is a per-model loop
	// anyway, so the cells are identical) so each cell can announce itself
	// on the progress stream before its exploration starts.
	for _, m := range models {
		progress("verify faults=" + m.String())
		cells, err := proto.VerifyMatrix([]protoderive.FaultModel{m}, vo)
		if err != nil {
			return nil, err
		}
		for _, c := range cells {
			resp.FaultMatrix = append(resp.FaultMatrix, FaultMatrixCell{
				Faults:      c.Faults,
				Ok:          c.Report.Ok,
				Complete:    c.Report.Complete,
				TracesEqual: c.Report.TracesEqual,
				Deadlocks:   c.Report.Deadlocks,
				Summary:     c.Report.Summary,
				Witness:     c.Report.Witness,
			})
		}
	}
	return resp, nil
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) int {
	var req ExploreRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		return writeError(w, err)
	}
	normalized, err := protoderive.NormalizeSource(req.Spec)
	if err != nil {
		return writeError(w, err)
	}
	fp := fmt.Sprintf("obs=%d max=%d traces=%t", req.ObsDepth, req.MaxStates, req.Traces)
	key := CacheKey("explore", normalized, fp)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SyncDeadline)
	defer cancel()
	val, outcome, err := s.compute(ctx, s.derivePool, "explore", key, func() (any, error) {
		return protoderive.ExploreSource(req.Spec, &protoderive.ExploreOptions{
			ObsDepth:  req.ObsDepth,
			MaxStates: req.MaxStates,
			Traces:    req.Traces,
		})
	})
	if err != nil {
		return writeError(w, err)
	}
	rep := val.(*protoderive.ExploreReport)
	return writeJSON(w, http.StatusOK, ExploreResponse{
		Cached:      outcome != OutcomeComputed,
		States:      rep.States,
		Transitions: rep.Transitions,
		Deadlocks:   rep.Deadlocks,
		Truncated:   rep.Truncated,
		ObsDepth:    rep.ObsDepth,
		Traces:      rep.Traces,
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) int {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		return writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no such job (expired or never created)"})
	}
	return writeJSON(w, http.StatusOK, job)
}

// handleJobEvents streams a job's progress as server-sent events: every
// stored event replayed, then live events as they happen, then an "end"
// event naming why the stream finished ("done", "failed" or "evicted").
// Comment-line keepalives tick while a computation is silent.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) int {
	past, ch, cancel, ok := s.jobs.Subscribe(r.PathValue("id"))
	if !ok {
		return writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no such job (expired or never created)"})
	}
	defer cancel()
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		return writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "streaming unsupported by connection"})
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	end := func(reason string) int {
		fmt.Fprintf(w, "event: end\ndata: {\"reason\":%q}\n\n", reason)
		fl.Flush()
		return http.StatusOK
	}
	writeEvent := func(ev JobEvent) (terminalReason string) {
		data, err := json.Marshal(ev)
		if err != nil {
			return "" // cannot happen for JobEvent; keep streaming
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
		fl.Flush()
		switch ev.State {
		case JobDone:
			return "done"
		case JobFailed:
			return "failed"
		}
		return ""
	}
	for _, ev := range past {
		if reason := writeEvent(ev); reason != "" {
			return end(reason)
		}
	}
	keepalive := time.NewTicker(s.cfg.SSEKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// Evicted (or racing cancel) while attached: the job is
				// gone, so there is nothing more to say.
				return end("evicted")
			}
			if reason := writeEvent(ev); reason != "" {
				return end(reason)
			}
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return http.StatusOK
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) int {
	return writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		Version:       protoderive.Version,
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) int {
	return writeJSON(w, http.StatusOK, MetricsPage{
		MetricsSnapshot: s.metrics.Snapshot(),
		Cache:           s.cache.Stats(),
		Pools: map[string]PoolStats{
			"derive": s.derivePool.Stats(),
			"verify": s.verifyPool.Stats(),
		},
		Jobs:      s.jobs.Stats(),
		Artifacts: s.arts.Stats(),
		Runtime:   ReadRuntimeStats(),
	})
}
