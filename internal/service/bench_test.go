package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

// The server benchmarks are the BENCH_PR2.json baseline: cold vs cached
// derive throughput and concurrent-verify latency percentiles, measured
// end to end through httptest (real HTTP, JSON marshalling included).
// Regenerate with `make bench-server`.

// benchSpec encodes n into event names using letters only (trailing digits
// would change the place), yielding arbitrarily many distinct specs.
func benchSpec(n int) string {
	name := "ev"
	for v := n; ; v = v / 26 {
		name += string(rune('a' + v%26))
		if v < 26 {
			break
		}
	}
	return fmt.Sprintf("SPEC %s1; %s2; exit ENDSPEC", name, name)
}

func benchPost(b *testing.B, client *http.Client, url string, body any) *http.Response {
	b.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	return resp
}

func drain(b *testing.B, resp *http.Response) {
	b.Helper()
	var sink json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&sink); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
}

// BenchmarkServerDeriveCold posts a distinct spec on every iteration: every
// request misses the cache and runs a full parse+derive. The req/s metric
// is the cold-path throughput.
func BenchmarkServerDeriveCold(b *testing.B) {
	ts := httptest.NewServer(New(Config{CacheEntries: 1 << 20}))
	defer ts.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(b, benchPost(b, ts.Client(), ts.URL+"/v1/derive", DeriveRequest{Spec: benchSpec(i)}))
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServerDeriveCached posts the same spec on every iteration: after
// the first, every request is a content-addressed cache hit.
func BenchmarkServerDeriveCached(b *testing.B) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	spec := benchSpec(0)
	drain(b, benchPost(b, ts.Client(), ts.URL+"/v1/derive", DeriveRequest{Spec: spec})) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(b, benchPost(b, ts.Client(), ts.URL+"/v1/derive", DeriveRequest{Spec: spec}))
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServerDeriveCompileCold posts a distinct spec on every iteration
// with the compile option on: every request misses the cache and runs
// parse + derive + FSM compilation of both entities. The req/s delta against
// ServerDeriveCold is the compilation surcharge on the cold path; the
// entities/s metric is the compiled-path throughput in machines produced.
func BenchmarkServerDeriveCompileCold(b *testing.B) {
	ts := httptest.NewServer(New(Config{CacheEntries: 1 << 20}))
	defer ts.Close()
	opts := DeriveRequestOptions{Compile: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(b, benchPost(b, ts.Client(), ts.URL+"/v1/derive", DeriveRequest{Spec: benchSpec(i), Options: opts}))
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "entities/s")
}

// BenchmarkServerDeriveCompileCached posts the same compile-enabled request
// on every iteration: after the first, the fully compiled response (tables
// and counts included) is served from the content-addressed cache.
func BenchmarkServerDeriveCompileCached(b *testing.B) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	spec := benchSpec(0)
	opts := DeriveRequestOptions{Compile: true}
	drain(b, benchPost(b, ts.Client(), ts.URL+"/v1/derive", DeriveRequest{Spec: spec, Options: opts})) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(b, benchPost(b, ts.Client(), ts.URL+"/v1/derive", DeriveRequest{Spec: spec, Options: opts}))
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServerVerifyConcurrent drives the verify endpoint from 32
// concurrent clients over a rotating set of 8 distinct specs (so both the
// cache and the verify pool are exercised) and reports client-observed
// latency percentiles alongside throughput.
func BenchmarkServerVerifyConcurrent(b *testing.B) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	const lanes = 32
	opts := VerifyRequestOptions{ObsDepth: 4}

	var mu sync.Mutex
	var lat []time.Duration
	var idx int64
	b.SetParallelism(lanes) // lanes × GOMAXPROCS-derived default workers
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := ts.Client()
		var local []time.Duration
		for pb.Next() {
			mu.Lock()
			i := idx
			idx++
			mu.Unlock()
			t0 := time.Now()
			drain(b, benchPost(b, client, ts.URL+"/v1/verify", VerifyRequest{
				Spec: benchSpec(int(i % 8)), Options: opts,
			}))
			local = append(local, time.Since(t0))
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(q float64) float64 {
		i := int(q * float64(len(lat)))
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return float64(lat[i].Nanoseconds()) / 1e6
	}
	b.ReportMetric(float64(len(lat))/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(pct(0.50), "p50-ms")
	b.ReportMetric(pct(0.95), "p95-ms")
	b.ReportMetric(pct(0.99), "p99-ms")
}
