package service

import (
	"net/http"
	"testing"
)

// editedSpec renames the gate at place 2 of validSpec: place 1's derived
// entity is byte-identical, so a delta verification reuses its artifact.
const editedSpec = "SPEC a1; c2; exit ENDSPEC"

func TestDeltaVerifyReusesUnchangedEntities(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Verify the base compositionally; the response names its digest and
	// the verification warms the daemon's artifact cache.
	resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		Spec:    validSpec,
		Options: VerifyRequestOptions{Compositional: true},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status %d", resp.StatusCode)
	}
	base := decode[VerifyResponse](t, resp)
	if !base.Ok || base.SpecDigest == "" {
		t.Fatalf("base verify: ok=%v digest=%q", base.Ok, base.SpecDigest)
	}
	if base.Compositional == nil {
		t.Fatal("compositional verify carries no pipeline report")
	}
	for _, e := range base.Compositional.Entities {
		if e.Reused {
			t.Errorf("place %d reused on a cold daemon", e.Place)
		}
	}

	// Delta-verify the edited spec against the base digest: place 1 is
	// unchanged and its artifact must be recalled, place 2 rebuilt.
	resp = postJSON(t, ts.URL+"/v1/delta-verify", DeltaVerifyRequest{
		Base: base.SpecDigest,
		Spec: editedSpec,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta-verify status %d", resp.StatusCode)
	}
	out := decode[DeltaVerifyResponse](t, resp)
	if !out.Ok {
		t.Fatalf("delta verify failed:\n%s", out.Summary)
	}
	if out.BaseDigest != base.SpecDigest {
		t.Errorf("baseDigest = %q, want %q", out.BaseDigest, base.SpecDigest)
	}
	if len(out.Delta.Unchanged) != 1 || out.Delta.Unchanged[0] != 1 ||
		len(out.Delta.Changed) != 1 || out.Delta.Changed[0] != 2 {
		t.Errorf("delta = %s, want 1 unchanged, changed: [2]", out.DeltaSummary)
	}
	if out.Compositional == nil {
		t.Fatal("delta verify carries no compositional report")
	}
	reused := map[int]bool{}
	for _, e := range out.Compositional.Entities {
		reused[e.Place] = e.Reused
	}
	if !reused[1] {
		t.Error("unchanged place 1 was rebuilt instead of recalled")
	}
	if reused[2] {
		t.Error("changed place 2 was recalled instead of rebuilt")
	}
	if out.SpecDigest == base.SpecDigest {
		t.Error("edited spec reports the base digest")
	}

	// The edited spec was indexed by the delta call, so it can serve as the
	// next base — the iterative-editing chain.
	resp = postJSON(t, ts.URL+"/v1/delta-verify", DeltaVerifyRequest{
		Base: out.SpecDigest,
		Spec: validSpec,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chained delta-verify status %d", resp.StatusCode)
	}
	chained := decode[DeltaVerifyResponse](t, resp)
	if len(chained.Delta.Unchanged) != 1 || chained.Delta.Unchanged[0] != 1 {
		t.Errorf("chained delta = %s, want 1 unchanged", chained.DeltaSummary)
	}

	// The artifact cache observed hits, and the metrics page reports them.
	if st := s.ArtifactStats(); st.EntityHits == 0 {
		t.Errorf("artifact cache saw no hits: %+v", st)
	}
	page := decode[MetricsPage](t, mustGet(t, ts.URL+"/metrics"))
	if page.Artifacts.EntityHits == 0 {
		t.Errorf("metrics page reports no artifact hits: %+v", page.Artifacts)
	}
	if page.Compositional.Verifications == 0 || page.Compositional.EntitiesReused == 0 {
		t.Errorf("compositional counters not recorded: %+v", page.Compositional)
	}
	if page.CompositionalReuseRatio <= 0 {
		t.Errorf("reuse ratio = %v, want > 0", page.CompositionalReuseRatio)
	}
	if ep, ok := page.Endpoints["deltaVerify"]; !ok || ep.Requests != 2 {
		t.Errorf("deltaVerify endpoint metrics = %+v", page.Endpoints["deltaVerify"])
	}
}

func TestDeltaVerifyUnknownBase(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/delta-verify", DeltaVerifyRequest{
		Base: SpecDigest("never seen"),
		Spec: validSpec,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestDeltaVerifyMissingBase(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/delta-verify", DeltaVerifyRequest{Spec: validSpec})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestDeltaVerifyCachedOnRepeat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := decode[VerifyResponse](t, postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Spec: validSpec}))
	req := DeltaVerifyRequest{Base: base.SpecDigest, Spec: editedSpec}
	first := decode[DeltaVerifyResponse](t, postJSON(t, ts.URL+"/v1/delta-verify", req))
	if first.Cached {
		t.Error("first delta-verify reported cached")
	}
	second := decode[DeltaVerifyResponse](t, postJSON(t, ts.URL+"/v1/delta-verify", req))
	if !second.Cached {
		t.Error("repeated delta-verify not served from cache")
	}
}

// TestSpecIndexBounded checks the digest index's LRU bound.
func TestSpecIndexBounded(t *testing.T) {
	ix := newSpecIndex(2)
	ix.put("a", "spec a")
	ix.put("b", "spec b")
	ix.put("c", "spec c")
	if ix.len() != 2 {
		t.Fatalf("index holds %d entries, capacity is 2", ix.len())
	}
	if _, ok := ix.get("a"); ok {
		t.Error("oldest entry survived past capacity")
	}
	if got, ok := ix.get("c"); !ok || got != "spec c" {
		t.Errorf("get(c) = %q, %v", got, ok)
	}
}
