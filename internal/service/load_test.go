package service

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// distinctSpec builds the i-th distinct two-place service of the load mix.
// The event *names* vary (letters only — trailing digits select the place).
func distinctSpec(i int) string {
	c := rune('a' + i%26)
	return fmt.Sprintf("SPEC ev%c1; ev%c2; exit ENDSPEC", c, c)
}

// TestLoadConcurrentClients is the PR's acceptance load test: at least 32
// concurrent clients post a mix of identical and distinct specs across all
// three computation endpoints plus async verify jobs, under -race. It
// asserts:
//
//   - identical in-flight requests collapse to one derivation
//     (deterministically: the first computation is parked in the
//     PreCompute hook until every other client is waiting on it);
//   - cached hits skip recomputation (cache misses == distinct
//     computation keys, exactly);
//   - /metrics request counters reconcile with the client-observed totals
//     per endpoint;
//   - async verify jobs complete and are retrievable by id.
func TestLoadConcurrentClients(t *testing.T) {
	const (
		clients       = 40
		distinctSpecs = 8
	)
	sharedSpec := "SPEC shared1; shared2; exit ENDSPEC"

	park := make(chan struct{})
	var first atomic.Bool
	s, ts := newTestServer(t, Config{
		PreCompute: func(kind, key string) {
			if first.CompareAndSwap(false, true) {
				<-park
			}
		},
	})

	// --- Phase 1: deterministic singleflight collapse --------------------
	// Every client posts the *same* spec. The first computation parks in
	// the hook (holding a worker slot); the release goroutine waits until
	// all other clients are registered as shared waiters, which proves the
	// collapse, then unparks it.
	var phase1 sync.WaitGroup
	for i := 0; i < clients; i++ {
		phase1.Add(1)
		go func() {
			defer phase1.Done()
			resp := postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: sharedSpec})
			out := decode[DeriveResponse](t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("phase 1 status %d", resp.StatusCode)
			}
			if len(out.Entities) != 2 {
				t.Errorf("phase 1 entities = %v", out.Entities)
			}
		}()
	}
	for s.CacheStats().SharedWaits < clients-1 {
		time.Sleep(time.Millisecond)
	}
	close(park)
	phase1.Wait()
	st := s.CacheStats()
	if st.Misses != 1 {
		t.Fatalf("phase 1: %d derivations for %d identical concurrent requests, want 1 (stats %+v)",
			st.Misses, clients, st)
	}
	if st.SharedWaits != clients-1 {
		t.Fatalf("phase 1: sharedWaits = %d, want %d", st.SharedWaits, clients-1)
	}

	// --- Phase 2: mixed load ---------------------------------------------
	// Each client: two derives of the (now cached) shared spec, one derive
	// of a distinct spec, one sync verify, one explore, one async verify
	// (same key as the sync verify) polled to completion.
	var (
		derivePosts, syncVerifyPosts, asyncVerifyPosts, explorePosts, jobPolls atomic.Uint64
		wg                                                                     sync.WaitGroup
	)
	vopts := VerifyRequestOptions{ObsDepth: 4}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := distinctSpec(i % distinctSpecs)

			for _, sp := range []string{sharedSpec, sharedSpec, spec} {
				resp := postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: sp})
				derivePosts.Add(1)
				if decode[DeriveResponse](t, resp); resp.StatusCode != http.StatusOK {
					t.Errorf("derive status %d", resp.StatusCode)
				}
			}

			// One compile-enabled derive: a distinct computation key (the
			// compile flag is part of the fingerprint) whose response must
			// carry a fully compiled two-entity fleet.
			resp := postJSON(t, ts.URL+"/v1/derive", DeriveRequest{
				Spec: spec, Options: DeriveRequestOptions{Compile: true},
			})
			derivePosts.Add(1)
			if out := decode[DeriveResponse](t, resp); resp.StatusCode != http.StatusOK ||
				out.Compile == nil || out.Compile.Compiled != 2 || out.Compile.Fallback != 0 {
				t.Errorf("compile derive status %d compile %+v", resp.StatusCode, out.Compile)
			}

			resp = postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Spec: spec, Options: vopts})
			syncVerifyPosts.Add(1)
			if out := decode[VerifyResponse](t, resp); resp.StatusCode != http.StatusOK || !out.Ok {
				t.Errorf("verify status %d", resp.StatusCode)
			}

			resp = postJSON(t, ts.URL+"/v1/explore", ExploreRequest{Spec: spec, ObsDepth: 4})
			explorePosts.Add(1)
			if out := decode[ExploreResponse](t, resp); resp.StatusCode != http.StatusOK || out.States == 0 {
				t.Errorf("explore status %d", resp.StatusCode)
			}

			resp = postJSON(t, ts.URL+"/v1/verify?async=1", VerifyRequest{Spec: spec, Options: vopts})
			asyncVerifyPosts.Add(1)
			acc := decode[JobAccepted](t, resp)
			if resp.StatusCode != http.StatusAccepted || acc.JobID == "" {
				t.Errorf("async accept status %d body %+v", resp.StatusCode, acc)
				return
			}
			deadline := time.Now().Add(30 * time.Second)
			for {
				jresp, err := http.Get(ts.URL + "/v1/jobs/" + acc.JobID)
				if err != nil {
					t.Error(err)
					return
				}
				jobPolls.Add(1)
				job := decode[Job](t, jresp)
				if job.State == JobDone {
					res, ok := job.Result.(map[string]any)
					if !ok || res["ok"] != true {
						t.Errorf("job %s result = %#v", acc.JobID, job.Result)
					}
					break
				}
				if job.State == JobFailed {
					t.Errorf("job %s failed: %s", acc.JobID, job.Error)
					break
				}
				if time.Now().After(deadline) {
					t.Errorf("job %s timed out in state %s", acc.JobID, job.State)
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()

	// --- Reconciliation ---------------------------------------------------
	// Distinct computation keys over the whole test: 1 shared derive +
	// 8 distinct derives + 8 compile-enabled derives (the compile flag is
	// part of the key) + 8 verifies (async shares the sync key) + 8 explores.
	wantKeys := uint64(1 + distinctSpecs + distinctSpecs + distinctSpecs + distinctSpecs)
	st = s.CacheStats()
	if st.Misses != wantKeys {
		t.Errorf("computations = %d, want %d (every repeat must hit cache or singleflight); stats %+v",
			st.Misses, wantKeys, st)
	}
	if st.Evictions != 0 {
		t.Errorf("unexpected evictions: %+v", st)
	}
	// Every cache lookup is one of hit/miss/shared: lookups happen for
	// each derive/sync-verify/explore POST (phase 1 and 2) and for each
	// async job execution (the async POST itself only enqueues).
	asyncJobs := asyncVerifyPosts.Load()
	lookups := uint64(clients) /* phase 1 */ + derivePosts.Load() +
		syncVerifyPosts.Load() + explorePosts.Load() + asyncJobs
	if got := st.Hits + st.Misses + st.SharedWaits; got != lookups {
		t.Errorf("cache outcomes %d (hits %d + misses %d + shared %d) != lookups %d",
			got, st.Hits, st.Misses, st.SharedWaits, lookups)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page := decode[MetricsPage](t, resp)
	for _, c := range []struct {
		endpoint string
		want     uint64
	}{
		{"derive", uint64(clients) + derivePosts.Load()},
		{"verify", syncVerifyPosts.Load() + asyncVerifyPosts.Load()},
		{"explore", explorePosts.Load()},
		{"jobs", jobPolls.Load()},
	} {
		ep := page.Endpoints[c.endpoint]
		if ep.Requests != c.want {
			t.Errorf("/metrics %s.requests = %d, client-observed %d", c.endpoint, ep.Requests, c.want)
		}
		if ep.Errors != 0 {
			t.Errorf("/metrics %s.errors = %d, want 0", c.endpoint, ep.Errors)
		}
		if ep.InFlight != 0 {
			t.Errorf("/metrics %s.inFlight = %d, want 0", c.endpoint, ep.InFlight)
		}
	}
	js := page.Jobs
	if js.Created != asyncJobs || js.Finished != asyncJobs || js.Failed != 0 {
		t.Errorf("job stats = %+v, want %d clean completions", js, asyncJobs)
	}
	// Compile counters record computed requests only: one per distinct
	// compile key, two compiled entities each, no interpreter fallbacks.
	if cc := page.Compile; cc.Requests != distinctSpecs ||
		cc.CompiledEntities != 2*distinctSpecs || cc.InterpretedEntities != 0 {
		t.Errorf("compile counters = %+v, want %d requests / %d compiled entities",
			cc, distinctSpecs, 2*distinctSpecs)
	}
}
