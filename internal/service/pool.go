package service

import (
	"context"
	"runtime"
	"sync"
)

// Pool is a bounded worker pool implemented as a counting semaphore with a
// queue: Acquire blocks until a slot frees or the caller's deadline
// expires. The daemon runs two pools — one for cheap derivations and
// explorations, one for expensive verifications — so a burst of heavy
// verify requests cannot starve the derive path.
type Pool struct {
	sem chan struct{}

	mu      sync.Mutex
	waiting int
	// timeouts counts Acquire calls abandoned by context expiry while
	// queued.
	timeouts uint64
}

// NewPool returns a pool with n slots (n <= 0 selects GOMAXPROCS).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Acquire takes a slot, blocking until one frees. It returns the context's
// error if the caller's deadline expires first.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	default:
	}
	p.mu.Lock()
	p.waiting++
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.waiting--
		p.mu.Unlock()
	}()
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		p.timeouts++
		p.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a slot taken by a successful Acquire.
func (p *Pool) Release() { <-p.sem }

// PoolStats is the JSON snapshot of a pool.
type PoolStats struct {
	Capacity int    `json:"capacity"`
	InUse    int    `json:"inUse"`
	Waiting  int    `json:"waiting"`
	Timeouts uint64 `json:"timeouts"`
}

// Stats returns a snapshot of the pool gauges.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Capacity: cap(p.sem),
		InUse:    len(p.sem),
		Waiting:  p.waiting,
		Timeouts: p.timeouts,
	}
}
