package service

import (
	"errors"
	"testing"
	"time"
)

func TestJobLifecycle(t *testing.T) {
	s := NewJobStore(time.Minute, 16)
	id := s.Create("verify")
	j, ok := s.Get(id)
	if !ok || j.State != JobQueued || j.Kind != "verify" || j.Created.IsZero() {
		t.Fatalf("after Create: %+v ok=%v", j, ok)
	}
	s.Start(id)
	if j, _ = s.Get(id); j.State != JobRunning || j.Started.IsZero() {
		t.Fatalf("after Start: %+v", j)
	}
	s.Finish(id, "result", nil)
	j, _ = s.Get(id)
	if j.State != JobDone || j.Result.(string) != "result" || j.Finished.IsZero() {
		t.Fatalf("after Finish: %+v", j)
	}
	// A second Finish must not overwrite the terminal state.
	s.Finish(id, nil, errors.New("late error"))
	if j, _ = s.Get(id); j.State != JobDone || j.Error != "" {
		t.Fatalf("terminal state overwritten: %+v", j)
	}
}

func TestJobFailure(t *testing.T) {
	s := NewJobStore(time.Minute, 16)
	id := s.Create("verify")
	s.Start(id)
	s.Finish(id, nil, errors.New("kaput"))
	j, _ := s.Get(id)
	if j.State != JobFailed || j.Error != "kaput" || j.Result != nil {
		t.Fatalf("failed job: %+v", j)
	}
	st := s.Stats()
	if st.Created != 1 || st.Finished != 1 || st.Failed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestJobUnknownID(t *testing.T) {
	s := NewJobStore(time.Minute, 16)
	if _, ok := s.Get("deadbeef"); ok {
		t.Error("unknown id found")
	}
	s.Start("deadbeef")          // must not panic
	s.Finish("deadbeef", 1, nil) // must not panic
}

func TestJobTTLEviction(t *testing.T) {
	s := NewJobStore(time.Minute, 16)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }

	done := s.Create("verify")
	s.Finish(done, "r", nil)
	running := s.Create("verify")
	s.Start(running)

	now = now.Add(2 * time.Minute)
	if _, ok := s.Get(done); ok {
		t.Error("terminal job survived past its TTL")
	}
	if _, ok := s.Get(running); !ok {
		t.Error("running job was evicted by TTL")
	}
	if st := s.Stats(); st.Evicted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestJobPopulationCap(t *testing.T) {
	s := NewJobStore(time.Hour, 4)
	var terminal []string
	for i := 0; i < 4; i++ {
		id := s.Create("verify")
		s.Finish(id, i, nil)
		terminal = append(terminal, id)
	}
	live := s.Create("verify") // 5th job: oldest terminal is evicted
	if _, ok := s.Get(terminal[0]); ok {
		t.Error("oldest terminal job survived the cap")
	}
	for _, id := range terminal[1:] {
		if _, ok := s.Get(id); !ok {
			t.Errorf("job %s evicted although the cap allowed it", id)
		}
	}
	if _, ok := s.Get(live); !ok {
		t.Error("new job missing")
	}
}

func TestJobIDsAreUnique(t *testing.T) {
	s := NewJobStore(time.Hour, 4096)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := s.Create("x")
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}
