package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"

	protoderive "repro"
)

// SpecDigest is the content address of one normalized service specification:
// the hex SHA-256 of its pretty-printed form. Verify responses carry it so a
// client can later reference the spec as a delta-verify base without
// resubmitting it.
func SpecDigest(normalizedSpec string) string {
	sum := sha256.Sum256([]byte(normalizedSpec))
	return hex.EncodeToString(sum[:])
}

// specEntry is one digest -> normalized-spec binding.
type specEntry struct {
	digest string
	spec   string
}

// specIndex is the daemon's bounded digest -> normalized-spec store. Every
// spec that passes through /v1/derive, /v1/verify or /v1/delta-verify is
// recorded, so a client can delta-verify against any spec the daemon has
// recently seen by digest alone.
type specIndex struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *specEntry
	entries map[string]*list.Element
}

// defaultSpecIndexEntries bounds the spec index when the configuration
// leaves it unset.
const defaultSpecIndexEntries = 4096

func newSpecIndex(cap int) *specIndex {
	if cap <= 0 {
		cap = defaultSpecIndexEntries
	}
	return &specIndex{cap: cap, ll: list.New(), entries: map[string]*list.Element{}}
}

func (ix *specIndex) put(digest, spec string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if el, ok := ix.entries[digest]; ok {
		ix.ll.MoveToFront(el)
		return
	}
	ix.entries[digest] = ix.ll.PushFront(&specEntry{digest: digest, spec: spec})
	for ix.ll.Len() > ix.cap {
		oldest := ix.ll.Back()
		ix.ll.Remove(oldest)
		delete(ix.entries, oldest.Value.(*specEntry).digest)
	}
}

func (ix *specIndex) get(digest string) (string, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	el, ok := ix.entries[digest]
	if !ok {
		return "", false
	}
	ix.ll.MoveToFront(el)
	return el.Value.(*specEntry).spec, true
}

func (ix *specIndex) len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.ll.Len()
}

// DeltaVerifyRequest is the body of POST /v1/delta-verify: re-verify an
// edited specification against a base the daemon has already seen, reusing
// the cached per-entity artifacts of every unchanged place.
type DeltaVerifyRequest struct {
	// Base is the SpecDigest of the base specification (returned as
	// specDigest by an earlier /v1/verify or /v1/delta-verify response).
	Base string `json:"base"`
	// Spec is the edited specification source.
	Spec string `json:"spec"`
	// Options are the verification options. Compositional is implied.
	Options VerifyRequestOptions `json:"options"`
}

// DeltaVerifyResponse is the body of a successful delta verification: the
// full verify verdict for the edited spec plus the entity-level delta
// against the base.
type DeltaVerifyResponse struct {
	VerifyResponse
	// BaseDigest echoes the base the delta was computed against.
	BaseDigest string `json:"baseDigest"`
	// Delta is the per-place difference of normalized entity behaviours:
	// Unchanged places reuse cached artifacts, Changed/Added re-derive.
	Delta protoderive.EntityDelta `json:"delta"`
	// DeltaSummary renders the delta compactly ("3 unchanged, changed: [2]").
	DeltaSummary string `json:"deltaSummary"`
}

func (s *Server) handleDeltaVerify(w http.ResponseWriter, r *http.Request) int {
	var req DeltaVerifyRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		return writeError(w, err)
	}
	if req.Base == "" {
		return writeError(w, badRequestError{fmt.Errorf("missing base spec digest")})
	}
	baseSpec, ok := s.specs.get(req.Base)
	if !ok {
		return writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error: "unknown base digest: verify or derive the base spec on this daemon first",
		})
	}
	svc, err := protoderive.ParseService(req.Spec)
	if err != nil {
		return writeError(w, err)
	}
	if _, err := req.Options.faultModels(); err != nil {
		return writeError(w, err)
	}
	// Delta verification is compositional by construction: the whole point
	// is recalling the base's entity artifacts for the unchanged places.
	req.Options.Compositional = true
	normalized := svc.String()
	s.specs.put(SpecDigest(normalized), normalized)

	key := CacheKey("delta-verify", req.Base+"\x00"+normalized, req.Options.fingerprint())
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SyncDeadline)
	defer cancel()
	val, outcome, err := s.compute(ctx, s.verifyPool, "deltaVerify", key, func() (any, error) {
		return s.deltaVerifyResponse(req.Base, baseSpec, svc, req.Options)
	})
	if err != nil {
		return writeError(w, err)
	}
	resp := *(val.(*DeltaVerifyResponse))
	resp.Cached = outcome != OutcomeComputed
	return writeJSON(w, http.StatusOK, resp)
}

// deltaVerifyResponse computes one delta verification: derive both sides,
// diff the normalized entity behaviours, then verify the edited side
// compositionally through the daemon's shared artifact cache — unchanged
// entities are recalled, changed ones rebuilt.
func (s *Server) deltaVerifyResponse(baseDigest, baseSpec string, svc *protoderive.Service, opts VerifyRequestOptions) (*DeltaVerifyResponse, error) {
	baseSvc, err := protoderive.ParseService(baseSpec)
	if err != nil {
		return nil, fmt.Errorf("stored base spec no longer parses: %w", err)
	}
	baseProto, err := baseSvc.DeriveWithOptions(opts.facade())
	if err != nil {
		return nil, fmt.Errorf("base spec: %w", err)
	}
	editedProto, err := svc.DeriveWithOptions(opts.facade())
	if err != nil {
		return nil, err
	}
	delta := protoderive.DiffProtocols(baseProto, editedProto)

	vresp, err := s.verifyResponse(svc, opts, nil)
	if err != nil {
		return nil, err
	}
	return &DeltaVerifyResponse{
		VerifyResponse: *vresp,
		BaseDigest:     baseDigest,
		Delta:          delta,
		DeltaSummary:   delta.String(),
	}, nil
}
