package service

import (
	"net/http"
	"testing"
)

// TestVerifyFaultMatrixEndpoint: a verify request with fault models returns
// one matrix cell per model, and every failed cell carries a replayable
// counterexample.
func TestVerifyFaultMatrixEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		Spec:    validSpec,
		Options: VerifyRequestOptions{Faults: []string{"loss", "dup"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[VerifyResponse](t, resp)
	if !out.Ok {
		t.Fatalf("reliable verdict not conformant: %s", out.Summary)
	}
	if len(out.FaultMatrix) != 2 {
		t.Fatalf("fault matrix has %d cells, want 2", len(out.FaultMatrix))
	}
	loss := out.FaultMatrix[0]
	if loss.Faults != "loss" {
		t.Errorf("cell 0 faults = %q, want loss", loss.Faults)
	}
	if loss.Ok {
		t.Error("loss cell reports conformance for a protocol with no retransmission")
	}
	if loss.Witness == nil {
		t.Fatal("failed loss cell carries no witness")
	}
	if len(loss.Witness.Steps) == 0 || loss.Witness.Kind == "" {
		t.Errorf("witness incomplete: kind=%q steps=%d", loss.Witness.Kind, len(loss.Witness.Steps))
	}
	if dup := out.FaultMatrix[1]; dup.Faults != "dup" {
		t.Errorf("cell 1 faults = %q, want dup", dup.Faults)
	}
}

// TestVerifyRejectsUnknownFaultModel: validation happens before the cache is
// consulted, so a bad model name is a 400, not a cached junk entry.
func TestVerifyRejectsUnknownFaultModel(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		Spec:    validSpec,
		Options: VerifyRequestOptions{Faults: []string{"gremlins"}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	out := decode[ErrorResponse](t, resp)
	if out.Error == "" {
		t.Error("error body empty")
	}
	if st := s.CacheStats(); st.Misses != 0 {
		t.Errorf("invalid request touched the cache: %+v", st)
	}
}

// TestVerifyFaultFingerprintsNeverCollide: distinct fault configurations
// yield distinct cache keys, while spelling variants of the same
// configuration share one.
func TestVerifyFaultFingerprintsNeverCollide(t *testing.T) {
	configs := [][]string{
		nil,
		{"loss"},
		{"dup"},
		{"reorder"},
		{"loss", "dup"},
		{"loss", "dup", "reorder"},
		{"loss+dup"},
		{"loss+dup+reorder"},
	}
	seen := map[string][]string{}
	for _, faults := range configs {
		opts := VerifyRequestOptions{Faults: faults}
		key := CacheKey("verify", validSpec, opts.fingerprint())
		if prev, dup := seen[key]; dup {
			t.Errorf("fault configs %v and %v collide on cache key %s", prev, faults, key)
		}
		seen[key] = faults
	}

	// Canonicalization: spelling variants and duplicates share the key.
	base := CacheKey("verify", validSpec, VerifyRequestOptions{Faults: []string{"dup"}}.fingerprint())
	for _, variant := range [][]string{{"duplication"}, {"DUP"}, {" dup "}, {"dup", "duplication"}} {
		if got := CacheKey("verify", validSpec, VerifyRequestOptions{Faults: variant}.fingerprint()); got != base {
			t.Errorf("variant %v does not share the canonical dup cache key", variant)
		}
	}

	// A fault request never collides with the same request without faults.
	plain := CacheKey("verify", validSpec, VerifyRequestOptions{}.fingerprint())
	withFaults := CacheKey("verify", validSpec, VerifyRequestOptions{Faults: []string{"loss"}}.fingerprint())
	if plain == withFaults {
		t.Error("faulted and fault-free verify requests share a cache key")
	}
}

// TestVerifyFaultConfigsSeparateCacheEntries: end to end, distinct fault
// configurations are distinct cache entries and canonical variants hit.
func TestVerifyFaultConfigsSeparateCacheEntries(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	post := func(faults ...string) VerifyResponse {
		return decode[VerifyResponse](t, postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
			Spec:    validSpec,
			Options: VerifyRequestOptions{Faults: faults},
		}))
	}
	if out := post("loss"); out.Cached {
		t.Error("first loss request reported cached")
	}
	if out := post("dup"); out.Cached {
		t.Error("dup request hit the loss entry")
	}
	if out := post("duplication"); !out.Cached {
		t.Error("canonical variant 'duplication' missed the 'dup' entry")
	}
	if st := s.CacheStats(); st.Misses != 2 || st.Hits != 1 {
		t.Errorf("cache stats = %+v, want 2 misses 1 hit", st)
	}
}
