package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event of the job progress stream.
type sseEvent struct {
	Name string
	Data string
}

// readSSE parses a complete SSE stream (until EOF), skipping keepalive
// comment lines.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	defer resp.Body.Close()
	var (
		out []sseEvent
		cur sseEvent
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "event: "):
			cur.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.Name != "" || cur.Data != "" {
				out = append(out, cur)
				cur = sseEvent{}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return out
}

// TestJobEventsStream runs an async verification with a fault matrix and
// asserts the SSE stream carries the full lifecycle — queued, running, one
// progress event per phase (derive, reliable verify, each fault cell),
// done — and finishes with an explicit end event.
func TestJobEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{SSEKeepalive: 10 * time.Millisecond})
	resp := postJSON(t, ts.URL+"/v1/verify?async=1", VerifyRequest{
		Spec:    "SPEC evta1; evtb2; exit ENDSPEC",
		Options: VerifyRequestOptions{ObsDepth: 4, Faults: []string{"loss", "dup"}},
	})
	acc := decode[JobAccepted](t, resp)
	if resp.StatusCode != http.StatusAccepted || acc.JobID == "" {
		t.Fatalf("accept status %d body %+v", resp.StatusCode, acc)
	}

	sresp, err := http.Get(ts.URL + "/v1/jobs/" + acc.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type %q", ct)
	}
	events := readSSE(t, sresp)

	var states, progress []string
	endReason := ""
	for _, ev := range events {
		var body struct {
			State   string `json:"state"`
			Message string `json:"message"`
			Reason  string `json:"reason"`
		}
		if err := json.Unmarshal([]byte(ev.Data), &body); err != nil {
			t.Fatalf("event %q data %q: %v", ev.Name, ev.Data, err)
		}
		switch ev.Name {
		case "state":
			states = append(states, body.State)
		case "progress":
			progress = append(progress, body.Message)
		case "end":
			endReason = body.Reason
		default:
			t.Errorf("unexpected event name %q", ev.Name)
		}
	}
	// The subscriber may attach at any point of the job's life: replayed
	// history makes the full sequence visible regardless.
	if want := []string{"queued", "running", "done"}; fmt.Sprint(states) != fmt.Sprint(want) {
		t.Errorf("states = %v, want %v", states, want)
	}
	wantProgress := []string{"derive", "verify reliable", "verify faults=loss", "verify faults=dup"}
	if fmt.Sprint(progress) != fmt.Sprint(wantProgress) {
		t.Errorf("progress = %v, want %v", progress, wantProgress)
	}
	if endReason != "done" {
		t.Errorf("end reason = %q, want done", endReason)
	}

	// Late subscriber: the job is terminal, the stream replays the whole
	// history and ends immediately.
	sresp, err = http.Get(ts.URL + "/v1/jobs/" + acc.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if replay := readSSE(t, sresp); len(replay) != len(events) {
		t.Errorf("replayed %d events, want %d", len(replay), len(events))
	}
}

// TestJobEventsFailed asserts a failing job streams a failed state carrying
// the error and ends with reason "failed".
func TestJobEventsFailed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/verify?async=1", VerifyRequest{
		// Grammatical but violating the service restrictions: parse
		// succeeds (job accepted), derivation fails.
		Spec: "SPEC a1; exit [] a1; stop ENDSPEC",
	})
	if resp.StatusCode != http.StatusAccepted {
		acc := decode[ErrorResponse](t, resp)
		t.Skipf("spec rejected at submit (%+v); restriction caught at parse", acc)
	}
	acc := decode[JobAccepted](t, resp)
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + acc.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, sresp)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	last := events[len(events)-1]
	if last.Name != "end" || !strings.Contains(last.Data, "failed") {
		t.Errorf("last event = %+v, want end/failed", last)
	}
}

// TestJobEventsUnknownJob asserts the events endpoint 404s for unknown ids.
func TestJobEventsUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/doesnotexist/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

// TestSubscribeEvictedWhileAttached pins the eviction contract at the store
// level: a subscriber attached to a finished job has its channel closed
// when the TTL sweep evicts the job under it.
func TestSubscribeEvictedWhileAttached(t *testing.T) {
	store := NewJobStore(time.Minute, 8)
	clock := time.Unix(1000, 0)
	store.now = func() time.Time { return clock }

	id := store.Create("verify")
	store.Start(id)
	past, ch, cancel, ok := store.Subscribe(id)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer cancel()
	if len(past) != 2 {
		t.Fatalf("past = %+v, want queued+running", past)
	}
	store.Publish(id, "derive")
	store.Finish(id, "result", nil)

	// Advance past the TTL; any store access sweeps.
	clock = clock.Add(2 * time.Minute)
	if _, ok := store.Get(id); ok {
		t.Fatal("job survived the TTL sweep")
	}

	var got []JobEvent
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, open := <-ch:
			if !open {
				if len(got) != 2 || got[0].Message != "derive" || got[1].State != JobDone {
					t.Fatalf("events before close = %+v", got)
				}
				if _, _, _, ok := store.Subscribe(id); ok {
					t.Fatal("evicted job still subscribable")
				}
				return
			}
			got = append(got, ev)
		case <-deadline:
			t.Fatalf("channel not closed by eviction; got %+v", got)
		}
	}
}

// TestJobStoreChurn hammers one store from many goroutines — creators
// running the full lifecycle, pollers, subscribers draining streams, and a
// clock racing the TTL sweep — under -race. It asserts nothing deadlocks,
// every subscriber's channel terminates (close or terminal event), and the
// counters reconcile.
func TestJobStoreChurn(t *testing.T) {
	store := NewJobStore(time.Millisecond, 32)

	const (
		creators = 8
		rounds   = 40
	)
	var (
		wg  sync.WaitGroup
		ids sync.Map // id -> struct{}
	)
	for c := 0; c < creators; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < rounds; i++ {
				id := store.Create("verify")
				ids.Store(id, struct{}{})
				store.Start(id)
				store.Publish(id, "derive")
				if rng.Intn(4) == 0 {
					store.Finish(id, nil, fmt.Errorf("synthetic"))
				} else {
					store.Finish(id, map[string]any{"ok": true}, nil)
				}
				if rng.Intn(2) == 0 {
					time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				}
			}
		}(c)
	}
	// Pollers: Get/Stats trigger sweeps concurrently with everything else.
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ids.Range(func(k, _ any) bool {
					store.Get(k.(string))
					return true
				})
				store.Stats()
			}
		}()
	}
	// Subscribers: attach to whatever exists, drain until close or a
	// terminal event, and bail out via cancel half the time.
	for sub := 0; sub < 4; sub++ {
		wg.Add(1)
		go func(sub int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + sub)))
			for i := 0; i < 200; i++ {
				var target string
				ids.Range(func(k, _ any) bool {
					target = k.(string)
					return rng.Intn(3) != 0
				})
				if target == "" {
					continue
				}
				past, ch, cancel, ok := store.Subscribe(target)
				if !ok {
					continue
				}
				if rng.Intn(2) == 0 {
					cancel()
					continue
				}
				terminal := false
				for _, ev := range past {
					if ev.State == JobDone || ev.State == JobFailed {
						terminal = true
					}
				}
				if terminal {
					// Already finished: nothing further is guaranteed to
					// arrive before eviction closes the channel, and no
					// sweeper may be left running by then.
					cancel()
					continue
				}
				timeout := time.After(5 * time.Second)
			drain:
				for {
					select {
					case ev, open := <-ch:
						if !open || ev.State == JobDone || ev.State == JobFailed {
							break drain
						}
					case <-timeout:
						t.Error("subscriber stuck: channel neither closed nor terminal")
						break drain
					}
				}
				cancel()
			}
		}(sub)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Creators finish first; let pollers spin a moment longer over the
	// draining population, then stop them.
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(stop)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("churn did not settle")
	}

	st := store.Stats()
	want := uint64(creators * rounds)
	if st.Created != want || st.Finished != want {
		t.Errorf("stats = %+v, want %d created+finished", st, want)
	}
	if st.Live > 32 {
		t.Errorf("live jobs %d exceed the cap", st.Live)
	}
}
