package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCacheKeyNormalization(t *testing.T) {
	a := CacheKey("derive", "SPEC a1; exit ENDSPEC", "opts")
	b := CacheKey("derive", "SPEC a1; exit ENDSPEC", "opts")
	if a != b {
		t.Error("identical inputs produced different keys")
	}
	if CacheKey("verify", "SPEC a1; exit ENDSPEC", "opts") == a {
		t.Error("kind does not separate key spaces")
	}
	if CacheKey("derive", "SPEC a1; exit ENDSPEC", "other") == a {
		t.Error("fingerprint does not separate key spaces")
	}
	// The separator byte must prevent boundary ambiguity.
	if CacheKey("a", "bc", "d") == CacheKey("ab", "c", "d") {
		t.Error("component boundaries are ambiguous")
	}
}

func TestCacheHitSkipsRecomputation(t *testing.T) {
	c := NewCache(8)
	ctx := context.Background()
	computes := 0
	compute := func() (any, error) { computes++; return 42, nil }
	v, outcome, err := c.Do(ctx, "k", compute)
	if err != nil || v.(int) != 42 || outcome != OutcomeComputed {
		t.Fatalf("first Do: v=%v outcome=%v err=%v", v, outcome, err)
	}
	v, outcome, err = c.Do(ctx, "k", compute)
	if err != nil || v.(int) != 42 || outcome != OutcomeHit {
		t.Fatalf("second Do: v=%v outcome=%v err=%v", v, outcome, err)
	}
	if computes != 1 {
		t.Errorf("computed %d times, want 1", computes)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCacheSingleflightCollapse deterministically pins the collapse: the
// first computation parks until every concurrent caller for the same key
// is known to be waiting on it, then completes; every caller must get the
// one computed value and exactly one computation must have run.
func TestCacheSingleflightCollapse(t *testing.T) {
	const waiters = 16
	c := NewCache(8)
	ctx := context.Background()
	gate := make(chan struct{})
	computes := 0

	results := make(chan int, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, err := c.Do(ctx, "k", func() (any, error) {
			computes++
			<-gate
			return 7, nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		results <- v.(int)
	}()

	// Wait for the computation to be registered, then pile on the waiters.
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, outcome, err := c.Do(ctx, "k", func() (any, error) {
				t.Error("a waiter ran its own computation")
				return nil, nil
			})
			if err != nil || outcome != OutcomeShared {
				t.Errorf("waiter: outcome=%v err=%v", outcome, err)
				return
			}
			results <- v.(int)
		}()
	}
	// All waiters must be parked on the in-flight call before it finishes.
	for c.Stats().SharedWaits != waiters {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(results)
	n := 0
	for v := range results {
		n++
		if v != 7 {
			t.Errorf("result %d, want 7", v)
		}
	}
	if n != waiters+1 {
		t.Errorf("%d results, want %d", n, waiters+1)
	}
	if computes != 1 {
		t.Errorf("%d computations, want 1", computes)
	}
}

func TestCacheErrorsAreNotCached(t *testing.T) {
	c := NewCache(8)
	ctx := context.Background()
	boom := errors.New("boom")
	_, _, err := c.Do(ctx, "k", func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("errored computation was cached: %+v", st)
	}
	v, outcome, err := c.Do(ctx, "k", func() (any, error) { return 1, nil })
	if err != nil || v.(int) != 1 || outcome != OutcomeComputed {
		t.Fatalf("retry after error: v=%v outcome=%v err=%v", v, outcome, err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	ctx := context.Background()
	put := func(k string) {
		if _, _, err := c.Do(ctx, k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	put("a") // refresh a: b is now least recently used
	put("c") // evicts b
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	recomputed := false
	c.Do(ctx, "b", func() (any, error) { recomputed = true; return "b", nil })
	if !recomputed {
		t.Error("evicted key was still cached")
	}
	// Re-inserting b evicted the then-LRU "a"; "c" must still be resident.
	if _, outcome, _ := c.Do(ctx, "c", func() (any, error) { return nil, nil }); outcome != OutcomeHit {
		t.Error("recently used key was evicted")
	}
}

func TestCacheSharedWaiterHonorsContext(t *testing.T) {
	c := NewCache(8)
	gate := make(chan struct{})
	go c.Do(context.Background(), "k", func() (any, error) {
		<-gate
		return 1, nil
	})
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, outcome, err := c.Do(ctx, "k", func() (any, error) { return nil, nil })
	if !errors.Is(err, context.DeadlineExceeded) || outcome != OutcomeShared {
		t.Errorf("outcome=%v err=%v, want shared wait aborted by deadline", outcome, err)
	}
	close(gate)
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(128)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := fmt.Sprintf("k%d", i%8)
			v, _, err := c.Do(ctx, k, func() (any, error) { return k, nil })
			if err != nil || v.(string) != k {
				t.Errorf("k=%s v=%v err=%v", k, v, err)
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 8 {
		t.Errorf("misses = %d, want 8 (one per distinct key)", st.Misses)
	}
	if st.Hits+st.Misses+st.SharedWaits != 64 {
		t.Errorf("outcomes do not add up: %+v", st)
	}
}
