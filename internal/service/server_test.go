package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

const validSpec = "SPEC a1; b2; exit ENDSPEC"

// r1ViolationSpec violates R1: the choice is not decided at one place.
const r1ViolationSpec = "SPEC a1; exit [] b2; exit ENDSPEC"

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return out
}

func TestDeriveEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: validSpec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[DeriveResponse](t, resp)
	if out.Cached {
		t.Error("first request reported cached")
	}
	if len(out.Places) != 2 || out.Places[0] != 1 || out.Places[1] != 2 {
		t.Errorf("places = %v", out.Places)
	}
	for _, p := range []string{"1", "2"} {
		if !strings.Contains(out.Entities[p], "SPEC") {
			t.Errorf("entity %s missing or not a spec: %q", p, out.Entities[p])
		}
	}
	if out.MessageCount != out.Complexity.Total() {
		t.Errorf("messageCount %d != complexity total %d", out.MessageCount, out.Complexity.Total())
	}
	if out.Attributes == "" {
		t.Error("attributes table empty")
	}
}

func TestDeriveCachedOnRepeat(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: validSpec}).Body.Close()
	out := decode[DeriveResponse](t, postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: validSpec}))
	if !out.Cached {
		t.Error("repeat request not served from cache")
	}
	// Normalization: extra whitespace, a comment and redundant parentheses
	// must hit the same content-addressed entry.
	variant := "SPEC  a1;\n ( b2; exit ) -- same spec\nENDSPEC"
	out = decode[DeriveResponse](t, postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: variant}))
	if !out.Cached {
		t.Error("textually different but structurally identical spec missed the cache")
	}
	st := s.CacheStats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("cache stats = %+v", st)
	}
}

func TestDeriveOptionsSeparateCacheEntries(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: validSpec}).Body.Close()
	out := decode[DeriveResponse](t, postJSON(t, ts.URL+"/v1/derive", DeriveRequest{
		Spec: validSpec, Options: DeriveRequestOptions{KeepRedundant: true},
	}))
	if out.Cached {
		t.Error("different options served the same cache entry")
	}
	if st := s.CacheStats(); st.Misses != 2 {
		t.Errorf("cache stats = %+v", st)
	}
}

func TestDeriveSyntaxErrorHasPosition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: "SPEC a1; exit\n[]\nENDSPEC"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[ErrorResponse](t, resp)
	if out.Error == "" || out.Line < 2 {
		t.Errorf("error response = %+v, want message and line >= 2", out)
	}
}

func TestDeriveRestrictionViolationHasRule(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: r1ViolationSpec})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[ErrorResponse](t, resp)
	if out.Rule != "R1" {
		t.Errorf("error response = %+v, want rule R1", out)
	}
}

func TestDeriveRejectsBadBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})
	for _, c := range []struct {
		name   string
		body   string
		status int
	}{
		{"not json", "🤖", http.StatusBadRequest},
		{"unknown field", `{"spec":"x","bogus":1}`, http.StatusBadRequest},
		{"oversized", `{"spec":"` + strings.Repeat("a", 4096) + `"}`, http.StatusRequestEntityTooLarge},
	} {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/derive", "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != c.status {
				t.Errorf("status %d, want %d", resp.StatusCode, c.status)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/derive")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/derive: status %d", resp.StatusCode)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		Spec:    validSpec,
		Options: VerifyRequestOptions{ObsDepth: 6},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[VerifyResponse](t, resp)
	if !out.Ok || !out.TracesEqual || out.Deadlocks != 0 {
		t.Errorf("verify verdict = %+v", out)
	}
	if out.ServiceStates == 0 || out.ComposedStates == 0 || out.Summary == "" {
		t.Errorf("exploration sizes missing: %+v", out)
	}
}

// TestVerifyEquivStatsInMetrics asserts the equivalence-engine counters:
// a complete verification carries its per-check stats in the response, the
// /metrics aggregate records it exactly once, and a cache hit does not
// re-count.
func TestVerifyEquivStatsInMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	out := decode[VerifyResponse](t, postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Spec: validSpec}))
	if !out.Complete {
		t.Fatalf("expected complete verification: %+v", out)
	}
	if out.Equiv == nil {
		t.Fatal("complete verification carries no equiv stats")
	}
	if out.Equiv.States == 0 || out.Equiv.TauSCCs == 0 || out.Equiv.SaturationEdges == 0 ||
		out.Equiv.RefinementRounds == 0 || out.Equiv.Blocks == 0 {
		t.Errorf("equiv stats have zero counters: %+v", *out.Equiv)
	}

	// Repeat (cache hit) and then snapshot the aggregate.
	decode[VerifyResponse](t, postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Spec: validSpec}))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page := decode[MetricsPage](t, resp)
	eq := page.Equiv
	if eq.Checks != 1 {
		t.Errorf("aggregate checks = %d, want 1 (cache hit must not re-count)", eq.Checks)
	}
	if eq.TauSCCs != uint64(out.Equiv.TauSCCs) || eq.SaturationEdges != uint64(out.Equiv.SaturationEdges) ||
		eq.RefinementRounds != uint64(out.Equiv.RefinementRounds) {
		t.Errorf("aggregate %+v does not match per-check stats %+v", eq, *out.Equiv)
	}
	if eq.SaturateMS < 0 || eq.RefineMS < 0 {
		t.Errorf("negative phase times: %+v", eq)
	}
}

// TestDeriveCompileOption asserts the FSM-compilation surface of
// /v1/derive: the compile option returns per-entity state/transition
// counts, distinguishes the cache key, records the /metrics aggregate
// exactly once, and a cache hit does not re-count.
func TestDeriveCompileOption(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Plain derive first: compile must not share its cache entry.
	postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: validSpec}).Body.Close()
	out := decode[DeriveResponse](t, postJSON(t, ts.URL+"/v1/derive", DeriveRequest{
		Spec: validSpec, Options: DeriveRequestOptions{Compile: true},
	}))
	if out.Cached {
		t.Error("compile request served the non-compile cache entry")
	}
	if out.Compile == nil {
		t.Fatal("compile requested but response carries no report")
	}
	rep := out.Compile
	if rep.Compiled != len(out.Places) || rep.Fallback != 0 {
		t.Fatalf("compile report = %+v, want all %d entities compiled", rep, len(out.Places))
	}
	for _, e := range rep.Entities {
		if !e.Compiled || e.States == 0 || e.Transitions == 0 || e.MinStates == 0 {
			t.Errorf("entity %d report %+v, want nonzero table sizes", e.Place, e)
		}
		if e.MinStates > e.States || e.MinTransitions > e.Transitions {
			t.Errorf("entity %d minimized larger than exact: %+v", e.Place, e)
		}
	}

	// Repeat (cache hit) and then snapshot the aggregate.
	again := decode[DeriveResponse](t, postJSON(t, ts.URL+"/v1/derive", DeriveRequest{
		Spec: validSpec, Options: DeriveRequestOptions{Compile: true},
	}))
	if !again.Cached || again.Compile == nil {
		t.Errorf("repeat compile request: cached=%t report=%v", again.Cached, again.Compile)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page := decode[MetricsPage](t, resp)
	cm := page.Compile
	if cm.Requests != 1 {
		t.Errorf("aggregate compile requests = %d, want 1 (cache hit must not re-count)", cm.Requests)
	}
	if cm.CompiledEntities != uint64(rep.Compiled) || cm.InterpretedEntities != 0 {
		t.Errorf("aggregate %+v does not match report %+v", cm, rep)
	}
	if cm.States == 0 || cm.Transitions == 0 {
		t.Errorf("aggregate table sizes zero: %+v", cm)
	}
}

// TestDeriveCompileFallback asserts that an entity whose state space
// exceeds the cap is reported as an interpreter fallback (with the
// overflow reason), not an error, and counts on the interpreted side of
// the /metrics aggregate.
func TestDeriveCompileFallback(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := "SPEC A WHERE PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END ENDSPEC"
	out := decode[DeriveResponse](t, postJSON(t, ts.URL+"/v1/derive", DeriveRequest{
		Spec: src, Options: DeriveRequestOptions{Compile: true, CompileMaxStates: 256},
	}))
	if out.Compile == nil {
		t.Fatal("compile requested but response carries no report")
	}
	rep := out.Compile
	if rep.Fallback == 0 {
		t.Fatalf("compile report = %+v, want interpreter fallbacks for unbounded entities", rep)
	}
	if rep.MaxStates != 256 {
		t.Errorf("report cap = %d, want 256", rep.MaxStates)
	}
	sawError := false
	for _, e := range rep.Entities {
		if !e.Compiled && e.Error != "" {
			sawError = true
		}
	}
	if !sawError {
		t.Errorf("no fallback entity carries an overflow reason: %+v", rep.Entities)
	}
	page := decode[MetricsPage](t, mustGet(t, ts.URL+"/metrics"))
	if page.Compile.InterpretedEntities != uint64(rep.Fallback) {
		t.Errorf("aggregate interpreted = %d, want %d", page.Compile.InterpretedEntities, rep.Fallback)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestVerifyParallelMatchesSerial(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	serial := decode[VerifyResponse](t, postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		Spec: validSpec, Options: VerifyRequestOptions{ObsDepth: 6},
	}))
	par := decode[VerifyResponse](t, postJSON(t, ts.URL+"/v1/verify", VerifyRequest{
		Spec: validSpec, Options: VerifyRequestOptions{ObsDepth: 6, Parallel: true, Workers: 4},
	}))
	if par.Cached {
		t.Error("parallel options shared the serial cache entry")
	}
	if serial.Ok != par.Ok || serial.ComposedStates != par.ComposedStates {
		t.Errorf("serial %+v vs parallel %+v", serial, par)
	}
}

func TestVerifyAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/verify?async=1", VerifyRequest{
		Spec: validSpec, Options: VerifyRequestOptions{ObsDepth: 6},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	acc := decode[JobAccepted](t, resp)
	if acc.JobID == "" || acc.Poll != "/v1/jobs/"+acc.JobID {
		t.Fatalf("accepted = %+v", acc)
	}
	job := pollJob(t, ts.URL, acc.JobID, 10*time.Second)
	if job.State != JobDone {
		t.Fatalf("job = %+v", job)
	}
	// The result round-trips through JSON as a map; spot-check the verdict.
	res, ok := job.Result.(map[string]any)
	if !ok || res["ok"] != true {
		t.Errorf("job result = %#v", job.Result)
	}
}

func pollJob(t *testing.T, base, id string, timeout time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		job := decode[Job](t, resp)
		if job.State == JobDone || job.State == JobFailed {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, job.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestVerifyAsyncFailedJobReportsError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Valid service whose *derivation* fails under the 1986 dialect
	// restriction (process instantiation is not in the 1986 subset), so the
	// failure happens inside the job.
	acc := decode[JobAccepted](t, postJSON(t, ts.URL+"/v1/verify?async=1", VerifyRequest{
		Spec:    "SPEC A WHERE PROC A = a1; b2; A [] c1; exit END ENDSPEC",
		Options: VerifyRequestOptions{DeriveRequestOptions: DeriveRequestOptions{Dialect1986: true}},
	}))
	job := pollJob(t, ts.URL, acc.JobID, 10*time.Second)
	if job.State != JobFailed || job.Error == "" {
		t.Errorf("job = %+v, want failed with error", job)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestExploreEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/explore", ExploreRequest{Spec: validSpec, ObsDepth: 4, Traces: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[ExploreResponse](t, resp)
	if out.States < 3 || out.Transitions < 2 {
		t.Errorf("explore report = %+v", out)
	}
	found := false
	for _, tr := range out.Traces {
		if strings.Contains(tr, "a1") && strings.Contains(tr, "b2") {
			found = true
		}
	}
	if !found {
		t.Errorf("traces %v missing a1..b2", out.Traces)
	}
}

func TestExploreAcceptsNonServiceSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Violates R1, so /v1/derive rejects it — but it is a perfectly
	// explorable behaviour expression.
	resp := postJSON(t, ts.URL+"/v1/explore", ExploreRequest{Spec: r1ViolationSpec, ObsDepth: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out := decode[ExploreResponse](t, resp); out.States == 0 {
		t.Errorf("report = %+v", out)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[Health](t, resp)
	if out.Status != "ok" || out.Version == "" {
		t.Errorf("health = %+v", out)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: validSpec}).Body.Close()
	postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: validSpec}).Body.Close()
	postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: "bogus"}).Body.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page := decode[MetricsPage](t, resp)
	ep := page.Endpoints["derive"]
	if ep.Requests != 3 || ep.Errors != 1 || ep.InFlight != 0 {
		t.Errorf("derive endpoint stats = %+v", ep)
	}
	if page.Cache.Misses != 1 || page.Cache.Hits != 1 {
		t.Errorf("cache stats = %+v", page.Cache)
	}
	if page.Pools["derive"].Capacity < 1 || page.Pools["verify"].Capacity < 1 {
		t.Errorf("pool stats = %+v", page.Pools)
	}
}

// TestQueueDeadlineReturns503 exhausts the single-slot derive pool with a
// computation parked in the PreCompute hook (which runs while holding the
// slot); a second, distinct spec then cannot get a worker within the sync
// deadline and must be answered 503, with the timeout counted on the pool.
func TestQueueDeadlineReturns503(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	var first atomic.Bool
	s, ts := newTestServer(t, Config{
		DeriveWorkers: 1,
		SyncDeadline:  100 * time.Millisecond,
		PreCompute: func(kind, key string) {
			if first.CompareAndSwap(false, true) {
				<-block
			}
		},
	})
	go func() {
		// Raw post: the test may finish before this request completes.
		b, _ := json.Marshal(DeriveRequest{Spec: validSpec})
		resp, err := http.Post(ts.URL+"/v1/derive", "application/json", bytes.NewReader(b))
		if err == nil {
			resp.Body.Close()
		}
	}()
	for s.derivePool.Stats().InUse == 0 {
		time.Sleep(time.Millisecond)
	}
	resp := postJSON(t, ts.URL+"/v1/derive", DeriveRequest{Spec: "SPEC a1; c2; exit ENDSPEC"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	out := decode[ErrorResponse](t, resp)
	if !strings.Contains(out.Error, "deadline") {
		t.Errorf("error = %q", out.Error)
	}
	if s.derivePool.Stats().Timeouts == 0 {
		t.Error("pool did not count the queue timeout")
	}
}
