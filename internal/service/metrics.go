package service

import (
	"runtime"
	"sort"
	"sync"
	"time"

	protoderive "repro"
)

// latencyBucketsMS are the upper bounds (milliseconds, inclusive) of the
// fixed latency histogram. The last bucket is open-ended.
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram. It is guarded by the
// owning Metrics' mutex.
type histogram struct {
	counts []uint64 // len(latencyBucketsMS)+1, last = overflow
	sum    float64  // total milliseconds
	total  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBucketsMS)+1)}
}

func (h *histogram) observe(ms float64) {
	i := sort.SearchFloat64s(latencyBucketsMS, ms)
	h.counts[i]++
	h.sum += ms
	h.total++
}

// quantile estimates the q-quantile (0 < q < 1) from the histogram by
// attributing each bucket's mass to its upper bound (the overflow bucket to
// twice the last bound). It is an upper estimate, which is the useful
// direction for latency SLOs.
func (h *histogram) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			if i < len(latencyBucketsMS) {
				return latencyBucketsMS[i]
			}
			return 2 * latencyBucketsMS[len(latencyBucketsMS)-1]
		}
	}
	return 2 * latencyBucketsMS[len(latencyBucketsMS)-1]
}

// EndpointStats is the JSON snapshot of one endpoint's counters.
type EndpointStats struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	InFlight int64  `json:"inFlight"`
	// Latency histogram: parallel arrays of upper bounds (ms) and counts;
	// the final count is the overflow bucket.
	LatencyBucketsMS []float64 `json:"latencyBucketsMs"`
	LatencyCounts    []uint64  `json:"latencyCounts"`
	LatencyMeanMS    float64   `json:"latencyMeanMs"`
	LatencyP50MS     float64   `json:"latencyP50Ms"`
	LatencyP95MS     float64   `json:"latencyP95Ms"`
	LatencyP99MS     float64   `json:"latencyP99Ms"`
}

// endpointMetrics is the live (locked) form behind EndpointStats.
type endpointMetrics struct {
	requests uint64
	errors   uint64
	inFlight int64
	lat      *histogram
}

// EquivCounters aggregates the equivalence engine's work across every
// verification the daemon actually computed (cache hits and joined
// singleflight calls do not re-count).
type EquivCounters struct {
	// Checks counts completed weak-bisimulation checks.
	Checks uint64 `json:"checks"`
	// TauSCCs, SaturationEdges and RefinementRounds sum the engine's
	// per-check counters.
	TauSCCs          uint64 `json:"tauSccs"`
	SaturationEdges  uint64 `json:"saturationEdges"`
	RefinementRounds uint64 `json:"refinementRounds"`
	// SaturateMS and RefineMS sum wall time per engine phase.
	SaturateMS float64 `json:"saturateMs"`
	RefineMS   float64 `json:"refineMs"`
}

// CompileCounters aggregates the FSM compiler's work across every
// derivation the daemon computed with the compile option (cache hits and
// joined singleflight calls do not re-count).
type CompileCounters struct {
	// Requests counts computed derivations that asked for compilation.
	Requests uint64 `json:"requests"`
	// CompiledEntities counts entities that compiled to tables;
	// InterpretedEntities counts the ones that fell back to the AST
	// interpreter (state space over the cap).
	CompiledEntities    uint64 `json:"compiledEntities"`
	InterpretedEntities uint64 `json:"interpretedEntities"`
	// States and Transitions sum the minimized machine sizes.
	States      uint64 `json:"states"`
	Transitions uint64 `json:"transitions"`
}

// CompositionalCounters aggregates the quotient-before-compose pipeline's
// work across every verification the daemon computed with the compositional
// option (cache hits and joined singleflight calls do not re-count).
type CompositionalCounters struct {
	// Verifications counts computed compositional verifications;
	// Fallbacks the ones whose verdict came from the monolithic path.
	Verifications uint64 `json:"verifications"`
	Fallbacks     uint64 `json:"fallbacks"`
	// EntitiesBuilt / EntitiesReused count entity quotients explored fresh
	// versus recalled from the artifact cache.
	EntitiesBuilt  uint64 `json:"entitiesBuilt"`
	EntitiesReused uint64 `json:"entitiesReused"`
	// BuildMS sums entity explore+quotient wall time; ProductMS sums
	// product-over-quotients exploration time.
	BuildMS   float64 `json:"buildMs"`
	ProductMS float64 `json:"productMs"`
}

// ReductionCounters aggregates the state-space reductions' work across every
// verification the daemon computed (cache hits and joined singleflight calls
// do not re-count).
type ReductionCounters struct {
	// Verifications counts computed verifications that reported reduction
	// statistics; SymmetryActive the ones where interchangeable instance
	// columns were actually detected.
	Verifications  uint64 `json:"verifications"`
	SymmetryActive uint64 `json:"symmetryActive"`
	// OrbitsCollapsed sums states folded onto another orbit representative;
	// AmpleHits sums states reduced to one entity's ample transition set.
	OrbitsCollapsed uint64 `json:"orbitsCollapsed"`
	AmpleHits       uint64 `json:"ampleHits"`
	// SpillRuns / SpilledBytes sum the out-of-core visited-index activity.
	SpillRuns    uint64 `json:"spillRuns"`
	SpilledBytes uint64 `json:"spilledBytes"`
	// Fallbacks counts symmetry-reduced failures re-verified unreduced for
	// their concrete counterexample.
	Fallbacks uint64 `json:"fallbacks"`
}

// ReuseRatio is the fraction of entity artifacts recalled from cache.
func (c CompositionalCounters) ReuseRatio() float64 {
	total := c.EntitiesBuilt + c.EntitiesReused
	if total == 0 {
		return 0
	}
	return float64(c.EntitiesReused) / float64(total)
}

// RuntimeStats is a point-in-time snapshot of the Go runtime's health
// gauges, exported on /metrics so a fleet coordinator can watch each
// worker's memory and scheduler pressure alongside the latency histograms.
type RuntimeStats struct {
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// GOMAXPROCS is the scheduler's processor limit.
	GOMAXPROCS int `json:"gomaxprocs"`
	// HeapAllocBytes is live heap memory; HeapInuseBytes the spans holding
	// it; HeapSysBytes the heap address space held from the OS;
	// StackInuseBytes the goroutine stack memory.
	HeapAllocBytes  uint64 `json:"heapAllocBytes"`
	HeapInuseBytes  uint64 `json:"heapInuseBytes"`
	HeapSysBytes    uint64 `json:"heapSysBytes"`
	StackInuseBytes uint64 `json:"stackInuseBytes"`
	// NextGCBytes is the heap-size target of the next collection.
	NextGCBytes uint64 `json:"nextGCBytes"`
	// NumGC counts completed collections; GCPauseTotalMS sums every
	// stop-the-world pause since process start and GCPauseLastMS is the
	// most recent one.
	NumGC          uint32  `json:"numGC"`
	GCPauseTotalMS float64 `json:"gcPauseTotalMs"`
	GCPauseLastMS  float64 `json:"gcPauseLastMs"`
}

// ReadRuntimeStats samples the runtime gauges.
func ReadRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out := RuntimeStats{
		Goroutines:      runtime.NumGoroutine(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		HeapAllocBytes:  ms.HeapAlloc,
		HeapInuseBytes:  ms.HeapInuse,
		HeapSysBytes:    ms.HeapSys,
		StackInuseBytes: ms.StackInuse,
		NextGCBytes:     ms.NextGC,
		NumGC:           ms.NumGC,
		GCPauseTotalMS:  float64(ms.PauseTotalNs) / 1e6,
	}
	if ms.NumGC > 0 {
		out.GCPauseLastMS = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e6
	}
	return out
}

// Metrics aggregates the daemon's counters: per-endpoint request totals,
// error totals, in-flight gauges, latency histograms, and the equivalence
// engine's phase counters. All methods are safe for concurrent use.
type Metrics struct {
	mu            sync.Mutex
	endpoints     map[string]*endpointMetrics
	equiv         EquivCounters
	compile       CompileCounters
	compositional CompositionalCounters
	reduction     ReductionCounters
	start         time.Time
}

// RecordReduction folds one verification's reduction statistics into the
// aggregate.
func (m *Metrics) RecordReduction(rep *protoderive.ReductionReport) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reduction.Verifications++
	if rep.SymmetryColumns > 0 {
		m.reduction.SymmetryActive++
	}
	m.reduction.OrbitsCollapsed += uint64(rep.OrbitsCollapsed)
	m.reduction.AmpleHits += uint64(rep.AmpleHits)
	m.reduction.SpillRuns += uint64(rep.SpillRuns)
	m.reduction.SpilledBytes += uint64(rep.SpilledBytes)
	if rep.Fallback != "" {
		m.reduction.Fallbacks++
	}
}

// RecordCompositional folds one compositional verification's pipeline report
// into the aggregate.
func (m *Metrics) RecordCompositional(rep *protoderive.CompositionalReport) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compositional.Verifications++
	if rep.Fallback != "" {
		m.compositional.Fallbacks++
	}
	m.compositional.EntitiesBuilt += uint64(len(rep.Entities) - rep.Reused)
	m.compositional.EntitiesReused += uint64(rep.Reused)
	m.compositional.BuildMS += float64(rep.BuildNanos) / 1e6
	m.compositional.ProductMS += float64(rep.ProductNanos) / 1e6
}

// RecordCompile folds one compile report into the aggregate.
func (m *Metrics) RecordCompile(compiled, interpreted, states, transitions int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compile.Requests++
	m.compile.CompiledEntities += uint64(compiled)
	m.compile.InterpretedEntities += uint64(interpreted)
	m.compile.States += uint64(states)
	m.compile.Transitions += uint64(transitions)
}

// RecordEquiv folds one equivalence check's engine counters into the
// aggregate.
func (m *Metrics) RecordEquiv(tauSCCs, saturationEdges, rounds int, saturateNanos, refineNanos int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.equiv.Checks++
	m.equiv.TauSCCs += uint64(tauSCCs)
	m.equiv.SaturationEdges += uint64(saturationEdges)
	m.equiv.RefinementRounds += uint64(rounds)
	m.equiv.SaturateMS += float64(saturateNanos) / 1e6
	m.equiv.RefineMS += float64(refineNanos) / 1e6
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: map[string]*endpointMetrics{}, start: time.Now()}
}

func (m *Metrics) endpoint(name string) *endpointMetrics {
	ep := m.endpoints[name]
	if ep == nil {
		ep = &endpointMetrics{lat: newHistogram()}
		m.endpoints[name] = ep
	}
	return ep
}

// Begin records the start of a request on the named endpoint and returns a
// completion callback taking whether the request failed. The callback must
// be invoked exactly once.
func (m *Metrics) Begin(name string) func(failed bool) {
	m.mu.Lock()
	ep := m.endpoint(name)
	ep.requests++
	ep.inFlight++
	m.mu.Unlock()
	t0 := time.Now()
	return func(failed bool) {
		ms := float64(time.Since(t0).Nanoseconds()) / 1e6
		m.mu.Lock()
		ep.inFlight--
		if failed {
			ep.errors++
		}
		ep.lat.observe(ms)
		m.mu.Unlock()
	}
}

// MetricsSnapshot is the JSON form of the registry.
type MetricsSnapshot struct {
	UptimeSeconds float64                  `json:"uptimeSeconds"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
	// Equiv aggregates the equivalence engine's counters over every
	// computed verification.
	Equiv EquivCounters `json:"equiv"`
	// Compile aggregates the FSM compiler's counters over every computed
	// derivation that requested compilation.
	Compile CompileCounters `json:"compile"`
	// Compositional aggregates the quotient-before-compose pipeline's
	// counters over every computed compositional verification, including
	// the entity-artifact reuse ratio.
	Compositional           CompositionalCounters `json:"compositional"`
	CompositionalReuseRatio float64               `json:"compositionalReuseRatio"`
	// Reduction aggregates the state-space reductions' counters (orbits
	// collapsed, ample hits, spill activity) over every computed
	// verification.
	Reduction ReductionCounters `json:"reduction"`
}

// Snapshot returns a consistent copy of every counter.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := MetricsSnapshot{
		UptimeSeconds:           time.Since(m.start).Seconds(),
		Endpoints:               make(map[string]EndpointStats, len(m.endpoints)),
		Equiv:                   m.equiv,
		Compile:                 m.compile,
		Compositional:           m.compositional,
		CompositionalReuseRatio: m.compositional.ReuseRatio(),
		Reduction:               m.reduction,
	}
	for name, ep := range m.endpoints {
		st := EndpointStats{
			Requests:         ep.requests,
			Errors:           ep.errors,
			InFlight:         ep.inFlight,
			LatencyBucketsMS: latencyBucketsMS,
			LatencyCounts:    append([]uint64(nil), ep.lat.counts...),
			LatencyP50MS:     ep.lat.quantile(0.50),
			LatencyP95MS:     ep.lat.quantile(0.95),
			LatencyP99MS:     ep.lat.quantile(0.99),
		}
		if ep.lat.total > 0 {
			st.LatencyMeanMS = ep.lat.sum / float64(ep.lat.total)
		}
		out.Endpoints[name] = st
	}
	return out
}
