package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	done := m.Begin("derive")
	snap := m.Snapshot()
	ep := snap.Endpoints["derive"]
	if ep.Requests != 1 || ep.InFlight != 1 {
		t.Fatalf("mid-flight: %+v", ep)
	}
	done(false)
	m.Begin("derive")(true)
	snap = m.Snapshot()
	ep = snap.Endpoints["derive"]
	if ep.Requests != 2 || ep.Errors != 1 || ep.InFlight != 0 {
		t.Fatalf("after completion: %+v", ep)
	}
	var total uint64
	for _, c := range ep.LatencyCounts {
		total += c
	}
	if total != 2 {
		t.Errorf("histogram holds %d observations, want 2", total)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Begin("x")(i%2 == 0)
		}(i)
	}
	wg.Wait()
	ep := m.Snapshot().Endpoints["x"]
	if ep.Requests != 50 || ep.Errors != 25 || ep.InFlight != 0 {
		t.Errorf("endpoint stats = %+v", ep)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 90; i++ {
		h.observe(3) // lands in the <=5ms bucket
	}
	for i := 0; i < 10; i++ {
		h.observe(700) // lands in the <=1000ms bucket
	}
	if q := h.quantile(0.50); q != 5 {
		t.Errorf("p50 = %v, want 5 (bucket upper bound)", q)
	}
	if q := h.quantile(0.95); q != 1000 {
		t.Errorf("p95 = %v, want 1000", q)
	}
	if q := h.quantile(0.99); q != 1000 {
		t.Errorf("p99 = %v, want 1000", q)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := newHistogram()
	h.observe(60000)
	if h.counts[len(h.counts)-1] != 1 {
		t.Error("overflow observation not in the last bucket")
	}
	if q := h.quantile(0.5); q != 2*latencyBucketsMS[len(latencyBucketsMS)-1] {
		t.Errorf("overflow quantile = %v", q)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(2)
	ctx := context.Background()
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := p.Acquire(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("third acquire: err = %v, want deadline exceeded", err)
	}
	st := p.Stats()
	if st.Capacity != 2 || st.InUse != 2 || st.Timeouts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	p.Release()
	if err := p.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	p.Release()
	p.Release()
}

func TestPoolWaitersProceedOnRelease(t *testing.T) {
	p := NewPool(1)
	ctx := context.Background()
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- p.Acquire(ctx) }()
	for p.Stats().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	p.Release()
	if err := <-got; err != nil {
		t.Fatalf("waiter: %v", err)
	}
	p.Release()
}

func TestPoolDefaultSize(t *testing.T) {
	if c := NewPool(0).Stats().Capacity; c < 1 {
		t.Errorf("default capacity = %d", c)
	}
}

// TestRuntimeStats asserts the Go runtime gauges are populated and exposed
// on the metrics page.
func TestRuntimeStats(t *testing.T) {
	runtime.GC() // ensure at least one collection is on record
	rs := ReadRuntimeStats()
	if rs.Goroutines < 1 || rs.GOMAXPROCS < 1 {
		t.Errorf("scheduler gauges = %+v", rs)
	}
	if rs.HeapAllocBytes == 0 || rs.HeapSysBytes == 0 || rs.NextGCBytes == 0 {
		t.Errorf("heap gauges = %+v", rs)
	}
	if rs.NumGC == 0 || rs.GCPauseTotalMS <= 0 || rs.GCPauseLastMS <= 0 {
		t.Errorf("GC gauges = %+v", rs)
	}
}
