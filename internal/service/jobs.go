package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// JobState is the lifecycle phase of an async job.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker slot.
	JobQueued JobState = "queued"
	// JobRunning: computation in progress.
	JobRunning JobState = "running"
	// JobDone: finished successfully; Result holds the response.
	JobDone JobState = "done"
	// JobFailed: finished with an error; Error holds the message.
	JobFailed JobState = "failed"
)

// Job is the JSON snapshot of one async job. State-space explorations that
// exceed the synchronous deadline run as jobs: the client gets an id
// immediately and polls GET /v1/jobs/{id}.
type Job struct {
	ID       string    `json:"id"`
	Kind     string    `json:"kind"`
	State    JobState  `json:"state"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	Result   any       `json:"result,omitempty"`
	Error    string    `json:"error,omitempty"`
}

func (j *Job) terminal() bool { return j.State == JobDone || j.State == JobFailed }

// JobEvent is one entry of a job's progress stream: a lifecycle transition
// ("state") or a computation phase marker ("progress"). Events are
// sequence-numbered per job and replayed to late subscribers, so an SSE
// client attaching after the fact still sees the full history.
type JobEvent struct {
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	// Type is "state" (State holds the new lifecycle state) or "progress"
	// (Message names the phase the computation just entered).
	Type    string   `json:"type"`
	State   JobState `json:"state,omitempty"`
	Message string   `json:"message,omitempty"`
}

// eventLog is the per-job event history plus its live subscribers. It is
// guarded by the owning JobStore's mutex. Subscriber channels are buffered;
// a subscriber that falls further behind than the buffer loses intermediate
// events (never the close), so a slow SSE client cannot block the store.
type eventLog struct {
	events []JobEvent
	subs   map[int]chan JobEvent
	next   int
}

// subBuffer is the per-subscriber channel depth. Jobs emit a handful of
// lifecycle events plus one progress event per verification phase, so this
// is generous; an SSE consumer slower than this drops intermediate events.
const subBuffer = 64

// JobStats is the JSON snapshot of the store's counters.
type JobStats struct {
	Created  uint64 `json:"created"`
	Finished uint64 `json:"finished"`
	Failed   uint64 `json:"failed"`
	Evicted  uint64 `json:"evicted"`
	Live     int    `json:"live"`
}

// JobStore tracks async jobs. Terminal jobs are kept for a TTL after
// completion so clients can fetch their result, then evicted; the total
// population is additionally capped (oldest terminal jobs go first).
type JobStore struct {
	mu    sync.Mutex
	jobs  map[string]*Job
	logs  map[string]*eventLog // per-job event history + subscribers
	order []string             // creation order, for capped eviction
	ttl   time.Duration
	max   int
	stats JobStats
	now   func() time.Time // test seam
}

// NewJobStore returns a store evicting terminal jobs ttl after completion
// (ttl <= 0 selects 10 minutes) and capping the live population at max
// (max <= 0 selects 1024).
func NewJobStore(ttl time.Duration, max int) *JobStore {
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	if max <= 0 {
		max = 1024
	}
	return &JobStore{jobs: map[string]*Job{}, logs: map[string]*eventLog{}, ttl: ttl, max: max, now: time.Now}
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: reading random job id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Create registers a new queued job and returns its id.
func (s *JobStore) Create(kind string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	id := newJobID()
	for s.jobs[id] != nil { // vanishingly unlikely; loop for correctness
		id = newJobID()
	}
	s.jobs[id] = &Job{ID: id, Kind: kind, State: JobQueued, Created: s.now()}
	s.logs[id] = &eventLog{subs: map[int]chan JobEvent{}}
	s.order = append(s.order, id)
	s.stats.Created++
	s.publishLocked(id, JobEvent{Type: "state", State: JobQueued})
	return id
}

// publishLocked appends an event to a job's log and fans it out to every
// live subscriber. Subscribers whose buffer is full lose the event.
func (s *JobStore) publishLocked(id string, ev JobEvent) {
	log := s.logs[id]
	if log == nil {
		return
	}
	ev.Seq = len(log.events)
	ev.Time = s.now()
	log.events = append(log.events, ev)
	for _, ch := range log.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// closeLogLocked closes every subscriber channel of a job's log and drops
// the log. Subscribers drain their buffered events, then see the close.
func (s *JobStore) closeLogLocked(id string) {
	log := s.logs[id]
	if log == nil {
		return
	}
	for _, ch := range log.subs {
		close(ch)
	}
	log.subs = nil
	delete(s.logs, id)
}

// Publish appends a progress event to a live job's stream. Progress on an
// unknown or terminal job is dropped: the singleflight computation emitting
// it may outlive the job that started it.
func (s *JobStore) Publish(id, message string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil && !j.terminal() {
		s.publishLocked(id, JobEvent{Type: "progress", Message: message})
	}
}

// Subscribe attaches to a job's event stream. It returns the events
// published so far, a channel of subsequent ones, and a cancel function the
// caller must invoke when done. A terminal job's history stays subscribable
// until the job is evicted; eviction closes the channel of every attached
// subscriber. ok is false for unknown (or already evicted) jobs.
func (s *JobStore) Subscribe(id string) (past []JobEvent, ch <-chan JobEvent, cancel func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	log := s.logs[id]
	if log == nil {
		return nil, nil, nil, false
	}
	past = append([]JobEvent(nil), log.events...)
	c := make(chan JobEvent, subBuffer)
	n := log.next
	log.next++
	log.subs[n] = c
	cancel = func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if l := s.logs[id]; l != nil {
			if _, live := l.subs[n]; live {
				delete(l.subs, n)
				close(c)
			}
		}
	}
	return past, c, cancel, true
}

// Start marks a job running.
func (s *JobStore) Start(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil && j.State == JobQueued {
		j.State = JobRunning
		j.Started = s.now()
		s.publishLocked(id, JobEvent{Type: "state", State: JobRunning})
	}
}

// Finish records a job's outcome.
func (s *JobStore) Finish(id string, result any, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil || j.terminal() {
		return
	}
	j.Finished = s.now()
	if err != nil {
		j.State = JobFailed
		j.Error = err.Error()
		s.stats.Failed++
		s.publishLocked(id, JobEvent{Type: "state", State: JobFailed, Message: j.Error})
	} else {
		j.State = JobDone
		j.Result = result
		s.publishLocked(id, JobEvent{Type: "state", State: JobDone})
	}
	s.stats.Finished++
}

// Get returns a snapshot of the job (by value: the caller cannot race with
// later state changes).
func (s *JobStore) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	j := s.jobs[id]
	if j == nil {
		return Job{}, false
	}
	return *j, true
}

// Stats returns a snapshot of the counters.
func (s *JobStore) Stats() JobStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	st := s.stats
	st.Live = len(s.jobs)
	return st
}

// sweepLocked evicts terminal jobs past their TTL, and — when the
// population still exceeds the cap — the oldest terminal jobs. Queued and
// running jobs are never evicted.
func (s *JobStore) sweepLocked() {
	cutoff := s.now().Add(-s.ttl)
	evict := func(id string, j *Job) bool {
		return j != nil && j.terminal() && j.Finished.Before(cutoff)
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if evict(id, s.jobs[id]) {
			delete(s.jobs, id)
			s.closeLogLocked(id)
			s.stats.Evicted++
		} else if s.jobs[id] != nil {
			kept = append(kept, id)
		}
	}
	s.order = kept
	if len(s.jobs) <= s.max {
		return
	}
	kept = s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if len(s.jobs) > s.max && j.terminal() {
			delete(s.jobs, id)
			s.closeLogLocked(id)
			s.stats.Evicted++
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}
