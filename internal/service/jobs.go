package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// JobState is the lifecycle phase of an async job.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker slot.
	JobQueued JobState = "queued"
	// JobRunning: computation in progress.
	JobRunning JobState = "running"
	// JobDone: finished successfully; Result holds the response.
	JobDone JobState = "done"
	// JobFailed: finished with an error; Error holds the message.
	JobFailed JobState = "failed"
)

// Job is the JSON snapshot of one async job. State-space explorations that
// exceed the synchronous deadline run as jobs: the client gets an id
// immediately and polls GET /v1/jobs/{id}.
type Job struct {
	ID       string    `json:"id"`
	Kind     string    `json:"kind"`
	State    JobState  `json:"state"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	Result   any       `json:"result,omitempty"`
	Error    string    `json:"error,omitempty"`
}

func (j *Job) terminal() bool { return j.State == JobDone || j.State == JobFailed }

// JobStats is the JSON snapshot of the store's counters.
type JobStats struct {
	Created  uint64 `json:"created"`
	Finished uint64 `json:"finished"`
	Failed   uint64 `json:"failed"`
	Evicted  uint64 `json:"evicted"`
	Live     int    `json:"live"`
}

// JobStore tracks async jobs. Terminal jobs are kept for a TTL after
// completion so clients can fetch their result, then evicted; the total
// population is additionally capped (oldest terminal jobs go first).
type JobStore struct {
	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // creation order, for capped eviction
	ttl   time.Duration
	max   int
	stats JobStats
	now   func() time.Time // test seam
}

// NewJobStore returns a store evicting terminal jobs ttl after completion
// (ttl <= 0 selects 10 minutes) and capping the live population at max
// (max <= 0 selects 1024).
func NewJobStore(ttl time.Duration, max int) *JobStore {
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	if max <= 0 {
		max = 1024
	}
	return &JobStore{jobs: map[string]*Job{}, ttl: ttl, max: max, now: time.Now}
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: reading random job id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Create registers a new queued job and returns its id.
func (s *JobStore) Create(kind string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	id := newJobID()
	for s.jobs[id] != nil { // vanishingly unlikely; loop for correctness
		id = newJobID()
	}
	s.jobs[id] = &Job{ID: id, Kind: kind, State: JobQueued, Created: s.now()}
	s.order = append(s.order, id)
	s.stats.Created++
	return id
}

// Start marks a job running.
func (s *JobStore) Start(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil && j.State == JobQueued {
		j.State = JobRunning
		j.Started = s.now()
	}
}

// Finish records a job's outcome.
func (s *JobStore) Finish(id string, result any, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil || j.terminal() {
		return
	}
	j.Finished = s.now()
	if err != nil {
		j.State = JobFailed
		j.Error = err.Error()
		s.stats.Failed++
	} else {
		j.State = JobDone
		j.Result = result
	}
	s.stats.Finished++
}

// Get returns a snapshot of the job (by value: the caller cannot race with
// later state changes).
func (s *JobStore) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	j := s.jobs[id]
	if j == nil {
		return Job{}, false
	}
	return *j, true
}

// Stats returns a snapshot of the counters.
func (s *JobStore) Stats() JobStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	st := s.stats
	st.Live = len(s.jobs)
	return st
}

// sweepLocked evicts terminal jobs past their TTL, and — when the
// population still exceeds the cap — the oldest terminal jobs. Queued and
// running jobs are never evicted.
func (s *JobStore) sweepLocked() {
	cutoff := s.now().Add(-s.ttl)
	evict := func(id string, j *Job) bool {
		return j != nil && j.terminal() && j.Finished.Before(cutoff)
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if evict(id, s.jobs[id]) {
			delete(s.jobs, id)
			s.stats.Evicted++
		} else if s.jobs[id] != nil {
			kept = append(kept, id)
		}
	}
	s.order = kept
	if len(s.jobs) <= s.max {
		return
	}
	kept = s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if len(s.jobs) > s.max && j.terminal() {
			delete(s.jobs, id)
			s.stats.Evicted++
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}
