package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lotos"
	"repro/internal/lts"
	"repro/internal/medium"
)

// runner interprets one protocol entity.
type runner struct {
	place int
	env   *lts.Env
	cur   lotos.Expr
	med   medium.Transport
	world *world
	cfg   Config
	rng   *rand.Rand
}

func newRunner(place int, sp *lotos.Spec, med medium.Transport, w *world, cfg Config, seed int64) (*runner, error) {
	env, err := lts.EnvFor(sp)
	if err != nil {
		return nil, fmt.Errorf("sim: entity %d: %w", place, err)
	}
	return &runner{
		place: place,
		env:   env,
		cur:   sp.Root.Expr,
		med:   med,
		world: w,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

// candidate is one enabled step of the entity.
type candidate struct {
	t       lts.Transition
	isDelta bool
}

// run executes the entity until successful termination or a world stop.
// It returns a description of the entity's state (for diagnosis of
// incomplete runs): "terminated", or the pending expression.
func (r *runner) run() (string, error) {
	for {
		if r.world.isStopped() {
			return r.describe(), nil
		}
		gen := r.world.generation()
		medGen := r.med.Generation()

		ts, err := r.env.Transitions(r.cur)
		if err != nil {
			return "", err
		}
		cands, offered, offeredIdx := r.enabled(ts)

		// Possibly attempt a user interaction this step. A successful
		// Choose CLAIMS the offer (a scripted harness advances its
		// cursor), so an accepted service primitive must be executed
		// immediately — it may not lose a lottery against the other
		// candidates.
		if len(offered) > 0 {
			attempt := len(cands) == 0 || r.rng.Intn(len(cands)+1) == len(cands)
			if attempt {
				if pick := r.cfg.Harness.Choose(r.place, offered); pick >= 0 && pick < len(offered) {
					t := ts[offeredIdx[pick]]
					if err := r.execute(t); err != nil {
						return "", err
					}
					r.cur = t.To
					continue
				}
			}
		}

		if len(cands) == 0 {
			if len(ts) == 0 {
				// stop state: inaction forever. Report as blocked.
				r.world.await(gen)
				continue
			}
			// Block until the world moves (message arrival, script
			// progress, other entities, stop).
			if r.med.Generation() != medGen {
				continue // a message arrived meanwhile; re-evaluate
			}
			r.world.await(gen)
			continue
		}

		c := cands[r.rng.Intn(len(cands))]
		if c.isDelta {
			r.world.markDone()
			return "terminated", nil
		}
		if err := r.execute(c.t); err != nil {
			return "", err
		}
		r.cur = c.t.To
	}
}

// enabled partitions the transitions into immediately executable candidates
// and service-primitive offers.
func (r *runner) enabled(ts []lts.Transition) (cands []candidate, offered []lotos.Event, offeredIdx []int) {
	for i, t := range ts {
		switch t.Label.Kind {
		case lts.LDelta:
			cands = append(cands, candidate{t: t, isDelta: true})
		case lts.LInternal:
			cands = append(cands, candidate{t: t})
		case lts.LEvent:
			ev := t.Label.Ev
			switch ev.Kind {
			case lotos.EvSend:
				cands = append(cands, candidate{t: t})
			case lotos.EvRecv:
				// Peek: enabled only if the wanted message is consumable.
				// The actual consumption happens in execute, which
				// re-checks (another branch cannot steal it: only this
				// entity consumes this channel). Handshake control
				// messages use flush semantics (see core.FlushingMsgID).
				want := medium.WantedBy(r.place, ev)
				if flushingRecv(ev) {
					if r.med.TryConsumeFlushCheck(want) {
						cands = append(cands, candidate{t: t})
					}
				} else if r.med.TryConsumeCheck(want) {
					cands = append(cands, candidate{t: t})
				}
			case lotos.EvService:
				offered = append(offered, ev)
				offeredIdx = append(offeredIdx, i)
			}
		}
	}
	return cands, offered, offeredIdx
}

// execute performs the side effect of one chosen transition.
func (r *runner) execute(t lts.Transition) error {
	switch t.Label.Kind {
	case lts.LInternal:
		r.world.bump()
		return nil
	case lts.LEvent:
		ev := t.Label.Ev
		switch ev.Kind {
		case lotos.EvSend:
			r.med.Send(medium.MessageFor(r.place, ev))
			r.world.bump()
			return nil
		case lotos.EvRecv:
			want := medium.WantedBy(r.place, ev)
			consumed := false
			if flushingRecv(ev) {
				consumed = r.med.TryConsumeFlush(want)
			} else {
				consumed = r.med.TryConsume(want)
			}
			if !consumed {
				return fmt.Errorf("sim: entity %d: receive %s no longer enabled (internal error)", r.place, want)
			}
			r.world.bump()
			return nil
		case lotos.EvService:
			r.world.record(r.place, ev)
			return nil
		}
	}
	return fmt.Errorf("sim: entity %d: unexpected transition %s", r.place, t.Label)
}

// flushingRecv reports whether a receive event carries interrupt-handshake
// flush semantics.
func flushingRecv(ev lotos.Event) bool {
	return ev.Tag == "" && core.FlushingMsgID(ev.Node)
}

// describe renders the entity's pending state for diagnostics.
func (r *runner) describe() string {
	return lotos.Format(r.cur)
}
