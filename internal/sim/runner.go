package sim

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/fsm"
	"repro/internal/lotos"
	"repro/internal/lts"
	"repro/internal/medium"
)

// stepper is the execution engine of one protocol entity: it exposes the
// current state's transitions as an indexed row (in derivation order — the
// order lts.Env.Transitions yields and compose's witnesses index), classified
// into runtime dispatch kinds. Two implementations exist: astStepper derives
// transitions from the entity's syntax tree on every step, fsmStepper looks
// them up in precompiled tables. The runner and the replayer are written
// against this interface only, so both engines share one scheduling loop —
// same candidate rows, same random-choice consumption, same traces.
type stepper interface {
	// reload makes the current state's transition row addressable and
	// returns its length.
	reload() (int, error)
	// op classifies transition i of the current row.
	op(i int) fsm.Op
	// ev returns the event of transition i (zero Event for internal/δ).
	ev(i int) lotos.Event
	// offers returns the row's service-primitive offers and their row
	// indices. The slices are valid until the next reload and must not be
	// mutated.
	offers() ([]lotos.Event, []int32)
	// advance moves to the target of transition i of the current row.
	advance(i int) error
	// describe renders the current state for diagnostics.
	describe() string
}

// astStepper interprets the entity specification directly: each reload
// derives the current expression's transitions with the SOS rules.
type astStepper struct {
	place int
	env   *lts.Env
	cur   lotos.Expr
	ts    []lts.Transition
	ops   []fsm.Op
	evs   []lotos.Event
	offEv []lotos.Event
	offIx []int32
}

func newASTStepper(place int, sp *lotos.Spec) (*astStepper, error) {
	env, err := lts.EnvFor(sp)
	if err != nil {
		return nil, fmt.Errorf("sim: entity %d: %w", place, err)
	}
	return &astStepper{place: place, env: env, cur: sp.Root.Expr}, nil
}

func (s *astStepper) reload() (int, error) {
	ts, err := s.env.Transitions(s.cur)
	if err != nil {
		return 0, err
	}
	s.ts = ts
	s.ops = s.ops[:0]
	s.evs = s.evs[:0]
	s.offEv = s.offEv[:0]
	s.offIx = s.offIx[:0]
	for i, t := range ts {
		op, ev := fsm.Classify(t.Label)
		s.ops = append(s.ops, op)
		s.evs = append(s.evs, ev)
		if op == fsm.OpService {
			s.offEv = append(s.offEv, ev)
			s.offIx = append(s.offIx, int32(i))
		}
	}
	return len(ts), nil
}

func (s *astStepper) op(i int) fsm.Op                    { return s.ops[i] }
func (s *astStepper) ev(i int) lotos.Event               { return s.evs[i] }
func (s *astStepper) offers() ([]lotos.Event, []int32)   { return s.offEv, s.offIx }
func (s *astStepper) advance(i int) error                { s.cur = s.ts[i].To; return nil }
func (s *astStepper) describe() string                   { return lotos.Format(s.cur) }

// fsmStepper executes a compiled machine: reload is two array reads and the
// transition row, its classification and its offers are all precomputed.
type fsmStepper struct {
	m      *fsm.Machine
	state  int32
	lo, hi int32
	offIx  []int32
}

func newFSMStepper(m *fsm.Machine) *fsmStepper { return &fsmStepper{m: m} }

func (s *fsmStepper) reload() (int, error) {
	s.lo, s.hi = s.m.Row(s.state)
	return int(s.hi - s.lo), nil
}

func (s *fsmStepper) op(i int) fsm.Op      { return s.m.Ops[s.lo+int32(i)] }
func (s *fsmStepper) ev(i int) lotos.Event { return s.m.Events[s.lo+int32(i)] }

func (s *fsmStepper) offers() ([]lotos.Event, []int32) {
	evs, abs := s.m.Offers(s.state)
	s.offIx = s.offIx[:0]
	for _, e := range abs {
		s.offIx = append(s.offIx, e-s.lo)
	}
	return evs, s.offIx
}

func (s *fsmStepper) advance(i int) error {
	s.state = s.m.To[s.lo+int32(i)]
	return nil
}

func (s *fsmStepper) describe() string { return s.m.Keys[s.state] }

// runner drives one protocol entity through its stepper.
type runner struct {
	place int
	step  stepper
	med   medium.Transport
	world *world
	cfg   Config
	rng   *rand.Rand
	cands []int // reused candidate buffer
	done  bool  // set by the lockstep driver on termination
}

func newRunner(place int, step stepper, med medium.Transport, w *world, cfg Config, seed int64) *runner {
	return &runner{
		place: place,
		step:  step,
		med:   med,
		world: w,
		cfg:   cfg,
		rng:   rand.New(newPCG(seed)),
	}
}

// newPCG seeds a PCG stream from a scheduling seed. Seeding is O(1) — the
// previous lagged-Fibonacci source spent ~10µs per runner filling its state
// vector, which dominated short simulation runs (see BenchmarkSimulate).
func newPCG(seed int64) *rand.PCG {
	return rand.NewPCG(uint64(seed), 0x9e3779b97f4a7c15)
}

// run executes the entity until successful termination or a world stop.
// It returns a description of the entity's state (for diagnosis of
// incomplete runs): "terminated", or the pending state.
func (r *runner) run() (string, error) {
	for {
		if r.world.isStopped() {
			return r.step.describe(), nil
		}
		gen := r.world.generation()
		medGen := r.med.Generation()

		progressed, done, err := r.stepOnce()
		if err != nil {
			return "", err
		}
		if done {
			return "terminated", nil
		}
		if progressed {
			continue
		}
		// Block until the world moves (message arrival, script progress,
		// other entities, stop).
		if r.med.Generation() != medGen {
			continue // a message arrived meanwhile; re-evaluate
		}
		r.world.await(gen)
	}
}

// stepOnce evaluates the current transition row and executes at most one
// transition. It reports whether the entity progressed and whether it
// terminated. The random-choice structure (one optional user-interaction
// lottery, then a uniform pick among executable candidates) is the engine-
// independent scheduling contract: both steppers feed it identical rows, so
// a seeded run produces the same execution under either engine.
func (r *runner) stepOnce() (progressed, done bool, err error) {
	n, err := r.step.reload()
	if err != nil {
		return false, false, err
	}
	r.cands = r.cands[:0]
	for i := 0; i < n; i++ {
		switch r.step.op(i) {
		case fsm.OpDelta, fsm.OpInternal, fsm.OpSend:
			r.cands = append(r.cands, i)
		case fsm.OpRecv:
			// Peek: enabled only if the wanted message is consumable. The
			// actual consumption happens in execute, which re-checks
			// (another branch cannot steal it: only this entity consumes
			// this channel).
			if r.med.TryConsumeCheck(medium.WantedBy(r.place, r.step.ev(i))) {
				r.cands = append(r.cands, i)
			}
		case fsm.OpRecvFlush:
			if r.med.TryConsumeFlushCheck(medium.WantedBy(r.place, r.step.ev(i))) {
				r.cands = append(r.cands, i)
			}
		}
	}

	// Possibly attempt a user interaction this step. A successful Choose
	// CLAIMS the offer (a scripted harness advances its cursor), so an
	// accepted service primitive must be executed immediately — it may not
	// lose a lottery against the other candidates.
	if offered, offeredIdx := r.step.offers(); len(offered) > 0 {
		attempt := len(r.cands) == 0 || r.rng.IntN(len(r.cands)+1) == len(r.cands)
		if attempt {
			if pick := r.cfg.Harness.Choose(r.place, offered); pick >= 0 && pick < len(offered) {
				i := int(offeredIdx[pick])
				if err := r.execute(i); err != nil {
					return false, false, err
				}
				return true, false, r.step.advance(i)
			}
		}
	}

	if len(r.cands) == 0 {
		return false, false, nil
	}
	i := r.cands[r.rng.IntN(len(r.cands))]
	if r.step.op(i) == fsm.OpDelta {
		r.world.markDone()
		return true, true, nil
	}
	if err := r.execute(i); err != nil {
		return false, false, err
	}
	return true, false, r.step.advance(i)
}

// execute performs the side effect of transition i of the current row.
func (r *runner) execute(i int) error {
	switch r.step.op(i) {
	case fsm.OpInternal:
		r.world.bump()
		return nil
	case fsm.OpSend:
		r.med.Send(medium.MessageFor(r.place, r.step.ev(i)))
		r.world.bump()
		return nil
	case fsm.OpRecv, fsm.OpRecvFlush:
		want := medium.WantedBy(r.place, r.step.ev(i))
		consumed := false
		if r.step.op(i) == fsm.OpRecvFlush {
			consumed = r.med.TryConsumeFlush(want)
		} else {
			consumed = r.med.TryConsume(want)
		}
		if !consumed {
			return fmt.Errorf("sim: entity %d: receive %s no longer enabled (internal error)", r.place, want)
		}
		r.world.bump()
		return nil
	case fsm.OpService:
		r.world.record(r.place, r.step.ev(i))
		return nil
	}
	return fmt.Errorf("sim: entity %d: unexpected transition op %s", r.place, r.step.op(i))
}
