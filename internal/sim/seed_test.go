package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/medium"
)

// TestSubSeedDisjointStreams is the regression for the additive sub-seed
// derivation (Harness=Seed+1, Medium=Seed+2, runner i=Seed+100+i): under
// that scheme nearby run seeds alias — run s's runner-1 stream was run
// (s+100)'s harness stream, and a sweep over consecutive seeds reused
// entity streams across runs. The SplitMix64 mix must hand every
// (seed, role, index) triple of a dense seed range a distinct stream seed.
func TestSubSeedDisjointStreams(t *testing.T) {
	seen := map[int64]string{}
	check := func(seed int64, role uint64, index int, desc string) {
		t.Helper()
		v := SubSeed(seed, role, index)
		if prev, dup := seen[v]; dup {
			t.Fatalf("sub-seed collision: %s and %s both derive %d", prev, desc, v)
		}
		seen[v] = desc
	}
	for _, base := range []int64{-130, 0, 1 << 40} {
		for off := int64(0); off < 130; off++ {
			seed := base + off
			check(seed, roleHarness, 0, fmt.Sprintf("seed %d harness", seed))
			check(seed, roleMedium, 0, fmt.Sprintf("seed %d medium", seed))
			for i := 0; i < 4; i++ {
				check(seed, roleRunner, i, fmt.Sprintf("seed %d runner %d", seed, i))
				check(seed, RoleSession, i, fmt.Sprintf("seed %d session %d", seed, i))
			}
		}
	}
}

// TestSubSeedAvalanches spot-checks that single-bit input changes flip many
// output bits (no structured relation between neighbouring streams).
func TestSubSeedAvalanches(t *testing.T) {
	for _, seed := range []int64{0, 1, -2, 42} {
		a, b := SubSeed(seed, roleRunner, 0), SubSeed(seed+1, roleRunner, 0)
		if n := popcount64(uint64(a) ^ uint64(b)); n < 16 {
			t.Errorf("seed %d vs %d: only %d differing bits", seed, seed+1, n)
		}
	}
}

func popcount64(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// TestMediumSeedZeroPinned is the regression for the "if Medium.Seed == 0"
// unset test: a deliberately pinned zero medium seed (MediumSeedSet) must
// survive seed resolution, while an unset one is derived from the run seed
// — including for Seed=-2, which the additive scheme mapped to exactly 0
// and then treated as unset again.
func TestMediumSeedZeroPinned(t *testing.T) {
	pinned := resolveSeeds(Config{Seed: 7, MediumSeedSet: true})
	if pinned.Medium.Seed != 0 {
		t.Errorf("pinned zero medium seed remapped to %d", pinned.Medium.Seed)
	}
	explicit := resolveSeeds(Config{Seed: 7, Medium: medium.Config{Seed: 42}})
	if explicit.Medium.Seed != 42 {
		t.Errorf("explicit medium seed remapped to %d", explicit.Medium.Seed)
	}
	derived := resolveSeeds(Config{Seed: 7})
	if want := SubSeed(7, roleMedium, 0); derived.Medium.Seed != want {
		t.Errorf("derived medium seed = %d, want SubSeed %d", derived.Medium.Seed, want)
	}
	minusTwo := resolveSeeds(Config{Seed: -2})
	if minusTwo.Medium.Seed == 0 {
		t.Error("Seed=-2 derived medium seed 0 (the additive aliasing bug)")
	}
	if want := SubSeed(-2, roleMedium, 0); minusTwo.Medium.Seed != want {
		t.Errorf("Seed=-2 medium seed = %d, want SubSeed %d", minusTwo.Medium.Seed, want)
	}
}

// TestPinnedMediumSeedReproduces checks the pin end to end: two delayed
// lossy runs with MediumSeedSet and the same pinned seed produce identical
// medium randomness (same drop count on the same schedule-independent first
// send), even under different run seeds the medium stream must not follow.
func TestPinnedMediumSeedReproduces(t *testing.T) {
	// 100% loss makes the medium's drop decision seed-independent; what the
	// pin must control is the delay stream. Use a deterministic scripted
	// run: one sender, large delays, and compare the delivery-visible
	// behaviour via medium stats of two identically pinned runs.
	d := deriveFor(t, "SPEC a1; b2; exit ENDSPEC")
	run := func(runSeed int64) medium.Stats {
		res, err := Run(d.Entities, Config{
			Seed:          runSeed,
			Medium:        medium.Config{LossRate: 0.5},
			MediumSeedSet: true, // pinned zero
			Timeout:       2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Medium
	}
	a, b := run(3), run(4)
	// The first medium decision (drop the a1->b2 sync message or not) is
	// consumed before any schedule divergence can matter: both runs must
	// agree on it because both media run the pinned zero stream.
	if (a.Dropped > 0) != (b.Dropped > 0) {
		t.Errorf("pinned medium seed diverged: drops %d vs %d", a.Dropped, b.Dropped)
	}
}

// TestTickerStopsWithRun is the regression for the sim ticker outliving the
// run: the old sleep-loop ticker only noticed the stop after its next full
// tick (here 500ms), keeping a goroutine bumping a closed world long after
// Run returned. The select-based ticker must exit promptly.
func TestTickerStopsWithRun(t *testing.T) {
	d := deriveFor(t, "SPEC a1; b2; exit ENDSPEC")
	before := runtime.NumGoroutine()
	// MaxDelay 2s -> tick 500ms; the run itself finishes in milliseconds.
	res, err := Run(d.Entities, Config{
		Seed:    1,
		Medium:  medium.Config{MaxDelay: 2 * time.Second},
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete: %+v", res.Blocked)
	}
	// Both the sim ticker and the medium ticker must be gone well before
	// the 500ms tick the old code slept through.
	deadline := time.Now().Add(250 * time.Millisecond)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still alive 250ms after Run returned (started with %d) — ticker outlived the run",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
