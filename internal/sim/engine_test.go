package sim

import (
	"reflect"
	"testing"

	"repro/internal/fsm"
)

func TestEngineFSMCompletes(t *testing.T) {
	d := deriveFor(t, "SPEC a1; b2; c3; exit ENDSPEC")
	res, err := Run(d.Entities, Config{Seed: 1, Engine: EngineFSM})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete: %+v", res)
	}
	if res.CompiledPlaces() != len(d.Entities) {
		t.Fatalf("Engines = %v, want all %s", res.Engines, EngineFSM)
	}
	if err := CheckTrace(d.Service.Spec, res, 0); err != nil {
		t.Error(err)
	}
}

func TestEngineFSMSharedFleet(t *testing.T) {
	d := deriveFor(t, "SPEC a1; exit ||| b2; exit ENDSPEC")
	fleet := fsm.CompileEntities(d.Entities, fsm.Config{})
	if len(fleet.Errors) != 0 {
		t.Fatalf("compile errors: %v", fleet.Errors)
	}
	for seed := int64(0); seed < 20; seed++ {
		res, err := Run(d.Entities, Config{Seed: seed, Engine: EngineFSM, Fleet: fleet})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: %+v", seed, res)
		}
		if err := CheckTrace(d.Service.Spec, res, 0); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestEngineFSMMixedFleet(t *testing.T) {
	// a^n b^n: unbounded entities fall back to the AST interpreter while
	// any finite ones run compiled; the run must still produce service
	// traces.
	d := deriveFor(t, `SPEC A WHERE PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END ENDSPEC`)
	fleet := fsm.CompileEntities(d.Entities, fsm.Config{MaxStates: 256})
	if len(fleet.Errors) == 0 {
		t.Fatal("expected compile errors for unbounded entities")
	}
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(d.Entities, Config{Seed: seed, MaxEvents: 12, Engine: EngineFSM, Fleet: fleet})
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut {
			t.Fatalf("seed %d timed out: %+v", seed, res)
		}
		for p := range fleet.Errors {
			if res.Engines[p] != EngineAST {
				t.Errorf("seed %d: entity %d ran %s, want ast fallback", seed, p, res.Engines[p])
			}
		}
		if err := CheckTrace(d.Service.Spec, res, 200000); err != nil {
			t.Errorf("seed %d: %v (trace %v)", seed, err, res.TraceStrings())
		}
	}
}

func TestLockstepEnginesAgree(t *testing.T) {
	specs := []string{
		"SPEC a1; b2; exit ENDSPEC",
		"SPEC a1; exit ||| b2; exit ENDSPEC",
		"SPEC a1; b2; exit [] a1; c2; exit ENDSPEC",
		"SPEC a1; c3; b2; exit [] e1; b2; exit ENDSPEC",
		"SPEC a1; exit >> (b2; exit ||| c3; exit) >> d1; exit ENDSPEC",
	}
	for _, src := range specs {
		d := deriveFor(t, src)
		for seed := int64(0); seed < 25; seed++ {
			base := Config{Seed: seed, Lockstep: true, MaxEvents: 40}
			astCfg := base
			astRes, err := Run(d.Entities, astCfg)
			if err != nil {
				t.Fatalf("%s seed %d ast: %v", src, seed, err)
			}
			fsmCfg := base
			fsmCfg.Engine = EngineFSM
			fsmRes, err := Run(d.Entities, fsmCfg)
			if err != nil {
				t.Fatalf("%s seed %d fsm: %v", src, seed, err)
			}
			if !reflect.DeepEqual(astRes.TraceStrings(), fsmRes.TraceStrings()) {
				t.Fatalf("%s seed %d: traces diverge\n ast: %v\n fsm: %v",
					src, seed, astRes.TraceStrings(), fsmRes.TraceStrings())
			}
			if astRes.Completed != fsmRes.Completed || astRes.Deadlocked != fsmRes.Deadlocked ||
				astRes.Stopped != fsmRes.Stopped {
				t.Fatalf("%s seed %d: outcome diverges: ast %+v fsm %+v", src, seed, astRes, fsmRes)
			}
			if astRes.Medium.Sent != fsmRes.Medium.Sent || astRes.Medium.Delivered != fsmRes.Medium.Delivered {
				t.Fatalf("%s seed %d: medium stats diverge: %+v vs %+v",
					src, seed, astRes.Medium, fsmRes.Medium)
			}
			if err := CheckTrace(d.Service.Spec, astRes, 0); err != nil {
				t.Errorf("%s seed %d: %v", src, seed, err)
			}
		}
	}
}

func TestLockstepDeterministic(t *testing.T) {
	d := deriveFor(t, "SPEC a1; exit >> (b2; exit ||| c3; exit) >> d1; exit ENDSPEC")
	for _, engine := range []Engine{EngineAST, EngineFSM} {
		first, err := Run(d.Entities, Config{Seed: 7, Lockstep: true, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			again, err := Run(d.Entities, Config{Seed: 7, Lockstep: true, Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first.TraceStrings(), again.TraceStrings()) {
				t.Fatalf("%s: lockstep not reproducible: %v vs %v",
					engine, first.TraceStrings(), again.TraceStrings())
			}
		}
	}
}

func TestLockstepRejectsAsyncMedium(t *testing.T) {
	d := deriveFor(t, "SPEC a1; b2; exit ENDSPEC")
	if _, err := Run(d.Entities, Config{Seed: 1, Lockstep: true, Reliable: true}); err == nil {
		t.Error("lockstep with Reliable should be rejected")
	}
	cfg := Config{Seed: 1, Lockstep: true}
	cfg.Medium.MaxDelay = 1
	if _, err := Run(d.Entities, cfg); err == nil {
		t.Error("lockstep with MaxDelay should be rejected")
	}
}
