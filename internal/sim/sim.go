// Package sim executes a derived protocol for real: one goroutine per
// protocol entity, interpreting its specification with the operational
// semantics of internal/lts and exchanging synchronization messages through
// the concurrent FIFO medium of internal/medium — the runtime counterpart
// of the algebraic composition checked by internal/compose.
//
// Service primitives are offered to a pluggable user harness (the "service
// users" of Fig. 1), executed events are collected into a globally ordered
// trace, and the trace is checked for membership in the service
// specification's weak trace set. Repeated randomized runs give the
// statistical face of the paper's Section-5 correctness theorem, under real
// concurrency, scheduling nondeterminism, and (optionally) random message
// delays.
package sim

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/fsm"
	"repro/internal/lotos"
	"repro/internal/medium"
)

// Engine names an entity execution engine.
type Engine string

const (
	// EngineAST interprets the entity syntax trees with the SOS rules
	// (the default).
	EngineAST Engine = "ast"
	// EngineFSM executes entities compiled to table-driven machines
	// (internal/fsm), falling back to the AST interpreter per entity whose
	// state space exceeds the compilation cap.
	EngineFSM Engine = "fsm"
)

// TraceEvent is one executed service primitive.
type TraceEvent struct {
	Seq   int
	Place int
	Ev    lotos.Event
}

// String renders "a1".
func (t TraceEvent) String() string { return t.Ev.String() }

// Harness decides, for the user at one place, which of the offered service
// primitives to execute. Returning -1 declines all offers for now (the
// entity waits until something changes). Implementations must be safe for
// concurrent use by multiple entity goroutines.
type Harness interface {
	Choose(place int, offered []lotos.Event) int
}

// AcceptAll is a harness that accepts a uniformly random offer.
type AcceptAll struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewAcceptAll builds a seeded accept-everything harness.
func NewAcceptAll(seed int64) *AcceptAll {
	return &AcceptAll{rng: rand.New(newPCG(seed))}
}

// Choose implements Harness.
func (h *AcceptAll) Choose(place int, offered []lotos.Event) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(offered) == 0 {
		return -1
	}
	return h.rng.IntN(len(offered))
}

// Scripted is a harness that drives the users along a fixed global sequence
// of service primitives; offers that do not match the next expected
// primitive are declined. It makes directed scenarios reproducible.
type Scripted struct {
	mu     sync.Mutex
	script []string
	cursor int
}

// NewScripted builds a harness for the given event sequence (rendered
// forms, e.g. "read1").
func NewScripted(script []string) *Scripted {
	return &Scripted{script: script}
}

// Choose implements Harness: it claims the next script slot when offered.
func (h *Scripted) Choose(place int, offered []lotos.Event) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cursor >= len(h.script) {
		return -1
	}
	want := h.script[h.cursor]
	for i, ev := range offered {
		if ev.String() == want {
			h.cursor++
			return i
		}
	}
	return -1
}

// Remaining returns how many script entries were not executed.
func (h *Scripted) Remaining() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.script) - h.cursor
}

// Config tunes a simulation run.
type Config struct {
	// Seed drives every random choice of the run (scheduling decisions,
	// harness, medium delays/losses derive their seeds from it via SubSeed).
	Seed int64
	// Medium configures the underlying communication medium. A zero
	// Medium.Seed is derived from Seed unless MediumSeedSet pins it.
	Medium medium.Config
	// MediumSeedSet marks Medium.Seed as deliberately chosen even when it is
	// zero. Without it a zero Medium.Seed means "unset" and the run derives
	// one from Seed — which would make an explicitly pinned seed 0
	// unreproducible by request.
	MediumSeedSet bool
	// Reliable interposes the stop-and-wait ARQ layer (medium.Reliable)
	// between the entities and a lossy wire, realizing the Section-6
	// error-recovery transformation: Medium.LossRate and Medium.MaxDelay
	// then describe the unreliable WIRE, while the entities still see
	// exactly-once in-order FIFO channels.
	Reliable bool
	// MaxEvents stops the run after this many service primitives
	// (mandatory for non-terminating services; 0 means unlimited).
	MaxEvents int
	// Timeout aborts a stuck run (default 5s).
	Timeout time.Duration
	// Harness supplies user decisions (default: accept-all seeded from
	// Seed).
	Harness Harness
	// Engine selects the entity execution engine ("" means EngineAST).
	Engine Engine
	// Fleet supplies precompiled machines for EngineFSM. Nil makes Run
	// compile the entities itself (under Compile); callers running many
	// simulations of one protocol should compile once and share the fleet.
	Fleet *fsm.Fleet
	// Compile tunes entity compilation when Engine is EngineFSM and Fleet
	// is nil.
	Compile fsm.Config
	// Lockstep replaces the concurrent per-entity goroutines with a
	// deterministic single-threaded round-robin scheduler: entities take
	// turns in ascending place order, each attempting one step per sweep.
	// With a fixed Seed the whole execution is reproducible bit for bit —
	// the substrate of the AST-vs-FSM differential tests. Requires the
	// immediate medium (no Reliable, no MaxDelay), whose delivery has no
	// asynchronous component.
	Lockstep bool
}

// Result reports one simulation run.
type Result struct {
	// Trace is the global service-primitive trace, in execution order.
	Trace []TraceEvent
	// Completed reports that every entity terminated successfully.
	Completed bool
	// Deadlocked reports a global standstill: every entity blocked, no
	// message in flight.
	Deadlocked bool
	// TimedOut reports a timeout abort.
	TimedOut bool
	// Stopped reports a MaxEvents stop.
	Stopped bool
	// Medium is the medium counter snapshot.
	Medium medium.Stats
	// Blocked describes the entities' pending states for diagnosis when the
	// run did not complete.
	Blocked map[int]string
	// EventsByPlace counts executed service primitives per place.
	EventsByPlace map[int]int
	// Engines records which engine executed each place: under EngineFSM,
	// entities whose compilation failed run as EngineAST (mixed fleet).
	Engines map[int]Engine
}

// CompiledPlaces counts how many entities ran compiled.
func (r *Result) CompiledPlaces() int {
	n := 0
	for _, e := range r.Engines {
		if e == EngineFSM {
			n++
		}
	}
	return n
}

// TraceStrings renders the trace as event strings.
func (r *Result) TraceStrings() []string {
	out := make([]string, len(r.Trace))
	for i, t := range r.Trace {
		out[i] = t.String()
	}
	return out
}

// world coordinates the entity goroutines.
type world struct {
	mu       sync.Mutex
	cond     *sync.Cond
	gen      uint64
	waiting  int
	done     int
	total    int
	stopped  bool
	deadlock bool
	timedOut bool
	maxhit   bool
	med      medium.Transport

	trace     []TraceEvent
	maxEvents int
}

func newWorld(total int, med medium.Transport, maxEvents int) *world {
	w := &world{total: total, med: med, maxEvents: maxEvents}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *world) bump() {
	w.mu.Lock()
	w.gen++
	w.cond.Broadcast()
	w.mu.Unlock()
}

func (w *world) stop(timeout bool) {
	w.mu.Lock()
	if !w.stopped {
		w.stopped = true
		w.timedOut = timeout
	}
	w.gen++
	w.cond.Broadcast()
	w.mu.Unlock()
}

func (w *world) isStopped() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stopped
}

// record appends an executed service primitive; it may trigger a MaxEvents
// stop.
func (w *world) record(place int, ev lotos.Event) {
	w.mu.Lock()
	w.trace = append(w.trace, TraceEvent{Seq: len(w.trace), Place: place, Ev: ev})
	if w.maxEvents > 0 && len(w.trace) >= w.maxEvents {
		w.stopped = true
		w.maxhit = true
	}
	w.gen++
	w.cond.Broadcast()
	w.mu.Unlock()
}

// markDone notes an entity's successful termination.
func (w *world) markDone() {
	w.mu.Lock()
	w.done++
	w.gen++
	w.cond.Broadcast()
	w.mu.Unlock()
}

// await blocks until the world generation moves past gen, detecting global
// deadlock: everyone waiting or done, nothing in flight.
func (w *world) await(gen uint64) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.waiting++
	if w.waiting+w.done == w.total && w.med.InFlight() == 0 && !w.stopped {
		w.deadlock = true
		w.stopped = true
		w.gen++
		w.cond.Broadcast()
	}
	for w.gen == gen && !w.stopped {
		w.cond.Wait()
	}
	w.waiting--
	return w.gen
}

func (w *world) generation() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen
}

// stopStuck ends a lockstep run that made a full sweep without progress:
// a genuine deadlock when nothing is in flight, a stuck run (reported as a
// timeout, matching what the concurrent scheduler would eventually decide)
// otherwise.
func (w *world) stopStuck(deadlock bool) {
	w.mu.Lock()
	if !w.stopped {
		w.stopped = true
		w.deadlock = deadlock
		w.timedOut = !deadlock
	}
	w.gen++
	w.cond.Broadcast()
	w.mu.Unlock()
}

// resolveSeeds fills the config's derived random streams: the default
// harness and the medium seed. Sub-seeds come from the SplitMix64 mix
// (SubSeed), never from seed arithmetic — see seed.go. An explicitly pinned
// Medium.Seed (non-zero, or zero with MediumSeedSet) is left untouched.
func resolveSeeds(cfg Config) Config {
	if cfg.Harness == nil {
		cfg.Harness = NewAcceptAll(SubSeed(cfg.Seed, roleHarness, 0))
	}
	if cfg.Medium.Seed == 0 && !cfg.MediumSeedSet {
		cfg.Medium.Seed = SubSeed(cfg.Seed, roleMedium, 0)
	}
	return cfg
}

// Run executes the protocol entities concurrently until all terminate, the
// run deadlocks, MaxEvents service primitives were executed, or the timeout
// expires.
func Run(entities map[int]*lotos.Spec, cfg Config) (*Result, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	cfg = resolveSeeds(cfg)
	var med medium.Transport
	if cfg.Reliable {
		med = medium.NewReliable(medium.ReliableConfig{
			LossRate: cfg.Medium.LossRate,
			MaxDelay: cfg.Medium.MaxDelay,
			Seed:     cfg.Medium.Seed,
		})
	} else {
		med = medium.New(cfg.Medium)
	}
	defer med.Close()

	if cfg.Lockstep && (cfg.Reliable || cfg.Medium.MaxDelay > 0) {
		return nil, fmt.Errorf("sim: lockstep requires the immediate medium (no Reliable, no MaxDelay)")
	}

	places := entityPlaces(entities)
	w := newWorld(len(places), med, cfg.MaxEvents)
	runners, engines, err := buildRunners(entities, places, med, w, cfg)
	if err != nil {
		return nil, err
	}

	// The sim ticker wakes waiters periodically while asynchronous medium
	// events (delayed visibility, ARQ retransmission and delivery) may
	// change what an entity can do. It exits promptly when Run returns: a
	// plain sleep loop would keep bumping a closed world for up to a full
	// tick after the run is over.
	if cfg.Medium.MaxDelay > 0 || cfg.Reliable {
		tick := cfg.Medium.MaxDelay / 4
		if tick <= 0 {
			tick = time.Millisecond
		}
		stopTick := make(chan struct{})
		defer close(stopTick)
		go func() {
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-stopTick:
					return
				case <-t.C:
					w.bump()
				}
			}
		}()
	}

	timer := time.AfterFunc(cfg.Timeout, func() { w.stop(true) })
	defer timer.Stop()

	var blocked map[int]string
	if cfg.Lockstep {
		// The lockstep scheduler is the Session seam run to completion on
		// the calling goroutine (the cluster simulator advances the same
		// loop quantum by quantum, so a cluster session and a lockstep Run
		// with the same seed are the same execution).
		s := &Session{runners: runners, w: w, med: med, engines: engines}
		if _, _, err := s.StepN(0); err != nil {
			return nil, err
		}
		blocked = s.blockedStates()
	} else {
		blocked = make(map[int]string, len(places))
		var blockedMu sync.Mutex
		var wg sync.WaitGroup
		errs := make(chan error, len(places))
		for _, r := range runners {
			wg.Add(1)
			go func(r *runner) {
				defer wg.Done()
				desc, err := r.run()
				if err != nil {
					errs <- fmt.Errorf("entity %d: %w", r.place, err)
					w.stop(false)
					return
				}
				blockedMu.Lock()
				blocked[r.place] = desc
				blockedMu.Unlock()
			}(r)
		}
		// No separate completion watcher is needed: runners return when they
		// terminate, and a global deadlock is detected by the last runner to
		// block (await), which stops the world and wakes everyone.
		wg.Wait()
		w.stop(false)

		select {
		case err := <-errs:
			return nil, err
		default:
		}
	}

	return w.snapshot(med.Stats(), blocked, engines), nil
}

// snapshot freezes the world into a Result.
func (w *world) snapshot(ms medium.Stats, blocked map[int]string, engines map[int]Engine) *Result {
	w.mu.Lock()
	defer w.mu.Unlock()
	res := &Result{
		Trace:         append([]TraceEvent(nil), w.trace...),
		Completed:     w.done == w.total,
		Deadlocked:    w.deadlock,
		TimedOut:      w.timedOut,
		Stopped:       w.maxhit,
		Medium:        ms,
		Blocked:       blocked,
		EventsByPlace: map[int]int{},
		Engines:       engines,
	}
	for _, te := range res.Trace {
		res.EventsByPlace[te.Place]++
	}
	return res
}
