package sim

import (
	"reflect"
	"testing"

	"repro/internal/fsm"
)

// TestSessionMatchesLockstepRun checks the seam identity: a Session stepped
// to completion — in one call or in small quanta — is the same execution as
// Run with Lockstep, under either engine, seed for seed.
func TestSessionMatchesLockstepRun(t *testing.T) {
	srcs := []string{
		"SPEC a1; b2; c3; exit ENDSPEC",
		"SPEC a1; exit ||| b2; exit ENDSPEC",
		"SPEC a1; b2; exit [] c1; d3; b2; exit ENDSPEC",
		`SPEC A WHERE PROC A = a1; b2; A END ENDSPEC`,
	}
	for _, src := range srcs {
		d := deriveFor(t, src)
		fleet := fsm.CompileEntities(d.Entities, fsm.Config{})
		for seed := int64(0); seed < 12; seed++ {
			cfg := Config{Seed: seed, Lockstep: true, MaxEvents: 16}
			want, err := Run(d.Entities, cfg)
			if err != nil {
				t.Fatalf("%s seed %d run: %v", src, seed, err)
			}
			for _, quantum := range []int{0, 1, 3} {
				for _, engine := range []Engine{EngineAST, EngineFSM} {
					scfg := cfg
					scfg.Engine = engine
					if engine == EngineFSM {
						scfg.Fleet = fleet
					}
					s, err := NewSession(d.Entities, scfg)
					if err != nil {
						t.Fatalf("%s seed %d session: %v", src, seed, err)
					}
					for {
						_, done, err := s.StepN(quantum)
						if err != nil {
							t.Fatalf("%s seed %d step: %v", src, seed, err)
						}
						if done {
							break
						}
					}
					got := s.Result()
					s.Close()
					if !reflect.DeepEqual(got.TraceStrings(), want.TraceStrings()) {
						t.Fatalf("%s seed %d engine %s quantum %d: trace %v, want %v",
							src, seed, engine, quantum, got.TraceStrings(), want.TraceStrings())
					}
					if got.Completed != want.Completed || got.Deadlocked != want.Deadlocked ||
						got.Stopped != want.Stopped || got.TimedOut != want.TimedOut {
						t.Fatalf("%s seed %d engine %s quantum %d: outcome %+v, want %+v",
							src, seed, engine, quantum, got, want)
					}
					if got.Medium.Sent != want.Medium.Sent || got.Medium.Delivered != want.Medium.Delivered {
						t.Fatalf("%s seed %d engine %s quantum %d: medium %+v, want %+v",
							src, seed, engine, quantum, got.Medium, want.Medium)
					}
				}
			}
		}
	}
}

// TestFleetSessionRequiresCompiledFleet checks the fleet-session contract:
// every place compiled, and the execution equal to the entity-map session.
func TestFleetSessionRequiresCompiledFleet(t *testing.T) {
	d := deriveFor(t, "SPEC a1; b2; c3; exit ENDSPEC")
	fleet := fsm.CompileEntities(d.Entities, fsm.Config{})
	s, err := NewFleetSession(fleet, Config{Seed: 5, MaxEvents: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := s.StepN(0); err != nil || !done {
		t.Fatalf("fleet session: done=%v err=%v", done, err)
	}
	got := s.Result()
	s.Close()
	if !got.Completed {
		t.Fatalf("fleet session did not complete: %+v", got.Blocked)
	}
	want, err := Run(d.Entities, Config{Seed: 5, MaxEvents: 16, Lockstep: true, Engine: EngineFSM, Fleet: fleet})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.TraceStrings(), want.TraceStrings()) {
		t.Fatalf("fleet session trace %v, want %v", got.TraceStrings(), want.TraceStrings())
	}

	// An unbounded entity (anbn-style recursion) cannot join a fleet
	// session: the constructor must reject fleets with compile fallbacks.
	du := deriveFor(t, `SPEC A WHERE PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END ENDSPEC`)
	partial := fsm.CompileEntities(du.Entities, fsm.Config{MaxStates: 64})
	if len(partial.Errors) == 0 {
		t.Skip("expected a compile fallback to exercise rejection")
	}
	if _, err := NewFleetSession(partial, Config{Seed: 1}); err == nil {
		t.Error("fleet session accepted a fleet with compile fallbacks")
	}

	// Wall-clock options are incompatible with the synchronous scheduler.
	if _, err := NewSession(d.Entities, Config{Seed: 1, Reliable: true}); err == nil {
		t.Error("session accepted the ARQ layer")
	}
}
