package sim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lotos"
	"repro/internal/medium"
)

func deriveFor(t testing.TB, src string) *core.Derivation {
	t.Helper()
	d, err := core.Derive(lotos.MustParse(src), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunSequenceCompletes(t *testing.T) {
	d := deriveFor(t, "SPEC a1; b2; c3; exit ENDSPEC")
	res, err := Run(d.Entities, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete: %+v", res)
	}
	if got := strings.Join(res.TraceStrings(), " "); got != "a1 b2 c3" {
		t.Errorf("trace = %q", got)
	}
	if res.Medium.Sent != 2 || res.Medium.Delivered != 2 {
		t.Errorf("medium stats: %+v", res.Medium)
	}
	if err := CheckTrace(d.Service.Spec, res, 0); err != nil {
		t.Error(err)
	}
}

func TestRunManySeeds(t *testing.T) {
	specs := []string{
		"SPEC a1; b2; exit ENDSPEC",
		"SPEC a1; exit ||| b2; exit ENDSPEC",
		"SPEC a1; b2; exit [] a1; c2; exit ENDSPEC",
		"SPEC a1; c3; b2; exit [] e1; b2; exit ENDSPEC",
		"SPEC a1; exit >> (b2; exit ||| c3; exit) >> d1; exit ENDSPEC",
	}
	for _, src := range specs {
		d := deriveFor(t, src)
		st, err := RunMany(d.Service.Spec, d.Entities, Config{Seed: 42}, 25, 0)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if st.Completed != st.Runs {
			t.Errorf("%s: %d/%d runs completed (%+v)", src, st.Completed, st.Runs, st)
		}
	}
}

func TestRunRecursiveServiceBounded(t *testing.T) {
	// Example 2: a^n b^n. Non-terminating choice may recurse forever, so
	// bound the run by events.
	d := deriveFor(t, `SPEC A WHERE PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END ENDSPEC`)
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(d.Entities, Config{Seed: seed, MaxEvents: 12})
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut {
			t.Fatalf("seed %d timed out: %+v", seed, res)
		}
		if err := CheckTrace(d.Service.Spec, res, 200000); err != nil {
			t.Errorf("seed %d: %v (trace %v)", seed, err, res.TraceStrings())
		}
		// a^n b^n shape: every prefix has #b <= #a.
		as, bs := 0, 0
		for _, ev := range res.TraceStrings() {
			switch ev {
			case "a1":
				as++
			case "b2":
				bs++
			}
			if bs > as {
				t.Fatalf("seed %d: b2 before matching a1 in %v", seed, res.TraceStrings())
			}
		}
	}
}

func TestRunWithDelays(t *testing.T) {
	d := deriveFor(t, "SPEC a1; b2; c3; exit >> d2; e1; exit ENDSPEC")
	st, err := RunMany(d.Service.Spec, d.Entities, Config{
		Seed:   7,
		Medium: medium.Config{MaxDelay: 2 * time.Millisecond},
	}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != st.Runs {
		t.Errorf("with delays: %+v", st)
	}
}

func TestScriptedHarnessDrivesChoice(t *testing.T) {
	d := deriveFor(t, "SPEC a1; b2; exit [] c1; d3; b2; exit ENDSPEC")
	// Drive the right alternative.
	h := NewScripted([]string{"c1", "d3", "b2"})
	res, err := Run(d.Entities, Config{Seed: 3, Harness: h})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("not completed: %+v blocked=%v", res, res.Blocked)
	}
	if got := strings.Join(res.TraceStrings(), " "); got != "c1 d3 b2" {
		t.Errorf("trace = %q", got)
	}
	if h.Remaining() != 0 {
		t.Errorf("script not consumed: %d left", h.Remaining())
	}
}

func TestScriptedFileCopy(t *testing.T) {
	// Example 3 without the disable wrapper: copy two records.
	src := `
SPEC S WHERE
  PROC S = (read1; push2; S >> pop2; write3; exit)
        [] (eof1; make3; exit)
  END
ENDSPEC`
	d := deriveFor(t, src)
	script := []string{"read1", "push2", "read1", "push2", "eof1", "make3",
		"pop2", "write3", "pop2", "write3"}
	h := NewScripted(script)
	res, err := Run(d.Entities, Config{Seed: 11, Harness: h, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("file copy did not complete: blocked=%v trace=%v", res.Blocked, res.TraceStrings())
	}
	if len(res.Trace) != len(script) {
		t.Errorf("trace %v, want %v", res.TraceStrings(), script)
	}
	if err := CheckTrace(d.Service.Spec, res, 200000); err != nil {
		t.Error(err)
	}
}

func TestDisabledServiceRuns(t *testing.T) {
	// With the disable wrapper, runs complete either normally or through
	// the interrupt; every trace stays within the service's weak traces
	// EXCEPT for the documented Section 3.3 deviation, which is tolerated
	// here by accepting traces whose d3-free prefix is a service trace.
	d := deriveFor(t, "SPEC a1; b2; c3; exit [> d3; exit ENDSPEC")
	completed := 0
	for seed := int64(0); seed < 20; seed++ {
		res, err := Run(d.Entities, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed {
			completed++
		}
		if res.TimedOut {
			t.Errorf("seed %d timed out: blocked=%v", seed, res.Blocked)
		}
	}
	if completed == 0 {
		t.Error("no run completed")
	}
}

func TestLossyMediumStallsProtocol(t *testing.T) {
	// The derived protocols assume the reliable medium of Section 1;
	// dropping messages stalls them (motivating the error-recovery
	// extension discussed in Section 6). With 100% loss the first
	// cross-place synchronization never arrives.
	d := deriveFor(t, "SPEC a1; b2; exit ENDSPEC")
	res, err := Run(d.Entities, Config{
		Seed:    5,
		Medium:  medium.Config{LossRate: 1.0},
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("protocol completed despite total message loss")
	}
	if !res.Deadlocked {
		t.Errorf("expected deadlock detection, got %+v", res)
	}
	if res.Medium.Dropped == 0 {
		t.Error("no drops recorded")
	}
	if got := strings.Join(res.TraceStrings(), " "); got != "a1" {
		t.Errorf("trace = %q, want only a1", got)
	}
}

func TestDeadlockDetectionOnBrokenEntities(t *testing.T) {
	// Two entities that each wait for the other's message first.
	entities := map[int]*lotos.Spec{
		1: lotos.MustParse("SPEC (r2(1); exit) >> s2(2); exit ENDSPEC"),
		2: lotos.MustParse("SPEC (r1(2); exit) >> s1(1); exit ENDSPEC"),
	}
	res, err := Run(entities, Config{Seed: 1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("expected deadlock, got %+v", res)
	}
	if len(res.Blocked) != 2 {
		t.Errorf("blocked = %v", res.Blocked)
	}
}

func TestMaxEventsStopsNonTerminating(t *testing.T) {
	d := deriveFor(t, `SPEC A WHERE PROC A = a1; b2; A END ENDSPEC`)
	res, err := Run(d.Entities, Config{Seed: 2, MaxEvents: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || len(res.Trace) != 9 {
		t.Fatalf("res=%+v trace=%v", res, res.TraceStrings())
	}
	if err := CheckTrace(d.Service.Spec, res, 0); err != nil {
		t.Error(err)
	}
}

func TestCheckTraceRejectsBadTrace(t *testing.T) {
	service := lotos.MustParse("SPEC a1; b2; exit ENDSPEC")
	res := &Result{
		Trace: []TraceEvent{
			{Seq: 0, Place: 2, Ev: lotos.ServiceEvent("b", 2)},
			{Seq: 1, Place: 1, Ev: lotos.ServiceEvent("a", 1)},
		},
	}
	if err := CheckTrace(service, res, 0); err == nil {
		t.Error("reversed trace accepted")
	}
	// A completed run must be able to terminate.
	res2 := &Result{
		Trace:     []TraceEvent{{Seq: 0, Place: 1, Ev: lotos.ServiceEvent("a", 1)}},
		Completed: true,
	}
	if err := CheckTrace(service, res2, 0); err == nil {
		t.Error("premature termination accepted")
	}
}

func TestHarnessBasics(t *testing.T) {
	h := NewAcceptAll(1)
	if h.Choose(1, nil) != -1 {
		t.Error("empty offer must decline")
	}
	evs := []lotos.Event{lotos.ServiceEvent("a", 1), lotos.ServiceEvent("b", 1)}
	idx := h.Choose(1, evs)
	if idx < 0 || idx > 1 {
		t.Errorf("idx = %d", idx)
	}
	s := NewScripted([]string{"b1"})
	if s.Choose(1, evs) != 1 {
		t.Error("scripted must pick b1")
	}
	if s.Choose(1, evs) != -1 {
		t.Error("exhausted script must decline")
	}
}

func TestMediumFIFOAndStats(t *testing.T) {
	m := medium.New(medium.Config{Seed: 1})
	defer m.Close()
	m.Send(medium.Message{From: 1, To: 2, Node: 10, Occ: "0"})
	m.Send(medium.Message{From: 1, To: 2, Node: 11, Occ: "0"})
	if m.InFlight() != 2 {
		t.Fatalf("in flight = %d", m.InFlight())
	}
	// Head must be consumed in order.
	if m.TryConsume(medium.Message{From: 1, To: 2, Node: 11, Occ: "0"}) {
		t.Error("out-of-order consume succeeded")
	}
	if !m.TryConsumeCheck(medium.Message{From: 1, To: 2, Node: 10, Occ: "0"}) {
		t.Error("head check failed")
	}
	if !m.TryConsume(medium.Message{From: 1, To: 2, Node: 10, Occ: "0"}) {
		t.Error("head consume failed")
	}
	if !m.TryConsume(medium.Message{From: 1, To: 2, Node: 11, Occ: "0"}) {
		t.Error("second consume failed")
	}
	st := m.Stats()
	if st.Sent != 2 || st.Delivered != 2 || st.Dropped != 0 {
		t.Errorf("stats %+v", st)
	}
	if got := m.Pending(1, 2); len(got) != 0 {
		t.Errorf("pending %v", got)
	}
}

func TestMediumMessageHelpers(t *testing.T) {
	send := lotos.SendEvent(3, 7).WithOcc("0/2")
	msg := medium.MessageFor(1, send)
	if msg.From != 1 || msg.To != 3 || msg.Node != 7 || msg.Occ != "0/2" {
		t.Errorf("msg %+v", msg)
	}
	recv := lotos.RecvEvent(1, 7).WithOcc("0/2")
	want := medium.WantedBy(3, recv)
	if msg != want {
		t.Errorf("send %v != want %v", msg, want)
	}
	if !strings.Contains(msg.String(), "1->3") {
		t.Errorf("msg string %q", msg)
	}
	tagged := medium.Message{From: 1, To: 2, Tag: "halt"}
	if !strings.Contains(tagged.String(), "halt") {
		t.Errorf("tag string %q", tagged)
	}
}

func TestMediumDelayedVisibility(t *testing.T) {
	m := medium.New(medium.Config{Seed: 9, MaxDelay: 20 * time.Millisecond})
	defer m.Close()
	msg := medium.Message{From: 1, To: 2, Node: 1, Occ: "0"}
	m.Send(msg)
	// Eventually visible.
	deadline := time.Now().Add(time.Second)
	for !m.TryConsume(msg) {
		if time.Now().After(deadline) {
			t.Fatal("delayed message never became visible")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReliableLayerRecoversFromLoss(t *testing.T) {
	// The Section-6 error-recovery transformation realized as a transport
	// layer: the same derived protocol that stalls on a lossy medium
	// (TestLossyMediumStallsProtocol) completes when the stop-and-wait ARQ
	// layer provides reliable channels over the same lossy wire.
	d := deriveFor(t, "SPEC a1; b2; c3; exit >> d2; e1; exit ENDSPEC")
	completed := 0
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(d.Entities, Config{
			Seed:     seed,
			Reliable: true,
			Medium:   medium.Config{LossRate: 0.4},
			Timeout:  10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed {
			completed++
		}
		if err := CheckTrace(d.Service.Spec, res, 0); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
	if completed != 10 {
		t.Errorf("only %d/10 lossy runs completed with ARQ", completed)
	}
}

func TestReliableLayerKeepsFIFOSemantics(t *testing.T) {
	// Without loss, the ARQ layer must be behaviourally transparent.
	d := deriveFor(t, "SPEC a1; b2; a1; b2; exit ENDSPEC")
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(d.Entities, Config{Seed: seed, Reliable: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("seed %d incomplete: %+v", seed, res.Blocked)
		}
		if err := CheckTrace(d.Service.Spec, res, 0); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestEventsByPlace(t *testing.T) {
	d := deriveFor(t, "SPEC a1; b2; c1; exit ENDSPEC")
	res, err := Run(d.Entities, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsByPlace[1] != 2 || res.EventsByPlace[2] != 1 {
		t.Errorf("events by place: %v", res.EventsByPlace)
	}
}

func TestHandshakeInterruptRuntime(t *testing.T) {
	// The Section-3.3 handshake mode at runtime: the interrupt request and
	// acknowledgment use flushing receives (draining stale normal-part
	// messages), so interrupted runs complete cleanly.
	src := `
SPEC D [> d2; c1; exit WHERE
  PROC D = a1; b2; D END
ENDSPEC`
	d, err := core.Derive(lotos.MustParse(src), core.Options{Interrupt: core.InterruptHandshake})
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	for seed := int64(1); seed <= 20; seed++ {
		res, err := Run(d.Entities, Config{Seed: seed, MaxEvents: 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut {
			t.Fatalf("seed %d timed out: blocked=%v trace=%v", seed, res.Blocked, res.TraceStrings())
		}
		if res.Completed {
			completed++
			// A completed run must have gone through the interrupt.
			joined := strings.Join(res.TraceStrings(), " ")
			if !strings.Contains(joined, "d2") || !strings.HasSuffix(joined, "c1") {
				t.Errorf("seed %d: completed without interrupt path: %v", seed, res.TraceStrings())
			}
			// Property (a): no normal event after the interrupt.
			after := strings.SplitN(joined, "d2", 2)[1]
			if strings.Contains(after, "a1") || strings.Contains(after, "b2") {
				t.Errorf("seed %d: normal event after interrupt: %v", seed, res.TraceStrings())
			}
		}
		if err := CheckTrace(d.Service.Spec, res, 200000); err != nil {
			t.Errorf("seed %d: %v (trace %v)", seed, err, res.TraceStrings())
		}
	}
	if completed == 0 {
		t.Error("no handshake run completed")
	}
}
