package sim

// The single-entity seam: one protocol entity stepped by an EXTERNAL
// scheduler. The wire deployment (internal/wire) runs each derived entity in
// its own OS process; a coordinator grants steps over TCP in exactly the
// order the in-process lockstep scheduler (Session.StepN) would, so a
// distributed session with seed s is the same execution as Run with
// Config{Lockstep: true, Seed: s}. EntityStepper is the runner loop of one
// entity exposed for that driver: same stepper engines, same candidate
// scan, same random-choice consumption — the engine-independent scheduling
// contract of stepOnce, verbatim.

import (
	"fmt"

	"repro/internal/fsm"
	"repro/internal/lotos"
	"repro/internal/medium"
)

// HarnessSeed derives the seed of a run's default accept-all harness —
// exactly the stream resolveSeeds hands Run and Session. External
// schedulers that host the harness themselves (the wire coordinator) must
// use it to stay execution-identical to an in-process lockstep run.
func HarnessSeed(seed int64) int64 { return SubSeed(seed, roleHarness, 0) }

// RunnerSeed derives the scheduling seed of the entity at sorted-place
// index placeIndex — the stream buildRunners hands runner placeIndex.
func RunnerSeed(seed int64, placeIndex int) int64 {
	return SubSeed(seed, roleRunner, placeIndex)
}

// StepOutcome reports one external step of an entity.
type StepOutcome struct {
	// Progressed reports that the entity executed a transition.
	Progressed bool
	// Done reports successful termination (the δ transition fired); the
	// entity must not be stepped again.
	Done bool
	// Event is the service primitive executed this step, if any.
	Event *lotos.Event
}

// EntityStepper drives one protocol entity against an arbitrary
// medium.Transport, one stepOnce at a time, on the caller's goroutine.
// It is single-goroutine state: not safe for concurrent use.
type EntityStepper struct {
	r      *runner
	w      *world
	engine Engine
	done   bool
}

// NewEntityStepper builds the external-scheduler seam for one entity.
// machine selects the compiled engine when non-nil; otherwise spec is
// interpreted by the AST engine (exactly the per-entity fallback of
// buildRunners). seed must be RunnerSeed(runSeed, placeIndex) and harness
// the shared run harness for the execution to match an in-process run.
func NewEntityStepper(place int, spec *lotos.Spec, machine *fsm.Machine, med medium.Transport, harness Harness, seed int64) (*EntityStepper, error) {
	if harness == nil {
		return nil, fmt.Errorf("sim: entity stepper needs a harness")
	}
	var st stepper
	engine := EngineAST
	if machine != nil {
		st = newFSMStepper(machine)
		engine = EngineFSM
	} else {
		if spec == nil {
			return nil, fmt.Errorf("sim: entity %d: no compiled machine and no specification to interpret", place)
		}
		ast, err := newASTStepper(place, spec)
		if err != nil {
			return nil, err
		}
		st = ast
	}
	// A private single-entity world collects this entity's executed service
	// primitives; the external scheduler owns the global trace, MaxEvents
	// accounting and stop conditions, so the local world never stops.
	w := newWorld(1, med, 0)
	r := newRunner(place, st, med, w, Config{Harness: harness}, seed)
	return &EntityStepper{r: r, w: w, engine: engine}, nil
}

// Engine reports which engine the stepper runs (EngineFSM when compiled).
func (e *EntityStepper) Engine() Engine { return e.engine }

// StepOnce attempts one transition, exactly as one lockstep sweep visit
// would. After termination it reports Done without stepping.
func (e *EntityStepper) StepOnce() (StepOutcome, error) {
	if e.done {
		return StepOutcome{Done: true}, nil
	}
	before := e.events()
	progressed, done, err := e.r.stepOnce()
	if err != nil {
		return StepOutcome{}, err
	}
	out := StepOutcome{Progressed: progressed, Done: done}
	if done {
		e.done = true
	}
	if after := e.eventAt(before); after != nil {
		out.Event = after
	}
	return out, nil
}

// events returns how many service primitives the entity has executed.
func (e *EntityStepper) events() int {
	e.w.mu.Lock()
	defer e.w.mu.Unlock()
	return len(e.w.trace)
}

// eventAt returns the event recorded at index i (nil when none was).
func (e *EntityStepper) eventAt(i int) *lotos.Event {
	e.w.mu.Lock()
	defer e.w.mu.Unlock()
	if i >= len(e.w.trace) {
		return nil
	}
	ev := e.w.trace[i].Ev
	return &ev
}

// Describe renders the entity's current state for diagnostics.
func (e *EntityStepper) Describe() string {
	if e.done {
		return "terminated"
	}
	return e.r.step.describe()
}

// Enabled classifies the entity's current transition row for a global
// quiescence check: the external scheduler combines the per-entity reports
// into the composition-level enabledness verdict (mirroring the replayer's
// anyEnabled). SendTargets lists the destination place of every send
// transition (enabledness of a send is a global question — it depends on
// the receiver's queue occupancy against the channel capacity — so the
// stepper only reports the offer).
type Enabled struct {
	// Delta reports a successful-termination transition.
	Delta bool
	// Local reports an internal transition or a service-primitive offer —
	// always executable, so any entity with Local set is not quiescent.
	Local bool
	// RecvReady reports a receive transition whose wanted message is
	// currently consumable from the entity's medium.
	RecvReady bool
	// SendTargets are the destination places of the row's send transitions.
	SendTargets []int
}

// Enabledness computes the entity's current Enabled report.
func (e *EntityStepper) Enabledness() (Enabled, error) {
	var en Enabled
	if e.done {
		return en, nil
	}
	s := e.r.step
	n, err := s.reload()
	if err != nil {
		return en, err
	}
	for i := 0; i < n; i++ {
		switch s.op(i) {
		case fsm.OpDelta:
			en.Delta = true
		case fsm.OpInternal, fsm.OpService:
			en.Local = true
		case fsm.OpSend:
			en.SendTargets = append(en.SendTargets, s.ev(i).Place)
		case fsm.OpRecv:
			if e.r.med.TryConsumeCheck(medium.WantedBy(e.r.place, s.ev(i))) {
				en.RecvReady = true
			}
		case fsm.OpRecvFlush:
			if e.r.med.TryConsumeFlushCheck(medium.WantedBy(e.r.place, s.ev(i))) {
				en.RecvReady = true
			}
		}
	}
	return en, nil
}

// StepExact executes transition tindex of the current row, validating that
// its dispatch kind matches want — the distributed face of witness replay
// (sim.ReplayWitness's per-step execution, with the medium fault steps
// handled elsewhere). wantService/wantSend/... use the compose step-kind
// strings; the caller maps them to fsm ops via ExactKind.
func (e *EntityStepper) StepExact(tindex int, want fsm.Op) (StepOutcome, error) {
	if e.done {
		return StepOutcome{}, fmt.Errorf("sim: entity %d already terminated", e.r.place)
	}
	s := e.r.step
	n, err := s.reload()
	if err != nil {
		return StepOutcome{}, err
	}
	if want == fsm.OpDelta {
		// Global termination: take the entity's δ transition regardless of
		// tindex (the witness's δ step is a single global transition).
		for i := 0; i < n; i++ {
			if s.op(i) == fsm.OpDelta {
				if err := s.advance(i); err != nil {
					return StepOutcome{}, err
				}
				e.done = true
				return StepOutcome{Progressed: true, Done: true}, nil
			}
		}
		return StepOutcome{}, fmt.Errorf("sim: entity %d cannot terminate", e.r.place)
	}
	if tindex < 0 || tindex >= n {
		return StepOutcome{}, fmt.Errorf("sim: entity %d has %d transitions, step selects #%d", e.r.place, n, tindex)
	}
	op := s.op(tindex)
	if op != want && !(want == fsm.OpRecv && op == fsm.OpRecvFlush) {
		return StepOutcome{}, fmt.Errorf("sim: entity %d transition #%d is %s, not %s", e.r.place, tindex, op, want)
	}
	before := e.events()
	if err := e.r.execute(tindex); err != nil {
		return StepOutcome{}, err
	}
	if err := s.advance(tindex); err != nil {
		return StepOutcome{}, err
	}
	out := StepOutcome{Progressed: true}
	if after := e.eventAt(before); after != nil {
		out.Event = after
	}
	return out, nil
}
