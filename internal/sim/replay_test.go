package sim

import (
	"strings"
	"testing"

	"repro/internal/compose"
)

// replayWitnessFor verifies src under the given options and returns the
// derivation plus the witness (failing the test when none is produced).
func replayWitnessFor(t *testing.T, src string, opts compose.VerifyOptions) (*compose.Report, *compose.Witness) {
	t.Helper()
	d := deriveFor(t, src)
	rep, err := compose.Verify(d.Service.Spec, d.Entities, opts)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rep.Ok() {
		t.Fatalf("expected a non-conformant verdict for %s under %s", src, opts.Faults)
	}
	if rep.Witness == nil {
		t.Fatalf("non-conformant verdict carries no witness:\n%s", rep.Summary())
	}
	return rep, rep.Witness
}

// TestReplayReproducesDeadlockWitness: every deadlock counterexample found by
// exploration is a real execution — the concrete interpreter accepts each
// step, produces the witness's observable trace, and ends deadlocked.
func TestReplayReproducesDeadlockWitness(t *testing.T) {
	cases := []struct {
		src    string
		faults compose.FaultModel
		cap    int
	}{
		{"SPEC a1; b2; exit ENDSPEC", compose.FaultModel{Loss: true}, 1},
		{"SPEC a1; b2; c3; exit ENDSPEC", compose.FaultModel{Loss: true}, 2},
		{"SPEC a1; b2; exit [] a1; c2; exit ENDSPEC", compose.FaultModel{Loss: true, Reorder: true}, 2},
		{"SPEC A WHERE\n  PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END\nENDSPEC",
			compose.FaultModel{Duplication: true}, 2},
	}
	for _, c := range cases {
		d := deriveFor(t, c.src)
		rep, err := compose.Verify(d.Service.Spec, d.Entities, compose.VerifyOptions{ChannelCap: c.cap, Faults: c.faults})
		if err != nil {
			t.Fatalf("verify: %v", err)
		}
		w := rep.Witness
		if w == nil || w.Kind != compose.WitnessDeadlock {
			t.Fatalf("%s faults=%s: expected a deadlock witness, got %+v", c.src, c.faults, w)
		}
		res, err := ReplayWitness(d.Entities, w)
		if err != nil {
			t.Fatalf("%s faults=%s: replay: %v", c.src, c.faults, err)
		}
		if got, want := strings.Join(res.Trace, " "), strings.Join(w.Trace, " "); got != want {
			t.Errorf("%s faults=%s: replay trace %q, witness trace %q", c.src, c.faults, got, want)
		}
		if !res.Deadlocked {
			t.Errorf("%s faults=%s: replay did not reproduce the deadlock", c.src, c.faults)
		}
		if res.Terminated {
			t.Errorf("%s faults=%s: deadlock replay claims successful termination", c.src, c.faults)
		}
		if res.Steps != len(w.Steps) {
			t.Errorf("%s faults=%s: replayed %d of %d steps", c.src, c.faults, res.Steps, len(w.Steps))
		}
	}
}

// TestReplayRecordsFaultStats: the medium counters after replay reflect the
// injected fault events, tying the abstract fault transitions to concrete
// medium operations.
func TestReplayRecordsFaultStats(t *testing.T) {
	d := deriveFor(t, "SPEC a1; b2; exit ENDSPEC")
	rep, err := compose.Verify(d.Service.Spec, d.Entities, compose.VerifyOptions{Faults: compose.FaultModel{Loss: true}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayWitness(d.Entities, rep.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if res.MediumStats.Dropped == 0 {
		t.Errorf("loss replay recorded no drops: %+v", res.MediumStats)
	}

	dupSrc := "SPEC A WHERE\n  PROC A = (a1; A >> b2; exit) [] (a1; b2; exit) END\nENDSPEC"
	d2 := deriveFor(t, dupSrc)
	rep2, err := compose.Verify(d2.Service.Spec, d2.Entities, compose.VerifyOptions{ChannelCap: 2, Faults: compose.FaultModel{Duplication: true}})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := ReplayWitness(d2.Entities, rep2.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MediumStats.Duplicated == 0 {
		t.Errorf("duplication replay recorded no duplicates: %+v", res2.MediumStats)
	}
}

// TestReplayRejectsTamperedWitness: the replayer validates every step against
// the concrete system — a corrupted transition index or fault position is an
// error, not a silent divergence.
func TestReplayRejectsTamperedWitness(t *testing.T) {
	_, w := replayWitnessFor(t, "SPEC a1; b2; exit ENDSPEC",
		compose.VerifyOptions{Faults: compose.FaultModel{Loss: true}})
	d := deriveFor(t, "SPEC a1; b2; exit ENDSPEC")

	tamper := func(mutate func(*compose.Witness)) *compose.Witness {
		cp := *w
		cp.Steps = append([]compose.WitnessStep(nil), w.Steps...)
		mutate(&cp)
		return &cp
	}

	// An out-of-range transition index on the first entity step.
	bad := tamper(func(cw *compose.Witness) {
		for i := range cw.Steps {
			if cw.Steps[i].TIndex >= 0 {
				cw.Steps[i].TIndex = 99
				return
			}
		}
		t.Fatal("witness has no entity step to tamper with")
	})
	if _, err := ReplayWitness(d.Entities, bad); err == nil {
		t.Error("replay accepted a witness with an out-of-range transition index")
	}

	// A loss step pointing at an empty queue position.
	bad = tamper(func(cw *compose.Witness) {
		for i := range cw.Steps {
			if cw.Steps[i].Kind == compose.StepLoss {
				cw.Steps[i].Index = 7
				return
			}
		}
		t.Fatal("witness has no loss step to tamper with")
	})
	if _, err := ReplayWitness(d.Entities, bad); err == nil {
		t.Error("replay accepted a loss step at an unoccupied queue position")
	}

	// A nil witness is rejected outright.
	if _, err := ReplayWitness(d.Entities, nil); err == nil {
		t.Error("replay accepted a nil witness")
	}
}

// TestReplayConformantProtocolHasNoWitness: a conformant verdict carries no
// counterexample to replay.
func TestReplayConformantProtocolHasNoWitness(t *testing.T) {
	d := deriveFor(t, "SPEC a1; b2; exit ENDSPEC")
	rep, err := compose.Verify(d.Service.Spec, d.Entities, compose.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("expected conformance under the reliable medium:\n%s", rep.Summary())
	}
	if rep.Witness != nil {
		t.Errorf("conformant verdict carries a witness:\n%s", rep.Witness.Summary())
	}
}
