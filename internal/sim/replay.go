package sim

// This file implements counterexample replay: it re-executes a
// compose.Witness step-for-step through a runtime entity engine and the
// medium, confirming that the abstract counterexample found by state-space
// exploration is a real execution of the concrete system. Replay is fully
// deterministic: the witness pins every choice (which entity moves, which
// local transition fires, which medium fault strikes which queue position),
// and the medium runs with zero delay and no random faults — targeted
// DropAt/DuplicateAt/SwapAt calls reproduce the fault events instead.
//
// Replay runs on the same stepper abstraction as the simulator, so a witness
// can be replayed through either engine: the compiled tables preserve
// per-state transition order (the TIndex a witness step pins selects the
// same transition in both), which the FSM replay regression suite checks
// across the whole fault-matrix corpus.

import (
	"fmt"
	"sort"

	"repro/internal/compose"
	"repro/internal/fsm"
	"repro/internal/lotos"
	"repro/internal/medium"
)

// ReplayResult is the outcome of replaying a witness.
type ReplayResult struct {
	// Trace is the observable projection of the replayed execution: the
	// service primitives fired, plus a final "delta" on termination. It
	// must equal the witness's Trace.
	Trace []string
	// Terminated reports that the replay ended in global successful
	// termination (the witness path took the δ transition).
	Terminated bool
	// Deadlocked reports that after the final step no entity move, no
	// global δ, and no fault of the witness's model is enabled — the
	// deadlock the witness claims.
	Deadlocked bool
	// Steps is the number of witness steps executed.
	Steps int
	// MediumStats snapshots the medium counters after the replay (sent,
	// delivered, dropped, duplicated, reordered, flushed).
	MediumStats medium.Stats
	// Engines records which engine replayed each place.
	Engines map[int]Engine
}

// replayer holds the concrete system state during a witness replay.
type replayer struct {
	places []int
	steps  map[int]stepper
	med    *medium.Medium
	cap    int
	faults compose.FaultModel
}

// ReplayWitness re-executes a counterexample through the AST interpreter
// and returns what the concrete system did. Each witness step is validated
// against the entity's derived transitions (the step's TIndex must select a
// transition of the step's kind) or against the medium's queues (a fault
// step must find its queue position occupied); any mismatch is an error —
// the witness does not describe a real execution.
func ReplayWitness(entities map[int]*lotos.Spec, w *compose.Witness) (*ReplayResult, error) {
	return ReplayWitnessEngine(entities, w, EngineAST, nil)
}

// ReplayWitnessEngine is ReplayWitness with an engine choice. Under
// EngineFSM the entities run compiled (fleet is compiled on the spot when
// nil), with per-entity AST fallback on compilation failure.
func ReplayWitnessEngine(entities map[int]*lotos.Spec, w *compose.Witness, engine Engine, fleet *fsm.Fleet) (*ReplayResult, error) {
	if w == nil {
		return nil, fmt.Errorf("sim: nil witness")
	}
	// A service with no primitives derives zero entities; its (empty)
	// composed system is a root deadlock and the witness has no steps, so
	// replay degenerates to the final enabledness check.
	rp := &replayer{
		steps:  map[int]stepper{},
		med:    medium.New(medium.Config{}),
		cap:    w.ChannelCap,
		faults: w.Faults,
	}
	if rp.cap <= 0 {
		rp.cap = compose.DefaultChannelCap
	}
	defer rp.med.Close()
	if engine == EngineFSM && fleet == nil {
		fleet = fsm.CompileEntities(entities, fsm.Config{})
	}
	engines := make(map[int]Engine, len(entities))
	for p, sp := range entities {
		var st stepper
		engines[p] = EngineAST
		if engine == EngineFSM {
			if m := fleet.Machines[p]; m != nil {
				st = newFSMStepper(m)
				engines[p] = EngineFSM
			}
		}
		if st == nil {
			ast, err := newASTStepper(p, sp)
			if err != nil {
				return nil, err
			}
			st = ast
		}
		rp.places = append(rp.places, p)
		rp.steps[p] = st
	}
	sort.Ints(rp.places)

	res := &ReplayResult{Engines: engines}
	for i, st := range w.Steps {
		if err := rp.step(st, res); err != nil {
			return nil, fmt.Errorf("sim: witness step %d [%s] %s: %w", i+1, st.Kind, st.Label, err)
		}
		res.Steps++
	}
	if !res.Terminated {
		enabled, err := rp.anyEnabled()
		if err != nil {
			return nil, err
		}
		res.Deadlocked = !enabled
	}
	res.MediumStats = rp.med.Stats()
	return res, nil
}

// step executes one witness step against the concrete system.
func (rp *replayer) step(st compose.WitnessStep, res *ReplayResult) error {
	switch st.Kind {
	case compose.StepDelta:
		for _, p := range rp.places {
			s := rp.steps[p]
			n, err := s.reload()
			if err != nil {
				return err
			}
			found := false
			for i := 0; i < n; i++ {
				if s.op(i) == fsm.OpDelta {
					if err := s.advance(i); err != nil {
						return err
					}
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("entity %d cannot terminate", p)
			}
		}
		res.Trace = append(res.Trace, "delta")
		res.Terminated = true
		return nil
	case compose.StepLoss:
		if !rp.med.DropAt(st.From, st.To, st.Index) {
			return fmt.Errorf("channel %d->%d has no message at position %d", st.From, st.To, st.Index)
		}
		return nil
	case compose.StepDuplicate:
		if len(rp.med.Pending(st.From, st.To)) >= rp.cap {
			return fmt.Errorf("channel %d->%d is at capacity %d, duplication not enabled", st.From, st.To, rp.cap)
		}
		if !rp.med.DuplicateAt(st.From, st.To, st.Index) {
			return fmt.Errorf("channel %d->%d has no message at position %d", st.From, st.To, st.Index)
		}
		return nil
	case compose.StepReorder:
		if !rp.med.SwapAt(st.From, st.To, st.Index) {
			return fmt.Errorf("channel %d->%d has no adjacent pair at position %d", st.From, st.To, st.Index)
		}
		return nil
	}

	// Entity step: the TIndex selects the fired transition in derivation
	// order — the same order compose's exploration caches and the compiled
	// tables preserve.
	s, ok := rp.steps[st.Place]
	if !ok {
		return fmt.Errorf("witness names unknown entity %d", st.Place)
	}
	n, err := s.reload()
	if err != nil {
		return err
	}
	if st.TIndex < 0 || st.TIndex >= n {
		return fmt.Errorf("entity %d has %d transitions, witness selects #%d", st.Place, n, st.TIndex)
	}
	op, ev := s.op(st.TIndex), s.ev(st.TIndex)
	switch st.Kind {
	case compose.StepInternal:
		if op != fsm.OpInternal {
			return fmt.Errorf("entity %d transition #%d is %s, not internal", st.Place, st.TIndex, op)
		}
	case compose.StepService:
		if op != fsm.OpService {
			return fmt.Errorf("entity %d transition #%d is %s, not a service primitive", st.Place, st.TIndex, op)
		}
		res.Trace = append(res.Trace, ev.String())
	case compose.StepSend:
		if op != fsm.OpSend {
			return fmt.Errorf("entity %d transition #%d is %s, not a send", st.Place, st.TIndex, op)
		}
		if len(rp.med.Pending(st.Place, ev.Place)) >= rp.cap {
			return fmt.Errorf("channel %d->%d is at capacity %d, send blocks", st.Place, ev.Place, rp.cap)
		}
		rp.med.Send(medium.MessageFor(st.Place, ev))
	case compose.StepRecv:
		if op != fsm.OpRecv && op != fsm.OpRecvFlush {
			return fmt.Errorf("entity %d transition #%d is %s, not a receive", st.Place, st.TIndex, op)
		}
		want := medium.WantedBy(st.Place, ev)
		consumed := false
		if op == fsm.OpRecvFlush {
			consumed = rp.med.TryConsumeFlush(want)
		} else {
			consumed = rp.med.TryConsume(want)
		}
		if !consumed {
			return fmt.Errorf("entity %d cannot consume %s", st.Place, want)
		}
	default:
		return fmt.Errorf("unknown witness step kind %q", st.Kind)
	}
	return s.advance(st.TIndex)
}

// anyEnabled mirrors the composition's global-transition enabledness at the
// replayer's current state: an entity internal action or service primitive,
// a send with channel capacity left, a receive whose message is consumable,
// a global δ (every entity termination-ready), or a fault of the witness's
// model applicable to some queue.
func (rp *replayer) anyEnabled() (bool, error) {
	deltaReady := 0
	for _, p := range rp.places {
		s := rp.steps[p]
		n, err := s.reload()
		if err != nil {
			return false, err
		}
		sawDelta := false
		for i := 0; i < n; i++ {
			switch s.op(i) {
			case fsm.OpDelta:
				sawDelta = true
			case fsm.OpInternal, fsm.OpService:
				return true, nil
			case fsm.OpSend:
				if len(rp.med.Pending(p, s.ev(i).Place)) < rp.cap {
					return true, nil
				}
			case fsm.OpRecv:
				if rp.med.TryConsumeCheck(medium.WantedBy(p, s.ev(i))) {
					return true, nil
				}
			case fsm.OpRecvFlush:
				if rp.med.TryConsumeFlushCheck(medium.WantedBy(p, s.ev(i))) {
					return true, nil
				}
			}
		}
		if sawDelta {
			deltaReady++
		}
	}
	if deltaReady == len(rp.places) && len(rp.places) > 0 {
		return true, nil
	}
	if rp.faults.Any() {
		for _, from := range rp.places {
			for _, to := range rp.places {
				if from == to {
					continue
				}
				q := rp.med.Pending(from, to)
				if len(q) == 0 {
					continue
				}
				if rp.faults.Loss {
					return true, nil
				}
				if rp.faults.Duplication && len(q) < rp.cap {
					return true, nil
				}
				if rp.faults.Reorder {
					for i := 0; i+1 < len(q); i++ {
						if q[i] != q[i+1] {
							return true, nil
						}
					}
				}
			}
		}
	}
	return false, nil
}
