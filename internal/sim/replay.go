package sim

// This file implements counterexample replay: it re-executes a
// compose.Witness step-for-step through the runtime entity interpreter and
// medium, confirming that the abstract counterexample found by state-space
// exploration is a real execution of the concrete system. Replay is fully
// deterministic: the witness pins every choice (which entity moves, which
// local transition fires, which medium fault strikes which queue position),
// and the medium runs with zero delay and no random faults — targeted
// DropAt/DuplicateAt/SwapAt calls reproduce the fault events instead.

import (
	"fmt"
	"sort"

	"repro/internal/compose"
	"repro/internal/lotos"
	"repro/internal/lts"
	"repro/internal/medium"
)

// ReplayResult is the outcome of replaying a witness.
type ReplayResult struct {
	// Trace is the observable projection of the replayed execution: the
	// service primitives fired, plus a final "delta" on termination. It
	// must equal the witness's Trace.
	Trace []string
	// Terminated reports that the replay ended in global successful
	// termination (the witness path took the δ transition).
	Terminated bool
	// Deadlocked reports that after the final step no entity move, no
	// global δ, and no fault of the witness's model is enabled — the
	// deadlock the witness claims.
	Deadlocked bool
	// Steps is the number of witness steps executed.
	Steps int
	// MediumStats snapshots the medium counters after the replay (sent,
	// delivered, dropped, duplicated, reordered, flushed).
	MediumStats medium.Stats
}

// replayer holds the concrete system state during a witness replay.
type replayer struct {
	places []int
	envs   map[int]*lts.Env
	cur    map[int]lotos.Expr
	med    *medium.Medium
	cap    int
	faults compose.FaultModel
}

// ReplayWitness re-executes a counterexample through the runtime interpreter
// and returns what the concrete system did. Each witness step is validated
// against the entity's derived transitions (the step's TIndex must select a
// transition of the step's kind) or against the medium's queues (a fault
// step must find its queue position occupied); any mismatch is an error —
// the witness does not describe a real execution.
func ReplayWitness(entities map[int]*lotos.Spec, w *compose.Witness) (*ReplayResult, error) {
	if w == nil {
		return nil, fmt.Errorf("sim: nil witness")
	}
	// A service with no primitives derives zero entities; its (empty)
	// composed system is a root deadlock and the witness has no steps, so
	// replay degenerates to the final enabledness check.
	rp := &replayer{
		envs:   map[int]*lts.Env{},
		cur:    map[int]lotos.Expr{},
		med:    medium.New(medium.Config{}),
		cap:    w.ChannelCap,
		faults: w.Faults,
	}
	if rp.cap <= 0 {
		rp.cap = compose.DefaultChannelCap
	}
	defer rp.med.Close()
	for p, sp := range entities {
		env, err := lts.EnvFor(sp)
		if err != nil {
			return nil, fmt.Errorf("sim: entity %d: %w", p, err)
		}
		rp.places = append(rp.places, p)
		rp.envs[p] = env
		rp.cur[p] = sp.Root.Expr
	}
	sort.Ints(rp.places)

	res := &ReplayResult{}
	for i, st := range w.Steps {
		if err := rp.step(st, res); err != nil {
			return nil, fmt.Errorf("sim: witness step %d [%s] %s: %w", i+1, st.Kind, st.Label, err)
		}
		res.Steps++
	}
	if !res.Terminated {
		enabled, err := rp.anyEnabled()
		if err != nil {
			return nil, err
		}
		res.Deadlocked = !enabled
	}
	res.MediumStats = rp.med.Stats()
	return res, nil
}

// step executes one witness step against the concrete system.
func (rp *replayer) step(st compose.WitnessStep, res *ReplayResult) error {
	switch st.Kind {
	case compose.StepDelta:
		for _, p := range rp.places {
			ts, err := rp.envs[p].Transitions(rp.cur[p])
			if err != nil {
				return err
			}
			found := false
			for _, t := range ts {
				if t.Label.Kind == lts.LDelta {
					rp.cur[p] = t.To
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("entity %d cannot terminate", p)
			}
		}
		res.Trace = append(res.Trace, "delta")
		res.Terminated = true
		return nil
	case compose.StepLoss:
		if !rp.med.DropAt(st.From, st.To, st.Index) {
			return fmt.Errorf("channel %d->%d has no message at position %d", st.From, st.To, st.Index)
		}
		return nil
	case compose.StepDuplicate:
		if len(rp.med.Pending(st.From, st.To)) >= rp.cap {
			return fmt.Errorf("channel %d->%d is at capacity %d, duplication not enabled", st.From, st.To, rp.cap)
		}
		if !rp.med.DuplicateAt(st.From, st.To, st.Index) {
			return fmt.Errorf("channel %d->%d has no message at position %d", st.From, st.To, st.Index)
		}
		return nil
	case compose.StepReorder:
		if !rp.med.SwapAt(st.From, st.To, st.Index) {
			return fmt.Errorf("channel %d->%d has no adjacent pair at position %d", st.From, st.To, st.Index)
		}
		return nil
	}

	// Entity step: the TIndex selects the fired transition in derivation
	// order — the same order compose's exploration caches.
	ts, err := rp.envs[st.Place].Transitions(rp.cur[st.Place])
	if err != nil {
		return err
	}
	if st.TIndex < 0 || st.TIndex >= len(ts) {
		return fmt.Errorf("entity %d has %d transitions, witness selects #%d", st.Place, len(ts), st.TIndex)
	}
	t := ts[st.TIndex]
	switch st.Kind {
	case compose.StepInternal:
		if t.Label.Kind != lts.LInternal {
			return fmt.Errorf("entity %d transition #%d is %s, not internal", st.Place, st.TIndex, t.Label)
		}
	case compose.StepService:
		if t.Label.Kind != lts.LEvent || t.Label.Ev.Kind != lotos.EvService {
			return fmt.Errorf("entity %d transition #%d is %s, not a service primitive", st.Place, st.TIndex, t.Label)
		}
		res.Trace = append(res.Trace, t.Label.Ev.String())
	case compose.StepSend:
		if t.Label.Kind != lts.LEvent || t.Label.Ev.Kind != lotos.EvSend {
			return fmt.Errorf("entity %d transition #%d is %s, not a send", st.Place, st.TIndex, t.Label)
		}
		ev := t.Label.Ev
		if len(rp.med.Pending(st.Place, ev.Place)) >= rp.cap {
			return fmt.Errorf("channel %d->%d is at capacity %d, send blocks", st.Place, ev.Place, rp.cap)
		}
		rp.med.Send(medium.MessageFor(st.Place, ev))
	case compose.StepRecv:
		if t.Label.Kind != lts.LEvent || t.Label.Ev.Kind != lotos.EvRecv {
			return fmt.Errorf("entity %d transition #%d is %s, not a receive", st.Place, st.TIndex, t.Label)
		}
		ev := t.Label.Ev
		want := medium.WantedBy(st.Place, ev)
		consumed := false
		if flushingRecv(ev) {
			consumed = rp.med.TryConsumeFlush(want)
		} else {
			consumed = rp.med.TryConsume(want)
		}
		if !consumed {
			return fmt.Errorf("entity %d cannot consume %s", st.Place, want)
		}
	default:
		return fmt.Errorf("unknown witness step kind %q", st.Kind)
	}
	rp.cur[st.Place] = t.To
	return nil
}

// anyEnabled mirrors the composition's global-transition enabledness at the
// replayer's current state: an entity internal action or service primitive,
// a send with channel capacity left, a receive whose message is consumable,
// a global δ (every entity termination-ready), or a fault of the witness's
// model applicable to some queue.
func (rp *replayer) anyEnabled() (bool, error) {
	deltaReady := 0
	for _, p := range rp.places {
		ts, err := rp.envs[p].Transitions(rp.cur[p])
		if err != nil {
			return false, err
		}
		sawDelta := false
		for _, t := range ts {
			switch t.Label.Kind {
			case lts.LDelta:
				sawDelta = true
			case lts.LInternal:
				return true, nil
			case lts.LEvent:
				ev := t.Label.Ev
				switch ev.Kind {
				case lotos.EvService:
					return true, nil
				case lotos.EvSend:
					if len(rp.med.Pending(p, ev.Place)) < rp.cap {
						return true, nil
					}
				case lotos.EvRecv:
					want := medium.WantedBy(p, ev)
					if flushingRecv(ev) {
						if rp.med.TryConsumeFlushCheck(want) {
							return true, nil
						}
					} else if rp.med.TryConsumeCheck(want) {
						return true, nil
					}
				}
			}
		}
		if sawDelta {
			deltaReady++
		}
	}
	if deltaReady == len(rp.places) && len(rp.places) > 0 {
		return true, nil
	}
	if rp.faults.Any() {
		for _, from := range rp.places {
			for _, to := range rp.places {
				if from == to {
					continue
				}
				q := rp.med.Pending(from, to)
				if len(q) == 0 {
					continue
				}
				if rp.faults.Loss {
					return true, nil
				}
				if rp.faults.Duplication && len(q) < rp.cap {
					return true, nil
				}
				if rp.faults.Reorder {
					for i := 0; i+1 < len(q); i++ {
						if q[i] != q[i+1] {
							return true, nil
						}
					}
				}
			}
		}
	}
	return false, nil
}
