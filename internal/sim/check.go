package sim

import (
	"fmt"

	"repro/internal/lotos"
	"repro/internal/lts"
)

// CheckTrace verifies that a simulation result's observable trace is a weak
// trace of the service specification: the global ordering of service
// primitives produced by the distributed entities must be one the service
// allows. For completed runs the trace must moreover be extendable by
// successful termination.
//
// The service state space is explored to exactly the observable depth
// needed (trace length + 1), so the check is sound for recursive,
// infinite-state services as well.
func CheckTrace(service *lotos.Spec, res *Result, maxStates int) error {
	depth := len(res.Trace) + 2
	g, err := lts.ExploreSpec(service, lts.Limits{MaxObsDepth: depth, MaxStates: maxStates})
	if err != nil {
		return fmt.Errorf("sim: exploring service: %w", err)
	}
	trace := lts.JoinTrace(res.TraceStrings())
	if !lts.AcceptsTrace(g, trace) {
		return fmt.Errorf("sim: observed trace %q is not a service trace", trace)
	}
	if res.Completed {
		withDelta := trace
		if withDelta != "" {
			withDelta += lts.TraceSep
		}
		withDelta += "delta"
		if !lts.AcceptsTrace(g, withDelta) {
			return fmt.Errorf("sim: run terminated but service cannot terminate after %q", trace)
		}
	}
	return nil
}

// RunStats aggregates repeated randomized runs.
type RunStats struct {
	Runs       int
	Completed  int
	Deadlocked int
	TimedOut   int
	Stopped    int
	Events     int
	Sent       int
}

// RunMany performs n independent randomized runs with seeds seed0..seed0+n-1,
// checking every trace against the service. It fails fast on the first
// trace violation.
func RunMany(service *lotos.Spec, entities map[int]*lotos.Spec, cfg Config, n int, maxStates int) (RunStats, error) {
	var st RunStats
	base := cfg.Seed
	for i := 0; i < n; i++ {
		cfg.Seed = base + int64(i)
		// Medium and harness sub-seeds derive from the run seed (SubSeed),
		// so consecutive runs get disjoint streams without arithmetic here.
		cfg.Harness = nil // fresh seeded harness per run
		res, err := Run(entities, cfg)
		if err != nil {
			return st, err
		}
		if err := CheckTrace(service, res, maxStates); err != nil {
			return st, fmt.Errorf("seed %d: %w", cfg.Seed, err)
		}
		st.Runs++
		st.Events += len(res.Trace)
		st.Sent += res.Medium.Sent
		switch {
		case res.Completed:
			st.Completed++
		case res.Deadlocked:
			st.Deadlocked++
		case res.TimedOut:
			st.TimedOut++
		case res.Stopped:
			st.Stopped++
		}
	}
	return st, nil
}
