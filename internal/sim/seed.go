package sim

// Sub-seed derivation. One run seed (Config.Seed) identifies a whole
// execution, so every random stream of the run — the harness lottery, the
// medium's delays and faults, and each entity runner's scheduling choices —
// needs its own seed derived from it. Deriving them by addition
// (Seed+1, Seed+2, Seed+100+i, as earlier versions did) aliases nearby runs:
// seeds s and s+100 handed entity 0 of one run the scheduling stream of
// entity 100 of the other, and statistical sweeps over consecutive seeds
// (RunMany, the corpus differential tests) silently correlated. Instead,
// sub-seeds are produced by a SplitMix64-style bijective mix over
// (Seed, role, index): changing any input avalanches through all 64 output
// bits, so distinct (seed, role, index) triples give (with overwhelming
// probability) disjoint streams.

// Seed-stream roles. Each random consumer of a run has its own role
// constant, so no two consumers can collide even at equal indices.
const (
	// roleHarness seeds the default accept-all harness.
	roleHarness uint64 = 1
	// roleMedium seeds the medium (delays, losses, duplicates, reorders).
	roleMedium uint64 = 2
	// roleRunner seeds entity runner index i's scheduling stream.
	roleRunner uint64 = 3
	// RoleSession is reserved for callers that derive per-session run seeds
	// from one campaign seed (the cluster simulator): the sessions' run
	// seeds live in their own role space and can never alias the
	// intra-run streams above.
	RoleSession uint64 = 4
)

// splitmix64 is the SplitMix64 output permutation (Steele, Lea & Flood) —
// the finalizer also used by the equivalence engine's signature hashing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SubSeed derives the seed of one random stream of a run: role separates
// consumer kinds, index separates instances of one kind (entity runners,
// cluster sessions). The derivation is a three-round SplitMix64 chain, so
// nearby run seeds, roles and indices all land in unrelated streams.
func SubSeed(seed int64, role uint64, index int) int64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ role*0xd1342543de82ef95)
	h = splitmix64(h ^ uint64(index)*0x2545f4914f6cdd1d)
	return int64(h)
}
