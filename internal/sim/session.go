package sim

// The Session seam: one protocol execution advanced synchronously, a sweep
// at a time, on the caller's goroutine — no per-entity goroutines, no
// timers, no wall clock. It is the lockstep scheduler of Run extracted into
// a resumable object, so a discrete-event driver (internal/cluster) can
// interleave thousands to millions of concurrent sessions on one virtual
// clock: each session is paused between sweeps at zero cost, and advancing
// it never blocks or sleeps.
//
// A Session with seed s is the same execution as Run with Config{Lockstep:
// true, Seed: s, ...}: identical runners, identical seed derivation,
// identical sweep order and stop conditions. That identity is what makes
// any single cluster session replayable through the ordinary simulator.

import (
	"fmt"
	"sort"

	"repro/internal/fsm"
	"repro/internal/lotos"
	"repro/internal/medium"
)

// entityPlaces returns the sorted places of an entity map. Ascending place
// order fixes the per-entity scheduling seeds, so a run is identified by
// cfg.Seed alone (and by engine-independent design, produces the same
// execution under either engine when stepped in lockstep).
func entityPlaces(entities map[int]*lotos.Spec) []int {
	places := make([]int, 0, len(entities))
	for p := range entities {
		places = append(places, p)
	}
	sort.Ints(places)
	return places
}

// buildRunners constructs one runner per place, choosing each entity's
// engine: compiled tables when the configured fleet has a machine for the
// place, the AST interpreter otherwise. A nil entity spec without a
// compiled machine is an error (fleet-only callers must have every place
// compiled).
func buildRunners(entities map[int]*lotos.Spec, places []int, med medium.Transport, w *world, cfg Config) ([]*runner, map[int]Engine, error) {
	var fleet *fsm.Fleet
	if cfg.Engine == EngineFSM {
		fleet = cfg.Fleet
		if fleet == nil {
			fleet = fsm.CompileEntities(entities, cfg.Compile)
		}
	}
	engines := make(map[int]Engine, len(places))
	runners := make([]*runner, len(places))
	for i, p := range places {
		var st stepper
		engines[p] = EngineAST
		if fleet != nil {
			if m := fleet.Machines[p]; m != nil {
				st = newFSMStepper(m)
				engines[p] = EngineFSM
			}
		}
		if st == nil {
			sp := entities[p]
			if sp == nil {
				return nil, nil, fmt.Errorf("sim: entity %d: no compiled machine and no specification to interpret", p)
			}
			ast, err := newASTStepper(p, sp)
			if err != nil {
				return nil, nil, err
			}
			st = ast
		}
		runners[i] = newRunner(p, st, med, w, cfg, SubSeed(cfg.Seed, roleRunner, i))
	}
	return runners, engines, nil
}

// Session is one protocol execution stepped synchronously by its caller.
// It is single-goroutine state: not safe for concurrent use, but millions
// of independent Sessions may be advanced by one driver loop.
type Session struct {
	runners  []*runner
	w        *world
	med      medium.Transport
	engines  map[int]Engine
	finished bool
	sweeps   int
}

// sessionConfig validates and normalizes a Session config: the synchronous
// scheduler requires the immediate medium (no Reliable, no MaxDelay — their
// delivery has an asynchronous wall-clock component), and derives the
// harness and medium sub-seeds exactly as Run does.
func sessionConfig(cfg Config) (Config, error) {
	if cfg.Reliable || cfg.Medium.MaxDelay > 0 {
		return cfg, fmt.Errorf("sim: session requires the immediate medium (no Reliable, no MaxDelay)")
	}
	return resolveSeeds(cfg), nil
}

// NewSession builds a synchronous session over the entities. Lockstep,
// Timeout and engine selection behave as in Run; wall-clock options
// (Reliable, Medium.MaxDelay) are rejected. The caller advances it with
// StepN and must Close it when done.
func NewSession(entities map[int]*lotos.Spec, cfg Config) (*Session, error) {
	cfg, err := sessionConfig(cfg)
	if err != nil {
		return nil, err
	}
	med := medium.New(cfg.Medium)
	places := entityPlaces(entities)
	w := newWorld(len(places), med, cfg.MaxEvents)
	runners, engines, err := buildRunners(entities, places, med, w, cfg)
	if err != nil {
		med.Close()
		return nil, err
	}
	return &Session{runners: runners, w: w, med: med, engines: engines}, nil
}

// NewFleetSession builds a synchronous session over a fully compiled fleet:
// every place must have a compiled machine (no AST fallback), so sessions
// share the immutable tables and need no per-session copy of the entity
// syntax trees — the memory contract that makes million-session fleets
// affordable. cfg.Engine and cfg.Fleet are overridden by the argument.
func NewFleetSession(fleet *fsm.Fleet, cfg Config) (*Session, error) {
	cfg, err := sessionConfig(cfg)
	if err != nil {
		return nil, err
	}
	cfg.Engine = EngineFSM
	cfg.Fleet = fleet
	places := make([]int, 0, len(fleet.Machines))
	for p := range fleet.Machines {
		places = append(places, p)
	}
	sort.Ints(places)
	for p, ce := range fleet.Errors {
		return nil, fmt.Errorf("sim: fleet session requires every entity compiled: entity %d: %s", p, ce.Reason)
	}
	if len(places) == 0 {
		return nil, fmt.Errorf("sim: fleet session over an empty fleet")
	}
	med := medium.New(cfg.Medium)
	w := newWorld(len(places), med, cfg.MaxEvents)
	runners, engines, err := buildRunners(nil, places, med, w, cfg)
	if err != nil {
		med.Close()
		return nil, err
	}
	return &Session{runners: runners, w: w, med: med, engines: engines}, nil
}

// StepN advances the session by up to max full sweeps (max <= 0 means until
// the run is over): each sweep attempts one step per live entity in
// ascending place order. It returns the number of sweeps executed and
// whether the session is over — every entity terminated, MaxEvents hit, a
// stop, or a sweep without progress (with the immediate medium nothing
// asynchronous can unblock such a sweep: a genuine deadlock when no message
// is in flight, a stuck run otherwise). Splitting a run across StepN calls
// never changes it: quantum boundaries fall exactly between sweeps.
func (s *Session) StepN(max int) (sweeps int, done bool, err error) {
	if s.finished {
		return 0, true, nil
	}
	for (max <= 0 || sweeps < max) && !s.w.isStopped() {
		progress := false
		alive := 0
		for _, r := range s.runners {
			if r.done || s.w.isStopped() {
				continue
			}
			alive++
			progressed, rdone, rerr := r.stepOnce()
			if rerr != nil {
				s.w.stop(false)
				s.finished = true
				return sweeps, true, fmt.Errorf("entity %d: %w", r.place, rerr)
			}
			if rdone {
				r.done = true
			}
			if progressed {
				progress = true
			}
		}
		if alive == 0 {
			break
		}
		sweeps++
		if !progress {
			s.w.stopStuck(s.med.InFlight() == 0)
		}
	}
	s.sweeps += sweeps
	if s.w.isStopped() || s.allDone() {
		s.w.stop(false)
		s.finished = true
	}
	return sweeps, s.finished, nil
}

// allDone reports that every entity terminated.
func (s *Session) allDone() bool {
	for _, r := range s.runners {
		if !r.done {
			return false
		}
	}
	return true
}

// Done reports whether the session is over.
func (s *Session) Done() bool { return s.finished }

// Sweeps returns the total number of sweeps executed so far — the session's
// work measure (the cluster simulator prices virtual service time by it).
func (s *Session) Sweeps() int { return s.sweeps }

// Events returns the number of service primitives executed so far.
func (s *Session) Events() int {
	s.w.mu.Lock()
	defer s.w.mu.Unlock()
	return len(s.w.trace)
}

// MediumStats snapshots the session medium's counters.
func (s *Session) MediumStats() medium.Stats { return s.med.Stats() }

// blockedStates describes every entity's pending state.
func (s *Session) blockedStates() map[int]string {
	blocked := make(map[int]string, len(s.runners))
	for _, r := range s.runners {
		if r.done {
			blocked[r.place] = "terminated"
		} else {
			blocked[r.place] = r.step.describe()
		}
	}
	return blocked
}

// Result freezes the session's outcome. Valid at any point; the
// classification flags are only meaningful once the session is done.
func (s *Session) Result() *Result {
	return s.w.snapshot(s.med.Stats(), s.blockedStates(), s.engines)
}

// Close releases the session's medium. The session must not be stepped
// afterwards.
func (s *Session) Close() {
	s.finished = true
	s.med.Close()
}
