package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lotos"
)

// The centralized "trivial solution" of Section 3 must also run correctly:
// the server entity drives the client command loops over the same medium,
// and every observed global trace is a service trace.

func TestCentralizedRuntimeSequence(t *testing.T) {
	src := "SPEC a1; b2; c3; d2; exit ENDSPEC"
	service := lotos.MustParse(src)
	cen, err := core.DeriveCentralized(service, 1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 10; seed++ {
		res, err := Run(cen.Entities, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: centralized run incomplete: blocked=%v trace=%v",
				seed, res.Blocked, res.TraceStrings())
		}
		if err := CheckTrace(service, res, 0); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if got := len(res.Trace); got != 4 {
			t.Errorf("seed %d: %d events, want 4 (%v)", seed, got, res.TraceStrings())
		}
	}
}

func TestCentralizedRuntimeChoiceAndLoop(t *testing.T) {
	src := `SPEC A WHERE PROC A = a1; b2; A [] c1; d2; exit END ENDSPEC`
	service := lotos.MustParse(src)
	cen, err := core.DeriveCentralized(service, 1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 10; seed++ {
		res, err := Run(cen.Entities, Config{Seed: seed, MaxEvents: 12})
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut || res.Deadlocked {
			t.Fatalf("seed %d: %+v blocked=%v", seed, res, res.Blocked)
		}
		if err := CheckTrace(service, res, 0); err != nil {
			t.Errorf("seed %d: %v (trace %v)", seed, err, res.TraceStrings())
		}
	}
}

func TestCentralizedUsesMoreMessagesAtRuntime(t *testing.T) {
	// The Section-3 argument observed live: the centralized run exchanges
	// more messages than the distributed one for the same trace.
	src := "SPEC a1; b2; c3; d2; exit ENDSPEC"
	service := lotos.MustParse(src)
	cen, err := core.DeriveCentralized(service, 1)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := core.Derive(service, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Run(cen.Entities, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := Run(dist.Entities, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Completed || !dr.Completed {
		t.Fatalf("runs incomplete: cen=%+v dist=%+v", cr, dr)
	}
	if cr.Medium.Sent <= dr.Medium.Sent {
		t.Errorf("centralized sent %d, distributed %d — expected centralized to cost more",
			cr.Medium.Sent, dr.Medium.Sent)
	}
}
