package sim

// Corpus-wide differential test of the two execution engines: every
// checked-in specification, every derived entity, AST interpreter vs
// compiled FSM. The equivalence is checked at two levels — statically,
// each compiled machine (exact and minimized) is weakly bisimilar to the
// entity's explored transition system; dynamically, lockstep runs with the
// same seed produce identical observable traces and outcomes under either
// engine, and those traces are weak traces of the service.

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/equiv"
	"repro/internal/fsm"
	"repro/internal/lotos"
	"repro/internal/lts"
)

// corpusEntry is one derived corpus member.
type corpusEntry struct {
	d *core.Derivation
	// disabling marks specs using "[>": their derived interrupt broadcast
	// deviates from the service by design (the Section-5 theorem excludes
	// the operator), so runtime traces need not be service traces.
	disabling bool
}

// corpusDerivations parses and derives every repository corpus spec.
func corpusDerivations(t *testing.T) map[string]corpusEntry {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.spec"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus specs found: %v", err)
	}
	out := map[string]corpusEntry{}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := lotos.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: parse: %v", file, err)
		}
		d, err := core.Derive(sp, core.Options{})
		if err != nil {
			t.Fatalf("%s: derive: %v", file, err)
		}
		name := strings.TrimSuffix(filepath.Base(file), ".spec")
		out[name] = corpusEntry{d: d, disabling: strings.Contains(string(src), "[>")}
	}
	return out
}

// diffMaxStates is the compilation cap for the differential sweep: big
// enough for every finite corpus entity, small enough that the unbounded
// ones fail fast.
const diffMaxStates = 1024

// TestCorpusCompiledBisimilarToExploration checks the static half of the
// engine equivalence over the whole corpus: for every entity that
// compiles, both the exact table graph and the minimized one are weakly
// bisimilar to the entity's independently explored transition system, and
// the minimized machine has exactly one state per weak-bisimulation class.
func TestCorpusCompiledBisimilarToExploration(t *testing.T) {
	compiled, fallback := 0, 0
	for name, entry := range corpusDerivations(t) {
		d := entry.d
		fleet := fsm.CompileEntities(d.Entities, fsm.Config{MaxStates: diffMaxStates})
		for place, sp := range d.Entities {
			m := fleet.Machines[place]
			if m == nil {
				fallback++
				if fleet.Errors[place] == nil {
					t.Errorf("%s entity %d: no machine and no compile error", name, place)
				}
				continue
			}
			compiled++
			env, err := lts.EnvFor(sp)
			if err != nil {
				t.Fatalf("%s entity %d: %v", name, place, err)
			}
			explored, err := lts.Explore(env, sp.Root.Expr, lts.Limits{MaxStates: diffMaxStates})
			if err != nil {
				t.Fatalf("%s entity %d: explore: %v", name, place, err)
			}
			if !equiv.WeakBisimilar(m.Graph(), explored) {
				t.Errorf("%s entity %d: exact tables not weakly bisimilar to exploration", name, place)
			}
			if !equiv.WeakBisimilar(m.MinGraph(), explored) {
				t.Errorf("%s entity %d: minimized tables not weakly bisimilar to exploration", name, place)
			}
			if want := equiv.NumClassesWeak(explored); m.MinStates() != want {
				t.Errorf("%s entity %d: %d minimized states, want %d weak classes",
					name, place, m.MinStates(), want)
			}
		}
	}
	if compiled == 0 {
		t.Fatal("no corpus entity compiled — the differential sweep tested nothing")
	}
	if fallback == 0 {
		t.Fatal("no corpus entity fell back — the corpus lost its unbounded members")
	}
	t.Logf("corpus entities: %d compiled, %d interpreter fallbacks", compiled, fallback)
}

// TestCorpusEnginesProduceIdenticalRuns checks the dynamic half: for every
// corpus spec and a battery of seeds, a lockstep run under the FSM engine
// is step-for-step identical to the AST run — same observable trace, same
// outcome classification, same medium counters — and the shared trace is a
// weak trace of the service. Entities that do not compile run interpreted
// in both configurations, so the comparison still covers the whole corpus.
func TestCorpusEnginesProduceIdenticalRuns(t *testing.T) {
	const seeds = 20
	for name, entry := range corpusDerivations(t) {
		d := entry.d
		fleet := fsm.CompileEntities(d.Entities, fsm.Config{MaxStates: diffMaxStates})
		for seed := int64(0); seed < seeds; seed++ {
			base := Config{Seed: seed, Lockstep: true, MaxEvents: 24}
			astRes, err := Run(d.Entities, base)
			if err != nil {
				t.Fatalf("%s seed %d ast: %v", name, seed, err)
			}
			fsmCfg := base
			fsmCfg.Engine = EngineFSM
			fsmCfg.Fleet = fleet
			fsmRes, err := Run(d.Entities, fsmCfg)
			if err != nil {
				t.Fatalf("%s seed %d fsm: %v", name, seed, err)
			}
			if !reflect.DeepEqual(astRes.TraceStrings(), fsmRes.TraceStrings()) {
				t.Fatalf("%s seed %d: traces diverge\n ast: %v\n fsm: %v",
					name, seed, astRes.TraceStrings(), fsmRes.TraceStrings())
			}
			if astRes.Completed != fsmRes.Completed || astRes.Deadlocked != fsmRes.Deadlocked ||
				astRes.TimedOut != fsmRes.TimedOut || astRes.Stopped != fsmRes.Stopped {
				t.Fatalf("%s seed %d: outcomes diverge\n ast: %+v\n fsm: %+v",
					name, seed, astRes, fsmRes)
			}
			if astRes.Medium.Sent != fsmRes.Medium.Sent || astRes.Medium.Delivered != fsmRes.Medium.Delivered {
				t.Fatalf("%s seed %d: medium stats diverge: %+v vs %+v",
					name, seed, astRes.Medium, fsmRes.Medium)
			}
			for p := range d.Entities {
				want := EngineAST
				if fleet.Machines[p] != nil {
					want = EngineFSM
				}
				if fsmRes.Engines[p] != want {
					t.Errorf("%s seed %d: entity %d ran %s, want %s", name, seed, p, fsmRes.Engines[p], want)
				}
			}
			// The traces are equal, so one trace check covers both engines.
			// Disabling specs are exempt: their derived protocol deviates
			// from the service by design, under either engine.
			if !entry.disabling {
				if err := CheckTrace(d.Service.Spec, astRes, 200000); err != nil {
					t.Errorf("%s seed %d: %v (trace %v)", name, seed, err, astRes.TraceStrings())
				}
			}
		}
	}
}
