package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/service"
)

// BatchRequest is the body of POST /v1/batch: many specs, one operation,
// one shared option set. The whole fault matrix over a corpus is one batch.
type BatchRequest struct {
	// Op is "derive", "verify" or "explore" ("" = "verify").
	Op string `json:"op,omitempty"`
	// Specs are the specification sources, fanned out shard-wise.
	Specs []string `json:"specs"`
	// Options is the per-op option object, applied to every spec: the
	// derive/verify options object, or the explore bounds (obsDepth,
	// maxStates, traces) spliced into each request.
	Options json.RawMessage `json:"options,omitempty"`
}

// BatchItem is one streamed result line of a batch response: the index of
// the spec it answers, the worker that computed it, and the worker's
// response relayed verbatim (Body is exactly the bytes a single-spec
// request would have returned; Status its HTTP status).
type BatchItem struct {
	Index  int             `json:"index"`
	Worker string          `json:"worker,omitempty"`
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
}

// BatchSummary is the final line of a batch response.
type BatchSummary struct {
	Done      bool    `json:"done"`
	Total     int     `json:"total"`
	OK        int     `json:"ok"`
	Failed    int     `json:"failed"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// handleBatch fans a list of specs out to their owning workers and streams
// each result back the moment it completes, as newline-delimited JSON: one
// BatchItem line per spec in completion order, then one BatchSummary line.
// Items never wait on each other — a slow verification does not dam the
// stream — and a failed item (bad spec, dead shard) is a line like any
// other, so one poison spec cannot kill the batch.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) int {
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBatchBytes)
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		return writeJSON(w, status, service.ErrorResponse{Error: fmt.Sprintf("bad batch body: %v", err)})
	}
	if req.Op == "" {
		req.Op = "verify"
	}
	if req.Op != "derive" && req.Op != "verify" && req.Op != "explore" {
		return writeJSON(w, http.StatusBadRequest,
			service.ErrorResponse{Error: fmt.Sprintf("unknown batch op %q (derive, verify, explore)", req.Op)})
	}
	if len(req.Specs) == 0 {
		return writeJSON(w, http.StatusBadRequest, service.ErrorResponse{Error: "batch needs at least one spec"})
	}
	if len(req.Specs) > c.cfg.MaxBatchItems {
		return writeJSON(w, http.StatusBadRequest,
			service.ErrorResponse{Error: fmt.Sprintf("batch of %d specs exceeds the %d-item cap", len(req.Specs), c.cfg.MaxBatchItems)})
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		return writeJSON(w, http.StatusInternalServerError, service.ErrorResponse{Error: "streaming unsupported by connection"})
	}
	c.count(func(s *CoordStats) { s.Batches++; s.BatchItems += uint64(len(req.Specs)) })

	bodies := make([][]byte, len(req.Specs))
	for i, spec := range req.Specs {
		body, err := itemBody(req.Op, spec, req.Options)
		if err != nil {
			return writeJSON(w, http.StatusBadRequest,
				service.ErrorResponse{Error: fmt.Sprintf("batch options: %v", err)})
		}
		bodies[i] = body
	}

	start := time.Now()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	results := make(chan BatchItem)
	sem := make(chan struct{}, c.cfg.BatchConcurrency)
	for i := range req.Specs {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := c.forward(r.Context(), http.MethodPost, "/v1/"+req.Op, SpecKey(req.Specs[i]), bodies[i])
			item := BatchItem{Index: i}
			if err != nil {
				msg, _ := json.Marshal(service.ErrorResponse{Error: err.Error()})
				item.Status = http.StatusServiceUnavailable
				item.Body = msg
			} else {
				item.Worker = res.worker
				item.Status = res.status
				item.Body = res.body
			}
			results <- item
		}(i)
	}

	summary := BatchSummary{Total: len(req.Specs)}
	enc := json.NewEncoder(w) // no indent: one line per item
	for done := 0; done < len(req.Specs); done++ {
		item := <-results
		if item.Status == http.StatusOK {
			summary.OK++
		} else {
			summary.Failed++
		}
		if err := enc.Encode(item); err != nil {
			// Client hung up: drain the remaining workers' results so the
			// goroutines exit, then stop.
			for done++; done < len(req.Specs); done++ {
				<-results
			}
			return http.StatusOK
		}
		fl.Flush()
	}
	summary.Done = true
	summary.ElapsedMS = float64(time.Since(start).Nanoseconds()) / 1e6
	enc.Encode(summary) //nolint:errcheck
	fl.Flush()
	return http.StatusOK
}

// itemBody builds the single-spec request body of one batch item. Derive
// and verify nest the options object; explore takes its bounds inline.
func itemBody(op, spec string, options json.RawMessage) ([]byte, error) {
	m := map[string]any{"spec": spec}
	if len(options) > 0 {
		switch op {
		case "explore":
			var inline map[string]any
			if err := json.Unmarshal(options, &inline); err != nil {
				return nil, err
			}
			for k, v := range inline {
				if k == "spec" {
					continue
				}
				m[k] = v
			}
		default:
			var keep json.RawMessage
			if err := json.Unmarshal(options, &keep); err != nil {
				return nil, err
			}
			m["options"] = keep
		}
	}
	return json.Marshal(m)
}
